// Ablation: individual effect of each rewriter optimization (DESIGN.md E7).
//
// Measures targeted microworkloads where each pass matters:
//  - redundant guard elimination (Section 4.3): struct-field store runs;
//  - sp-guard elision (Section 4.2): call-heavy code with frame setup;
//  - the zero-instruction guard (Section 4.1): load-dense pointer code
//    (this is the O0 -> O1 jump of Figure 3).
// Expected shape: each optimization reduces overhead; RGE is worth a
// small amount (paper: ~1.5% average) and the zero-instruction guard is
// by far the largest win.

#include "harness.h"

namespace lfi::bench {
namespace {

// Struct-field heavy: repeated multi-offset accesses off one pointer.
std::string StructWorkload() {
  return R"(
.globl _start
.text
_start:
  adrp x14, arena
  add x14, x14, :lo12:arena
  movz x19, #40000
  mov x9, #0
loop:
  movz x10, #4095
  and x10, x9, x10
  add x10, x14, x10, lsl #3
  str x9, [x10, #8]
  str x9, [x10, #16]
  str x9, [x10, #24]
  str x9, [x10, #32]
  ldr x11, [x10, #8]
  add x13, x13, x11
  add x9, x9, #3
  subs x19, x19, #1
  b.ne loop
  movz x9, #127
  and x0, x13, x9
  rtcall #0
.bss
arena:
  .zero 65536
)";
}

// Call-heavy: every call adjusts sp and touches the frame.
std::string CallWorkload() {
  return R"(
.globl _start
.text
_start:
  movz x19, #60000
loop:
  bl leafa
  bl leafb
  subs x19, x19, #1
  b.ne loop
  movz x9, #127
  and x0, x13, x9
  rtcall #0
leafa:
  sub sp, sp, #48
  str x19, [sp, #8]
  str x13, [sp, #16]
  ldr x13, [sp, #16]
  add x13, x13, #1
  add sp, sp, #48
  ret
leafb:
  stp x29, x30, [sp, #-32]!
  str x13, [sp, #16]
  ldr x13, [sp, #16]
  add x13, x13, #2
  ldp x29, x30, [sp], #32
  ret
)";
}

// Load-dense dependent pointer chains (the zero-instruction guard case).
std::string LoadChainWorkload() {
  return workloads::Generate("541.leela", 800000);
}

struct Variant {
  const char* name;
  const char* slug;
  rewriter::OptLevel level;
  bool sp_elision;
};

void Measure(const char* title, const char* key, const std::string& src,
             const arch::CoreParams& core, JsonReport* json) {
  std::printf("\n%s\n", title);
  const Outcome base = Run(BuildLfi(src, Config::kNative), core, false);
  if (!base.ok) {
    std::printf("  native ERROR %s\n", base.error.c_str());
    return;
  }
  const std::string prefix = std::string("ablation.") + key + ".";
  json->Add(prefix + "native.cycles", static_cast<double>(base.cycles));
  const Variant variants[] = {
      {"O0 (basic 2-cycle guard)", "o0", rewriter::OptLevel::kO0, true},
      {"O1 (zero-instruction guard)", "o1", rewriter::OptLevel::kO1, true},
      {"O2 (adds RGE)", "o2", rewriter::OptLevel::kO2, true},
      {"O2, sp elision disabled", "o2-nospelision", rewriter::OptLevel::kO2,
       false},
  };
  for (const auto& v : variants) {
    auto file = asmtext::Parse(src);
    rewriter::RewriteOptions opts;
    opts.level = v.level;
    opts.sp_elision = v.sp_elision;
    rewriter::RewriteStats stats;
    auto rewritten = rewriter::Rewrite(*file, opts, &stats);
    if (!rewritten) {
      std::printf("  %-28s rewrite error\n", v.name);
      continue;
    }
    asmtext::LayoutSpec spec;
    spec.text_offset = runtime::kProgramStart;
    auto img = asmtext::Assemble(*rewritten, spec);
    Built b;
    b.ok = img.ok();
    if (img.ok()) {
      b.text_bytes = img->text.size();
      b.elf = elf::Write(elf::FromAssembled(*img));
    }
    const Outcome o = Run(b, core, true);
    if (!o.ok || o.status != base.status) {
      std::printf("  %-28s ERROR %s\n", v.name, o.error.c_str());
      continue;
    }
    std::printf(
        "  %-28s %6.1f%% overhead  (insts %zu->%zu, hoisted %zu, "
        "sp-elided %zu)\n",
        v.name, OverheadPct(base.cycles, o.cycles), stats.input_insts,
        stats.output_insts, stats.guards_hoisted, stats.guards_elided_sp);
    json->Add(prefix + v.slug + ".cycles", static_cast<double>(o.cycles));
    json->Add(prefix + v.slug + ".output-insts",
              static_cast<double>(stats.output_insts));
  }
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  std::printf("=== Ablation: per-pass effect of the rewriter optimizations "
              "(apple-m1 model) ===\n");
  const auto core = lfi::arch::AppleM1LikeParams();
  lfi::bench::Measure("[A] struct-field store runs (RGE territory)", "struct",
                      lfi::bench::StructWorkload(), core, &json);
  lfi::bench::Measure("[B] call/frame-heavy code (sp-elision territory)",
                      "call", lfi::bench::CallWorkload(), core, &json);
  lfi::bench::Measure("[C] dependent-load chains (zero-instruction-guard "
                      "territory)",
                      "loadchain", lfi::bench::LoadChainWorkload(), core,
                      &json);
  return json.Write() ? 0 : 1;
}
