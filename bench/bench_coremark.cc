// CoreMark (artifact appendix A.6.3): the openly-available workload the
// paper's artifact offers for users without a SPEC license. Reports LFI
// overheads at every optimization level on both core models, plus the
// per-sandbox Spectre-isolation cost on top of O2 (Section 7.1).

#include "harness.h"

namespace lfi::bench {
namespace {

constexpr uint64_t kScale = 1500000;

void RunCore(const arch::CoreParams& core, JsonReport* json) {
  const std::string src = workloads::Generate("coremark", kScale);
  const Outcome base = Run(BuildLfi(src, Config::kNative), core, false);
  if (!base.ok) {
    std::printf("%s: ERROR %s\n", core.name.c_str(), base.error.c_str());
    return;
  }
  std::printf("\ncoremark - %s (native: %llu cycles, %llu insts)\n",
              core.name.c_str(),
              static_cast<unsigned long long>(base.cycles),
              static_cast<unsigned long long>(base.insts));
  const std::string prefix = "coremark." + core.name + ".";
  json->Add(prefix + "native.cycles", static_cast<double>(base.cycles));
  for (Config c : {Config::kO0, Config::kO1, Config::kO2,
                   Config::kO2NoLoads}) {
    const Outcome o =
        Run(BuildLfi(src, c), core, true, c != Config::kO2NoLoads);
    if (!o.ok || o.status != base.status) {
      std::printf("  %-18s ERROR %s\n", ConfigName(c), o.error.c_str());
      continue;
    }
    std::printf("  %-18s %6.1f%% overhead\n", ConfigName(c),
                OverheadPct(base.cycles, o.cycles));
    json->Add(prefix + ConfigSlug(c) + ".cycles",
              static_cast<double>(o.cycles));
    json->Add(prefix + ConfigSlug(c) + ".overhead_pct",
              OverheadPct(base.cycles, o.cycles));
  }
  // Counter decomposition of the O2 run (guards executed is the guard
  // instruction tax behind the overhead percentage above).
  {
    trace::TraceSink sink;
    const Outcome o = Run(BuildLfi(src, Config::kO2), core, true, true,
                          false, emu::Dispatch::kBlock, &sink);
    if (o.ok) {
      uint64_t guards = 0, loads = 0, stores = 0;
      for (const auto& [pid, m] : sink.all_metrics()) {
        guards += m.Get(trace::Counter::kGuardsExecuted);
        loads += m.Get(trace::Counter::kLoads);
        stores += m.Get(trace::Counter::kStores);
      }
      std::printf(
          "  %-18s %llu guards / %llu loads / %llu stores / %llu insts\n",
          "O2 breakdown", static_cast<unsigned long long>(guards),
          static_cast<unsigned long long>(loads),
          static_cast<unsigned long long>(stores),
          static_cast<unsigned long long>(o.insts));
      json->Add(prefix + "o2.guards", static_cast<double>(guards));
      json->Add(prefix + "o2.loads", static_cast<double>(loads));
      json->Add(prefix + "o2.stores", static_cast<double>(stores));
      json->Add(prefix + "o2.insts", static_cast<double>(o.insts));
    }
  }
  // O2 with per-sandbox predictor contexts (a second sandbox runs
  // alongside, so domain crossings actually happen).
  {
    const Built b = BuildLfi(src, Config::kO2);
    runtime::RuntimeConfig cfg;
    cfg.core = core;
    cfg.spectre_ctx_isolation = true;
    runtime::Runtime rt(cfg);
    auto p1 = rt.Load({b.elf.data(), b.elf.size()});
    auto p2 = rt.Load({b.elf.data(), b.elf.size()});
    if (p1.ok() && p2.ok()) {
      rt.RunUntilIdle(uint64_t{2000} * 1000 * 1000);
      std::printf("  %-18s %6.1f%% overhead (2 sandboxes, vs 2x native)\n",
                  "O2 + SCXTNUM", OverheadPct(2 * base.cycles, rt.Cycles()));
      json->Add(prefix + "o2-scxtnum.cycles",
                static_cast<double>(rt.Cycles()));
      json->Add(prefix + "o2-scxtnum.overhead_pct",
                OverheadPct(2 * base.cycles, rt.Cycles()));
    }
  }
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  std::printf("=== CoreMark-like workload (artifact appendix A.6.3) ===\n");
  lfi::bench::RunCore(lfi::arch::AppleM1LikeParams(), &json);
  lfi::bench::RunCore(lfi::arch::GcpT2aLikeParams(), &json);
  return json.Write() ? 0 : 1;
}
