// CoreMark (artifact appendix A.6.3): the openly-available workload the
// paper's artifact offers for users without a SPEC license. Reports LFI
// overheads at every optimization level on both core models, plus the
// per-sandbox Spectre-isolation cost on top of O2 (Section 7.1), and a
// host-side backend wall-throughput section (chained vs block vs step
// dispatch on the O2 build) carrying the same in-run speedup gates as
// bench_emu_dispatch — simulated results must be bit-identical across
// backends before any rate is reported.

#include "harness.h"

#include <algorithm>
#include <vector>

namespace lfi::bench {
namespace {

constexpr uint64_t kScale = 1500000;

// Backend wall-throughput section: paired reps (all three dispatch modes
// back-to-back per rep, order rotated), speedups as the median of per-rep
// paired ratios — the same noise handling, and the same gates, as
// bench_emu_dispatch (see its header comment for the gate rationale and
// the ablation ceiling behind the chained/block threshold).
constexpr int kBackendReps = 9;
constexpr double kMinChainedVsStep = 2.0;
constexpr double kMinChainedVsBlock = 1.1;
// The gated section runs a longer build than the overhead sections above:
// short runs leave a larger cold-cache/warm-up fraction per rep, which
// eats into the chained/step margin and makes the 2x gate flaky.
constexpr uint64_t kBackendScale = 4000000;
// Host throttle phases (frequency scaling, steal) compress the measured
// chained/step ratio for minutes at a time — every rep of a section sits
// in the same phase, so no per-rep statistic recovers. A gate miss
// therefore re-measures the whole section; a semantic divergence never
// retries.
constexpr int kBackendAttempts = 3;

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// `gate_vs_step` applies the chained/step gate; it is asserted on the
// primary (apple-m1) core only, matching bench_emu_dispatch — the other
// core model's cache parameters shift the timing-model/dispatch work mix,
// which moves the achievable ratio. The chained/block superiority gate
// holds on every core.
bool BackendSection(const arch::CoreParams& core, bool gate_vs_step,
                    JsonReport* json) {
  const std::string src = workloads::Generate("coremark", kBackendScale);
  const Built built = BuildLfi(src, Config::kO2);
  const emu::Dispatch kModes[3] = {emu::Dispatch::kBlock,
                                   emu::Dispatch::kChained,
                                   emu::Dispatch::kStep};
  for (int attempt = 0; attempt < kBackendAttempts; ++attempt) {
    Outcome outs[3];
    double best[3] = {0, 0, 0};
    std::vector<double> rates[3];
    for (int r = 0; r < kBackendReps; ++r) {
      for (int m = 0; m < 3; ++m) {
        const int mi = (r + m) % 3;
        const Outcome o = Run(built, core, true, true, false, kModes[mi]);
        if (!o.ok) {
          std::printf("  %-18s ERROR %s\n", "backends", o.error.c_str());
          return false;
        }
        const double rate =
            static_cast<double>(o.insts) / o.host_seconds / 1e6;
        rates[mi].push_back(rate);
        if (rate > best[mi]) {
          best[mi] = rate;
          outs[mi] = o;
        }
      }
    }
    const bool same = outs[0].status == outs[1].status &&
                      outs[0].cycles == outs[1].cycles &&
                      outs[0].insts == outs[1].insts &&
                      outs[0].status == outs[2].status &&
                      outs[0].cycles == outs[2].cycles &&
                      outs[0].insts == outs[2].insts;
    std::vector<double> vs_step, vs_block;
    for (int r = 0; r < kBackendReps; ++r) {
      vs_step.push_back(rates[1][r] / rates[2][r]);
      vs_block.push_back(rates[1][r] / rates[0][r]);
    }
    const double chained_vs_step = Median(vs_step);
    const double chained_vs_block = Median(vs_block);
    std::printf(
        "  %-18s step: %5.1f  block: %5.1f  chained: %5.1f Minsts/s   "
        "chained/step: %.2fx  chained/block: %.2fx  semantics: %s\n",
        "backends", best[2], best[0], best[1], chained_vs_step,
        chained_vs_block, same ? "identical" : "DIVERGED");
    if (!same) return false;
    const bool gates_pass =
        (!gate_vs_step || chained_vs_step >= kMinChainedVsStep) &&
        chained_vs_block >= kMinChainedVsBlock;
    if (gates_pass || attempt == kBackendAttempts - 1) {
      const std::string prefix = "coremark." + core.name + ".backend.";
      json->Add(prefix + "step_minsts_per_s", best[2]);
      json->Add(prefix + "block_minsts_per_s", best[0]);
      json->Add(prefix + "chained_minsts_per_s", best[1]);
      json->Add(prefix + "chained_speedup_vs_step", chained_vs_step);
      json->Add(prefix + "chained_speedup_vs_block", chained_vs_block);
      if (gate_vs_step && chained_vs_step < kMinChainedVsStep) {
        std::printf("  %-18s GATE FAILED: chained/step %.2fx < %.2fx\n",
                    "backends", chained_vs_step, kMinChainedVsStep);
        return false;
      }
      if (chained_vs_block < kMinChainedVsBlock) {
        std::printf("  %-18s GATE FAILED: chained/block %.2fx < %.2fx\n",
                    "backends", chained_vs_block, kMinChainedVsBlock);
        return false;
      }
      return true;
    }
    std::printf("  %-18s gate miss (attempt %d/%d), re-measuring --"
                " host throttle suspected\n",
                "backends", attempt + 1, kBackendAttempts);
  }
  return false;  // unreachable
}

bool RunCore(const arch::CoreParams& core, bool gate_vs_step,
             JsonReport* json) {
  const std::string src = workloads::Generate("coremark", kScale);
  const Outcome base = Run(BuildLfi(src, Config::kNative), core, false);
  if (!base.ok) {
    std::printf("%s: ERROR %s\n", core.name.c_str(), base.error.c_str());
    return false;
  }
  std::printf("\ncoremark - %s (native: %llu cycles, %llu insts)\n",
              core.name.c_str(),
              static_cast<unsigned long long>(base.cycles),
              static_cast<unsigned long long>(base.insts));
  const std::string prefix = "coremark." + core.name + ".";
  json->Add(prefix + "native.cycles", static_cast<double>(base.cycles));
  for (Config c : {Config::kO0, Config::kO1, Config::kO2,
                   Config::kO2NoLoads}) {
    const Outcome o =
        Run(BuildLfi(src, c), core, true, c != Config::kO2NoLoads);
    if (!o.ok || o.status != base.status) {
      std::printf("  %-18s ERROR %s\n", ConfigName(c), o.error.c_str());
      continue;
    }
    std::printf("  %-18s %6.1f%% overhead\n", ConfigName(c),
                OverheadPct(base.cycles, o.cycles));
    json->Add(prefix + ConfigSlug(c) + ".cycles",
              static_cast<double>(o.cycles));
    json->Add(prefix + ConfigSlug(c) + ".overhead_pct",
              OverheadPct(base.cycles, o.cycles));
  }
  // Counter decomposition of the O2 run (guards executed is the guard
  // instruction tax behind the overhead percentage above).
  {
    trace::TraceSink sink;
    const Outcome o = Run(BuildLfi(src, Config::kO2), core, true, true,
                          false, emu::Dispatch::kBlock, &sink);
    if (o.ok) {
      uint64_t guards = 0, loads = 0, stores = 0;
      for (const auto& [pid, m] : sink.all_metrics()) {
        guards += m.Get(trace::Counter::kGuardsExecuted);
        loads += m.Get(trace::Counter::kLoads);
        stores += m.Get(trace::Counter::kStores);
      }
      std::printf(
          "  %-18s %llu guards / %llu loads / %llu stores / %llu insts\n",
          "O2 breakdown", static_cast<unsigned long long>(guards),
          static_cast<unsigned long long>(loads),
          static_cast<unsigned long long>(stores),
          static_cast<unsigned long long>(o.insts));
      json->Add(prefix + "o2.guards", static_cast<double>(guards));
      json->Add(prefix + "o2.loads", static_cast<double>(loads));
      json->Add(prefix + "o2.stores", static_cast<double>(stores));
      json->Add(prefix + "o2.insts", static_cast<double>(o.insts));
    }
  }
  // O2 with per-sandbox predictor contexts (a second sandbox runs
  // alongside, so domain crossings actually happen).
  {
    const Built b = BuildLfi(src, Config::kO2);
    runtime::RuntimeConfig cfg;
    cfg.core = core;
    cfg.spectre_ctx_isolation = true;
    runtime::Runtime rt(cfg);
    auto p1 = rt.Load({b.elf.data(), b.elf.size()});
    auto p2 = rt.Load({b.elf.data(), b.elf.size()});
    if (p1.ok() && p2.ok()) {
      rt.RunUntilIdle(uint64_t{2000} * 1000 * 1000);
      std::printf("  %-18s %6.1f%% overhead (2 sandboxes, vs 2x native)\n",
                  "O2 + SCXTNUM", OverheadPct(2 * base.cycles, rt.Cycles()));
      json->Add(prefix + "o2-scxtnum.cycles",
                static_cast<double>(rt.Cycles()));
      json->Add(prefix + "o2-scxtnum.overhead_pct",
                OverheadPct(2 * base.cycles, rt.Cycles()));
    }
  }
  // Backend wall throughput (its own longer O2 build), with hard gates.
  return BackendSection(core, gate_vs_step, json);
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  std::printf("=== CoreMark-like workload (artifact appendix A.6.3) ===\n");
  bool ok = true;
  ok &= lfi::bench::RunCore(lfi::arch::AppleM1LikeParams(),
                            /*gate_vs_step=*/true, &json);
  ok &= lfi::bench::RunCore(lfi::arch::GcpT2aLikeParams(),
                            /*gate_vs_step=*/false, &json);
  ok &= json.Write();
  return ok ? 0 : 1;
}
