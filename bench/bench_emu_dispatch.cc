// Emulator dispatch microbenchmark: block-cache dispatch vs the legacy
// per-instruction decode path.
//
// This is a *host-side* benchmark: it measures how fast the interpreter
// itself retires simulated instructions (Minsts/s of wall-clock time), not
// simulated cycles. Both dispatch modes execute the identical instruction
// stream and charge the identical Timing costs, so the simulated results
// (exit status, cycles, retired instructions) must match bit-for-bit --
// the benchmark asserts that before reporting the speedup.

#include "harness.h"

namespace lfi::bench {
namespace {

constexpr uint64_t kScale = 1500000;
constexpr int kReps = 5;  // best-of-N to shed host scheduling noise

struct Sample {
  Outcome out;
  double minsts_per_sec = 0.0;
};

void Accumulate(Sample& best, const Built& built, const arch::CoreParams& core,
                bool verify, emu::Dispatch dispatch) {
  if (!best.out.ok && !best.out.error.empty()) return;  // sticky error
  Outcome o = Run(built, core, verify, true, false, dispatch);
  if (!o.ok) {
    best.out = o;
    best.minsts_per_sec = 0.0;
    return;
  }
  const double rate = static_cast<double>(o.insts) / o.host_seconds / 1e6;
  if (rate > best.minsts_per_sec) {
    best.out = o;
    best.minsts_per_sec = rate;
  }
}

// Returns false if the two modes diverged semantically.
bool Compare(const char* label, const Built& built,
             const arch::CoreParams& core, bool verify) {
  Sample block, step;
  // Interleave reps so host frequency drift hits both modes equally.
  for (int r = 0; r < kReps; ++r) {
    Accumulate(block, built, core, verify, emu::Dispatch::kBlock);
    Accumulate(step, built, core, verify, emu::Dispatch::kStep);
  }
  if (!block.out.ok || !step.out.ok) {
    std::printf("  %-16s ERROR %s%s\n", label, block.out.error.c_str(),
                step.out.error.c_str());
    return false;
  }
  const bool same = block.out.status == step.out.status &&
                    block.out.cycles == step.out.cycles &&
                    block.out.insts == step.out.insts;
  const double speedup = block.minsts_per_sec / step.minsts_per_sec;
  std::printf(
      "  %-16s step: %7.1f Minsts/s   block: %7.1f Minsts/s   "
      "speedup: %.2fx   semantics: %s\n",
      label, step.minsts_per_sec, block.minsts_per_sec, speedup,
      same ? "identical" : "DIVERGED");
  if (!same) {
    std::printf(
        "    step  status=%d cycles=%llu insts=%llu\n"
        "    block status=%d cycles=%llu insts=%llu\n",
        step.out.status, static_cast<unsigned long long>(step.out.cycles),
        static_cast<unsigned long long>(step.out.insts), block.out.status,
        static_cast<unsigned long long>(block.out.cycles),
        static_cast<unsigned long long>(block.out.insts));
  }
  return same;
}

int RunAll() {
  const arch::CoreParams core = arch::AppleM1LikeParams();
  std::printf("=== Emulator dispatch: block cache vs per-inst decode ===\n");
  std::printf("coremark (scale %llu), %s core, best of %d runs\n",
              static_cast<unsigned long long>(kScale), core.name.c_str(),
              kReps);
  const std::string src = workloads::Generate("coremark", kScale);
  bool ok = true;
  ok &= Compare("native", BuildLfi(src, Config::kNative), core, false);
  ok &= Compare("LFI O2", BuildLfi(src, Config::kO2), core, true);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lfi::bench

int main() { return lfi::bench::RunAll(); }
