// Emulator dispatch microbenchmark: block-cache dispatch vs the legacy
// per-instruction decode path, plus the cost of attaching the tracing
// counters.
//
// This is a *host-side* benchmark: it measures how fast the interpreter
// itself retires simulated instructions (Minsts/s of wall-clock time), not
// simulated cycles. Both dispatch modes execute the identical instruction
// stream and charge the identical Timing costs, so the simulated results
// (exit status, cycles, retired instructions) must match bit-for-bit --
// the benchmark asserts that before reporting the speedup. The tracing
// section asserts the same bit-for-bit identity between counters-attached
// and counters-detached runs (tracing must never perturb the simulation)
// and reports the wall-clock cost of counting.

#include "harness.h"

namespace lfi::bench {
namespace {

constexpr uint64_t kScale = 1500000;
constexpr int kReps = 5;  // best-of-N to shed host scheduling noise

struct Sample {
  Outcome out;
  double minsts_per_sec = 0.0;
};

void Accumulate(Sample& best, const Built& built, const arch::CoreParams& core,
                bool verify, emu::Dispatch dispatch,
                trace::TraceSink* sink = nullptr) {
  if (!best.out.ok && !best.out.error.empty()) return;  // sticky error
  Outcome o = Run(built, core, verify, true, false, dispatch, sink);
  if (!o.ok) {
    best.out = o;
    best.minsts_per_sec = 0.0;
    return;
  }
  const double rate = static_cast<double>(o.insts) / o.host_seconds / 1e6;
  if (rate > best.minsts_per_sec) {
    best.out = o;
    best.minsts_per_sec = rate;
  }
}

// Returns false if the two modes diverged semantically.
bool Compare(const char* label, const char* slug, const Built& built,
             const arch::CoreParams& core, bool verify, JsonReport* json) {
  Sample block, step;
  // Interleave reps so host frequency drift hits both modes equally.
  for (int r = 0; r < kReps; ++r) {
    Accumulate(block, built, core, verify, emu::Dispatch::kBlock);
    Accumulate(step, built, core, verify, emu::Dispatch::kStep);
  }
  if (!block.out.ok || !step.out.ok) {
    std::printf("  %-16s ERROR %s%s\n", label, block.out.error.c_str(),
                step.out.error.c_str());
    return false;
  }
  const bool same = block.out.status == step.out.status &&
                    block.out.cycles == step.out.cycles &&
                    block.out.insts == step.out.insts;
  const double speedup = block.minsts_per_sec / step.minsts_per_sec;
  std::printf(
      "  %-16s step: %7.1f Minsts/s   block: %7.1f Minsts/s   "
      "speedup: %.2fx   semantics: %s\n",
      label, step.minsts_per_sec, block.minsts_per_sec, speedup,
      same ? "identical" : "DIVERGED");
  if (!same) {
    std::printf(
        "    step  status=%d cycles=%llu insts=%llu\n"
        "    block status=%d cycles=%llu insts=%llu\n",
        step.out.status, static_cast<unsigned long long>(step.out.cycles),
        static_cast<unsigned long long>(step.out.insts), block.out.status,
        static_cast<unsigned long long>(block.out.cycles),
        static_cast<unsigned long long>(block.out.insts));
  }
  const std::string prefix = std::string("emu_dispatch.") + slug + ".";
  json->Add(prefix + "cycles", static_cast<double>(block.out.cycles));
  json->Add(prefix + "step_minsts_per_s", step.minsts_per_sec);
  json->Add(prefix + "block_minsts_per_s", block.minsts_per_sec);
  json->Add(prefix + "block_speedup", speedup);
  return same;
}

// Tracing overhead: the same build, block dispatch, with and without a
// TraceSink attached. Simulated cycles/insts must be identical (tracing
// charges nothing); only wall clock may move, and not by much.
bool TraceOverhead(const Built& built, const arch::CoreParams& core,
                   JsonReport* json) {
  Sample off, on;
  trace::TraceSink sink;
  for (int r = 0; r < kReps; ++r) {
    Accumulate(off, built, core, true, emu::Dispatch::kBlock);
    Accumulate(on, built, core, true, emu::Dispatch::kBlock, &sink);
  }
  if (!off.out.ok || !on.out.ok) {
    std::printf("  tracing          ERROR %s%s\n", off.out.error.c_str(),
                on.out.error.c_str());
    return false;
  }
  const bool same = off.out.status == on.out.status &&
                    off.out.cycles == on.out.cycles &&
                    off.out.insts == on.out.insts;
  const double overhead_pct =
      100.0 * (off.minsts_per_sec / on.minsts_per_sec - 1.0);
  std::printf(
      "  %-16s off: %8.1f Minsts/s   on: %8.1f Minsts/s   "
      "wall overhead: %+.1f%%   simulated cycles: %s\n",
      "tracing (LFI O2)", off.minsts_per_sec, on.minsts_per_sec,
      overhead_pct, same ? "identical" : "DIVERGED");
  json->Add("emu_dispatch.trace.wall_overhead_pct", overhead_pct);
  // One attached run's counter decomposition, for the JSON record.
  uint64_t guards = 0, retired = 0;
  for (const auto& [pid, m] : sink.all_metrics()) {
    guards += m.Get(trace::Counter::kGuardsExecuted);
    retired += m.Get(trace::Counter::kInstRetired);
  }
  // The sink accumulated across kReps identical runs.
  json->Add("emu_dispatch.trace.retired_per_run",
            static_cast<double>(retired / kReps));
  json->Add("emu_dispatch.trace.guards_per_run",
            static_cast<double>(guards / kReps));
  return same;
}

int RunAll(JsonReport* json) {
  const arch::CoreParams core = arch::AppleM1LikeParams();
  std::printf("=== Emulator dispatch: block cache vs per-inst decode ===\n");
  std::printf("coremark (scale %llu), %s core, best of %d runs\n",
              static_cast<unsigned long long>(kScale), core.name.c_str(),
              kReps);
  const std::string src = workloads::Generate("coremark", kScale);
  bool ok = true;
  ok &= Compare("native", "native", BuildLfi(src, Config::kNative), core,
                false, json);
  const Built o2 = BuildLfi(src, Config::kO2);
  ok &= Compare("LFI O2", "lfi-o2", o2, core, true, json);
  ok &= TraceOverhead(o2, core, json);
  ok &= json->Write();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  return lfi::bench::RunAll(&json);
}
