// Emulator dispatch microbenchmark: the chained backend (block chaining +
// direct-threaded dispatch + memoized translation) vs the reference block
// backend vs the legacy per-instruction decode path, plus the cost of
// attaching the tracing counters.
//
// This is a *host-side* benchmark: it measures how fast the interpreter
// itself retires simulated instructions (Minsts/s of wall-clock time), not
// simulated cycles. All dispatch modes execute the identical instruction
// stream and charge the identical Timing costs, so the simulated results
// (exit status, cycles, retired instructions) must match bit-for-bit --
// the benchmark asserts that before reporting any speedup, and separately
// asserts that the full per-sandbox counter decomposition (guards, loads,
// block-cache traffic, ...) is byte-identical between the chained and
// reference backends. The tracing section asserts the same bit-for-bit
// identity between counters-attached and counters-detached runs (tracing
// must never perturb the simulation) and reports the wall-clock cost of
// counting.
//
// The chained backend carries hard in-bench performance gates, measured
// in the same process, on the same host, in the same run (gating on
// in-run ratios rather than absolute Minsts/s from BENCH_BASELINE.json
// keeps the gates meaningful across hosts of different speeds):
//
//   * >= kMinChainedVsStep over the per-instruction reference path. This
//     is the ROADMAP's "raw interpreter speed" axis: PR 1's block cache
//     bought 1.7-1.9x on it, and chaining + direct threading + memoized
//     translation must push the cumulative speedup past 2x.
//   * >= kMinChainedVsBlock over the reference block backend (the
//     previous default dispatch), so the optimized backend can never
//     silently regress below what it replaces.
//
// Why the second gate is not also 2x: the deterministic timing model
// (Timing::Issue + the cache/TLB/predictor models) is, by the identity
// contract, the same work in every backend, and it dominates runtime.
// Ablating the model entirely caps the chained-vs-block ratio at ~1.5x
// on this interpreter -- dispatch optimization alone cannot reach 2x
// over a backend that already amortizes decode per block.
//
// Noise handling: each rep runs all modes back-to-back (order rotated per
// rep), speedups are the *median of per-rep paired ratios* -- pairing
// cancels common-mode host frequency drift, the median sheds outliers --
// while the reported Minsts/s figures are best-of-N.

#include "harness.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace lfi::bench {
namespace {

constexpr uint64_t kScale = 4000000;
constexpr int kReps = 9;

// Hard gates (see header comment).
constexpr double kMinChainedVsStep = 2.0;
constexpr double kMinChainedVsBlock = 1.1;
// Host throttle phases (frequency scaling, steal) compress the measured
// chained/step ratio for minutes at a time — every rep of a section sits
// in the same phase, so no per-rep statistic recovers. A gate miss
// therefore re-measures the whole section; a semantic divergence never
// retries.
constexpr int kGateAttempts = 3;

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct Sample {
  Outcome out;
  double minsts_per_sec = 0.0;
};

void Accumulate(Sample& best, const Built& built, const arch::CoreParams& core,
                bool verify, emu::Dispatch dispatch,
                trace::TraceSink* sink = nullptr) {
  if (!best.out.ok && !best.out.error.empty()) return;  // sticky error
  Outcome o = Run(built, core, verify, true, false, dispatch, sink);
  if (!o.ok) {
    best.out = o;
    best.minsts_per_sec = 0.0;
    return;
  }
  const double rate = static_cast<double>(o.insts) / o.host_seconds / 1e6;
  if (rate > best.minsts_per_sec) {
    best.out = o;
    best.minsts_per_sec = rate;
  }
}

bool SameSim(const Outcome& a, const Outcome& b) {
  return a.status == b.status && a.cycles == b.cycles && a.insts == b.insts;
}

void PrintSim(const char* tag, const Outcome& o) {
  std::printf("    %-8s status=%d cycles=%llu insts=%llu\n", tag, o.status,
              static_cast<unsigned long long>(o.cycles),
              static_cast<unsigned long long>(o.insts));
}

// Returns false if any two modes diverged semantically, or if the chained
// backend missed a speedup gate (when gate_chained is set).
bool Compare(const char* label, const char* slug, const Built& built,
             const arch::CoreParams& core, bool verify, bool gate_chained,
             JsonReport* json) {
  const emu::Dispatch kModes[3] = {emu::Dispatch::kBlock,
                                   emu::Dispatch::kChained,
                                   emu::Dispatch::kStep};
  const int attempts = gate_chained ? kGateAttempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Sample step, block, chained;
    std::vector<double> step_r, block_r, chained_r;
    // Every rep runs all three modes back-to-back, order rotated per rep,
    // so host frequency drift lands on all modes equally and the per-rep
    // paired ratios cancel the common mode.
    for (int r = 0; r < kReps; ++r) {
      for (int m = 0; m < 3; ++m) {
        const emu::Dispatch d = kModes[(r + m) % 3];
        Sample* best = d == emu::Dispatch::kStep      ? &step
                       : d == emu::Dispatch::kBlock   ? &block
                                                      : &chained;
        std::vector<double>* rates = d == emu::Dispatch::kStep    ? &step_r
                                     : d == emu::Dispatch::kBlock ? &block_r
                                                                  : &chained_r;
        Outcome o = Run(built, core, verify, true, false, d);
        if (!o.ok) {
          std::printf("  %-16s ERROR %s\n", label, o.error.c_str());
          return false;
        }
        const double rate =
            static_cast<double>(o.insts) / o.host_seconds / 1e6;
        rates->push_back(rate);
        if (rate > best->minsts_per_sec) {
          best->out = o;
          best->minsts_per_sec = rate;
        }
      }
    }
    const bool same =
        SameSim(block.out, step.out) && SameSim(block.out, chained.out);
    std::vector<double> vs_step, vs_block;
    for (int r = 0; r < kReps; ++r) {
      vs_step.push_back(chained_r[r] / step_r[r]);
      vs_block.push_back(chained_r[r] / block_r[r]);
    }
    const double chained_vs_step = Median(vs_step);
    const double chained_vs_block = Median(vs_block);
    std::printf(
        "  %-16s step: %6.1f   block: %6.1f   chained: %6.1f Minsts/s   "
        "chained/step: %.2fx   chained/block: %.2fx   semantics: %s\n",
        label, step.minsts_per_sec, block.minsts_per_sec,
        chained.minsts_per_sec, chained_vs_step, chained_vs_block,
        same ? "identical" : "DIVERGED");
    if (!same) {
      PrintSim("step", step.out);
      PrintSim("block", block.out);
      PrintSim("chained", chained.out);
      return false;
    }
    const bool gates_pass =
        !gate_chained || (chained_vs_step >= kMinChainedVsStep &&
                          chained_vs_block >= kMinChainedVsBlock);
    if (!gates_pass && attempt < attempts - 1) {
      std::printf("  %-16s gate miss (attempt %d/%d), re-measuring --"
                  " host throttle suspected\n",
                  label, attempt + 1, attempts);
      continue;
    }
    const std::string prefix = std::string("emu_dispatch.") + slug + ".";
    json->Add(prefix + "cycles", static_cast<double>(block.out.cycles));
    json->Add(prefix + "step_minsts_per_s", step.minsts_per_sec);
    json->Add(prefix + "block_minsts_per_s", block.minsts_per_sec);
    json->Add(prefix + "chained_minsts_per_s", chained.minsts_per_sec);
    json->Add(prefix + "block_speedup", Median([&] {
                std::vector<double> v;
                for (int r = 0; r < kReps; ++r)
                  v.push_back(block_r[r] / step_r[r]);
                return v;
              }()));
    json->Add(prefix + "chained_speedup_vs_step", chained_vs_step);
    json->Add(prefix + "chained_speedup_vs_block", chained_vs_block);
    if (gate_chained && chained_vs_step < kMinChainedVsStep) {
      std::printf("  %-16s GATE FAILED: chained/step %.2fx < required %.2fx\n",
                  label, chained_vs_step, kMinChainedVsStep);
      return false;
    }
    if (gate_chained && chained_vs_block < kMinChainedVsBlock) {
      std::printf("  %-16s GATE FAILED: chained/block %.2fx < required %.2fx\n",
                  label, chained_vs_block, kMinChainedVsBlock);
      return false;
    }
    return true;
  }
  return false;  // unreachable
}

// Per-sandbox counter decomposition must be byte-identical between the
// chained and reference block backends: same guards, loads, stores,
// block-cache hits/misses/invalidations, everything. One attached run
// each (fresh sinks -- TraceSink accumulates across runs).
bool CounterIdentity(const Built& built, const arch::CoreParams& core) {
  trace::TraceSink block_sink, chained_sink;
  Outcome a = Run(built, core, true, true, false, emu::Dispatch::kBlock,
                  &block_sink);
  Outcome b = Run(built, core, true, true, false, emu::Dispatch::kChained,
                  &chained_sink);
  if (!a.ok || !b.ok) {
    std::printf("  counter identity ERROR %s%s\n", a.error.c_str(),
                b.error.c_str());
    return false;
  }
  const auto& ma = block_sink.all_metrics();
  const auto& mb = chained_sink.all_metrics();
  bool same = SameSim(a, b) && ma.size() == mb.size();
  if (same) {
    for (const auto& [pid, m] : ma) {
      auto it = mb.find(pid);
      if (it == mb.end() ||
          std::memcmp(m.c.data(), it->second.c.data(), sizeof(m.c)) != 0 ||
          std::memcmp(m.syscalls.data(), it->second.syscalls.data(),
                      sizeof(m.syscalls)) != 0) {
        same = false;
        break;
      }
    }
  }
  std::printf("  %-16s chained vs block counters: %s\n", "counter identity",
              same ? "byte-identical" : "DIVERGED");
  if (!same) {
    for (const auto& [pid, m] : ma) {
      auto it = mb.find(pid);
      if (it == mb.end()) continue;
      for (size_t ci = 0; ci < m.c.size(); ++ci) {
        if (m.c[ci] != it->second.c[ci]) {
          std::printf("    pid %d %s: block=%llu chained=%llu\n", pid,
                      trace::CounterName(static_cast<trace::Counter>(ci)),
                      static_cast<unsigned long long>(m.c[ci]),
                      static_cast<unsigned long long>(it->second.c[ci]));
        }
      }
    }
  }
  return same;
}

// Tracing overhead: the same build and dispatch mode, with and without a
// TraceSink attached. Simulated cycles/insts must be identical (tracing
// charges nothing); only wall clock may move.
bool TraceOverhead(const char* label, const char* slug, const Built& built,
                   const arch::CoreParams& core, emu::Dispatch dispatch,
                   JsonReport* json) {
  Sample off, on;
  trace::TraceSink sink;
  for (int r = 0; r < kReps; ++r) {
    Accumulate(off, built, core, true, dispatch);
    Accumulate(on, built, core, true, dispatch, &sink);
  }
  if (!off.out.ok || !on.out.ok) {
    std::printf("  tracing          ERROR %s%s\n", off.out.error.c_str(),
                on.out.error.c_str());
    return false;
  }
  const bool same = SameSim(off.out, on.out);
  const double overhead_pct =
      100.0 * (off.minsts_per_sec / on.minsts_per_sec - 1.0);
  std::printf(
      "  %-16s off: %6.1f Minsts/s   on: %6.1f Minsts/s   "
      "wall overhead: %+.1f%%   simulated cycles: %s\n",
      label, off.minsts_per_sec, on.minsts_per_sec, overhead_pct,
      same ? "identical" : "DIVERGED");
  const std::string prefix = std::string("emu_dispatch.trace.") + slug + ".";
  json->Add(prefix + "wall_overhead_pct", overhead_pct);
  // One attached run's counter decomposition, for the JSON record.
  uint64_t guards = 0, retired = 0;
  for (const auto& [pid, m] : sink.all_metrics()) {
    guards += m.Get(trace::Counter::kGuardsExecuted);
    retired += m.Get(trace::Counter::kInstRetired);
  }
  // The sink accumulated across kReps identical runs.
  json->Add(prefix + "retired_per_run", static_cast<double>(retired / kReps));
  json->Add(prefix + "guards_per_run", static_cast<double>(guards / kReps));
  return same;
}

int RunAll(JsonReport* json) {
  const arch::CoreParams core = arch::AppleM1LikeParams();
  std::printf("=== Emulator dispatch: chained vs block vs per-inst ===\n");
  std::printf("coremark (scale %llu), %s core, best of %d runs\n",
              static_cast<unsigned long long>(kScale), core.name.c_str(),
              kReps);
  const std::string src = workloads::Generate("coremark", kScale);
  bool ok = true;
  ok &= Compare("native", "native", BuildLfi(src, Config::kNative), core,
                false, /*gate_chained=*/false, json);
  const Built o2 = BuildLfi(src, Config::kO2);
  ok &= Compare("LFI O2", "lfi-o2", o2, core, true, /*gate_chained=*/true,
                json);
  ok &= CounterIdentity(o2, core);
  ok &= TraceOverhead("tracing (block)", "block", o2, core,
                      emu::Dispatch::kBlock, json);
  ok &= TraceOverhead("tracing (chain)", "chained", o2, core,
                      emu::Dispatch::kChained, json);
  ok &= json->Write();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  return lfi::bench::RunAll(&json);
}
