// Fault-path microbenchmarks: simulated cycle cost of the three
// supervisor recovery paths (docs/FAULTS.md).
//
//   fault-kill      a CpuFault under the kill policy (fault -> zombie)
//   fault-signal    a full signal round trip: fault -> frame push ->
//                   handler -> sigreturn -> resume
//   fault-restart   fault -> reap -> remap image -> re-enter (restart
//                   policy, zero backoff so the path itself is measured)
//
// Expected shape: kill is the cheapest (one-way), a signal round trip
// costs a few hundred cycles (frame push + validate + restore), and a
// restart is the most expensive (full image remap).

#include "harness.h"

namespace lfi::bench {
namespace {

// The fault programs are hand-guarded (the guard load must survive to
// execution), so they bypass the rewriter but still pass verification.
Built BuildRaw(const std::string& src) {
  Built b;
  auto file = asmtext::Parse(src);
  if (!file) {
    b.error = file.error();
    return b;
  }
  asmtext::LayoutSpec spec;
  spec.text_offset = runtime::kProgramStart;
  auto img = asmtext::Assemble(*file, spec);
  if (!img) {
    b.error = img.error();
    return b;
  }
  b.text_bytes = img->text.size();
  b.elf = elf::Write(elf::FromAssembled(*img));
  b.file_bytes = b.elf.size();
  b.ok = true;
  return b;
}

constexpr const char* kFaultNow = R"(
    movz x1, #0x4000
    add x18, x21, w1, uxtw
    ldr x0, [x18]
)";

// Registers a SIGSEGV handler, then faults kIters times; the handler
// redirects the resume past the faulting load and sigreturns.
std::string SignalLoop(int iters) {
  return R"(
    adrp x1, handler
    add x1, x1, :lo12:handler
    mov x0, #11
    ldr x30, [x21, #128]    // sigaction(SIGSEGV, handler)
    blr x30
    movz x19, #)" + std::to_string(iters) + R"(
  floop:
    movz x1, #0x4000
    add x18, x21, w1, uxtw
    ldr x0, [x18]           // fault -> handler -> resume
  resume:
    subs x19, x19, #1
    b.ne floop
    mov x0, #0
    ldr x30, [x21]          // exit
    blr x30
  handler:
    adrp x2, resume
    add x2, x2, :lo12:resume
    str x2, [sp, #32]       // frame.pc = resume
    mov x0, sp
    ldr x30, [x21, #136]    // sigreturn
    blr x30
  )";
}

struct PathResult {
  bool ok = false;
  double cycles_per_op = 0.0;
  std::string error;
};

// N sandboxes, each faulting immediately under the kill policy.
PathResult FaultKill(const arch::CoreParams& core, int n) {
  PathResult r;
  runtime::RuntimeConfig cfg;
  cfg.core = core;
  runtime::Runtime rt(cfg);
  const Built b = BuildRaw(kFaultNow);
  if (!b.ok) {
    r.error = b.error;
    return r;
  }
  for (int k = 0; k < n; ++k) {
    auto pid = rt.Load({b.elf.data(), b.elf.size()});
    if (!pid.ok()) {
      r.error = pid.error();
      return r;
    }
  }
  const uint64_t c0 = rt.Cycles();
  rt.RunUntilIdle(uint64_t{100} * 1000 * 1000);
  r.cycles_per_op = static_cast<double>(rt.Cycles() - c0) / n;
  r.ok = true;
  return r;
}

// One sandbox doing `iters` fault -> handler -> sigreturn round trips.
PathResult FaultSignal(const arch::CoreParams& core, int iters) {
  PathResult r;
  runtime::RuntimeConfig cfg;
  cfg.core = core;
  runtime::Runtime rt(cfg);
  const Built b = BuildRaw(SignalLoop(iters));
  if (!b.ok) {
    r.error = b.error;
    return r;
  }
  auto pid = rt.Load({b.elf.data(), b.elf.size()});
  if (!pid.ok()) {
    r.error = pid.error();
    return r;
  }
  runtime::SupervisorPolicy pol;
  pol.on_fault = runtime::FaultAction::kSignal;
  rt.set_policy(*pid, pol);
  const uint64_t c0 = rt.Cycles();
  rt.RunUntilIdle(uint64_t{200} * 1000 * 1000);
  const auto* p = rt.proc(*pid);
  if (p->exit_kind != runtime::ExitKind::kExited || p->exit_status != 0) {
    r.error = "signal loop did not complete: " + p->fault_detail;
    return r;
  }
  r.cycles_per_op = static_cast<double>(rt.Cycles() - c0) / iters;
  r.ok = true;
  return r;
}

// One sandbox faulting under the restart policy with `budget` restarts
// and zero backoff; measures the reap + remap + re-enter cycle.
PathResult FaultRestart(const arch::CoreParams& core, int budget) {
  PathResult r;
  runtime::RuntimeConfig cfg;
  cfg.core = core;
  runtime::Runtime rt(cfg);
  const Built b = BuildRaw(kFaultNow);
  if (!b.ok) {
    r.error = b.error;
    return r;
  }
  auto pid = rt.Load({b.elf.data(), b.elf.size()});
  if (!pid.ok()) {
    r.error = pid.error();
    return r;
  }
  runtime::SupervisorPolicy pol;
  pol.on_fault = runtime::FaultAction::kRestart;
  pol.restart_budget = static_cast<uint32_t>(budget);
  pol.restart_backoff_base_cycles = 0;
  rt.set_policy(*pid, pol);
  const uint64_t c0 = rt.Cycles();
  rt.RunUntilIdle(uint64_t{200} * 1000 * 1000);
  const auto* p = rt.proc(*pid);
  if (p->restarts != static_cast<uint32_t>(budget)) {
    r.error = "restart budget not consumed";
    return r;
  }
  r.cycles_per_op = static_cast<double>(rt.Cycles() - c0) / budget;
  r.ok = true;
  return r;
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  using namespace lfi::bench;
  JsonReport report = JsonReport::FromArgs(argc, argv);
  const lfi::arch::CoreParams core = lfi::arch::AppleM1LikeParams();

  std::printf("Fault-path microbenchmarks (%s, simulated cycles/op)\n",
              core.name.c_str());
  std::printf("%-16s %12s\n", "path", "cycles/op");

  struct Row {
    const char* name;
    const char* metric;
    PathResult res;
  } rows[] = {
      {"fault-kill", "fault-kill.cycles", FaultKill(core, 100)},
      {"fault-signal", "fault-signal.cycles", FaultSignal(core, 2000)},
      {"fault-restart", "fault-restart.cycles", FaultRestart(core, 100)},
  };
  for (const Row& row : rows) {
    if (!row.res.ok) {
      std::fprintf(stderr, "error: %s: %s\n", row.name,
                   row.res.error.c_str());
      return 1;
    }
    std::printf("%-16s %12.1f\n", row.name, row.res.cycles_per_op);
    report.Add(row.metric, row.res.cycles_per_op);
  }
  if (!report.Write()) return 1;
  return 0;
}
