// Figure 3: runtime overhead of LFI optimization levels over native, per
// SPEC-subset benchmark, on both core models (GCP T2A and Apple M1).
//
// Expected shape (paper): O0 >> O1 > O2; geomean O2 ~= 6-7%; "no loads"
// ~= 1%; the O0 -> O1 jump (the zero-instruction guard) is the largest
// single improvement.

#include "harness.h"

namespace lfi::bench {
namespace {

constexpr uint64_t kScale = 1200000;

void RunCore(const arch::CoreParams& core, JsonReport* json) {
  std::printf("\nOverhead on SPEC 2017 stand-ins - %s (%% over native)\n",
              core.name.c_str());
  std::printf("%-16s %9s %9s %9s %12s\n", "benchmark", "LFI O0", "LFI O1",
              "LFI O2", "O2 no-loads");
  Geomean g[4];
  const Config configs[4] = {Config::kO0, Config::kO1, Config::kO2,
                             Config::kO2NoLoads};
  for (const auto& name : SpecNames()) {
    const std::string src = workloads::Generate(name, kScale);
    const Built native = BuildLfi(src, Config::kNative);
    const Outcome base = Run(native, core, /*verify=*/false);
    if (!base.ok) {
      std::printf("%-16s ERROR %s\n", name.c_str(), base.error.c_str());
      continue;
    }
    const std::string prefix = "fig3." + core.name + "." + name + ".";
    json->Add(prefix + "native.cycles", static_cast<double>(base.cycles));
    double pct[4];
    bool all_ok = true;
    for (int k = 0; k < 4; ++k) {
      const Built b = BuildLfi(src, configs[k]);
      const Outcome o = Run(b, core, /*verify=*/true,
                            configs[k] != Config::kO2NoLoads);
      if (!o.ok || o.status != base.status) {
        std::printf("%-16s ERROR %s (status %d vs %d)\n", name.c_str(),
                    o.error.c_str(), o.status, base.status);
        all_ok = false;
        break;
      }
      pct[k] = OverheadPct(base.cycles, o.cycles);
      g[k].Add(pct[k]);
      json->Add(prefix + ConfigSlug(configs[k]) + ".cycles",
                static_cast<double>(o.cycles));
    }
    if (!all_ok) continue;
    std::printf("%-16s %8.1f%% %8.1f%% %8.1f%% %11.1f%%\n", name.c_str(),
                pct[0], pct[1], pct[2], pct[3]);
  }
  std::printf("%-16s %8.1f%% %8.1f%% %8.1f%% %11.1f%%\n", "geomean",
              g[0].Pct(), g[1].Pct(), g[2].Pct(), g[3].Pct());
  for (int k = 0; k < 4; ++k) {
    json->Add("fig3." + core.name + ".geomean." + ConfigSlug(configs[k]) +
                  ".overhead_pct",
              g[k].Pct());
  }
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  std::printf("=== Figure 3: LFI optimization levels vs native ===\n");
  lfi::bench::RunCore(lfi::arch::GcpT2aLikeParams(), &json);
  lfi::bench::RunCore(lfi::arch::AppleM1LikeParams(), &json);
  return json.Write() ? 0 : 1;
}
