// Figure 4 + Table 4: LFI vs WebAssembly engines on the 7 Wasm-compatible
// benchmarks, both core models.
//
// Expected shape (paper, Table 4): Wasmtime worst (47-67%), Wasm2c ~40%,
// no-barrier ~21%, WAMR ~18-22%, pinned-reg ~16%, LFI 6-7% - less than
// half the best Wasm configuration.

#include "harness.h"

namespace lfi::bench {
namespace {

constexpr uint64_t kScale = 1000000;

const wasm::Engine kEngines[] = {
    wasm::Engine::kWasmtime,        wasm::Engine::kWasm2c,
    wasm::Engine::kWasm2cNoBarrier, wasm::Engine::kWasm2cPinnedReg,
    wasm::Engine::kWamr,
};

void RunCore(const arch::CoreParams& core, JsonReport* json) {
  std::printf("\nLFI vs Wasm on SPEC 2017 stand-ins - %s (%% over native)\n",
              core.name.c_str());
  std::printf("%-15s", "benchmark");
  for (auto e : kEngines) std::printf(" %16s", wasm::EngineName(e));
  std::printf(" %16s\n", "LFI");
  Geomean g[6];
  for (const auto& name : WasmNames()) {
    const std::string src = workloads::Generate(name, kScale);
    const Outcome base =
        Run(BuildLfi(src, Config::kNative), core, /*verify=*/false);
    if (!base.ok) {
      std::printf("%-15s ERROR %s\n", name.c_str(), base.error.c_str());
      continue;
    }
    const std::string prefix = "fig4." + core.name + "." + name + ".";
    json->Add(prefix + "native.cycles", static_cast<double>(base.cycles));
    std::printf("%-15s", name.c_str());
    int col = 0;
    for (auto e : kEngines) {
      const Outcome o = Run(BuildWasm(src, e), core, /*verify=*/false);
      if (!o.ok || o.status != base.status) {
        std::printf(" %15s", "ERR");
      } else {
        const double pct = OverheadPct(base.cycles, o.cycles);
        g[col].Add(pct);
        std::printf(" %15.1f%%", pct);
        json->Add(prefix + wasm::EngineName(e) + ".cycles",
                  static_cast<double>(o.cycles));
      }
      ++col;
    }
    const Outcome lfi = Run(BuildLfi(src, Config::kO2), core, true);
    if (lfi.ok && lfi.status == base.status) {
      const double pct = OverheadPct(base.cycles, lfi.cycles);
      g[5].Add(pct);
      std::printf(" %15.1f%%\n", pct);
      json->Add(prefix + "lfi-o2.cycles", static_cast<double>(lfi.cycles));
    } else {
      std::printf(" %15s\n", "ERR");
    }
  }
  std::printf("%-15s", "geomean");
  for (int k = 0; k < 6; ++k) std::printf(" %15.1f%%", g[k].Pct());
  std::printf("\n");
  for (int k = 0; k < 5; ++k) {
    json->Add("fig4." + core.name + ".geomean." +
                  wasm::EngineName(kEngines[k]) + ".overhead_pct",
              g[k].Pct());
  }
  json->Add("fig4." + core.name + ".geomean.lfi-o2.overhead_pct",
            g[5].Pct());
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  std::printf(
      "=== Figure 4 / Table 4: LFI vs WebAssembly engines ===\n"
      "(all engines AOT; native baseline runs inside the LFI runtime)\n");
  lfi::bench::RunCore(lfi::arch::GcpT2aLikeParams(), &json);
  lfi::bench::RunCore(lfi::arch::AppleM1LikeParams(), &json);
  return json.Write() ? 0 : 1;
}
