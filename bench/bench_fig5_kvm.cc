// Figure 5: LFI vs hardware-assisted virtualization (KVM) on the M1 model.
//
// Virtualization runs native code but doubles the cost of every TLB walk
// (nested page tables), which is how Section 6.4 explains its overhead.
// Expected shape: KVM overhead is small but concentrated in TLB-pressure
// benchmarks (mcf, omnetpp, xalancbmk); LFI's overhead is spread across
// compute-bound benchmarks; overall the two are comparable, with LFI
// slightly higher on average.

#include "harness.h"

namespace lfi::bench {
namespace {

constexpr uint64_t kScale = 1200000;

void Table(const arch::CoreParams& core, JsonReport* json) {
  std::printf("\nLFI vs KVM - %s (%% over native)\n", core.name.c_str());
  std::printf("%-16s %12s %12s\n", "benchmark", "QEMU KVM", "LFI");
  Geomean kvm_g, lfi_g;
  for (const auto& name : SpecNames()) {
    const std::string src = workloads::Generate(name, kScale);
    const Built native = BuildLfi(src, Config::kNative);
    const Outcome base = Run(native, core, false);
    if (!base.ok) {
      std::printf("%-16s ERROR %s\n", name.c_str(), base.error.c_str());
      continue;
    }
    // KVM: the same native binary, with two-dimensional page walks.
    const Outcome kvm = Run(native, core, false, true,
                            /*nested_pagetables=*/true);
    const Outcome lfi = Run(BuildLfi(src, Config::kO2), core, true);
    if (!kvm.ok || !lfi.ok) {
      std::printf("%-16s ERROR\n", name.c_str());
      continue;
    }
    const double kvm_pct = OverheadPct(base.cycles, kvm.cycles);
    const double lfi_pct = OverheadPct(base.cycles, lfi.cycles);
    kvm_g.Add(kvm_pct);
    lfi_g.Add(lfi_pct);
    std::printf("%-16s %11.1f%% %11.1f%%\n", name.c_str(), kvm_pct,
                lfi_pct);
    const std::string prefix = "fig5." + core.name + "." + name + ".";
    json->Add(prefix + "native.cycles", static_cast<double>(base.cycles));
    json->Add(prefix + "kvm.cycles", static_cast<double>(kvm.cycles));
    json->Add(prefix + "lfi-o2.cycles", static_cast<double>(lfi.cycles));
  }
  std::printf("%-16s %11.1f%% %11.1f%%\n", "geomean", kvm_g.Pct(),
              lfi_g.Pct());
  json->Add("fig5." + core.name + ".geomean.kvm.overhead_pct", kvm_g.Pct());
  json->Add("fig5." + core.name + ".geomean.lfi-o2.overhead_pct",
            lfi_g.Pct());
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  std::printf("=== Figure 5: LFI vs hardware-assisted virtualization ===\n");
  lfi::bench::Table(lfi::arch::AppleM1LikeParams(), &json);
  return json.Write() ? 0 : 1;
}
