// Section 5.2: verifier throughput.
//
// The paper's verifier checks ~34 MB/s of machine code on a Macbook Air
// and verifies every SPEC binary in under 0.3 s; the WABT Wasm validator
// manages ~3 MB/s on the same machine. This benchmark measures our
// verifier's real (host) throughput over the rewritten workload binaries.
// Uses google-benchmark since this is a host-time measurement.

#include <benchmark/benchmark.h>

#include "harness.h"
#include "verifier/verifier.h"

namespace lfi::bench {
namespace {

// One large text segment built from all rewritten workloads.
const std::vector<uint8_t>& CombinedText() {
  static const std::vector<uint8_t>* text = [] {
    auto* t = new std::vector<uint8_t>();
    for (const auto& w : workloads::AllWorkloads()) {
      const std::string src = workloads::Generate(w.name, 400000);
      const Built b = BuildLfi(src, Config::kO2);
      if (b.ok) {
        // Extract the text segment back out of the ELF.
        auto img = elf::Read({b.elf.data(), b.elf.size()});
        if (img.ok()) {
          for (const auto& seg : img->segments) {
            if (seg.exec) t->insert(t->end(), seg.data.begin(),
                                    seg.data.end());
          }
        }
      }
    }
    return t;
  }();
  return *text;
}

void BM_VerifyThroughput(benchmark::State& state) {
  const auto& text = CombinedText();
  for (auto _ : state) {
    auto r = verifier::Verify({text.data(), text.size()});
    if (!r.ok) state.SkipWithError(("verify failed: " + r.reason).c_str());
    benchmark::DoNotOptimize(r.insts_checked);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
  state.counters["MB"] = static_cast<double>(text.size()) / 1e6;
}
BENCHMARK(BM_VerifyThroughput);

void BM_VerifySingleWorkload(benchmark::State& state) {
  const std::string src = workloads::Generate("502.gcc", 400000);
  const Built b = BuildLfi(src, Config::kO2);
  std::vector<uint8_t> text;
  auto img = elf::Read({b.elf.data(), b.elf.size()});
  if (img.ok()) {
    for (const auto& seg : img->segments) {
      if (seg.exec) text = seg.data;
    }
  }
  for (auto _ : state) {
    auto r = verifier::Verify({text.data(), text.size()});
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_VerifySingleWorkload);

}  // namespace
}  // namespace lfi::bench

BENCHMARK_MAIN();
