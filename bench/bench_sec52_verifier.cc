// Section 5.2: verifier throughput.
//
// The paper's verifier checks ~34 MB/s of machine code on a Macbook Air
// and verifies every SPEC binary in under 0.3 s; the WABT Wasm validator
// manages ~3 MB/s on the same machine. This benchmark measures our
// verifier's real (host) throughput over the rewritten workload binaries.
// Uses google-benchmark since this is a host-time measurement; a custom
// main() strips `--json <path>` before benchmark::Initialize sees it and
// records the deterministic verification facts (bytes, instructions
// checked, decode/check split) plus the measured throughput.

#include <benchmark/benchmark.h>

#include <functional>
#include <thread>

#include "harness.h"
#include "verifier/verifier.h"

namespace lfi::bench {
namespace {

// One large text segment built from all rewritten workloads.
const std::vector<uint8_t>& CombinedText() {
  static const std::vector<uint8_t>* text = [] {
    auto* t = new std::vector<uint8_t>();
    for (const auto& w : workloads::AllWorkloads()) {
      const std::string src = workloads::Generate(w.name, 400000);
      const Built b = BuildLfi(src, Config::kO2);
      if (b.ok) {
        // Extract the text segment back out of the ELF.
        auto img = elf::Read({b.elf.data(), b.elf.size()});
        if (img.ok()) {
          for (const auto& seg : img->segments) {
            if (seg.exec) t->insert(t->end(), seg.data.begin(),
                                    seg.data.end());
          }
        }
      }
    }
    return t;
  }();
  return *text;
}

void BM_VerifyThroughput(benchmark::State& state) {
  const auto& text = CombinedText();
  for (auto _ : state) {
    auto r = verifier::Verify({text.data(), text.size()});
    if (!r.ok) state.SkipWithError(("verify failed: " + r.reason).c_str());
    benchmark::DoNotOptimize(r.insts_checked);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
  state.counters["MB"] = static_cast<double>(text.size()) / 1e6;
}
BENCHMARK(BM_VerifyThroughput);

void BM_VerifySingleWorkload(benchmark::State& state) {
  const std::string src = workloads::Generate("502.gcc", 400000);
  const Built b = BuildLfi(src, Config::kO2);
  std::vector<uint8_t> text;
  auto img = elf::Read({b.elf.data(), b.elf.size()});
  if (img.ok()) {
    for (const auto& seg : img->segments) {
      if (seg.exec) text = seg.data;
    }
  }
  for (auto _ : state) {
    auto r = verifier::Verify({text.data(), text.size()});
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_VerifySingleWorkload);

// A corpus large enough to engage VerifyParallel's sharded path
// (thousands of instructions): the combined workload text, repeated.
// Concatenation preserves acceptance — the verifier's context rules
// (sp scan, x30 lookahead) only ever look forward, and every copy
// discharges its obligations internally.
const std::vector<uint8_t>& ParallelCorpus() {
  static const std::vector<uint8_t>* corpus = [] {
    const auto& unit = CombinedText();
    auto* t = new std::vector<uint8_t>();
    const size_t target = size_t{4} << 20;  // ~4 MB
    while (t->size() < target) t->insert(t->end(), unit.begin(), unit.end());
    return t;
  }();
  return *corpus;
}

void BM_VerifyParallelThroughput(benchmark::State& state) {
  const auto& text = ParallelCorpus();
  const unsigned nthreads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto r = verifier::VerifyParallel({text.data(), text.size()}, {},
                                      nthreads);
    if (!r.ok) state.SkipWithError(("verify failed: " + r.reason).c_str());
    benchmark::DoNotOptimize(r.insts_checked);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_VerifyParallelThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

double BestOf3Seconds(const std::function<void()>& fn) {
  double best = 1e100;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  }
  return best;
}

bool SameVerdict(const verifier::VerifyResult& a,
                 const verifier::VerifyResult& b) {
  return a.ok == b.ok && a.kind == b.kind && a.fail_offset == b.fail_offset &&
         a.reason == b.reason && a.insts_checked == b.insts_checked;
}

bool SameDeterministicStats(const verifier::VerifyStats& a,
                            const verifier::VerifyStats& b) {
  return a.calls == b.calls && a.insts_checked == b.insts_checked &&
         a.fail_counts == b.fail_counts;
}

// Sharded-verify section: identity gates (bit-identical verdicts and
// deterministic stats vs serial — hard-fail on any host) and throughput
// at 2/4/8 threads (speedup gates tiered by the host's core count).
// Returns false if a gate failed.
bool ReportParallelJson(JsonReport* json) {
  const auto& text = ParallelCorpus();
  bool gates_ok = true;

  verifier::VerifyStats serial_stats;
  verifier::VerifyResult serial;
  const double serial_secs = BestOf3Seconds([&] {
    serial_stats = {};
    serial = verifier::Verify({text.data(), text.size()}, {}, &serial_stats);
  });
  if (!serial.ok) {
    std::fprintf(stderr, "sec52: parallel corpus failed verification: %s\n",
                 serial.reason.c_str());
    return false;
  }
  json->Add("sec52.verify.parallel.bytes", static_cast<double>(text.size()));
  json->Add("sec52.verify.parallel.serial_mb_per_s",
            text.size() / serial_secs / 1e6);

  bool identical = true;
  std::map<unsigned, double> speedup;
  for (unsigned nthreads : {2u, 4u, 8u}) {
    verifier::VerifyStats pstats;
    verifier::VerifyResult par;
    const double secs = BestOf3Seconds([&] {
      pstats = {};
      par = verifier::VerifyParallel({text.data(), text.size()}, {}, nthreads,
                                     &pstats);
    });
    if (!SameVerdict(serial, par) ||
        !SameDeterministicStats(serial_stats, pstats)) {
      identical = false;
      std::fprintf(stderr,
                   "sec52: VerifyParallel(%u threads) diverged from serial\n",
                   nthreads);
    }
    speedup[nthreads] = serial_secs / secs;
    char key[64];
    std::snprintf(key, sizeof(key), "sec52.verify.parallel.mb_per_s_%ut",
                  nthreads);
    json->Add(key, text.size() / secs / 1e6);
    std::snprintf(key, sizeof(key), "sec52.verify.parallel.speedup_%ut",
                  nthreads);
    json->Add(key, speedup[nthreads]);
    std::printf("sec52 parallel %ut: %.1f MB/s (%.2fx vs serial)\n", nthreads,
                text.size() / secs / 1e6, speedup[nthreads]);
  }
  json->Add("sec52.verify.parallel.identical.exact", identical ? 1.0 : 0.0);
  if (!identical) gates_ok = false;

  // Batch identity over the individual workload texts.
  std::vector<std::vector<uint8_t>> owned;
  for (const auto& w : workloads::AllWorkloads()) {
    const Built b = BuildLfi(workloads::Generate(w.name, 400000), Config::kO2);
    if (!b.ok) continue;
    auto img = elf::Read({b.elf.data(), b.elf.size()});
    if (!img.ok()) continue;
    for (const auto& seg : img->segments) {
      if (seg.exec) owned.push_back(seg.data);
    }
  }
  std::vector<std::span<const uint8_t>> texts;
  for (const auto& t : owned) texts.emplace_back(t.data(), t.size());
  verifier::VerifyStats bserial_stats;
  std::vector<verifier::VerifyResult> bserial;
  for (const auto& t : texts) {
    bserial.push_back(verifier::Verify(t, {}, &bserial_stats));
  }
  bool batch_identical = true;
  for (unsigned nthreads : {2u, 8u}) {
    verifier::VerifyStats bstats;
    const auto batch = verifier::VerifyBatch(texts, {}, nthreads, &bstats);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!SameVerdict(bserial[i], batch[i])) batch_identical = false;
    }
    if (!SameDeterministicStats(bserial_stats, bstats)) {
      batch_identical = false;
    }
  }
  json->Add("sec52.verify.batch.modules", static_cast<double>(texts.size()));
  json->Add("sec52.verify.batch.identical.exact", batch_identical ? 1.0 : 0.0);
  if (!batch_identical) {
    std::fprintf(stderr, "sec52: VerifyBatch diverged from serial\n");
    gates_ok = false;
  }

  // Speedup gates, tiered by available cores: a shared 4-vCPU CI runner
  // cannot hit 3x@8, so each tier only gates when the host can support it.
  const unsigned hc = std::thread::hardware_concurrency();
  struct Tier { unsigned need_cores, nthreads; double min_speedup; };
  const Tier tier = hc >= 8   ? Tier{8, 8, 3.0}
                    : hc >= 4 ? Tier{4, 4, 1.8}
                    : hc >= 2 ? Tier{2, 2, 1.2}
                              : Tier{0, 0, 0.0};
  if (tier.nthreads == 0) {
    std::printf("sec52 parallel: single-core host, speedup gate skipped\n");
  } else if (speedup[tier.nthreads] < tier.min_speedup) {
    std::fprintf(stderr,
                 "sec52: speedup gate FAILED: %.2fx at %u threads "
                 "(need >= %.1fx on a %u-core host)\n",
                 speedup[tier.nthreads], tier.nthreads, tier.min_speedup, hc);
    gates_ok = false;
  } else {
    std::printf("sec52 parallel: speedup gate ok (%.2fx >= %.1fx at %ut)\n",
                speedup[tier.nthreads], tier.min_speedup, tier.nthreads);
  }
  return gates_ok;
}

// One timed verification pass outside google-benchmark, for the JSON
// report: the byte/instruction counts are deterministic (and act as a
// structural regression gate); the MB/s figure is informational.
void ReportJson(JsonReport* json) {
  const auto& text = CombinedText();
  verifier::VerifyStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  auto r = verifier::Verify({text.data(), text.size()}, {}, &stats);
  const double secs = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  if (!r.ok) {
    std::fprintf(stderr, "sec52: combined text failed verification: %s\n",
                 r.reason.c_str());
    return;
  }
  json->Add("sec52.verify.text.bytes", static_cast<double>(text.size()));
  json->Add("sec52.verify.insts_checked",
            static_cast<double>(r.insts_checked));
  json->Add("sec52.verify.mb_per_s",
            secs > 0 ? text.size() / secs / 1e6 : 0.0);
  json->Add("sec52.verify.decode_fraction",
            stats.decode_seconds + stats.check_seconds > 0
                ? stats.decode_seconds /
                      (stats.decode_seconds + stats.check_seconds)
                : 0.0);
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  // Strip --json from argv: google-benchmark rejects flags it does not
  // recognize.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      ++i;  // skip the path operand too
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) continue;
    argv[out++] = argv[i];
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lfi::bench::ReportJson(&json);
  const bool gates_ok = lfi::bench::ReportParallelJson(&json);
  if (!json.Write()) return 1;
  return gates_ok ? 0 : 1;
}
