// Section 5.2: verifier throughput.
//
// The paper's verifier checks ~34 MB/s of machine code on a Macbook Air
// and verifies every SPEC binary in under 0.3 s; the WABT Wasm validator
// manages ~3 MB/s on the same machine. This benchmark measures our
// verifier's real (host) throughput over the rewritten workload binaries.
// Uses google-benchmark since this is a host-time measurement; a custom
// main() strips `--json <path>` before benchmark::Initialize sees it and
// records the deterministic verification facts (bytes, instructions
// checked, decode/check split) plus the measured throughput.

#include <benchmark/benchmark.h>

#include "harness.h"
#include "verifier/verifier.h"

namespace lfi::bench {
namespace {

// One large text segment built from all rewritten workloads.
const std::vector<uint8_t>& CombinedText() {
  static const std::vector<uint8_t>* text = [] {
    auto* t = new std::vector<uint8_t>();
    for (const auto& w : workloads::AllWorkloads()) {
      const std::string src = workloads::Generate(w.name, 400000);
      const Built b = BuildLfi(src, Config::kO2);
      if (b.ok) {
        // Extract the text segment back out of the ELF.
        auto img = elf::Read({b.elf.data(), b.elf.size()});
        if (img.ok()) {
          for (const auto& seg : img->segments) {
            if (seg.exec) t->insert(t->end(), seg.data.begin(),
                                    seg.data.end());
          }
        }
      }
    }
    return t;
  }();
  return *text;
}

void BM_VerifyThroughput(benchmark::State& state) {
  const auto& text = CombinedText();
  for (auto _ : state) {
    auto r = verifier::Verify({text.data(), text.size()});
    if (!r.ok) state.SkipWithError(("verify failed: " + r.reason).c_str());
    benchmark::DoNotOptimize(r.insts_checked);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
  state.counters["MB"] = static_cast<double>(text.size()) / 1e6;
}
BENCHMARK(BM_VerifyThroughput);

void BM_VerifySingleWorkload(benchmark::State& state) {
  const std::string src = workloads::Generate("502.gcc", 400000);
  const Built b = BuildLfi(src, Config::kO2);
  std::vector<uint8_t> text;
  auto img = elf::Read({b.elf.data(), b.elf.size()});
  if (img.ok()) {
    for (const auto& seg : img->segments) {
      if (seg.exec) text = seg.data;
    }
  }
  for (auto _ : state) {
    auto r = verifier::Verify({text.data(), text.size()});
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_VerifySingleWorkload);

// One timed verification pass outside google-benchmark, for the JSON
// report: the byte/instruction counts are deterministic (and act as a
// structural regression gate); the MB/s figure is informational.
void ReportJson(JsonReport* json) {
  const auto& text = CombinedText();
  verifier::VerifyStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  auto r = verifier::Verify({text.data(), text.size()}, {}, &stats);
  const double secs = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  if (!r.ok) {
    std::fprintf(stderr, "sec52: combined text failed verification: %s\n",
                 r.reason.c_str());
    return;
  }
  json->Add("sec52.verify.text.bytes", static_cast<double>(text.size()));
  json->Add("sec52.verify.insts_checked",
            static_cast<double>(r.insts_checked));
  json->Add("sec52.verify.mb_per_s",
            secs > 0 ? text.size() / secs / 1e6 : 0.0);
  json->Add("sec52.verify.decode_fraction",
            stats.decode_seconds + stats.check_seconds > 0
                ? stats.decode_seconds /
                      (stats.decode_seconds + stats.check_seconds)
                : 0.0);
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  // Strip --json from argv: google-benchmark rejects flags it does not
  // recognize.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      ++i;  // skip the path operand too
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) continue;
    argv[out++] = argv[i];
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lfi::bench::ReportJson(&json);
  return json.Write() ? 0 : 1;
}
