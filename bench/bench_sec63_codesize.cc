// Section 6.3: code-size overhead.
//
// Expected shape (paper): LFI geomean text-segment increase ~12.9%,
// whole-binary increase ~8.3% (no alignment padding, zero-instruction
// guards, redundant guard elimination); WAMR whole-binary increase ~22%.

#include "harness.h"

namespace lfi::bench {
namespace {

constexpr uint64_t kScale = 400000;

void Table() {
  std::printf("%-16s %12s %12s %12s %12s\n", "benchmark", "text(nat)",
              "LFI text+%", "LFI file+%", "WAMR file+%");
  Geomean text_g, file_g, wamr_g;
  for (const auto& w : workloads::AllWorkloads()) {
    if (w.name == "coremark") continue;
    const std::string src = workloads::Generate(w.name, kScale);
    const Built native = BuildLfi(src, Config::kNative);
    const Built lfi = BuildLfi(src, Config::kO2);
    if (!native.ok || !lfi.ok) {
      std::printf("%-16s build error\n", w.name.c_str());
      continue;
    }
    const double text_pct = OverheadPct(native.text_bytes, lfi.text_bytes);
    const double file_pct = OverheadPct(native.file_bytes, lfi.file_bytes);
    text_g.Add(text_pct);
    file_g.Add(file_pct);
    std::printf("%-16s %12zu %11.1f%% %11.1f%%", w.name.c_str(),
                native.text_bytes, text_pct, file_pct);
    if (w.wasm_compatible) {
      const Built wamr = BuildWasm(src, wasm::Engine::kWamr);
      if (wamr.ok) {
        const double wamr_pct =
            OverheadPct(native.file_bytes, wamr.file_bytes);
        wamr_g.Add(wamr_pct);
        std::printf(" %11.1f%%", wamr_pct);
      }
    }
    std::printf("\n");
  }
  std::printf("%-16s %12s %11.1f%% %11.1f%% %11.1f%%\n", "geomean", "",
              text_g.Pct(), file_g.Pct(), wamr_g.Pct());
}

}  // namespace
}  // namespace lfi::bench

int main() {
  std::printf(
      "=== Section 6.3: code size overhead ===\n"
      "(LFI at O2; WAMR column only for the Wasm-compatible subset)\n");
  lfi::bench::Table();
  return 0;
}
