// Section 6.3: code-size overhead.
//
// Expected shape (paper): LFI geomean text-segment increase ~12.9%,
// whole-binary increase ~8.3% (no alignment padding, zero-instruction
// guards, redundant guard elimination); WAMR whole-binary increase ~22%.

#include "harness.h"

namespace lfi::bench {
namespace {

constexpr uint64_t kScale = 400000;

void Table(JsonReport* json) {
  std::printf("%-16s %12s %12s %12s %12s\n", "benchmark", "text(nat)",
              "LFI text+%", "LFI file+%", "WAMR file+%");
  Geomean text_g, file_g, wamr_g;
  for (const auto& w : workloads::AllWorkloads()) {
    if (w.name == "coremark") continue;
    const std::string src = workloads::Generate(w.name, kScale);
    const Built native = BuildLfi(src, Config::kNative);
    const Built lfi = BuildLfi(src, Config::kO2);
    if (!native.ok || !lfi.ok) {
      std::printf("%-16s build error\n", w.name.c_str());
      continue;
    }
    const double text_pct = OverheadPct(native.text_bytes, lfi.text_bytes);
    const double file_pct = OverheadPct(native.file_bytes, lfi.file_bytes);
    text_g.Add(text_pct);
    file_g.Add(file_pct);
    std::printf("%-16s %12zu %11.1f%% %11.1f%%", w.name.c_str(),
                native.text_bytes, text_pct, file_pct);
    const std::string prefix = "sec63." + w.name + ".";
    json->Add(prefix + "native-text.bytes",
              static_cast<double>(native.text_bytes));
    json->Add(prefix + "lfi-text.bytes",
              static_cast<double>(lfi.text_bytes));
    if (w.wasm_compatible) {
      const Built wamr = BuildWasm(src, wasm::Engine::kWamr);
      if (wamr.ok) {
        const double wamr_pct =
            OverheadPct(native.file_bytes, wamr.file_bytes);
        wamr_g.Add(wamr_pct);
        std::printf(" %11.1f%%", wamr_pct);
        json->Add(prefix + "wamr-file.bytes",
                  static_cast<double>(wamr.file_bytes));
      }
    }
    std::printf("\n");
  }
  std::printf("%-16s %12s %11.1f%% %11.1f%% %11.1f%%\n", "geomean", "",
              text_g.Pct(), file_g.Pct(), wamr_g.Pct());
  json->Add("sec63.geomean.lfi-text.overhead_pct", text_g.Pct());
  json->Add("sec63.geomean.lfi-file.overhead_pct", file_g.Pct());
  json->Add("sec63.geomean.wamr-file.overhead_pct", wamr_g.Pct());
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  std::printf(
      "=== Section 6.3: code size overhead ===\n"
      "(LFI at O2; WAMR column only for the Wasm-compatible subset)\n");
  lfi::bench::Table(&json);
  return json.Write() ? 0 : 1;
}
