// Request-serving benchmarks (docs/SERVING.md).
//
//   warm     open-loop Poisson traffic served from the warm SpawnPool:
//            take a parked sandbox, run the request, recycle via snapshot
//            restore — the near-zero-cost request path the paper's
//            scalability story needs
//   cold     identical traffic, but every request pays a full ELF load
//            (the baseline the pool is measured against)
//   storm    chaos storm injected mid-serving with parked sandboxes
//            killed behind the pool's back: victims (tier 0) restart and
//            fail, bystander tenants (tier 1) must keep a clean SLO
//   resilience  tenant-scoped chaos (ServeConfig::chaos): tenant 0 faults
//            continuously under a tight-gap storm while retries, its
//            circuit breaker, and binding-scoped victimhood keep the
//            other tenants' SLOs spotless
//   closed   closed-loop clients with think time
//   bursty   synchronized arrival batches against admission control
//
// Throughput and p50/p99/p999 latency are simulated-clock quantities, so
// every number here is exact and machine-independent; the same seed
// replays byte-identically (self-gated below, and soaked in CI).
//
// Gates: warm throughput >= 5x cold at equal offered load; byte-identical
// same-seed replay (warm and storm); storm exercises the dead-parked
// purge without any bystander-tenant SLO violation.

#include <memory>
#include <string>

#include "chaos/chaos.h"
#include "harness.h"
#include "runtime/spawn_pool.h"
#include "serve/serve.h"

namespace lfi::bench {
namespace {

using lfi::serve::Request;
using lfi::serve::ServeConfig;
using lfi::serve::ServeReport;
using lfi::serve::Server;
using lfi::serve::TrafficKind;

// The request handler: service-sized image (~1MiB data, 64+ pages — the
// shape where cold loads hurt), a little compute, one write, clean exit.
const char* kHandlerProg = R"(
    movz x19, #1500
  spin:
    sub x19, x19, #1
    cbnz x19, spin
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x0, #1
    mov x2, #2
    rtcall #1
    mov x0, #0
    rtcall #0
  .data
  msg:
    .asciz "ok"
  payload:
    .zero 1048576
)";

// A warm serving stack: runtime, pool snapshot captured from a template
// load (the template itself never serves), and the pool.
struct Stack {
  lfi::runtime::Runtime rt;
  std::shared_ptr<const lfi::snapshot::Snapshot> snap;
  std::unique_ptr<lfi::runtime::SpawnPool> pool;
  std::string error;

  explicit Stack(const Built& b)
      : rt([] {
          lfi::runtime::RuntimeConfig cfg;
          cfg.core = lfi::arch::AppleM1LikeParams();
          return cfg;
        }()) {
    auto pid = rt.Load({b.elf.data(), b.elf.size()});
    if (!pid.ok()) {
      error = pid.error();
      return;
    }
    auto cap = rt.CaptureSnapshot(*pid);
    if (!cap.ok()) {
      error = cap.error();
      return;
    }
    snap = std::make_shared<const lfi::snapshot::Snapshot>(*std::move(cap));
    if (auto st = rt.Kill(*pid, "template"); !st.ok()) {
      error = st.error();
      return;
    }
    pool = std::make_unique<lfi::runtime::SpawnPool>(&rt, snap);
  }
};

ServeConfig BaseConfig(TrafficKind kind, uint64_t seed, uint64_t requests) {
  ServeConfig cfg;
  cfg.traffic.kind = kind;
  cfg.traffic.seed = seed;
  cfg.traffic.requests = requests;
  cfg.traffic.rate_per_mcycle = 2000;  // saturating offered load
  cfg.traffic.tenants = 4;
  cfg.tiers.resize(1);
  cfg.tiers[0].slo_cycles = 20000000;
  cfg.admission.max_queue_depth = 256;
  cfg.admission.shed_on_deadline = false;
  cfg.max_concurrency = 8;
  cfg.pool_min = 4;
  cfg.pool_max = 32;
  return cfg;
}

void AddLatencies(JsonReport* report, const std::string& prefix,
                  const ServeReport& rep) {
  report->Add(prefix + ".p50.cycles",
              static_cast<double>(rep.LatencyPercentile(50)));
  report->Add(prefix + ".p99.cycles",
              static_cast<double>(rep.LatencyPercentile(99)));
  report->Add(prefix + ".p999.cycles",
              static_cast<double>(rep.LatencyPercentile(99.9)));
  report->Add(prefix + ".makespan.cycles",
              static_cast<double>(rep.makespan()));
  report->Add(prefix + ".throughput_per_mcycle", rep.ThroughputPerMcycle());
  report->Add(prefix + ".completed", static_cast<double>(rep.completed));
}

// Storm-while-serving with parked sandboxes killed behind the pool's
// back every few steps. Driven by Step() so the kills interleave with
// dispatch deterministically.
ServeReport RunStorm(const Built& b, uint64_t traffic_seed,
                     uint64_t chaos_seed, std::string* error) {
  Stack s(b);
  if (s.pool == nullptr) {
    *error = s.error;
    return {};
  }
  lfi::chaos::ChaosEngine storm(chaos_seed,
                                lfi::chaos::ProfileByName("storm"));
  s.rt.set_chaos(&storm);
  storm.MarkVictim(0);  // pin the victim set before anything runs

  ServeConfig cfg = BaseConfig(TrafficKind::kPoisson, traffic_seed, 400);
  cfg.traffic.rate_per_mcycle = 300;
  cfg.tiers.resize(2);
  cfg.tiers[0].name = "victim";
  cfg.tiers[0].policy.on_fault = lfi::runtime::FaultAction::kRestart;
  cfg.tiers[0].policy.restart_budget = 3;
  cfg.tiers[0].policy.restart_backoff_base_cycles = 100;
  cfg.tiers[0].slo_cycles = 20000000;
  cfg.tiers[1].name = "bystander";
  cfg.tiers[1].slo_cycles = 20000000;
  // One request per sandbox: a pid marked as a chaos victim must never
  // be recycled into a bystander tenant.
  cfg.recycle_sandboxes = false;
  cfg.on_dispatch = [&storm](int pid, const Request& r) {
    if (r.tier == 0) storm.MarkVictim(pid);
  };

  Server srv(&s.rt, cfg, s.pool.get());
  uint64_t steps = 0;
  while (srv.Step()) {
    if (++steps >= cfg.max_steps) break;
    // Every 13th step, kill every parked sandbox behind the pool's back:
    // Take() must purge the corpses (dead_parked) and fall back to a
    // request-path cold spawn when the pool is left dry — both bugfix
    // paths, under storm chaos.
    if (steps % 13 == 0) {
      for (int pid : s.pool->warm_pids()) {
        (void)s.rt.Kill(pid, "storm bench kill");
      }
    }
  }
  s.rt.set_chaos(nullptr);
  return srv.report();
}

// Resilience phase: tenant 0 is storm-scoped through ServeConfig::chaos
// (victimhood follows the tenant *binding* — marked at dispatch, unmarked
// at completion — so recycling stays on and healthy tenants may reuse a
// sandbox that previously served the faulting tenant). A tight fault gap
// guarantees every tenant-0 attempt faults; the kill policy turns each
// fault into a failed request, so retries burn down and the tenant's
// circuit opens, after which its arrivals fast-fail without consuming a
// sandbox. Healthy tenants (1-3) must come through spotless.
ServeReport RunResilience(const Built& b, uint64_t traffic_seed,
                          uint64_t chaos_seed, std::string* error,
                          std::string* transcript) {
  Stack s(b);
  if (s.pool == nullptr) {
    *error = s.error;
    return {};
  }
  lfi::chaos::ChaosProfile profile;
  profile.name = "bench-resilience";
  profile.cpu_faults = true;
  // The handler retires ~1500 instructions: a gap well below that makes
  // every victim attempt fault before it can finish.
  profile.min_fault_gap = 200;
  profile.max_fault_gap = 1000;
  lfi::chaos::ChaosEngine storm(chaos_seed, profile);
  s.rt.set_chaos(&storm);

  ServeConfig cfg = BaseConfig(TrafficKind::kPoisson, traffic_seed, 600);
  cfg.traffic.rate_per_mcycle = 400;
  cfg.tiers.resize(2);
  cfg.tiers[0].name = "storm";
  cfg.tiers[0].policy.on_fault = lfi::runtime::FaultAction::kKill;
  cfg.tiers[0].slo_cycles = 20000000;
  cfg.tiers[1].name = "healthy";
  cfg.tiers[1].slo_cycles = 20000000;
  cfg.retry.budget = 2;
  cfg.retry.backoff_base_cycles = 10000;
  cfg.retry.backoff_cap_cycles = 100000;
  cfg.breaker.failure_threshold = 4;
  cfg.breaker.open_cycles = 1000000;
  cfg.breaker.close_successes = 2;
  cfg.chaos = &storm;
  cfg.chaos_tenants = {0};

  Server srv(&s.rt, cfg, s.pool.get());
  const ServeReport& rep = srv.Run();
  if (transcript != nullptr) *transcript = rep.Format();
  s.rt.set_chaos(nullptr);
  return rep;
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  using namespace lfi::bench;
  JsonReport report = JsonReport::FromArgs(argc, argv);

  const Built b = BuildLfi(kHandlerProg, Config::kO2);
  if (!b.ok) {
    std::fprintf(stderr, "error: build: %s\n", b.error.c_str());
    return 1;
  }
  auto image = lfi::elf::Read({b.elf.data(), b.elf.size()});
  if (!image.ok()) {
    std::fprintf(stderr, "error: elf read: %s\n", image.error().c_str());
    return 1;
  }

  const uint64_t kSeed = 20240607;
  const uint64_t kRequests = 1500;

  // ---- Warm pool vs cold load, equal offered load ------------------------
  auto run_warm = [&](std::string* transcript) -> ServeReport {
    Stack s(b);
    if (s.pool == nullptr) {
      std::fprintf(stderr, "error: stack: %s\n", s.error.c_str());
      std::exit(1);
    }
    Server srv(&s.rt, BaseConfig(TrafficKind::kPoisson, kSeed, kRequests),
               s.pool.get());
    ServeReport rep = srv.Run();
    if (transcript != nullptr) *transcript = rep.Format();
    return rep;
  };

  std::string warm_transcript;
  const ServeReport warm = run_warm(&warm_transcript);

  lfi::runtime::RuntimeConfig cold_cfg;
  cold_cfg.core = lfi::arch::AppleM1LikeParams();
  lfi::runtime::Runtime cold_rt(cold_cfg);
  Server cold_srv(&cold_rt,
                  BaseConfig(TrafficKind::kPoisson, kSeed, kRequests),
                  &*image);
  const ServeReport cold = cold_srv.Run();

  const double speedup =
      cold.ThroughputPerMcycle() > 0
          ? warm.ThroughputPerMcycle() / cold.ThroughputPerMcycle()
          : 0.0;

  // ---- Determinism: same seed, fresh stack, byte-identical transcript ----
  std::string replay_transcript;
  (void)run_warm(&replay_transcript);
  const bool warm_deterministic = replay_transcript == warm_transcript;

  // ---- Storm chaos while serving -----------------------------------------
  std::string storm_err;
  const ServeReport storm = RunStorm(b, kSeed + 1, 4242, &storm_err);
  if (!storm_err.empty()) {
    std::fprintf(stderr, "error: storm: %s\n", storm_err.c_str());
    return 1;
  }
  const ServeReport storm_replay = RunStorm(b, kSeed + 1, 4242, &storm_err);
  const bool storm_deterministic =
      storm.Format() == storm_replay.Format();
  uint64_t bystander_failed = 0, bystander_slo = 0, bystander_done = 0;
  uint64_t victim_disrupted = 0;
  for (const auto& [tenant, s] : storm.tenants) {
    if (tenant % 2 == 1) {  // tenants 1,3 -> tier 1 (bystander)
      bystander_failed += s.failed;
      bystander_slo += s.slo_violations;
      bystander_done += s.completed;
    } else {
      victim_disrupted += s.failed + s.slo_violations;
    }
  }

  // ---- Resilience: storm-scoped tenant vs healthy tenants ----------------
  std::string resilience_err, resilience_transcript, resilience_replay;
  const ServeReport resilience =
      RunResilience(b, kSeed + 4, 777, &resilience_err,
                    &resilience_transcript);
  if (!resilience_err.empty()) {
    std::fprintf(stderr, "error: resilience: %s\n", resilience_err.c_str());
    return 1;
  }
  (void)RunResilience(b, kSeed + 4, 777, &resilience_err, &resilience_replay);
  const bool resilience_deterministic =
      resilience_replay == resilience_transcript;
  uint64_t healthy_shed = 0, healthy_slo = 0, healthy_failed = 0;
  uint64_t healthy_done = 0;
  for (const auto& [tenant, s] : resilience.tenants) {
    if (tenant == 0) continue;
    healthy_shed += s.shed;
    healthy_slo += s.slo_violations;
    healthy_failed += s.failed;
    healthy_done += s.completed;
  }
  const lfi::serve::TenantStats storm_tenant =
      resilience.tenants.count(0) ? resilience.tenants.at(0)
                                  : lfi::serve::TenantStats{};

  // ---- Closed-loop and bursty shapes -------------------------------------
  ServeConfig closed_cfg = BaseConfig(TrafficKind::kClosed, kSeed + 2, 800);
  closed_cfg.traffic.closed_clients = 8;
  closed_cfg.traffic.think_cycles = 10000;
  Stack closed_stack(b);
  Server closed_srv(&closed_stack.rt, closed_cfg, closed_stack.pool.get());
  const ServeReport closed = closed_srv.Run();

  ServeConfig burst_cfg = BaseConfig(TrafficKind::kBursty, kSeed + 3, 600);
  burst_cfg.traffic.burst_size = 48;
  burst_cfg.traffic.burst_period_cycles = 300000;
  burst_cfg.admission.max_queue_depth = 32;
  burst_cfg.admission.shed_on_deadline = true;
  burst_cfg.tiers[0].slo_cycles = 400000;
  Stack burst_stack(b);
  Server burst_srv(&burst_stack.rt, burst_cfg, burst_stack.pool.get());
  const ServeReport burst = burst_srv.Run();

  // ---- Report ------------------------------------------------------------
  std::printf("Request serving (simulated cycles, %llu Poisson requests)\n",
              (unsigned long long)kRequests);
  std::printf("%-8s %14s %10s %10s %10s %10s\n", "mode", "req/Mcycle",
              "p50", "p99", "p999", "completed");
  std::printf("%-8s %14.2f %10llu %10llu %10llu %10llu\n", "warm",
              warm.ThroughputPerMcycle(),
              (unsigned long long)warm.LatencyPercentile(50),
              (unsigned long long)warm.LatencyPercentile(99),
              (unsigned long long)warm.LatencyPercentile(99.9),
              (unsigned long long)warm.completed);
  std::printf("%-8s %14.2f %10llu %10llu %10llu %10llu\n", "cold",
              cold.ThroughputPerMcycle(),
              (unsigned long long)cold.LatencyPercentile(50),
              (unsigned long long)cold.LatencyPercentile(99),
              (unsigned long long)cold.LatencyPercentile(99.9),
              (unsigned long long)cold.completed);
  std::printf("warm/cold throughput: %.1fx (gate >= 5x)\n", speedup);
  std::printf("storm: dead_parked=%llu cold_spawns=%llu victims "
              "disrupted=%llu bystander failed=%llu slo_viol=%llu\n",
              (unsigned long long)storm.dead_parked,
              (unsigned long long)storm.cold_spawns,
              (unsigned long long)victim_disrupted,
              (unsigned long long)bystander_failed,
              (unsigned long long)bystander_slo);
  std::printf("resilience: storm tenant trips=%llu shed_breaker=%llu "
              "retried=%llu injected=%llu; healthy completed=%llu shed=%llu "
              "slo_viol=%llu failed=%llu\n",
              (unsigned long long)storm_tenant.breaker_trips,
              (unsigned long long)storm_tenant.shed_breaker,
              (unsigned long long)storm_tenant.retried,
              (unsigned long long)storm_tenant.injected_faults,
              (unsigned long long)healthy_done,
              (unsigned long long)healthy_shed,
              (unsigned long long)healthy_slo,
              (unsigned long long)healthy_failed);
  std::printf("closed: %llu completed, p99 %llu; bursty: %llu shed_queue, "
              "%llu shed_deadline\n",
              (unsigned long long)closed.completed,
              (unsigned long long)closed.LatencyPercentile(99),
              (unsigned long long)burst.shed_queue,
              (unsigned long long)burst.shed_deadline);

  AddLatencies(&report, "serving.warm", warm);
  AddLatencies(&report, "serving.cold", cold);
  report.Add("serving.warm_vs_cold.speedup", speedup);
  report.Add("serving.warm.recycles", static_cast<double>(warm.recycles));
  report.Add("serving.storm.dead_parked",
             static_cast<double>(storm.dead_parked));
  report.Add("serving.storm.bystander_failed",
             static_cast<double>(bystander_failed));
  report.Add("serving.storm.bystander_slo_violations",
             static_cast<double>(bystander_slo));
  AddLatencies(&report, "serving.closed", closed);
  report.Add("serving.bursty.shed_queue",
             static_cast<double>(burst.shed_queue));
  report.Add("serving.bursty.shed_deadline",
             static_cast<double>(burst.shed_deadline));
  report.Add("serving.resilience.healthy_completed",
             static_cast<double>(healthy_done));
  report.Add("serving.resilience.healthy_shed",
             static_cast<double>(healthy_shed));
  report.Add("serving.resilience.healthy_slo_violations",
             static_cast<double>(healthy_slo));
  report.Add("serving.resilience.storm_breaker_trips",
             static_cast<double>(storm_tenant.breaker_trips));
  report.Add("serving.resilience.storm_shed_breaker",
             static_cast<double>(storm_tenant.shed_breaker));
  report.Add("serving.resilience.storm_retried",
             static_cast<double>(storm_tenant.retried));
  if (!report.Write()) return 1;

  // ---- Gates -------------------------------------------------------------
  int rc = 0;
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: warm serving only %.1fx cold throughput "
                 "(need >= 5x)\n", speedup);
    rc = 1;
  }
  if (!warm_deterministic || !storm_deterministic) {
    std::fprintf(stderr, "FAIL: same-seed replay diverged (warm=%d "
                 "storm=%d)\n", warm_deterministic, storm_deterministic);
    rc = 1;
  }
  if (storm.dead_parked == 0 || storm.cold_spawns == 0) {
    std::fprintf(stderr, "FAIL: storm run missed a SpawnPool fallback path "
                 "(dead_parked=%llu cold_spawns=%llu)\n",
                 (unsigned long long)storm.dead_parked,
                 (unsigned long long)storm.cold_spawns);
    rc = 1;
  }
  if (bystander_failed != 0 || bystander_slo != 0 || bystander_done == 0) {
    std::fprintf(stderr, "FAIL: bystander tenants disrupted under storm "
                 "(failed=%llu slo=%llu completed=%llu)\n",
                 (unsigned long long)bystander_failed,
                 (unsigned long long)bystander_slo,
                 (unsigned long long)bystander_done);
    rc = 1;
  }
  if (!resilience_deterministic) {
    std::fprintf(stderr,
                 "FAIL: resilience same-seed replay diverged\n");
    rc = 1;
  }
  if (healthy_shed != 0 || healthy_slo != 0 || healthy_failed != 0 ||
      healthy_done == 0) {
    std::fprintf(stderr,
                 "FAIL: healthy tenants disturbed under storm-scoped chaos "
                 "(shed=%llu slo=%llu failed=%llu completed=%llu)\n",
                 (unsigned long long)healthy_shed,
                 (unsigned long long)healthy_slo,
                 (unsigned long long)healthy_failed,
                 (unsigned long long)healthy_done);
    rc = 1;
  }
  if (storm_tenant.breaker_trips == 0 || storm_tenant.shed_breaker == 0 ||
      storm_tenant.retried == 0 || storm_tenant.injected_faults == 0) {
    std::fprintf(stderr,
                 "FAIL: resilience phase did not exercise the storm tenant "
                 "(trips=%llu shed_breaker=%llu retried=%llu "
                 "injected=%llu)\n",
                 (unsigned long long)storm_tenant.breaker_trips,
                 (unsigned long long)storm_tenant.shed_breaker,
                 (unsigned long long)storm_tenant.retried,
                 (unsigned long long)storm_tenant.injected_faults);
    rc = 1;
  }
  if (warm.completed == 0 || cold.completed == 0 ||
      closed.completed != closed_cfg.traffic.requests) {
    std::fprintf(stderr, "FAIL: serving phases incomplete (warm=%llu "
                 "cold=%llu closed=%llu)\n",
                 (unsigned long long)warm.completed,
                 (unsigned long long)cold.completed,
                 (unsigned long long)closed.completed);
    rc = 1;
  }
  return rc;
}
