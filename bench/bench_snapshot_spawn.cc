// Snapshot instantiation benchmarks (docs/SNAPSHOTS.md).
//
//   elf-load        cold instantiation: parse + verify + zero + copy every
//                   page of the image (the modeled per-page load cost)
//   snapshot-spawn  warm instantiation from a captured image: COW page
//                   install only, nothing copied
//   restart-legacy  supervisor restart via full ELF remap (the pre-
//                   snapshot path, forced with set_restart_snapshot(pid,
//                   nullptr))
//   restart-restore supervisor restart via snapshot restore: only pages
//                   the crashed run actually dirtied are re-installed
//
// The substrate is deterministic, so the two restart runs differ *only*
// in the restart-path charge; the legacy cost is recovered empirically as
// (legacy clock delta - restore clock delta) + measured restore cost, with
// no reference to the cost-model constants.
//
// Gates (checked here and in BENCH_BASELINE.json): snapshot spawn >= 10x
// cheaper than ELF load; snapshot restart >= 5x cheaper than ELF-reload
// restart.

#include "harness.h"

namespace lfi::bench {
namespace {

// Hand-guarded build (the guard-region fault must survive to execution).
Built BuildRaw(const std::string& src) {
  Built b;
  auto file = asmtext::Parse(src);
  if (!file) {
    b.error = file.error();
    return b;
  }
  asmtext::LayoutSpec spec;
  spec.text_offset = runtime::kProgramStart;
  auto img = asmtext::Assemble(*file, spec);
  if (!img) {
    b.error = img.error();
    return b;
  }
  b.text_bytes = img->text.size();
  b.elf = elf::Write(elf::FromAssembled(*img));
  b.file_bytes = b.elf.size();
  b.ok = true;
  return b;
}

// A service-sized image (~1MiB of data, 64+ pages) that dirties one data
// page and then faults — the shape that makes restart interesting: the
// image is large, the delta is small.
std::string ServiceProg() {
  return R"(
    adrp x1, table
    add x1, x1, :lo12:table
    add x18, x21, w1, uxtw
    mov x2, #1
    str x2, [x18]           // dirty one data page
    movz x1, #0x4000
    add x18, x21, w1, uxtw
    ldr x0, [x18]           // guard-region fault
  .data
  table:
    .zero 1048576
  )";
}

struct RestartRun {
  bool ok = false;
  uint64_t total_cycles = 0;
  uint32_t restarts = 0;
  uint64_t restore_cycles = 0;  // last_instantiation after the run
  std::string error;
};

RestartRun RunRestartLoop(const Built& b, bool force_legacy, int budget) {
  RestartRun r;
  runtime::RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  runtime::Runtime rt(cfg);
  auto pid = rt.Load({b.elf.data(), b.elf.size()});
  if (!pid.ok()) {
    r.error = pid.error();
    return r;
  }
  if (force_legacy) rt.set_restart_snapshot(*pid, nullptr);
  runtime::SupervisorPolicy pol;
  pol.on_fault = runtime::FaultAction::kRestart;
  pol.restart_budget = static_cast<uint32_t>(budget);
  pol.restart_backoff_base_cycles = 0;
  rt.set_policy(*pid, pol);
  const uint64_t c0 = rt.Cycles();
  rt.RunUntilIdle(uint64_t{200} * 1000 * 1000);
  const auto* p = rt.proc(*pid);
  if (p->restarts != static_cast<uint32_t>(budget)) {
    r.error = "restart budget not consumed";
    return r;
  }
  r.total_cycles = rt.Cycles() - c0;
  r.restarts = p->restarts;
  r.restore_cycles = rt.last_instantiation().cycles;
  r.ok = true;
  return r;
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  using namespace lfi::bench;
  JsonReport report = JsonReport::FromArgs(argc, argv);
  const lfi::arch::CoreParams core = lfi::arch::AppleM1LikeParams();

  const Built b = BuildRaw(ServiceProg());
  if (!b.ok) {
    std::fprintf(stderr, "error: build: %s\n", b.error.c_str());
    return 1;
  }

  // ---- Instantiation: ELF load vs snapshot spawn -------------------------
  lfi::runtime::RuntimeConfig cfg;
  cfg.core = core;
  lfi::runtime::Runtime rt(cfg);
  auto pid = rt.Load({b.elf.data(), b.elf.size()});
  if (!pid.ok()) {
    std::fprintf(stderr, "error: load: %s\n", pid.error().c_str());
    return 1;
  }
  const double load_cycles = static_cast<double>(rt.last_instantiation().cycles);
  const double image_pages = static_cast<double>(rt.last_instantiation().pages);

  auto cap = rt.CaptureSnapshot(*pid);
  if (!cap.ok()) {
    std::fprintf(stderr, "error: capture: %s\n", cap.error().c_str());
    return 1;
  }
  auto snap =
      std::make_shared<lfi::snapshot::Snapshot>(*std::move(cap));
  auto spawned = rt.SpawnFromSnapshot(snap, /*start=*/false);
  if (!spawned.ok()) {
    std::fprintf(stderr, "error: spawn: %s\n", spawned.error().c_str());
    return 1;
  }
  const double spawn_cycles =
      static_cast<double>(rt.last_instantiation().cycles);
  const double spawn_speedup = load_cycles / spawn_cycles;

  // ---- Restart: ELF remap vs snapshot restore ----------------------------
  const int kBudget = 100;
  const RestartRun legacy = RunRestartLoop(b, /*force_legacy=*/true, kBudget);
  const RestartRun restore = RunRestartLoop(b, /*force_legacy=*/false, kBudget);
  for (const RestartRun* r : {&legacy, &restore}) {
    if (!r->ok) {
      std::fprintf(stderr, "error: restart loop: %s\n", r->error.c_str());
      return 1;
    }
  }
  // Identical runs except for the restart-path charge, so the per-round
  // clock difference is exactly (legacy charge - restore charge).
  const double restore_cycles = static_cast<double>(restore.restore_cycles);
  const double legacy_cycles =
      restore_cycles + static_cast<double>(legacy.total_cycles -
                                           restore.total_cycles) /
                           legacy.restarts;
  const double restart_speedup = legacy_cycles / restore_cycles;

  std::printf("Snapshot instantiation (%s, simulated cycles; image %.0f "
              "pages)\n",
              core.name.c_str(), image_pages);
  std::printf("%-18s %12s %10s\n", "path", "cycles", "speedup");
  std::printf("%-18s %12.1f %10s\n", "elf-load", load_cycles, "1.0x");
  std::printf("%-18s %12.1f %9.1fx\n", "snapshot-spawn", spawn_cycles,
              spawn_speedup);
  std::printf("%-18s %12.1f %10s\n", "restart-legacy", legacy_cycles, "1.0x");
  std::printf("%-18s %12.1f %9.1fx\n", "restart-restore", restore_cycles,
              restart_speedup);

  report.Add("snapshot.elf-load.cycles", load_cycles);
  report.Add("snapshot.spawn.cycles", spawn_cycles);
  report.Add("snapshot.spawn.speedup", spawn_speedup);
  report.Add("snapshot.restart-legacy.cycles", legacy_cycles);
  report.Add("snapshot.restart-restore.cycles", restore_cycles);
  report.Add("snapshot.restart.speedup", restart_speedup);
  if (!report.Write()) return 1;

  // Self-gating: the headline claims of docs/SNAPSHOTS.md.
  if (spawn_speedup < 10.0) {
    std::fprintf(stderr, "FAIL: snapshot spawn only %.1fx cheaper than ELF "
                 "load (need >= 10x)\n", spawn_speedup);
    return 1;
  }
  if (restart_speedup < 5.0) {
    std::fprintf(stderr, "FAIL: snapshot restart only %.1fx cheaper than "
                 "ELF-reload restart (need >= 5x)\n", restart_speedup);
    return 1;
  }
  return 0;
}
