// Table 5: isolation-domain-crossing microbenchmarks.
//
// The LFI column is *measured*: the programs below execute in the runtime
// and we report simulated nanoseconds per operation. The Linux and gVisor
// columns are reference values - the paper's own measurements (Table 5)
// quoted for comparison, since this repository's substrate has no real
// kernel to context-switch through. Expected shape: LFI syscalls ~6x
// faster than Linux, pipes ~30x, and a cross-sandbox yield of a few tens
// of nanoseconds.

#include "harness.h"

namespace lfi::bench {
namespace {

constexpr int kIters = 20000;

// Builds and loads `src`, runs to completion, returns total cycles.
struct MicroResult {
  bool ok = false;
  uint64_t cycles = 0;
  std::string error;
};

MicroResult RunPrograms(const std::vector<std::string>& sources,
                        const arch::CoreParams& core) {
  MicroResult r;
  runtime::RuntimeConfig cfg;
  cfg.core = core;
  runtime::Runtime rt(cfg);
  for (const auto& src : sources) {
    const Built b = BuildLfi(src, Config::kO2);
    if (!b.ok) {
      r.error = b.error;
      return r;
    }
    auto pid = rt.Load({b.elf.data(), b.elf.size()});
    if (!pid.ok()) {
      r.error = pid.error();
      return r;
    }
  }
  if (rt.RunUntilIdle(uint64_t{600} * 1000 * 1000) != 0) {
    r.error = "programs did not finish";
    return r;
  }
  r.ok = true;
  r.cycles = rt.Cycles();
  return r;
}

std::string Iters() { return std::to_string(kIters); }

// getpid in a loop.
std::string SyscallProgram() {
  return R"(
    movz x19, #)" + Iters() + R"(
  loop:
    rtcall #12
    subs x19, x19, #1
    b.ne loop
    mov x0, #0
    rtcall #0
  )";
}

// Two pipes between parent and child; one byte bounces back and forth.
std::string PipeProgram() {
  return R"(
    adrp x25, fds
    add x25, x25, :lo12:fds
    mov x0, x25
    rtcall #10              // pipe A: a_read, a_write
    add x0, x25, #8
    rtcall #10              // pipe B
    rtcall #8               // fork
    cbz x0, child
    movz x19, #)" + Iters() + R"(
  ploop:
    ldr w0, [x25, #4]       // a_write
    add x1, x25, #16
    mov x2, #1
    rtcall #1               // write 1 byte to A
    ldr w0, [x25, #8]       // b_read
    add x1, x25, #16
    mov x2, #1
    rtcall #2               // read 1 byte from B
    subs x19, x19, #1
    b.ne ploop
    mov x0, #0              // no status pointer
    rtcall #9               // wait for the child
    mov x0, #0
    rtcall #0
  child:
    movz x19, #)" + Iters() + R"(
  cloop:
    ldr w0, [x25]           // a_read
    add x1, x25, #16
    mov x2, #1
    rtcall #2
    ldr w0, [x25, #12]      // b_write
    add x1, x25, #16
    mov x2, #1
    rtcall #1
    subs x19, x19, #1
    b.ne cloop
    mov x0, #0
    rtcall #0
  .bss
  fds:
    .zero 32
  )";
}

// Partner sandboxes bouncing control with the fast direct yield. Each
// program yields to the other; pids are 1 and 2.
std::string YieldProgram(int self, int partner) {
  return R"(
    movz x19, #)" + Iters() + R"(
    mov x9, #)" + std::to_string(partner) + R"(
  yloop:
    mov x0, x9
    rtcall #14              // yield_to(partner)
    subs x19, x19, #1
    b.ne yloop
    mov x0, #)" + std::to_string(self) + R"(
    rtcall #0
  )";
}

void RunCore(const arch::CoreParams& core, bool with_gvisor,
             double linux_syscall_ns, double linux_pipe_ns,
             double gvisor_syscall_ns, double gvisor_pipe_ns,
             JsonReport* json) {
  std::printf("\n%s (%.1f GHz)\n", core.name.c_str(), core.ghz);
  std::printf("%-10s %10s %10s %10s\n", "benchmark", "LFI",
              "Linux(ref)", with_gvisor ? "gVisor(ref)" : "");
  const std::string prefix = "table5." + core.name + ".";

  // syscall: ns per getpid round trip.
  {
    auto base = RunPrograms({"mov x0, #0\nrtcall #0\n"}, core);
    auto r = RunPrograms({SyscallProgram()}, core);
    if (r.ok && base.ok) {
      const double ns =
          static_cast<double>(r.cycles - base.cycles) / kIters / core.ghz;
      std::printf("%-10s %8.0fns %8.0fns", "syscall", ns, linux_syscall_ns);
      if (with_gvisor) std::printf(" %9.0fns", gvisor_syscall_ns);
      std::printf("\n");
      json->Add(prefix + "syscall.cycles",
                static_cast<double>(r.cycles - base.cycles));
      json->Add(prefix + "syscall.ns", ns);
    } else {
      std::printf("syscall ERROR %s\n", r.error.c_str());
    }
  }
  // pipe: ns per one-way byte handoff (two handoffs per loop iteration).
  {
    auto r = RunPrograms({PipeProgram()}, core);
    if (r.ok) {
      const double ns =
          static_cast<double>(r.cycles) / (2.0 * kIters) / core.ghz;
      std::printf("%-10s %8.0fns %8.0fns", "pipe", ns, linux_pipe_ns);
      if (with_gvisor) std::printf(" %9.0fns", gvisor_pipe_ns);
      std::printf("\n");
      json->Add(prefix + "pipe.cycles", static_cast<double>(r.cycles));
      json->Add(prefix + "pipe.ns", ns);
    } else {
      std::printf("pipe ERROR %s\n", r.error.c_str());
    }
  }
  // yield: ns per cross-sandbox call (two yields per loop iteration pair).
  {
    auto r = RunPrograms({YieldProgram(1, 2), YieldProgram(2, 1)}, core);
    if (r.ok) {
      const double ns =
          static_cast<double>(r.cycles) / (2.0 * kIters) / core.ghz;
      std::printf("%-10s %8.0fns %10s", "yield", ns, "-");
      if (with_gvisor) std::printf(" %10s", "-");
      std::printf("\n");
      json->Add(prefix + "yield.cycles", static_cast<double>(r.cycles));
      json->Add(prefix + "yield.ns", ns);
    } else {
      std::printf("yield ERROR %s\n", r.error.c_str());
    }
  }
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  auto json = lfi::bench::JsonReport::FromArgs(argc, argv);
  std::printf(
      "=== Table 5: isolation-crossing microbenchmarks ===\n"
      "LFI values are measured in-simulator; Linux/gVisor columns are the\n"
      "paper's reported measurements, shown as the hardware-protection\n"
      "reference points.\n");
  lfi::bench::RunCore(lfi::arch::AppleM1LikeParams(), /*with_gvisor=*/false,
                      129, 1504, 0, 0, &json);
  lfi::bench::RunCore(lfi::arch::GcpT2aLikeParams(), /*with_gvisor=*/true,
                      160, 2494, 12019, 22899, &json);
  return json.Write() ? 0 : 1;
}
