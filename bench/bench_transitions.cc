// Embedded-transition microbench (docs/EMBEDDING.md): the cost of
// crossing the host<->sandbox boundary through the typed embedding API.
//
//   call      — one typed Call<> round trip into a no-op export
//   callback  — incremental cost of one guest->host->guest hostcall
//   rawcall   — one function-pointer call *inside* the sandbox whose
//               target varies call-to-call (the "it's just a function
//               call" floor: boundary calls dispatch to arbitrary
//               exports, so the honest in-sandbox equivalent is an
//               indirect call the BTB cannot lock onto, not a single
//               hot direct callee)
//   directcall — one steady-state bl/ret pair (predicted; reported for
//               scale but not gated — no boundary mechanism can match a
//               perfectly-predicted empty call)
//   marshal4k / shm4k — summing 4 KiB passed per-call as a marshalled
//               BufIn vs. through a pre-mapped shared region
//
// Two self-gates make this binary fail loudly instead of drifting:
// the typed-call round trip must stay within 5x of a raw in-sandbox
// function call, and the shared-memory path must beat per-call
// marshalling. A third check runs the whole workload under all three
// dispatch backends and requires identical simulated cycles.

#include <cstring>

#include "embed/abi.h"
#include "embed/embed.h"
#include "harness.h"

namespace lfi::bench {
namespace {

constexpr int kCalls = 2000;        // typed call / callback loops
constexpr int kRawCalls = 10000;    // in-guest calls (delta-measured)
constexpr int kBufCalls = 200;      // 4 KiB buffer loops
constexpr uint64_t kBufBytes = 4096;

std::string TransitionModule() {
  const std::vector<embed::GuestExport> exports = {
      {"noop", "noop"},
      {"echo", "echo_cb"},
      {"sum", "sum_buf"},
      {"callloop", "callloop"},
      {"ptrloop", "ptrloop"},
  };
  const char* body = R"(
noop:
  ret
echo_cb:
  hostcall #0
  ret
sum_buf:
  mov x9, x0
  mov x0, #0
  cbz x1, sum_done
sum_loop:
  ldrb w10, [x9]
  add x0, x0, x10
  add x9, x9, #1
  sub x1, x1, #1
  cbnz x1, sum_loop
sum_done:
  ret
callloop:
  mov x20, x30
  mov x9, x0
cl_loop:
  bl cl_leaf
  sub x9, x9, #1
  cbnz x9, cl_loop
  mov x30, x20
  ret
cl_leaf:
  ret
ptrloop:
  mov x20, x30
  mov x9, x0
  adr x11, pl_leaf1
  adr x12, pl_leaf2
pl_loop:
  blr x11
  mov x13, x11
  mov x11, x12
  mov x12, x13
  sub x9, x9, #1
  cbnz x9, pl_loop
  mov x30, x20
  ret
pl_leaf1:
  ret
pl_leaf2:
  ret
)";
  return embed::GuestModuleSource(exports, body);
}

struct Measured {
  bool ok = false;
  std::string error;
  double call_cycles = 0;      // per typed no-op round trip
  double callback_cycles = 0;  // incremental hostcall round trip
  double rawcall_cycles = 0;   // per in-guest varying-target pointer call
  double directcall_cycles = 0;  // per steady-state bl/ret pair
  double marshal_cycles = 0;   // per 4 KiB BufIn call
  double shm_cycles = 0;       // per 4 KiB shared-region call
  uint64_t total_cycles = 0;   // final simulated clock (identity check)
};

Measured RunWorkload(emu::Dispatch dispatch) {
  Measured m;
  auto built = BuildLfi(TransitionModule(), Config::kO2);
  if (!built.ok) {
    m.error = built.error;
    return m;
  }
  runtime::RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  cfg.dispatch = dispatch;
  runtime::Runtime rt(cfg);
  auto sb = embed::Sandbox::Create(rt, {built.elf.data(), built.elf.size()});
  if (!sb.ok()) {
    m.error = sb.error();
    return m;
  }
  embed::Sandbox& s = **sb;
  s.BindCallback(0, std::function<uint64_t(uint64_t)>(
                        [](uint64_t x) { return x; }));
  auto fail = [&m](const std::string& what, const std::string& detail) {
    m.error = what + ": " + detail;
    return m;
  };

  // Typed no-op round trips.
  uint64_t t0 = rt.Cycles();
  for (int i = 0; i < kCalls; ++i) {
    auto r = s.Call<uint64_t()>("noop");
    if (!r.ok()) return fail("noop", r.detail);
  }
  m.call_cycles = static_cast<double>(rt.Cycles() - t0) / kCalls;

  // Callback round trips (echo = one call + one hostcall).
  t0 = rt.Cycles();
  for (int i = 0; i < kCalls; ++i) {
    auto r = s.Call<uint64_t(uint64_t)>("echo", i);
    if (!r.ok()) return fail("echo", r.detail);
    if (r.value != static_cast<uint64_t>(i)) return fail("echo", "bad value");
  }
  m.callback_cycles =
      static_cast<double>(rt.Cycles() - t0) / kCalls - m.call_cycles;

  // Raw in-guest calls, delta-measured so the embedded-entry cost and the
  // loop prologue cancel out. `ptrloop` (the gated floor) calls through a
  // pointer that alternates between two leaves, like a dispatch table;
  // `callloop` is the steady-state predicted bl/ret for scale.
  auto raw_pair = [&](const char* fn, double* out) -> bool {
    auto warm = s.Call<uint64_t(uint64_t)>(fn, 64);
    if (!warm.ok()) {
      fail(fn, warm.detail);
      return false;
    }
    uint64_t c0 = rt.Cycles();
    auto a = s.Call<uint64_t(uint64_t)>(fn, 64);
    if (!a.ok()) {
      fail(fn, a.detail);
      return false;
    }
    const uint64_t c_short = rt.Cycles() - c0;
    c0 = rt.Cycles();
    auto b = s.Call<uint64_t(uint64_t)>(fn, 64 + kRawCalls);
    if (!b.ok()) {
      fail(fn, b.detail);
      return false;
    }
    const uint64_t c_long = rt.Cycles() - c0;
    *out = static_cast<double>(c_long - c_short) / kRawCalls;
    return true;
  };
  if (!raw_pair("ptrloop", &m.rawcall_cycles)) return m;
  if (!raw_pair("callloop", &m.directcall_cycles)) return m;

  // 4 KiB per call: marshalled copy vs. pre-mapped shared region.
  std::vector<uint8_t> buf(kBufBytes, 7);
  const uint64_t want = 7 * kBufBytes;
  t0 = rt.Cycles();
  for (int i = 0; i < kBufCalls; ++i) {
    auto r = s.Call<uint64_t(embed::BufIn, uint64_t)>(
        "sum", embed::BufIn{buf.data(), buf.size()}, kBufBytes);
    if (!r.ok() || r.value != want) return fail("sum/bufin", r.detail);
  }
  m.marshal_cycles = static_cast<double>(rt.Cycles() - t0) / kBufCalls;

  auto shm = s.MapShared(kBufBytes);
  if (!shm.ok()) return fail("shm", shm.error());
  if (!shm->Write(0, {buf.data(), buf.size()}).ok()) {
    return fail("shm", "write failed");
  }
  t0 = rt.Cycles();
  for (int i = 0; i < kBufCalls; ++i) {
    auto r = s.Call<uint64_t(embed::GuestPtr, uint64_t)>("sum", shm->ptr(),
                                                         kBufBytes);
    if (!r.ok() || r.value != want) return fail("sum/shm", r.detail);
  }
  m.shm_cycles = static_cast<double>(rt.Cycles() - t0) / kBufCalls;

  m.total_cycles = rt.Cycles();
  m.ok = true;
  return m;
}

}  // namespace
}  // namespace lfi::bench

int main(int argc, char** argv) {
  using namespace lfi::bench;
  auto json = JsonReport::FromArgs(argc, argv);
  std::printf("=== Embedded transitions (typed host<->sandbox calls) ===\n");

  const Measured m = RunWorkload(lfi::emu::Dispatch::kBlock);
  if (!m.ok) {
    std::fprintf(stderr, "bench_transitions: %s\n", m.error.c_str());
    return 1;
  }
  const double ghz = lfi::arch::AppleM1LikeParams().ghz;
  std::printf("%-28s %10.1f cycles %8.1f ns\n", "typed call round trip",
              m.call_cycles, m.call_cycles / ghz);
  std::printf("%-28s %10.1f cycles %8.1f ns\n", "callback round trip (incr)",
              m.callback_cycles, m.callback_cycles / ghz);
  std::printf("%-28s %10.1f cycles %8.1f ns\n", "raw in-sandbox ptr call",
              m.rawcall_cycles, m.rawcall_cycles / ghz);
  std::printf("%-28s %10.1f cycles %8.1f ns\n", "predicted direct call",
              m.directcall_cycles, m.directcall_cycles / ghz);
  std::printf("%-28s %10.1f cycles %8.1f ns\n", "sum 4KiB via BufIn marshal",
              m.marshal_cycles, m.marshal_cycles / ghz);
  std::printf("%-28s %10.1f cycles %8.1f ns\n", "sum 4KiB via shared region",
              m.shm_cycles, m.shm_cycles / ghz);
  const double ratio = m.call_cycles / m.rawcall_cycles;
  std::printf("typed call = %.2fx a raw in-sandbox function call\n", ratio);

  json.Add("transitions.call.cycles", m.call_cycles);
  json.Add("transitions.callback.cycles", m.callback_cycles);
  json.Add("transitions.rawcall.cycles", m.rawcall_cycles);
  json.Add("transitions.directcall.cycles", m.directcall_cycles);
  json.Add("transitions.marshal4k.cycles", m.marshal_cycles);
  json.Add("transitions.shm4k.cycles", m.shm_cycles);
  json.Add("transitions.call_vs_raw_ratio", ratio);

  int rc = 0;
  // Gate 1: the typed boundary must stay within 5x of an in-sandbox call.
  if (!(ratio <= 5.0)) {
    std::fprintf(stderr,
                 "GATE FAILED: typed call is %.2fx a raw call (limit 5x)\n",
                 ratio);
    rc = 1;
  }
  // Gate 2: shared memory must beat per-call marshalling for bulk data.
  if (!(m.shm_cycles < m.marshal_cycles)) {
    std::fprintf(stderr,
                 "GATE FAILED: shm path (%.1f cy) not cheaper than "
                 "marshalling (%.1f cy)\n",
                 m.shm_cycles, m.marshal_cycles);
    rc = 1;
  }
  // Gate 3: the whole workload must cost identical simulated cycles under
  // every dispatch backend.
  const Measured chained = RunWorkload(lfi::emu::Dispatch::kChained);
  const Measured step = RunWorkload(lfi::emu::Dispatch::kStep);
  const bool identical = chained.ok && step.ok &&
                         chained.total_cycles == m.total_cycles &&
                         step.total_cycles == m.total_cycles;
  std::printf("backend identity: block=%llu chained=%llu step=%llu -> %s\n",
              static_cast<unsigned long long>(m.total_cycles),
              static_cast<unsigned long long>(chained.total_cycles),
              static_cast<unsigned long long>(step.total_cycles),
              identical ? "ok" : "MISMATCH");
  json.Add("transitions.backend_identity.exact", identical ? 1.0 : 0.0);
  if (!identical) {
    std::fprintf(stderr, "GATE FAILED: dispatch backends disagree\n");
    rc = 1;
  }
  if (!json.Write()) rc = 1;
  return rc;
}
