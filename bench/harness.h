// Shared experiment harness for the paper-reproduction benchmarks.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (Section 6). Because the substrate is a deterministic
// simulator, results are exact and repeatable; "time" means simulated
// cycles/nanoseconds under the core models in arch/cost_model.h.
#ifndef LFI_BENCH_HARNESS_H_
#define LFI_BENCH_HARNESS_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "elf/elf.h"
#include "rewriter/rewriter.h"
#include "runtime/runtime.h"
#include "trace/trace.h"
#include "wasm/wasm.h"
#include "workloads/workloads.h"

namespace lfi::bench {

// A built sandbox executable plus size accounting for Section 6.3.
struct Built {
  std::vector<uint8_t> elf;
  size_t text_bytes = 0;
  size_t file_bytes = 0;
  bool ok = false;
  std::string error;
};

// LFI build configurations matching the paper's evaluation.
enum class Config {
  kNative,        // no guards (baseline; runs inside the LFI runtime)
  kO0,
  kO1,
  kO2,
  kO2NoLoads,     // stores+jumps only ("O2, no loads")
};

inline const char* ConfigName(Config c) {
  switch (c) {
    case Config::kNative: return "native";
    case Config::kO0: return "LFI O0";
    case Config::kO1: return "LFI O1";
    case Config::kO2: return "LFI O2";
    case Config::kO2NoLoads: return "LFI O2, no loads";
  }
  return "?";
}

inline Built BuildLfi(const std::string& src, Config config,
                      rewriter::RewriteStats* stats = nullptr) {
  Built b;
  auto file = asmtext::Parse(src);
  if (!file) {
    b.error = file.error();
    return b;
  }
  rewriter::RewriteOptions opts;
  switch (config) {
    case Config::kNative: opts.insert_guards = false; break;
    case Config::kO0: opts.level = rewriter::OptLevel::kO0; break;
    case Config::kO1: opts.level = rewriter::OptLevel::kO1; break;
    case Config::kO2: opts.level = rewriter::OptLevel::kO2; break;
    case Config::kO2NoLoads:
      opts.level = rewriter::OptLevel::kO2;
      opts.sandbox_loads = false;
      break;
  }
  auto rewritten = rewriter::Rewrite(*file, opts, stats);
  if (!rewritten) {
    b.error = rewritten.error();
    return b;
  }
  asmtext::LayoutSpec spec;
  spec.text_offset = runtime::kProgramStart;
  auto img = asmtext::Assemble(*rewritten, spec);
  if (!img) {
    b.error = img.error();
    return b;
  }
  b.text_bytes = img->text.size();
  b.elf = elf::Write(elf::FromAssembled(*img));
  b.file_bytes = b.elf.size();
  b.ok = true;
  return b;
}

inline Built BuildWasm(const std::string& src, wasm::Engine engine) {
  Built b;
  auto file = asmtext::Parse(src);
  if (!file) {
    b.error = file.error();
    return b;
  }
  auto instrumented = wasm::Instrument(*file, engine);
  if (!instrumented) {
    b.error = instrumented.error();
    return b;
  }
  rewriter::RewriteOptions opts;
  opts.insert_guards = false;
  auto expanded = rewriter::Rewrite(*instrumented, opts);
  if (!expanded) {
    b.error = expanded.error();
    return b;
  }
  asmtext::LayoutSpec spec;
  spec.text_offset = runtime::kProgramStart;
  auto img = asmtext::Assemble(*expanded, spec);
  if (!img) {
    b.error = img.error();
    return b;
  }
  b.text_bytes = img->text.size();
  b.elf = elf::Write(elf::FromAssembled(*img));
  b.file_bytes = b.elf.size();
  b.ok = true;
  return b;
}

struct Outcome {
  bool ok = false;
  uint64_t cycles = 0;
  uint64_t insts = 0;
  int status = 0;
  // Host wall-clock time spent inside RunUntilIdle, for measuring the
  // interpreter's own throughput (simulated results never depend on it).
  double host_seconds = 0.0;
  std::string error;
};

// Runs a built executable to completion on the given core model. Pass a
// TraceSink to decompose the run into per-sandbox counters (guards
// executed, loads/stores, block-cache traffic, ...) — attaching one must
// not change any simulated result, only host time.
inline Outcome Run(const Built& built, const arch::CoreParams& core,
                   bool verify, bool check_loads = true,
                   bool nested_pagetables = false,
                   emu::Dispatch dispatch = emu::Dispatch::kBlock,
                   trace::TraceSink* sink = nullptr) {
  Outcome o;
  if (!built.ok) {
    o.error = built.error;
    return o;
  }
  runtime::RuntimeConfig cfg;
  cfg.core = core;
  cfg.enforce_verification = verify;
  cfg.verify.check_loads = check_loads;
  runtime::Runtime rt(cfg);
  rt.machine().timing().set_nested_pagetables(nested_pagetables);
  rt.machine().set_dispatch(dispatch);
  if (sink != nullptr) rt.set_trace_sink(sink);
  auto pid = rt.Load({built.elf.data(), built.elf.size()});
  if (!pid.ok()) {
    o.error = pid.error();
    return o;
  }
  const auto t0 = std::chrono::steady_clock::now();
  rt.RunUntilIdle(uint64_t{2000} * 1000 * 1000);
  const auto t1 = std::chrono::steady_clock::now();
  o.host_seconds = std::chrono::duration<double>(t1 - t0).count();
  const auto* p = rt.proc(*pid);
  if (p->exit_kind != runtime::ExitKind::kExited) {
    o.error = "killed: " + p->fault_detail;
    return o;
  }
  o.ok = true;
  o.cycles = rt.Cycles();
  o.insts = rt.machine().timing().Retired();
  o.status = p->exit_status;
  return o;
}

// Machine-readable results sink for the CI bench-regression gate.
//
// Each bench binary may be invoked with `--json <path>`; every metric it
// prints for humans is also Add()ed here, and Write() emits them as one
// flat JSON object `{"metric.name": value, ...}`. Because the substrate
// is a deterministic simulator the values are exact, so the regression
// checker (tools/check_bench_regression.py) can compare runs across
// machines. Write() merges into an existing file so several bench
// binaries can share one output path.
class JsonReport {
 public:
  // Scans argv for `--json <path>` (or `--json=<path>`). With no flag the
  // report is disabled and Add/Write are no-ops.
  static JsonReport FromArgs(int argc, char** argv) {
    JsonReport r;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        r.path_ = argv[i + 1];
      } else if (arg.rfind("--json=", 0) == 0) {
        r.path_ = arg.substr(7);
      }
    }
    return r;
  }

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& metric, double value) {
    if (enabled()) metrics_[metric] = value;
  }

  // Writes all metrics, merged over any that a previous bench binary
  // already recorded in the same file. Returns false on I/O failure.
  bool Write() const {
    if (!enabled()) return true;
    std::map<std::string, double> all = ReadExisting();
    for (const auto& [k, v] : metrics_) all[k] = v;
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path_.c_str());
      return false;
    }
    out << "{\n";
    bool first = true;
    for (const auto& [k, v] : all) {
      if (!first) out << ",\n";
      first = false;
      std::ostringstream num;
      num.precision(17);
      num << v;
      out << "  \"" << k << "\": " << num.str();
    }
    out << "\n}\n";
    return out.good();
  }

 private:
  // Minimal parser for the flat {"key": number} files Write() produces;
  // anything unparseable is ignored (the file is then overwritten).
  std::map<std::string, double> ReadExisting() const {
    std::map<std::string, double> out;
    std::ifstream in(path_);
    if (!in) return out;
    std::string line;
    while (std::getline(in, line)) {
      const size_t k0 = line.find('"');
      if (k0 == std::string::npos) continue;
      const size_t k1 = line.find('"', k0 + 1);
      if (k1 == std::string::npos) continue;
      const size_t colon = line.find(':', k1);
      if (colon == std::string::npos) continue;
      try {
        out[line.substr(k0 + 1, k1 - k0 - 1)] =
            std::stod(line.substr(colon + 1));
      } catch (...) {
      }
    }
    return out;
  }

  std::string path_;
  std::map<std::string, double> metrics_;
};

// Kebab-case config slug for metric names (ConfigName has spaces).
inline const char* ConfigSlug(Config c) {
  switch (c) {
    case Config::kNative: return "native";
    case Config::kO0: return "o0";
    case Config::kO1: return "o1";
    case Config::kO2: return "o2";
    case Config::kO2NoLoads: return "o2-noloads";
  }
  return "?";
}

inline double OverheadPct(uint64_t base, uint64_t value) {
  return 100.0 * (static_cast<double>(value) / static_cast<double>(base) -
                  1.0);
}

// Geometric mean of (1 + overhead) terms, reported back as a percentage,
// matching how the paper aggregates per-benchmark overheads.
class Geomean {
 public:
  void Add(double pct) {
    log_sum_ += std::log(1.0 + pct / 100.0);
    ++n_;
  }
  double Pct() const {
    return n_ == 0 ? 0.0 : 100.0 * (std::exp(log_sum_ / n_) - 1.0);
  }

 private:
  double log_sum_ = 0.0;
  int n_ = 0;
};

// The 14 SPEC-subset workload names (excluding coremark).
inline std::vector<std::string> SpecNames() {
  std::vector<std::string> names;
  for (const auto& w : workloads::AllWorkloads()) {
    if (w.name != "coremark") names.push_back(w.name);
  }
  return names;
}

inline std::vector<std::string> WasmNames() {
  std::vector<std::string> names;
  for (const auto& w : workloads::AllWorkloads()) {
    if (w.wasm_compatible) names.push_back(w.name);
  }
  return names;
}

}  // namespace lfi::bench

#endif  // LFI_BENCH_HARNESS_H_
