file(REMOVE_RECURSE
  "CMakeFiles/bench_coremark.dir/bench_coremark.cc.o"
  "CMakeFiles/bench_coremark.dir/bench_coremark.cc.o.d"
  "bench_coremark"
  "bench_coremark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coremark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
