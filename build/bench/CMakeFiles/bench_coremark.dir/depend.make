# Empty dependencies file for bench_coremark.
# This may be replaced when dependencies are built.
