# Empty compiler generated dependencies file for bench_fig3_opt_levels.
# This may be replaced when dependencies are built.
