file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_wasm.dir/bench_fig4_wasm.cc.o"
  "CMakeFiles/bench_fig4_wasm.dir/bench_fig4_wasm.cc.o.d"
  "bench_fig4_wasm"
  "bench_fig4_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
