# Empty compiler generated dependencies file for bench_fig4_wasm.
# This may be replaced when dependencies are built.
