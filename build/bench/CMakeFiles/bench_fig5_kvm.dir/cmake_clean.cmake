file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_kvm.dir/bench_fig5_kvm.cc.o"
  "CMakeFiles/bench_fig5_kvm.dir/bench_fig5_kvm.cc.o.d"
  "bench_fig5_kvm"
  "bench_fig5_kvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_kvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
