# Empty dependencies file for bench_fig5_kvm.
# This may be replaced when dependencies are built.
