file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_verifier.dir/bench_sec52_verifier.cc.o"
  "CMakeFiles/bench_sec52_verifier.dir/bench_sec52_verifier.cc.o.d"
  "bench_sec52_verifier"
  "bench_sec52_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
