file(REMOVE_RECURSE
  "CMakeFiles/bench_sec63_codesize.dir/bench_sec63_codesize.cc.o"
  "CMakeFiles/bench_sec63_codesize.dir/bench_sec63_codesize.cc.o.d"
  "bench_sec63_codesize"
  "bench_sec63_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec63_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
