# Empty compiler generated dependencies file for bench_sec63_codesize.
# This may be replaced when dependencies are built.
