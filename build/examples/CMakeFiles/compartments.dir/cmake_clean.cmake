file(REMOVE_RECURSE
  "CMakeFiles/compartments.dir/compartments.cpp.o"
  "CMakeFiles/compartments.dir/compartments.cpp.o.d"
  "compartments"
  "compartments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compartments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
