file(REMOVE_RECURSE
  "CMakeFiles/forkdemo.dir/forkdemo.cpp.o"
  "CMakeFiles/forkdemo.dir/forkdemo.cpp.o.d"
  "forkdemo"
  "forkdemo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkdemo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
