# Empty dependencies file for forkdemo.
# This may be replaced when dependencies are built.
