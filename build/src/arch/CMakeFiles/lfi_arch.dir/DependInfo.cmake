
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cost_model.cc" "src/arch/CMakeFiles/lfi_arch.dir/cost_model.cc.o" "gcc" "src/arch/CMakeFiles/lfi_arch.dir/cost_model.cc.o.d"
  "/root/repo/src/arch/decode.cc" "src/arch/CMakeFiles/lfi_arch.dir/decode.cc.o" "gcc" "src/arch/CMakeFiles/lfi_arch.dir/decode.cc.o.d"
  "/root/repo/src/arch/encode.cc" "src/arch/CMakeFiles/lfi_arch.dir/encode.cc.o" "gcc" "src/arch/CMakeFiles/lfi_arch.dir/encode.cc.o.d"
  "/root/repo/src/arch/inst.cc" "src/arch/CMakeFiles/lfi_arch.dir/inst.cc.o" "gcc" "src/arch/CMakeFiles/lfi_arch.dir/inst.cc.o.d"
  "/root/repo/src/arch/reg.cc" "src/arch/CMakeFiles/lfi_arch.dir/reg.cc.o" "gcc" "src/arch/CMakeFiles/lfi_arch.dir/reg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
