file(REMOVE_RECURSE
  "CMakeFiles/lfi_arch.dir/cost_model.cc.o"
  "CMakeFiles/lfi_arch.dir/cost_model.cc.o.d"
  "CMakeFiles/lfi_arch.dir/decode.cc.o"
  "CMakeFiles/lfi_arch.dir/decode.cc.o.d"
  "CMakeFiles/lfi_arch.dir/encode.cc.o"
  "CMakeFiles/lfi_arch.dir/encode.cc.o.d"
  "CMakeFiles/lfi_arch.dir/inst.cc.o"
  "CMakeFiles/lfi_arch.dir/inst.cc.o.d"
  "CMakeFiles/lfi_arch.dir/reg.cc.o"
  "CMakeFiles/lfi_arch.dir/reg.cc.o.d"
  "liblfi_arch.a"
  "liblfi_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
