file(REMOVE_RECURSE
  "liblfi_arch.a"
)
