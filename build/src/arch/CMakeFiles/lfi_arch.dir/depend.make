# Empty dependencies file for lfi_arch.
# This may be replaced when dependencies are built.
