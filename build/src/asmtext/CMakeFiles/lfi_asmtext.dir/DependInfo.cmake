
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asmtext/assemble.cc" "src/asmtext/CMakeFiles/lfi_asmtext.dir/assemble.cc.o" "gcc" "src/asmtext/CMakeFiles/lfi_asmtext.dir/assemble.cc.o.d"
  "/root/repo/src/asmtext/parser.cc" "src/asmtext/CMakeFiles/lfi_asmtext.dir/parser.cc.o" "gcc" "src/asmtext/CMakeFiles/lfi_asmtext.dir/parser.cc.o.d"
  "/root/repo/src/asmtext/printer.cc" "src/asmtext/CMakeFiles/lfi_asmtext.dir/printer.cc.o" "gcc" "src/asmtext/CMakeFiles/lfi_asmtext.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/lfi_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
