file(REMOVE_RECURSE
  "CMakeFiles/lfi_asmtext.dir/assemble.cc.o"
  "CMakeFiles/lfi_asmtext.dir/assemble.cc.o.d"
  "CMakeFiles/lfi_asmtext.dir/parser.cc.o"
  "CMakeFiles/lfi_asmtext.dir/parser.cc.o.d"
  "CMakeFiles/lfi_asmtext.dir/printer.cc.o"
  "CMakeFiles/lfi_asmtext.dir/printer.cc.o.d"
  "liblfi_asmtext.a"
  "liblfi_asmtext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi_asmtext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
