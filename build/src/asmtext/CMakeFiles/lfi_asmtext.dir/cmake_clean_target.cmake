file(REMOVE_RECURSE
  "liblfi_asmtext.a"
)
