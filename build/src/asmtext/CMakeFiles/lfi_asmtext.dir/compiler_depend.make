# Empty compiler generated dependencies file for lfi_asmtext.
# This may be replaced when dependencies are built.
