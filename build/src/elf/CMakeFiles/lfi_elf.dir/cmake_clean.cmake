file(REMOVE_RECURSE
  "CMakeFiles/lfi_elf.dir/elf.cc.o"
  "CMakeFiles/lfi_elf.dir/elf.cc.o.d"
  "liblfi_elf.a"
  "liblfi_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
