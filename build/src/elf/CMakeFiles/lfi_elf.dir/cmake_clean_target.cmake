file(REMOVE_RECURSE
  "liblfi_elf.a"
)
