# Empty compiler generated dependencies file for lfi_elf.
# This may be replaced when dependencies are built.
