
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emu/address_space.cc" "src/emu/CMakeFiles/lfi_emu.dir/address_space.cc.o" "gcc" "src/emu/CMakeFiles/lfi_emu.dir/address_space.cc.o.d"
  "/root/repo/src/emu/machine.cc" "src/emu/CMakeFiles/lfi_emu.dir/machine.cc.o" "gcc" "src/emu/CMakeFiles/lfi_emu.dir/machine.cc.o.d"
  "/root/repo/src/emu/timing.cc" "src/emu/CMakeFiles/lfi_emu.dir/timing.cc.o" "gcc" "src/emu/CMakeFiles/lfi_emu.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/lfi_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
