file(REMOVE_RECURSE
  "CMakeFiles/lfi_emu.dir/address_space.cc.o"
  "CMakeFiles/lfi_emu.dir/address_space.cc.o.d"
  "CMakeFiles/lfi_emu.dir/machine.cc.o"
  "CMakeFiles/lfi_emu.dir/machine.cc.o.d"
  "CMakeFiles/lfi_emu.dir/timing.cc.o"
  "CMakeFiles/lfi_emu.dir/timing.cc.o.d"
  "liblfi_emu.a"
  "liblfi_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
