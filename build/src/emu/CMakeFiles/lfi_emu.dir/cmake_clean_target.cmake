file(REMOVE_RECURSE
  "liblfi_emu.a"
)
