# Empty compiler generated dependencies file for lfi_emu.
# This may be replaced when dependencies are built.
