
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewriter/rewriter.cc" "src/rewriter/CMakeFiles/lfi_rewriter.dir/rewriter.cc.o" "gcc" "src/rewriter/CMakeFiles/lfi_rewriter.dir/rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmtext/CMakeFiles/lfi_asmtext.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/lfi_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
