file(REMOVE_RECURSE
  "CMakeFiles/lfi_rewriter.dir/rewriter.cc.o"
  "CMakeFiles/lfi_rewriter.dir/rewriter.cc.o.d"
  "liblfi_rewriter.a"
  "liblfi_rewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
