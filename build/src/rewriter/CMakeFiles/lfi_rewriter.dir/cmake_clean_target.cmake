file(REMOVE_RECURSE
  "liblfi_rewriter.a"
)
