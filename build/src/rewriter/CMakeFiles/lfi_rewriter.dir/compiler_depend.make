# Empty compiler generated dependencies file for lfi_rewriter.
# This may be replaced when dependencies are built.
