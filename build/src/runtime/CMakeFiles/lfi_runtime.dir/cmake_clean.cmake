file(REMOVE_RECURSE
  "CMakeFiles/lfi_runtime.dir/runtime.cc.o"
  "CMakeFiles/lfi_runtime.dir/runtime.cc.o.d"
  "CMakeFiles/lfi_runtime.dir/vfs.cc.o"
  "CMakeFiles/lfi_runtime.dir/vfs.cc.o.d"
  "liblfi_runtime.a"
  "liblfi_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
