file(REMOVE_RECURSE
  "liblfi_runtime.a"
)
