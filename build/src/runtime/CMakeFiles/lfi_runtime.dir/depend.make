# Empty dependencies file for lfi_runtime.
# This may be replaced when dependencies are built.
