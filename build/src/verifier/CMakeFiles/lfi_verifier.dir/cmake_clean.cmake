file(REMOVE_RECURSE
  "CMakeFiles/lfi_verifier.dir/verifier.cc.o"
  "CMakeFiles/lfi_verifier.dir/verifier.cc.o.d"
  "liblfi_verifier.a"
  "liblfi_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
