file(REMOVE_RECURSE
  "liblfi_verifier.a"
)
