# Empty dependencies file for lfi_verifier.
# This may be replaced when dependencies are built.
