
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wasm/wasm.cc" "src/wasm/CMakeFiles/lfi_wasm.dir/wasm.cc.o" "gcc" "src/wasm/CMakeFiles/lfi_wasm.dir/wasm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmtext/CMakeFiles/lfi_asmtext.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/lfi_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
