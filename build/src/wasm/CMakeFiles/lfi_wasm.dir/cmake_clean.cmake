file(REMOVE_RECURSE
  "CMakeFiles/lfi_wasm.dir/wasm.cc.o"
  "CMakeFiles/lfi_wasm.dir/wasm.cc.o.d"
  "liblfi_wasm.a"
  "liblfi_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
