file(REMOVE_RECURSE
  "liblfi_wasm.a"
)
