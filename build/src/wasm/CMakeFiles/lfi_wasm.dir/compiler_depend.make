# Empty compiler generated dependencies file for lfi_wasm.
# This may be replaced when dependencies are built.
