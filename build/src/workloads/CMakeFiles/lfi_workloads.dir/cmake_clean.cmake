file(REMOVE_RECURSE
  "CMakeFiles/lfi_workloads.dir/workloads.cc.o"
  "CMakeFiles/lfi_workloads.dir/workloads.cc.o.d"
  "liblfi_workloads.a"
  "liblfi_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
