file(REMOVE_RECURSE
  "liblfi_workloads.a"
)
