# Empty dependencies file for lfi_workloads.
# This may be replaced when dependencies are built.
