file(REMOVE_RECURSE
  "CMakeFiles/arch_encode_test.dir/arch_encode_test.cc.o"
  "CMakeFiles/arch_encode_test.dir/arch_encode_test.cc.o.d"
  "arch_encode_test"
  "arch_encode_test.pdb"
  "arch_encode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_encode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
