# Empty dependencies file for arch_encode_test.
# This may be replaced when dependencies are built.
