file(REMOVE_RECURSE
  "CMakeFiles/asmtext_test.dir/asmtext_test.cc.o"
  "CMakeFiles/asmtext_test.dir/asmtext_test.cc.o.d"
  "asmtext_test"
  "asmtext_test.pdb"
  "asmtext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmtext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
