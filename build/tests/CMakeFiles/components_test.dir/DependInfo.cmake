
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/components_test.cc" "tests/CMakeFiles/components_test.dir/components_test.cc.o" "gcc" "tests/CMakeFiles/components_test.dir/components_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/lfi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/rewriter/CMakeFiles/lfi_rewriter.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/lfi_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/lfi_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/lfi_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/asmtext/CMakeFiles/lfi_asmtext.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/lfi_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
