file(REMOVE_RECURSE
  "CMakeFiles/extended_isa_test.dir/extended_isa_test.cc.o"
  "CMakeFiles/extended_isa_test.dir/extended_isa_test.cc.o.d"
  "extended_isa_test"
  "extended_isa_test.pdb"
  "extended_isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
