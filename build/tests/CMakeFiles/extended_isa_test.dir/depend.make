# Empty dependencies file for extended_isa_test.
# This may be replaced when dependencies are built.
