# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/arch_encode_test[1]_include.cmake")
include("/root/repo/build/tests/asmtext_test[1]_include.cmake")
include("/root/repo/build/tests/emu_test[1]_include.cmake")
include("/root/repo/build/tests/rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/elf_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/components_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/extended_isa_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
