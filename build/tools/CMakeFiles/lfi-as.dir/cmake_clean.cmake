file(REMOVE_RECURSE
  "CMakeFiles/lfi-as.dir/lfi_as.cc.o"
  "CMakeFiles/lfi-as.dir/lfi_as.cc.o.d"
  "lfi-as"
  "lfi-as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi-as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
