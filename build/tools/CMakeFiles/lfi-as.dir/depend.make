# Empty dependencies file for lfi-as.
# This may be replaced when dependencies are built.
