file(REMOVE_RECURSE
  "CMakeFiles/lfi-rewrite.dir/lfi_rewrite.cc.o"
  "CMakeFiles/lfi-rewrite.dir/lfi_rewrite.cc.o.d"
  "lfi-rewrite"
  "lfi-rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi-rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
