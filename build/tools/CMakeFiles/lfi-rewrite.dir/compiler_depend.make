# Empty compiler generated dependencies file for lfi-rewrite.
# This may be replaced when dependencies are built.
