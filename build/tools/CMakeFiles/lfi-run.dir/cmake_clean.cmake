file(REMOVE_RECURSE
  "CMakeFiles/lfi-run.dir/lfi_run.cc.o"
  "CMakeFiles/lfi-run.dir/lfi_run.cc.o.d"
  "lfi-run"
  "lfi-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
