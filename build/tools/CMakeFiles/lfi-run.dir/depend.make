# Empty dependencies file for lfi-run.
# This may be replaced when dependencies are built.
