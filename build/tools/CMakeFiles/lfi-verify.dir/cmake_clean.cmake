file(REMOVE_RECURSE
  "CMakeFiles/lfi-verify.dir/lfi_verify.cc.o"
  "CMakeFiles/lfi-verify.dir/lfi_verify.cc.o.d"
  "lfi-verify"
  "lfi-verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfi-verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
