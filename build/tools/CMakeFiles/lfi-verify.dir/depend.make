# Empty dependencies file for lfi-verify.
# This may be replaced when dependencies are built.
