// Attack demo: what the verifier rejects, and what the sandbox contains.
//
// Three escalating scenarios:
//  1. A malicious binary with raw (unguarded) memory accesses - rejected
//     by the static verifier at load time.
//  2. A binary that tries to counterfeit the guard (wrong base register) -
//     also rejected.
//  3. A binary that PASSES verification but is actively hostile: it
//     constructs out-of-sandbox pointers and jumps. Every access is forced
//     back into its own 4GiB slot by the guards, and a probe into a guard
//     region faults and kills only that sandbox - the victim sandbox next
//     door keeps its secret and keeps running.

#include <cstdio>
#include <string>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "elf/elf.h"
#include "rewriter/rewriter.h"
#include "runtime/runtime.h"

namespace {

// Builds WITHOUT the rewriter: these are attacker-supplied binaries.
lfi::Result<std::vector<uint8_t>> BuildRaw(const std::string& src) {
  auto file = lfi::asmtext::Parse(src);
  if (!file) return lfi::Error{file.error()};
  lfi::rewriter::RewriteOptions opts;
  opts.insert_guards = false;  // only expands rtcall pseudo-instructions
  auto expanded = lfi::rewriter::Rewrite(*file, opts);
  if (!expanded) return lfi::Error{expanded.error()};
  lfi::asmtext::LayoutSpec spec;
  spec.text_offset = lfi::runtime::kProgramStart;
  auto img = lfi::asmtext::Assemble(*expanded, spec);
  if (!img) return lfi::Error{img.error()};
  return lfi::elf::Write(lfi::elf::FromAssembled(*img));
}

}  // namespace

int main() {
  lfi::runtime::RuntimeConfig cfg;
  cfg.core = lfi::arch::AppleM1LikeParams();
  lfi::runtime::Runtime rt(cfg);

  // A victim sandbox holding a "secret" in its memory.
  auto victim = BuildRaw(R"(
_start:
  adrp x9, secret
  add x9, x9, :lo12:secret
  movz x1, #0x5EC7
  add x18, x21, w9, uxtw
  str x1, [x18]
  mov x19, #200
spin:
  rtcall #11
  subs x19, x19, #1
  b.ne spin
  ldr x0, [x18]           // still 0x5EC7 if nobody tampered with it
  rtcall #0
.data
secret:
  .quad 0
)");
  auto victim_pid = rt.Load({victim->data(), victim->size()});
  std::printf("[victim] loaded: pid %d\n", *victim_pid);

  // Scenario 1: raw unguarded store. The verifier must reject it.
  auto raw = BuildRaw("movz x1, #0x4141\nstr x1, [x1]\nret\n");
  auto raw_pid = rt.Load({raw->data(), raw->size()});
  std::printf("[1] raw store:           %s\n",
              raw_pid ? "LOADED (BUG!)" : raw_pid.error().c_str());

  // Scenario 2: counterfeit guard using a non-base register.
  auto fake = BuildRaw(
      "movz x1, #0x4141\nadd x18, x1, w1, uxtw\nldr x0, [x18]\nret\n");
  auto fake_pid = rt.Load({fake->data(), fake->size()});
  std::printf("[2] counterfeit guard:   %s\n",
              fake_pid ? "LOADED (BUG!)" : fake_pid.error().c_str());

  // Scenario 3: verifier-clean but hostile. It builds a pointer 4GiB
  // beyond its own base (i.e., into the next sandbox) and stores through a
  // proper guard; then probes a guard region.
  auto hostile = BuildRaw(R"(
_start:
  // Attempt 1: write to "neighbor_base + offset of their secret".
  adrp x9, secret_guess
  add x9, x9, :lo12:secret_guess
  movz x10, #1, lsl #32
  add x9, x9, x10          // out-of-slot address
  movz x1, #0xEE
  add x18, x21, w9, uxtw   // the guard masks the top 32 bits...
  str x1, [x18]            // ...so this lands in OUR OWN memory
  // Attempt 2: probe the guard region below the code.
  movz x9, #0x4100
  add x18, x21, w9, uxtw
  ldr x0, [x18]            // traps: unmapped guard page
  mov x0, #0
  rtcall #0
.data
secret_guess:
  .quad 0
)");
  auto hostile_pid = rt.Load({hostile->data(), hostile->size()});
  std::printf("[3] hostile-but-verified: %s\n",
              hostile_pid ? "loaded (passes verification, as expected)"
                          : hostile_pid.error().c_str());

  rt.RunUntilIdle();

  if (hostile_pid) {
    const auto* h = rt.proc(*hostile_pid);
    std::printf("[3] hostile sandbox outcome: %s (%s)\n",
                h->exit_kind == lfi::runtime::ExitKind::kKilled
                    ? "killed by its own fault"
                    : "exited",
                h->fault_detail.c_str());
  }
  const auto* v = rt.proc(*victim_pid);
  std::printf("[victim] exit status: 0x%X (%s)\n", v->exit_status,
              v->exit_status == 0x5EC7 ? "secret intact - isolation held"
                                       : "TAMPERED - isolation FAILED");
  return v->exit_status == 0x5EC7 ? 0 : 1;
}
