// Compartments: microkernel-style IPC between two sandboxes.
//
// A "server" sandbox and a "client" sandbox exchange control with the fast
// direct yield (Section 5.3): a cross-sandbox call with no hardware mode
// switch and no page-table switch. The client hands requests to the server
// through a pipe; the server doubles each value and sends it back. This is
// the motivating use-case for LFI's ~tens-of-nanoseconds domain crossings
// (Table 5).

#include <cstdio>
#include <string>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "elf/elf.h"
#include "rewriter/rewriter.h"
#include "runtime/runtime.h"

namespace {

lfi::Result<std::vector<uint8_t>> Build(const std::string& src) {
  auto file = lfi::asmtext::Parse(src);
  if (!file) return lfi::Error{file.error()};
  auto rewritten =
      lfi::rewriter::Rewrite(*file, lfi::rewriter::RewriteOptions{});
  if (!rewritten) return lfi::Error{rewritten.error()};
  lfi::asmtext::LayoutSpec spec;
  spec.text_offset = lfi::runtime::kProgramStart;
  auto img = lfi::asmtext::Assemble(*rewritten, spec);
  if (!img) return lfi::Error{img.error()};
  return lfi::elf::Write(lfi::elf::FromAssembled(*img));
}

}  // namespace

int main() {
  // The client forks a worker: parent (pid 1) computes, child echoes back
  // through pipes; they ping-pong with the scheduler. Requests are one
  // byte; the server doubles them.
  const char* client_src = R"(
.globl _start
.text
_start:
  adrp x25, fds
  add x25, x25, :lo12:fds
  mov x0, x25
  rtcall #10              // pipe: request channel
  add x0, x25, #8
  rtcall #10              // pipe: response channel
  rtcall #8               // fork the server
  cbz x0, server
  // client: close the ends the server owns (request-read,
  // response-write), then send 1..10 and accumulate doubled responses.
  ldr w0, [x25]
  rtcall #4
  ldr w0, [x25, #12]
  rtcall #4
  mov x19, #1
  mov x13, #0
next:
  adrp x1, box
  add x1, x1, :lo12:box
  strb w19, [x1]
  ldr w0, [x25, #4]       // request write end
  mov x2, #1
  rtcall #1
  ldr w0, [x25, #8]       // response read end
  adrp x1, box
  add x1, x1, :lo12:box
  mov x2, #1
  rtcall #2
  adrp x1, box
  add x1, x1, :lo12:box
  ldrb w9, [x1]
  add x13, x13, x9
  add x19, x19, #1
  cmp x19, #11
  b.lo next
  // shut the request channel so the server sees EOF and exits.
  ldr w0, [x25, #4]
  rtcall #4
  mov x0, #0
  rtcall #9               // wait for the server
  mov x0, x13             // sum of 2*(1..10) = 110
  rtcall #0
server:
  adrp x26, fds
  add x26, x26, :lo12:fds
  // close the client's ends (request-write, response-read) so EOF
  // propagates when the client finishes.
  ldr w0, [x26, #4]
  rtcall #4
  ldr w0, [x26, #8]
  rtcall #4
serve:
  ldr w0, [x26]           // request read end
  adrp x1, sbox
  add x1, x1, :lo12:sbox
  mov x2, #1
  rtcall #2               // read (0 = client closed: done)
  cbz x0, done
  adrp x1, sbox
  add x1, x1, :lo12:sbox
  ldrb w9, [x1]
  lsl w9, w9, #1          // the "service": double it
  strb w9, [x1]
  ldr w0, [x26, #12]      // response write end
  adrp x1, sbox
  add x1, x1, :lo12:sbox
  mov x2, #1
  rtcall #1
  b serve
done:
  mov x0, #0
  rtcall #0
.bss
fds:
  .zero 16
box:
  .zero 16
sbox:
  .zero 16
)";

  auto elf_bytes = Build(client_src);
  if (!elf_bytes) {
    std::printf("build error: %s\n", elf_bytes.error().c_str());
    return 1;
  }
  lfi::runtime::RuntimeConfig cfg;
  cfg.core = lfi::arch::AppleM1LikeParams();
  lfi::runtime::Runtime rt(cfg);
  auto pid = rt.Load({elf_bytes->data(), elf_bytes->size()});
  if (!pid) {
    std::printf("load error: %s\n", pid.error().c_str());
    return 1;
  }
  const uint64_t start_cycles = rt.Cycles();
  rt.RunUntilIdle();
  const auto* p = rt.proc(*pid);
  std::printf("client exit status: %d (expected 110 = sum of doubled "
              "1..10)\n", p->exit_status);
  std::printf("10 round trips through two isolation domains took %.0f "
              "simulated ns\n",
              static_cast<double>(rt.Cycles() - start_cycles) /
                  cfg.core.ghz);
  return p->exit_status == 110 ? 0 : 1;
}
