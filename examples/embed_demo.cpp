// Embedding demo: call sandboxed code like a library through the typed
// `lfi::embed::Sandbox` API (docs/EMBEDDING.md).
//
//   host --Call<R(Args...)>--> guest export          (typed marshalling)
//   guest --hostcall #0--> registered host callback  (re-entrant boundary)
//   4 KiB of data per call via a marshalled BufIn vs. a shared mapping
//   a hostile guest forging its return cookie: killed, then revived
//
// The guest below is untrusted assembly: it goes through the full
// rewriter -> assembler -> ELF -> load-time verifier pipeline before a
// single instruction runs.

#include <cstdio>
#include <numeric>
#include <vector>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "elf/elf.h"
#include "embed/abi.h"
#include "embed/embed.h"
#include "rewriter/rewriter.h"
#include "runtime/runtime.h"

namespace {

// Four exports: plain arithmetic, a buffer reducer, a callback round
// trip, and one that tries to forge the host's return cookie (x19).
std::string GuestModule() {
  const std::vector<lfi::embed::GuestExport> exports = {
      {"add", "g_add"},
      {"sum", "g_sum"},
      {"apply", "g_apply"},
      {"forge", "g_forge"},
  };
  const char* body = R"(
g_add:
  add x0, x0, x1
  ret
g_sum:
  mov x9, x0
  mov x0, #0
  cbz x1, g_sum_done
g_sum_loop:
  ldrb w10, [x9]
  add x0, x0, x10
  add x9, x9, #1
  sub x1, x1, #1
  cbnz x1, g_sum_loop
g_sum_done:
  ret
g_apply:
  hostcall #0
  add x0, x0, #1
  ret
g_forge:
  add x19, x19, #7
  ret
)";
  return lfi::embed::GuestModuleSource(exports, body);
}

std::vector<uint8_t> BuildElf(const std::string& src) {
  auto file = lfi::asmtext::Parse(src);
  if (!file) return {};
  auto rewritten = lfi::rewriter::Rewrite(*file, {});
  if (!rewritten) return {};
  lfi::asmtext::LayoutSpec spec;
  spec.text_offset = lfi::runtime::kProgramStart;
  auto image = lfi::asmtext::Assemble(*rewritten, spec);
  if (!image) return {};
  return lfi::elf::Write(lfi::elf::FromAssembled(*image));
}

}  // namespace

int main() {
  using lfi::embed::BufIn;
  using lfi::embed::Err;

  const std::vector<uint8_t> elf_bytes = BuildElf(GuestModule());
  if (elf_bytes.empty()) {
    std::printf("failed to build guest module\n");
    return 1;
  }

  lfi::runtime::RuntimeConfig cfg;
  cfg.core = lfi::arch::AppleM1LikeParams();
  lfi::runtime::Runtime rt(cfg);
  auto made =
      lfi::embed::Sandbox::Create(rt, {elf_bytes.data(), elf_bytes.size()});
  if (!made.ok()) {
    std::printf("create failed: %s\n", made.error().c_str());
    return 1;
  }
  lfi::embed::Sandbox& sb = **made;

  // 1. A typed call is one line; marshalling and the transition are
  //    handled by the Call<> signature.
  auto sum = sb.Call<uint64_t(uint64_t, uint64_t)>("add", 2, 40);
  std::printf("add(2, 40)            = %llu\n",
              static_cast<unsigned long long>(sum.value));

  // 2. Host buffers marshal in by value (copied to the guest stack)...
  std::vector<uint8_t> data(4096);
  std::iota(data.begin(), data.end(), 0);
  const unsigned long long want = std::accumulate(
      data.begin(), data.end(), 0ull,
      [](unsigned long long a, uint8_t b) { return a + b; });
  auto via_copy = sb.Call<uint64_t(BufIn, uint64_t)>(
      "sum", BufIn{data.data(), data.size()}, data.size());
  std::printf("sum(BufIn 4KiB)       = %llu (want %llu)\n",
              static_cast<unsigned long long>(via_copy.value), want);

  // 3. ...or live in a shared mapping the guest addresses directly.
  auto shm = sb.MapShared(data.size());
  if (!shm.ok() || !shm->Write(0, {data.data(), data.size()}).ok()) {
    std::printf("shared mapping failed\n");
    return 1;
  }
  auto via_shm = sb.Call<uint64_t(lfi::embed::GuestPtr, uint64_t)>(
      "sum", shm->ptr(), data.size());
  std::printf("sum(shared 4KiB)      = %llu\n",
              static_cast<unsigned long long>(via_shm.value));

  // 4. Guest -> host callbacks: the guest's `hostcall #0` lands in this
  //    lambda, then execution resumes at the rtcall boundary.
  sb.BindCallback(0, std::function<uint64_t(uint64_t)>(
                         [](uint64_t x) { return x * 10; }));
  auto applied = sb.Call<uint64_t(uint64_t)>("apply", 7);
  std::printf("apply(7)              = %llu (7*10 + 1)\n",
              static_cast<unsigned long long>(applied.value));

  // 5. A hostile guest: `forge` increments the call cookie in x19 before
  //    returning, trying to fake a different call frame. The runtime
  //    rejects the return and kills the sandbox...
  auto forged = sb.Call<uint64_t()>("forge");
  std::printf("forge()               -> %s\n", lfi::embed::ErrName(forged.err));
  auto dead = sb.Call<uint64_t(uint64_t, uint64_t)>("add", 1, 1);
  std::printf("add() after forge     -> %s\n", lfi::embed::ErrName(dead.err));

  // 6. ...and Restart() revives it from the baseline snapshot.
  if (!sb.Restart().ok()) {
    std::printf("restart failed\n");
    return 1;
  }
  auto again = sb.Call<uint64_t(uint64_t, uint64_t)>("add", 20, 22);
  std::printf("add(20, 22) revived   = %llu\n",
              static_cast<unsigned long long>(again.value));

  const bool ok = sum.ok() && sum.value == 42 && via_copy.ok() &&
                  via_copy.value == want && via_shm.ok() &&
                  via_shm.value == want && applied.ok() &&
                  applied.value == 71 && forged.err == Err::kForgedReturn &&
                  dead.err == Err::kSandboxDead && again.ok() &&
                  again.value == 42;
  std::printf("%s\n", ok ? "all embedding paths ok" : "MISMATCH");
  return ok ? 0 : 1;
}
