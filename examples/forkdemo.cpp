// Fork in a single address space (Section 5.3).
//
// Because every guard rewrites the top 32 bits of a pointer to the sandbox
// base, pointers are effectively 32-bit offsets into whichever 4GiB slot
// the process occupies. The runtime exploits this to implement fork
// without separate page tables: the child's pages are shared
// copy-on-write at a new slot base, registers are rebased, and execution
// continues in both processes. This demo builds a small fork tree and
// shows (a) correct parent/child return values, (b) copy-on-write
// isolation of writes, and (c) slot reclamation after wait().

#include <cstdio>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "elf/elf.h"
#include "rewriter/rewriter.h"
#include "runtime/runtime.h"

int main() {
  // Each process increments a generation counter in its own copy of
  // memory, forks twice at depth 0, and each child exits with
  // 10*generation + its own increment. The parent sums its children's
  // exit statuses (collected via wait) and exits with the total.
  const char* src = R"(
.globl _start
.text
_start:
  adrp x9, gen
  add x9, x9, :lo12:gen
  mov x1, #1
  str x1, [x9]
  rtcall #8               // fork -> child A
  cbz x0, childa
  mov x19, x0
  rtcall #8               // fork -> child B
  cbz x0, childb
  mov x20, x0
  // parent: wait for both children, summing their statuses.
  adrp x1, status
  add x1, x1, :lo12:status
  mov x0, x1
  rtcall #9
  adrp x1, status
  add x1, x1, :lo12:status
  ldr w13, [x1]
  mov x0, x1
  rtcall #9
  adrp x1, status
  add x1, x1, :lo12:status
  ldr w9, [x1]
  add x13, x13, x9
  // parent's own memory must still say generation 1.
  adrp x9, gen
  add x9, x9, :lo12:gen
  ldr x1, [x9]
  cmp x1, #1
  b.eq parentok
  mov x0, #99             // COW violation!
  rtcall #0
parentok:
  mov x0, x13             // 11 + 12 = 23
  rtcall #0
childa:
  adrp x9, gen
  add x9, x9, :lo12:gen
  ldr x1, [x9]
  add x1, x1, #10         // 11
  str x1, [x9]            // private copy-on-write page
  mov x0, x1
  rtcall #0
childb:
  adrp x9, gen
  add x9, x9, :lo12:gen
  ldr x1, [x9]
  add x1, x1, #11         // 12
  str x1, [x9]
  mov x0, x1
  rtcall #0
.bss
gen:
  .zero 8
status:
  .zero 8
)";

  auto file = lfi::asmtext::Parse(src);
  auto rewritten =
      lfi::rewriter::Rewrite(*file, lfi::rewriter::RewriteOptions{});
  lfi::asmtext::LayoutSpec spec;
  spec.text_offset = lfi::runtime::kProgramStart;
  auto img = lfi::asmtext::Assemble(*rewritten, spec);
  auto elf_bytes = lfi::elf::Write(lfi::elf::FromAssembled(*img));

  lfi::runtime::RuntimeConfig cfg;
  cfg.core = lfi::arch::AppleM1LikeParams();
  lfi::runtime::Runtime rt(cfg);
  auto pid = rt.Load({elf_bytes.data(), elf_bytes.size()});
  if (!pid) {
    std::printf("load error: %s\n", pid.error().c_str());
    return 1;
  }
  rt.RunUntilIdle();
  const auto* p = rt.proc(*pid);
  std::printf("parent exit status: %d (expected 23 = 11 + 12)\n",
              p->exit_status);
  std::printf("slots still in use after all exits: %llu (expected 0)\n",
              static_cast<unsigned long long>(rt.slots_in_use()));
  std::printf("fork tree ran in %.1f simulated us across 3 sandbox "
              "slots\n", rt.machine().timing().Nanoseconds() / 1000.0);
  return p->exit_status == 23 ? 0 : 1;
}
