// Quickstart: the complete LFI pipeline on a hello-world sandbox.
//
//   assembly text -> LFI rewriter -> assembler -> ELF -> verifier ->
//   loader -> sandboxed execution
//
// This mirrors the paper artifact's `lfi-clang` + `lfi-verify` + `lfi-run`
// flow (Appendix A.5), with the emulated ARM64 machine standing in for
// hardware.

#include <cstdio>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "asmtext/printer.h"
#include "elf/elf.h"
#include "rewriter/rewriter.h"
#include "runtime/runtime.h"

int main() {
  // A tiny freestanding program: write a greeting, then exit(0).
  // `rtcall #1` is write(fd, buf, len), `rtcall #0` is exit(status).
  const char* source = R"(
.globl _start
.text
_start:
  mov x0, #1              // fd = stdout
  adrp x1, greeting
  add x1, x1, :lo12:greeting
  mov x2, #33
  rtcall #1               // write
  mov x0, #0
  rtcall #0               // exit
.data
greeting:
  .asciz "hello from inside an LFI sandbox\n"
)";

  // 1. Parse the assembly text.
  auto file = lfi::asmtext::Parse(source);
  if (!file) {
    std::printf("parse error: %s\n", file.error().c_str());
    return 1;
  }

  // 2. Insert SFI guards (O2: zero-instruction guards + redundant guard
  //    elimination).
  lfi::rewriter::RewriteStats stats;
  auto rewritten =
      lfi::rewriter::Rewrite(*file, lfi::rewriter::RewriteOptions{}, &stats);
  if (!rewritten) {
    std::printf("rewrite error: %s\n", rewritten.error().c_str());
    return 1;
  }
  std::printf("--- rewritten assembly (%zu -> %zu instructions) ---\n%s\n",
              stats.input_insts, stats.output_insts,
              lfi::asmtext::Print(*rewritten).c_str());

  // 3. Assemble into a sandbox image and package as ELF.
  lfi::asmtext::LayoutSpec spec;
  spec.text_offset = lfi::runtime::kProgramStart;
  auto image = lfi::asmtext::Assemble(*rewritten, spec);
  if (!image) {
    std::printf("assemble error: %s\n", image.error().c_str());
    return 1;
  }
  const std::vector<uint8_t> elf_bytes =
      lfi::elf::Write(lfi::elf::FromAssembled(*image));
  std::printf("ELF executable: %zu bytes (%zu bytes of text)\n",
              elf_bytes.size(), image->text.size());

  // 4. Load into the runtime. The loader runs the static verifier on the
  //    text segment before mapping anything - the compiler and rewriter
  //    above are NOT trusted.
  lfi::runtime::RuntimeConfig cfg;
  cfg.core = lfi::arch::AppleM1LikeParams();
  lfi::runtime::Runtime rt(cfg);
  auto pid = rt.Load({elf_bytes.data(), elf_bytes.size()});
  if (!pid) {
    std::printf("load error: %s\n", pid.error().c_str());
    return 1;
  }

  // 5. Run.
  rt.RunUntilIdle();
  const lfi::runtime::Proc* p = rt.proc(*pid);
  std::printf("sandbox output: %s", p->out.c_str());
  std::printf("exit status: %d, simulated time: %.1f us\n", p->exit_status,
              rt.machine().timing().Nanoseconds() / 1000.0);
  return p->exit_status;
}
