#include "arch/cost_model.h"

namespace lfi::arch {

CoreParams AppleM1LikeParams() {
  CoreParams p;
  p.name = "apple-m1";
  p.ghz = 3.2;
  p.issue_width = 8;
  p.mem_ports = 4;
  p.load_latency = 4;
  p.l2_latency = 16;
  p.mem_latency = 100;
  p.tlb_walk_cycles = 20;
  p.tlb_entries = 3072;
  p.l1d_kib = 128;
  p.mispredict_penalty = 13;
  p.mlp = 10;
  return p;
}

CoreParams GcpT2aLikeParams() {
  CoreParams p;
  p.name = "gcp-t2a";
  p.ghz = 3.0;
  p.issue_width = 5;
  p.mem_ports = 3;
  p.load_latency = 4;
  p.l2_latency = 13;
  p.mem_latency = 110;
  p.tlb_walk_cycles = 24;
  p.tlb_entries = 1280;
  p.l1d_kib = 64;
  p.mispredict_penalty = 11;
  p.mlp = 6;
  return p;
}

InstCost CostOf(const Inst& i, const CoreParams& p) {
  InstCost c;
  switch (i.mn) {
    // Plain ALU: 1-cycle latency, full throughput.
    case Mn::kAddImm: case Mn::kAddsImm: case Mn::kSubImm: case Mn::kSubsImm:
    case Mn::kAndImm: case Mn::kAndsImm: case Mn::kOrrImm: case Mn::kEorImm:
    case Mn::kMovz: case Mn::kMovn: case Mn::kMovk:
    case Mn::kAdr: case Mn::kAdrp:
    case Mn::kCsel: case Mn::kCsinc: case Mn::kCsinv: case Mn::kCsneg:
    case Mn::kClz: case Mn::kRbit: case Mn::kRev:
      c.latency = 1;
      break;
    // Register ALU: 1 cycle when unshifted; a shifted/extended operand
    // costs an extra cycle and issues on fewer ports ("2-cycle latency and
    // half-throughput" - the basic LFI guard).
    case Mn::kAddReg: case Mn::kAddsReg: case Mn::kSubReg: case Mn::kSubsReg:
    case Mn::kAndReg: case Mn::kAndsReg: case Mn::kOrrReg: case Mn::kEorReg:
    case Mn::kBicReg:
      if (i.shift_amount != 0) {
        c.latency = 2;
        c.slots = 2;
      } else {
        c.latency = 1;
      }
      break;
    case Mn::kAddExt: case Mn::kSubExt:
      // The zero/sign-extending add used as the LFI guard. uxtx #0 is a
      // plain add in disguise (used for SP moves) and stays 1 cycle.
      if (i.ext == Extend::kUxtx && i.shift_amount == 0) {
        c.latency = 1;
      } else {
        c.latency = 2;
        c.slots = 2;
      }
      break;
    case Mn::kUbfm: case Mn::kSbfm:
      c.latency = 1;
      break;
    case Mn::kMadd: case Mn::kMsub:
    case Mn::kUmulh: case Mn::kSmulh:
      c.latency = 3;
      break;
    case Mn::kCcmp: case Mn::kCcmpImm: case Mn::kCcmn: case Mn::kCcmnImm:
    case Mn::kExtr:
      c.latency = 1;
      break;
    case Mn::kSdiv: case Mn::kUdiv:
      c.latency = i.width == Width::kX ? 13 : 9;
      c.slots = 4;
      break;
    // Loads: address-generation + L1 latency. The register-offset form
    // (including the guarded [x21, wN, uxtw] mode) has the same latency as
    // the immediate form on both modeled cores - this equivalence is the
    // heart of the zero-instruction guard (Section 4.1).
    case Mn::kLdr: case Mn::kLdp: case Mn::kLdxr: case Mn::kLdar:
    case Mn::kLdrF:
      c.latency = p.load_latency;
      c.is_mem = true;
      break;
    case Mn::kStr: case Mn::kStp: case Mn::kStxr: case Mn::kStlr:
    case Mn::kStrF:
      c.latency = 1;
      c.is_mem = true;
      break;
    // Branches: cost is mostly in misprediction, handled dynamically.
    case Mn::kB: case Mn::kBl: case Mn::kBCond: case Mn::kCbz: case Mn::kCbnz:
    case Mn::kTbz: case Mn::kTbnz: case Mn::kBr: case Mn::kBlr: case Mn::kRet:
      c.latency = 1;
      break;
    // Scalar FP.
    case Mn::kFadd: case Mn::kFsub:
      c.latency = 3;
      break;
    case Mn::kFmul:
      c.latency = 4;
      break;
    case Mn::kFmadd:
      c.latency = 4;
      break;
    case Mn::kFdiv:
      c.latency = i.fsize == FpSize::kS ? 10 : 15;
      c.slots = 4;
      break;
    case Mn::kFsqrt:
      c.latency = i.fsize == FpSize::kS ? 10 : 16;
      c.slots = 4;
      break;
    case Mn::kFcmp:
      c.latency = 2;
      break;
    case Mn::kScvtf: case Mn::kFcvtzs: case Mn::kFmov:
      c.latency = 3;
      break;
    // Vector.
    case Mn::kVAdd:
      c.latency = 2;
      break;
    case Mn::kVFadd:
      c.latency = 3;
      break;
    case Mn::kVFmul:
      c.latency = 4;
      break;
    case Mn::kNop:
      c.latency = 0;
      break;
    case Mn::kSvc: case Mn::kBrk: case Mn::kMrs: case Mn::kMsr:
      c.latency = 10;
      break;
  }
  return c;
}

}  // namespace lfi::arch
