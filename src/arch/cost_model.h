// Per-instruction timing model.
//
// The paper's optimizations are all about instruction latency and
// throughput: the basic `add ... uxtw` guard "executes with 2-cycle latency
// and half-throughput on both Apple and Arm CPU designs" (Section 4), the
// register-offset load form has the same performance as the plain form, and
// an extra plain `add` costs one cycle. This module captures exactly those
// quantities, drawing on the microarchitectural sources the paper cites
// (the Arm Cortex-X software optimization guide and Dougall Johnson's Apple
// Firestorm tables), so that the emulator's scoreboard reproduces the
// O0/O1/O2 overhead ordering.
#ifndef LFI_ARCH_COST_MODEL_H_
#define LFI_ARCH_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "arch/inst.h"

namespace lfi::arch {

// Parameters describing one CPU core design.
struct CoreParams {
  std::string name;
  double ghz = 3.0;          // clock frequency, for cycle->ns conversion
  int issue_width = 6;       // instructions issued per cycle (idealized OoO)
  int mem_ports = 3;         // loads+stores issued per cycle
  int load_latency = 4;      // L1 hit load-to-use latency
  int l2_latency = 14;       // additional cycles for an L1 miss, L2 hit
  int mem_latency = 90;      // additional cycles for an L2 miss
  int tlb_walk_cycles = 22;  // page-walk cost on a TLB miss
  int tlb_entries = 1024;    // modeled (fully-associative) TLB capacity
  int l1d_kib = 64;          // modeled L1 data cache size
  int mispredict_penalty = 13;  // branch misprediction bubble
  int mlp = 8;                  // max overlapping cache misses (MSHRs)
};

// A core resembling the Apple M1 Firestorm: very wide, large caches,
// 3.2 GHz (the paper's Macbook Air).
CoreParams AppleM1LikeParams();

// A core resembling the Neoverse N1-class GCP T2A instance: narrower,
// smaller caches, 3.0 GHz.
CoreParams GcpT2aLikeParams();

// Static execution cost of one instruction.
struct InstCost {
  int latency = 1;  // cycles until the result is ready for consumers
  int slots = 1;    // issue slots consumed (2 = "half throughput")
  bool is_mem = false;
};

// Returns the cost of `i` on a core described by `p`. Load latency excludes
// cache/TLB effects, which the emulator adds dynamically.
InstCost CostOf(const Inst& i, const CoreParams& p);

}  // namespace lfi::arch

#endif  // LFI_ARCH_COST_MODEL_H_
