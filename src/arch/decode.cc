#include "arch/decode.h"

#include "arch/encode.h"

#include <bit>
#include <cassert>

namespace lfi::arch {

namespace {

using R = Result<Inst>;

Error Err(const std::string& m) { return Error{"decode: " + m}; }

uint32_t Bits(uint32_t w, unsigned hi, unsigned lo) {
  return (w >> lo) & ((1u << (hi - lo + 1)) - 1);
}

int64_t SignExtend(uint32_t v, unsigned bits) {
  const int64_t shifted = static_cast<int64_t>(uint64_t{v} << (64 - bits));
  return shifted >> (64 - bits);
}

Width SfWidth(uint32_t w) { return Bits(w, 31, 31) ? Width::kX : Width::kW; }

Reg RegZr(uint32_t enc) {
  return enc == 31 ? Reg::Zr() : Reg::X(static_cast<uint8_t>(enc));
}

Reg RegSp(uint32_t enc) {
  return enc == 31 ? Reg::Sp() : Reg::X(static_cast<uint8_t>(enc));
}

R DecodeAddSubImm(uint32_t w) {
  Inst i;
  const bool sub = Bits(w, 30, 30);
  const bool s = Bits(w, 29, 29);
  i.mn = sub ? (s ? Mn::kSubsImm : Mn::kSubImm)
             : (s ? Mn::kAddsImm : Mn::kAddImm);
  i.width = SfWidth(w);
  i.rd = s ? RegZr(Bits(w, 4, 0)) : RegSp(Bits(w, 4, 0));
  i.rn = RegSp(Bits(w, 9, 5));
  i.imm = Bits(w, 21, 10);
  if (Bits(w, 22, 22)) i.imm <<= 12;
  if (Bits(w, 23, 23)) return Err("add/sub imm sh=1x unallocated");
  return i;
}

R DecodeAddSubShifted(uint32_t w) {
  Inst i;
  const bool sub = Bits(w, 30, 30);
  const bool s = Bits(w, 29, 29);
  i.mn = sub ? (s ? Mn::kSubsReg : Mn::kSubReg)
             : (s ? Mn::kAddsReg : Mn::kAddReg);
  i.width = SfWidth(w);
  const uint32_t shift = Bits(w, 23, 22);
  if (shift == 3) return Err("add/sub shifted with ror");
  i.shift = static_cast<Shift>(shift);
  i.shift_amount = static_cast<uint8_t>(Bits(w, 15, 10));
  if (i.width == Width::kW && i.shift_amount >= 32) {
    return Err("32-bit shift amount >= 32");
  }
  i.rd = RegZr(Bits(w, 4, 0));
  i.rn = RegZr(Bits(w, 9, 5));
  i.rm = RegZr(Bits(w, 20, 16));
  return i;
}

R DecodeAddSubExt(uint32_t w) {
  Inst i;
  const bool sub = Bits(w, 30, 30);
  if (Bits(w, 29, 29)) return Err("adds/subs ext unsupported");
  i.mn = sub ? Mn::kSubExt : Mn::kAddExt;
  i.width = SfWidth(w);
  i.ext = static_cast<Extend>(Bits(w, 15, 13));
  i.shift_amount = static_cast<uint8_t>(Bits(w, 12, 10));
  if (i.shift_amount > 4) return Err("extend shift > 4");
  i.rd = RegSp(Bits(w, 4, 0));
  i.rn = RegSp(Bits(w, 9, 5));
  i.rm = RegZr(Bits(w, 20, 16));
  return i;
}

R DecodeLogical(uint32_t w) {
  Inst i;
  const uint32_t opc = Bits(w, 30, 29);
  const uint32_t n = Bits(w, 21, 21);
  if (opc == 0b00 && n == 0) i.mn = Mn::kAndReg;
  else if (opc == 0b00 && n == 1) i.mn = Mn::kBicReg;
  else if (opc == 0b01 && n == 0) i.mn = Mn::kOrrReg;
  else if (opc == 0b10 && n == 0) i.mn = Mn::kEorReg;
  else if (opc == 0b11 && n == 0) i.mn = Mn::kAndsReg;
  else return Err("orn/eon/bics unsupported");
  i.width = SfWidth(w);
  i.shift = static_cast<Shift>(Bits(w, 23, 22));
  i.shift_amount = static_cast<uint8_t>(Bits(w, 15, 10));
  if (i.width == Width::kW && i.shift_amount >= 32) {
    return Err("32-bit shift amount >= 32");
  }
  i.rd = RegZr(Bits(w, 4, 0));
  i.rn = RegZr(Bits(w, 9, 5));
  i.rm = RegZr(Bits(w, 20, 16));
  return i;
}

R DecodeMovWide(uint32_t w) {
  Inst i;
  switch (Bits(w, 30, 29)) {
    case 0b00: i.mn = Mn::kMovn; break;
    case 0b10: i.mn = Mn::kMovz; break;
    case 0b11: i.mn = Mn::kMovk; break;
    default: return Err("movwide opc=01 unallocated");
  }
  i.width = SfWidth(w);
  i.shift_amount = static_cast<uint8_t>(Bits(w, 22, 21) * 16);
  if (i.width == Width::kW && i.shift_amount > 16) {
    return Err("32-bit mov with hw > 1");
  }
  i.imm = Bits(w, 20, 5);
  i.rd = RegZr(Bits(w, 4, 0));
  return i;
}

R DecodeBitfield(uint32_t w) {
  Inst i;
  switch (Bits(w, 30, 29)) {
    case 0b00: i.mn = Mn::kSbfm; break;
    case 0b10: i.mn = Mn::kUbfm; break;
    default: return Err("bfm unsupported");
  }
  i.width = SfWidth(w);
  if (Bits(w, 22, 22) != Bits(w, 31, 31)) return Err("bitfield N != sf");
  i.immr = static_cast<uint8_t>(Bits(w, 21, 16));
  i.imms = static_cast<uint8_t>(Bits(w, 15, 10));
  const uint8_t max = i.width == Width::kX ? 64 : 32;
  if (i.immr >= max || i.imms >= max) return Err("bitfield field too large");
  i.rd = RegZr(Bits(w, 4, 0));
  i.rn = RegZr(Bits(w, 9, 5));
  return i;
}

R DecodeMulAdd(uint32_t w) {
  Inst i;
  i.mn = Bits(w, 15, 15) ? Mn::kMsub : Mn::kMadd;
  i.width = SfWidth(w);
  i.rd = RegZr(Bits(w, 4, 0));
  i.rn = RegZr(Bits(w, 9, 5));
  i.rm = RegZr(Bits(w, 20, 16));
  i.ra = RegZr(Bits(w, 14, 10));
  return i;
}

R DecodeMulHigh(uint32_t w) {
  Inst i;
  if (Bits(w, 31, 31) != 1) return Err("mulh requires sf=1");
  if (Bits(w, 14, 10) != 0b11111 || Bits(w, 15, 15) != 0) {
    return Err("mulh Ra/o0 bits");
  }
  i.mn = Bits(w, 23, 23) ? Mn::kUmulh : Mn::kSmulh;
  i.width = Width::kX;
  i.rd = RegZr(Bits(w, 4, 0));
  i.rn = RegZr(Bits(w, 9, 5));
  i.rm = RegZr(Bits(w, 20, 16));
  return i;
}

R DecodeCondCompare(uint32_t w) {
  Inst i;
  const bool immform = Bits(w, 11, 11);
  const bool neg = !Bits(w, 30, 30);
  i.mn = immform ? (neg ? Mn::kCcmnImm : Mn::kCcmpImm)
                 : (neg ? Mn::kCcmn : Mn::kCcmp);
  i.width = SfWidth(w);
  i.cond = static_cast<Cond>(Bits(w, 15, 12));
  i.rn = RegZr(Bits(w, 9, 5));
  if (immform) {
    i.imm = Bits(w, 20, 16);
  } else {
    i.rm = RegZr(Bits(w, 20, 16));
  }
  i.nzcv = static_cast<uint8_t>(Bits(w, 3, 0));
  return i;
}

R DecodeExtr(uint32_t w) {
  Inst i;
  i.mn = Mn::kExtr;
  i.width = SfWidth(w);
  if (Bits(w, 22, 22) != Bits(w, 31, 31)) return Err("extr N != sf");
  i.imms = static_cast<uint8_t>(Bits(w, 15, 10));
  if (i.width == Width::kW && i.imms >= 32) return Err("extr lsb range");
  i.rd = RegZr(Bits(w, 4, 0));
  i.rn = RegZr(Bits(w, 9, 5));
  i.rm = RegZr(Bits(w, 20, 16));
  return i;
}

R DecodeDiv(uint32_t w) {
  Inst i;
  i.mn = Bits(w, 10, 10) ? Mn::kSdiv : Mn::kUdiv;
  i.width = SfWidth(w);
  i.rd = RegZr(Bits(w, 4, 0));
  i.rn = RegZr(Bits(w, 9, 5));
  i.rm = RegZr(Bits(w, 20, 16));
  return i;
}

R DecodeCondSel(uint32_t w) {
  Inst i;
  const uint32_t op = Bits(w, 30, 30);
  const uint32_t o2 = Bits(w, 10, 10);
  if (op == 0) i.mn = o2 ? Mn::kCsinc : Mn::kCsel;
  else i.mn = o2 ? Mn::kCsneg : Mn::kCsinv;
  i.width = SfWidth(w);
  i.cond = static_cast<Cond>(Bits(w, 15, 12));
  i.rd = RegZr(Bits(w, 4, 0));
  i.rn = RegZr(Bits(w, 9, 5));
  i.rm = RegZr(Bits(w, 20, 16));
  return i;
}

R DecodeDataProc1(uint32_t w) {
  Inst i;
  i.width = SfWidth(w);
  switch (Bits(w, 15, 10)) {
    case 0b000000: i.mn = Mn::kRbit; break;
    case 0b000010:
      if (i.width == Width::kX) return Err("rev32 unsupported");
      i.mn = Mn::kRev;
      break;
    case 0b000011:
      if (i.width == Width::kW) return Err("rev64 on w reg");
      i.mn = Mn::kRev;
      break;
    case 0b000100: i.mn = Mn::kClz; break;
    default: return Err("dataproc1 opcode unsupported");
  }
  i.rd = RegZr(Bits(w, 4, 0));
  i.rn = RegZr(Bits(w, 9, 5));
  return i;
}

R DecodeAdr(uint32_t w) {
  Inst i;
  const bool page = Bits(w, 31, 31);
  i.mn = page ? Mn::kAdrp : Mn::kAdr;
  const uint32_t immlo = Bits(w, 30, 29);
  const uint32_t immhi = Bits(w, 23, 5);
  i.imm = SignExtend((immhi << 2) | immlo, 21);
  if (page) i.imm <<= 12;
  i.rd = RegZr(Bits(w, 4, 0));
  return i;
}

// Decodes the opc/size fields of an integer load/store into Inst fields.
// Returns false for combinations we do not support (e.g. prefetch).
bool DecodeIntLsKind(Inst* i, uint32_t size, uint32_t opc) {
  i->msize = 1u << size;
  switch (opc) {
    case 0b00:
      i->mn = Mn::kStr;
      i->width = size == 3 ? Width::kX : Width::kW;
      return true;
    case 0b01:
      i->mn = Mn::kLdr;
      i->msigned = false;
      i->width = size == 3 ? Width::kX : Width::kW;
      return true;
    case 0b10:  // sign-extend to 64 bits (prfm when size == 3)
      if (size == 3) return false;
      i->mn = Mn::kLdr;
      i->msigned = true;
      i->width = Width::kX;
      return true;
    case 0b11:  // sign-extend to 32 bits
      if (size >= 2) return false;
      i->mn = Mn::kLdr;
      i->msigned = true;
      i->width = Width::kW;
      return true;
  }
  return false;
}

bool DecodeFpLsKind(Inst* i, uint32_t size, uint32_t opc) {
  if (size == 0b10 && (opc == 0b00 || opc == 0b01)) {
    i->fsize = FpSize::kS;
    i->msize = 4;
  } else if (size == 0b11 && (opc == 0b00 || opc == 0b01)) {
    i->fsize = FpSize::kD;
    i->msize = 8;
  } else if (size == 0b00 && (opc == 0b10 || opc == 0b11)) {
    i->fsize = FpSize::kQ;
    i->msize = 16;
  } else {
    return false;  // b/h FP accesses unsupported
  }
  i->mn = (opc & 1) ? Mn::kLdrF : Mn::kStrF;
  return true;
}

R DecodeLoadStoreUImm(uint32_t w) {
  Inst i;
  const uint32_t size = Bits(w, 31, 30);
  const uint32_t v = Bits(w, 26, 26);
  const uint32_t opc = Bits(w, 23, 22);
  if (v == 0) {
    if (!DecodeIntLsKind(&i, size, opc)) return Err("ls opc unsupported");
    i.rt = RegZr(Bits(w, 4, 0));
  } else {
    if (!DecodeFpLsKind(&i, size, opc)) return Err("fp ls unsupported");
    i.vt = VReg::V(static_cast<uint8_t>(Bits(w, 4, 0)));
  }
  i.mem.base = RegSp(Bits(w, 9, 5));
  i.mem.mode = AddrMode::kImm;
  i.mem.imm = int64_t{Bits(w, 21, 10)} * i.msize;
  return i;
}

R DecodeLoadStoreOther(uint32_t w) {
  Inst i;
  const uint32_t size = Bits(w, 31, 30);
  const uint32_t v = Bits(w, 26, 26);
  const uint32_t opc = Bits(w, 23, 22);
  if (v == 0) {
    if (!DecodeIntLsKind(&i, size, opc)) return Err("ls opc unsupported");
    i.rt = RegZr(Bits(w, 4, 0));
  } else {
    if (!DecodeFpLsKind(&i, size, opc)) return Err("fp ls unsupported");
    i.vt = VReg::V(static_cast<uint8_t>(Bits(w, 4, 0)));
  }
  i.mem.base = RegSp(Bits(w, 9, 5));
  if (Bits(w, 21, 21)) {  // register offset
    if (Bits(w, 11, 10) != 0b10) return Err("ls regoffset bits");
    const uint32_t option = Bits(w, 15, 13);
    switch (option) {
      case 0b010: i.mem.mode = AddrMode::kRegUxtw; break;
      case 0b011: i.mem.mode = AddrMode::kRegLsl; break;
      case 0b110: i.mem.mode = AddrMode::kRegSxtw; break;
      case 0b111: i.mem.mode = AddrMode::kRegLsl; break;  // sxtx == lsl
      default: return Err("ls regoffset option unsupported");
    }
    i.mem.index = RegZr(Bits(w, 20, 16));
    i.mem.shift = Bits(w, 12, 12)
                      ? static_cast<uint8_t>(std::countr_zero(i.msize))
                      : 0;
    return i;
  }
  const int64_t imm9 = SignExtend(Bits(w, 20, 12), 9);
  switch (Bits(w, 11, 10)) {
    case 0b00: i.mem.mode = AddrMode::kImm; break;       // ldur/stur
    case 0b01: i.mem.mode = AddrMode::kPostIndex; break;
    case 0b11: i.mem.mode = AddrMode::kPreIndex; break;
    default: return Err("unprivileged ls unsupported");
  }
  i.mem.imm = imm9;
  return i;
}

R DecodePair(uint32_t w) {
  Inst i;
  const uint32_t opc = Bits(w, 31, 30);
  if (opc == 0b00) i.width = Width::kW;
  else if (opc == 0b10) i.width = Width::kX;
  else return Err("ldp/stp opc unsupported");
  i.mn = Bits(w, 22, 22) ? Mn::kLdp : Mn::kStp;
  switch (Bits(w, 25, 23)) {
    case 0b001: i.mem.mode = AddrMode::kPostIndex; break;
    case 0b010: i.mem.mode = AddrMode::kImm; break;
    case 0b011: i.mem.mode = AddrMode::kPreIndex; break;
    default: return Err("ldp/stp mode unsupported");
  }
  const unsigned bytes = i.width == Width::kX ? 8 : 4;
  i.msize = static_cast<uint8_t>(bytes);
  i.mem.imm = SignExtend(Bits(w, 21, 15), 7) * int64_t{bytes};
  i.mem.base = RegSp(Bits(w, 9, 5));
  i.rt = RegZr(Bits(w, 4, 0));
  i.rt2 = RegZr(Bits(w, 14, 10));
  return i;
}

R DecodeExclusive(uint32_t w) {
  Inst i;
  const uint32_t o2 = Bits(w, 23, 23);
  const uint32_t l = Bits(w, 22, 22);
  const uint32_t o1 = Bits(w, 21, 21);
  const uint32_t o0 = Bits(w, 15, 15);
  if (o1 != 0) return Err("ldxp/stxp unsupported");
  if (Bits(w, 14, 10) != 0b11111) return Err("exclusive rt2 must be 11111");
  if (o2 == 0 && l == 1 && o0 == 0) i.mn = Mn::kLdxr;
  else if (o2 == 0 && l == 0 && o0 == 0) i.mn = Mn::kStxr;
  else if (o2 == 1 && l == 1 && o0 == 1) i.mn = Mn::kLdar;
  else if (o2 == 1 && l == 0 && o0 == 1) i.mn = Mn::kStlr;
  else return Err("exclusive variant unsupported");
  const uint32_t size = Bits(w, 31, 30);
  i.msize = static_cast<uint8_t>(1u << size);
  i.width = size == 3 ? Width::kX : Width::kW;
  if (i.mn == Mn::kStxr) {
    i.rs = RegZr(Bits(w, 20, 16));
  } else if (Bits(w, 20, 16) != 0b11111) {
    return Err("exclusive rs must be 11111");
  }
  i.mem.base = RegSp(Bits(w, 9, 5));
  i.mem.mode = AddrMode::kImm;
  i.rt = RegZr(Bits(w, 4, 0));
  return i;
}

R DecodeFp(uint32_t w) {
  Inst i;
  const uint32_t type = Bits(w, 23, 22);
  if (type > 1) return Err("fp type unsupported");
  i.fsize = type == 0 ? FpSize::kS : FpSize::kD;
  // Int<->FP conversions: bits 10-15 == 0 and bit 21 == 1.
  if (Bits(w, 15, 10) == 0 && Bits(w, 21, 21) == 1 &&
      Bits(w, 30, 29) == 0) {
    const uint32_t rmode = Bits(w, 20, 19);
    const uint32_t opcode = Bits(w, 18, 16);
    i.width = SfWidth(w);
    if (rmode == 0b00 && opcode == 0b010) {
      i.mn = Mn::kScvtf;
      i.rn = RegZr(Bits(w, 9, 5));
      i.vd = VReg::V(static_cast<uint8_t>(Bits(w, 4, 0)));
      return i;
    }
    if (rmode == 0b11 && opcode == 0b000) {
      i.mn = Mn::kFcvtzs;
      i.vn = VReg::V(static_cast<uint8_t>(Bits(w, 9, 5)));
      i.rd = RegZr(Bits(w, 4, 0));
      return i;
    }
    if (rmode == 0b00 && opcode == 0b110) {  // fmov gpr <- fp
      i.mn = Mn::kFmov;
      i.vn = VReg::V(static_cast<uint8_t>(Bits(w, 9, 5)));
      i.rd = RegZr(Bits(w, 4, 0));
      return i;
    }
    if (rmode == 0b00 && opcode == 0b111) {  // fmov fp <- gpr
      i.mn = Mn::kFmov;
      i.rn = RegZr(Bits(w, 9, 5));
      i.vd = VReg::V(static_cast<uint8_t>(Bits(w, 4, 0)));
      return i;
    }
    return Err("int<->fp conversion unsupported");
  }
  if (Bits(w, 31, 24) != 0b00011110) return Err("fp pattern");
  if (Bits(w, 21, 21) != 1) return Err("fp bit21");
  // FCMP: bits 10-15 == 001000, bits 0-4 == 0.
  if (Bits(w, 15, 10) == 0b001000 && Bits(w, 4, 0) == 0) {
    i.mn = Mn::kFcmp;
    i.vn = VReg::V(static_cast<uint8_t>(Bits(w, 9, 5)));
    i.vm = VReg::V(static_cast<uint8_t>(Bits(w, 20, 16)));
    return i;
  }
  // 1-source: bits 10-14 == 10000.
  if (Bits(w, 14, 10) == 0b10000) {
    switch (Bits(w, 20, 15)) {
      case 0b000000: i.mn = Mn::kFmov; break;
      case 0b000011: i.mn = Mn::kFsqrt; break;
      default: return Err("fp 1src opcode unsupported");
    }
    i.vd = VReg::V(static_cast<uint8_t>(Bits(w, 4, 0)));
    i.vn = VReg::V(static_cast<uint8_t>(Bits(w, 9, 5)));
    return i;
  }
  // 2-source: bits 10-11 == 10.
  if (Bits(w, 11, 10) == 0b10) {
    switch (Bits(w, 15, 12)) {
      case 0b0000: i.mn = Mn::kFmul; break;
      case 0b0001: i.mn = Mn::kFdiv; break;
      case 0b0010: i.mn = Mn::kFadd; break;
      case 0b0011: i.mn = Mn::kFsub; break;
      default: return Err("fp 2src opcode unsupported");
    }
    i.vd = VReg::V(static_cast<uint8_t>(Bits(w, 4, 0)));
    i.vn = VReg::V(static_cast<uint8_t>(Bits(w, 9, 5)));
    i.vm = VReg::V(static_cast<uint8_t>(Bits(w, 20, 16)));
    return i;
  }
  return Err("fp pattern unsupported");
}

R DecodeFmadd(uint32_t w) {
  if (Bits(w, 21, 21) != 0 || Bits(w, 15, 15) != 0) {
    return Err("fmsub/fnm* unsupported");
  }
  Inst i;
  const uint32_t type = Bits(w, 23, 22);
  if (type > 1) return Err("fp type unsupported");
  i.mn = Mn::kFmadd;
  i.fsize = type == 0 ? FpSize::kS : FpSize::kD;
  i.vd = VReg::V(static_cast<uint8_t>(Bits(w, 4, 0)));
  i.vn = VReg::V(static_cast<uint8_t>(Bits(w, 9, 5)));
  i.vm = VReg::V(static_cast<uint8_t>(Bits(w, 20, 16)));
  i.va = VReg::V(static_cast<uint8_t>(Bits(w, 14, 10)));
  return i;
}

R DecodeVector(uint32_t w) {
  Inst i;
  if (Bits(w, 30, 30) != 1) return Err("64-bit vectors unsupported");
  const uint32_t u = Bits(w, 29, 29);
  const uint32_t size = Bits(w, 23, 22);
  const uint32_t opcode = Bits(w, 15, 11);
  if (u == 0 && opcode == 0b10000 && (size == 0b10 || size == 0b11)) {
    i.mn = Mn::kVAdd;
    i.fsize = size == 0b10 ? FpSize::kV4S : FpSize::kV2D;
  } else if (u == 0 && opcode == 0b11010 && (size == 0b00 || size == 0b01)) {
    i.mn = Mn::kVFadd;
    i.fsize = size == 0b00 ? FpSize::kV4S : FpSize::kV2D;
  } else if (u == 1 && opcode == 0b11011 && (size == 0b00 || size == 0b01)) {
    i.mn = Mn::kVFmul;
    i.fsize = size == 0b00 ? FpSize::kV4S : FpSize::kV2D;
  } else {
    return Err("vector op unsupported");
  }
  i.vd = VReg::V(static_cast<uint8_t>(Bits(w, 4, 0)));
  i.vn = VReg::V(static_cast<uint8_t>(Bits(w, 9, 5)));
  i.vm = VReg::V(static_cast<uint8_t>(Bits(w, 20, 16)));
  return i;
}

}  // namespace

Result<Inst> Decode(uint32_t w) {
  // Fixed words first.
  if (w == 0xD503201Fu) {
    Inst i;
    i.mn = Mn::kNop;
    return i;
  }
  if ((w & 0xFFE0001Fu) == 0xD4000001u) {
    Inst i;
    i.mn = Mn::kSvc;
    i.imm = Bits(w, 20, 5);
    return i;
  }
  if ((w & 0xFFE0001Fu) == 0xD4200000u) {
    Inst i;
    i.mn = Mn::kBrk;
    i.imm = Bits(w, 20, 5);
    return i;
  }
  if ((w & 0xFFF00000u) == 0xD5300000u) {
    Inst i;
    i.mn = Mn::kMrs;
    i.imm = Bits(w, 19, 5);
    i.rt = RegZr(Bits(w, 4, 0));
    return i;
  }
  if ((w & 0xFFF00000u) == 0xD5100000u) {
    Inst i;
    i.mn = Mn::kMsr;
    i.imm = Bits(w, 19, 5);
    i.rt = RegZr(Bits(w, 4, 0));
    return i;
  }
  // Indirect branches.
  if ((w & 0xFFFFFC1Fu) == 0xD61F0000u || (w & 0xFFFFFC1Fu) == 0xD63F0000u ||
      (w & 0xFFFFFC1Fu) == 0xD65F0000u) {
    Inst i;
    const uint32_t opc = Bits(w, 22, 21);
    i.mn = opc == 0 ? Mn::kBr : opc == 1 ? Mn::kBlr : Mn::kRet;
    i.rn = RegZr(Bits(w, 9, 5));
    return i;
  }
  // Direct branches.
  if ((w & 0x7C000000u) == 0x14000000u) {
    Inst i;
    i.mn = Bits(w, 31, 31) ? Mn::kBl : Mn::kB;
    i.imm = SignExtend(Bits(w, 25, 0), 26) * 4;
    return i;
  }
  if ((w & 0xFF000010u) == 0x54000000u) {
    Inst i;
    i.mn = Mn::kBCond;
    i.cond = static_cast<Cond>(Bits(w, 3, 0));
    if (i.cond == Cond::kAl) return Err("b.al unsupported");
    if (Bits(w, 3, 0) == 15) return Err("b.nv unsupported");
    i.imm = SignExtend(Bits(w, 23, 5), 19) * 4;
    return i;
  }
  if ((w & 0x7E000000u) == 0x34000000u) {
    Inst i;
    i.mn = Bits(w, 24, 24) ? Mn::kCbnz : Mn::kCbz;
    i.width = SfWidth(w);
    i.imm = SignExtend(Bits(w, 23, 5), 19) * 4;
    i.rt = RegZr(Bits(w, 4, 0));
    return i;
  }
  if ((w & 0x7E000000u) == 0x36000000u) {
    Inst i;
    i.mn = Bits(w, 24, 24) ? Mn::kTbnz : Mn::kTbz;
    i.bit = static_cast<uint8_t>((Bits(w, 31, 31) << 5) | Bits(w, 23, 19));
    i.width = i.bit >= 32 ? Width::kX : Width::kW;
    i.imm = SignExtend(Bits(w, 18, 5), 14) * 4;
    i.rt = RegZr(Bits(w, 4, 0));
    return i;
  }
  // PC-relative.
  if ((w & 0x1F000000u) == 0x10000000u) return DecodeAdr(w);
  // Data processing, immediate.
  if ((w & 0x1F800000u) == 0x12000000u) {
    // Logical immediate.
    Inst i;
    switch (Bits(w, 30, 29)) {
      case 0b00: i.mn = Mn::kAndImm; break;
      case 0b01: i.mn = Mn::kOrrImm; break;
      case 0b10: i.mn = Mn::kEorImm; break;
      default: i.mn = Mn::kAndsImm; break;
    }
    i.width = SfWidth(w);
    if (i.width == Width::kW && Bits(w, 22, 22)) {
      return Err("logical imm: N=1 with 32-bit register");
    }
    auto mask = DecodeBitmaskImm(
        static_cast<uint8_t>(Bits(w, 22, 22)),
        static_cast<uint8_t>(Bits(w, 21, 16)),
        static_cast<uint8_t>(Bits(w, 15, 10)), i.width);
    if (!mask) return Err(mask.error());
    i.imm = static_cast<int64_t>(*mask);
    i.rd = i.mn == Mn::kAndsImm ? RegZr(Bits(w, 4, 0))
                                : RegSp(Bits(w, 4, 0));
    i.rn = RegZr(Bits(w, 9, 5));
    return i;
  }
  if ((w & 0x1F800000u) == 0x11000000u) return DecodeAddSubImm(w);
  if ((w & 0x1F800000u) == 0x12800000u) return DecodeMovWide(w);
  if ((w & 0x1F800000u) == 0x13000000u) return DecodeBitfield(w);
  // Data processing, register.
  if ((w & 0x1F200000u) == 0x0B000000u) return DecodeAddSubShifted(w);
  if ((w & 0x1FE00000u) == 0x0B200000u) return DecodeAddSubExt(w);
  if ((w & 0x1F000000u) == 0x0A000000u) return DecodeLogical(w);
  if ((w & 0x7FE08000u) == 0x1B000000u || (w & 0x7FE08000u) == 0x1B008000u) {
    return DecodeMulAdd(w);
  }
  if ((w & 0x7FE08000u) == 0x1B400000u || (w & 0x7FE08000u) == 0x1BC00000u) {
    return DecodeMulHigh(w);
  }
  if ((w & 0x3FE00410u) == 0x3A400000u) return DecodeCondCompare(w);
  if ((w & 0x7FA00000u) == 0x13800000u) return DecodeExtr(w);
  if ((w & 0x7FE0F800u) == 0x1AC00800u) return DecodeDiv(w);
  if ((w & 0x7FFF0000u) == 0x5AC00000u) return DecodeDataProc1(w);
  if ((w & 0x3FE00800u) == 0x1A800000u) return DecodeCondSel(w);
  // Loads and stores.
  if ((w & 0x3F000000u) == 0x08000000u) return DecodeExclusive(w);
  if ((w & 0x3C000000u) == 0x28000000u) return DecodePair(w);
  if ((w & 0x3B000000u) == 0x39000000u) return DecodeLoadStoreUImm(w);
  if ((w & 0x3B000000u) == 0x38000000u) return DecodeLoadStoreOther(w);
  // Floating point and SIMD.
  if ((w & 0xFF000000u) == 0x1F000000u) return DecodeFmadd(w);
  if ((w & 0x5F200000u) == 0x1E200000u && Bits(w, 30, 30) == 0 &&
      Bits(w, 28, 24) == 0b11110) {
    return DecodeFp(w);
  }
  if ((w & 0x9F200400u) == 0x0E200400u) return DecodeVector(w);
  return Err("unrecognized instruction word");
}

uint32_t ReadWordLE(std::span<const uint8_t> bytes, size_t offset) {
  assert(offset + 4 <= bytes.size());
  return uint32_t{bytes[offset]} | (uint32_t{bytes[offset + 1]} << 8) |
         (uint32_t{bytes[offset + 2]} << 16) |
         (uint32_t{bytes[offset + 3]} << 24);
}

Result<std::vector<Inst>> DecodeAll(std::span<const uint8_t> bytes) {
  if (bytes.size() % 4 != 0) {
    return Error{"decode: byte stream not a multiple of 4"};
  }
  std::vector<Inst> out;
  out.reserve(bytes.size() / 4);
  for (size_t off = 0; off < bytes.size(); off += 4) {
    auto inst = Decode(ReadWordLE(bytes, off));
    if (!inst) {
      return Error{"at offset " + std::to_string(off) + ": " + inst.error()};
    }
    out.push_back(*inst);
  }
  return out;
}

}  // namespace lfi::arch
