// Binary decoder: 32-bit ARM64 machine word -> Inst.
//
// The decoder is deliberately *closed world*: any word that is not one of
// the encodings this library supports decodes to an error. The static
// verifier builds directly on this property - an instruction that cannot be
// decoded is not on the allowlist and the program is rejected (property 3 in
// Section 5.2 of the paper).
#ifndef LFI_ARCH_DECODE_H_
#define LFI_ARCH_DECODE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "arch/inst.h"
#include "support/result.h"

namespace lfi::arch {

// Decodes a single machine word.
Result<Inst> Decode(uint32_t word);

// Decodes a little-endian byte stream. `bytes.size()` must be a multiple
// of 4. Fails on the first undecodable word, reporting its byte offset.
Result<std::vector<Inst>> DecodeAll(std::span<const uint8_t> bytes);

// Reads the little-endian word at `offset` of `bytes` (no bounds check
// beyond assert).
uint32_t ReadWordLE(std::span<const uint8_t> bytes, size_t offset);

}  // namespace lfi::arch

#endif  // LFI_ARCH_DECODE_H_
