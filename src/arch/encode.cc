#include "arch/encode.h"

#include <bit>

namespace lfi::arch {

namespace {

using R = Result<uint32_t>;

Error Err(const std::string& m) { return Error{"encode: " + m}; }

// Register fields where 31 means xzr (SP not allowed).
Result<uint32_t> GprOrZr(Reg r, const char* what) {
  if (r.IsSp() || r.IsNone()) {
    return Err(std::string("sp/none not allowed as ") + what);
  }
  return uint32_t{r.Encoding()};
}

// Register fields where 31 means sp (xzr not allowed).
Result<uint32_t> GprOrSp(Reg r, const char* what) {
  if (r.IsZr() || r.IsNone()) {
    return Err(std::string("zr/none not allowed as ") + what);
  }
  return uint32_t{r.Encoding()};
}

uint32_t Sf(Width w) { return w == Width::kX ? 1u : 0u; }

bool FitsSigned(int64_t v, unsigned bits) {
  const int64_t lo = -(int64_t{1} << (bits - 1));
  const int64_t hi = (int64_t{1} << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

// size field (bits 30-31) for an integer access of `bytes`.
Result<uint32_t> SizeField(unsigned bytes) {
  switch (bytes) {
    case 1: return 0u;
    case 2: return 1u;
    case 4: return 2u;
    case 8: return 3u;
  }
  return Err("bad access size");
}

R EncodeAddSubImm(const Inst& i, bool sub, bool setflags) {
  auto rd = setflags ? GprOrZr(i.rd, "rd") : GprOrSp(i.rd, "rd");
  auto rn = GprOrSp(i.rn, "rn");
  if (!rd) return rd;
  if (!rn) return rn;
  uint64_t imm = static_cast<uint64_t>(i.imm);
  uint32_t sh = 0;
  if (i.imm < 0) return Err("negative add/sub immediate");
  if (imm >= (1u << 12)) {
    if ((imm & 0xfffu) != 0 || imm >= (uint64_t{1} << 24)) {
      return Err("add/sub immediate out of range");
    }
    sh = 1;
    imm >>= 12;
  }
  return (Sf(i.width) << 31) | (uint32_t(sub) << 30) |
         (uint32_t(setflags) << 29) | (0b100010u << 23) | (sh << 22) |
         (uint32_t(imm) << 10) | (*rn << 5) | *rd;
}

R EncodeAddSubShifted(const Inst& i, bool sub, bool setflags) {
  auto rd = GprOrZr(i.rd, "rd");
  auto rn = GprOrZr(i.rn, "rn");
  auto rm = GprOrZr(i.rm, "rm");
  if (!rd) return rd;
  if (!rn) return rn;
  if (!rm) return rm;
  if (i.shift == Shift::kRor) return Err("ror invalid for add/sub");
  if (i.shift_amount >= (i.width == Width::kX ? 64 : 32)) {
    return Err("shift amount out of range");
  }
  return (Sf(i.width) << 31) | (uint32_t(sub) << 30) |
         (uint32_t(setflags) << 29) | (0b01011u << 24) |
         (uint32_t(i.shift) << 22) | (*rm << 16) |
         (uint32_t(i.shift_amount) << 10) | (*rn << 5) | *rd;
}

R EncodeAddSubExt(const Inst& i, bool sub) {
  auto rd = GprOrSp(i.rd, "rd");
  auto rn = GprOrSp(i.rn, "rn");
  auto rm = GprOrZr(i.rm, "rm");
  if (!rd) return rd;
  if (!rn) return rn;
  if (!rm) return rm;
  if (i.shift_amount > 4) return Err("extend shift > 4");
  return (Sf(i.width) << 31) | (uint32_t(sub) << 30) | (0b01011u << 24) |
         (0b001u << 21) | (*rm << 16) | (uint32_t(i.ext) << 13) |
         (uint32_t(i.shift_amount) << 10) | (*rn << 5) | *rd;
}

R EncodeLogicalShifted(const Inst& i, uint32_t opc, uint32_t n) {
  auto rd = GprOrZr(i.rd, "rd");
  auto rn = GprOrZr(i.rn, "rn");
  auto rm = GprOrZr(i.rm, "rm");
  if (!rd) return rd;
  if (!rn) return rn;
  if (!rm) return rm;
  if (i.shift_amount >= (i.width == Width::kX ? 64 : 32)) {
    return Err("shift amount out of range");
  }
  return (Sf(i.width) << 31) | (opc << 29) | (0b01010u << 24) |
         (uint32_t(i.shift) << 22) | (n << 21) | (*rm << 16) |
         (uint32_t(i.shift_amount) << 10) | (*rn << 5) | *rd;
}

R EncodeMovWide(const Inst& i, uint32_t opc) {
  auto rd = GprOrZr(i.rd, "rd");
  if (!rd) return rd;
  if (i.imm < 0 || i.imm > 0xffff) return Err("mov immediate out of range");
  if (i.shift_amount % 16 != 0 ||
      i.shift_amount > (i.width == Width::kX ? 48 : 16)) {
    return Err("mov shift must be 0/16/32/48");
  }
  const uint32_t hw = i.shift_amount / 16;
  return (Sf(i.width) << 31) | (opc << 29) | (0b100101u << 23) | (hw << 21) |
         (uint32_t(i.imm) << 5) | *rd;
}

R EncodeBitfield(const Inst& i, uint32_t opc) {
  auto rd = GprOrZr(i.rd, "rd");
  auto rn = GprOrZr(i.rn, "rn");
  if (!rd) return rd;
  if (!rn) return rn;
  const uint32_t n = Sf(i.width);
  const uint32_t max = i.width == Width::kX ? 64 : 32;
  if (i.immr >= max || i.imms >= max) return Err("bitfield field too large");
  return (Sf(i.width) << 31) | (opc << 29) | (0b100110u << 23) | (n << 22) |
         (uint32_t(i.immr) << 16) | (uint32_t(i.imms) << 10) | (*rn << 5) |
         *rd;
}

R EncodeMulAdd(const Inst& i, uint32_t o0) {
  auto rd = GprOrZr(i.rd, "rd");
  auto rn = GprOrZr(i.rn, "rn");
  auto rm = GprOrZr(i.rm, "rm");
  auto ra = GprOrZr(i.ra, "ra");
  if (!rd) return rd;
  if (!rn) return rn;
  if (!rm) return rm;
  if (!ra) return ra;
  return (Sf(i.width) << 31) | (0b0011011000u << 21) | (*rm << 16) |
         (o0 << 15) | (*ra << 10) | (*rn << 5) | *rd;
}

R EncodeMulHigh(const Inst& i, uint32_t u) {
  auto rd = GprOrZr(i.rd, "rd");
  auto rn = GprOrZr(i.rn, "rn");
  auto rm = GprOrZr(i.rm, "rm");
  if (!rd) return rd;
  if (!rn) return rn;
  if (!rm) return rm;
  if (i.width != Width::kX) return Err("umulh/smulh are 64-bit only");
  return (1u << 31) | (0b11011u << 24) | (u << 23) | (1u << 22) |
         (0u << 21) | (*rm << 16) | (0b11111u << 10) | (*rn << 5) | *rd;
}

R EncodeCondCompare(const Inst& i, bool neg, bool immform) {
  auto rn = GprOrZr(i.rn, "rn");
  if (!rn) return rn;
  if (i.nzcv > 15) return Err("ccmp nzcv out of range");
  uint32_t op2;
  if (immform) {
    if (i.imm < 0 || i.imm > 31) return Err("ccmp imm5 out of range");
    op2 = static_cast<uint32_t>(i.imm);
  } else {
    auto rm = GprOrZr(i.rm, "rm");
    if (!rm) return rm;
    op2 = *rm;
  }
  return (Sf(i.width) << 31) | (uint32_t(!neg) << 30) | (1u << 29) |
         (0b11010010u << 21) | (op2 << 16) | (uint32_t(i.cond) << 12) |
         (uint32_t(immform) << 11) | (*rn << 5) | i.nzcv;
}

R EncodeExtr(const Inst& i) {
  auto rd = GprOrZr(i.rd, "rd");
  auto rn = GprOrZr(i.rn, "rn");
  auto rm = GprOrZr(i.rm, "rm");
  if (!rd) return rd;
  if (!rn) return rn;
  if (!rm) return rm;
  const uint32_t bits = i.width == Width::kX ? 64 : 32;
  if (i.imms >= bits) return Err("extr lsb out of range");
  const uint32_t n = Sf(i.width);
  return (Sf(i.width) << 31) | (0b00100111u << 23) | (n << 22) |
         (*rm << 16) | (uint32_t(i.imms) << 10) | (*rn << 5) | *rd;
}

R EncodeDiv(const Inst& i, uint32_t o1) {
  auto rd = GprOrZr(i.rd, "rd");
  auto rn = GprOrZr(i.rn, "rn");
  auto rm = GprOrZr(i.rm, "rm");
  if (!rd) return rd;
  if (!rn) return rn;
  if (!rm) return rm;
  return (Sf(i.width) << 31) | (0b11010110u << 21) | (*rm << 16) |
         (0b00001u << 11) | (o1 << 10) | (*rn << 5) | *rd;
}

R EncodeCondSel(const Inst& i, uint32_t op, uint32_t o2) {
  auto rd = GprOrZr(i.rd, "rd");
  auto rn = GprOrZr(i.rn, "rn");
  auto rm = GprOrZr(i.rm, "rm");
  if (!rd) return rd;
  if (!rn) return rn;
  if (!rm) return rm;
  return (Sf(i.width) << 31) | (op << 30) | (0b11010100u << 21) |
         (*rm << 16) | (uint32_t(i.cond) << 12) | (o2 << 10) | (*rn << 5) |
         *rd;
}

R EncodeDataProc1(const Inst& i, uint32_t opcode) {
  auto rd = GprOrZr(i.rd, "rd");
  auto rn = GprOrZr(i.rn, "rn");
  if (!rd) return rd;
  if (!rn) return rn;
  return (Sf(i.width) << 31) | (1u << 30) | (0b11010110u << 21) |
         (opcode << 10) | (*rn << 5) | *rd;
}

R EncodeAdr(const Inst& i, bool page) {
  auto rd = GprOrZr(i.rd, "rd");
  if (!rd) return rd;
  int64_t imm = i.imm;
  if (page) {
    if (imm % 4096 != 0) return Err("adrp offset not page-aligned");
    imm >>= 12;
  }
  if (!FitsSigned(imm, 21)) return Err("adr(p) offset out of range");
  const uint32_t u = static_cast<uint32_t>(imm & 0x1fffff);
  return (uint32_t(page) << 31) | ((u & 3) << 29) | (0b10000u << 24) |
         ((u >> 2) << 5) | *rd;
}

// Common load/store encodings. `size` = size field bits, `v` = SIMD bit,
// `opc` = opc field bits, `rt` = transfer register encoding.
R EncodeLoadStoreCommon(const MemOperand& mem, unsigned bytes, uint32_t size,
                        uint32_t v, uint32_t opc, uint32_t rt) {
  auto rn = GprOrSp(mem.base, "mem base");
  if (!rn) return rn;
  switch (mem.mode) {
    case AddrMode::kImm: {
      if (FitsScaledImm12(mem.imm, bytes)) {
        const uint32_t imm12 = static_cast<uint32_t>(mem.imm / bytes);
        return (size << 30) | (0b111u << 27) | (v << 26) | (0b01u << 24) |
               (opc << 22) | (imm12 << 10) | (*rn << 5) | rt;
      }
      if (FitsImm9(mem.imm)) {  // ldur/stur form
        const uint32_t imm9 = static_cast<uint32_t>(mem.imm & 0x1ff);
        return (size << 30) | (0b111u << 27) | (v << 26) | (opc << 22) |
               (imm9 << 12) | (*rn << 5) | rt;
      }
      return Err("load/store immediate out of range");
    }
    case AddrMode::kPreIndex:
    case AddrMode::kPostIndex: {
      if (!FitsImm9(mem.imm)) return Err("index immediate out of range");
      const uint32_t imm9 = static_cast<uint32_t>(mem.imm & 0x1ff);
      const uint32_t idx = mem.mode == AddrMode::kPreIndex ? 0b11u : 0b01u;
      return (size << 30) | (0b111u << 27) | (v << 26) | (opc << 22) |
             (imm9 << 12) | (idx << 10) | (*rn << 5) | rt;
    }
    case AddrMode::kRegLsl:
    case AddrMode::kRegUxtw:
    case AddrMode::kRegSxtw: {
      auto rm = GprOrZr(mem.index, "mem index");
      if (!rm) return rm;
      uint32_t option;
      switch (mem.mode) {
        case AddrMode::kRegLsl: option = 0b011; break;
        case AddrMode::kRegUxtw: option = 0b010; break;
        default: option = 0b110; break;
      }
      uint32_t s;
      if (mem.shift == 0) {
        s = 0;
      } else if (bytes != 0 && mem.shift == std::countr_zero(bytes)) {
        s = 1;
      } else {
        return Err("register-offset shift must be 0 or log2(size)");
      }
      return (size << 30) | (0b111u << 27) | (v << 26) | (opc << 22) |
             (1u << 21) | (*rm << 16) | (option << 13) | (s << 12) |
             (0b10u << 10) | (*rn << 5) | rt;
    }
  }
  return Err("bad addressing mode");
}

R EncodeIntLoadStore(const Inst& i, bool load) {
  auto rt = GprOrZr(i.rt, "rt");
  if (!rt) return rt;
  auto size = SizeField(i.msize);
  if (!size) return size;
  uint32_t opc;
  if (!load) {
    opc = 0b00;
  } else if (!i.msigned) {
    opc = 0b01;
  } else {
    // Sign-extending load: opc 10 extends to 64 bits, 11 to 32 bits.
    if (i.msize == 8) return Err("ldrs with 8-byte size");
    opc = (i.width == Width::kX) ? 0b10 : 0b11;
    if (i.msize == 4 && i.width == Width::kW) {
      return Err("ldrsw must target an x register");
    }
  }
  return EncodeLoadStoreCommon(i.mem, i.msize, *size, 0, opc, *rt);
}

R EncodeFpLoadStore(const Inst& i, bool load) {
  if (i.vt.IsNone()) return Err("fp load/store without vt");
  uint32_t size, opc;
  unsigned bytes;
  switch (i.fsize) {
    case FpSize::kS: size = 0b10; opc = load ? 0b01 : 0b00; bytes = 4; break;
    case FpSize::kD: size = 0b11; opc = load ? 0b01 : 0b00; bytes = 8; break;
    case FpSize::kQ: size = 0b00; opc = load ? 0b11 : 0b10; bytes = 16; break;
    default: return Err("bad fp load/store size");
  }
  return EncodeLoadStoreCommon(i.mem, bytes, size, 1, opc, i.vt.Encoding());
}

R EncodePair(const Inst& i, bool load) {
  auto rt = GprOrZr(i.rt, "rt");
  auto rt2 = GprOrZr(i.rt2, "rt2");
  auto rn = GprOrSp(i.mem.base, "mem base");
  if (!rt) return rt;
  if (!rt2) return rt2;
  if (!rn) return rn;
  const unsigned bytes = i.width == Width::kX ? 8 : 4;
  if (!FitsPairImm7(i.mem.imm, bytes)) return Err("pair offset out of range");
  const uint32_t imm7 =
      static_cast<uint32_t>((i.mem.imm / int64_t{bytes}) & 0x7f);
  uint32_t mode;
  switch (i.mem.mode) {
    case AddrMode::kImm: mode = 0b010; break;
    case AddrMode::kPreIndex: mode = 0b011; break;
    case AddrMode::kPostIndex: mode = 0b001; break;
    default: return Err("bad pair addressing mode");
  }
  const uint32_t opc = i.width == Width::kX ? 0b10u : 0b00u;
  return (opc << 30) | (0b101u << 27) | (mode << 23) |
         (uint32_t(load) << 22) | (imm7 << 15) | (*rt2 << 10) | (*rn << 5) |
         *rt;
}

// Exclusive / acquire-release. All use base-register-only addressing.
R EncodeExclusive(const Inst& i, uint32_t o2, uint32_t l, uint32_t o0,
                  uint32_t rs) {
  auto rt = GprOrZr(i.rt, "rt");
  auto rn = GprOrSp(i.mem.base, "mem base");
  if (!rt) return rt;
  if (!rn) return rn;
  if (i.mem.mode != AddrMode::kImm || i.mem.imm != 0) {
    return Err("exclusive access requires [reg] addressing");
  }
  auto size = SizeField(i.msize);
  if (!size) return size;
  return (*size << 30) | (0b001000u << 24) | (o2 << 23) | (l << 22) |
         (rs << 16) | (o0 << 15) | (0b11111u << 10) | (*rn << 5) | *rt;
}

R EncodeBranchImm(const Inst& i, bool link) {
  if (i.imm % 4 != 0) return Err("branch offset not 4-aligned");
  const int64_t off = i.imm / 4;
  if (!FitsSigned(off, 26)) return Err("branch offset out of range");
  return (uint32_t(link) << 31) | (0b00101u << 26) |
         static_cast<uint32_t>(off & 0x3ffffff);
}

R EncodeCondBranch(const Inst& i) {
  if (i.imm % 4 != 0) return Err("branch offset not 4-aligned");
  const int64_t off = i.imm / 4;
  if (!FitsSigned(off, 19)) return Err("b.cond offset out of range");
  return (0b0101010u << 25) | (static_cast<uint32_t>(off & 0x7ffff) << 5) |
         uint32_t(i.cond);
}

R EncodeCompareBranch(const Inst& i, uint32_t op) {
  auto rt = GprOrZr(i.rt, "rt");
  if (!rt) return rt;
  if (i.imm % 4 != 0) return Err("branch offset not 4-aligned");
  const int64_t off = i.imm / 4;
  if (!FitsSigned(off, 19)) return Err("cbz offset out of range");
  return (Sf(i.width) << 31) | (0b011010u << 25) | (op << 24) |
         (static_cast<uint32_t>(off & 0x7ffff) << 5) | *rt;
}

R EncodeTestBranch(const Inst& i, uint32_t op) {
  auto rt = GprOrZr(i.rt, "rt");
  if (!rt) return rt;
  if (i.bit > 63) return Err("tbz bit out of range");
  if (i.imm % 4 != 0) return Err("branch offset not 4-aligned");
  const int64_t off = i.imm / 4;
  if (!FitsSigned(off, 14)) return Err("tbz offset out of range");
  const uint32_t b5 = i.bit >> 5;
  const uint32_t b40 = i.bit & 0x1f;
  return (b5 << 31) | (0b011011u << 25) | (op << 24) | (b40 << 19) |
         (static_cast<uint32_t>(off & 0x3fff) << 5) | *rt;
}

R EncodeBranchReg(const Inst& i, uint32_t opc) {
  Reg target = i.rn;
  auto rn = GprOrZr(target, "rn");
  if (!rn) return rn;
  return (0b1101011u << 25) | (opc << 21) | (0b11111u << 16) | (*rn << 5);
}

uint32_t FpType(FpSize s) { return s == FpSize::kS ? 0b00u : 0b01u; }

R EncodeFp2Src(const Inst& i, uint32_t opcode) {
  if (i.fsize != FpSize::kS && i.fsize != FpSize::kD) {
    return Err("scalar fp op needs s/d size");
  }
  return (0b00011110u << 24) | (FpType(i.fsize) << 22) | (1u << 21) |
         (uint32_t(i.vm.Encoding()) << 16) | (opcode << 12) | (0b10u << 10) |
         (uint32_t(i.vn.Encoding()) << 5) | i.vd.Encoding();
}

R EncodeFp1Src(const Inst& i, uint32_t opcode) {
  if (i.fsize != FpSize::kS && i.fsize != FpSize::kD) {
    return Err("scalar fp op needs s/d size");
  }
  return (0b00011110u << 24) | (FpType(i.fsize) << 22) | (1u << 21) |
         (opcode << 15) | (0b10000u << 10) |
         (uint32_t(i.vn.Encoding()) << 5) | i.vd.Encoding();
}

R EncodeFmadd(const Inst& i) {
  if (i.fsize != FpSize::kS && i.fsize != FpSize::kD) {
    return Err("fmadd needs s/d size");
  }
  return (0b00011111u << 24) | (FpType(i.fsize) << 22) |
         (uint32_t(i.vm.Encoding()) << 16) |
         (uint32_t(i.va.Encoding()) << 10) |
         (uint32_t(i.vn.Encoding()) << 5) | i.vd.Encoding();
}

R EncodeFcmp(const Inst& i) {
  if (i.fsize != FpSize::kS && i.fsize != FpSize::kD) {
    return Err("fcmp needs s/d size");
  }
  return (0b00011110u << 24) | (FpType(i.fsize) << 22) | (1u << 21) |
         (uint32_t(i.vm.Encoding()) << 16) | (0b001000u << 10) |
         (uint32_t(i.vn.Encoding()) << 5);
}

// Conversions between integer and FP registers share one format:
// sf 0 0 11110 type 1 rmode(2) opcode(3) 000000 Rn Rd
R EncodeIntFp(const Inst& i, uint32_t rmode, uint32_t opcode, uint32_t rn,
              uint32_t rd) {
  return (Sf(i.width) << 31) | (0b0011110u << 24) | (FpType(i.fsize) << 22) |
         (1u << 21) | (rmode << 19) | (opcode << 16) | (rn << 5) | rd;
}

R EncodeVector3Same(const Inst& i, uint32_t u, uint32_t size,
                    uint32_t opcode) {
  return (1u << 30) | (u << 29) | (0b01110u << 24) | (size << 22) |
         (1u << 21) | (uint32_t(i.vm.Encoding()) << 16) | (opcode << 11) |
         (1u << 10) | (uint32_t(i.vn.Encoding()) << 5) | i.vd.Encoding();
}

}  // namespace

bool FitsScaledImm12(int64_t imm, unsigned size) {
  return imm >= 0 && imm % size == 0 && imm / size < 4096;
}

bool FitsImm9(int64_t imm) { return imm >= -256 && imm <= 255; }

bool FitsPairImm7(int64_t imm, unsigned size) {
  return imm % size == 0 && imm / int64_t{size} >= -64 &&
         imm / int64_t{size} <= 63;
}

bool FitsLoadStoreImm(int64_t imm, unsigned size) {
  return FitsScaledImm12(imm, size) || FitsImm9(imm);
}

bool FitsAddSubImm(int64_t imm) {
  if (imm < 0) return false;
  const uint64_t u = static_cast<uint64_t>(imm);
  return u < (1u << 12) || ((u & 0xfff) == 0 && u < (uint64_t{1} << 24));
}

Result<BitmaskEncoding> EncodeBitmaskImm(uint64_t value, Width width) {
  const unsigned bits = width == Width::kX ? 64 : 32;
  if (width == Width::kW) {
    if (value > 0xffffffffu) return Error{"bitmask: value wider than 32"};
  }
  const uint64_t all = bits == 64 ? ~uint64_t{0} : 0xffffffffu;
  if (value == 0 || value == all) {
    return Error{"bitmask: 0 / all-ones not encodable"};
  }
  // Find the smallest element size whose replication reproduces value.
  unsigned esize = bits;
  for (unsigned e = 2; e < bits; e *= 2) {
    const uint64_t mask = e == 64 ? ~uint64_t{0} : ((uint64_t{1} << e) - 1);
    const uint64_t elem = value & mask;
    bool replicates = true;
    for (unsigned pos = e; pos < bits; pos += e) {
      if (((value >> pos) & mask) != elem) {
        replicates = false;
        break;
      }
    }
    if (replicates) {
      esize = e;
      break;
    }
  }
  const uint64_t emask =
      esize == 64 ? ~uint64_t{0} : ((uint64_t{1} << esize) - 1);
  const uint64_t elem = value & emask;
  const unsigned ones = static_cast<unsigned>(std::popcount(elem));
  if (ones == 0 || ones == esize) return Error{"bitmask: element not a run"};
  // Find the rotation r with ROR(run, r) == elem, matching the decoder's
  // convention (the element is the low run of ones rotated right by immr).
  const uint64_t run = (ones == 64) ? ~uint64_t{0}
                                    : ((uint64_t{1} << ones) - 1);
  unsigned rot = esize;
  for (unsigned r = 0; r < esize; ++r) {
    const uint64_t rotated =
        r == 0 ? run : (((run >> r) | (run << (esize - r))) & emask);
    if (rotated == elem) {
      rot = r;
      break;
    }
  }
  if (rot == esize) return Error{"bitmask: element not a rotated run"};
  BitmaskEncoding enc;
  enc.n = esize == 64 ? 1 : 0;
  enc.immr = static_cast<uint8_t>(rot);
  // imms: high bits encode the element size, low bits ones-1.
  const uint8_t size_field =
      esize == 64 ? 0 : static_cast<uint8_t>((~(2 * esize - 1)) & 0x3f);
  enc.imms = static_cast<uint8_t>(size_field | (ones - 1));
  return enc;
}

Result<uint64_t> DecodeBitmaskImm(uint8_t n, uint8_t immr, uint8_t imms,
                                  Width width) {
  const unsigned bits = width == Width::kX ? 64 : 32;
  // len = index of the highest set bit of N:NOT(imms).
  const unsigned composite =
      (static_cast<unsigned>(n) << 6) | ((~imms) & 0x3f);
  if (composite == 0) return Error{"bitmask: unallocated"};
  unsigned len = 31 - static_cast<unsigned>(std::countl_zero(composite));
  if (len < 1) return Error{"bitmask: unallocated"};
  const unsigned esize = 1u << len;
  if (esize > bits) return Error{"bitmask: element wider than register"};
  const unsigned levels = esize - 1;
  const unsigned s = imms & levels;
  const unsigned r = immr & levels;
  if (s == levels) return Error{"bitmask: all-ones element"};
  // Hardware ignores immr bits above the element size; we reject such
  // non-canonical encodings so that decode(encode(x)) round-trips exactly
  // (conservative rejection is always safe for a verifier).
  if ((immr & ~levels & 0x3f) != 0) {
    return Error{"bitmask: non-canonical immr"};
  }
  const unsigned ones = s + 1;
  uint64_t elem =
      ones == 64 ? ~uint64_t{0} : ((uint64_t{1} << ones) - 1);
  const uint64_t emask =
      esize == 64 ? ~uint64_t{0} : ((uint64_t{1} << esize) - 1);
  if (r != 0) {
    elem = ((elem >> r) | (elem << (esize - r))) & emask;
  }
  uint64_t value = 0;
  for (unsigned pos = 0; pos < bits; pos += esize) {
    value |= elem << pos;
  }
  return value;
}

namespace {
R EncodeLogicalImm(const Inst& i, uint32_t opc) {
  auto rd = (opc == 0b11) ? GprOrZr(i.rd, "rd") : GprOrSp(i.rd, "rd");
  auto rn = GprOrZr(i.rn, "rn");
  if (!rd) return rd;
  if (!rn) return rn;
  auto enc = EncodeBitmaskImm(static_cast<uint64_t>(i.imm), i.width);
  if (!enc) return Err(enc.error());
  return (Sf(i.width) << 31) | (opc << 29) | (0b100100u << 23) |
         (uint32_t(enc->n) << 22) | (uint32_t(enc->immr) << 16) |
         (uint32_t(enc->imms) << 10) | (*rn << 5) | *rd;
}
}  // namespace

Result<uint32_t> Encode(const Inst& i) {
  switch (i.mn) {
    case Mn::kAddImm: return EncodeAddSubImm(i, false, false);
    case Mn::kAddsImm: return EncodeAddSubImm(i, false, true);
    case Mn::kSubImm: return EncodeAddSubImm(i, true, false);
    case Mn::kSubsImm: return EncodeAddSubImm(i, true, true);
    case Mn::kAddReg:
      // `add sp, x21, x22` and other SP-involving moves must use the
      // extended-register form in the machine encoding; `add (shifted
      // register)` cannot name SP. Encode the SP case as extended with
      // uxtx #0, which has identical semantics.
      if ((i.rd.IsSp() || i.rn.IsSp()) && i.shift_amount == 0) {
        Inst ext = i;
        ext.mn = Mn::kAddExt;
        ext.ext = Extend::kUxtx;
        return EncodeAddSubExt(ext, false);
      }
      return EncodeAddSubShifted(i, false, false);
    case Mn::kAddsReg: return EncodeAddSubShifted(i, false, true);
    case Mn::kSubReg:
      if ((i.rd.IsSp() || i.rn.IsSp()) && i.shift_amount == 0) {
        Inst ext = i;
        ext.mn = Mn::kSubExt;
        ext.ext = Extend::kUxtx;
        return EncodeAddSubExt(ext, true);
      }
      return EncodeAddSubShifted(i, true, false);
    case Mn::kSubsReg: return EncodeAddSubShifted(i, true, true);
    case Mn::kAndImm: return EncodeLogicalImm(i, 0b00);
    case Mn::kOrrImm: return EncodeLogicalImm(i, 0b01);
    case Mn::kEorImm: return EncodeLogicalImm(i, 0b10);
    case Mn::kAndsImm: return EncodeLogicalImm(i, 0b11);
    case Mn::kAndReg: return EncodeLogicalShifted(i, 0b00, 0);
    case Mn::kBicReg: return EncodeLogicalShifted(i, 0b00, 1);
    case Mn::kOrrReg: return EncodeLogicalShifted(i, 0b01, 0);
    case Mn::kEorReg: return EncodeLogicalShifted(i, 0b10, 0);
    case Mn::kAndsReg: return EncodeLogicalShifted(i, 0b11, 0);
    case Mn::kAddExt: return EncodeAddSubExt(i, false);
    case Mn::kSubExt: return EncodeAddSubExt(i, true);
    case Mn::kMovn: return EncodeMovWide(i, 0b00);
    case Mn::kMovz: return EncodeMovWide(i, 0b10);
    case Mn::kMovk: return EncodeMovWide(i, 0b11);
    case Mn::kSbfm: return EncodeBitfield(i, 0b00);
    case Mn::kUbfm: return EncodeBitfield(i, 0b10);
    case Mn::kMadd: return EncodeMulAdd(i, 0);
    case Mn::kMsub: return EncodeMulAdd(i, 1);
    case Mn::kUdiv: return EncodeDiv(i, 0);
    case Mn::kSdiv: return EncodeDiv(i, 1);
    case Mn::kSmulh: return EncodeMulHigh(i, 0);
    case Mn::kUmulh: return EncodeMulHigh(i, 1);
    case Mn::kCcmp: return EncodeCondCompare(i, false, false);
    case Mn::kCcmpImm: return EncodeCondCompare(i, false, true);
    case Mn::kCcmn: return EncodeCondCompare(i, true, false);
    case Mn::kCcmnImm: return EncodeCondCompare(i, true, true);
    case Mn::kExtr: return EncodeExtr(i);
    case Mn::kCsel: return EncodeCondSel(i, 0, 0);
    case Mn::kCsinc: return EncodeCondSel(i, 0, 1);
    case Mn::kCsinv: return EncodeCondSel(i, 1, 0);
    case Mn::kCsneg: return EncodeCondSel(i, 1, 1);
    case Mn::kRbit: return EncodeDataProc1(i, 0b000000);
    case Mn::kRev:
      return EncodeDataProc1(i, i.width == Width::kX ? 0b000011 : 0b000010);
    case Mn::kClz: return EncodeDataProc1(i, 0b000100);
    case Mn::kAdr: return EncodeAdr(i, false);
    case Mn::kAdrp: return EncodeAdr(i, true);
    case Mn::kLdr: return EncodeIntLoadStore(i, true);
    case Mn::kStr: return EncodeIntLoadStore(i, false);
    case Mn::kLdp: return EncodePair(i, true);
    case Mn::kStp: return EncodePair(i, false);
    case Mn::kLdxr: return EncodeExclusive(i, 0, 1, 0, 0b11111);
    case Mn::kStxr: {
      auto rs = GprOrZr(i.rs, "rs");
      if (!rs) return rs;
      return EncodeExclusive(i, 0, 0, 0, *rs);
    }
    case Mn::kLdar: return EncodeExclusive(i, 1, 1, 1, 0b11111);
    case Mn::kStlr: return EncodeExclusive(i, 1, 0, 1, 0b11111);
    case Mn::kLdrF: return EncodeFpLoadStore(i, true);
    case Mn::kStrF: return EncodeFpLoadStore(i, false);
    case Mn::kB: return EncodeBranchImm(i, false);
    case Mn::kBl: return EncodeBranchImm(i, true);
    case Mn::kBCond: return EncodeCondBranch(i);
    case Mn::kCbz: return EncodeCompareBranch(i, 0);
    case Mn::kCbnz: return EncodeCompareBranch(i, 1);
    case Mn::kTbz: return EncodeTestBranch(i, 0);
    case Mn::kTbnz: return EncodeTestBranch(i, 1);
    case Mn::kBr: return EncodeBranchReg(i, 0b0000);
    case Mn::kBlr: return EncodeBranchReg(i, 0b0001);
    case Mn::kRet: return EncodeBranchReg(i, 0b0010);
    case Mn::kFmul: return EncodeFp2Src(i, 0b0000);
    case Mn::kFdiv: return EncodeFp2Src(i, 0b0001);
    case Mn::kFadd: return EncodeFp2Src(i, 0b0010);
    case Mn::kFsub: return EncodeFp2Src(i, 0b0011);
    case Mn::kFsqrt: return EncodeFp1Src(i, 0b000011);
    case Mn::kFmadd: return EncodeFmadd(i);
    case Mn::kFcmp: return EncodeFcmp(i);
    case Mn::kScvtf: {
      auto rn = GprOrZr(i.rn, "rn");
      if (!rn) return rn;
      return EncodeIntFp(i, 0b00, 0b010, *rn, i.vd.Encoding());
    }
    case Mn::kFcvtzs: {
      auto rd = GprOrZr(i.rd, "rd");
      if (!rd) return rd;
      return EncodeIntFp(i, 0b11, 0b000, i.vn.Encoding(), *rd);
    }
    case Mn::kFmov: {
      // Four forms: fp<-fp, gpr<-fp, fp<-gpr.
      if (!i.vd.IsNone() && !i.vn.IsNone()) {
        return EncodeFp1Src(i, 0b000000);
      }
      if (!i.rd.IsNone()) {  // gpr <- fp
        auto rd = GprOrZr(i.rd, "rd");
        if (!rd) return rd;
        return EncodeIntFp(i, 0b00, 0b110, i.vn.Encoding(), *rd);
      }
      if (!i.rn.IsNone()) {  // fp <- gpr
        auto rn = GprOrZr(i.rn, "rn");
        if (!rn) return rn;
        return EncodeIntFp(i, 0b00, 0b111, *rn, i.vd.Encoding());
      }
      return Err("fmov without operands");
    }
    case Mn::kVAdd:
      return EncodeVector3Same(i, 0, i.fsize == FpSize::kV4S ? 0b10 : 0b11,
                               0b10000);
    case Mn::kVFadd:
      return EncodeVector3Same(i, 0, i.fsize == FpSize::kV4S ? 0b00 : 0b01,
                               0b11010);
    case Mn::kVFmul:
      return EncodeVector3Same(i, 1, i.fsize == FpSize::kV4S ? 0b00 : 0b01,
                               0b11011);
    case Mn::kNop: return 0xD503201Fu;
    case Mn::kSvc: {
      if (i.imm < 0 || i.imm > 0xffff) return Err("svc immediate");
      return 0xD4000001u | (static_cast<uint32_t>(i.imm) << 5);
    }
    case Mn::kBrk: {
      if (i.imm < 0 || i.imm > 0xffff) return Err("brk immediate");
      return 0xD4200000u | (static_cast<uint32_t>(i.imm) << 5);
    }
    case Mn::kMrs: {
      auto rt = GprOrZr(i.rt, "rt");
      if (!rt) return rt;
      return 0xD5300000u | (static_cast<uint32_t>(i.imm & 0x7fff) << 5) | *rt;
    }
    case Mn::kMsr: {
      auto rt = GprOrZr(i.rt, "rt");
      if (!rt) return rt;
      return 0xD5100000u | (static_cast<uint32_t>(i.imm & 0x7fff) << 5) | *rt;
    }
  }
  return Err("unsupported mnemonic");
}

Status EncodeAll(const std::vector<Inst>& insts, std::vector<uint8_t>* out) {
  out->reserve(out->size() + insts.size() * 4);
  for (size_t k = 0; k < insts.size(); ++k) {
    auto w = Encode(insts[k]);
    if (!w) {
      return Status::Fail("instruction " + std::to_string(k) + " (" +
                          MnName(insts[k]) + "): " + w.error());
    }
    out->push_back(*w & 0xff);
    out->push_back((*w >> 8) & 0xff);
    out->push_back((*w >> 16) & 0xff);
    out->push_back((*w >> 24) & 0xff);
  }
  return Status::Ok();
}

}  // namespace lfi::arch
