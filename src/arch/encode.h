// Binary encoder: Inst -> 32-bit ARM64 machine word.
//
// Encodings follow the Arm Architecture Reference Manual (ARMv8.0-A). Every
// instruction in the supported subset encodes to exactly one 4-byte word;
// there is no compressed encoding (Section 2 of the paper), which is what
// makes the single-linear-pass verifier possible.
#ifndef LFI_ARCH_ENCODE_H_
#define LFI_ARCH_ENCODE_H_

#include <cstdint>
#include <vector>

#include "arch/inst.h"
#include "support/result.h"

namespace lfi::arch {

// Encodes one instruction. Fails (with a message) if an operand is out of
// encodable range, e.g. a load immediate that does not fit the 12-bit
// scaled or 9-bit unscaled forms, or a branch offset out of range.
Result<uint32_t> Encode(const Inst& inst);

// Encodes a sequence, appending little-endian words to `out`.
Status EncodeAll(const std::vector<Inst>& insts, std::vector<uint8_t>* out);

// Immediate-range helpers shared with the rewriter (which must know when an
// offset still fits an addressing mode after transformation).

// True if `imm` fits the scaled-unsigned-12-bit form for an access of
// `size` bytes.
bool FitsScaledImm12(int64_t imm, unsigned size);
// True if `imm` fits the signed 9-bit unscaled/pre/post-index form.
bool FitsImm9(int64_t imm);
// True if `imm` fits the signed 7-bit scaled pair-access form.
bool FitsPairImm7(int64_t imm, unsigned size);
// True if `imm` fits a load/store immediate addressing mode of any form.
bool FitsLoadStoreImm(int64_t imm, unsigned size);
// True if `imm` fits the 12-bit add/sub immediate (optionally shifted by 12).
bool FitsAddSubImm(int64_t imm);

// ARM64 bitmask-immediate support (logical immediates). A bitmask
// immediate is a rotated run of ones replicated across the register; the
// machine encoding is the (N, immr, imms) triple.
struct BitmaskEncoding {
  uint8_t n = 0, immr = 0, imms = 0;
};
// Encodes `value` as a bitmask immediate for the given width; fails if the
// value is not expressible (0 and all-ones are never expressible).
Result<BitmaskEncoding> EncodeBitmaskImm(uint64_t value, Width width);
// Decodes an (N, immr, imms) triple; fails on unallocated combinations.
Result<uint64_t> DecodeBitmaskImm(uint8_t n, uint8_t immr, uint8_t imms,
                                  Width width);

}  // namespace lfi::arch

#endif  // LFI_ARCH_ENCODE_H_
