#include "arch/fields.h"

#include <cassert>

namespace lfi::arch {

namespace {

std::vector<uint32_t> FullValues(unsigned width) {
  std::vector<uint32_t> v(size_t{1} << width);
  for (uint32_t i = 0; i < v.size(); ++i) v[i] = i;
  return v;
}

EncField F(const char* name, uint8_t lo, uint8_t width) {
  return {name, lo, width, FieldSweep::kFull, FullValues(width), ""};
}

EncField B(const char* name, uint8_t lo, uint8_t width,
           std::vector<uint32_t> values, const char* why) {
  return {name, lo, width, FieldSweep::kBoundary, std::move(values), why};
}

// Source-only register operands: the verifier never inspects their
// identity (no predicate reads rn/rm/ra of a pure dataflow instruction),
// so the sweep keeps zr, every reserved register, and plain
// representatives from each encoding region.
const char* kSrcWhy =
    "source-only register: identity never reaches a verifier predicate; "
    "all reserved registers + zr + plain representatives swept";
std::vector<uint32_t> SrcRegs() {
  return {0, 1, 9, 17, 18, 21, 22, 23, 24, 25, 29, 30, 31};
}

// Register-offset index operands: CheckAccess validates mode/base/shift
// only; the index register's identity is intentionally unconstrained
// (any wN is safe under uxtw #0 off x21).
const char* kIdxWhy =
    "index register: only mode/base/shift are checked, never the index "
    "identity";
std::vector<uint32_t> IdxRegs() { return {0, 18, 21, 22, 30, 31}; }

// Memory base operands where the check is set membership
// (reserved-or-sp, or ==x21): every reserved register, the sp/zr
// encoding 31, and plain representatives cover all membership outcomes.
const char* kBaseWhy =
    "base register: the check is membership in {x18,x21,x23,x24,sp}; all "
    "reserved registers, encoding 31 and plain representatives swept";
std::vector<uint32_t> BaseRegs() {
  return {0, 1, 9, 17, 18, 21, 22, 23, 24, 29, 30, 31};
}

std::vector<EncClassInfo> BuildClasses() {
  std::vector<EncClassInfo> c;

  // ---- Fixed words and system (decode order) ----
  c.push_back({"nop", 0xFFFFFFFFu, 0xD503201Fu, {}});
  c.push_back({"svc", 0xFFE0001Fu, 0xD4000001u,
               {B("imm16", 5, 16, {0, 1, 0xFFFF}, "system call number: "
                  "rejected as a system instruction regardless of value")}});
  c.push_back({"brk", 0xFFE0001Fu, 0xD4200000u,
               {B("imm16", 5, 16, {0, 1, 0xFFFF},
                  "debug trap comment: no verifier predicate reads it")}});
  c.push_back({"mrs", 0xFFF00000u, 0xD5300000u,
               {B("sysreg", 5, 15, {0, 1, 0x5A10, 0x7FFF},
                  "system register id: rejected as a system instruction "
                  "regardless of value"),
                F("rt", 0, 5)}});
  c.push_back({"msr", 0xFFF00000u, 0xD5100000u,
               {B("sysreg", 5, 15, {0, 1, 0x5A10, 0x7FFF},
                  "system register id: rejected as a system instruction "
                  "regardless of value"),
                F("rt", 0, 5)}});

  // ---- Indirect branches (br/blr/ret) ----
  c.push_back({"br-reg", 0xFF800000u, 0xD6000000u,
               {F("op2", 21, 2),
                B("op3", 16, 5, {0x1F, 0, 1},
                  "must be 11111 to decode; representatives of the "
                  "unallocated space prove the boundary"),
                B("low", 10, 6, {0, 1, 0x3F},
                  "must be 0 to decode; boundary representatives"),
                F("rn", 5, 5),
                B("rt", 0, 5, {0, 1, 0x1F},
                  "must be 0 to decode; boundary representatives")}});

  // ---- Direct branches ----
  c.push_back({"b", 0x7C000000u, 0x14000000u,
               {F("op", 31, 1),
                B("imm26", 0, 26, {0, 1, 0x1FFFFFF, 0x2000000, 0x3FFFFFF},
                  "branch displacement: never read by a verifier "
                  "predicate; sign boundary included")}});
  c.push_back({"b-cond", 0xFF000010u, 0x54000000u,
               {B("imm19", 5, 19, {0, 1, 0x3FFFF, 0x40000, 0x7FFFF},
                  "branch displacement: never read by a verifier "
                  "predicate; sign boundary included"),
                F("cond", 0, 4)}});
  c.push_back({"cbz", 0x7E000000u, 0x34000000u,
               {F("sf", 31, 1), F("op", 24, 1),
                B("imm19", 5, 19, {0, 1, 0x7FFFF},
                  "branch displacement: never read by a verifier predicate"),
                F("rt", 0, 5)}});
  c.push_back({"tbz", 0x7E000000u, 0x36000000u,
               {F("b5", 31, 1), F("op", 24, 1), F("b40", 19, 5),
                B("imm14", 5, 14, {0, 1, 0x3FFF},
                  "branch displacement: never read by a verifier predicate"),
                F("rt", 0, 5)}});

  // ---- PC-relative ----
  c.push_back({"adr", 0x1F000000u, 0x10000000u,
               {F("op", 31, 1), F("immlo", 29, 2),
                B("immhi", 5, 19, {0, 1, 0x7FFFF},
                  "pc-relative displacement: only the destination register "
                  "is checked; sign boundary included"),
                F("rd", 0, 5)}});

  // ---- Data processing, immediate ----
  c.push_back({"logical-imm", 0x1F800000u, 0x12000000u,
               {F("sf", 31, 1), F("opc", 29, 2), F("n", 22, 1),
                B("immr", 16, 6, {0, 1, 31, 32, 63},
                  "bitmask rotation: only validity matters, not the decoded "
                  "mask value; canonical/non-canonical boundary swept"),
                B("imms", 10, 6, {0, 1, 3, 31, 32, 60, 62, 63},
                  "bitmask run length: only validity matters; all-ones and "
                  "element-size boundaries swept"),
                B("rn", 5, 5, SrcRegs(), kSrcWhy), F("rd", 0, 5)}});
  // Mask frees bit 23 (unlike the 0x1F800000 dispatch test) so the sh
  // field can sweep the unallocated sh=1x space: those words fall through
  // every decode arm and the model must prove they stay undecodable.
  c.push_back({"addsub-imm", 0x1F000000u, 0x11000000u,
               {F("sf", 31, 1), F("op", 30, 1), F("s", 29, 1), F("sh", 22, 2),
                B("imm12", 10, 12, {0, 1, 1023, 1024, 4095},
                  "adjustment size: the only predicate is the sp "
                  "small-adjust threshold imm < 1024, swept on both sides"),
                F("rn", 5, 5), F("rd", 0, 5)}});
  c.push_back({"movwide", 0x1F800000u, 0x12800000u,
               {F("sf", 31, 1), F("opc", 29, 2), F("hw", 21, 2),
                B("imm16", 5, 16, {0, 1, 0xFFFF},
                  "move constant: never read by a verifier predicate"),
                F("rd", 0, 5)}});
  c.push_back({"bitfield", 0x1F800000u, 0x13000000u,
               {F("sf", 31, 1), F("opc", 29, 2), F("n", 22, 1),
                B("immr", 16, 6, {0, 1, 31, 32, 63},
                  "bit positions: only the width-range validity check reads "
                  "them; both sides of the 32/64 boundary swept"),
                B("imms", 10, 6, {0, 1, 31, 32, 63},
                  "bit positions: only the width-range validity check reads "
                  "them; both sides of the 32/64 boundary swept"),
                B("rn", 5, 5, SrcRegs(), kSrcWhy), F("rd", 0, 5)}});

  // ---- Data processing, register ----
  c.push_back({"addsub-shift", 0x1F200000u, 0x0B000000u,
               {F("sf", 31, 1), F("op", 30, 1), F("s", 29, 1),
                F("shift", 22, 2),
                B("rm", 16, 5, SrcRegs(), kSrcWhy),
                B("imm6", 10, 6, {0, 1, 31, 32, 63},
                  "shift amount: only the W-width >=32 validity check reads "
                  "it; both sides swept"),
                B("rn", 5, 5, SrcRegs(), kSrcWhy), F("rd", 0, 5)}});
  c.push_back({"addsub-ext", 0x1FE00000u, 0x0B200000u,
               {F("sf", 31, 1), F("op", 30, 1), F("s", 29, 1),
                F("rm", 16, 5), F("option", 13, 3),
                B("imm3", 10, 3, {0, 1, 4, 5, 7},
                  "extend shift: predicates read ==0 (guard) and the >4 "
                  "validity bound; both boundaries swept"),
                F("rn", 5, 5), F("rd", 0, 5)}});
  c.push_back({"logical-shift", 0x1F000000u, 0x0A000000u,
               {F("sf", 31, 1), F("opc", 29, 2), F("shift", 22, 2),
                F("n", 21, 1),
                B("rm", 16, 5, SrcRegs(), kSrcWhy),
                B("imm6", 10, 6, {0, 1, 31, 32, 63},
                  "shift amount: only the W-width >=32 validity check reads "
                  "it; both sides swept"),
                B("rn", 5, 5, SrcRegs(), kSrcWhy), F("rd", 0, 5)}});
  c.push_back({"muladd", 0x7FE00000u, 0x1B000000u,
               {F("sf", 31, 1),
                B("rm", 16, 5, SrcRegs(), kSrcWhy), F("o0", 15, 1),
                B("ra", 10, 5, SrcRegs(), kSrcWhy),
                B("rn", 5, 5, SrcRegs(), kSrcWhy), F("rd", 0, 5)}});
  c.push_back({"mulhigh", 0x7F600000u, 0x1B400000u,
               {F("sf", 31, 1), F("u", 23, 1),
                B("rm", 16, 5, SrcRegs(), kSrcWhy), F("o0", 15, 1),
                B("raf", 10, 5, {0x1F, 0, 1},
                  "must be 11111 to decode; boundary representatives"),
                B("rn", 5, 5, SrcRegs(), kSrcWhy), F("rd", 0, 5)}});
  c.push_back({"condcmp", 0x3FE00410u, 0x3A400000u,
               {F("sf", 31, 1), F("op", 30, 1),
                B("rm-imm5", 16, 5, {0, 1, 18, 21, 22, 30, 31},
                  "compare operand (register or imm5): read-only, never "
                  "reaches a verifier predicate; reserved ids swept"),
                F("cond", 12, 4), F("immbit", 11, 1), F("rn", 5, 5),
                B("nzcv", 0, 4, {0, 5, 15},
                  "flag constant: never read by a verifier predicate")}});
  c.push_back({"extr", 0x7FA00000u, 0x13800000u,
               {F("sf", 31, 1), F("n", 22, 1),
                B("rm", 16, 5, SrcRegs(), kSrcWhy),
                B("imms", 10, 6, {0, 1, 31, 32, 63},
                  "rotate amount: only the W-width >=32 validity check "
                  "reads it; both sides swept"),
                B("rn", 5, 5, SrcRegs(), kSrcWhy), F("rd", 0, 5)}});
  c.push_back({"div", 0x7FE0F800u, 0x1AC00800u,
               {F("sf", 31, 1), B("rm", 16, 5, SrcRegs(), kSrcWhy),
                F("op", 10, 1), B("rn", 5, 5, SrcRegs(), kSrcWhy),
                F("rd", 0, 5)}});
  c.push_back({"dataproc1", 0x7FFF0000u, 0x5AC00000u,
               {F("sf", 31, 1),
                B("opcode", 10, 6, {0, 2, 3, 4, 5, 63},
                  "every allocated opcode (rbit/rev32/rev64/clz) plus "
                  "unallocated neighbors on both sides"),
                B("rn", 5, 5, SrcRegs(), kSrcWhy), F("rd", 0, 5)}});
  c.push_back({"condsel", 0x3FE00800u, 0x1A800000u,
               {F("sf", 31, 1), F("op", 30, 1),
                B("rm", 16, 5, SrcRegs(), kSrcWhy), F("cond", 12, 4),
                F("o2", 10, 1), B("rn", 5, 5, SrcRegs(), kSrcWhy),
                F("rd", 0, 5)}});

  // ---- Loads and stores ----
  c.push_back({"exclusive", 0x3F000000u, 0x08000000u,
               {F("size", 30, 2), F("o2", 23, 1), F("l", 22, 1),
                F("o1", 21, 1), F("rs", 16, 5), F("o0", 15, 1),
                B("rt2f", 10, 5, {0x1F, 0, 1},
                  "must be 11111 to decode; boundary representatives"),
                F("rn", 5, 5), F("rt", 0, 5)}});
  c.push_back({"pair", 0x3C000000u, 0x28000000u,
               {F("opc", 30, 2), F("mode", 23, 3), F("l", 22, 1),
                B("imm7", 15, 7, {0, 1, 63, 64, 127},
                  "scaled pair offset: max +-512 bytes, an order of "
                  "magnitude inside the guard range for every legal "
                  "guard_bytes; sign boundary swept"),
                F("rt2", 10, 5), F("rn", 5, 5), F("rt", 0, 5)}});
  c.push_back({"ls-uimm", 0x3B000000u, 0x39000000u,
               {F("size", 30, 2), F("v", 26, 1), F("opc", 22, 2),
                B("imm12", 10, 12, {0, 1, 2047, 3070, 3071, 3072, 4095},
                  "scaled offset: the only predicate is the guard-range "
                  "bound; both sides of the 48KiB boundary for the "
                  "16-byte q access (3071*16+16 == 49152) swept"),
                F("rn", 5, 5), F("rt", 0, 5)}});
  c.push_back({"ls-regoff", 0x3B200000u, 0x38200000u,
               {F("size", 30, 2), F("v", 26, 1), F("opc", 22, 2),
                B("rm", 16, 5, IdxRegs(), kIdxWhy),
                F("option", 13, 3), F("s", 12, 1), F("low", 10, 2),
                B("rn", 5, 5, BaseRegs(), kBaseWhy), F("rt", 0, 5)}});
  c.push_back({"ls-imm9", 0x3B200000u, 0x38000000u,
               {F("size", 30, 2), F("v", 26, 1), F("opc", 22, 2),
                B("imm9", 12, 9, {0, 1, 255, 256, 511},
                  "unscaled offset: +-256 bytes, inside every legal guard "
                  "range at the default; sign boundary swept (tiny "
                  "guard_bytes interactions are covered by ls-uimm and "
                  "the options-interaction tests)"),
                F("mode", 10, 2), F("rn", 5, 5), F("rt", 0, 5)}});

  // ---- Floating point and SIMD ----
  c.push_back({"fmadd", 0xFF000000u, 0x1F000000u,
               {F("type", 22, 2), F("o1", 21, 1),
                B("vm", 16, 5, {0, 31}, "vector register: no GPR effect"),
                F("o0", 15, 1),
                B("va", 10, 5, {0, 31}, "vector register: no GPR effect"),
                B("vn", 5, 5, {0, 31}, "vector register: no GPR effect"),
                B("vd", 0, 5, {0, 31}, "vector register: no GPR effect")}});
  c.push_back({"fpdata", 0x5F200000u, 0x1E200000u,
               {F("sf", 31, 1), F("b29", 29, 1), F("type", 22, 2),
                F("hi", 16, 5), F("mid", 10, 6),
                B("rn", 5, 5, {0, 18, 21, 22, 23, 30, 31},
                  "source operand (GPR or vreg): never written; reserved "
                  "representatives swept"),
                F("rd", 0, 5)}});
  c.push_back({"vector", 0x9F200400u, 0x0E200400u,
               {F("q", 30, 1), F("u", 29, 1), F("size", 22, 2),
                B("vm", 16, 5, {0, 31}, "vector register: no GPR effect"),
                F("opcode", 11, 5),
                B("vn", 5, 5, {0, 31}, "vector register: no GPR effect"),
                B("vd", 0, 5, {0, 31}, "vector register: no GPR effect")}});

  // Fields must only occupy bits the class mask leaves free, and value
  // lists must fit their width; the sweep's per-word self-check
  // (ClassifyWord(word) == class) additionally proves no earlier decode
  // arm captures an enumerated word.
  for (const auto& cls : c) {
    for (const auto& f : cls.fields) {
      const uint32_t fmask = ((f.width >= 32 ? ~uint32_t{0}
                                             : (1u << f.width) - 1))
                             << f.lo;
      assert((fmask & cls.mask) == 0);
      (void)fmask;
      for (uint32_t v : f.values) {
        assert(f.width >= 32 || v < (1u << f.width));
        (void)v;
      }
    }
  }
  return c;
}

}  // namespace

uint64_t EncClassInfo::EncodingCount() const {
  uint64_t n = 1;
  for (const auto& f : fields) n *= f.values.size();
  return n;
}

uint32_t EncClassInfo::WordAt(uint64_t index) const {
  uint32_t w = match;
  // Mixed-radix: the last field varies fastest.
  for (size_t k = fields.size(); k-- > 0;) {
    const auto& f = fields[k];
    const uint64_t radix = f.values.size();
    w |= f.values[index % radix] << f.lo;
    index /= radix;
  }
  return w;
}

const std::vector<EncClassInfo>& AllEncClasses() {
  static const std::vector<EncClassInfo> classes = BuildClasses();
  return classes;
}

const EncClassInfo* ClassifyWord(uint32_t w) {
  for (const auto& c : AllEncClasses()) {
    if ((w & c.mask) == c.match) return &c;
  }
  return nullptr;
}

const EncClassInfo* FindEncClass(std::string_view name) {
  for (const auto& c : AllEncClasses()) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

std::vector<uint32_t> MutationValues(const EncField& f) {
  if (f.sweep == FieldSweep::kBoundary || f.width < 5) return f.values;
  if (f.width == 5) {
    // Register field: zr plus every reserved register plus one plain.
    return {0, 1, 18, 21, 22, 23, 24, 30, 31};
  }
  const uint32_t max = (f.width >= 32 ? ~uint32_t{0} : (1u << f.width) - 1);
  return {0, 1, max};
}

}  // namespace lfi::arch
