// Encoding-class metadata for the ARMv8.0 allowlist (Section 5.2).
//
// Each EncClassInfo names one neighborhood of the 32-bit instruction
// encoding space: a fixed (mask, match) pattern mirroring exactly one
// dispatch arm of arch::Decode, plus the operand fields that vary inside
// it. The verify_model enumerator sweeps the cartesian product of every
// class's field-value sets, so the field tables below ARE the
// exhaustiveness argument: a field marked kFull is swept over all 2^width
// values; a field marked kBoundary is collapsed to a representative set
// and carries a one-line justification (`why`) for why the collapsed
// values cannot change the verifier-relevant behavior (documented at
// length in docs/VERIFIER.md).
//
// Field value sets deliberately include encodings that do NOT decode
// (e.g. the unallocated movwide opc=01, extend shifts > 4): the sweep
// must prove the allowlist boundary is exactly where the model says it
// is, not merely that accepted encodings are safe.
//
// This metadata is also the mutation table for the near-miss regression
// corpus (tests/verifier_mutation_test.cc): flipping each field of a
// known-accepted word to its boundary values produces the corpus of
// almost-legal encodings whose verdicts are golden-snapshotted.
#ifndef LFI_ARCH_FIELDS_H_
#define LFI_ARCH_FIELDS_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace lfi::arch {

enum class FieldSweep : uint8_t {
  kFull,      // all 2^width values enumerated
  kBoundary,  // collapsed to a representative boundary set (see `why`)
};

struct EncField {
  const char* name;
  uint8_t lo = 0;     // bit position of the field's least significant bit
  uint8_t width = 0;  // field width in bits
  FieldSweep sweep = FieldSweep::kFull;
  std::vector<uint32_t> values;  // materialized sweep values, each < 2^width
  const char* why = "";          // collapse justification (kBoundary only)
};

struct EncClassInfo {
  const char* name;    // stable kebab-case id ("addsub-ext", "ls-uimm", ...)
  uint32_t mask = 0;   // fixed-bit mask; fields only occupy ~mask bits
  uint32_t match = 0;  // class membership: (word & mask) == match
  std::vector<EncField> fields;

  // Number of encodings in the sweep (product of field value counts).
  uint64_t EncodingCount() const;
  // The index'th encoding (mixed-radix over the field value lists).
  // index must be < EncodingCount().
  uint32_t WordAt(uint64_t index) const;
};

// All classes, in arch::Decode dispatch order. The order is load-bearing:
// ClassifyWord returns the first match, which must agree with the decode
// arm that would handle the word.
const std::vector<EncClassInfo>& AllEncClasses();

// First class whose (mask, match) pattern the word satisfies, or nullptr
// if the word lies outside every class neighborhood (always undecodable).
const EncClassInfo* ClassifyWord(uint32_t w);

// Class lookup by stable name, or nullptr.
const EncClassInfo* FindEncClass(std::string_view name);

// Small helper: the subset of `f.values` used when mutating a single
// field of an existing accepted word (the near-miss corpus). For kFull
// register fields this trims the full 32 values down to the boundary set
// that matters (reserved registers, zr, and two plain registers).
std::vector<uint32_t> MutationValues(const EncField& f);

}  // namespace lfi::arch

#endif  // LFI_ARCH_FIELDS_H_
