#include "arch/inst.h"

namespace lfi::arch {

bool IsMemAccess(const Inst& i) {
  switch (i.mn) {
    case Mn::kLdr: case Mn::kStr: case Mn::kLdp: case Mn::kStp:
    case Mn::kLdxr: case Mn::kStxr: case Mn::kLdar: case Mn::kStlr:
    case Mn::kLdrF: case Mn::kStrF:
      return true;
    default:
      return false;
  }
}

bool IsLoad(const Inst& i) {
  switch (i.mn) {
    case Mn::kLdr: case Mn::kLdp: case Mn::kLdxr: case Mn::kLdar:
    case Mn::kLdrF:
      return true;
    default:
      return false;
  }
}

bool IsStore(const Inst& i) {
  switch (i.mn) {
    case Mn::kStr: case Mn::kStp: case Mn::kStxr: case Mn::kStlr:
    case Mn::kStrF:
      return true;
    default:
      return false;
  }
}

bool IsIndirectBranch(const Inst& i) {
  return i.mn == Mn::kBr || i.mn == Mn::kBlr || i.mn == Mn::kRet;
}

bool IsBranch(const Inst& i) {
  return IsIndirectBranch(i) || IsDirectBranch(i);
}

bool IsDirectBranch(const Inst& i) {
  switch (i.mn) {
    case Mn::kB: case Mn::kBl: case Mn::kBCond:
    case Mn::kCbz: case Mn::kCbnz: case Mn::kTbz: case Mn::kTbnz:
      return true;
    default:
      return false;
  }
}

bool IsCondBranch(const Inst& i) {
  switch (i.mn) {
    case Mn::kBCond: case Mn::kCbz: case Mn::kCbnz:
    case Mn::kTbz: case Mn::kTbnz:
      return true;
    default:
      return false;
  }
}

std::optional<Reg> DestGpr(const Inst& i) {
  switch (i.mn) {
    case Mn::kAddImm: case Mn::kAddsImm: case Mn::kSubImm: case Mn::kSubsImm:
    case Mn::kAddReg: case Mn::kAddsReg: case Mn::kSubReg: case Mn::kSubsReg:
    case Mn::kAndReg: case Mn::kAndsReg: case Mn::kOrrReg: case Mn::kEorReg:
    case Mn::kBicReg: case Mn::kAddExt: case Mn::kSubExt:
    case Mn::kAndImm: case Mn::kAndsImm: case Mn::kOrrImm: case Mn::kEorImm:
    case Mn::kMovz: case Mn::kMovn: case Mn::kMovk:
    case Mn::kUbfm: case Mn::kSbfm:
    case Mn::kMadd: case Mn::kMsub: case Mn::kSdiv: case Mn::kUdiv:
    case Mn::kUmulh: case Mn::kSmulh: case Mn::kExtr:
    case Mn::kCsel: case Mn::kCsinc: case Mn::kCsinv: case Mn::kCsneg:
    case Mn::kClz: case Mn::kRbit: case Mn::kRev:
    case Mn::kAdr: case Mn::kAdrp:
      return i.rd.IsZr() ? std::nullopt : std::optional<Reg>(i.rd);
    case Mn::kFcvtzs:
      return i.rd.IsZr() ? std::nullopt : std::optional<Reg>(i.rd);
    case Mn::kFmov:
      // fmov xD, dN form has a GPR destination.
      if (!i.rd.IsNone() && !i.rd.IsZr()) return i.rd;
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

bool WritesGpr(const Inst& i, Reg r) {
  if (r.IsZr() || r.IsNone()) return false;
  if (auto d = DestGpr(i); d && *d == r) return true;
  // Loads write their transfer register(s).
  if (IsLoad(i) && i.mn != Mn::kLdrF) {
    if (i.rt == r) return true;
    if (i.mn == Mn::kLdp && i.rt2 == r) return true;
  }
  // stxr writes the status register.
  if (i.mn == Mn::kStxr && i.rs == r) return true;
  // Addressing-mode writeback updates the base register.
  if (IsMemAccess(i) && i.mem.HasWriteback() && i.mem.base == r) return true;
  // bl/blr write the link register.
  if ((i.mn == Mn::kBl || i.mn == Mn::kBlr) && r == kRegLink) return true;
  return false;
}

bool WriteZeroExtends(const Inst& i, Reg r) {
  // Writeback and link-register writes are always full 64-bit values.
  if (IsMemAccess(i) && i.mem.HasWriteback() && i.mem.base == r) return false;
  if ((i.mn == Mn::kBl || i.mn == Mn::kBlr) && r == kRegLink) return false;
  if (IsLoad(i) && (i.rt == r || (i.mn == Mn::kLdp && i.rt2 == r))) {
    // A W-width load target zero-extends; so does any sub-word unsigned
    // load. A sign-extending load to X width does not.
    if (i.width == Width::kW) return true;
    return i.mn == Mn::kLdr && i.msize < 8 && !i.msigned;
  }
  if (i.mn == Mn::kStxr && i.rs == r) return true;  // status is a W value
  if (auto d = DestGpr(i); d && *d == r) {
    if (i.mn == Mn::kAdr || i.mn == Mn::kAdrp) return false;
    return i.width == Width::kW;
  }
  return false;
}

bool IsGuardFor(const Inst& i, Reg dest) {
  return i.mn == Mn::kAddExt && i.width == Width::kX && i.rd == dest &&
         i.rn == kRegBase && i.ext == Extend::kUxtw && i.shift_amount == 0 &&
         i.rm.IsGpr();
}

bool IsSpGuard(const Inst& i) {
  // `add sp, x21, x22`. At the assembly level this is a plain register
  // add; in the machine encoding, adds involving SP use the
  // extended-register form with uxtx #0, so accept both shapes.
  if (!(i.width == Width::kX && i.rd.IsSp() && i.rn == kRegBase &&
        i.rm == kRegScratch && i.shift_amount == 0)) {
    return false;
  }
  if (i.mn == Mn::kAddReg) return i.shift == Shift::kLsl;
  return i.mn == Mn::kAddExt && i.ext == Extend::kUxtx;
}

namespace {

const char* CondName(Cond c) {
  switch (c) {
    case Cond::kEq: return "eq"; case Cond::kNe: return "ne";
    case Cond::kHs: return "hs"; case Cond::kLo: return "lo";
    case Cond::kMi: return "mi"; case Cond::kPl: return "pl";
    case Cond::kVs: return "vs"; case Cond::kVc: return "vc";
    case Cond::kHi: return "hi"; case Cond::kLs: return "ls";
    case Cond::kGe: return "ge"; case Cond::kLt: return "lt";
    case Cond::kGt: return "gt"; case Cond::kLe: return "le";
    case Cond::kAl: return "al";
  }
  return "??";
}

std::string LoadStoreName(const Inst& i, bool load) {
  std::string base = load ? "ldr" : "str";
  if (load && i.msigned) {
    if (i.msize == 1) return "ldrsb";
    if (i.msize == 2) return "ldrsh";
    if (i.msize == 4) return "ldrsw";
  }
  if (i.msize == 1) return base + "b";
  if (i.msize == 2) return base + "h";
  return base;
}

}  // namespace

std::string MnName(const Inst& i) {
  switch (i.mn) {
    case Mn::kAddImm: case Mn::kAddReg: case Mn::kAddExt: return "add";
    case Mn::kAddsImm: case Mn::kAddsReg: return "adds";
    case Mn::kSubImm: case Mn::kSubReg: case Mn::kSubExt: return "sub";
    case Mn::kSubsImm: case Mn::kSubsReg: return "subs";
    case Mn::kAndReg: case Mn::kAndImm: return "and";
    case Mn::kAndsReg: case Mn::kAndsImm: return "ands";
    case Mn::kOrrReg: case Mn::kOrrImm: return "orr";
    case Mn::kEorReg: case Mn::kEorImm: return "eor";
    case Mn::kBicReg: return "bic";
    case Mn::kMovz: return "movz";
    case Mn::kMovn: return "movn";
    case Mn::kMovk: return "movk";
    case Mn::kUbfm: return "ubfm";
    case Mn::kSbfm: return "sbfm";
    case Mn::kMadd: return "madd";
    case Mn::kMsub: return "msub";
    case Mn::kSdiv: return "sdiv";
    case Mn::kUdiv: return "udiv";
    case Mn::kUmulh: return "umulh";
    case Mn::kSmulh: return "smulh";
    case Mn::kExtr: return "extr";
    case Mn::kCcmp: case Mn::kCcmpImm: return "ccmp";
    case Mn::kCcmn: case Mn::kCcmnImm: return "ccmn";
    case Mn::kCsel: return "csel";
    case Mn::kCsinc: return "csinc";
    case Mn::kCsinv: return "csinv";
    case Mn::kCsneg: return "csneg";
    case Mn::kClz: return "clz";
    case Mn::kRbit: return "rbit";
    case Mn::kRev: return "rev";
    case Mn::kAdr: return "adr";
    case Mn::kAdrp: return "adrp";
    case Mn::kLdr: return LoadStoreName(i, true);
    case Mn::kStr: return LoadStoreName(i, false);
    case Mn::kLdp: return "ldp";
    case Mn::kStp: return "stp";
    case Mn::kLdxr: return "ldxr";
    case Mn::kStxr: return "stxr";
    case Mn::kLdar: return "ldar";
    case Mn::kStlr: return "stlr";
    case Mn::kLdrF: return "ldr";
    case Mn::kStrF: return "str";
    case Mn::kB: return "b";
    case Mn::kBl: return "bl";
    case Mn::kBCond: return std::string("b.") + CondName(i.cond);
    case Mn::kCbz: return "cbz";
    case Mn::kCbnz: return "cbnz";
    case Mn::kTbz: return "tbz";
    case Mn::kTbnz: return "tbnz";
    case Mn::kBr: return "br";
    case Mn::kBlr: return "blr";
    case Mn::kRet: return "ret";
    case Mn::kFadd: return "fadd";
    case Mn::kFsub: return "fsub";
    case Mn::kFmul: return "fmul";
    case Mn::kFdiv: return "fdiv";
    case Mn::kFsqrt: return "fsqrt";
    case Mn::kFmadd: return "fmadd";
    case Mn::kFcmp: return "fcmp";
    case Mn::kScvtf: return "scvtf";
    case Mn::kFcvtzs: return "fcvtzs";
    case Mn::kFmov: return "fmov";
    case Mn::kVAdd: return "add";
    case Mn::kVFadd: return "fadd";
    case Mn::kVFmul: return "fmul";
    case Mn::kNop: return "nop";
    case Mn::kSvc: return "svc";
    case Mn::kBrk: return "brk";
    case Mn::kMrs: return "mrs";
    case Mn::kMsr: return "msr";
  }
  return "??";
}

}  // namespace lfi::arch
