// In-memory instruction representation for the ARM64 subset.
//
// A single `Inst` value is produced by the assembly parser and by the binary
// decoder, is manipulated by the LFI rewriter, and is consumed by the binary
// encoder, the assembly printer, the static verifier, and the emulator.
// Keeping one representation across all layers means the rewriter's safety
// transformations and the verifier's checks talk about exactly the same
// objects.
#ifndef LFI_ARCH_INST_H_
#define LFI_ARCH_INST_H_

#include <cstdint>
#include <optional>
#include <string>

#include "arch/reg.h"

namespace lfi::arch {

// Mnemonic of the instruction. Size/sign variants of loads and stores are
// folded into kLdr/kStr plus the `msize`/`msigned` fields; FP loads/stores
// are kLdrF/kStrF plus `fsize`.
enum class Mn : uint8_t {
  // ALU, immediate operand.
  kAddImm, kAddsImm, kSubImm, kSubsImm,
  // ALU, (optionally shifted) register operand.
  kAddReg, kAddsReg, kSubReg, kSubsReg,
  kAndReg, kAndsReg, kOrrReg, kEorReg, kBicReg,
  // Logical with a bitmask immediate (`imm` holds the decoded mask; the
  // N:immr:imms encoding is computed by the encoder).
  kAndImm, kAndsImm, kOrrImm, kEorImm,
  // ALU, extended register operand. `add xD, xN, wM, uxtw` - the LFI guard.
  kAddExt, kSubExt,
  // Move wide.
  kMovz, kMovn, kMovk,
  // Bitfield move (lsl/lsr/asr/uxtb/sxtw/... are aliases of these).
  kUbfm, kSbfm,
  // Multiply / divide.
  kMadd, kMsub, kSdiv, kUdiv, kUmulh, kSmulh,
  // Conditional select family.
  kCsel, kCsinc, kCsinv, kCsneg,
  // Conditional compare (register and immediate forms).
  kCcmp, kCcmpImm, kCcmn, kCcmnImm,
  // Extract (the ror alias).
  kExtr,
  // Bit manipulation.
  kClz, kRbit, kRev,
  // PC-relative address generation.
  kAdr, kAdrp,
  // Integer loads/stores (addressing mode in `mem`).
  kLdr, kStr,
  kLdp, kStp,
  // Exclusive / acquire-release (base-register addressing only).
  kLdxr, kStxr, kLdar, kStlr,
  // FP/SIMD loads/stores.
  kLdrF, kStrF,
  // Branches.
  kB, kBl, kBCond, kCbz, kCbnz, kTbz, kTbnz,
  kBr, kBlr, kRet,
  // Scalar floating point.
  kFadd, kFsub, kFmul, kFdiv, kFsqrt, kFmadd,
  kFcmp, kScvtf, kFcvtzs, kFmov,  // kFmov: fp<->fp or gpr<->fp move
  // Vector (arrangement in `fsize`: kV4S or kV2D).
  kVAdd, kVFadd, kVFmul,
  // System.
  kNop, kSvc, kBrk, kMrs, kMsr,
};

// Shift type for shifted-register ALU forms.
enum class Shift : uint8_t { kLsl, kLsr, kAsr, kRor };

// Extend type for extended-register ALU forms and register-offset
// addressing modes. Encodings match the ISA's 3-bit `option` field.
enum class Extend : uint8_t {
  kUxtb = 0, kUxth = 1, kUxtw = 2, kUxtx = 3,
  kSxtb = 4, kSxth = 5, kSxtw = 6, kSxtx = 7,
};

// Condition codes (encodings match the ISA).
enum class Cond : uint8_t {
  kEq = 0, kNe = 1, kHs = 2, kLo = 3, kMi = 4, kPl = 5, kVs = 6, kVc = 7,
  kHi = 8, kLs = 9, kGe = 10, kLt = 11, kGt = 12, kLe = 13, kAl = 14,
};

// Addressing mode kinds, mirroring Table 1 of the paper.
enum class AddrMode : uint8_t {
  kImm,       // [xN] / [xN, #i]
  kPreIndex,  // [xN, #i]!
  kPostIndex, // [xN], #i
  kRegLsl,    // [xN, xM, lsl #s]
  kRegUxtw,   // [xN, wM, uxtw {#s}]  - the zero-instruction guard form
  kRegSxtw,   // [xN, wM, sxtw {#s}]
};

// The memory operand of a load/store.
struct MemOperand {
  Reg base;                       // xN or sp
  AddrMode mode = AddrMode::kImm;
  int64_t imm = 0;                // byte offset for the kImm/index modes
  Reg index = Reg::None();        // for the register-offset modes
  uint8_t shift = 0;              // left-shift amount for register offsets

  bool HasWriteback() const {
    return mode == AddrMode::kPreIndex || mode == AddrMode::kPostIndex;
  }
  bool IsRegOffset() const {
    return mode == AddrMode::kRegLsl || mode == AddrMode::kRegUxtw ||
           mode == AddrMode::kRegSxtw;
  }
  bool operator==(const MemOperand&) const = default;
};

// One decoded/parsed instruction. Only the fields relevant to `mn` are
// meaningful; the rest stay default-initialized.
struct Inst {
  Mn mn = Mn::kNop;
  Width width = Width::kX;  // sf bit: result/operand width

  // Integer operands.
  Reg rd = Reg::None();  // destination
  Reg rn = Reg::None();  // first source
  Reg rm = Reg::None();  // second source
  Reg ra = Reg::None();  // third source (madd/msub)

  // FP operands.
  VReg vd = VReg::None(), vn = VReg::None(), vm = VReg::None(),
       va = VReg::None();
  FpSize fsize = FpSize::kD;

  // Immediate. For branches this is the PC-relative byte offset; for adr
  // the byte offset; for adrp the (page-aligned) byte offset; for movz/k/n
  // the 16-bit payload with `shift_amount` holding the hw*16 shift.
  int64_t imm = 0;
  Shift shift = Shift::kLsl;
  Extend ext = Extend::kUxtx;
  uint8_t shift_amount = 0;
  Cond cond = Cond::kAl;

  // Bitfield (ubfm/sbfm) controls.
  uint8_t immr = 0, imms = 0;

  // Memory access.
  MemOperand mem;
  uint8_t msize = 8;      // access size in bytes (1, 2, 4, 8, 16)
  bool msigned = false;   // sign-extending load (ldrsb/ldrsh/ldrsw)
  Reg rt = Reg::None();   // transfer register
  Reg rt2 = Reg::None();  // second transfer register (ldp/stp)
  Reg rs = Reg::None();   // status register (stxr)
  VReg vt = VReg::None(); // FP transfer register

  // tbz/tbnz bit number (0..63).
  uint8_t bit = 0;

  // ccmp/ccmn: the NZCV value used when the condition fails.
  uint8_t nzcv = 0;

  bool operator==(const Inst&) const = default;
};

// --- Classification helpers used by the rewriter and verifier. ---

// True if the instruction reads or writes memory.
bool IsMemAccess(const Inst& i);
// True if the instruction is a load (reads memory into a register).
bool IsLoad(const Inst& i);
// True if the instruction is a store.
bool IsStore(const Inst& i);
// True for br/blr/ret.
bool IsIndirectBranch(const Inst& i);
// True for every control-transfer instruction (direct and indirect).
bool IsBranch(const Inst& i);
// True for direct branches carrying a PC-relative offset.
bool IsDirectBranch(const Inst& i);
// True for conditional direct branches (b.cond/cbz/cbnz/tbz/tbnz).
bool IsCondBranch(const Inst& i);

// The general-purpose register written by this instruction with its full
// 64-bit architectural effect, if any. A write to a W view is still a write
// to the underlying X register (top 32 bits zeroed). Does not report
// memory-operand writeback or x30 side effects; see below.
std::optional<Reg> DestGpr(const Inst& i);
// True if the instruction writes `r` through any channel: destination,
// load target, addressing-mode writeback, or the implicit x30 write of
// bl/blr.
bool WritesGpr(const Inst& i, Reg r);
// True if the write to `r` (which must satisfy WritesGpr) produces a value
// whose top 32 bits are zero, e.g. any W-width destination.
bool WriteZeroExtends(const Inst& i, Reg r);

// True if this is exactly the LFI guard `add xD, x21, wM, uxtw` (shift 0)
// with destination `dest`.
bool IsGuardFor(const Inst& i, Reg dest);
// True if this is the stack-pointer guard `add sp, x21, x22`.
bool IsSpGuard(const Inst& i);

// Human-readable mnemonic string ("add", "ldr", "b.eq", ...), used by the
// assembly printer and diagnostics.
std::string MnName(const Inst& i);

}  // namespace lfi::arch

#endif  // LFI_ARCH_INST_H_
