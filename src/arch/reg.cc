#include "arch/reg.h"

namespace lfi::arch {

bool IsReservedGpr(Reg r) {
  return r == kRegBase || r == kRegAddr || r == kRegScratch ||
         r == kRegHoist0 || r == kRegHoist1;
}

bool IsAddressReserved(Reg r) {
  return r == kRegBase || r == kRegAddr || r == kRegHoist0 || r == kRegHoist1;
}

std::string RegName(Reg r, Width w) {
  const char prefix = (w == Width::kX) ? 'x' : 'w';
  if (r.IsZr()) return std::string(1, prefix) + "zr";
  if (r.IsSp()) return (w == Width::kX) ? "sp" : "wsp";
  if (r.IsNone()) return "<none>";
  return std::string(1, prefix) + std::to_string(r.id());
}

std::string VRegName(VReg r, FpSize s) {
  if (r.IsNone()) return "<vnone>";
  switch (s) {
    case FpSize::kS: return "s" + std::to_string(r.id());
    case FpSize::kD: return "d" + std::to_string(r.id());
    case FpSize::kQ: return "q" + std::to_string(r.id());
    case FpSize::kV4S: return "v" + std::to_string(r.id()) + ".4s";
    case FpSize::kV2D: return "v" + std::to_string(r.id()) + ".2d";
  }
  return "<vbad>";
}

}  // namespace lfi::arch
