// Register model for the ARM64 (AArch64) subset used by LFI.
//
// ARM64 has 31 general-purpose 64-bit registers x0..x30, a zero register
// (xzr) and a dedicated stack pointer (sp). Register number 31 encodes
// either xzr or sp depending on instruction context; in this model the two
// are distinct ids so that code never has to carry that context around.
#ifndef LFI_ARCH_REG_H_
#define LFI_ARCH_REG_H_

#include <cstdint>
#include <string>

namespace lfi::arch {

// Operand width for integer operations (the `sf` bit in most encodings).
enum class Width : uint8_t {
  kW,  // 32-bit view (w0..w30, wzr, wsp)
  kX,  // 64-bit view (x0..x30, xzr, sp)
};

// A general-purpose register id. Values 0..30 are x0..x30; kZr is the zero
// register and kSp the stack pointer. Width is carried separately (by the
// instruction), matching how the ISA treats w/x as views of one register.
class Reg {
 public:
  static constexpr uint8_t kZrId = 31;
  static constexpr uint8_t kSpId = 32;
  static constexpr uint8_t kNoneId = 33;

  constexpr Reg() = default;
  constexpr explicit Reg(uint8_t id) : id_(id) {}

  static constexpr Reg X(uint8_t n) { return Reg(n); }
  static constexpr Reg Zr() { return Reg(kZrId); }
  static constexpr Reg Sp() { return Reg(kSpId); }
  static constexpr Reg None() { return Reg(kNoneId); }

  constexpr uint8_t id() const { return id_; }
  constexpr bool IsZr() const { return id_ == kZrId; }
  constexpr bool IsSp() const { return id_ == kSpId; }
  constexpr bool IsNone() const { return id_ == kNoneId; }
  constexpr bool IsGpr() const { return id_ <= 30; }

  // The 5-bit machine encoding. xzr and sp share encoding 31.
  constexpr uint8_t Encoding() const { return id_ >= 31 ? 31 : id_; }

  constexpr bool operator==(const Reg& o) const { return id_ == o.id_; }
  constexpr bool operator!=(const Reg& o) const { return id_ != o.id_; }

 private:
  uint8_t id_ = kNoneId;
};

// Registers reserved by the LFI scheme (Section 3 of the paper).
inline constexpr Reg kRegBase = Reg::X(21);   // sandbox base address
inline constexpr Reg kRegAddr = Reg::X(18);   // always a valid sandbox address
inline constexpr Reg kRegScratch = Reg::X(22);  // always a 32-bit value
inline constexpr Reg kRegHoist0 = Reg::X(23);   // hoisting register #1
inline constexpr Reg kRegHoist1 = Reg::X(24);   // hoisting register #2
inline constexpr Reg kRegLink = Reg::X(30);     // link register (guarded)

// True if `r` is one of the five reserved general-purpose registers.
bool IsReservedGpr(Reg r);

// True if `r` is guaranteed to always hold a valid sandbox address
// (x18, x21, x23, x24 - and sp, which is special-cased by callers).
bool IsAddressReserved(Reg r);

// Floating point / SIMD register arrangement.
enum class FpSize : uint8_t {
  kS,    // 32-bit scalar
  kD,    // 64-bit scalar
  kQ,    // 128-bit (whole vector register, for loads/stores)
  kV4S,  // vector of 4 x 32-bit
  kV2D,  // vector of 2 x 64-bit
};

// A SIMD&FP register v0..v31 (also named s0/d0/q0 depending on use).
class VReg {
 public:
  static constexpr uint8_t kNoneId = 32;

  constexpr VReg() = default;
  constexpr explicit VReg(uint8_t id) : id_(id) {}

  static constexpr VReg V(uint8_t n) { return VReg(n); }
  static constexpr VReg None() { return VReg(kNoneId); }

  constexpr uint8_t id() const { return id_; }
  constexpr bool IsNone() const { return id_ == kNoneId; }
  constexpr uint8_t Encoding() const { return id_ & 31; }

  constexpr bool operator==(const VReg& o) const { return id_ == o.id_; }
  constexpr bool operator!=(const VReg& o) const { return id_ != o.id_; }

 private:
  uint8_t id_ = kNoneId;
};

// Assembly names, e.g. RegName(Reg::X(3), Width::kX) == "x3",
// RegName(Reg::Sp(), Width::kW) == "wsp".
std::string RegName(Reg r, Width w);
std::string VRegName(VReg r, FpSize s);

}  // namespace lfi::arch

#endif  // LFI_ARCH_REG_H_
