#include "asmtext/assemble.h"

#include "arch/encode.h"
#include "asmtext/printer.h"

namespace lfi::asmtext {

namespace {

using arch::Inst;
using arch::Mn;

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) / a * a; }

// Size in bytes a directive contributes to its section. `addr` is the
// current offset, needed for alignment.
uint64_t DirectiveSize(const Directive& d, uint64_t addr) {
  switch (d.kind) {
    case Directive::Kind::kSection:
    case Directive::Kind::kGlobl:
      return 0;
    case Directive::Kind::kBalign:
      return AlignUp(addr, static_cast<uint64_t>(d.values.at(0))) - addr;
    case Directive::Kind::kByte:
      return d.values.size();
    case Directive::Kind::kWord:
      return d.values.size() * 4;
    case Directive::Kind::kQuad:
      return d.values.size() * 8;
    case Directive::Kind::kAsciz:
      return d.text.size() + 1;
    case Directive::Kind::kZero:
      return static_cast<uint64_t>(d.values.at(0));
  }
  return 0;
}

void AppendLE(std::vector<uint8_t>* out, uint64_t v, unsigned bytes) {
  for (unsigned k = 0; k < bytes; ++k) {
    out->push_back(static_cast<uint8_t>(v >> (8 * k)));
  }
}

}  // namespace

Result<Image> Assemble(const AsmFile& file, const LayoutSpec& spec) {
  // Pass 1: compute section sizes and label addresses (section-relative,
  // converted to absolute once section bases are known).
  struct LabelPos {
    Section section;
    uint64_t offset;
  };
  std::map<std::string, LabelPos> labels;
  uint64_t sizes[4] = {0, 0, 0, 0};
  Section cur = Section::kText;
  for (const auto& s : file.stmts) {
    auto& sz = sizes[static_cast<int>(cur)];
    switch (s.kind) {
      case AsmStmt::Kind::kLabel:
        if (labels.count(s.label)) {
          return Error{"assemble: duplicate label " + s.label};
        }
        labels[s.label] = {cur, sz};
        break;
      case AsmStmt::Kind::kDirective:
        if (s.dir.kind == Directive::Kind::kSection) {
          cur = s.dir.section;
        } else {
          if (cur == Section::kBss && s.dir.kind != Directive::Kind::kZero &&
              s.dir.kind != Directive::Kind::kBalign) {
            return Error{"assemble: initialized data in .bss"};
          }
          sz += DirectiveSize(s.dir, sz);
        }
        break;
      case AsmStmt::Kind::kRtcall:
        return Error{"assemble: unexpanded rtcall (run the rewriter first)"};
      case AsmStmt::Kind::kHostcall:
        return Error{"assemble: unexpanded hostcall (run the rewriter first)"};
      case AsmStmt::Kind::kInst:
        if (cur != Section::kText) {
          return Error{"assemble: instruction outside .text at line " +
                       std::to_string(s.line)};
        }
        sz += 4;
        break;
    }
  }

  Image img;
  img.text_addr = spec.text_offset;
  img.rodata_addr =
      AlignUp(img.text_addr + sizes[int(Section::kText)], spec.align);
  img.data_addr =
      AlignUp(img.rodata_addr + sizes[int(Section::kRodata)], spec.align);
  img.bss_addr =
      AlignUp(img.data_addr + sizes[int(Section::kData)], spec.align);
  img.bss_size = sizes[int(Section::kBss)];

  const uint64_t bases[4] = {img.text_addr, img.rodata_addr, img.data_addr,
                             img.bss_addr};
  for (auto& [name, pos] : labels) {
    img.symbols[name] = bases[static_cast<int>(pos.section)] + pos.offset;
  }
  auto resolve = [&](const std::string& sym) -> Result<uint64_t> {
    auto it = img.symbols.find(sym);
    if (it == img.symbols.end()) {
      return Error{"assemble: undefined symbol " + sym};
    }
    return it->second;
  };

  // Pass 2: emit bytes.
  cur = Section::kText;
  uint64_t offsets[4] = {0, 0, 0, 0};
  std::vector<uint8_t>* streams[4] = {&img.text, &img.rodata, &img.data,
                                      nullptr};
  for (const auto& s : file.stmts) {
    auto& off = offsets[static_cast<int>(cur)];
    std::vector<uint8_t>* out = streams[static_cast<int>(cur)];
    switch (s.kind) {
      case AsmStmt::Kind::kLabel:
        break;
      case AsmStmt::Kind::kDirective: {
        const Directive& d = s.dir;
        if (d.kind == Directive::Kind::kSection) {
          cur = d.section;
          break;
        }
        const uint64_t n = DirectiveSize(d, off);
        if (cur == Section::kBss) {
          off += n;
          break;
        }
        switch (d.kind) {
          case Directive::Kind::kBalign:
            for (uint64_t k = 0; k < n; ++k) out->push_back(0);
            break;
          case Directive::Kind::kByte:
          case Directive::Kind::kWord:
          case Directive::Kind::kQuad: {
            const unsigned bytes = d.kind == Directive::Kind::kByte
                                       ? 1
                                       : d.kind == Directive::Kind::kWord ? 4
                                                                          : 8;
            for (size_t k = 0; k < d.values.size(); ++k) {
              uint64_t v = static_cast<uint64_t>(d.values[k]);
              if (!d.syms[k].empty()) {
                auto addr = resolve(d.syms[k]);
                if (!addr) return Error{addr.error()};
                v = *addr;
              }
              AppendLE(out, v, bytes);
            }
            break;
          }
          case Directive::Kind::kAsciz:
            for (char c : d.text) out->push_back(static_cast<uint8_t>(c));
            out->push_back(0);
            break;
          case Directive::Kind::kZero:
            for (uint64_t k = 0; k < n; ++k) out->push_back(0);
            break;
          default:
            break;
        }
        off += n;
        break;
      }
      case AsmStmt::Kind::kRtcall:
        return Error{"assemble: unexpanded rtcall"};
      case AsmStmt::Kind::kHostcall:
        return Error{"assemble: unexpanded hostcall"};
      case AsmStmt::Kind::kInst: {
        Inst inst = s.inst;
        const uint64_t addr = img.text_addr + off;
        if (s.reloc == Reloc::kBranch) {
          auto target = resolve(s.target);
          if (!target) return Error{target.error()};
          if (inst.mn == Mn::kAdrp) {
            inst.imm = static_cast<int64_t>((*target & ~uint64_t{0xfff}) -
                                            (addr & ~uint64_t{0xfff}));
          } else {
            inst.imm = static_cast<int64_t>(*target - addr);
          }
        } else if (s.reloc == Reloc::kLo12) {
          auto target = resolve(s.target);
          if (!target) return Error{target.error()};
          inst.imm = static_cast<int64_t>(*target & 0xfff);
        }
        auto word = arch::Encode(inst);
        if (!word) {
          return Error{"assemble: line " + std::to_string(s.line) + " `" +
                       PrintStmt(s) + "`: " + word.error()};
        }
        AppendLE(out, *word, 4);
        off += 4;
        break;
      }
    }
  }

  img.entry = img.symbols.count("_start") ? img.symbols["_start"]
                                          : img.text_addr;
  return img;
}

}  // namespace lfi::asmtext
