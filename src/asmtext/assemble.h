// Assembler: lays out an AsmFile into section byte images.
//
// All addresses in the produced image are *sandbox-relative* offsets. The
// LFI scheme makes this natural: guards rewrite the top 32 bits of every
// pointer to the sandbox base, so a program's addresses are really 32-bit
// offsets into its 4GiB slot (this is also what makes single-address-space
// fork possible, Section 5.3). The loader adds the slot base when mapping.
#ifndef LFI_ASMTEXT_ASSEMBLE_H_
#define LFI_ASMTEXT_ASSEMBLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asmtext/ast.h"
#include "support/result.h"

namespace lfi::asmtext {

// Where sections land inside the sandbox.
struct LayoutSpec {
  uint64_t text_offset = 0x20000;  // first byte of .text
  uint64_t align = 16384;          // section alignment (16KiB pages)
};

// A laid-out program image (sandbox-relative addresses).
struct Image {
  uint64_t text_addr = 0;
  std::vector<uint8_t> text;
  uint64_t rodata_addr = 0;
  std::vector<uint8_t> rodata;
  uint64_t data_addr = 0;
  std::vector<uint8_t> data;
  uint64_t bss_addr = 0;
  uint64_t bss_size = 0;
  uint64_t entry = 0;  // `_start` if defined, else start of .text
  std::map<std::string, uint64_t> symbols;
};

// Assembles `file`. Fails on unresolved labels, out-of-range branches,
// unexpanded rtcall pseudo-instructions, or unencodable instructions.
Result<Image> Assemble(const AsmFile& file, const LayoutSpec& spec);

}  // namespace lfi::asmtext

#endif  // LFI_ASMTEXT_ASSEMBLE_H_
