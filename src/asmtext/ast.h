// Assembly-file AST.
//
// LFI deliberately operates on GNU assembly *text* emitted by off-the-shelf
// compilers instead of living inside a compiler backend (Section 5.1). This
// module defines the statement-level representation that the parser
// produces, the rewriter transforms, the printer re-emits, and the
// assembler lowers to bytes.
#ifndef LFI_ASMTEXT_AST_H_
#define LFI_ASMTEXT_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "arch/inst.h"

namespace lfi::asmtext {

// Sections an assembly file can place content in.
enum class Section : uint8_t { kText, kRodata, kData, kBss };

// Non-instruction statements.
struct Directive {
  enum class Kind : uint8_t {
    kSection,  // .text/.data/.rodata/.bss (section in `section`)
    kGlobl,    // .globl sym
    kBalign,   // .balign n
    kByte,     // .byte v, v, ...
    kWord,     // .word v, ... (4 bytes each; entries may be symbols)
    kQuad,     // .quad v, ... (8 bytes each; entries may be symbols)
    kAsciz,    // .asciz "str" (NUL-terminated)
    kZero,     // .zero n / .space n
  };
  Kind kind = Kind::kSection;
  Section section = Section::kText;
  std::vector<int64_t> values;     // numeric payload
  std::vector<std::string> syms;   // symbol payload, parallel to values;
                                   // empty string = use numeric value
  std::string text;                // .globl name / .asciz content
};

// Relocation kind attached to an instruction's immediate.
enum class Reloc : uint8_t {
  kNone,
  kBranch,  // direct-branch / adr / adrp target: `target` label
  kLo12,    // :lo12:sym in an add/ldr/str immediate
};

// One statement in an assembly file.
struct AsmStmt {
  // kRtcall is the `rtcall #n` pseudo-instruction: a call into the LFI
  // runtime through the call table at the sandbox base (Section 4.4). The
  // rewriter expands it into the `ldr x30, [x21, #8n]; blr x30` sequence;
  // it cannot be assembled directly. The call number lives in `inst.imm`.
  //
  // kHostcall is the `hostcall #i` pseudo used by embedded guests
  // (src/embed/): it expands to `movz x9, #i` followed by the kHostcall
  // rtcall, invoking host callback slot `i`. The slot index lives in
  // `inst.imm`.
  enum class Kind : uint8_t { kLabel, kDirective, kInst, kRtcall, kHostcall };
  Kind kind = Kind::kInst;

  std::string label;  // kLabel: the name being bound
  Directive dir;      // kDirective

  arch::Inst inst;    // kInst
  Reloc reloc = Reloc::kNone;
  std::string target;  // label referenced by the instruction, if any

  int line = 0;  // 1-based source line, for diagnostics

  static AsmStmt Label(std::string name) {
    AsmStmt s;
    s.kind = Kind::kLabel;
    s.label = std::move(name);
    return s;
  }
  static AsmStmt OfInst(arch::Inst i) {
    AsmStmt s;
    s.kind = Kind::kInst;
    s.inst = i;
    return s;
  }
  static AsmStmt Branch(arch::Inst i, std::string target_label) {
    AsmStmt s = OfInst(i);
    s.reloc = Reloc::kBranch;
    s.target = std::move(target_label);
    return s;
  }
};

// A parsed assembly file: a flat statement list, in source order.
struct AsmFile {
  std::vector<AsmStmt> stmts;
};

}  // namespace lfi::asmtext

#endif  // LFI_ASMTEXT_AST_H_
