#include "asmtext/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>

namespace lfi::asmtext {

namespace {

using arch::AddrMode;
using arch::Cond;
using arch::Extend;
using arch::FpSize;
using arch::Inst;
using arch::Mn;
using arch::Reg;
using arch::Shift;
using arch::VReg;
using arch::Width;

// ----- Operand-level token model -----

// A parsed operand, classified.
struct Operand {
  enum class Kind {
    kReg,      // x0 / w3 / sp / wsp / xzr / wzr
    kVReg,     // s0 / d4 / q2 / v1.4s / v1.2d
    kImm,      // #123 / 123 / #-8 / #0x10
    kMem,      // [ ... ] possibly with ! ; post-index imm handled by caller
    kShift,    // lsl #3 / lsr #1 / asr #2 / ror #4
    kExtend,   // uxtw / sxtw #2 / ...
    kLo12,     // :lo12:sym
    kLabel,    // bare identifier
    kCond,     // eq/ne/... (only in csel-family operand position)
  };
  Kind kind;
  Reg reg;
  Width reg_width = Width::kX;
  VReg vreg;
  FpSize fsize = FpSize::kD;
  int64_t imm = 0;
  // Memory sub-operands (flattened; Kind::kMem only).
  Reg mem_base;
  enum class OffKind { kNone, kImm, kReg, kLo12 } off_kind = OffKind::kNone;
  int64_t off_imm = 0;
  Reg off_reg;
  Width off_width = Width::kX;
  std::string off_sym;
  enum class ExtKind { kNone, kShift, kExtend } ext_kind = ExtKind::kNone;
  bool writeback = false;
  // Shift/extend payload.
  Shift shift = Shift::kLsl;
  Extend ext = Extend::kUxtx;
  std::optional<int64_t> amount;
  // Symbol payload.
  std::string sym;
  Cond cond = Cond::kAl;
};

struct ParsedLine {
  std::string mnemonic;
  std::vector<Operand> ops;
  // Post-index immediate appearing after a memory operand: `[x0], #8`.
  std::optional<int64_t> post_imm;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '$';
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::optional<Cond> ParseCond(std::string_view s) {
  static const std::map<std::string, Cond, std::less<>> kMap = {
      {"eq", Cond::kEq}, {"ne", Cond::kNe}, {"hs", Cond::kHs},
      {"cs", Cond::kHs}, {"lo", Cond::kLo}, {"cc", Cond::kLo},
      {"mi", Cond::kMi}, {"pl", Cond::kPl}, {"vs", Cond::kVs},
      {"vc", Cond::kVc}, {"hi", Cond::kHi}, {"ls", Cond::kLs},
      {"ge", Cond::kGe}, {"lt", Cond::kLt}, {"gt", Cond::kGt},
      {"le", Cond::kLe}, {"al", Cond::kAl}};
  auto it = kMap.find(Lower(s));
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

Cond Invert(Cond c) {
  return static_cast<Cond>(static_cast<uint8_t>(c) ^ 1);
}

// Parses a register name. Returns nullopt if `s` is not a register.
std::optional<std::pair<Reg, Width>> ParseGpr(std::string_view s) {
  const std::string l = Lower(s);
  if (l == "sp") return {{Reg::Sp(), Width::kX}};
  if (l == "wsp") return {{Reg::Sp(), Width::kW}};
  if (l == "xzr") return {{Reg::Zr(), Width::kX}};
  if (l == "wzr") return {{Reg::Zr(), Width::kW}};
  if (l.size() < 2 || (l[0] != 'x' && l[0] != 'w')) return std::nullopt;
  for (size_t k = 1; k < l.size(); ++k) {
    if (!std::isdigit(static_cast<unsigned char>(l[k]))) return std::nullopt;
  }
  const int n = std::atoi(l.c_str() + 1);
  if (n < 0 || n > 30) return std::nullopt;
  return {{Reg::X(static_cast<uint8_t>(n)), l[0] == 'x' ? Width::kX
                                                        : Width::kW}};
}

std::optional<std::pair<VReg, FpSize>> ParseVReg(std::string_view s) {
  const std::string l = Lower(s);
  if (l.size() < 2) return std::nullopt;
  const char c = l[0];
  if (c == 'v') {
    const auto dot = l.find('.');
    if (dot == std::string::npos) return std::nullopt;
    const int n = std::atoi(l.substr(1, dot - 1).c_str());
    if (n < 0 || n > 31) return std::nullopt;
    const std::string arr = l.substr(dot + 1);
    if (arr == "4s") return {{VReg::V(static_cast<uint8_t>(n)), FpSize::kV4S}};
    if (arr == "2d") return {{VReg::V(static_cast<uint8_t>(n)), FpSize::kV2D}};
    return std::nullopt;
  }
  if (c != 's' && c != 'd' && c != 'q') return std::nullopt;
  for (size_t k = 1; k < l.size(); ++k) {
    if (!std::isdigit(static_cast<unsigned char>(l[k]))) return std::nullopt;
  }
  const int n = std::atoi(l.c_str() + 1);
  if (n < 0 || n > 31) return std::nullopt;
  const FpSize fs =
      c == 's' ? FpSize::kS : (c == 'd' ? FpSize::kD : FpSize::kQ);
  return {{VReg::V(static_cast<uint8_t>(n)), fs}};
}

std::optional<int64_t> ParseNumber(std::string_view s) {
  s = Trim(s);
  if (!s.empty() && s.front() == '#') s.remove_prefix(1);
  if (s.empty()) return std::nullopt;
  bool neg = false;
  if (s.front() == '-') {
    neg = true;
    s.remove_prefix(1);
  } else if (s.front() == '+') {
    s.remove_prefix(1);
  }
  if (s.empty()) return std::nullopt;
  uint64_t v = 0;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    for (char c : s.substr(2)) {
      if (!std::isxdigit(static_cast<unsigned char>(c))) return std::nullopt;
      v = v * 16 + static_cast<uint64_t>(
                       std::isdigit(static_cast<unsigned char>(c))
                           ? c - '0'
                           : std::tolower(c) - 'a' + 10);
    }
  } else {
    for (char c : s) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
  }
  return neg ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
}

std::optional<Shift> ParseShiftName(std::string_view s) {
  const std::string l = Lower(s);
  if (l == "lsl") return Shift::kLsl;
  if (l == "lsr") return Shift::kLsr;
  if (l == "asr") return Shift::kAsr;
  if (l == "ror") return Shift::kRor;
  return std::nullopt;
}

std::optional<Extend> ParseExtendName(std::string_view s) {
  const std::string l = Lower(s);
  if (l == "uxtb") return Extend::kUxtb;
  if (l == "uxth") return Extend::kUxth;
  if (l == "uxtw") return Extend::kUxtw;
  if (l == "uxtx") return Extend::kUxtx;
  if (l == "sxtb") return Extend::kSxtb;
  if (l == "sxth") return Extend::kSxth;
  if (l == "sxtw") return Extend::kSxtw;
  if (l == "sxtx") return Extend::kSxtx;
  return std::nullopt;
}

// Splits `s` on top-level commas (commas inside [...] don't split).
std::vector<std::string_view> SplitOperands(std::string_view s) {
  std::vector<std::string_view> out;
  int depth = 0;
  size_t start = 0;
  for (size_t k = 0; k < s.size(); ++k) {
    if (s[k] == '[') ++depth;
    else if (s[k] == ']') --depth;
    else if (s[k] == ',' && depth == 0) {
      out.push_back(Trim(s.substr(start, k - start)));
      start = k + 1;
    }
  }
  const auto last = Trim(s.substr(start));
  if (!last.empty()) out.push_back(last);
  return out;
}

// Parses a non-memory operand token.
Result<Operand> ParseSimpleOperand(std::string_view tok) {
  Operand op;
  tok = Trim(tok);
  if (tok.empty()) return Error{"empty operand"};
  if (auto g = ParseGpr(tok)) {
    op.kind = Operand::Kind::kReg;
    op.reg = g->first;
    op.reg_width = g->second;
    return op;
  }
  if (auto v = ParseVReg(tok)) {
    op.kind = Operand::Kind::kVReg;
    op.vreg = v->first;
    op.fsize = v->second;
    return op;
  }
  if (tok.front() == '#' || std::isdigit(static_cast<unsigned char>(tok[0])) ||
      tok.front() == '-') {
    if (auto n = ParseNumber(tok)) {
      op.kind = Operand::Kind::kImm;
      op.imm = *n;
      return op;
    }
    return Error{"bad immediate: " + std::string(tok)};
  }
  if (tok.substr(0, 6) == ":lo12:") {
    op.kind = Operand::Kind::kLo12;
    op.sym = std::string(tok.substr(6));
    return op;
  }
  // shift/extend with optional amount: "lsl #3", "uxtw", "sxtw #2"
  {
    const auto space = tok.find_first_of(" \t");
    const std::string_view head =
        space == std::string_view::npos ? tok : tok.substr(0, space);
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view{}
                                        : Trim(tok.substr(space));
    if (auto sh = ParseShiftName(head)) {
      auto n = ParseNumber(rest);
      if (!n) return Error{"shift needs amount: " + std::string(tok)};
      op.kind = Operand::Kind::kShift;
      op.shift = *sh;
      op.amount = *n;
      return op;
    }
    if (auto ex = ParseExtendName(head)) {
      op.kind = Operand::Kind::kExtend;
      op.ext = *ex;
      if (!rest.empty()) {
        auto n = ParseNumber(rest);
        if (!n) return Error{"bad extend amount: " + std::string(tok)};
        op.amount = *n;
      }
      return op;
    }
  }
  // Condition code or label: context decides; report as label and let the
  // mnemonic handler reinterpret when it expects a condition.
  op.kind = Operand::Kind::kLabel;
  op.sym = std::string(tok);
  return op;
}

// Parses a [ ... ] memory operand (without any post-index part).
Result<Operand> ParseMemOperand(std::string_view tok) {
  Operand op;
  op.kind = Operand::Kind::kMem;
  tok = Trim(tok);
  if (tok.back() == '!') {
    op.writeback = true;
    tok = Trim(tok.substr(0, tok.size() - 1));
  }
  if (tok.size() < 2 || tok.front() != '[' || tok.back() != ']') {
    return Error{"bad memory operand: " + std::string(tok)};
  }
  const auto inner = Trim(tok.substr(1, tok.size() - 2));
  auto parts = SplitOperands(inner);
  if (parts.empty() || parts.size() > 3) {
    return Error{"bad memory operand arity"};
  }
  auto base = ParseGpr(parts[0]);
  if (!base || base->first.IsZr()) {
    return Error{"bad base register: " + std::string(parts[0])};
  }
  op.mem_base = base->first;
  if (parts.size() >= 2) {
    auto sub = ParseSimpleOperand(parts[1]);
    if (!sub) return Error{sub.error()};
    switch (sub->kind) {
      case Operand::Kind::kImm:
        op.off_kind = Operand::OffKind::kImm;
        op.off_imm = sub->imm;
        break;
      case Operand::Kind::kReg:
        op.off_kind = Operand::OffKind::kReg;
        op.off_reg = sub->reg;
        op.off_width = sub->reg_width;
        break;
      case Operand::Kind::kLo12:
        op.off_kind = Operand::OffKind::kLo12;
        op.off_sym = sub->sym;
        break;
      default:
        return Error{"bad memory offset"};
    }
  }
  if (parts.size() == 3) {
    auto sub = ParseSimpleOperand(parts[2]);
    if (!sub) return Error{sub.error()};
    if (sub->kind == Operand::Kind::kShift) {
      op.ext_kind = Operand::ExtKind::kShift;
      op.shift = sub->shift;
      op.amount = sub->amount;
    } else if (sub->kind == Operand::Kind::kExtend) {
      op.ext_kind = Operand::ExtKind::kExtend;
      op.ext = sub->ext;
      op.amount = sub->amount;
    } else {
      return Error{"bad memory extend"};
    }
  }
  return op;
}

Result<ParsedLine> Tokenize(std::string_view line) {
  ParsedLine out;
  line = Trim(line);
  const auto sp = line.find_first_of(" \t");
  out.mnemonic = Lower(sp == std::string_view::npos ? line
                                                    : line.substr(0, sp));
  if (sp == std::string_view::npos) return out;
  auto toks = SplitOperands(Trim(line.substr(sp)));
  for (size_t k = 0; k < toks.size(); ++k) {
    if (!toks[k].empty() && toks[k].front() == '[') {
      auto mem = ParseMemOperand(toks[k]);
      if (!mem) return Error{mem.error()};
      // Post-index: `[xN], #i` arrives as a following immediate token.
      if (k + 1 < toks.size() && !mem->writeback &&
          mem->off_kind == Operand::OffKind::kNone &&
          (toks[k + 1].front() == '#' ||
           std::isdigit(static_cast<unsigned char>(toks[k + 1][0])) ||
           toks[k + 1].front() == '-')) {
        auto n = ParseNumber(toks[k + 1]);
        if (!n) return Error{"bad post-index immediate"};
        out.post_imm = *n;
        ++k;
      }
      out.ops.push_back(*mem);
      continue;
    }
    auto op = ParseSimpleOperand(toks[k]);
    if (!op) return Error{op.error()};
    out.ops.push_back(*op);
  }
  return out;
}

// ----- Mnemonic assembly: build Inst values from operand lists -----

Error ErrLine(const std::string& m) { return Error{m}; }

// Fills `inst.mem` from a kMem operand plus optional post-index immediate.
Status FillMem(const Operand& m, std::optional<int64_t> post, Inst* inst) {
  inst->mem.base = m.mem_base;
  if (post.has_value()) {
    inst->mem.mode = AddrMode::kPostIndex;
    inst->mem.imm = *post;
    return Status::Ok();
  }
  if (m.off_kind == Operand::OffKind::kNone) {
    inst->mem.mode = m.writeback ? AddrMode::kPreIndex : AddrMode::kImm;
    inst->mem.imm = 0;
    return Status::Ok();
  }
  if (m.off_kind == Operand::OffKind::kImm) {
    inst->mem.mode = m.writeback ? AddrMode::kPreIndex : AddrMode::kImm;
    inst->mem.imm = m.off_imm;
    return Status::Ok();
  }
  if (m.off_kind == Operand::OffKind::kLo12) {
    return Status::Fail(":lo12: in memory operands unsupported; "
                        "materialize the address with add first");
  }
  // Register offset.
  if (m.writeback) return Status::Fail("writeback with register offset");
  inst->mem.index = m.off_reg;
  uint8_t shift = 0;
  AddrMode mode;
  if (m.ext_kind == Operand::ExtKind::kNone) {
    if (m.off_width != Width::kX) {
      return Status::Fail("register offset without extend must be an x reg");
    }
    mode = AddrMode::kRegLsl;
  } else if (m.ext_kind == Operand::ExtKind::kShift) {
    if (m.shift != Shift::kLsl) {
      return Status::Fail("only lsl shifts in addressing modes");
    }
    mode = AddrMode::kRegLsl;
    shift = static_cast<uint8_t>(m.amount.value_or(0));
  } else {
    switch (m.ext) {
      case Extend::kUxtw: mode = AddrMode::kRegUxtw; break;
      case Extend::kSxtw: mode = AddrMode::kRegSxtw; break;
      case Extend::kSxtx: case Extend::kUxtx: mode = AddrMode::kRegLsl; break;
      default: return Status::Fail("bad addressing-mode extend");
    }
    if (mode != AddrMode::kRegLsl && m.off_width != Width::kW) {
      return Status::Fail("uxtw/sxtw offset must be a w register");
    }
    shift = static_cast<uint8_t>(m.amount.value_or(0));
  }
  inst->mem.mode = mode;
  inst->mem.shift = shift;
  return Status::Ok();
}

bool IsReg(const Operand& o) { return o.kind == Operand::Kind::kReg; }
bool IsImm(const Operand& o) { return o.kind == Operand::Kind::kImm; }
bool IsMem(const Operand& o) { return o.kind == Operand::Kind::kMem; }
bool IsVReg(const Operand& o) { return o.kind == Operand::Kind::kVReg; }

// Builds an add/sub-family instruction from `rd, rn, <imm|reg>` operands
// with optional shift/extend. Handles the imm/shifted/extended split.
Result<AsmStmt> BuildAddSub(bool sub, bool setflags, const ParsedLine& l,
                            size_t opbase = 0) {
  if (l.ops.size() < opbase + 3) return ErrLine("add/sub needs 3 operands");
  const Operand& rd = l.ops[opbase];
  const Operand& rn = l.ops[opbase + 1];
  const Operand& src = l.ops[opbase + 2];
  if (!IsReg(rd) || !IsReg(rn)) return ErrLine("add/sub operand types");
  Inst i;
  i.width = rd.reg_width;
  i.rd = rd.reg;
  i.rn = rn.reg;
  if (IsImm(src)) {
    i.mn = sub ? (setflags ? Mn::kSubsImm : Mn::kSubImm)
               : (setflags ? Mn::kAddsImm : Mn::kAddImm);
    i.imm = src.imm;
    if (l.ops.size() > opbase + 3) return ErrLine("junk after add imm");
    // Negative immediates flip add<->sub.
    if (i.imm < 0) {
      i.imm = -i.imm;
      i.mn = sub ? (setflags ? Mn::kAddsImm : Mn::kAddImm)
                 : (setflags ? Mn::kSubsImm : Mn::kSubImm);
    }
    return AsmStmt::OfInst(i);
  }
  if (src.kind == Operand::Kind::kLo12) {
    if (sub || setflags) return ErrLine(":lo12: only valid on add");
    i.mn = Mn::kAddImm;
    AsmStmt s = AsmStmt::OfInst(i);
    s.reloc = Reloc::kLo12;
    s.target = src.sym;
    return s;
  }
  if (!IsReg(src)) return ErrLine("add/sub source");
  i.rm = src.reg;
  const bool has_mod = l.ops.size() > opbase + 3;
  if (has_mod && l.ops[opbase + 3].kind == Operand::Kind::kExtend) {
    const Operand& e = l.ops[opbase + 3];
    if (setflags) return ErrLine("adds/subs ext unsupported");
    i.mn = sub ? Mn::kSubExt : Mn::kAddExt;
    i.ext = e.ext;
    i.shift_amount = static_cast<uint8_t>(e.amount.value_or(0));
    return AsmStmt::OfInst(i);
  }
  // Mixed register widths (add xD, xN, wM, uxtw) imply the extended form
  // even without a trailing modifier token.
  if (rd.reg_width == Width::kX && src.reg_width == Width::kW) {
    return ErrLine("w source in x add requires an extend specifier");
  }
  // SP in rd/rn requires extended or immediate form; the encoder handles
  // the uxtx conversion for plain adds.
  i.mn = sub ? (setflags ? Mn::kSubsReg : Mn::kSubReg)
             : (setflags ? Mn::kAddsReg : Mn::kAddReg);
  if (has_mod) {
    const Operand& sh = l.ops[opbase + 3];
    if (sh.kind != Operand::Kind::kShift) return ErrLine("bad add modifier");
    i.shift = sh.shift;
    i.shift_amount = static_cast<uint8_t>(sh.amount.value_or(0));
    if (l.ops.size() > opbase + 4) return ErrLine("junk after add");
  }
  return AsmStmt::OfInst(i);
}

Result<AsmStmt> BuildLogical(Mn mn, const ParsedLine& l) {
  if (l.ops.size() < 3) return ErrLine("logical needs 3 operands");
  if (!IsReg(l.ops[0]) || !IsReg(l.ops[1])) return ErrLine("logical operands");
  if (IsImm(l.ops[2])) {
    // Bitmask-immediate form.
    Inst i;
    switch (mn) {
      case Mn::kAndReg: i.mn = Mn::kAndImm; break;
      case Mn::kAndsReg: i.mn = Mn::kAndsImm; break;
      case Mn::kOrrReg: i.mn = Mn::kOrrImm; break;
      case Mn::kEorReg: i.mn = Mn::kEorImm; break;
      default: return ErrLine("no immediate form for this logical op");
    }
    i.width = l.ops[0].reg_width;
    i.rd = l.ops[0].reg;
    i.rn = l.ops[1].reg;
    i.imm = l.ops[2].imm;
    if (i.width == Width::kW) i.imm &= 0xffffffff;
    return AsmStmt::OfInst(i);
  }
  if (!IsReg(l.ops[2])) {
    return ErrLine("logical operand types");
  }
  Inst i;
  i.mn = mn;
  i.width = l.ops[0].reg_width;
  i.rd = l.ops[0].reg;
  i.rn = l.ops[1].reg;
  i.rm = l.ops[2].reg;
  if (l.ops.size() == 4) {
    if (l.ops[3].kind != Operand::Kind::kShift) return ErrLine("bad shift");
    i.shift = l.ops[3].shift;
    i.shift_amount = static_cast<uint8_t>(l.ops[3].amount.value_or(0));
  }
  return AsmStmt::OfInst(i);
}

Result<AsmStmt> BuildLoadStore(const std::string& mn, const ParsedLine& l) {
  Inst i;
  bool load = mn[0] == 'l';
  if (mn == "ldr" || mn == "str" || mn == "ldur" || mn == "stur") {
    i.msize = 0;  // from register width below
  } else if (mn == "ldrb" || mn == "strb") {
    i.msize = 1;
  } else if (mn == "ldrh" || mn == "strh") {
    i.msize = 2;
  } else if (mn == "ldrsb") {
    i.msize = 1;
    i.msigned = true;
  } else if (mn == "ldrsh") {
    i.msize = 2;
    i.msigned = true;
  } else if (mn == "ldrsw") {
    i.msize = 4;
    i.msigned = true;
  } else {
    return ErrLine("bad load/store mnemonic");
  }
  if (l.ops.size() != 2 || !IsMem(l.ops[1])) {
    return ErrLine(mn + " needs `rt, [mem]`");
  }
  if (IsVReg(l.ops[0])) {
    if (i.msize != 0 || i.msigned) return ErrLine("fp ld/st variant");
    i.mn = load ? Mn::kLdrF : Mn::kStrF;
    i.vt = l.ops[0].vreg;
    i.fsize = l.ops[0].fsize;
    switch (i.fsize) {
      case FpSize::kS: i.msize = 4; break;
      case FpSize::kD: i.msize = 8; break;
      case FpSize::kQ: i.msize = 16; break;
      default: return ErrLine("bad fp transfer register");
    }
  } else if (IsReg(l.ops[0])) {
    i.mn = load ? Mn::kLdr : Mn::kStr;
    i.rt = l.ops[0].reg;
    i.width = l.ops[0].reg_width;
    if (i.msize == 0) i.msize = i.width == Width::kX ? 8 : 4;
    if (i.msigned && i.msize == 4 && i.width != Width::kX) {
      return ErrLine("ldrsw must target an x register");
    }
    if (!i.msigned && i.msize < 4 && i.width != Width::kW) {
      return ErrLine("ldrb/ldrh target must be a w register");
    }
  } else {
    return ErrLine("bad transfer register");
  }
  auto st = FillMem(l.ops[1], l.post_imm, &i);
  if (!st.ok()) return Error{st.error()};
  return AsmStmt::OfInst(i);
}

Result<AsmStmt> BuildPair(bool load, const ParsedLine& l) {
  if (l.ops.size() != 3 || !IsReg(l.ops[0]) || !IsReg(l.ops[1]) ||
      !IsMem(l.ops[2])) {
    return ErrLine("ldp/stp needs `rt, rt2, [mem]`");
  }
  Inst i;
  i.mn = load ? Mn::kLdp : Mn::kStp;
  i.rt = l.ops[0].reg;
  i.rt2 = l.ops[1].reg;
  i.width = l.ops[0].reg_width;
  i.msize = i.width == Width::kX ? 8 : 4;
  auto st = FillMem(l.ops[2], l.post_imm, &i);
  if (!st.ok()) return Error{st.error()};
  return AsmStmt::OfInst(i);
}

Result<AsmStmt> BuildFp2(Mn mn, const ParsedLine& l) {
  if (l.ops.size() != 3 || !IsVReg(l.ops[0]) || !IsVReg(l.ops[1]) ||
      !IsVReg(l.ops[2])) {
    return ErrLine("fp op needs 3 fp registers");
  }
  Inst i;
  i.fsize = l.ops[0].fsize;
  if (i.fsize == FpSize::kV4S || i.fsize == FpSize::kV2D) {
    switch (mn) {
      case Mn::kFadd: i.mn = Mn::kVFadd; break;
      case Mn::kFmul: i.mn = Mn::kVFmul; break;
      default: return ErrLine("vector op unsupported");
    }
  } else {
    i.mn = mn;
  }
  i.vd = l.ops[0].vreg;
  i.vn = l.ops[1].vreg;
  i.vm = l.ops[2].vreg;
  return AsmStmt::OfInst(i);
}

Result<AsmStmt> BuildBranch(Mn mn, const ParsedLine& l, Cond cond) {
  Inst i;
  i.mn = mn;
  i.cond = cond;
  size_t lab = 0;
  if (mn == Mn::kCbz || mn == Mn::kCbnz) {
    if (l.ops.size() != 2 || !IsReg(l.ops[0])) return ErrLine("cbz operands");
    i.rt = l.ops[0].reg;
    i.width = l.ops[0].reg_width;
    lab = 1;
  } else if (mn == Mn::kTbz || mn == Mn::kTbnz) {
    if (l.ops.size() != 3 || !IsReg(l.ops[0]) || !IsImm(l.ops[1])) {
      return ErrLine("tbz operands");
    }
    i.rt = l.ops[0].reg;
    i.bit = static_cast<uint8_t>(l.ops[1].imm);
    i.width = i.bit >= 32 ? Width::kX : Width::kW;
    lab = 2;
  } else if (l.ops.size() != 1) {
    return ErrLine("branch needs a target");
  }
  if (l.ops[lab].kind != Operand::Kind::kLabel) return ErrLine("bad target");
  return AsmStmt::Branch(i, l.ops[lab].sym);
}

Result<AsmStmt> BuildInst(const ParsedLine& l) {
  const std::string& m = l.mnemonic;
  const auto& ops = l.ops;

  // b.cond
  if (m.size() > 2 && m[0] == 'b' && m[1] == '.') {
    auto c = ParseCond(m.substr(2));
    if (!c || *c == Cond::kAl) return ErrLine("bad branch condition");
    return BuildBranch(Mn::kBCond, l, *c);
  }

  if (m == "add" && !ops.empty() && IsVReg(ops[0])) {
    // Vector integer add: add vD.4s, vN.4s, vM.4s
    if (ops.size() != 3 || !IsVReg(ops[1]) || !IsVReg(ops[2])) {
      return ErrLine("vector add operands");
    }
    Inst i;
    i.mn = Mn::kVAdd;
    i.fsize = ops[0].fsize;
    if (i.fsize != FpSize::kV4S && i.fsize != FpSize::kV2D) {
      return ErrLine("vector add arrangement");
    }
    i.vd = ops[0].vreg;
    i.vn = ops[1].vreg;
    i.vm = ops[2].vreg;
    return AsmStmt::OfInst(i);
  }
  if (m == "add" || m == "adds" || m == "sub" || m == "subs") {
    return BuildAddSub(m[0] == 's', m.back() == 's', l);
  }
  if (m == "cmp" || m == "cmn") {
    // cmp a, b == subs zr, a, b.
    ParsedLine with_rd = l;
    Operand zr;
    zr.kind = Operand::Kind::kReg;
    zr.reg = Reg::Zr();
    zr.reg_width = ops.empty() ? Width::kX : ops[0].reg_width;
    with_rd.ops.insert(with_rd.ops.begin(), zr);
    return BuildAddSub(m == "cmp", true, with_rd);
  }
  if (m == "and") return BuildLogical(Mn::kAndReg, l);
  if (m == "ands") return BuildLogical(Mn::kAndsReg, l);
  if (m == "orr") return BuildLogical(Mn::kOrrReg, l);
  if (m == "eor") return BuildLogical(Mn::kEorReg, l);
  if (m == "bic") return BuildLogical(Mn::kBicReg, l);
  if (m == "tst") {
    ParsedLine with_rd = l;
    Operand zr;
    zr.kind = Operand::Kind::kReg;
    zr.reg = Reg::Zr();
    zr.reg_width = ops.empty() ? Width::kX : ops[0].reg_width;
    with_rd.ops.insert(with_rd.ops.begin(), zr);
    return BuildLogical(Mn::kAndsReg, with_rd);
  }
  if (m == "neg") {
    if (ops.size() != 2 || !IsReg(ops[0]) || !IsReg(ops[1])) {
      return ErrLine("neg operands");
    }
    Inst i;
    i.mn = Mn::kSubReg;
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    i.rn = Reg::Zr();
    i.rm = ops[1].reg;
    return AsmStmt::OfInst(i);
  }
  if (m == "mov") {
    if (ops.size() != 2 || !IsReg(ops[0])) return ErrLine("mov operands");
    Inst i;
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    if (IsImm(ops[1])) {
      const int64_t v = ops[1].imm;
      // movz/movn with a single 16-bit payload; wider constants must be
      // written as explicit movz/movk pairs.
      if (v >= 0 && v <= 0xffff) {
        i.mn = Mn::kMovz;
        i.imm = v;
      } else if (v < 0 && -v - 1 <= 0xffff) {
        i.mn = Mn::kMovn;
        i.imm = -v - 1;
      } else {
        return ErrLine("mov immediate too wide; use movz/movk");
      }
      return AsmStmt::OfInst(i);
    }
    if (!IsReg(ops[1])) return ErrLine("mov source");
    // mov to/from sp uses add #0; otherwise orr zr.
    if (ops[0].reg.IsSp() || ops[1].reg.IsSp()) {
      i.mn = Mn::kAddImm;
      i.rn = ops[1].reg;
      i.imm = 0;
      return AsmStmt::OfInst(i);
    }
    i.mn = Mn::kOrrReg;
    i.rn = Reg::Zr();
    i.rm = ops[1].reg;
    return AsmStmt::OfInst(i);
  }
  if (m == "movz" || m == "movn" || m == "movk") {
    if (ops.size() < 2 || !IsReg(ops[0]) || !IsImm(ops[1])) {
      return ErrLine("movz operands");
    }
    Inst i;
    i.mn = m == "movz" ? Mn::kMovz : (m == "movn" ? Mn::kMovn : Mn::kMovk);
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    i.imm = ops[1].imm;
    if (ops.size() == 3) {
      if (ops[2].kind != Operand::Kind::kShift || ops[2].shift != Shift::kLsl) {
        return ErrLine("movz shift");
      }
      i.shift_amount = static_cast<uint8_t>(ops[2].amount.value_or(0));
    }
    return AsmStmt::OfInst(i);
  }
  if (m == "lsl" || m == "lsr" || m == "asr") {
    if (ops.size() != 3 || !IsReg(ops[0]) || !IsReg(ops[1]) || !IsImm(ops[2])) {
      return ErrLine("register-shift forms unsupported");
    }
    Inst i;
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    i.rn = ops[1].reg;
    const uint8_t bits = i.width == Width::kX ? 64 : 32;
    const uint8_t s = static_cast<uint8_t>(ops[2].imm);
    if (s >= bits) return ErrLine("shift amount too large");
    if (m == "lsl") {
      i.mn = Mn::kUbfm;
      i.immr = static_cast<uint8_t>((bits - s) % bits);
      i.imms = static_cast<uint8_t>(bits - 1 - s);
    } else {
      i.mn = m == "lsr" ? Mn::kUbfm : Mn::kSbfm;
      i.immr = s;
      i.imms = bits - 1;
    }
    return AsmStmt::OfInst(i);
  }
  if (m == "sxtw" || m == "sxtb" || m == "sxth" || m == "uxtb" ||
      m == "uxth") {
    if (ops.size() != 2 || !IsReg(ops[0]) || !IsReg(ops[1])) {
      return ErrLine("extend alias operands");
    }
    Inst i;
    i.mn = m[0] == 's' ? Mn::kSbfm : Mn::kUbfm;
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    i.rn = ops[1].reg;
    i.immr = 0;
    i.imms = m.substr(3) == "w" ? 31 : (m.substr(3) == "h" ? 15 : 7);
    return AsmStmt::OfInst(i);
  }
  if (m == "ubfm" || m == "sbfm") {
    if (ops.size() != 4 || !IsReg(ops[0]) || !IsReg(ops[1]) ||
        !IsImm(ops[2]) || !IsImm(ops[3])) {
      return ErrLine("bfm operands");
    }
    Inst i;
    i.mn = m == "ubfm" ? Mn::kUbfm : Mn::kSbfm;
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    i.rn = ops[1].reg;
    i.immr = static_cast<uint8_t>(ops[2].imm);
    i.imms = static_cast<uint8_t>(ops[3].imm);
    return AsmStmt::OfInst(i);
  }
  if (m == "mul" || m == "madd" || m == "msub" || m == "mneg") {
    Inst i;
    i.mn = (m == "msub" || m == "mneg") ? Mn::kMsub : Mn::kMadd;
    const size_t need = (m == "mul" || m == "mneg") ? 3 : 4;
    if (ops.size() != need) return ErrLine("mul operands");
    for (size_t k = 0; k < need; ++k) {
      if (!IsReg(ops[k])) return ErrLine("mul operands");
    }
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    i.rn = ops[1].reg;
    i.rm = ops[2].reg;
    i.ra = need == 4 ? ops[3].reg : Reg::Zr();
    return AsmStmt::OfInst(i);
  }
  if (m == "sdiv" || m == "udiv" || m == "umulh" || m == "smulh") {
    if (ops.size() != 3) return ErrLine("3-reg op operands");
    Inst i;
    i.mn = m == "sdiv" ? Mn::kSdiv
                       : (m == "udiv" ? Mn::kUdiv
                                      : (m == "umulh" ? Mn::kUmulh
                                                      : Mn::kSmulh));
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    i.rn = ops[1].reg;
    i.rm = ops[2].reg;
    return AsmStmt::OfInst(i);
  }
  if (m == "ccmp" || m == "ccmn") {
    // ccmp rn, rm|#imm5, #nzcv, cond
    if (ops.size() != 4 || !IsReg(ops[0]) || !IsImm(ops[2]) ||
        ops[3].kind != Operand::Kind::kLabel) {
      return ErrLine("ccmp operands");
    }
    auto c = ParseCond(ops[3].sym);
    if (!c) return ErrLine("bad ccmp condition");
    Inst i;
    i.width = ops[0].reg_width;
    i.rn = ops[0].reg;
    i.nzcv = static_cast<uint8_t>(ops[2].imm);
    i.cond = *c;
    if (IsImm(ops[1])) {
      i.mn = m == "ccmp" ? Mn::kCcmpImm : Mn::kCcmnImm;
      i.imm = ops[1].imm;
    } else if (IsReg(ops[1])) {
      i.mn = m == "ccmp" ? Mn::kCcmp : Mn::kCcmn;
      i.rm = ops[1].reg;
    } else {
      return ErrLine("ccmp second operand");
    }
    return AsmStmt::OfInst(i);
  }
  if (m == "extr" || m == "ror") {
    // extr rd, rn, rm, #lsb; ror rd, rs, #shift == extr rd, rs, rs, #shift
    Inst i;
    i.mn = Mn::kExtr;
    if (m == "ror") {
      if (ops.size() != 3 || !IsReg(ops[0]) || !IsReg(ops[1]) ||
          !IsImm(ops[2])) {
        return ErrLine("ror operands");
      }
      i.width = ops[0].reg_width;
      i.rd = ops[0].reg;
      i.rn = ops[1].reg;
      i.rm = ops[1].reg;
      i.imms = static_cast<uint8_t>(ops[2].imm);
    } else {
      if (ops.size() != 4 || !IsReg(ops[0]) || !IsReg(ops[1]) ||
          !IsReg(ops[2]) || !IsImm(ops[3])) {
        return ErrLine("extr operands");
      }
      i.width = ops[0].reg_width;
      i.rd = ops[0].reg;
      i.rn = ops[1].reg;
      i.rm = ops[2].reg;
      i.imms = static_cast<uint8_t>(ops[3].imm);
    }
    return AsmStmt::OfInst(i);
  }
  if (m == "csel" || m == "csinc" || m == "csinv" || m == "csneg") {
    if (ops.size() != 4 || !IsReg(ops[0]) || !IsReg(ops[1]) ||
        !IsReg(ops[2]) || ops[3].kind != Operand::Kind::kLabel) {
      return ErrLine("csel operands");
    }
    auto c = ParseCond(ops[3].sym);
    if (!c) return ErrLine("bad condition: " + ops[3].sym);
    Inst i;
    i.mn = m == "csel" ? Mn::kCsel
                       : (m == "csinc" ? Mn::kCsinc
                                       : (m == "csinv" ? Mn::kCsinv
                                                       : Mn::kCsneg));
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    i.rn = ops[1].reg;
    i.rm = ops[2].reg;
    i.cond = *c;
    return AsmStmt::OfInst(i);
  }
  if (m == "cset") {
    if (ops.size() != 2 || !IsReg(ops[0]) ||
        ops[1].kind != Operand::Kind::kLabel) {
      return ErrLine("cset operands");
    }
    auto c = ParseCond(ops[1].sym);
    if (!c) return ErrLine("bad condition");
    Inst i;
    i.mn = Mn::kCsinc;
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    i.rn = Reg::Zr();
    i.rm = Reg::Zr();
    i.cond = Invert(*c);
    return AsmStmt::OfInst(i);
  }
  if (m == "clz" || m == "rbit" || m == "rev") {
    if (ops.size() != 2 || !IsReg(ops[0]) || !IsReg(ops[1])) {
      return ErrLine("unary operands");
    }
    Inst i;
    i.mn = m == "clz" ? Mn::kClz : (m == "rbit" ? Mn::kRbit : Mn::kRev);
    i.width = ops[0].reg_width;
    i.rd = ops[0].reg;
    i.rn = ops[1].reg;
    return AsmStmt::OfInst(i);
  }
  if (m == "adr" || m == "adrp") {
    if (ops.size() != 2 || !IsReg(ops[0]) ||
        ops[1].kind != Operand::Kind::kLabel) {
      return ErrLine("adr operands");
    }
    Inst i;
    i.mn = m == "adr" ? Mn::kAdr : Mn::kAdrp;
    i.rd = ops[0].reg;
    return AsmStmt::Branch(i, ops[1].sym);
  }
  if (m == "ldr" || m == "str" || m == "ldur" || m == "stur" ||
      m == "ldrb" || m == "strb" || m == "ldrh" || m == "strh" ||
      m == "ldrsb" || m == "ldrsh" || m == "ldrsw") {
    return BuildLoadStore(m, l);
  }
  if (m == "ldp" || m == "stp") return BuildPair(m == "ldp", l);
  if (m == "ldxr" || m == "ldar" || m == "stlr") {
    if (ops.size() != 2 || !IsReg(ops[0]) || !IsMem(ops[1])) {
      return ErrLine("exclusive operands");
    }
    Inst i;
    i.mn = m == "ldxr" ? Mn::kLdxr : (m == "ldar" ? Mn::kLdar : Mn::kStlr);
    i.rt = ops[0].reg;
    i.width = ops[0].reg_width;
    i.msize = i.width == Width::kX ? 8 : 4;
    auto st = FillMem(ops[1], l.post_imm, &i);
    if (!st.ok()) return Error{st.error()};
    return AsmStmt::OfInst(i);
  }
  if (m == "stxr") {
    if (ops.size() != 3 || !IsReg(ops[0]) || !IsReg(ops[1]) ||
        !IsMem(ops[2])) {
      return ErrLine("stxr operands");
    }
    Inst i;
    i.mn = Mn::kStxr;
    i.rs = ops[0].reg;
    i.rt = ops[1].reg;
    i.width = ops[1].reg_width;
    i.msize = i.width == Width::kX ? 8 : 4;
    auto st = FillMem(ops[2], l.post_imm, &i);
    if (!st.ok()) return Error{st.error()};
    return AsmStmt::OfInst(i);
  }
  if (m == "b") return BuildBranch(Mn::kB, l, Cond::kAl);
  if (m == "bl") return BuildBranch(Mn::kBl, l, Cond::kAl);
  if (m == "cbz") return BuildBranch(Mn::kCbz, l, Cond::kAl);
  if (m == "cbnz") return BuildBranch(Mn::kCbnz, l, Cond::kAl);
  if (m == "tbz") return BuildBranch(Mn::kTbz, l, Cond::kAl);
  if (m == "tbnz") return BuildBranch(Mn::kTbnz, l, Cond::kAl);
  if (m == "br" || m == "blr") {
    if (ops.size() != 1 || !IsReg(ops[0])) return ErrLine("br operands");
    Inst i;
    i.mn = m == "br" ? Mn::kBr : Mn::kBlr;
    i.rn = ops[0].reg;
    return AsmStmt::OfInst(i);
  }
  if (m == "ret") {
    Inst i;
    i.mn = Mn::kRet;
    i.rn = ops.empty() ? Reg::X(30) : ops[0].reg;
    return AsmStmt::OfInst(i);
  }
  if (m == "fadd") return BuildFp2(Mn::kFadd, l);
  if (m == "fsub") return BuildFp2(Mn::kFsub, l);
  if (m == "fmul") return BuildFp2(Mn::kFmul, l);
  if (m == "fdiv") return BuildFp2(Mn::kFdiv, l);
  if (m == "fsqrt") {
    if (ops.size() != 2 || !IsVReg(ops[0]) || !IsVReg(ops[1])) {
      return ErrLine("fsqrt operands");
    }
    Inst i;
    i.mn = Mn::kFsqrt;
    i.fsize = ops[0].fsize;
    i.vd = ops[0].vreg;
    i.vn = ops[1].vreg;
    return AsmStmt::OfInst(i);
  }
  if (m == "fmadd") {
    if (ops.size() != 4) return ErrLine("fmadd operands");
    Inst i;
    i.mn = Mn::kFmadd;
    i.fsize = ops[0].fsize;
    i.vd = ops[0].vreg;
    i.vn = ops[1].vreg;
    i.vm = ops[2].vreg;
    i.va = ops[3].vreg;
    return AsmStmt::OfInst(i);
  }
  if (m == "fcmp") {
    if (ops.size() != 2 || !IsVReg(ops[0]) || !IsVReg(ops[1])) {
      return ErrLine("fcmp operands");
    }
    Inst i;
    i.mn = Mn::kFcmp;
    i.fsize = ops[0].fsize;
    i.vn = ops[0].vreg;
    i.vm = ops[1].vreg;
    return AsmStmt::OfInst(i);
  }
  if (m == "scvtf") {
    if (ops.size() != 2 || !IsVReg(ops[0]) || !IsReg(ops[1])) {
      return ErrLine("scvtf operands");
    }
    Inst i;
    i.mn = Mn::kScvtf;
    i.fsize = ops[0].fsize;
    i.vd = ops[0].vreg;
    i.rn = ops[1].reg;
    i.width = ops[1].reg_width;
    return AsmStmt::OfInst(i);
  }
  if (m == "fcvtzs") {
    if (ops.size() != 2 || !IsReg(ops[0]) || !IsVReg(ops[1])) {
      return ErrLine("fcvtzs operands");
    }
    Inst i;
    i.mn = Mn::kFcvtzs;
    i.fsize = ops[1].fsize;
    i.vn = ops[1].vreg;
    i.rd = ops[0].reg;
    i.width = ops[0].reg_width;
    return AsmStmt::OfInst(i);
  }
  if (m == "fmov") {
    if (ops.size() != 2) return ErrLine("fmov operands");
    Inst i;
    i.mn = Mn::kFmov;
    if (IsVReg(ops[0]) && IsVReg(ops[1])) {
      i.fsize = ops[0].fsize;
      i.vd = ops[0].vreg;
      i.vn = ops[1].vreg;
    } else if (IsReg(ops[0]) && IsVReg(ops[1])) {
      i.rd = ops[0].reg;
      i.width = ops[0].reg_width;
      i.vn = ops[1].vreg;
      i.fsize = ops[1].fsize;
    } else if (IsVReg(ops[0]) && IsReg(ops[1])) {
      i.vd = ops[0].vreg;
      i.fsize = ops[0].fsize;
      i.rn = ops[1].reg;
      i.width = ops[1].reg_width;
    } else {
      return ErrLine("fmov operand kinds");
    }
    return AsmStmt::OfInst(i);
  }
  if (m == "nop") {
    Inst i;
    i.mn = Mn::kNop;
    return AsmStmt::OfInst(i);
  }
  if (m == "svc" || m == "brk") {
    Inst i;
    i.mn = m == "svc" ? Mn::kSvc : Mn::kBrk;
    i.imm = (ops.size() == 1 && IsImm(ops[0])) ? ops[0].imm : 0;
    return AsmStmt::OfInst(i);
  }
  if (m == "rtcall") {
    if (ops.size() != 1 || !IsImm(ops[0])) return ErrLine("rtcall #n");
    AsmStmt s;
    s.kind = AsmStmt::Kind::kRtcall;
    s.inst.imm = ops[0].imm;
    return s;
  }
  if (m == "hostcall") {
    if (ops.size() != 1 || !IsImm(ops[0])) return ErrLine("hostcall #i");
    AsmStmt s;
    s.kind = AsmStmt::Kind::kHostcall;
    s.inst.imm = ops[0].imm;
    return s;
  }
  return ErrLine("unknown mnemonic: " + m);
}

Result<AsmStmt> BuildDirective(const std::string& name,
                               std::string_view rest) {
  Directive d;
  if (name == ".text") {
    d.kind = Directive::Kind::kSection;
    d.section = Section::kText;
  } else if (name == ".data") {
    d.kind = Directive::Kind::kSection;
    d.section = Section::kData;
  } else if (name == ".rodata" || name == ".section") {
    d.kind = Directive::Kind::kSection;
    // `.section .rodata` etc.
    const std::string arg = Lower(Trim(rest));
    if (name == ".rodata" || arg.find("rodata") != std::string::npos) {
      d.section = Section::kRodata;
    } else if (arg.find("bss") != std::string::npos) {
      d.section = Section::kBss;
    } else if (arg.find("data") != std::string::npos) {
      d.section = Section::kData;
    } else {
      d.section = Section::kText;
    }
  } else if (name == ".bss") {
    d.kind = Directive::Kind::kSection;
    d.section = Section::kBss;
  } else if (name == ".globl" || name == ".global") {
    d.kind = Directive::Kind::kGlobl;
    d.text = std::string(Trim(rest));
  } else if (name == ".balign" || name == ".align" || name == ".p2align") {
    d.kind = Directive::Kind::kBalign;
    auto n = ParseNumber(Trim(rest));
    if (!n || *n <= 0) return Error{"bad alignment"};
    // .p2align/.align take a power, .balign takes bytes.
    d.values.push_back(name == ".balign" ? *n : (int64_t{1} << *n));
  } else if (name == ".byte" || name == ".word" || name == ".quad" ||
             name == ".xword") {
    d.kind = name == ".byte" ? Directive::Kind::kByte
                             : (name == ".word" ? Directive::Kind::kWord
                                                : Directive::Kind::kQuad);
    for (auto tok : SplitOperands(rest)) {
      if (auto v = ParseNumber(tok)) {
        d.values.push_back(*v);
        d.syms.emplace_back();
      } else {
        d.values.push_back(0);
        d.syms.emplace_back(Trim(tok));
      }
    }
  } else if (name == ".asciz" || name == ".string") {
    d.kind = Directive::Kind::kAsciz;
    auto t = Trim(rest);
    if (t.size() < 2 || t.front() != '"' || t.back() != '"') {
      return Error{"bad string literal"};
    }
    std::string out;
    for (size_t k = 1; k + 1 < t.size(); ++k) {
      if (t[k] == '\\' && k + 2 < t.size()) {
        ++k;
        switch (t[k]) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case '0': out.push_back('\0'); break;
          case '\\': out.push_back('\\'); break;
          case '"': out.push_back('"'); break;
          default: out.push_back(t[k]);
        }
      } else {
        out.push_back(t[k]);
      }
    }
    d.text = out;
  } else if (name == ".zero" || name == ".space" || name == ".skip") {
    d.kind = Directive::Kind::kZero;
    auto n = ParseNumber(Trim(rest));
    if (!n || *n < 0) return Error{"bad .zero size"};
    d.values.push_back(*n);
  } else if (name == ".type" || name == ".size" || name == ".file" ||
             name == ".ident" || name == ".arch" || name == ".cfi_startproc" ||
             name == ".cfi_endproc" || name == ".cfi_def_cfa_offset" ||
             name == ".cfi_offset" || name == ".cfi_restore") {
    // Metadata we can safely ignore; represent as a no-op .balign 1.
    d.kind = Directive::Kind::kBalign;
    d.values.push_back(1);
  } else {
    return Error{"unknown directive: " + name};
  }
  AsmStmt s;
  s.kind = AsmStmt::Kind::kDirective;
  s.dir = std::move(d);
  return s;
}

}  // namespace

Result<AsmStmt> ParseInst(std::string_view line) {
  auto toks = Tokenize(line);
  if (!toks) return Error{toks.error()};
  return BuildInst(*toks);
}

Result<AsmFile> Parse(std::string_view source) {
  AsmFile file;
  int lineno = 0;
  size_t pos = 0;
  while (pos <= source.size()) {
    const auto nl = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, nl == std::string_view::npos ? source.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
    ++lineno;
    // Strip // comments.
    if (const auto c = line.find("//"); c != std::string_view::npos) {
      line = line.substr(0, c);
    }
    line = Trim(line);
    if (line.empty()) continue;
    // Labels (possibly several on a line, then an optional statement).
    while (true) {
      size_t k = 0;
      while (k < line.size() && IsIdentChar(line[k])) ++k;
      if (k > 0 && k < line.size() && line[k] == ':') {
        AsmStmt s = AsmStmt::Label(std::string(line.substr(0, k)));
        s.line = lineno;
        file.stmts.push_back(std::move(s));
        line = Trim(line.substr(k + 1));
        if (line.empty()) break;
        continue;
      }
      break;
    }
    if (line.empty()) continue;
    if (line.front() == '.') {
      const auto sp = line.find_first_of(" \t");
      const std::string name =
          Lower(sp == std::string_view::npos ? line : line.substr(0, sp));
      const std::string_view rest =
          sp == std::string_view::npos ? std::string_view{} : line.substr(sp);
      auto s = BuildDirective(name, rest);
      if (!s) {
        return Error{"line " + std::to_string(lineno) + ": " + s.error()};
      }
      s->line = lineno;
      file.stmts.push_back(*std::move(s));
      continue;
    }
    auto s = ParseInst(line);
    if (!s) {
      return Error{"line " + std::to_string(lineno) + ": " + s.error() +
                   " in `" + std::string(line) + "`"};
    }
    s->line = lineno;
    file.stmts.push_back(*std::move(s));
  }
  return file;
}

}  // namespace lfi::asmtext
