// GNU ARM64 assembly text parser.
//
// Accepts the subset of GNU assembler syntax that off-the-shelf compilers
// emit for the instruction subset this library supports, including common
// aliases (mov, cmp, lsl, cset, mul, ret, ...) which are canonicalized to
// their underlying instructions at parse time. Never throws: all input is
// untrusted.
#ifndef LFI_ASMTEXT_PARSER_H_
#define LFI_ASMTEXT_PARSER_H_

#include <string_view>

#include "asmtext/ast.h"
#include "support/result.h"

namespace lfi::asmtext {

// Parses a whole assembly source file.
Result<AsmFile> Parse(std::string_view source);

// Parses a single instruction statement (no labels/directives); used by
// tests and tooling.
Result<AsmStmt> ParseInst(std::string_view line);

}  // namespace lfi::asmtext

#endif  // LFI_ASMTEXT_PARSER_H_
