#include "asmtext/printer.h"

#include <sstream>

namespace lfi::asmtext {

namespace {

using arch::AddrMode;
using arch::Extend;
using arch::FpSize;
using arch::Inst;
using arch::Mn;
using arch::Reg;
using arch::RegName;
using arch::Shift;
using arch::VRegName;
using arch::Width;

const char* ShiftName(Shift s) {
  switch (s) {
    case Shift::kLsl: return "lsl";
    case Shift::kLsr: return "lsr";
    case Shift::kAsr: return "asr";
    case Shift::kRor: return "ror";
  }
  return "??";
}

const char* ExtendName(Extend e) {
  switch (e) {
    case Extend::kUxtb: return "uxtb";
    case Extend::kUxth: return "uxth";
    case Extend::kUxtw: return "uxtw";
    case Extend::kUxtx: return "uxtx";
    case Extend::kSxtb: return "sxtb";
    case Extend::kSxth: return "sxth";
    case Extend::kSxtw: return "sxtw";
    case Extend::kSxtx: return "sxtx";
  }
  return "??";
}

// Width of the register used to produce the extended operand.
Width ExtendSrcWidth(Extend e) {
  return (e == Extend::kUxtx || e == Extend::kSxtx) ? Width::kX : Width::kW;
}

std::string MemStr(const Inst& i) {
  const auto& m = i.mem;
  std::ostringstream os;
  switch (m.mode) {
    case AddrMode::kImm:
      if (m.imm == 0) {
        os << "[" << RegName(m.base, Width::kX) << "]";
      } else {
        os << "[" << RegName(m.base, Width::kX) << ", #" << m.imm << "]";
      }
      break;
    case AddrMode::kPreIndex:
      os << "[" << RegName(m.base, Width::kX) << ", #" << m.imm << "]!";
      break;
    case AddrMode::kPostIndex:
      os << "[" << RegName(m.base, Width::kX) << "], #" << m.imm;
      break;
    case AddrMode::kRegLsl:
      os << "[" << RegName(m.base, Width::kX) << ", "
         << RegName(m.index, Width::kX);
      if (m.shift != 0) os << ", lsl #" << int{m.shift};
      os << "]";
      break;
    case AddrMode::kRegUxtw:
    case AddrMode::kRegSxtw:
      os << "[" << RegName(m.base, Width::kX) << ", "
         << RegName(m.index, Width::kW) << ", "
         << (m.mode == AddrMode::kRegUxtw ? "uxtw" : "sxtw");
      if (m.shift != 0) os << " #" << int{m.shift};
      os << "]";
      break;
  }
  return os.str();
}

// Transfer-register name for integer loads/stores (size-dependent view).
std::string RtName(const Inst& i) {
  // Sub-word accesses use the w view; 8-byte use x; ldrsw/ldrs* follow the
  // instruction's width.
  if (i.msigned || i.msize == 8) return RegName(i.rt, i.width);
  if (i.msize < 8) return RegName(i.rt, i.msize == 4 ? i.width : Width::kW);
  return RegName(i.rt, i.width);
}

std::string InstStr(const AsmStmt& s) {
  const Inst& i = s.inst;
  const Width w = i.width;
  std::ostringstream os;
  os << MnName(i) << " ";
  auto reg = [&](Reg r) { return RegName(r, w); };
  switch (i.mn) {
    case Mn::kAddImm: case Mn::kAddsImm: case Mn::kSubImm: case Mn::kSubsImm:
      os << reg(i.rd) << ", " << reg(i.rn) << ", ";
      if (s.reloc == Reloc::kLo12) {
        os << ":lo12:" << s.target;
      } else {
        os << "#" << i.imm;
      }
      break;
    case Mn::kAndImm: case Mn::kAndsImm: case Mn::kOrrImm: case Mn::kEorImm:
      os << reg(i.rd) << ", " << reg(i.rn) << ", #" << i.imm;
      break;
    case Mn::kAddReg: case Mn::kAddsReg: case Mn::kSubReg: case Mn::kSubsReg:
    case Mn::kAndReg: case Mn::kAndsReg: case Mn::kOrrReg: case Mn::kEorReg:
    case Mn::kBicReg:
      os << reg(i.rd) << ", " << reg(i.rn) << ", " << reg(i.rm);
      if (i.shift_amount != 0) {
        os << ", " << ShiftName(i.shift) << " #" << int{i.shift_amount};
      }
      break;
    case Mn::kAddExt: case Mn::kSubExt:
      os << reg(i.rd) << ", " << reg(i.rn) << ", "
         << RegName(i.rm, ExtendSrcWidth(i.ext)) << ", " << ExtendName(i.ext);
      if (i.shift_amount != 0) os << " #" << int{i.shift_amount};
      break;
    case Mn::kMovz: case Mn::kMovn: case Mn::kMovk:
      os << reg(i.rd) << ", #" << i.imm;
      if (i.shift_amount != 0) os << ", lsl #" << int{i.shift_amount};
      break;
    case Mn::kUbfm: case Mn::kSbfm:
      os << reg(i.rd) << ", " << reg(i.rn) << ", #" << int{i.immr} << ", #"
         << int{i.imms};
      break;
    case Mn::kMadd: case Mn::kMsub:
      os << reg(i.rd) << ", " << reg(i.rn) << ", " << reg(i.rm) << ", "
         << reg(i.ra);
      break;
    case Mn::kSdiv: case Mn::kUdiv: case Mn::kUmulh: case Mn::kSmulh:
      os << reg(i.rd) << ", " << reg(i.rn) << ", " << reg(i.rm);
      break;
    case Mn::kExtr:
      os << reg(i.rd) << ", " << reg(i.rn) << ", " << reg(i.rm) << ", #"
         << int{i.imms};
      break;
    case Mn::kCcmp: case Mn::kCcmpImm: case Mn::kCcmn: case Mn::kCcmnImm: {
      static const char* kCondN[] = {"eq", "ne", "hs", "lo", "mi", "pl",
                                     "vs", "vc", "hi", "ls", "ge", "lt",
                                     "gt", "le", "al"};
      os << reg(i.rn) << ", ";
      if (i.mn == Mn::kCcmpImm || i.mn == Mn::kCcmnImm) {
        os << "#" << i.imm;
      } else {
        os << reg(i.rm);
      }
      os << ", #" << int{i.nzcv} << ", " << kCondN[static_cast<int>(i.cond)];
      break;
    }
    case Mn::kCsel: case Mn::kCsinc: case Mn::kCsinv: case Mn::kCsneg: {
      static const char* kCond[] = {"eq", "ne", "hs", "lo", "mi", "pl",
                                    "vs", "vc", "hi", "ls", "ge", "lt",
                                    "gt", "le", "al"};
      os << reg(i.rd) << ", " << reg(i.rn) << ", " << reg(i.rm) << ", "
         << kCond[static_cast<int>(i.cond)];
      break;
    }
    case Mn::kClz: case Mn::kRbit: case Mn::kRev:
      os << reg(i.rd) << ", " << reg(i.rn);
      break;
    case Mn::kAdr: case Mn::kAdrp:
      os << RegName(i.rd, Width::kX) << ", " << s.target;
      break;
    case Mn::kLdr: case Mn::kStr:
      os << RtName(i) << ", " << MemStr(i);
      break;
    case Mn::kLdp: case Mn::kStp:
      os << reg(i.rt) << ", " << reg(i.rt2) << ", " << MemStr(i);
      break;
    case Mn::kLdxr: case Mn::kLdar: case Mn::kStlr:
      os << reg(i.rt) << ", " << MemStr(i);
      break;
    case Mn::kStxr:
      os << RegName(i.rs, Width::kW) << ", " << reg(i.rt) << ", "
         << MemStr(i);
      break;
    case Mn::kLdrF: case Mn::kStrF:
      os << VRegName(i.vt, i.fsize) << ", " << MemStr(i);
      break;
    case Mn::kB: case Mn::kBl: case Mn::kBCond:
      os << s.target;
      break;
    case Mn::kCbz: case Mn::kCbnz:
      os << reg(i.rt) << ", " << s.target;
      break;
    case Mn::kTbz: case Mn::kTbnz:
      os << RegName(i.rt, i.width) << ", #" << int{i.bit} << ", " << s.target;
      break;
    case Mn::kBr: case Mn::kBlr:
      os << RegName(i.rn, Width::kX);
      break;
    case Mn::kRet:
      if (i.rn != Reg::X(30)) os << RegName(i.rn, Width::kX);
      break;
    case Mn::kFadd: case Mn::kFsub: case Mn::kFmul: case Mn::kFdiv:
    case Mn::kVAdd: case Mn::kVFadd: case Mn::kVFmul:
      os << VRegName(i.vd, i.fsize) << ", " << VRegName(i.vn, i.fsize) << ", "
         << VRegName(i.vm, i.fsize);
      break;
    case Mn::kFsqrt:
      os << VRegName(i.vd, i.fsize) << ", " << VRegName(i.vn, i.fsize);
      break;
    case Mn::kFmadd:
      os << VRegName(i.vd, i.fsize) << ", " << VRegName(i.vn, i.fsize) << ", "
         << VRegName(i.vm, i.fsize) << ", " << VRegName(i.va, i.fsize);
      break;
    case Mn::kFcmp:
      os << VRegName(i.vn, i.fsize) << ", " << VRegName(i.vm, i.fsize);
      break;
    case Mn::kScvtf:
      os << VRegName(i.vd, i.fsize) << ", " << RegName(i.rn, i.width);
      break;
    case Mn::kFcvtzs:
      os << RegName(i.rd, i.width) << ", " << VRegName(i.vn, i.fsize);
      break;
    case Mn::kFmov:
      if (!i.vd.IsNone() && !i.vn.IsNone()) {
        os << VRegName(i.vd, i.fsize) << ", " << VRegName(i.vn, i.fsize);
      } else if (!i.rd.IsNone()) {
        os << RegName(i.rd, i.width) << ", " << VRegName(i.vn, i.fsize);
      } else {
        os << VRegName(i.vd, i.fsize) << ", " << RegName(i.rn, i.width);
      }
      break;
    case Mn::kNop:
      break;
    case Mn::kSvc: case Mn::kBrk:
      os << "#" << i.imm;
      break;
    case Mn::kMrs: case Mn::kMsr:
      os << RegName(i.rt, Width::kX) << ", #" << i.imm;
      break;
  }
  std::string out = os.str();
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string DirectiveStr(const Directive& d) {
  std::ostringstream os;
  switch (d.kind) {
    case Directive::Kind::kSection:
      switch (d.section) {
        case Section::kText: os << ".text"; break;
        case Section::kData: os << ".data"; break;
        case Section::kRodata: os << ".section .rodata"; break;
        case Section::kBss: os << ".bss"; break;
      }
      break;
    case Directive::Kind::kGlobl:
      os << ".globl " << d.text;
      break;
    case Directive::Kind::kBalign:
      os << ".balign " << d.values.at(0);
      break;
    case Directive::Kind::kByte:
    case Directive::Kind::kWord:
    case Directive::Kind::kQuad: {
      os << (d.kind == Directive::Kind::kByte
                 ? ".byte "
                 : d.kind == Directive::Kind::kWord ? ".word " : ".quad ");
      for (size_t k = 0; k < d.values.size(); ++k) {
        if (k) os << ", ";
        if (!d.syms[k].empty()) {
          os << d.syms[k];
        } else {
          os << d.values[k];
        }
      }
      break;
    }
    case Directive::Kind::kAsciz: {
      os << ".asciz \"";
      for (char c : d.text) {
        switch (c) {
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\0': os << "\\0"; break;
          case '\\': os << "\\\\"; break;
          case '"': os << "\\\""; break;
          default: os << c;
        }
      }
      os << "\"";
      break;
    }
    case Directive::Kind::kZero:
      os << ".zero " << d.values.at(0);
      break;
  }
  return os.str();
}

}  // namespace

std::string PrintStmt(const AsmStmt& s) {
  switch (s.kind) {
    case AsmStmt::Kind::kLabel:
      return s.label + ":";
    case AsmStmt::Kind::kDirective:
      return DirectiveStr(s.dir);
    case AsmStmt::Kind::kRtcall:
      return "rtcall #" + std::to_string(s.inst.imm);
    case AsmStmt::Kind::kHostcall:
      return "hostcall #" + std::to_string(s.inst.imm);
    case AsmStmt::Kind::kInst:
      return "\t" + InstStr(s);
  }
  return "";
}

std::string Print(const AsmFile& file) {
  std::string out;
  for (const auto& s : file.stmts) {
    out += PrintStmt(s);
    out += "\n";
  }
  return out;
}

}  // namespace lfi::asmtext
