// Assembly printer: AsmFile -> GNU assembly text.
//
// Together with the parser this gives the same pipeline shape as the paper's
// tool: consume compiler-emitted `.s` text, transform, and re-emit text for
// the assembler. Printing then re-parsing must be the identity on the AST
// (tested as a property).
#ifndef LFI_ASMTEXT_PRINTER_H_
#define LFI_ASMTEXT_PRINTER_H_

#include <string>

#include "asmtext/ast.h"

namespace lfi::asmtext {

// Renders one statement (no trailing newline).
std::string PrintStmt(const AsmStmt& stmt);

// Renders a whole file.
std::string Print(const AsmFile& file);

}  // namespace lfi::asmtext

#endif  // LFI_ASMTEXT_PRINTER_H_
