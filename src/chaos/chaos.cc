#include "chaos/chaos.h"

namespace lfi::chaos {

namespace {

constexpr uint64_t kEintr = static_cast<uint64_t>(-4);
constexpr uint64_t kEnomem = static_cast<uint64_t>(-12);

// Domain separators so the per-pid streams for faults, syscalls, and
// victim selection are independent draws from the same seed.
constexpr uint64_t kVictimDomain = 0x76696374;   // "vict"
constexpr uint64_t kFaultDomain = 0x666c74;      // "flt"
constexpr uint64_t kSchedDomain = 0x73636864;    // "schd"

}  // namespace

ChaosProfile ProfileByName(const std::string& name) {
  ChaosProfile p;
  p.name = name;
  if (name == "none" || name.empty()) {
    p.name = "none";
  } else if (name == "memfault") {
    p.cpu_faults = true;
  } else if (name == "syscall") {
    p.syscall_errors = true;
    p.short_reads = true;
  } else if (name == "sched") {
    p.sched_perturb = true;
  } else if (name == "storm") {
    p.cpu_faults = true;
    p.syscall_errors = true;
    p.short_reads = true;
    p.sched_perturb = true;
    p.victim_percent = 60;
    p.min_fault_gap = 500;
    p.max_fault_gap = 8000;
    p.syscall_error_percent = 35;
  } else {
    p.name = "";  // unknown; caller reports usage error
  }
  return p;
}

ChaosEngine::ChaosEngine(uint64_t seed, ChaosProfile profile)
    : seed_(seed),
      profile_(std::move(profile)),
      sched_rng_(fuzz::DeriveSeed(seed, kSchedDomain)) {}

ChaosEngine::PidPlan& ChaosEngine::Plan(int pid) {
  auto it = plans_.find(pid);
  if (it != plans_.end()) return it->second;
  PidPlan plan;
  const auto upid = static_cast<uint64_t>(pid);
  if (!pinned_victims_) {
    fuzz::Rng pick(fuzz::DeriveSeed(seed_, kVictimDomain ^ (upid << 8)));
    plan.victim = pick.Chance(profile_.victim_percent);
  }
  plan.rng = fuzz::Rng(fuzz::DeriveSeed(seed_, kFaultDomain ^ (upid << 8)));
  plan.next_fault_at =
      plan.rng.Range(profile_.min_fault_gap, profile_.max_fault_gap);
  return plans_.emplace(pid, plan).first->second;
}

bool ChaosEngine::IsVictim(int pid) { return Plan(pid).victim; }

void ChaosEngine::PinVictims() {
  if (!pinned_victims_) {
    // First pin wins: drop any auto-selected victims already planned.
    pinned_victims_ = true;
    for (auto& [id, plan] : plans_) plan.victim = false;
  }
}

void ChaosEngine::MarkVictim(int pid) {
  PinVictims();
  Plan(pid).victim = true;
}

void ChaosEngine::UnmarkVictim(int pid) {
  if (!pinned_victims_) return;
  auto it = plans_.find(pid);
  if (it != plans_.end()) it->second.victim = false;
}

bool ChaosEngine::OnInst(const arch::Inst& inst, uint64_t pc,
                         const emu::CpuState& after,
                         std::span<const emu::AccessRecord> accesses,
                         bool faulted) {
  (void)inst;
  (void)after;
  (void)accesses;
  if (faulted) return true;  // a real fault is already on its way
  PidPlan& plan = Plan(current_pid_);
  ++plan.retired;
  if (!plan.victim || !profile_.cpu_faults ||
      plan.retired < plan.next_fault_at) {
    return true;
  }
  plan.next_fault_at =
      plan.retired +
      plan.rng.Range(profile_.min_fault_gap, profile_.max_fault_gap);
  static constexpr emu::CpuFault::Kind kKinds[] = {
      emu::CpuFault::Kind::kMemory, emu::CpuFault::Kind::kDecode,
      emu::CpuFault::Kind::kIllegal, emu::CpuFault::Kind::kPcAlign};
  pending_ = emu::CpuFault{};
  pending_.kind = plan.rng.Pick(kKinds);
  pending_.pc = pc;
  pending_.detail = "chaos-injected " + std::string([&] {
    switch (pending_.kind) {
      case emu::CpuFault::Kind::kMemory: return "data";
      case emu::CpuFault::Kind::kDecode: return "decode";
      case emu::CpuFault::Kind::kIllegal: return "illegal";
      case emu::CpuFault::Kind::kPcAlign: return "pc-align";
      default: return "fault";
    }
  }());
  fault_pending_ = true;
  return false;
}

bool ChaosEngine::TakePendingFault(emu::CpuFault* out) {
  if (!fault_pending_) return false;
  fault_pending_ = false;
  *out = pending_;
  return true;
}

bool ChaosEngine::InjectSyscallError(int pid, int call, uint64_t* err) {
  if (!profile_.syscall_errors) return false;
  PidPlan& plan = Plan(pid);
  if (!plan.victim) return false;
  (void)call;
  if (!plan.rng.Chance(profile_.syscall_error_percent)) return false;
  *err = plan.rng.Chance(50) ? kEnomem : kEintr;
  return true;
}

uint64_t ChaosEngine::ClampIoLen(int pid, uint64_t len) {
  if (!profile_.short_reads || len <= 1) return len;
  PidPlan& plan = Plan(pid);
  if (!plan.victim || !plan.rng.Chance(30)) return len;
  return plan.rng.Range(1, len - 1);
}

bool ChaosEngine::PerturbSchedule() {
  return profile_.sched_perturb && sched_rng_.Chance(25);
}

uint64_t ChaosEngine::PerturbTimeslice(uint64_t slice) {
  if (!profile_.sched_perturb || slice < 8) return slice;
  return sched_rng_.Range(slice / 4, slice);
}

}  // namespace lfi::chaos
