// Deterministic fault injection ("chaos") for the LFI runtime.
//
// The engine perturbs a run in three ways, all driven by one seed so a
// failing run replays bit-for-bit (the same replay discipline as the
// lfi-fuzz artifacts):
//
//   - cpu faults: at chosen retirement counts of a victim sandbox, the
//     engine stops the machine through the ExecHook and hands the runtime
//     a synthesized CpuFault (memory/decode/illegal/pc-align, rotating),
//     which flows through the supervisor exactly like a real one;
//   - syscall errors: injectable runtime calls on a victim return ENOMEM
//     or EINTR instead of executing, and reads are clamped short;
//   - scheduler perturbations: the ready queue is rotated and timeslices
//     jittered, stressing preemption points.
//
// Determinism: per-pid decision streams are derived with fuzz::DeriveSeed
// (so an injection into pid 3 never shifts pid 4's stream), and victim
// selection depends only on (seed, pid). Un-injected sandboxes therefore
// retire exactly the instruction stream of a chaos-free run; only their
// cycle timestamps move. The soak test and the chaos-soak CI job assert
// this by byte-comparing trace files across runs.
//
// Attach with Runtime::set_chaos (surfaced as lfi-run --chaos-seed /
// --chaos-profile). The engine must outlive the runtime or be detached.
#ifndef LFI_CHAOS_CHAOS_H_
#define LFI_CHAOS_CHAOS_H_

#include <cstdint>
#include <map>
#include <string>

#include "emu/machine.h"
#include "fuzz/rng.h"

namespace lfi::chaos {

// What a profile injects. Profiles are named so CI invocations stay
// readable; ProfileByName understands "none", "memfault", "syscall",
// "sched", and "storm" (everything at once).
struct ChaosProfile {
  std::string name = "none";
  bool cpu_faults = false;
  bool syscall_errors = false;
  bool short_reads = false;
  bool sched_perturb = false;
  uint32_t victim_percent = 50;  // share of pids auto-selected as victims
  uint64_t min_fault_gap = 2000;   // retired insts between cpu faults
  uint64_t max_fault_gap = 20000;
  uint32_t syscall_error_percent = 20;  // per injectable call
};

ChaosProfile ProfileByName(const std::string& name);

class ChaosEngine final : public emu::ExecHook {
 public:
  ChaosEngine(uint64_t seed, ChaosProfile profile);

  uint64_t seed() const { return seed_; }
  const ChaosProfile& profile() const { return profile_; }

  // True if (seed, pid) selects this sandbox for injection. When victims
  // were pinned with MarkVictim, only those pids are victims.
  bool IsVictim(int pid);

  // Pins the victim set explicitly (tests and the containment matrix);
  // auto-selection is disabled once any pid is marked.
  void MarkVictim(int pid);

  // Switches to an explicitly pinned (initially empty) victim set without
  // naming a pid. The serving layer calls this up front so that only the
  // pids it later MarkVictim()s — sandboxes bound to storm-scoped tenants
  // — are ever injected into.
  void PinVictims();

  // Removes pid from the pinned victim set (no-op when unpinned or not a
  // victim). Lets victimhood track a *binding* rather than a pid: a
  // recycled sandbox that served a storm tenant is unmarked before it can
  // be handed to a healthy tenant.
  void UnmarkVictim(int pid);

  // Whether the runtime needs to attach the per-instruction hook (only
  // cpu-fault injection pays the hook cost).
  bool WantsExecHook() const { return profile_.cpu_faults; }

  // Runtime integration ----------------------------------------------
  // Called before each timeslice with the pid about to run.
  void BeginSlice(int pid) { current_pid_ = pid; }

  // ExecHook: counts retirements of the current pid and requests a stop
  // at each planned injection point.
  bool OnInst(const arch::Inst& inst, uint64_t pc, const emu::CpuState& after,
              std::span<const emu::AccessRecord> accesses,
              bool faulted) override;

  // After a kHookStop, hands over the synthesized fault exactly once.
  bool TakePendingFault(emu::CpuFault* out);

  // Syscall-error injection: true -> the dispatcher should return *err
  // without executing the call. `call` is the runtime-call number.
  bool InjectSyscallError(int pid, int call, uint64_t* err);

  // Short reads: possibly clamps a read length (never to 0 — a zero-length
  // read means EOF to the sandbox, which is a semantic change, not noise).
  uint64_t ClampIoLen(int pid, uint64_t len);

  // Scheduler perturbation: rotate the ready queue before this pick?
  bool PerturbSchedule();
  // Jittered preemption quantum in [slice/4, slice].
  uint64_t PerturbTimeslice(uint64_t slice);

 private:
  struct PidPlan {
    bool victim = false;
    fuzz::Rng rng{0};
    uint64_t retired = 0;
    uint64_t next_fault_at = 0;
  };
  PidPlan& Plan(int pid);

  uint64_t seed_;
  ChaosProfile profile_;
  fuzz::Rng sched_rng_;
  std::map<int, PidPlan> plans_;
  bool pinned_victims_ = false;
  int current_pid_ = 0;
  bool fault_pending_ = false;
  emu::CpuFault pending_;
};

}  // namespace lfi::chaos

#endif  // LFI_CHAOS_CHAOS_H_
