#include "elf/elf.h"

#include <cstring>

namespace lfi::elf {

namespace {

// ELF constants we need (no <elf.h> dependency so the format is explicit).
constexpr uint8_t kMagic[4] = {0x7f, 'E', 'L', 'F'};
constexpr uint8_t kClass64 = 2;
constexpr uint8_t kDataLE = 1;
constexpr uint16_t kTypeExec = 2;
constexpr uint16_t kMachineAarch64 = 183;
constexpr uint32_t kPtLoad = 1;
constexpr uint32_t kPfX = 1, kPfW = 2, kPfR = 4;
constexpr size_t kEhdrSize = 64;
constexpr size_t kPhdrSize = 56;

void Put16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(v & 0xff);
  out->push_back(v >> 8);
}
void Put32(std::vector<uint8_t>* out, uint32_t v) {
  for (int k = 0; k < 4; ++k) out->push_back((v >> (8 * k)) & 0xff);
}
void Put64(std::vector<uint8_t>* out, uint64_t v) {
  for (int k = 0; k < 8; ++k) out->push_back((v >> (8 * k)) & 0xff);
}

uint16_t Get16(std::span<const uint8_t> b, size_t off) {
  return static_cast<uint16_t>(b[off] | (b[off + 1] << 8));
}
uint32_t Get32(std::span<const uint8_t> b, size_t off) {
  return uint32_t{b[off]} | (uint32_t{b[off + 1]} << 8) |
         (uint32_t{b[off + 2]} << 16) | (uint32_t{b[off + 3]} << 24);
}
uint64_t Get64(std::span<const uint8_t> b, size_t off) {
  uint64_t v = 0;
  for (int k = 0; k < 8; ++k) v |= uint64_t{b[off + k]} << (8 * k);
  return v;
}

}  // namespace

std::vector<uint8_t> Write(const ElfImage& image) {
  const size_t phnum = image.segments.size();
  const size_t header_bytes = kEhdrSize + phnum * kPhdrSize;

  std::vector<uint8_t> out;
  // ELF header.
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kClass64);
  out.push_back(kDataLE);
  out.push_back(1);  // EV_CURRENT
  while (out.size() < 16) out.push_back(0);
  Put16(&out, kTypeExec);
  Put16(&out, kMachineAarch64);
  Put32(&out, 1);                 // version
  Put64(&out, image.entry);       // e_entry
  Put64(&out, kEhdrSize);         // e_phoff
  Put64(&out, 0);                 // e_shoff
  Put32(&out, 0);                 // e_flags
  Put16(&out, kEhdrSize);         // e_ehsize
  Put16(&out, kPhdrSize);         // e_phentsize
  Put16(&out, static_cast<uint16_t>(phnum));
  Put16(&out, 0);                 // e_shentsize
  Put16(&out, 0);                 // e_shnum
  Put16(&out, 0);                 // e_shstrndx

  // Program headers; file contents follow the header block contiguously.
  uint64_t offset = header_bytes;
  for (const auto& seg : image.segments) {
    Put32(&out, kPtLoad);
    uint32_t flags = 0;
    if (seg.read) flags |= kPfR;
    if (seg.write) flags |= kPfW;
    if (seg.exec) flags |= kPfX;
    Put32(&out, flags);
    Put64(&out, offset);            // p_offset
    Put64(&out, seg.vaddr);         // p_vaddr
    Put64(&out, seg.vaddr);         // p_paddr
    Put64(&out, seg.data.size());   // p_filesz
    Put64(&out, seg.memsz);         // p_memsz
    Put64(&out, 16384);             // p_align
    offset += seg.data.size();
  }
  for (const auto& seg : image.segments) {
    out.insert(out.end(), seg.data.begin(), seg.data.end());
  }
  return out;
}

Result<ElfImage> Read(std::span<const uint8_t> bytes) {
  if (bytes.size() < kEhdrSize) return Error{"elf: truncated header"};
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Error{"elf: bad magic"};
  }
  if (bytes[4] != kClass64 || bytes[5] != kDataLE) {
    return Error{"elf: not ELF64 little-endian"};
  }
  if (Get16(bytes, 18) != kMachineAarch64) {
    return Error{"elf: not an aarch64 executable"};
  }
  ElfImage img;
  img.entry = Get64(bytes, 24);
  const uint64_t phoff = Get64(bytes, 32);
  const uint16_t phentsize = Get16(bytes, 54);
  const uint16_t phnum = Get16(bytes, 56);
  if (phentsize != kPhdrSize) return Error{"elf: bad phentsize"};
  if (phnum > 64) return Error{"elf: too many program headers"};
  for (uint16_t k = 0; k < phnum; ++k) {
    const uint64_t off = phoff + uint64_t{k} * kPhdrSize;
    if (off + kPhdrSize > bytes.size()) {
      return Error{"elf: program header out of bounds"};
    }
    if (Get32(bytes, off) != kPtLoad) continue;
    Segment seg;
    const uint32_t flags = Get32(bytes, off + 4);
    seg.read = flags & kPfR;
    seg.write = flags & kPfW;
    seg.exec = flags & kPfX;
    const uint64_t foff = Get64(bytes, off + 8);
    seg.vaddr = Get64(bytes, off + 16);
    const uint64_t filesz = Get64(bytes, off + 32);
    seg.memsz = Get64(bytes, off + 40);
    if (filesz > bytes.size() || foff > bytes.size() - filesz) {
      return Error{"elf: segment data out of bounds"};
    }
    if (seg.memsz < filesz) return Error{"elf: memsz < filesz"};
    if (seg.memsz > (uint64_t{1} << 32)) {
      return Error{"elf: segment larger than a sandbox"};
    }
    seg.data.assign(bytes.begin() + static_cast<ptrdiff_t>(foff),
                    bytes.begin() + static_cast<ptrdiff_t>(foff + filesz));
    img.segments.push_back(std::move(seg));
  }
  return img;
}

ElfImage FromAssembled(const asmtext::Image& a) {
  ElfImage img;
  img.entry = a.entry;
  if (!a.text.empty()) {
    img.segments.push_back(
        {a.text_addr, a.text, a.text.size(), true, false, true});
  }
  if (!a.rodata.empty()) {
    img.segments.push_back(
        {a.rodata_addr, a.rodata, a.rodata.size(), true, false, false});
  }
  if (!a.data.empty() || a.bss_size > 0) {
    Segment d;
    d.vaddr = a.data.empty() ? a.bss_addr : a.data_addr;
    d.data = a.data;
    // data and bss are contiguous (bss_addr >= data end), so one RW
    // segment spans both.
    const uint64_t end = a.bss_addr + a.bss_size;
    d.memsz = end > d.vaddr ? end - d.vaddr : d.data.size();
    if (d.memsz < d.data.size()) d.memsz = d.data.size();
    d.write = true;
    img.segments.push_back(std::move(d));
  }
  return img;
}

}  // namespace lfi::elf
