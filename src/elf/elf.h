// Minimal ELF64 (little-endian, AArch64) writer and reader.
//
// LFI executables travel as ordinary ELF files: the runtime's loader reads
// the program headers, verifies the executable segment with the static
// verifier, and maps each segment into the sandbox slot (Section 5.3).
// Virtual addresses in these files are sandbox-relative.
#ifndef LFI_ELF_ELF_H_
#define LFI_ELF_ELF_H_

#include <cstdint>
#include <span>
#include <vector>

#include "asmtext/assemble.h"
#include "support/result.h"

namespace lfi::elf {

// One loadable segment.
struct Segment {
  uint64_t vaddr = 0;
  std::vector<uint8_t> data;  // file contents
  uint64_t memsz = 0;         // >= data.size(); excess is zero-filled (bss)
  bool read = true, write = false, exec = false;
};

// A parsed executable.
struct ElfImage {
  uint64_t entry = 0;
  std::vector<Segment> segments;
};

// Serializes an image to ELF64 bytes.
std::vector<uint8_t> Write(const ElfImage& image);

// Parses an ELF64 executable. Untrusted input: every offset is
// bounds-checked; never throws.
Result<ElfImage> Read(std::span<const uint8_t> bytes);

// Converts an assembled program into loadable segments: text (R+X),
// rodata (R), data (RW), bss (RW, zero-filled).
ElfImage FromAssembled(const asmtext::Image& img);

}  // namespace lfi::elf

#endif  // LFI_ELF_ELF_H_
