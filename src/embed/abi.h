// Guest-side ABI of the typed embedding API (docs/EMBEDDING.md).
//
// An embeddable guest module is an ordinary LFI sandbox program whose
// entry point, instead of running a main program, announces an *export
// table* to the host and parks:
//
//   _start:  adr x0, __lfi_exports ; rtcall #20   (kEmbedReady)
//
// The host (lfi::embed::Sandbox) parses the table, snapshots the
// post-ready state as the sandbox's baseline, and from then on drives
// individual exported functions directly: it writes the AAPCS64 argument
// registers, sets pc to the function and x30 to the module's *return
// stub*, and runs. The stub moves the per-call cookie the host planted in
// callee-saved x19 into x9 and issues rtcall #19 (kCallRet); the runtime
// compares x9 against the expected cookie and kills the sandbox on a
// mismatch, so a guest cannot forge a return frame it was never given
// (the same fail-closed posture sigreturn takes with its frame magic).
//
// Export-table layout (8-byte little-endian words, in guest memory):
//
//   +0   magic       kExportMagic ("LFIEMBD1")
//   +8   ret_stub    address of the return stub
//   +16  count       number of exports (bounded by kMaxExports)
//   +24  name[0]     address of a NUL-terminated export name
//   +32  fn[0]       address of the exported function
//   ...  (name, fn) pairs, `count` of them
//
// All addresses are canonicalized by the host to base | low32 before use,
// so a hostile table cannot point outside the slot.
#ifndef LFI_EMBED_ABI_H_
#define LFI_EMBED_ABI_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lfi::embed {

// ".quad kExportMagic" == the bytes "LFIEMBD1" in guest memory.
inline constexpr uint64_t kExportMagic = 0x3144424D4549464CULL;

// Fail-closed bounds on table parsing (a corrupt count must not make the
// host walk the whole slot).
inline constexpr uint64_t kMaxExports = 256;
inline constexpr uint64_t kMaxExportNameLen = 64;

// One exported function, for GuestModuleSource.
struct GuestExport {
  std::string name;   // name the host looks up (Sandbox::Fn)
  std::string label;  // assembly label of the function
};

// Assembly prelude every embeddable module starts with: the _start
// announce sequence and the return stub. Must be the first text in the
// module (the ELF entry point is the start of .text). The `rtcall #20`
// never returns control here while embedded; if the module is ever run
// under the normal scheduler instead, the runtime kills it at that rtcall
// (embed transitions are invalid outside an embedded call).
inline std::string GuestModulePrelude() {
  return R"(
  adr x0, __lfi_exports
  rtcall #20
__lfi_ret_stub:
  mov x9, x19
  rtcall #19
  b __lfi_ret_stub
)";
}

// Export-table data section for `exports`. Emits the table plus the name
// strings; function labels must be defined by the module body.
inline std::string GuestExportTable(const std::vector<GuestExport>& exports) {
  std::string s = "\n.rodata\n.balign 16\n__lfi_exports:\n";
  s += "  .quad 0x3144424D4549464C\n";  // kExportMagic
  s += "  .quad __lfi_ret_stub\n";
  s += "  .quad " + std::to_string(exports.size()) + "\n";
  for (size_t i = 0; i < exports.size(); ++i) {
    s += "  .quad __lfi_name_" + std::to_string(i) + "\n";
    s += "  .quad " + exports[i].label + "\n";
  }
  for (size_t i = 0; i < exports.size(); ++i) {
    s += "__lfi_name_" + std::to_string(i) + ":\n  .asciz \"" +
         exports[i].name + "\"\n";
  }
  return s;
}

// Convenience: full module source = prelude + body (function definitions,
// starting in .text) + export table.
inline std::string GuestModuleSource(const std::vector<GuestExport>& exports,
                                     const std::string& body) {
  return GuestModulePrelude() + body + GuestExportTable(exports);
}

}  // namespace lfi::embed

#endif  // LFI_EMBED_ABI_H_
