#include "embed/embed.h"

#include <array>
#include <cstring>

#include "runtime/layout.h"
#include "trace/trace.h"

namespace lfi::embed {

namespace {

using runtime::kProgramEnd;
using runtime::kProgramStart;
using EmbedStop = runtime::Runtime::EmbedStop;
using EmbedEnter = runtime::Runtime::EmbedEnter;

constexpr uint64_t kLow32 = 0xffffffffu;

uint64_t AlignUp16(uint64_t v) { return (v + 15) & ~uint64_t{15}; }

Result<uint64_t> ReadGuestU64(runtime::Runtime* rt, uint64_t addr) {
  std::array<uint8_t, 8> b{};
  auto st = rt->space().HostRead(addr, b);
  if (!st.ok()) return Error{st.error()};
  uint64_t v = 0;
  std::memcpy(&v, b.data(), 8);
  return v;
}

}  // namespace

const char* ErrName(Err e) {
  switch (e) {
    case Err::kNone: return "ok";
    case Err::kCreateFailed: return "create-failed";
    case Err::kNoSuchFunction: return "no-such-function";
    case Err::kTooManyArgs: return "too-many-args";
    case Err::kBufferTooLarge: return "buffer-too-large";
    case Err::kBufferOutOfRange: return "buffer-out-of-range";
    case Err::kBadGuestPointer: return "bad-guest-pointer";
    case Err::kBadCallbackIndex: return "bad-callback-index";
    case Err::kForgedReturn: return "forged-return";
    case Err::kGuestFault: return "guest-fault";
    case Err::kGuestExited: return "guest-exited";
    case Err::kGuestBlocked: return "guest-blocked";
    case Err::kFuelExhausted: return "fuel-exhausted";
    case Err::kSandboxDead: return "sandbox-dead";
    case Err::kReentry: return "reentry";
    case Err::kProtocol: return "protocol";
  }
  return "?";
}

// ---- Shm ----

Status Shm::Write(uint64_t off, std::span<const uint8_t> data) {
  if (rt_ == nullptr) return Status::Fail("shm: empty region");
  if (off > len_ || data.size() > len_ - off) {
    return Status::Fail("shm write: range outside the region");
  }
  rt_->ChargeEmbedCopy(data.size());
  return rt_->space().HostWrite(guest_addr_ + off, data);
}

Status Shm::Read(uint64_t off, std::span<uint8_t> out) const {
  if (rt_ == nullptr) return Status::Fail("shm: empty region");
  if (off > len_ || out.size() > len_ - off) {
    return Status::Fail("shm read: range outside the region");
  }
  rt_->ChargeEmbedCopy(out.size());
  return rt_->space().HostRead(guest_addr_ + off, out);
}

// ---- Lifecycle ----

Result<std::unique_ptr<Sandbox>> Sandbox::Create(
    runtime::Runtime& rt, std::span<const uint8_t> elf_bytes, Options opts) {
  auto pid = rt.Load(elf_bytes);
  if (!pid.ok()) return Error{"embed create: " + pid.error()};
  std::unique_ptr<Sandbox> sb(new Sandbox(rt, opts));
  sb->pid_ = *pid;
  runtime::Proc* p = rt.proc(*pid);
  sb->base_ = p->base;
  auto st = rt.BeginEmbed(*pid);
  if (!st.ok()) return Error{"embed create: " + st.error()};
  EmbedStop stop =
      rt.RunEmbedded(*pid, p->cpu, 0, opts.init_fuel, EmbedEnter::kInit);
  if (stop.kind != EmbedStop::Kind::kReady) {
    rt.KillEmbedded(*pid, "module failed embed init");
    return Error{"embed create: module never reached embed-ready (" +
                 stop.detail + ")"};
  }
  auto pst = sb->ParseExports(sb->base_ | (stop.x0 & kLow32));
  if (!pst.ok()) {
    rt.KillEmbedded(*pid, pst.error());
    return Error{"embed create: " + pst.error()};
  }
  sb->ready_cpu_ = p->cpu;
  auto snap = rt.CaptureSnapshot(*pid);
  if (!snap.ok()) return Error{"embed create: " + snap.error()};
  sb->baseline_ =
      std::make_shared<snapshot::Snapshot>(*std::move(snap));
  rt.set_restart_snapshot(*pid, sb->baseline_);
  return sb;
}

Result<std::unique_ptr<Sandbox>> Sandbox::CreateFrom(const Sandbox& other) {
  if (other.baseline_ == nullptr) {
    return Error{"embed create-from: source has no baseline"};
  }
  runtime::Runtime& rt = *other.rt_;
  auto pid = rt.SpawnFromSnapshot(other.baseline_, /*start=*/false);
  if (!pid.ok()) return Error{"embed create-from: " + pid.error()};
  std::unique_ptr<Sandbox> sb(new Sandbox(rt, other.opts_));
  sb->pid_ = *pid;
  runtime::Proc* p = rt.proc(*pid);
  sb->base_ = p->base;
  auto st = rt.BeginEmbed(*pid);
  if (!st.ok()) return Error{"embed create-from: " + st.error()};
  // Exports are slot offsets, so the table carries over verbatim; only
  // the register template needs the new slot's base (SpawnFromSnapshot
  // already rebased it).
  sb->ready_cpu_ = p->cpu;
  sb->ret_stub_ = other.ret_stub_;
  sb->exports_ = other.exports_;
  sb->baseline_ = other.baseline_;
  return sb;
}

Status Sandbox::ParseExports(uint64_t table) {
  const uint64_t off = table & kLow32;
  if (off < kProgramStart || off + 24 > kProgramEnd) {
    return Status::Fail("export table outside the program region");
  }
  auto magic = ReadGuestU64(rt_, table);
  if (!magic.ok()) return Status::Fail("unreadable export table");
  if (*magic != kExportMagic) {
    return Status::Fail("bad export-table magic");
  }
  auto stub = ReadGuestU64(rt_, table + 8);
  auto count = ReadGuestU64(rt_, table + 16);
  if (!stub.ok() || !count.ok()) {
    return Status::Fail("unreadable export table");
  }
  if (*count > kMaxExports) {
    return Status::Fail("export count out of bounds");
  }
  const uint64_t stub_off = *stub & kLow32;
  if (stub_off < kProgramStart || stub_off >= kProgramEnd) {
    return Status::Fail("return stub outside the program region");
  }
  ret_stub_ = static_cast<uint32_t>(stub_off);
  exports_.clear();
  for (uint64_t i = 0; i < *count; ++i) {
    auto name_ptr = ReadGuestU64(rt_, table + 24 + 16 * i);
    auto fn_ptr = ReadGuestU64(rt_, table + 32 + 16 * i);
    if (!name_ptr.ok() || !fn_ptr.ok()) {
      return Status::Fail("unreadable export entry");
    }
    const uint64_t fn_off = *fn_ptr & kLow32;
    if (fn_off < kProgramStart || fn_off >= kProgramEnd) {
      return Status::Fail("export '" + std::to_string(i) +
                          "' outside the program region");
    }
    std::string name;
    uint64_t na = base_ | (*name_ptr & kLow32);
    for (uint64_t k = 0; k < kMaxExportNameLen; ++k) {
      std::array<uint8_t, 1> c{};
      if (!rt_->space().HostRead(na + k, c).ok()) {
        return Status::Fail("unreadable export name");
      }
      if (c[0] == 0) break;
      name.push_back(static_cast<char>(c[0]));
      if (k + 1 == kMaxExportNameLen) {
        return Status::Fail("export name too long");
      }
    }
    if (name.empty()) return Status::Fail("empty export name");
    exports_.emplace_back(std::move(name), static_cast<uint32_t>(fn_off));
  }
  return Status::Ok();
}

bool Sandbox::alive() const {
  const runtime::Proc* p = rt_->proc(pid_);
  return p != nullptr && p->state == runtime::ProcState::kReady;
}

std::vector<std::string> Sandbox::Exports() const {
  std::vector<std::string> out;
  out.reserve(exports_.size());
  for (const auto& [name, off] : exports_) out.push_back(name);
  return out;
}

Result<uint64_t> Sandbox::Fn(const std::string& name) const {
  for (const auto& [n, off] : exports_) {
    if (n == name) return base_ | off;
  }
  return Error{"no export named '" + name + "'"};
}

Status Sandbox::Restart() {
  if (depth_ != 0) {
    return Status::Fail("restart: embedded calls still in flight");
  }
  auto st = rt_->Recycle(pid_);
  if (!st.ok()) return st;
  rt_->set_retain_on_exit(pid_, true);
  ready_cpu_ = rt_->proc(pid_)->cpu;
  suspended_.clear();
  return Status::Ok();
}

Result<Shm> Sandbox::MapShared(uint64_t len) {
  if (!alive()) return Error{"map-shared: sandbox is dead"};
  auto addr = rt_->GuestAlloc(pid_, len);
  if (!addr.ok()) return Error{addr.error()};
  return Shm(rt_, *addr, len);
}

Status Sandbox::ReadGuest(uint64_t addr, std::span<uint8_t> out) const {
  const uint64_t off = addr & kLow32;
  if (off < kProgramStart || out.size() > kProgramEnd - off) {
    return Status::Fail("read-guest: range outside the program region");
  }
  return rt_->space().HostRead(base_ | off, out);
}

Status Sandbox::WriteGuest(uint64_t addr, std::span<const uint8_t> data) {
  const uint64_t off = addr & kLow32;
  if (off < kProgramStart || data.size() > kProgramEnd - off) {
    return Status::Fail("write-guest: range outside the program region");
  }
  return rt_->space().HostWrite(base_ | off, data);
}

// ---- Calls ----

void Sandbox::FailClosed(detail::RawOutcome& o, Err err,
                         const std::string& why) {
  rt_->KillEmbedded(pid_, why);
  o.err = err;
  o.detail = why;
}

bool Sandbox::DispatchHostcall(const EmbedStop& stop, detail::RawOutcome& o,
                               emu::CpuState* resume) {
  auto it = callbacks_.find(stop.hostcall_index);
  if (it == callbacks_.end()) {
    FailClosed(o, Err::kBadCallbackIndex,
               "hostcall to unbound slot " +
                   std::to_string(stop.hostcall_index));
    return false;
  }
  if (trace::TraceSink* sink = rt_->trace_sink()) {
    sink->metrics(pid_).Add(trace::Counter::kEmbedCallbacks);
    sink->EmitInstant(trace::EventKind::kEmbedCallback, pid_, rt_->Cycles(),
                      static_cast<uint64_t>(stop.hostcall_index),
                      static_cast<uint64_t>(depth_));
  }
  // The saved context is this nesting level's resume point; nested calls
  // made by the callback carve their stack below its sp.
  suspended_.push_back(stop.saved);
  detail::CallbackResult r = it->second(stop.saved);
  suspended_.pop_back();
  *resume = stop.saved;
  if (r.is_float) {
    resume->vr[0].lo = r.v0;
  } else {
    resume->x[0] = r.x0;
  }
  return true;
}

detail::RawOutcome Sandbox::RawCall(uint64_t fn_addr,
                                    std::vector<detail::RawArg>& args,
                                    detail::RetKind ret_kind) {
  trace::TraceSink* sink = rt_->trace_sink();
  const uint64_t t0 = rt_->Cycles();
  if (sink != nullptr) {
    sink->metrics(pid_).Add(trace::Counter::kEmbedCalls);
  }
  detail::RawOutcome o = RawCallInner(fn_addr, args, ret_kind);
  if (sink != nullptr) {
    sink->Emit(trace::EventKind::kEmbedCall, pid_, t0, rt_->Cycles(),
               fn_addr & kLow32, static_cast<uint64_t>(o.err));
  }
  return o;
}

detail::RawOutcome Sandbox::RawCallInner(uint64_t fn_addr,
                                         std::vector<detail::RawArg>& args,
                                         detail::RetKind ret_kind) {
  detail::RawOutcome o;
  if (!alive()) {
    o.err = Err::kSandboxDead;
    o.detail = "call on a dead sandbox (restart it first)";
    return o;
  }
  if (depth_ >= opts_.max_depth) {
    o.err = Err::kReentry;
    o.detail = "nested-call depth would exceed max_depth (" +
               std::to_string(opts_.max_depth) + ")";
    return o;
  }

  emu::CpuState cpu = ready_cpu_;
  // Depth-0 calls own the whole guest stack; nested calls carve below the
  // innermost suspended frame, with a 128-byte red zone for it.
  uint64_t sp_off =
      (depth_ == 0 ? ready_cpu_.sp : suspended_.back().sp - 128) & kLow32;
  sp_off &= ~uint64_t{15};

  // Marshal (AAPCS64): integers and pointers walk x0..x7, floats walk
  // v0..v7, overflow integers spill to 8-byte stack slots. Buffers are
  // carved from the stack scratch first so their pointers are plain
  // integer arguments.
  int ngrn = 0, nsrn = 0;
  std::vector<uint64_t> spill;
  std::vector<std::pair<uint64_t, const detail::RawArg*>> copyback;
  auto place_int = [&](uint64_t v) {
    if (ngrn < 8) {
      cpu.x[ngrn++] = v;
      return true;
    }
    spill.push_back(v);
    return spill.size() <= opts_.max_stack_args;
  };
  for (const detail::RawArg& a : args) {
    switch (a.kind) {
      case detail::RawArg::Kind::kInt:
        if (!place_int(a.value)) {
          o.err = Err::kTooManyArgs;
          o.detail = "more than " + std::to_string(opts_.max_stack_args) +
                     " stack-spilled arguments";
          return o;
        }
        break;
      case detail::RawArg::Kind::kFloat:
        if (nsrn >= 8) {
          o.err = Err::kTooManyArgs;
          o.detail = "more than 8 floating-point arguments";
          return o;
        }
        cpu.vr[nsrn].lo = a.value;
        cpu.vr[nsrn].hi = 0;
        ++nsrn;
        break;
      case detail::RawArg::Kind::kGuestPtr: {
        if (a.value == 0) {
          if (!place_int(0)) {
            o.err = Err::kTooManyArgs;
            return o;
          }
          break;
        }
        const uint64_t high = a.value >> 32;
        const uint64_t low = a.value & kLow32;
        if ((high != 0 && high != base_ >> 32) || low < kProgramStart ||
            low >= kProgramEnd) {
          // Host-supplied bad pointer: the guest never ran, so reject
          // without killing it.
          o.err = Err::kBadGuestPointer;
          o.detail = "host-supplied guest pointer outside the slot";
          return o;
        }
        if (!place_int(base_ | low)) {
          o.err = Err::kTooManyArgs;
          return o;
        }
        break;
      }
      case detail::RawArg::Kind::kBufIn:
      case detail::RawArg::Kind::kBufOut: {
        if (a.len > opts_.max_buffer_bytes) {
          o.err = Err::kBufferTooLarge;
          o.detail = "marshalled buffer of " + std::to_string(a.len) +
                     " bytes exceeds max_buffer_bytes";
          return o;
        }
        sp_off -= AlignUp16(a.len);
        if (sp_off < kProgramStart || a.len > kProgramEnd - sp_off) {
          o.err = Err::kBufferOutOfRange;
          o.detail = "marshalled buffer scratch leaves the program region";
          return o;
        }
        const uint64_t gaddr = base_ | sp_off;
        rt_->ChargeEmbedCopy(a.len);
        auto st = rt_->space().HostWrite(
            gaddr, {static_cast<const uint8_t*>(a.in), a.len});
        if (!st.ok()) {
          o.err = Err::kBufferOutOfRange;
          o.detail = "buffer scratch unmapped: " + st.error();
          return o;
        }
        if (a.kind == detail::RawArg::Kind::kBufOut) {
          copyback.emplace_back(gaddr, &a);
        }
        if (!place_int(gaddr)) {
          o.err = Err::kTooManyArgs;
          return o;
        }
        break;
      }
    }
  }
  if (!spill.empty()) {
    sp_off -= AlignUp16(8 * spill.size());
    if (sp_off < kProgramStart) {
      o.err = Err::kBufferOutOfRange;
      o.detail = "stack-spill area leaves the program region";
      return o;
    }
    for (size_t i = 0; i < spill.size(); ++i) {
      uint8_t b[8];
      std::memcpy(b, &spill[i], 8);
      auto st = rt_->space().HostWrite(base_ | (sp_off + 8 * i), b);
      if (!st.ok()) {
        o.err = Err::kBufferOutOfRange;
        o.detail = "stack-spill area unmapped: " + st.error();
        return o;
      }
    }
  }

  cpu.sp = base_ | sp_off;
  cpu.pc = base_ | (fn_addr & kLow32);
  cpu.x[30] = base_ | ret_stub_;
  // The return cookie rides in callee-saved x19: any guest path that
  // reaches the return stub with x19 clobbered is killed as forged.
  // Cookies are a deterministic per-sandbox sequence, part of the
  // replay/trace-identity contract (never host randomness).
  const uint64_t cookie = next_cookie_++;
  cpu.x[19] = cookie;

  ++depth_;
  EmbedStop stop = rt_->RunEmbedded(pid_, cpu, cookie, opts_.call_fuel,
                                    EmbedEnter::kCall);
  while (stop.kind == EmbedStop::Kind::kHostcall) {
    emu::CpuState resume;
    if (!DispatchHostcall(stop, o, &resume)) {
      --depth_;
      return o;
    }
    stop = rt_->RunEmbedded(pid_, resume, cookie, opts_.call_fuel,
                            EmbedEnter::kResume);
  }
  --depth_;

  switch (stop.kind) {
    case EmbedStop::Kind::kReturned:
      break;
    case EmbedStop::Kind::kForged:
      o.err = Err::kForgedReturn;
      o.detail = stop.detail;
      return o;
    case EmbedStop::Kind::kFault:
      o.err = Err::kGuestFault;
      o.detail = stop.detail;
      return o;
    case EmbedStop::Kind::kExited:
      o.err = Err::kGuestExited;
      o.detail = stop.detail;
      return o;
    case EmbedStop::Kind::kBlocked:
      o.err = Err::kGuestBlocked;
      o.detail = stop.detail;
      return o;
    case EmbedStop::Kind::kFuel:
      o.err = Err::kFuelExhausted;
      o.detail = stop.detail;
      return o;
    case EmbedStop::Kind::kProtocol:
      // A nested call that died lower in the chain surfaces here when the
      // outer frame tries to resume a dead proc.
      o.err = stop.detail.find("dead or missing") != std::string::npos
                  ? Err::kSandboxDead
                  : Err::kProtocol;
      o.detail = stop.detail;
      return o;
    case EmbedStop::Kind::kReady:
    case EmbedStop::Kind::kHostcall:
      o.err = Err::kProtocol;
      o.detail = "unexpected embed stop";
      return o;
  }

  o.x0 = stop.x0;
  o.v0 = stop.v0;
  if (ret_kind == detail::RetKind::kGuestPtr && stop.x0 != 0) {
    const uint64_t high = stop.x0 >> 32;
    const uint64_t low = stop.x0 & kLow32;
    if ((high != 0 && high != base_ >> 32) || low < kProgramStart ||
        low >= kProgramEnd) {
      FailClosed(o, Err::kBadGuestPointer,
                 "guest returned a pointer outside its slot");
      return o;
    }
    o.x0 = base_ | low;  // hand the host the canonical form
  }
  for (const auto& [gaddr, arg] : copyback) {
    rt_->ChargeEmbedCopy(arg->len);
    auto st = rt_->space().HostRead(
        gaddr, {static_cast<uint8_t*>(arg->out), arg->len});
    if (!st.ok()) {
      o.err = Err::kBufferOutOfRange;
      o.detail = "buffer copy-back failed: " + st.error();
      return o;
    }
  }
  return o;
}

}  // namespace lfi::embed
