// Typed host<->sandbox embedding API (docs/EMBEDDING.md).
//
// lfi::embed::Sandbox is the library-sandboxing interface the paper's
// use case implies (and RLBox popularized): the host loads a guest module
// into an LFI slot once, then makes *typed function calls* into it as if
// it were a local library —
//
//   auto sb = Sandbox::Create(rt, elf_bytes);
//   auto r = (*sb)->Call<int32_t(int32_t, int32_t)>("add", 2, 3);
//   // r.ok() && r.value == 5
//
// — with every value crossing the boundary marshalled by this layer:
// integers are width-converted into the AAPCS64 argument registers,
// floats go through the vector registers, buffers are copied into guest
// stack scratch and passed as swizzled (base | low32) pointers, and
// arguments past the eighth spill to the guest stack. Guest pointers
// returned to the host are validated against the slot before the host may
// see them. The guest can call back into the host through registered
// callback slots (the `hostcall #i` pseudo), and callbacks can make
// further guest calls — the nested host->guest->host->guest chain keeps
// one saved guest context per depth, so every level unwinds exactly.
//
// Everything fails closed: a forged return cookie, a callback index with
// no host binding, a buffer that would straddle the slot boundary, a
// returned pointer into host memory — each kills the guest (the slot is
// retained) and surfaces a *distinct* Err to the caller, and the sandbox
// can be rolled back to its post-init baseline with Restart().
#ifndef LFI_EMBED_EMBED_H_
#define LFI_EMBED_EMBED_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "embed/abi.h"
#include "runtime/runtime.h"
#include "support/result.h"

namespace lfi::embed {

// Why a call (or the sandbox holding it) failed. Every adversarial path
// has its own value so tests can assert the exact failure mode.
enum class Err : uint8_t {
  kNone = 0,
  kCreateFailed,      // module never reached embed-ready / bad export table
  kNoSuchFunction,    // name not in the export table
  kTooManyArgs,       // stack-spill area would exceed its bound
  kBufferTooLarge,    // marshalled buffer above kMaxBufferBytes
  kBufferOutOfRange,  // buffer scratch would leave the program region
  kBadGuestPointer,   // guest returned a pointer outside its slot
  kBadCallbackIndex,  // hostcall to a slot with no host binding
  kForgedReturn,      // call-ret cookie mismatch (forged return frame)
  kGuestFault,        // cpu fault / chaos injection killed the guest
  kGuestExited,       // guest called exit() mid-call
  kGuestBlocked,      // guest blocked on I/O mid-call (nothing can wake it)
  kFuelExhausted,     // call burned its instruction budget
  kSandboxDead,       // call on an already-dead sandbox
  kReentry,           // nested-call depth exceeded Options::max_depth
  kProtocol,          // embed rtcall out of place (ready mid-call, ...)
};

// Stable kebab-case name ("forged-return", ...).
const char* ErrName(Err e);

// A pointer into the guest's address space. Canonical form (base | low32)
// or a plain low-32 offset; the marshaller canonicalizes either way.
struct GuestPtr {
  uint64_t addr = 0;
  explicit operator bool() const { return addr != 0; }
};

// Host buffer copied into guest stack scratch for the duration of a call;
// the guest sees a pointer argument.
struct BufIn {
  const void* data = nullptr;
  size_t len = 0;
};

// Same, but the scratch contents are copied back to the host buffer after
// the call returns (in/out semantics; the guest sees the host bytes on
// entry and the host sees the guest's writes on success).
struct BufOut {
  void* data = nullptr;
  size_t len = 0;
};

// Outcome of a typed call.
template <typename R>
struct CallResult {
  Err err = Err::kNone;
  std::string detail;  // human-readable cause when err != kNone
  R value{};
  bool ok() const { return err == Err::kNone; }
};
template <>
struct CallResult<void> {
  Err err = Err::kNone;
  std::string detail;
  bool ok() const { return err == Err::kNone; }
};

// A shared-memory region: one guest mapping with a host-side view. The
// cheap alternative to per-call buffer marshalling for bulk data (see
// bench_transitions). Views go through the address space's host accessors
// (never a raw pointer — page payloads move under copy-on-write), and are
// invalidated by Sandbox::Restart(), which rolls the guest back to a
// baseline that predates the mapping.
class Shm {
 public:
  Shm() = default;

  uint64_t guest_addr() const { return guest_addr_; }
  uint64_t size() const { return len_; }
  GuestPtr ptr() const { return GuestPtr{guest_addr_}; }

  Status Write(uint64_t off, std::span<const uint8_t> data);
  Status Read(uint64_t off, std::span<uint8_t> out) const;

 private:
  friend class Sandbox;
  Shm(runtime::Runtime* rt, uint64_t addr, uint64_t len)
      : rt_(rt), guest_addr_(addr), len_(len) {}

  runtime::Runtime* rt_ = nullptr;
  uint64_t guest_addr_ = 0;
  uint64_t len_ = 0;
};

namespace detail {

// One marshalled argument, after type erasure.
struct RawArg {
  enum class Kind : uint8_t { kInt, kFloat, kBufIn, kBufOut, kGuestPtr };
  Kind kind = Kind::kInt;
  uint64_t value = 0;     // kInt: sign/zero-extended; kFloat: raw bits
  bool is_double = false; // kFloat: 64-bit lane vs low-32 lane
  const void* in = nullptr;  // kBufIn/kBufOut: host source bytes
  void* out = nullptr;       // kBufOut: host copy-back destination
  uint64_t len = 0;          // buffer length
};

// What the host expects back (drives return validation in RawCall).
enum class RetKind : uint8_t { kVoid, kInt, kFloat, kGuestPtr };

struct RawOutcome {
  Err err = Err::kNone;
  std::string detail;
  uint64_t x0 = 0;  // integer / pointer return
  uint64_t v0 = 0;  // vr[0] low lane (float returns)
};

template <typename T>
inline constexpr bool kIsIntArg = std::is_integral_v<std::decay_t<T>>;

inline RawArg MakeArgFrom(GuestPtr p) {
  RawArg a;
  a.kind = RawArg::Kind::kGuestPtr;
  a.value = p.addr;
  return a;
}
inline RawArg MakeArgFrom(BufIn b) {
  RawArg a;
  a.kind = RawArg::Kind::kBufIn;
  a.in = b.data;
  a.len = b.len;
  return a;
}
inline RawArg MakeArgFrom(BufOut b) {
  RawArg a;
  a.kind = RawArg::Kind::kBufOut;
  a.in = b.data;
  a.out = b.data;
  a.len = b.len;
  return a;
}
inline RawArg MakeArgFrom(float f) {
  RawArg a;
  a.kind = RawArg::Kind::kFloat;
  a.value = std::bit_cast<uint32_t>(f);
  return a;
}
inline RawArg MakeArgFrom(double d) {
  RawArg a;
  a.kind = RawArg::Kind::kFloat;
  a.value = std::bit_cast<uint64_t>(d);
  a.is_double = true;
  return a;
}
template <typename T, typename = std::enable_if_t<kIsIntArg<T>>>
inline RawArg MakeArgFrom(T v) {
  RawArg a;
  a.kind = RawArg::Kind::kInt;
  // Sign-extend signed parameter types so a negative int32_t arrives in
  // the guest register as its 64-bit two's-complement value.
  if constexpr (std::is_signed_v<T>) {
    a.value = static_cast<uint64_t>(static_cast<int64_t>(v));
  } else {
    a.value = static_cast<uint64_t>(v);
  }
  return a;
}

// Signature decomposition for Call<Ret(Params...)>.
template <typename Sig>
struct SigTraits;
template <typename R, typename... Ps>
struct SigTraits<R(Ps...)> {
  using Ret = R;
  using Params = std::tuple<Ps...>;
  static constexpr size_t kArity = sizeof...(Ps);
};

template <typename R>
struct RetTraits {
  static_assert(std::is_integral_v<R>, "unsupported return type");
  static constexpr RetKind kKind = RetKind::kInt;
  static R From(const RawOutcome& o) { return static_cast<R>(o.x0); }
};
template <>
struct RetTraits<void> {
  static constexpr RetKind kKind = RetKind::kVoid;
};
template <>
struct RetTraits<float> {
  static constexpr RetKind kKind = RetKind::kFloat;
  static float From(const RawOutcome& o) {
    return std::bit_cast<float>(static_cast<uint32_t>(o.v0));
  }
};
template <>
struct RetTraits<double> {
  static constexpr RetKind kKind = RetKind::kFloat;
  static double From(const RawOutcome& o) {
    return std::bit_cast<double>(o.v0);
  }
};
template <>
struct RetTraits<GuestPtr> {
  static constexpr RetKind kKind = RetKind::kGuestPtr;
  static GuestPtr From(const RawOutcome& o) { return GuestPtr{o.x0}; }
};

// What a callback hands back to the guest (written into the saved
// context's return register before resuming).
struct CallbackResult {
  uint64_t x0 = 0;
  uint64_t v0 = 0;
  bool is_float = false;
};
using RawCallback = std::function<CallbackResult(const emu::CpuState& saved)>;

// Callback argument extraction: integers walk x0..x7, floats walk
// vr0..vr7 (the AAPCS counters), GuestPtr is canonicalized to the slot.
struct CallbackArgCursor {
  const emu::CpuState* cpu;
  uint64_t base;
  int ngrn = 0, nsrn = 0;

  template <typename T>
  T Take() {
    if constexpr (std::is_same_v<T, GuestPtr>) {
      return GuestPtr{base | (cpu->x[ngrn++] & 0xffffffffu)};
    } else if constexpr (std::is_same_v<T, float>) {
      return std::bit_cast<float>(static_cast<uint32_t>(cpu->vr[nsrn++].lo));
    } else if constexpr (std::is_same_v<T, double>) {
      return std::bit_cast<double>(cpu->vr[nsrn++].lo);
    } else {
      static_assert(std::is_integral_v<T>, "unsupported callback arg type");
      return static_cast<T>(cpu->x[ngrn++]);
    }
  }
};

}  // namespace detail

// One embedded guest module. Non-copyable and pinned in memory (factories
// return unique_ptr) so host callbacks may safely capture `this`.
class Sandbox {
 public:
  struct Options {
    uint64_t init_fuel = 10'000'000;  // instructions to reach embed-ready
    uint64_t call_fuel = 10'000'000;  // instructions per host->guest call
    int max_depth = 16;               // nested-call chain bound
    // Per-argument marshalled-buffer cap; keeps scratch inside the guest
    // stack (default stack is 1MiB).
    uint64_t max_buffer_bytes = 256 * 1024;
    // Stack-spill slots for arguments past the eighth.
    uint64_t max_stack_args = 56;
  };

  // Loads `elf_bytes` as a fresh sandbox, runs it to the embed-ready
  // announce under init_fuel, parses the export table, and captures the
  // post-ready baseline snapshot that Restart() rolls back to.
  static Result<std::unique_ptr<Sandbox>> Create(
      runtime::Runtime& rt, std::span<const uint8_t> elf_bytes, Options opts);
  static Result<std::unique_ptr<Sandbox>> Create(
      runtime::Runtime& rt, std::span<const uint8_t> elf_bytes) {
    return Create(rt, elf_bytes, Options{});
  }

  // Instantiates a second sandbox from `other`'s post-ready baseline
  // (COW snapshot spawn: nothing is copied until someone writes).
  // Callback bindings are not inherited.
  static Result<std::unique_ptr<Sandbox>> CreateFrom(const Sandbox& other);

  Sandbox(const Sandbox&) = delete;
  Sandbox& operator=(const Sandbox&) = delete;

  int pid() const { return pid_; }
  uint64_t base() const { return base_; }
  // True while the guest can accept calls (killed/exited guests need
  // Restart() first).
  bool alive() const;
  int depth() const { return depth_; }

  // Exported names, in table order.
  std::vector<std::string> Exports() const;
  // Canonical address of an exported function.
  Result<uint64_t> Fn(const std::string& name) const;

  // Typed call: Sig is the guest-visible signature, e.g.
  //   Call<int64_t(int32_t, GuestPtr, BufOut)>("fill", n, p, buf)
  // Arguments are converted to the signature's parameter types, then
  // marshalled. Returns CallResult<Ret>.
  template <typename Sig, typename... Args>
  auto Call(const std::string& name, Args&&... args)
      -> CallResult<typename detail::SigTraits<Sig>::Ret> {
    using Traits = detail::SigTraits<Sig>;
    using R = typename Traits::Ret;
    static_assert(sizeof...(Args) == Traits::kArity,
                  "argument count does not match the signature");
    CallResult<R> res;
    auto fn = Fn(name);
    if (!fn.ok()) {
      res.err = Err::kNoSuchFunction;
      res.detail = fn.error();
      return res;
    }
    std::vector<detail::RawArg> raw;
    raw.reserve(sizeof...(Args));
    MarshalInto<typename Traits::Params>(
        raw, std::index_sequence_for<Args...>{}, std::forward<Args>(args)...);
    detail::RawOutcome o =
        RawCall(*fn, raw, detail::RetTraits<R>::kKind);
    res.err = o.err;
    res.detail = std::move(o.detail);
    if constexpr (!std::is_void_v<R>) {
      if (o.err == Err::kNone) res.value = detail::RetTraits<R>::From(o);
    }
    return res;
  }

  // Registers a typed host callback on slot `index`; the guest invokes it
  // with `hostcall #index`. Supported parameter types: integrals, float,
  // double, GuestPtr (canonicalized, never trusted). Re-binding a slot
  // replaces the previous binding.
  template <typename R, typename... As>
  void BindCallback(int index, std::function<R(As...)> fn) {
    callbacks_[index] = [fn = std::move(fn),
                         this](const emu::CpuState& saved) {
      detail::CallbackArgCursor cur{&saved, base_};
      // Left-to-right argument extraction (braced init guarantees order).
      std::tuple<std::decay_t<As>...> args{cur.Take<std::decay_t<As>>()...};
      detail::CallbackResult out;
      if constexpr (std::is_void_v<R>) {
        std::apply(fn, std::move(args));
      } else if constexpr (std::is_same_v<R, float>) {
        out.v0 = std::bit_cast<uint32_t>(std::apply(fn, std::move(args)));
        out.is_float = true;
      } else if constexpr (std::is_same_v<R, double>) {
        out.v0 = std::bit_cast<uint64_t>(std::apply(fn, std::move(args)));
        out.is_float = true;
      } else {
        R r = std::apply(fn, std::move(args));
        if constexpr (std::is_signed_v<R>) {
          out.x0 = static_cast<uint64_t>(static_cast<int64_t>(r));
        } else {
          out.x0 = static_cast<uint64_t>(r);
        }
      }
      return out;
    };
  }
  // Lambda-friendly overload.
  template <typename F>
  void Bind(int index, F&& f) {
    BindCallback(index, std::function(std::forward<F>(f)));
  }

  // Rolls the guest back to its post-ready baseline (same pid and slot,
  // only diverged pages touched) and revives a killed/exited sandbox.
  // Invalidates Shm views created since Create. Fails mid-call.
  Status Restart();

  // Maps a fresh shared region in the guest (GuestAlloc) and returns the
  // host view. The guest side receives the pointer however the caller
  // passes it (typically a GuestPtr argument).
  Result<Shm> MapShared(uint64_t len);

  // Bounds-checked host access to guest memory at a canonical or low-32
  // address (the escape hatch under the typed API).
  Status ReadGuest(uint64_t addr, std::span<uint8_t> out) const;
  Status WriteGuest(uint64_t addr, std::span<const uint8_t> data);

  // Untyped engine under Call<> — exposed for the fuzzer and bench, which
  // construct argument vectors dynamically.
  detail::RawOutcome RawCall(uint64_t fn_addr,
                             std::vector<detail::RawArg>& args,
                             detail::RetKind ret_kind);

 private:
  Sandbox(runtime::Runtime& rt, Options opts) : rt_(&rt), opts_(opts) {}

  template <typename Params, size_t... Is, typename... Args>
  static void MarshalInto(std::vector<detail::RawArg>& raw,
                          std::index_sequence<Is...>, Args&&... args) {
    (raw.push_back(detail::MakeArgFrom(
         static_cast<std::tuple_element_t<Is, Params>>(
             std::forward<Args>(args)))),
     ...);
  }

  // Parses the export table announced at canonical address `table`.
  Status ParseExports(uint64_t table);
  // RawCall's body; RawCall wraps it with the kEmbedCall trace interval.
  detail::RawOutcome RawCallInner(uint64_t fn_addr,
                                  std::vector<detail::RawArg>& args,
                                  detail::RetKind ret_kind);
  // Kills the guest fail-closed and fills `o` with (err, why).
  void FailClosed(detail::RawOutcome& o, Err err, const std::string& why);
  // Dispatches one hostcall; returns false if the chain must abort (o is
  // filled). On success *resume holds the state to re-enter with.
  bool DispatchHostcall(const runtime::Runtime::EmbedStop& stop,
                        detail::RawOutcome& o, emu::CpuState* resume);

  runtime::Runtime* rt_;
  Options opts_;
  int pid_ = -1;
  uint64_t base_ = 0;
  emu::CpuState ready_cpu_;   // post-embed-ready register template
  uint32_t ret_stub_ = 0;     // slot offset of the return stub
  std::vector<std::pair<std::string, uint32_t>> exports_;  // name -> offset
  std::shared_ptr<const snapshot::Snapshot> baseline_;
  std::map<int, detail::RawCallback> callbacks_;
  uint64_t next_cookie_ = 1;  // deterministic: part of the replay contract
  int depth_ = 0;
  // Suspended guest context per active nesting level (the saved state at
  // each hostcall); nested calls carve their stack below the innermost.
  std::vector<emu::CpuState> suspended_;
};

}  // namespace lfi::embed

#endif  // LFI_EMBED_EMBED_H_
