#include "embed/embed_fuzz.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "elf/elf.h"
#include "embed/embed.h"
#include "fuzz/exec.h"
#include "fuzz/rng.h"
#include "rewriter/rewriter.h"
#include "runtime/layout.h"
#include "runtime/runtime.h"

namespace lfi::embed {

namespace {

using fuzz::CrashArtifact;
using fuzz::FuzzOptions;
using fuzz::FuzzReport;
using fuzz::Rng;

// The fuzz module: benign exports exercising every marshalling class plus
// hostile ones exercising every fail-closed path.
std::string FuzzModuleSource() {
  const std::vector<GuestExport> exports = {
      {"add3", "add3"},       {"sum_buf", "sum_buf"}, {"sum10", "sum10"},
      {"fmix", "fmix"},       {"echo", "echo_cb"},    {"recurse", "recurse"},
      {"fill", "fill_buf"},   {"clobber", "clobber"}, {"wildptr", "wild_ptr"},
      {"badread", "bad_read"}, {"exit", "do_exit"},   {"badcb", "bad_cb"},
  };
  const char* body = R"(
add3:
  add x0, x0, x1
  add x0, x0, x2
  ret
sum_buf:
  mov x9, x0
  mov x0, #0
  cbz x1, sum_done
sum_loop:
  ldrb w10, [x9]
  add x0, x0, x10
  add x9, x9, #1
  sub x1, x1, #1
  cbnz x1, sum_loop
sum_done:
  ret
sum10:
  add x0, x0, x1
  add x0, x0, x2
  add x0, x0, x3
  add x0, x0, x4
  add x0, x0, x5
  add x0, x0, x6
  add x0, x0, x7
  ldr x9, [sp]
  add x0, x0, x9
  ldr x9, [sp, #8]
  add x0, x0, x9
  ret
fmix:
  fadd d0, d0, d1
  ret
echo_cb:
  hostcall #0
  add x0, x0, #1
  ret
recurse:
  hostcall #1
  ret
fill_buf:
  cbz x1, fill_done
fill_loop:
  strb w2, [x0]
  add x0, x0, #1
  sub x1, x1, #1
  cbnz x1, fill_loop
fill_done:
  mov x0, #0
  ret
clobber:
  add x19, x19, #1
  ret
wild_ptr:
  movz x0, #0xdead, lsl #48
  ret
bad_read:
  movz x9, #0x5000
  ldr x9, [x9]
  ret
do_exit:
  mov x0, #7
  rtcall #0
bad_cb:
  hostcall #5
  ret
)";
  return GuestModuleSource(exports, body);
}

Result<std::vector<uint8_t>> BuildModuleElf(const std::string& src) {
  auto file = asmtext::Parse(src);
  if (!file.ok()) return Error{file.error()};
  auto rewritten = rewriter::Rewrite(*file, {});
  if (!rewritten.ok()) return Error{rewritten.error()};
  asmtext::LayoutSpec spec;
  spec.text_offset = runtime::kProgramStart;
  auto img = asmtext::Assemble(*rewritten, spec);
  if (!img.ok()) return Error{img.error()};
  return elf::Write(elf::FromAssembled(*img));
}

struct Harness {
  std::string source;
  std::unique_ptr<runtime::Runtime> rt;
  std::unique_ptr<fuzz::SlotInvariantChecker> checker;
  std::unique_ptr<Sandbox> sb;

  ~Harness() {
    if (rt != nullptr) rt->machine().set_exec_hook(nullptr);
  }

  Status Up() {
    source = FuzzModuleSource();
    auto elf_bytes = BuildModuleElf(source);
    if (!elf_bytes.ok()) return Status::Fail("build: " + elf_bytes.error());
    runtime::RuntimeConfig cfg;
    cfg.core = arch::AppleM1LikeParams();
    rt = std::make_unique<runtime::Runtime>(cfg);
    auto made = Sandbox::Create(*rt, {elf_bytes->data(), elf_bytes->size()});
    if (!made.ok()) return Status::Fail(made.error());
    sb = std::move(*made);
    fuzz::SlotInvariantChecker::Config ccfg;
    ccfg.base = sb->base();
    ccfg.rt_base = runtime::kRuntimeEntryBase;
    ccfg.rt_len = runtime::kRuntimeEntryGranule *
                  static_cast<uint64_t>(runtime::Rtcall::kCount);
    checker = std::make_unique<fuzz::SlotInvariantChecker>(ccfg);
    rt->machine().set_exec_hook(checker.get());
    // Callback 0: double the argument (echo round-trip).
    sb->BindCallback(0, std::function<uint64_t(uint64_t)>(
                            [](uint64_t x) { return x * 2; }));
    // Callback 1: nested re-entry — recurse(n) returns n + recurse(n-1).
    Sandbox* s = sb.get();
    sb->BindCallback(
        1, std::function<int64_t(int64_t)>([s](int64_t n) -> int64_t {
          if (n <= 0) return 0;
          auto r = s->Call<int64_t(int64_t)>("recurse", n - 1);
          if (!r.ok()) return INT64_MIN;
          return r.value + n;
        }));
    return Status::Ok();
  }
};

}  // namespace

FuzzReport RunEmbedFuzz(const FuzzOptions& opts) {
  FuzzReport report;
  report.mode = "embed";

  Harness h;
  auto crash = [&](uint64_t it, uint64_t iseed, std::string what) {
    CrashArtifact a;
    a.mode = "embed";
    a.iter = it;
    a.seed = iseed;
    a.detail = std::move(what);
    a.asm_source = h.source;
    if (!opts.artifact_dir.empty()) {
      a.path = fuzz::WriteArtifact(a, opts.artifact_dir);
    }
    report.crashes.push_back(std::move(a));
  };

  if (auto st = h.Up(); !st.ok()) {
    crash(0, opts.seed, "harness setup failed: " + st.error());
    return report;
  }

  // A hostile op killed the guest as intended; bring it back and prove
  // the revival worked (restartability is part of the contract).
  auto revive = [&](uint64_t it, uint64_t iseed) {
    if (auto st = h.sb->Restart(); !st.ok()) {
      crash(it, iseed, "restart after fail-closed kill failed: " + st.error());
      return false;
    }
    if (!h.sb->alive()) {
      crash(it, iseed, "sandbox not alive after restart");
      return false;
    }
    return true;
  };

  for (uint64_t it = 0; it < opts.iters; ++it) {
    if (report.crashes.size() >= opts.max_crashes) break;
    const uint64_t iseed = fuzz::DeriveSeed(opts.seed, it);
    Rng rng(iseed);
    ++report.iters;
    ++report.accepted;
    bool bad = false;
    switch (rng.Below(10)) {
      case 0: {  // scalar marshalling, wrapping add
        const uint64_t a = rng.Next(), b = rng.Next(), c = rng.Next();
        auto r = h.sb->Call<uint64_t(uint64_t, uint64_t, uint64_t)>(
            "add3", a, b, c);
        if (!r.ok() || r.value != a + b + c) {
          crash(it, iseed, "add3 mismatch: " + std::string(ErrName(r.err)) +
                               " " + r.detail);
          bad = true;
        }
        break;
      }
      case 1: {  // BufIn marshalling
        std::vector<uint8_t> buf(rng.Below(300));
        uint64_t want = 0;
        for (auto& x : buf) {
          x = static_cast<uint8_t>(rng.Next());
          want += x;
        }
        auto r = h.sb->Call<uint64_t(BufIn, uint64_t)>(
            "sum_buf", BufIn{buf.data(), buf.size()}, buf.size());
        if (!r.ok() || r.value != want) {
          crash(it, iseed, "sum_buf mismatch: " + std::string(ErrName(r.err)) +
                               " " + r.detail);
          bad = true;
        }
        break;
      }
      case 2: {  // stack-spill marshalling (10 integer args)
        uint64_t v[10], want = 0;
        for (auto& x : v) {
          x = rng.Next();
          want += x;
        }
        auto r = h.sb->Call<uint64_t(uint64_t, uint64_t, uint64_t, uint64_t,
                                     uint64_t, uint64_t, uint64_t, uint64_t,
                                     uint64_t, uint64_t)>(
            "sum10", v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8],
            v[9]);
        if (!r.ok() || r.value != want) {
          crash(it, iseed, "sum10 mismatch: " + std::string(ErrName(r.err)) +
                               " " + r.detail);
          bad = true;
        }
        break;
      }
      case 3: {  // float-register marshalling (exact small-int doubles)
        const double a = static_cast<double>(static_cast<int64_t>(
            rng.Below(2000)) - 1000);
        const double b = static_cast<double>(static_cast<int64_t>(
            rng.Below(2000)) - 1000);
        auto r = h.sb->Call<double(double, double)>("fmix", a, b);
        if (!r.ok() || r.value != a + b) {
          crash(it, iseed, "fmix mismatch: " + std::string(ErrName(r.err)) +
                               " " + r.detail);
          bad = true;
        }
        break;
      }
      case 4: {  // callback round-trip
        const uint64_t x = rng.Next() >> 1;
        auto r = h.sb->Call<uint64_t(uint64_t)>("echo", x);
        if (!r.ok() || r.value != 2 * x + 1) {
          crash(it, iseed, "echo mismatch: " + std::string(ErrName(r.err)) +
                               " " + r.detail);
          bad = true;
        }
        break;
      }
      case 5: {  // nested host->guest->host chain
        const int64_t n = static_cast<int64_t>(rng.Below(6));
        auto r = h.sb->Call<int64_t(int64_t)>("recurse", n);
        if (!r.ok() || r.value != n * (n + 1) / 2) {
          crash(it, iseed, "recurse mismatch: " + std::string(ErrName(r.err)) +
                               " " + r.detail);
          bad = true;
        }
        break;
      }
      case 6: {  // BufOut copy-back
        std::vector<uint8_t> buf(1 + rng.Below(200), 0xAA);
        const uint8_t v = static_cast<uint8_t>(rng.Next());
        auto r = h.sb->Call<uint64_t(BufOut, uint64_t, uint64_t)>(
            "fill", BufOut{buf.data(), buf.size()}, buf.size(), v);
        bool filled = r.ok() && r.value == 0;
        for (uint8_t x : buf) filled = filled && x == v;
        if (!filled) {
          crash(it, iseed, "fill copy-back mismatch: " +
                               std::string(ErrName(r.err)) + " " + r.detail);
          bad = true;
        }
        break;
      }
      case 7: {  // guest-corrupted return state (cookie clobber)
        auto r = h.sb->Call<uint64_t()>("clobber");
        if (r.err != Err::kForgedReturn) {
          crash(it, iseed, "clobber expected forged-return, got " +
                               std::string(ErrName(r.err)) + " " + r.detail);
          bad = true;
        } else if (!revive(it, iseed)) {
          bad = true;
        }
        break;
      }
      case 8: {  // hostile returned pointer / unbound callback
        if (rng.Below(2) == 0) {
          auto r = h.sb->Call<GuestPtr()>("wildptr");
          if (r.err != Err::kBadGuestPointer) {
            crash(it, iseed, "wildptr expected bad-guest-pointer, got " +
                                 std::string(ErrName(r.err)) + " " + r.detail);
            bad = true;
          } else if (!revive(it, iseed)) {
            bad = true;
          }
        } else {
          auto r = h.sb->Call<uint64_t()>("badcb");
          if (r.err != Err::kBadCallbackIndex) {
            crash(it, iseed, "badcb expected bad-callback-index, got " +
                                 std::string(ErrName(r.err)) + " " + r.detail);
            bad = true;
          } else if (!revive(it, iseed)) {
            bad = true;
          }
        }
        break;
      }
      case 9: {  // guard-region fault / exit mid-call
        if (rng.Below(2) == 0) {
          auto r = h.sb->Call<uint64_t()>("badread");
          if (r.err != Err::kGuestFault) {
            crash(it, iseed, "badread expected guest-fault, got " +
                                 std::string(ErrName(r.err)) + " " + r.detail);
            bad = true;
          } else if (!revive(it, iseed)) {
            bad = true;
          }
        } else {
          auto r = h.sb->Call<uint64_t()>("exit");
          if (r.err != Err::kGuestExited) {
            crash(it, iseed, "exit expected guest-exited, got " +
                                 std::string(ErrName(r.err)) + " " + r.detail);
            bad = true;
          } else if (!revive(it, iseed)) {
            bad = true;
          }
        }
        break;
      }
    }
    ++report.executed;
    if (!h.checker->violation().empty()) {
      crash(it, iseed,
            "slot invariant violated: " + h.checker->violation());
      break;  // the checker latches; later iterations would re-report it
    }
    if (bad && !h.sb->alive()) {
      // A mismatch left the guest dead; revive so later iterations are
      // still meaningful (their ops assume a live sandbox).
      if (!revive(it, iseed)) break;
    }
  }
  return report;
}

}  // namespace lfi::embed
