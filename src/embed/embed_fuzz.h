// Embedding-transition fuzz mode (lfi-fuzz --mode=embed).
//
// Drives a fixed guest module through randomized typed calls — marshalled
// scalars, buffers, stack spills, callback round-trips, nested chains —
// interleaved with deliberately hostile operations (cookie clobbering,
// host-range returned pointers, guard-region faults, mid-call exits),
// with the SlotInvariantChecker attached to the runtime's machine for
// every transition. Two oracles:
//
//   1. the checker: no retired guest instruction may break the slot
//      invariants, no matter what the host marshals in (a violation is a
//      sandbox escape through the embedding layer);
//   2. the Err taxonomy: every hostile operation must fail closed with
//      exactly its documented error, every benign operation must return
//      the semantically correct value, and Restart() must always bring a
//      killed sandbox back.
//
// Deterministic in (seed, iters), like every other mode.
#ifndef LFI_EMBED_EMBED_FUZZ_H_
#define LFI_EMBED_EMBED_FUZZ_H_

#include "fuzz/fuzz.h"

namespace lfi::embed {

fuzz::FuzzReport RunEmbedFuzz(const fuzz::FuzzOptions& opts);

}  // namespace lfi::embed

#endif  // LFI_EMBED_EMBED_FUZZ_H_
