#include "emu/address_space.h"

#include <cstring>

namespace lfi::emu {

namespace {
bool PageAligned(uint64_t v) { return (v & kPageMask) == 0; }
// True if [addr, addr+len) wraps past 2^64 (a wrapping range would alias
// low pages and defeat every downstream bounds check).
bool RangeWraps(uint64_t addr, uint64_t len) { return addr + len < addr; }
}  // namespace

void AddressSpace::NoteExec(uint64_t pageno, uint8_t perms) {
  if (perms & kPermExec) {
    exec_pages_.insert(pageno);
  } else {
    exec_pages_.erase(pageno);
  }
}

Status AddressSpace::Map(uint64_t addr, uint64_t len, uint8_t perms,
                         MapMode mode) {
  if (!PageAligned(addr) || !PageAligned(len)) {
    return Status::Fail("map: unaligned range");
  }
  if (len == 0) return Status::Ok();
  if (RangeWraps(addr, len)) return Status::Fail("map: range wraps");
  if (mode == MapMode::kNoReplace) {
    for (uint64_t p = addr / kPageSize; p < (addr + len) / kPageSize; ++p) {
      if (pages_.count(p) != 0) {
        return Status::Fail("map: range overlaps an existing mapping");
      }
    }
  }
  for (uint64_t p = addr / kPageSize; p < (addr + len) / kPageSize; ++p) {
    Page page;
    page.data = std::make_shared<PageData>();
    page.data->fill(0);
    page.perms = perms;
    pages_[p] = std::move(page);
    NoteExec(p, perms);
  }
  ++generation_;
  ++payload_epoch_;
  return Status::Ok();
}

Status AddressSpace::Unmap(uint64_t addr, uint64_t len) {
  if (!PageAligned(addr) || !PageAligned(len)) {
    return Status::Fail("unmap: unaligned range");
  }
  if (len == 0) return Status::Ok();
  if (RangeWraps(addr, len)) return Status::Fail("unmap: range wraps");
  size_t erased = 0;
  for (uint64_t p = addr / kPageSize; p < (addr + len) / kPageSize; ++p) {
    erased += pages_.erase(p);
    exec_pages_.erase(p);
  }
  if (erased != 0) {
    ++generation_;
    ++payload_epoch_;
  }
  return Status::Ok();
}

Status AddressSpace::Protect(uint64_t addr, uint64_t len, uint8_t perms) {
  if (!PageAligned(addr) || !PageAligned(len)) {
    return Status::Fail("protect: unaligned range");
  }
  if (len == 0) return Status::Ok();
  if (RangeWraps(addr, len)) return Status::Fail("protect: range wraps");
  // Validate the whole range first so a failure leaves no partial change.
  for (uint64_t p = addr / kPageSize; p < (addr + len) / kPageSize; ++p) {
    if (pages_.count(p) == 0) return Status::Fail("protect: unmapped page");
  }
  for (uint64_t p = addr / kPageSize; p < (addr + len) / kPageSize; ++p) {
    pages_[p].perms = perms;
    NoteExec(p, perms);
  }
  ++generation_;
  ++payload_epoch_;
  return Status::Ok();
}

bool AddressSpace::Check(uint64_t addr, uint64_t len, uint8_t perms) const {
  if (len == 0) return true;
  if (RangeWraps(addr, len)) return false;
  for (uint64_t p = addr / kPageSize; p <= (addr + len - 1) / kPageSize;
       ++p) {
    auto it = pages_.find(p);
    if (it == pages_.end() || (it->second.perms & perms) != perms) {
      return false;
    }
  }
  return true;
}

const AddressSpace::Page* AddressSpace::FindPage(uint64_t addr) const {
  auto it = pages_.find(addr / kPageSize);
  return it == pages_.end() ? nullptr : &it->second;
}

uint8_t* AddressSpace::WritablePage(Page* page) {
  if (page->data.use_count() > 1) {
    page->data = std::make_shared<PageData>(*page->data);
    // The payload pointer just changed; cached pointers to the old
    // (shared) payload must not satisfy further accesses.
    ++payload_epoch_;
  }
  return page->data->data();
}

Result<uint64_t> AddressSpace::Read(uint64_t addr, unsigned size) const {
  if (trace_ != nullptr) trace_->Record(addr, size, Access::kRead);
  // Fast path: access within a single page.
  if (((addr ^ (addr + size - 1)) & ~kPageMask) == 0) {
    const Page* page = FindPage(addr);
    if (page == nullptr) {
      last_fault_ = {MemFault::Kind::kUnmapped, Access::kRead, addr};
      return Error{"read fault"};
    }
    if (!(page->perms & kPermRead)) {
      last_fault_ = {MemFault::Kind::kPermission, Access::kRead, addr};
      return Error{"read fault"};
    }
    uint64_t value = 0;
    std::memcpy(&value, page->data->data() + (addr & kPageMask),
                size <= 8 ? size : 8);
    if (size < 8) value &= (uint64_t{1} << (8 * size)) - 1;
    return value;
  }
  // Slow path: the access straddles a page boundary.
  uint64_t value = 0;
  for (unsigned k = 0; k < size && k < 8; ++k) {
    const uint64_t a = addr + k;
    const Page* page = FindPage(a);
    if (page == nullptr) {
      last_fault_ = {MemFault::Kind::kUnmapped, Access::kRead, a};
      return Error{"read fault"};
    }
    if (!(page->perms & kPermRead)) {
      last_fault_ = {MemFault::Kind::kPermission, Access::kRead, a};
      return Error{"read fault"};
    }
    value |= uint64_t{(*page->data)[a & kPageMask]} << (8 * k);
  }
  return value;
}

Status AddressSpace::Write(uint64_t addr, uint64_t value, unsigned size) {
  if (trace_ != nullptr) trace_->Record(addr, size, Access::kWrite);
  // Fast path: access within a single page.
  if (((addr ^ (addr + size - 1)) & ~kPageMask) == 0) {
    auto it = pages_.find(addr / kPageSize);
    if (it == pages_.end()) {
      last_fault_ = {MemFault::Kind::kUnmapped, Access::kWrite, addr};
      return Status::Fail("write fault");
    }
    if (!(it->second.perms & kPermWrite)) {
      last_fault_ = {MemFault::Kind::kPermission, Access::kWrite, addr};
      return Status::Fail("write fault");
    }
    if (WriteTouchesExec(it->second.perms)) ++generation_;
    std::memcpy(WritablePage(&it->second) + (addr & kPageMask), &value,
                size <= 8 ? size : 8);
    return Status::Ok();
  }
  // Check permissions on all touched pages before modifying anything.
  bool exec_touched = false;
  for (unsigned k = 0; k < size; ++k) {
    const uint64_t a = addr + k;
    const Page* page = FindPage(a);
    if (page == nullptr) {
      last_fault_ = {MemFault::Kind::kUnmapped, Access::kWrite, a};
      return Status::Fail("write fault");
    }
    if (!(page->perms & kPermWrite)) {
      last_fault_ = {MemFault::Kind::kPermission, Access::kWrite, a};
      return Status::Fail("write fault");
    }
    exec_touched = exec_touched || WriteTouchesExec(page->perms);
  }
  if (exec_touched) ++generation_;
  for (unsigned k = 0; k < size; ++k) {
    const uint64_t a = addr + k;
    Page* page = &pages_[a / kPageSize];
    WritablePage(page)[a & kPageMask] =
        static_cast<uint8_t>(value >> (8 * k));
  }
  return Status::Ok();
}

Result<uint32_t> AddressSpace::Fetch(uint64_t addr) const {
  const Page* page = FindPage(addr);
  if (page == nullptr) {
    last_fault_ = {MemFault::Kind::kUnmapped, Access::kExec, addr};
    return Error{"fetch fault"};
  }
  if (!(page->perms & kPermExec)) {
    last_fault_ = {MemFault::Kind::kPermission, Access::kExec, addr};
    return Error{"fetch fault"};
  }
  // Instructions are 4-aligned, so they never straddle pages.
  const uint64_t off = addr & kPageMask;
  const uint8_t* d = page->data->data();
  return uint32_t{d[off]} | (uint32_t{d[off + 1]} << 8) |
         (uint32_t{d[off + 2]} << 16) | (uint32_t{d[off + 3]} << 24);
}

Status AddressSpace::HostRead(uint64_t addr, std::span<uint8_t> out) const {
  for (size_t k = 0; k < out.size(); ++k) {
    const Page* page = FindPage(addr + k);
    if (page == nullptr) return Status::Fail("host read: unmapped");
    out[k] = (*page->data)[(addr + k) & kPageMask];
  }
  return Status::Ok();
}

Status AddressSpace::HostWrite(uint64_t addr, std::span<const uint8_t> data) {
  bool exec_touched = false;
  for (size_t k = 0; k < data.size(); ++k) {
    auto it = pages_.find((addr + k) / kPageSize);
    if (it == pages_.end()) return Status::Fail("host write: unmapped");
    exec_touched = exec_touched || WriteTouchesExec(it->second.perms);
    WritablePage(&it->second)[(addr + k) & kPageMask] = data[k];
  }
  if (exec_touched) ++generation_;
  return Status::Ok();
}

std::shared_ptr<AddressSpace::PageData> AddressSpace::ExportPage(
    uint64_t addr, uint8_t* perms) const {
  const Page* page = FindPage(addr);
  if (page == nullptr) return nullptr;
  if (perms != nullptr) *perms = page->perms;
  // The caller now shares the payload: the next write to this page must
  // copy first, so any cached writable pointer to it goes stale here.
  ++payload_epoch_;
  return page->data;
}

Status AddressSpace::InstallPage(uint64_t addr,
                                 std::shared_ptr<PageData> data,
                                 uint8_t perms) {
  if (!PageAligned(addr)) return Status::Fail("install: unaligned page");
  if (data == nullptr) return Status::Fail("install: null payload");
  const uint64_t pageno = addr / kPageSize;
  pages_[pageno] = Page{std::move(data), perms};
  NoteExec(pageno, perms);
  ++generation_;
  ++payload_epoch_;
  return Status::Ok();
}

const AddressSpace::PageData* AddressSpace::PagePayload(
    uint64_t addr, uint8_t* perms) const {
  const Page* page = FindPage(addr);
  if (page == nullptr) return nullptr;
  if (perms != nullptr) *perms = page->perms;
  return page->data.get();
}

void AddressSpace::CloneInto(AddressSpace* child) const {
  child->pages_ = pages_;  // shared_ptr copy: COW
  child->exec_pages_ = exec_pages_;
  ++child->generation_;
  ++child->payload_epoch_;
  // The parent's payloads are now shared too: its next write must copy,
  // so its cached writable pointers are stale as well.
  ++payload_epoch_;
}

Status AddressSpace::ShareRange(uint64_t src, uint64_t dst, uint64_t len) {
  if (!PageAligned(src) || !PageAligned(dst) || !PageAligned(len)) {
    return Status::Fail("share: unaligned range");
  }
  if (len == 0) return Status::Ok();
  if (RangeWraps(src, len) || RangeWraps(dst, len)) {
    return Status::Fail("share: range wraps");
  }
  for (uint64_t off = 0; off < len; off += kPageSize) {
    auto it = pages_.find((src + off) / kPageSize);
    if (it == pages_.end()) continue;  // holes stay holes
    const uint64_t dpage = (dst + off) / kPageSize;
    // Copy out first: pages_[dpage] may rehash and invalidate `it`.
    Page src_page = it->second;
    NoteExec(dpage, src_page.perms);
    pages_[dpage] = std::move(src_page);
  }
  ++generation_;
  ++payload_epoch_;
  return Status::Ok();
}

AddressSpace::PageProbe AddressSpace::ProbeDataPage(uint64_t pageno,
                                                    bool want_write) {
  auto it = pages_.find(pageno);
  if (it == pages_.end()) return {};
  Page& page = it->second;
  PageProbe pr;
  if (want_write && (page.perms & kPermWrite) != 0 &&
      (page.perms & kPermExec) == 0) {
    // Resolve rw first: a COW here replaces the payload, and ro must
    // point at the fresh copy.
    pr.rw = WritablePage(&page);
  }
  if ((page.perms & kPermRead) != 0) pr.ro = page.data->data();
  return pr;
}

}  // namespace lfi::emu
