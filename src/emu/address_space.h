// Sparse 48-bit virtual address space with per-page permissions.
//
// This is the hardware-protection substrate the LFI runtime relies on:
// text pages are mapped read+execute, data pages read+write, guard regions
// left unmapped (Section 3). Pages use copy-on-write sharing so that the
// runtime's single-address-space fork (Section 5.3) is cheap, mirroring the
// paper's memfd-based approach.
//
// Mutation generation: every operation that can change what an instruction
// fetch observes -- Map, Unmap, Protect, ShareRange, CloneInto, and any
// guest/host write that lands on an executable page -- bumps a monotonically
// increasing counter. The Machine's decoded-block cache is stamped with the
// generation it was filled under and revalidates the stamp on every block
// entry, so stale decoded code can never execute after a remap. Writes to
// non-executable pages do not bump the counter (the common case stays
// free): the exec-page set below makes that test one branch.
#ifndef LFI_EMU_ADDRESS_SPACE_H_
#define LFI_EMU_ADDRESS_SPACE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "support/result.h"

namespace lfi::emu {

// Page size: 16KiB, matching Apple ARM64 machines (the paper sizes its
// guard regions as multiples of 16KiB for this reason).
inline constexpr uint64_t kPageSize = 16384;
inline constexpr uint64_t kPageMask = kPageSize - 1;

// Page permission bits.
enum Perm : uint8_t {
  kPermNone = 0,
  kPermRead = 1,
  kPermWrite = 2,
  kPermExec = 4,
};

// Kinds of access, for permission checks and fault reporting.
enum class Access : uint8_t { kRead, kWrite, kExec };

// A memory fault: the access that failed and why.
struct MemFault {
  enum class Kind : uint8_t { kUnmapped, kPermission } kind;
  Access access = Access::kRead;
  uint64_t addr = 0;
};

// How Map treats pages that are already mapped in the requested range.
enum class MapMode : uint8_t {
  kNoReplace,  // error if any page of the range is already mapped
  kFixed,      // MAP_FIXED-style: silently replace existing pages
};

// One attempted guest data access. Recorded *before* the permission check,
// so a faulting attempt is visible too — essential for soundness fuzzing,
// where the question is which addresses sandboxed code can make the CPU
// emit, not which ones happen to be mapped in this emulator.
struct AccessRecord {
  uint64_t addr = 0;
  uint32_t size = 0;
  Access kind = Access::kRead;
};

// Fixed-size buffer of the data accesses attempted by the current
// instruction. Installed on an AddressSpace by Machine while an ExecHook
// is attached; cleared by the Machine before each instruction. Sized for
// the worst case (a pair access is two records; straddles stay one).
class AccessTrace {
 public:
  void Clear() { n_ = 0; }
  void Record(uint64_t addr, uint32_t size, Access kind) {
    if (n_ < recs_.size()) recs_[n_++] = {addr, size, kind};
  }
  std::span<const AccessRecord> records() const {
    return {recs_.data(), n_};
  }

 private:
  std::array<AccessRecord, 8> recs_{};
  size_t n_ = 0;
};

// Sparse paged memory. Copyable page contents are shared copy-on-write.
class AddressSpace {
 public:
  // One page's backing bytes. Exposed so snapshots can hold page payloads
  // by shared_ptr: while a snapshot owns a reference, the next guest/host
  // write to that page copies first (WritablePage's use_count test), so
  // snapshot contents are immutable without any copying at capture time.
  using PageData = std::array<uint8_t, kPageSize>;

  AddressSpace() = default;

  // Maps [addr, addr+len) with `perms`. Both must be page-aligned. Newly
  // mapped pages are zero-filled. By default overlapping an existing
  // mapping is an error; pass MapMode::kFixed to replace pages (the
  // replacement zero-fills, like mmap(MAP_FIXED) over old memory).
  Status Map(uint64_t addr, uint64_t len, uint8_t perms,
             MapMode mode = MapMode::kNoReplace);

  // Unmaps [addr, addr+len); unmapped holes are ignored.
  Status Unmap(uint64_t addr, uint64_t len);

  // Changes permissions on already-mapped pages. Fails without side
  // effects if any page of the range is unmapped.
  Status Protect(uint64_t addr, uint64_t len, uint8_t perms);

  // True if every page of [addr, addr+len) is mapped with all `perms` bits.
  // An empty range is vacuously true; a range wrapping 2^64 is false.
  bool Check(uint64_t addr, uint64_t len, uint8_t perms) const;

  // Guest accesses: permission-checked, may fault. Little-endian.
  Result<uint64_t> Read(uint64_t addr, unsigned size) const;
  Status Write(uint64_t addr, uint64_t value, unsigned size);
  // Fetches one 4-byte instruction word (requires exec permission).
  Result<uint32_t> Fetch(uint64_t addr) const;

  // The most recent fault from a failed Read/Write/Fetch.
  const MemFault& last_fault() const { return last_fault_; }

  // Host (trusted runtime) accesses: require the page to be mapped but
  // ignore permission bits, like the runtime writing a sandbox's read-only
  // call-table page at setup time.
  Status HostRead(uint64_t addr, std::span<uint8_t> out) const;
  Status HostWrite(uint64_t addr, std::span<const uint8_t> data);

  // Copies all mappings into `child` copy-on-write (both spaces then share
  // page contents until one writes). Used by fork.
  void CloneInto(AddressSpace* child) const;

  // Duplicates the pages in [src, src+len) at dst (copy-on-write), used to
  // place a forked child at a new sandbox base within the same space.
  Status ShareRange(uint64_t src, uint64_t dst, uint64_t len);

  // Snapshot support (src/snapshot/, docs/SNAPSHOTS.md). ExportPage hands
  // out shared ownership of the page's payload plus its perms (nullptr if
  // unmapped): a capture is one shared_ptr copy per page. InstallPage maps
  // `addr`'s page sharing `data` copy-on-write (replacing any existing
  // page) and bumps the mutation generation, so the decode cache revokes
  // stale code after a restore. PagePayload is the raw observer used for
  // dirty detection: a page is clean w.r.t. a snapshot iff its payload
  // pointer and perms still match the captured ones.
  std::shared_ptr<PageData> ExportPage(uint64_t addr, uint8_t* perms) const;
  Status InstallPage(uint64_t addr, std::shared_ptr<PageData> data,
                     uint8_t perms);
  const PageData* PagePayload(uint64_t addr, uint8_t* perms) const;

  // Number of mapped pages (for tests and accounting).
  size_t MappedPages() const { return pages_.size(); }

  // Monotonic counter of mutations that could invalidate decoded code
  // (see the file comment). Consumers stamp their caches with this value
  // and treat any change as "flush everything".
  uint64_t mutation_generation() const { return generation_; }

  // Monotonic counter of events that can invalidate a cached raw page
  // payload pointer: mapping/permission changes, payload replacement
  // (COW), and sharing-state changes (ExportPage/CloneInto make a cached
  // *writable* pointer unsafe, because the next write must copy first).
  // The Machine's data TLB revalidates against this on every access.
  // (In-place byte writes don't bump it: a cached pointer then still
  // observes the current bytes, which is exactly the slow path's view.)
  uint64_t payload_epoch() const { return payload_epoch_; }

  // Forces consumers to revalidate even though no mapping changed. Rarely
  // needed; exists so Machine::FlushDecodeCache keeps working for callers
  // that mutate page contents through a route this class cannot see.
  void BumpGeneration() {
    ++generation_;
    ++payload_epoch_;
  }

  // Raw payload pointers for `pageno`, for the Machine's data TLB. ro is
  // non-null iff the page is mapped readable; rw is resolved (copying if
  // shared) only when want_write is set and the page is writable and
  // non-executable — exec-page stores must keep taking the slow path so
  // the mutation generation bumps. Pointers are valid until
  // payload_epoch() next changes.
  struct PageProbe {
    const uint8_t* ro = nullptr;
    uint8_t* rw = nullptr;
  };
  PageProbe ProbeDataPage(uint64_t pageno, bool want_write);

  // Attaches (or detaches, with nullptr) an access trace: every guest
  // Read/Write attempt is recorded into it before permission checking.
  // Host accesses and instruction fetches are not traced (fetch coverage
  // comes from the PC stream the Machine's ExecHook already sees).
  void set_access_trace(AccessTrace* trace) { trace_ = trace; }

 private:
  struct Page {
    std::shared_ptr<PageData> data;
    uint8_t perms = kPermNone;
  };

  const Page* FindPage(uint64_t addr) const;
  // Returns a writable pointer to the page's data, copying if shared (a
  // copy replaces the payload pointer, so it bumps payload_epoch_).
  uint8_t* WritablePage(Page* page);
  // Records pageno's executability and returns true if `perms` is exec.
  void NoteExec(uint64_t pageno, uint8_t perms);
  // True if a data write to a page with `perms` must bump the generation.
  bool WriteTouchesExec(uint8_t perms) const {
    return !exec_pages_.empty() && (perms & kPermExec) != 0;
  }

  mutable MemFault last_fault_;
  // Owned by the attaching Machine; the pointee is mutated from const
  // accessors (tracing is observation, not address-space state).
  AccessTrace* trace_ = nullptr;
  std::unordered_map<uint64_t, Page> pages_;  // keyed by addr / kPageSize
  // Page numbers currently mapped executable. Lets the write fast path
  // skip the generation bump entirely when no exec pages exist, and lets
  // Protect detect exec transitions.
  std::unordered_set<uint64_t> exec_pages_;
  uint64_t generation_ = 0;
  // See payload_epoch(). Mutable because const operations can change
  // sharing state (ExportPage, CloneInto's parent side): they don't alter
  // this space's contents, but they do invalidate cached rw pointers.
  mutable uint64_t payload_epoch_ = 0;
};

}  // namespace lfi::emu

#endif  // LFI_EMU_ADDRESS_SPACE_H_
