// Sparse 48-bit virtual address space with per-page permissions.
//
// This is the hardware-protection substrate the LFI runtime relies on:
// text pages are mapped read+execute, data pages read+write, guard regions
// left unmapped (Section 3). Pages use copy-on-write sharing so that the
// runtime's single-address-space fork (Section 5.3) is cheap, mirroring the
// paper's memfd-based approach.
#ifndef LFI_EMU_ADDRESS_SPACE_H_
#define LFI_EMU_ADDRESS_SPACE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "support/result.h"

namespace lfi::emu {

// Page size: 16KiB, matching Apple ARM64 machines (the paper sizes its
// guard regions as multiples of 16KiB for this reason).
inline constexpr uint64_t kPageSize = 16384;
inline constexpr uint64_t kPageMask = kPageSize - 1;

// Page permission bits.
enum Perm : uint8_t {
  kPermNone = 0,
  kPermRead = 1,
  kPermWrite = 2,
  kPermExec = 4,
};

// Kinds of access, for permission checks and fault reporting.
enum class Access : uint8_t { kRead, kWrite, kExec };

// A memory fault: the access that failed and why.
struct MemFault {
  enum class Kind : uint8_t { kUnmapped, kPermission } kind;
  Access access = Access::kRead;
  uint64_t addr = 0;
};

// Sparse paged memory. Copyable page contents are shared copy-on-write.
class AddressSpace {
 public:
  AddressSpace() = default;

  // Maps [addr, addr+len) with `perms`. Both must be page-aligned. Newly
  // mapped pages are zero-filled. Remapping an existing page replaces it.
  Status Map(uint64_t addr, uint64_t len, uint8_t perms);

  // Unmaps [addr, addr+len); unmapped holes are ignored.
  Status Unmap(uint64_t addr, uint64_t len);

  // Changes permissions on already-mapped pages.
  Status Protect(uint64_t addr, uint64_t len, uint8_t perms);

  // True if every page of [addr, addr+len) is mapped with all `perms` bits.
  bool Check(uint64_t addr, uint64_t len, uint8_t perms) const;

  // Guest accesses: permission-checked, may fault. Little-endian.
  Result<uint64_t> Read(uint64_t addr, unsigned size) const;
  Status Write(uint64_t addr, uint64_t value, unsigned size);
  // Fetches one 4-byte instruction word (requires exec permission).
  Result<uint32_t> Fetch(uint64_t addr) const;

  // The most recent fault from a failed Read/Write/Fetch.
  const MemFault& last_fault() const { return last_fault_; }

  // Host (trusted runtime) accesses: require the page to be mapped but
  // ignore permission bits, like the runtime writing a sandbox's read-only
  // call-table page at setup time.
  Status HostRead(uint64_t addr, std::span<uint8_t> out) const;
  Status HostWrite(uint64_t addr, std::span<const uint8_t> data);

  // Copies all mappings into `child` copy-on-write (both spaces then share
  // page contents until one writes). Used by fork.
  void CloneInto(AddressSpace* child) const;

  // Duplicates the pages in [src, src+len) at dst (copy-on-write), used to
  // place a forked child at a new sandbox base within the same space.
  Status ShareRange(uint64_t src, uint64_t dst, uint64_t len);

  // Number of mapped pages (for tests and accounting).
  size_t MappedPages() const { return pages_.size(); }

 private:
  using PageData = std::array<uint8_t, kPageSize>;
  struct Page {
    std::shared_ptr<PageData> data;
    uint8_t perms = kPermNone;
  };

  const Page* FindPage(uint64_t addr) const;
  // Returns a writable pointer to the page's data, copying if shared.
  uint8_t* WritablePage(Page* page);

  mutable MemFault last_fault_;
  std::unordered_map<uint64_t, Page> pages_;  // keyed by addr / kPageSize
};

}  // namespace lfi::emu

#endif  // LFI_EMU_ADDRESS_SPACE_H_
