#include "emu/backend.h"

namespace lfi::emu {

// The backend classes only forward to private Machine methods (they are
// befriended in machine.h); all real logic lives in machine.cc and
// backend_chained.cc next to the state it touches.

class StepBackend final : public EmuBackend {
 public:
  const char* name() const override { return "step"; }
  StopReason Run(Machine* m, uint64_t max_instructions) const override {
    return m->RunSteps(max_instructions);
  }
};

class BlockBackend final : public EmuBackend {
 public:
  const char* name() const override { return "block"; }
  StopReason Run(Machine* m, uint64_t max_instructions) const override {
    return m->RunBlocks(max_instructions);
  }
};

class ChainedBackend final : public EmuBackend {
 public:
  const char* name() const override { return "chained"; }
  StopReason Run(Machine* m, uint64_t max_instructions) const override {
    return m->RunChained(max_instructions);
  }
};

const EmuBackend& BackendFor(Dispatch d) {
  static const StepBackend step;
  static const BlockBackend block;
  static const ChainedBackend chained;
  switch (d) {
    case Dispatch::kStep:
      return step;
    case Dispatch::kBlock:
      return block;
    case Dispatch::kChained:
      return chained;
  }
  return chained;
}

}  // namespace lfi::emu
