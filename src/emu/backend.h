// Pluggable execution backends for the emulated CPU.
//
// Machine::Run() routes through this small strategy interface so an
// optimized interpreter can sit beside the reference one and be compared
// against it instruction-for-instruction (bench_emu_dispatch asserts
// byte-identical counters and traces; lfi-fuzz's chained differential
// mode diffs full architectural state). Backends are stateless
// process-wide singletons: all mutable state (decode caches, chain
// links, the data TLB) lives in the Machine, so one backend instance
// serves every Machine and switching dispatch modes between runs is
// always safe.
//
// Adding a backend: add a Dispatch enumerator (machine.h), implement
// EmuBackend in a new src/emu/backend_*.cc (typically via a private
// Machine method, befriended in machine.h), register it in BackendFor
// (backend.cc), and extend the identity gates listed in docs/DISPATCH.md.
#ifndef LFI_EMU_BACKEND_H_
#define LFI_EMU_BACKEND_H_

#include <cstdint>

#include "emu/machine.h"

namespace lfi::emu {

class EmuBackend {
 public:
  virtual ~EmuBackend() = default;
  virtual const char* name() const = 0;
  // Executes up to max_instructions on m; same contract as Machine::Run
  // (which handles the retired-counter delta before delegating here).
  virtual StopReason Run(Machine* m, uint64_t max_instructions) const = 0;
};

// The process-wide backend implementing dispatch mode d.
const EmuBackend& BackendFor(Dispatch d);

}  // namespace lfi::emu

#endif  // LFI_EMU_BACKEND_H_
