// The optimized interpreter backend (Dispatch::kChained): block chaining,
// direct-threaded dispatch, and memoized address translation.
//
// Three independent optimizations over the reference RunBlocks loop, all
// required to keep counters, simulated cycles, and traces bit-identical:
//
//  1. Block chaining. Each decoded block records its static successor PCs
//     (fallthrough + direct-branch target, computed in FetchBlock); the
//     first transition resolves the successor through the normal dispatch
//     path and installs a pointer link, after which a hot loop transfers
//     block->block with two compares — no LUT probe, no hash. Links are
//     trusted only while the mutation generation is unchanged (checked at
//     every edge) and die with ClearCaches(); the cache_clears_ snapshot
//     around link resolution keeps a clear inside FetchBlock from writing
//     through a dangling predecessor. Chained entries tally block_hits
//     exactly where the reference path's FetchBlock would have.
//
//  2. Direct-threaded inner loop. On GCC/Clang the per-instruction switch
//     becomes a computed goto through a label table built from
//     LFI_EMU_MN_LIST; the op bodies are the same exec_ops.inc text the
//     reference switch compiles, so semantics (and every Timing call, in
//     the same order) cannot diverge. Elsewhere it falls back to calling
//     the reference ExecInst per instruction — chaining still applies.
//
//  3. Memoized loads/stores. EXEC_READ/EXEC_WRITE bind to FastRead/
//     FastWrite: a direct-mapped TLB of raw page-payload pointers,
//     revalidated per access against AddressSpace::payload_epoch() (a
//     store can COW its own page mid-block, so per-block validation is
//     not enough). Writable pointers are never cached for executable
//     pages, so exec-page stores keep bumping the mutation generation on
//     the slow path. Misses fall through to AddressSpace::Read/Write,
//     which also produce the identical fault metadata.
//
// While an ExecHook is attached, RunChained delegates to the reference
// RunBlocks: observation wants per-instruction access traces, and the
// soundness fuzzer and snapshot oracle both pin the reference loop.
#include "emu/machine.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "emu/machine_internal.h"

namespace lfi::emu {

using arch::FpSize;
using arch::Inst;
using arch::InstCost;
using arch::Mn;
using arch::Reg;
using arch::Width;
using namespace internal;

// dtlb_epoch_ is synced once per ExecChainedRange call, not per access:
// within a range, only FastWrite's miss path can move payload_epoch (a
// guest store that COWs its page), and it re-syncs before refilling. No
// other epoch source can run mid-range (syscalls/brk stop the range, and
// host-side writes happen only between Machine::Run calls).
Machine::FastVal Machine::FastRead(uint64_t addr, unsigned size) {
  if (((addr ^ (addr + size - 1)) & ~kPageMask) == 0) {
    const uint64_t pg = addr / kPageSize;
    DtlbEntry& e = dtlb_[pg & (kDtlbSize - 1)];
    if (e.pageno == pg && e.ro != nullptr) {
      uint64_t value = 0;
      std::memcpy(&value, e.ro + (addr & kPageMask), size <= 8 ? size : 8);
      if (size < 8) value &= (uint64_t{1} << (8 * size)) - 1;
      return {value, true};
    }
    auto r = mem_->Read(addr, size);
    if (!r) return {0, false};
    const AddressSpace::PageProbe pr = mem_->ProbeDataPage(pg, false);
    if (pr.ro != nullptr) {
      dtlb_[pg & (kDtlbSize - 1)] = {pg, pr.ro, nullptr};
    }
    return {*r, true};
  }
  auto r = mem_->Read(addr, size);  // straddle: uncached slow path
  if (!r) return {0, false};
  return {*r, true};
}

bool Machine::FastWrite(uint64_t addr, uint64_t value, unsigned size) {
  if (((addr ^ (addr + size - 1)) & ~kPageMask) == 0) {
    const uint64_t pg = addr / kPageSize;
    DtlbEntry& e = dtlb_[pg & (kDtlbSize - 1)];
    if (e.pageno == pg && e.rw != nullptr) {
      std::memcpy(e.rw + (addr & kPageMask), &value, size <= 8 ? size : 8);
      return true;
    }
    if (!mem_->Write(addr, value, size).ok()) return false;
    // The write may have copied the page (COW) and bumped the payload
    // epoch; probe for the fresh pointers, adopt the epoch, then fill.
    const AddressSpace::PageProbe pr = mem_->ProbeDataPage(pg, true);
    SyncDtlbEpoch();
    dtlb_[pg & (kDtlbSize - 1)] = {pg, pr.ro, pr.rw};
    return true;
  }
  return mem_->Write(addr, value, size).ok();  // straddle: uncached
}

template <bool kCounting>
bool Machine::ExecChainedRange(const Block& blk, size_t take) {
  if (take == 0) return true;
  SyncDtlbEpoch();  // see FastRead: holds for the whole range
  CpuState& s = state_;
  const DecodedInst* di = blk.insts.data();
  const DecodedInst* const end = di + take;

#if defined(__GNUC__) || defined(__clang__)
  // Label table in Mn enum order (LFI_EMU_MN_LIST mirrors the enum; the
  // static_assert pins the count and a listed mnemonic without an op
  // body in exec_ops.inc is an undefined label — a compile error).
  static const void* const kTargets[] = {
#define LFI_EMU_TARGET(mn) &&tl_##mn,
      LFI_EMU_MN_LIST(LFI_EMU_TARGET)
#undef LFI_EMU_TARGET
  };
  static_assert(sizeof(kTargets) / sizeof(kTargets[0]) ==
                    static_cast<size_t>(Mn::kMsr) + 1,
                "dispatch table must cover every mnemonic");

  // Direct threading: resolve each instruction's handler label once (the
  // block's first execution) so steady-state dispatch skips the table.
  if (di->exec_label == nullptr) {
    for (const DecodedInst& d : blk.insts) {
      d.exec_label = kTargets[static_cast<size_t>(d.inst.mn)];
    }
  }
  goto* const_cast<void*>(di->exec_label);

#define LFI_EMU_LABEL(mn) tl_##mn:
#define EXEC_OP(...)                                 \
  LFI_EMU_MAP(LFI_EMU_LABEL, __VA_ARGS__) {          \
    [[maybe_unused]] const Inst& i = di->inst;       \
    [[maybe_unused]] const InstCost& cost = di->cost; \
    [[maybe_unused]] const Width w = i.width;        \
    uint64_t next_pc = s.pc + 4;
#define EXEC_OP_END                                         \
    s.pc = next_pc;                                         \
    if constexpr (kCounting) {                              \
      counters_->loads += di->class_flags & kClassLoad;     \
      counters_->stores += (di->class_flags >> 1) & 1;      \
      counters_->guards += (di->class_flags >> 2) & 1;      \
    }                                                       \
    if (++di == end) return true;                           \
    goto* const_cast<void*>(di->exec_label);                \
  }
#define EXEC_READ(addr, size) FastRead((addr), (size))
#define EXEC_WRITE(addr, value, size) FastWrite((addr), (value), (size))
#define EXEC_MEMFAULT() return MemFaultStop()
#define EXEC_STOP() return false
#define EXEC_MEM_EXTRA(addr, is_store) \
  timing_.MemoryExtraFast((addr), (is_store))
#define EXEC_PREDICT_COND(pc, taken) \
  timing_.predictor().PredictConditionalFast((pc), (taken))
#define EXEC_PREDICT_IND(pc, target) \
  timing_.predictor().PredictIndirectFast((pc), (target))
#include "emu/exec_ops.inc"  // NOLINT(build/include)
#undef EXEC_PREDICT_IND
#undef EXEC_PREDICT_COND
#undef EXEC_MEM_EXTRA
#undef EXEC_STOP
#undef EXEC_MEMFAULT
#undef EXEC_WRITE
#undef EXEC_READ
#undef EXEC_OP_END
#undef EXEC_OP
#undef LFI_EMU_LABEL

  return true;  // not reached: every op body returns or jumps
#else
  // No computed goto on this compiler: chain blocks but execute each
  // instruction through the reference switch.
  for (; di != end; ++di) {
    if (!ExecInst(di->inst, di->cost)) return false;
    if constexpr (kCounting) {
      counters_->loads += di->class_flags & kClassLoad;
      counters_->stores += (di->class_flags >> 1) & 1;
      counters_->guards += (di->class_flags >> 2) & 1;
    }
  }
  return true;
#endif
}

template <bool kCounting>
StopReason Machine::RunChainedImpl(uint64_t max_instructions) {
  uint64_t executed = 0;
  for (;;) {
    // Dispatch entry: mirrors RunBlocks' loop head exactly (budget, then
    // runtime region, then fetch).
    if (executed >= max_instructions) {
      stop_ = StopReason::kStepLimit;
      return stop_;
    }
    if (state_.pc - rt_base_ < rt_len_) {
      stop_ = StopReason::kRuntimeEntry;
      return stop_;
    }
    const Block* b = FetchBlock(state_.pc);
    if (b == nullptr) {
      stop_ = StopReason::kFault;
      return stop_;
    }
    // Chained flight: stay block->block until the budget, a generation
    // change, the runtime region, or an unchainable edge intervenes.
    for (;;) {
      const uint64_t budget = max_instructions - executed;
      const size_t size = b->insts.size();
      const size_t take = size <= budget ? size : static_cast<size_t>(budget);
      if (!ExecChainedRange<kCounting>(*b, take)) return stop_;
      executed += take;
      if (take < size || executed >= max_instructions) {
        stop_ = StopReason::kStepLimit;  // step budget exhausted
        return stop_;
      }
      // A changed generation means every cached block — and every link —
      // is stale: bail to dispatch, whose FetchBlock revalidates (and
      // counts the invalidation exactly as the reference path would).
      if (mem_->mutation_generation() != cache_generation_) break;
      if (state_.pc - rt_base_ < rt_len_) {
        stop_ = StopReason::kRuntimeEntry;
        return stop_;
      }
      const Block* nxt;
      const Block** slot;
      if (state_.pc == b->fall_pc) {
        nxt = b->fall_link;
        slot = &b->fall_link;
      } else if (state_.pc == b->branch_pc) {
        nxt = b->branch_link;
        slot = &b->branch_link;
      } else {
        break;  // indirect target: dispatch resolves (and counts) it
      }
      if (nxt != nullptr) {
        // Chained transition. The successor is cached by construction, so
        // the reference path's FetchBlock would have counted a hit here.
        if constexpr (kCounting) ++counters_->block_hits;
      } else {
        const uint64_t clears = cache_clears_;
        nxt = FetchBlock(state_.pc);  // tallies hit/miss itself
        if (nxt == nullptr) {
          stop_ = StopReason::kFault;
          return stop_;
        }
        // Install the link only if no clear ran inside FetchBlock: a
        // clear destroyed *b, taking the slot with it.
        if (cache_clears_ == clears) *slot = nxt;
      }
      b = nxt;
    }
  }
}

StopReason Machine::RunChained(uint64_t max_instructions) {
  if (hook_ != nullptr) return RunBlocks(max_instructions);
  return counters_ != nullptr ? RunChainedImpl<true>(max_instructions)
                              : RunChainedImpl<false>(max_instructions);
}

}  // namespace lfi::emu
