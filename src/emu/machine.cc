#include "emu/machine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "arch/decode.h"
#include "emu/backend.h"
#include "emu/machine_internal.h"

namespace lfi::emu {

using arch::FpSize;
using arch::Inst;
using arch::InstCost;
using arch::Mn;
using arch::Reg;
using arch::Width;
using namespace internal;

namespace {

// True for instructions that end a decoded basic block: anything that can
// redirect PC or stop execution. Everything else falls through to pc+4.
bool EndsBlock(Mn mn) {
  switch (mn) {
    case Mn::kB: case Mn::kBl: case Mn::kBCond:
    case Mn::kCbz: case Mn::kCbnz: case Mn::kTbz: case Mn::kTbnz:
    case Mn::kBr: case Mn::kBlr: case Mn::kRet:
    case Mn::kBrk: case Mn::kSvc: case Mn::kMrs: case Mn::kMsr:
      return true;
    default:
      return false;
  }
}

// Cap on decoded-block length; blocks also never cross a page boundary,
// so an executability check at decode time covers every instruction.
constexpr size_t kMaxBlockInsts = 256;
// Backstop against unbounded cache growth across many sandboxes.
constexpr size_t kMaxCachedBlocks = size_t{1} << 15;

}  // namespace

Machine::Machine(AddressSpace* mem, const arch::CoreParams& params)
    : mem_(mem), timing_(params), block_lut_(size_t{1} << kBlockLutBits) {}

uint8_t Machine::ClassifyInst(const Inst& i) {
  uint8_t f = 0;
  if (arch::IsLoad(i)) f |= kClassLoad;
  if (arch::IsStore(i)) f |= kClassStore;
  if (arch::IsGuardFor(i, i.rd) || arch::IsSpGuard(i)) f |= kClassGuard;
  return f;
}

void Machine::ClearCaches() {
  block_cache_.clear();
  decode_cache_.clear();
  std::fill(block_lut_.begin(), block_lut_.end(), BlockLutEntry{});
  // Every chain link pointed into block_cache_ nodes that no longer
  // exist; the bump tells an in-flight link resolution not to write into
  // a destroyed predecessor.
  ++cache_clears_;
}

// Legacy per-instruction fetch path (Dispatch::kStep). Executability is
// verified once per page; staleness across Map/Unmap/Protect is handled
// by the generation check in RunSteps.
const Inst* Machine::FetchDecode(uint64_t pc) {
  const uint64_t pageno = pc / kPageSize;
  auto it = decode_cache_.find(pageno);
  if (it == decode_cache_.end()) {
    if (!mem_->Check(pageno * kPageSize, kPageSize, kPermExec)) {
      auto f = mem_->Fetch(pc);  // sets last_fault
      (void)f;
      fault_ = {CpuFault::Kind::kFetch, pc, mem_->last_fault(), "fetch"};
      return nullptr;
    }
    DecodedPage dp;
    dp.insts.resize(kPageSize / 4);
    dp.status.assign(kPageSize / 4, 0);
    it = decode_cache_.emplace(pageno, std::move(dp)).first;
  }
  DecodedPage& dp = it->second;
  const size_t idx = (pc & kPageMask) / 4;
  if (dp.status[idx] == 0) {
    auto word = mem_->Fetch(pc);
    if (!word) {
      fault_ = {CpuFault::Kind::kFetch, pc, mem_->last_fault(), "fetch"};
      return nullptr;
    }
    auto inst = arch::Decode(*word);
    if (!inst) {
      dp.status[idx] = 2;
      fault_ = {CpuFault::Kind::kDecode, pc, {}, inst.error()};
      return nullptr;
    }
    dp.insts[idx] = *inst;
    dp.status[idx] = 1;
  } else if (dp.status[idx] == 2) {
    fault_ = {CpuFault::Kind::kDecode, pc, {}, "bad instruction (cached)"};
    return nullptr;
  }
  return &dp.insts[idx];
}

const Machine::Block* Machine::FetchBlock(uint64_t pc) {
  RevalidateCaches();
  BlockLutEntry& lut = block_lut_[LutIndex(pc)];
  if (lut.pc == pc) {
    if (counters_ != nullptr) ++counters_->block_hits;
    return lut.block;
  }
  auto it = block_cache_.find(pc);
  if (it != block_cache_.end()) {
    if (counters_ != nullptr) ++counters_->block_hits;
    lut = {pc, &it->second};
    return lut.block;
  }
  if (pc % 4 != 0) {
    fault_ = {CpuFault::Kind::kPcAlign, pc, {}, "misaligned pc"};
    return nullptr;
  }
  const uint64_t page_base = pc & ~kPageMask;
  if (!mem_->Check(page_base, kPageSize, kPermExec)) {
    auto f = mem_->Fetch(pc);  // sets last_fault with the precise cause
    (void)f;
    fault_ = {CpuFault::Kind::kFetch, pc, mem_->last_fault(), "fetch"};
    return nullptr;
  }
  Block b;
  b.insts.reserve(8);
  for (uint64_t cur = pc; cur < page_base + kPageSize; cur += 4) {
    auto word = mem_->Fetch(cur);
    if (!word) break;  // unreachable: the whole page was checked above
    auto inst = arch::Decode(*word);
    if (!inst) {
      if (b.insts.empty()) {
        fault_ = {CpuFault::Kind::kDecode, pc, {}, inst.error()};
        return nullptr;
      }
      // End the block before the undecodable word so the fault fires only
      // if control actually reaches it.
      break;
    }
    b.insts.push_back(
        {*inst, arch::CostOf(*inst, timing_.params()), ClassifyInst(*inst)});
    if (EndsBlock(inst->mn) || b.insts.size() >= kMaxBlockInsts) break;
  }
  // Record the static successor PCs the chained backend links through.
  // Only direct control flow is chainable; br/blr/ret targets are data-
  // dependent and stopping instructions have no successor.
  const Inst& last = b.insts.back().inst;
  const uint64_t last_pc = pc + 4 * (b.insts.size() - 1);
  switch (last.mn) {
    case Mn::kB: case Mn::kBl:
      b.branch_pc = last_pc + static_cast<uint64_t>(last.imm);
      break;
    case Mn::kBCond: case Mn::kCbz: case Mn::kCbnz:
    case Mn::kTbz: case Mn::kTbnz:
      b.branch_pc = last_pc + static_cast<uint64_t>(last.imm);
      b.fall_pc = last_pc + 4;
      break;
    case Mn::kBr: case Mn::kBlr: case Mn::kRet:
    case Mn::kBrk: case Mn::kSvc: case Mn::kMrs: case Mn::kMsr:
      break;
    default:
      // Split block (size cap, page end, or undecodable next word):
      // control falls through to the next address.
      b.fall_pc = last_pc + 4;
      break;
  }
  if (counters_ != nullptr) ++counters_->block_misses;
  if (block_cache_.size() >= kMaxCachedBlocks) ClearCaches();
  const Block* nb = &block_cache_.emplace(pc, std::move(b)).first->second;
  block_lut_[LutIndex(pc)] = {pc, nb};
  return nb;
}

StopReason Machine::Run(uint64_t max_instructions) {
  const EmuBackend& be = BackendFor(dispatch_);
  if (counters_ == nullptr) return be.Run(this, max_instructions);
  // Retired instructions are counted as a Timing delta around the whole
  // run rather than per instruction: Timing::Issue already increments its
  // own retire counter on the hot path, so this is exact and free.
  const uint64_t retired_before = timing_.Retired();
  const StopReason r = be.Run(this, max_instructions);
  counters_->retired += timing_.Retired() - retired_before;
  return r;
}

StopReason Machine::RunBlocks(uint64_t max_instructions) {
  uint64_t executed = 0;
  while (executed < max_instructions) {
    // Blocks end at every control transfer, so PC can only enter the
    // runtime region (or need realignment/revalidation) at a block edge:
    // one check per block replaces one check per instruction.
    if (state_.pc - rt_base_ < rt_len_) {
      stop_ = StopReason::kRuntimeEntry;
      return stop_;
    }
    const Block* b = FetchBlock(state_.pc);
    if (b == nullptr) {
      stop_ = StopReason::kFault;
      return stop_;
    }
    const uint64_t budget = max_instructions - executed;
    const size_t take = b->insts.size() <= budget
                            ? b->insts.size()
                            : static_cast<size_t>(budget);
    if (counters_ == nullptr) {
      for (size_t k = 0; k < take; ++k) {
        const DecodedInst& di = b->insts[k];
        if (hook_ == nullptr ? !ExecInst(di.inst, di.cost)
                             : !ExecHooked(di.inst, di.cost)) {
          return stop_;
        }
      }
    } else {
      // Counting twin of the loop above; classes come from the flags byte
      // precomputed at decode time and are tallied only after the
      // instruction retires (a faulting instruction counts nothing).
      for (size_t k = 0; k < take; ++k) {
        const DecodedInst& di = b->insts[k];
        if (hook_ == nullptr ? !ExecInst(di.inst, di.cost)
                             : !ExecHooked(di.inst, di.cost)) {
          return stop_;
        }
        counters_->loads += di.class_flags & kClassLoad;
        counters_->stores += (di.class_flags >> 1) & 1;
        counters_->guards += (di.class_flags >> 2) & 1;
      }
    }
    executed += take;
    if (take < b->insts.size()) break;  // step budget exhausted mid-block
  }
  stop_ = StopReason::kStepLimit;
  return stop_;
}

StopReason Machine::RunSteps(uint64_t max_instructions) {
  RevalidateCaches();
  for (uint64_t n = 0; n < max_instructions; ++n) {
    if (state_.pc - rt_base_ < rt_len_) {
      stop_ = StopReason::kRuntimeEntry;
      return stop_;
    }
    if (!Step()) return stop_;
  }
  stop_ = StopReason::kStepLimit;
  return stop_;
}

bool Machine::Step() {
  CpuState& s = state_;
  if (s.pc % 4 != 0) {
    fault_ = {CpuFault::Kind::kPcAlign, s.pc, {}, "misaligned pc"};
    stop_ = StopReason::kFault;
    return false;
  }
  const Inst* ip = FetchDecode(s.pc);
  if (ip == nullptr) {
    stop_ = StopReason::kFault;
    return false;
  }
  const InstCost cost = arch::CostOf(*ip, timing_.params());
  const bool ok = hook_ == nullptr ? ExecInst(*ip, cost) : ExecHooked(*ip, cost);
  if (ok && counters_ != nullptr) {
    // kStep has no decode-time flags byte; classify on the fly (this path
    // is the legacy baseline, not the hot one).
    const uint8_t f = ClassifyInst(*ip);
    counters_->loads += f & kClassLoad;
    counters_->stores += (f >> 1) & 1;
    counters_->guards += (f >> 2) & 1;
  }
  return ok;
}

bool Machine::ExecHooked(const Inst& i, const InstCost& cost) {
  hook_trace_.Clear();
  const uint64_t pc = state_.pc;
  const bool ok = ExecInst(i, cost);
  if (!hook_->OnInst(i, pc, state_, hook_trace_.records(), !ok)) {
    // The hook's verdict wins over whatever stop ExecInst produced: a
    // violation on a faulting instruction is still a violation.
    stop_ = StopReason::kHookStop;
    return false;
  }
  return ok;
}

// Reference interpreter: one switch dispatch per instruction. The op
// bodies live in exec_ops.inc, shared verbatim with the direct-threaded
// chained backend (backend_chained.cc) so the two cannot diverge.
bool Machine::ExecInst(const Inst& i, const InstCost& cost) {
  CpuState& s = state_;
  const Width w = i.width;
  uint64_t next_pc = s.pc + 4;

  switch (i.mn) {
#define LFI_EMU_CASE(mn) case Mn::mn:
#define EXEC_OP(...) LFI_EMU_MAP(LFI_EMU_CASE, __VA_ARGS__) {
#define EXEC_OP_END \
  }                 \
  break;
#define EXEC_READ(addr, size) mem_->Read((addr), (size))
#define EXEC_WRITE(addr, value, size) mem_->Write((addr), (value), (size)).ok()
#define EXEC_MEMFAULT() return MemFaultStop()
#define EXEC_STOP() return false
#define EXEC_MEM_EXTRA(addr, is_store) timing_.MemoryExtra((addr), (is_store))
#define EXEC_PREDICT_COND(pc, taken) \
  timing_.predictor().PredictConditional((pc), (taken))
#define EXEC_PREDICT_IND(pc, target) \
  timing_.predictor().PredictIndirect((pc), (target))
#include "emu/exec_ops.inc"  // NOLINT(build/include)
#undef EXEC_PREDICT_IND
#undef EXEC_PREDICT_COND
#undef EXEC_MEM_EXTRA
#undef EXEC_STOP
#undef EXEC_MEMFAULT
#undef EXEC_WRITE
#undef EXEC_READ
#undef EXEC_OP_END
#undef EXEC_OP
#undef LFI_EMU_CASE
  }

  s.pc = next_pc;
  return true;
}

}  // namespace lfi::emu
