#include "emu/machine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "arch/decode.h"

namespace lfi::emu {

namespace {

using arch::AddrMode;
using arch::Cond;
using arch::Extend;
using arch::FpSize;
using arch::Inst;
using arch::InstCost;
using arch::Mn;
using arch::Reg;
using arch::Shift;
using arch::Width;

// Scoreboard index for a register operand (-1 = no dependency).
int SIdx(Reg r) {
  if (r.IsNone() || r.IsZr()) return -1;
  if (r.IsSp()) return Timing::kSpIdx;
  return r.id();
}

uint64_t MaskW(uint64_t v, Width w) {
  return w == Width::kW ? (v & 0xffffffffu) : v;
}

uint64_t ShiftVal(uint64_t v, Shift s, unsigned amt, Width w) {
  const unsigned bits = w == Width::kX ? 64 : 32;
  v = MaskW(v, w);
  if (amt == 0 && s != Shift::kRor) return v;
  switch (s) {
    case Shift::kLsl:
      return MaskW(amt >= bits ? 0 : v << amt, w);
    case Shift::kLsr:
      return amt >= bits ? 0 : v >> amt;
    case Shift::kAsr: {
      const int64_t sv = w == Width::kX
                             ? static_cast<int64_t>(v)
                             : static_cast<int64_t>(static_cast<int32_t>(v));
      return MaskW(static_cast<uint64_t>(sv >> (amt >= bits ? bits - 1 : amt)),
                   w);
    }
    case Shift::kRor:
      amt %= bits;
      if (amt == 0) return v;
      return MaskW((v >> amt) | (v << (bits - amt)), w);
  }
  return v;
}

uint64_t ExtendVal(uint64_t v, Extend e, unsigned amt) {
  switch (e) {
    case Extend::kUxtb: v &= 0xff; break;
    case Extend::kUxth: v &= 0xffff; break;
    case Extend::kUxtw: v &= 0xffffffff; break;
    case Extend::kUxtx: break;
    case Extend::kSxtb:
      v = static_cast<uint64_t>(static_cast<int64_t>(static_cast<int8_t>(v)));
      break;
    case Extend::kSxth:
      v = static_cast<uint64_t>(static_cast<int64_t>(static_cast<int16_t>(v)));
      break;
    case Extend::kSxtw:
      v = static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(v)));
      break;
    case Extend::kSxtx:
      break;
  }
  return v << amt;
}

bool EvalCond(const CpuState& s, Cond c) {
  switch (c) {
    case Cond::kEq: return s.z;
    case Cond::kNe: return !s.z;
    case Cond::kHs: return s.c;
    case Cond::kLo: return !s.c;
    case Cond::kMi: return s.n;
    case Cond::kPl: return !s.n;
    case Cond::kVs: return s.v;
    case Cond::kVc: return !s.v;
    case Cond::kHi: return s.c && !s.z;
    case Cond::kLs: return !s.c || s.z;
    case Cond::kGe: return s.n == s.v;
    case Cond::kLt: return s.n != s.v;
    case Cond::kGt: return !s.z && s.n == s.v;
    case Cond::kLe: return s.z || s.n != s.v;
    case Cond::kAl: return true;
  }
  return true;
}

// a + b + carry with NZCV, in the given width.
uint64_t AddWithFlags(uint64_t a, uint64_t b, bool carry, Width w,
                      CpuState* s) {
  if (w == Width::kW) {
    const uint32_t a32 = static_cast<uint32_t>(a);
    const uint32_t b32 = static_cast<uint32_t>(b);
    const uint64_t wide = uint64_t{a32} + b32 + (carry ? 1 : 0);
    const uint32_t r = static_cast<uint32_t>(wide);
    s->n = (r >> 31) & 1;
    s->z = r == 0;
    s->c = (wide >> 32) != 0;
    s->v = (~(a32 ^ b32) & (a32 ^ r)) >> 31;
    return r;
  }
  const uint64_t r = a + b + (carry ? 1 : 0);
  s->n = (r >> 63) & 1;
  s->z = r == 0;
  // Carry-out of a 64-bit add.
  s->c = (r < a) || (carry && r == a);
  s->v = ((~(a ^ b) & (a ^ r)) >> 63) & 1;
  return r;
}

// True for instructions that end a decoded basic block: anything that can
// redirect PC or stop execution. Everything else falls through to pc+4.
bool EndsBlock(Mn mn) {
  switch (mn) {
    case Mn::kB: case Mn::kBl: case Mn::kBCond:
    case Mn::kCbz: case Mn::kCbnz: case Mn::kTbz: case Mn::kTbnz:
    case Mn::kBr: case Mn::kBlr: case Mn::kRet:
    case Mn::kBrk: case Mn::kSvc: case Mn::kMrs: case Mn::kMsr:
      return true;
    default:
      return false;
  }
}

// Cap on decoded-block length; blocks also never cross a page boundary,
// so an executability check at decode time covers every instruction.
constexpr size_t kMaxBlockInsts = 256;
// Backstop against unbounded cache growth across many sandboxes.
constexpr size_t kMaxCachedBlocks = size_t{1} << 15;

double BitsToF64(uint64_t b) { return std::bit_cast<double>(b); }
uint64_t F64ToBits(double d) { return std::bit_cast<uint64_t>(d); }
float BitsToF32(uint64_t b) {
  return std::bit_cast<float>(static_cast<uint32_t>(b));
}
uint64_t F32ToBits(float f) { return std::bit_cast<uint32_t>(f); }

}  // namespace

Machine::Machine(AddressSpace* mem, const arch::CoreParams& params)
    : mem_(mem), timing_(params), block_lut_(size_t{1} << kBlockLutBits) {}

uint8_t Machine::ClassifyInst(const Inst& i) {
  uint8_t f = 0;
  if (arch::IsLoad(i)) f |= kClassLoad;
  if (arch::IsStore(i)) f |= kClassStore;
  if (arch::IsGuardFor(i, i.rd) || arch::IsSpGuard(i)) f |= kClassGuard;
  return f;
}

void Machine::ClearCaches() {
  block_cache_.clear();
  decode_cache_.clear();
  std::fill(block_lut_.begin(), block_lut_.end(), BlockLutEntry{});
}

uint64_t Machine::ReadReg(Reg r) const {
  if (r.IsZr() || r.IsNone()) return 0;
  if (r.IsSp()) return state_.sp;
  return state_.x[r.id()];
}

void Machine::WriteReg(Reg r, uint64_t v) {
  if (r.IsZr() || r.IsNone()) return;
  if (r.IsSp()) {
    state_.sp = v;
    return;
  }
  state_.x[r.id()] = v;
}

// Legacy per-instruction fetch path (Dispatch::kStep). Executability is
// verified once per page; staleness across Map/Unmap/Protect is handled
// by the generation check in RunSteps.
const Inst* Machine::FetchDecode(uint64_t pc) {
  const uint64_t pageno = pc / kPageSize;
  auto it = decode_cache_.find(pageno);
  if (it == decode_cache_.end()) {
    if (!mem_->Check(pageno * kPageSize, kPageSize, kPermExec)) {
      auto f = mem_->Fetch(pc);  // sets last_fault
      (void)f;
      fault_ = {CpuFault::Kind::kFetch, pc, mem_->last_fault(), "fetch"};
      return nullptr;
    }
    DecodedPage dp;
    dp.insts.resize(kPageSize / 4);
    dp.status.assign(kPageSize / 4, 0);
    it = decode_cache_.emplace(pageno, std::move(dp)).first;
  }
  DecodedPage& dp = it->second;
  const size_t idx = (pc & kPageMask) / 4;
  if (dp.status[idx] == 0) {
    auto word = mem_->Fetch(pc);
    if (!word) {
      fault_ = {CpuFault::Kind::kFetch, pc, mem_->last_fault(), "fetch"};
      return nullptr;
    }
    auto inst = arch::Decode(*word);
    if (!inst) {
      dp.status[idx] = 2;
      fault_ = {CpuFault::Kind::kDecode, pc, {}, inst.error()};
      return nullptr;
    }
    dp.insts[idx] = *inst;
    dp.status[idx] = 1;
  } else if (dp.status[idx] == 2) {
    fault_ = {CpuFault::Kind::kDecode, pc, {}, "bad instruction (cached)"};
    return nullptr;
  }
  return &dp.insts[idx];
}

const Machine::Block* Machine::FetchBlock(uint64_t pc) {
  RevalidateCaches();
  BlockLutEntry& lut = block_lut_[LutIndex(pc)];
  if (lut.pc == pc) {
    if (counters_ != nullptr) ++counters_->block_hits;
    return lut.block;
  }
  auto it = block_cache_.find(pc);
  if (it != block_cache_.end()) {
    if (counters_ != nullptr) ++counters_->block_hits;
    lut = {pc, &it->second};
    return lut.block;
  }
  if (pc % 4 != 0) {
    fault_ = {CpuFault::Kind::kPcAlign, pc, {}, "misaligned pc"};
    return nullptr;
  }
  const uint64_t page_base = pc & ~kPageMask;
  if (!mem_->Check(page_base, kPageSize, kPermExec)) {
    auto f = mem_->Fetch(pc);  // sets last_fault with the precise cause
    (void)f;
    fault_ = {CpuFault::Kind::kFetch, pc, mem_->last_fault(), "fetch"};
    return nullptr;
  }
  Block b;
  b.insts.reserve(8);
  for (uint64_t cur = pc; cur < page_base + kPageSize; cur += 4) {
    auto word = mem_->Fetch(cur);
    if (!word) break;  // unreachable: the whole page was checked above
    auto inst = arch::Decode(*word);
    if (!inst) {
      if (b.insts.empty()) {
        fault_ = {CpuFault::Kind::kDecode, pc, {}, inst.error()};
        return nullptr;
      }
      // End the block before the undecodable word so the fault fires only
      // if control actually reaches it.
      break;
    }
    b.insts.push_back(
        {*inst, arch::CostOf(*inst, timing_.params()), ClassifyInst(*inst)});
    if (EndsBlock(inst->mn) || b.insts.size() >= kMaxBlockInsts) break;
  }
  if (counters_ != nullptr) ++counters_->block_misses;
  if (block_cache_.size() >= kMaxCachedBlocks) {
    block_cache_.clear();
    std::fill(block_lut_.begin(), block_lut_.end(), BlockLutEntry{});
  }
  const Block* nb = &block_cache_.emplace(pc, std::move(b)).first->second;
  block_lut_[LutIndex(pc)] = {pc, nb};
  return nb;
}

StopReason Machine::Run(uint64_t max_instructions) {
  if (counters_ == nullptr) {
    return dispatch_ == Dispatch::kBlock ? RunBlocks(max_instructions)
                                         : RunSteps(max_instructions);
  }
  // Retired instructions are counted as a Timing delta around the whole
  // run rather than per instruction: Timing::Issue already increments its
  // own retire counter on the hot path, so this is exact and free.
  const uint64_t retired_before = timing_.Retired();
  const StopReason r = dispatch_ == Dispatch::kBlock
                           ? RunBlocks(max_instructions)
                           : RunSteps(max_instructions);
  counters_->retired += timing_.Retired() - retired_before;
  return r;
}

StopReason Machine::RunBlocks(uint64_t max_instructions) {
  uint64_t executed = 0;
  while (executed < max_instructions) {
    // Blocks end at every control transfer, so PC can only enter the
    // runtime region (or need realignment/revalidation) at a block edge:
    // one check per block replaces one check per instruction.
    if (state_.pc - rt_base_ < rt_len_) {
      stop_ = StopReason::kRuntimeEntry;
      return stop_;
    }
    const Block* b = FetchBlock(state_.pc);
    if (b == nullptr) {
      stop_ = StopReason::kFault;
      return stop_;
    }
    const uint64_t budget = max_instructions - executed;
    const size_t take = b->insts.size() <= budget
                            ? b->insts.size()
                            : static_cast<size_t>(budget);
    if (counters_ == nullptr) {
      for (size_t k = 0; k < take; ++k) {
        const DecodedInst& di = b->insts[k];
        if (hook_ == nullptr ? !ExecInst(di.inst, di.cost)
                             : !ExecHooked(di.inst, di.cost)) {
          return stop_;
        }
      }
    } else {
      // Counting twin of the loop above; classes come from the flags byte
      // precomputed at decode time and are tallied only after the
      // instruction retires (a faulting instruction counts nothing).
      for (size_t k = 0; k < take; ++k) {
        const DecodedInst& di = b->insts[k];
        if (hook_ == nullptr ? !ExecInst(di.inst, di.cost)
                             : !ExecHooked(di.inst, di.cost)) {
          return stop_;
        }
        counters_->loads += di.class_flags & kClassLoad;
        counters_->stores += (di.class_flags >> 1) & 1;
        counters_->guards += (di.class_flags >> 2) & 1;
      }
    }
    executed += take;
    if (take < b->insts.size()) break;  // step budget exhausted mid-block
  }
  stop_ = StopReason::kStepLimit;
  return stop_;
}

StopReason Machine::RunSteps(uint64_t max_instructions) {
  RevalidateCaches();
  for (uint64_t n = 0; n < max_instructions; ++n) {
    if (state_.pc - rt_base_ < rt_len_) {
      stop_ = StopReason::kRuntimeEntry;
      return stop_;
    }
    if (!Step()) return stop_;
  }
  stop_ = StopReason::kStepLimit;
  return stop_;
}

bool Machine::Step() {
  CpuState& s = state_;
  if (s.pc % 4 != 0) {
    fault_ = {CpuFault::Kind::kPcAlign, s.pc, {}, "misaligned pc"};
    stop_ = StopReason::kFault;
    return false;
  }
  const Inst* ip = FetchDecode(s.pc);
  if (ip == nullptr) {
    stop_ = StopReason::kFault;
    return false;
  }
  const InstCost cost = arch::CostOf(*ip, timing_.params());
  const bool ok = hook_ == nullptr ? ExecInst(*ip, cost) : ExecHooked(*ip, cost);
  if (ok && counters_ != nullptr) {
    // kStep has no decode-time flags byte; classify on the fly (this path
    // is the legacy baseline, not the hot one).
    const uint8_t f = ClassifyInst(*ip);
    counters_->loads += f & kClassLoad;
    counters_->stores += (f >> 1) & 1;
    counters_->guards += (f >> 2) & 1;
  }
  return ok;
}

bool Machine::ExecHooked(const Inst& i, const InstCost& cost) {
  hook_trace_.Clear();
  const uint64_t pc = state_.pc;
  const bool ok = ExecInst(i, cost);
  if (!hook_->OnInst(i, pc, state_, hook_trace_.records(), !ok)) {
    // The hook's verdict wins over whatever stop ExecInst produced: a
    // violation on a faulting instruction is still a violation.
    stop_ = StopReason::kHookStop;
    return false;
  }
  return ok;
}

bool Machine::ExecInst(const Inst& i, const InstCost& cost) {
  CpuState& s = state_;
  const Width w = i.width;
  uint64_t next_pc = s.pc + 4;

  auto memfault = [&]() {
    fault_ = {CpuFault::Kind::kMemory, s.pc, mem_->last_fault(), "data"};
    stop_ = StopReason::kFault;
    return false;
  };

  // Computes the effective address and (for writeback modes) the new base
  // value of a load/store.
  auto effaddr = [&](uint64_t* writeback) -> uint64_t {
    const auto& m = i.mem;
    const uint64_t base = ReadReg(m.base);
    switch (m.mode) {
      case AddrMode::kImm:
        return base + static_cast<uint64_t>(m.imm);
      case AddrMode::kPreIndex:
        *writeback = base + static_cast<uint64_t>(m.imm);
        return *writeback;
      case AddrMode::kPostIndex:
        *writeback = base + static_cast<uint64_t>(m.imm);
        return base;
      case AddrMode::kRegLsl:
        return base + (ReadReg(m.index) << m.shift);
      case AddrMode::kRegUxtw:
        return base + ((ReadReg(m.index) & 0xffffffffu) << m.shift);
      case AddrMode::kRegSxtw:
        return base +
               (static_cast<uint64_t>(static_cast<int64_t>(
                    static_cast<int32_t>(ReadReg(m.index)))) << m.shift);
    }
    return base;
  };

  switch (i.mn) {
    // ---- ALU immediate ----
    case Mn::kAddImm: case Mn::kSubImm: {
      const uint64_t a = ReadReg(i.rn);
      const uint64_t b = static_cast<uint64_t>(i.imm);
      const uint64_t r =
          MaskW(i.mn == Mn::kAddImm ? a + b : a - b, w);
      WriteReg(i.rd, r);
      const int srcs[] = {SIdx(i.rn)};
      timing_.Issue(cost, srcs, 1, SIdx(i.rd));
      break;
    }
    case Mn::kAddsImm: case Mn::kSubsImm: {
      const uint64_t a = ReadReg(i.rn);
      const uint64_t b = static_cast<uint64_t>(i.imm);
      const uint64_t r = i.mn == Mn::kAddsImm
                             ? AddWithFlags(a, b, false, w, &s)
                             : AddWithFlags(a, ~b, true, w, &s);
      WriteReg(i.rd, MaskW(r, w));
      const int srcs[] = {SIdx(i.rn)};
      const uint64_t done = timing_.Issue(cost, srcs, 1, SIdx(i.rd));
      timing_.SetReady(Timing::kFlagsIdx, done);
      break;
    }
    // ---- ALU register ----
    case Mn::kAddReg: case Mn::kSubReg:
    case Mn::kAddsReg: case Mn::kSubsReg: {
      const uint64_t a = ReadReg(i.rn);
      const uint64_t b = ShiftVal(ReadReg(i.rm), i.shift, i.shift_amount, w);
      const bool sub = i.mn == Mn::kSubReg || i.mn == Mn::kSubsReg;
      const bool flags = i.mn == Mn::kAddsReg || i.mn == Mn::kSubsReg;
      uint64_t r;
      if (flags) {
        r = sub ? AddWithFlags(a, MaskW(~b, w), true, w, &s)
                : AddWithFlags(a, b, false, w, &s);
      } else {
        r = sub ? a - b : a + b;
      }
      WriteReg(i.rd, MaskW(r, w));
      const int srcs[] = {SIdx(i.rn), SIdx(i.rm)};
      const uint64_t done = timing_.Issue(cost, srcs, 2, SIdx(i.rd));
      if (flags) timing_.SetReady(Timing::kFlagsIdx, done);
      break;
    }
    case Mn::kAndImm: case Mn::kAndsImm: case Mn::kOrrImm: case Mn::kEorImm:
    case Mn::kAndReg: case Mn::kAndsReg: case Mn::kOrrReg:
    case Mn::kEorReg: case Mn::kBicReg: {
      const uint64_t a = MaskW(ReadReg(i.rn), w);
      const bool immform = i.mn == Mn::kAndImm || i.mn == Mn::kAndsImm ||
                           i.mn == Mn::kOrrImm || i.mn == Mn::kEorImm;
      const uint64_t b =
          immform ? static_cast<uint64_t>(i.imm)
                  : ShiftVal(ReadReg(i.rm), i.shift, i.shift_amount, w);
      uint64_t r = 0;
      switch (i.mn) {
        case Mn::kAndReg: case Mn::kAndsReg:
        case Mn::kAndImm: case Mn::kAndsImm: r = a & b; break;
        case Mn::kOrrReg: case Mn::kOrrImm: r = a | b; break;
        case Mn::kEorReg: case Mn::kEorImm: r = a ^ b; break;
        case Mn::kBicReg: r = a & ~b; break;
        default: break;
      }
      r = MaskW(r, w);
      WriteReg(i.rd, r);
      const int srcs[] = {SIdx(i.rn), SIdx(i.rm)};
      const uint64_t done = timing_.Issue(cost, srcs, 2, SIdx(i.rd));
      if (i.mn == Mn::kAndsReg || i.mn == Mn::kAndsImm) {
        s.n = w == Width::kX ? (r >> 63) & 1 : (r >> 31) & 1;
        s.z = r == 0;
        s.c = false;
        s.v = false;
        timing_.SetReady(Timing::kFlagsIdx, done);
      }
      break;
    }
    case Mn::kAddExt: case Mn::kSubExt: {
      const uint64_t a = ReadReg(i.rn);
      const uint64_t b = ExtendVal(ReadReg(i.rm), i.ext, i.shift_amount);
      const uint64_t r = MaskW(i.mn == Mn::kAddExt ? a + b : a - b, w);
      WriteReg(i.rd, r);
      const int srcs[] = {SIdx(i.rn), SIdx(i.rm)};
      timing_.Issue(cost, srcs, 2, SIdx(i.rd));
      break;
    }
    // ---- Move wide ----
    case Mn::kMovz:
      WriteReg(i.rd, static_cast<uint64_t>(i.imm) << i.shift_amount);
      timing_.Issue(cost, nullptr, 0, SIdx(i.rd));
      break;
    case Mn::kMovn:
      WriteReg(i.rd,
               MaskW(~(static_cast<uint64_t>(i.imm) << i.shift_amount), w));
      timing_.Issue(cost, nullptr, 0, SIdx(i.rd));
      break;
    case Mn::kMovk: {
      const uint64_t keep =
          ~(uint64_t{0xffff} << i.shift_amount);
      const uint64_t r = (ReadReg(i.rd) & keep) |
                         (static_cast<uint64_t>(i.imm) << i.shift_amount);
      WriteReg(i.rd, MaskW(r, w));
      const int srcs[] = {SIdx(i.rd)};
      timing_.Issue(cost, srcs, 1, SIdx(i.rd));
      break;
    }
    // ---- Bitfield ----
    case Mn::kUbfm: case Mn::kSbfm: {
      const unsigned bits = w == Width::kX ? 64 : 32;
      const uint64_t src = MaskW(ReadReg(i.rn), w);
      uint64_t r;
      unsigned field_top;  // position of the field's sign bit in the result
      if (i.imms >= i.immr) {
        const unsigned len = i.imms - i.immr + 1;
        const uint64_t field =
            (src >> i.immr) &
            (len >= 64 ? ~uint64_t{0} : (uint64_t{1} << len) - 1);
        r = field;
        field_top = len - 1;
      } else {
        const unsigned len = i.imms + 1;
        const uint64_t field =
            src & (len >= 64 ? ~uint64_t{0} : (uint64_t{1} << len) - 1);
        const unsigned pos = bits - i.immr;
        r = field << pos;
        field_top = pos + len - 1;
      }
      if (i.mn == Mn::kSbfm && ((r >> field_top) & 1)) {
        // Sign-extend from the top of the copied field.
        if (field_top < 63) r |= ~((uint64_t{1} << (field_top + 1)) - 1);
      }
      WriteReg(i.rd, MaskW(r, w));
      const int srcs[] = {SIdx(i.rn)};
      timing_.Issue(cost, srcs, 1, SIdx(i.rd));
      break;
    }
    // ---- Multiply / divide ----
    case Mn::kMadd: case Mn::kMsub: {
      const uint64_t p = MaskW(ReadReg(i.rn), w) * MaskW(ReadReg(i.rm), w);
      const uint64_t a = ReadReg(i.ra);
      WriteReg(i.rd, MaskW(i.mn == Mn::kMadd ? a + p : a - p, w));
      const int srcs[] = {SIdx(i.rn), SIdx(i.rm), SIdx(i.ra)};
      timing_.Issue(cost, srcs, 3, SIdx(i.rd));
      break;
    }
    case Mn::kSdiv: {
      int64_t a, b;
      if (w == Width::kX) {
        a = static_cast<int64_t>(ReadReg(i.rn));
        b = static_cast<int64_t>(ReadReg(i.rm));
      } else {
        a = static_cast<int32_t>(ReadReg(i.rn));
        b = static_cast<int32_t>(ReadReg(i.rm));
      }
      int64_t r = 0;
      if (b != 0) {
        // INT_MIN / -1 overflows to INT_MIN per the architecture.
        if (a == std::numeric_limits<int64_t>::min() && b == -1) {
          r = a;
        } else {
          r = a / b;
        }
      }
      WriteReg(i.rd, MaskW(static_cast<uint64_t>(r), w));
      const int srcs[] = {SIdx(i.rn), SIdx(i.rm)};
      timing_.Issue(cost, srcs, 2, SIdx(i.rd));
      break;
    }
    case Mn::kUdiv: {
      const uint64_t a = MaskW(ReadReg(i.rn), w);
      const uint64_t b = MaskW(ReadReg(i.rm), w);
      WriteReg(i.rd, b == 0 ? 0 : MaskW(a / b, w));
      const int srcs[] = {SIdx(i.rn), SIdx(i.rm)};
      timing_.Issue(cost, srcs, 2, SIdx(i.rd));
      break;
    }
    case Mn::kUmulh: case Mn::kSmulh: {
      const uint64_t a = ReadReg(i.rn);
      const uint64_t b = ReadReg(i.rm);
      uint64_t hi;
      if (i.mn == Mn::kUmulh) {
        hi = static_cast<uint64_t>(
            (static_cast<unsigned __int128>(a) * b) >> 64);
      } else {
        hi = static_cast<uint64_t>(
            (static_cast<__int128>(static_cast<int64_t>(a)) *
             static_cast<int64_t>(b)) >> 64);
      }
      WriteReg(i.rd, hi);
      const int srcs[] = {SIdx(i.rn), SIdx(i.rm)};
      timing_.Issue(cost, srcs, 2, SIdx(i.rd));
      break;
    }
    case Mn::kCcmp: case Mn::kCcmpImm: case Mn::kCcmn: case Mn::kCcmnImm: {
      const bool immform = i.mn == Mn::kCcmpImm || i.mn == Mn::kCcmnImm;
      const bool neg = i.mn == Mn::kCcmn || i.mn == Mn::kCcmnImm;
      if (EvalCond(s, i.cond)) {
        const uint64_t a = ReadReg(i.rn);
        const uint64_t b =
            immform ? static_cast<uint64_t>(i.imm) : ReadReg(i.rm);
        if (neg) {
          AddWithFlags(a, b, false, w, &s);
        } else {
          AddWithFlags(a, MaskW(~b, w), true, w, &s);
        }
      } else {
        s.n = (i.nzcv >> 3) & 1;
        s.z = (i.nzcv >> 2) & 1;
        s.c = (i.nzcv >> 1) & 1;
        s.v = i.nzcv & 1;
      }
      const int srcs[] = {SIdx(i.rn), SIdx(i.rm), Timing::kFlagsIdx};
      const uint64_t done = timing_.Issue(cost, srcs, 3, -1);
      timing_.SetReady(Timing::kFlagsIdx, done);
      break;
    }
    case Mn::kExtr: {
      const unsigned bits = w == Width::kX ? 64 : 32;
      const uint64_t hi_val = MaskW(ReadReg(i.rn), w);
      const uint64_t lo_val = MaskW(ReadReg(i.rm), w);
      uint64_t r;
      if (i.imms == 0) {
        r = lo_val;
      } else {
        r = (lo_val >> i.imms) | (hi_val << (bits - i.imms));
      }
      WriteReg(i.rd, MaskW(r, w));
      const int srcs[] = {SIdx(i.rn), SIdx(i.rm)};
      timing_.Issue(cost, srcs, 2, SIdx(i.rd));
      break;
    }
    // ---- Conditional select ----
    case Mn::kCsel: case Mn::kCsinc: case Mn::kCsinv: case Mn::kCsneg: {
      const bool take = EvalCond(s, i.cond);
      uint64_t r;
      if (take) {
        r = ReadReg(i.rn);
      } else {
        const uint64_t m = ReadReg(i.rm);
        switch (i.mn) {
          case Mn::kCsel: r = m; break;
          case Mn::kCsinc: r = m + 1; break;
          case Mn::kCsinv: r = ~m; break;
          default: r = ~m + 1; break;
        }
      }
      WriteReg(i.rd, MaskW(r, w));
      const int srcs[] = {SIdx(i.rn), SIdx(i.rm), Timing::kFlagsIdx};
      timing_.Issue(cost, srcs, 3, SIdx(i.rd));
      break;
    }
    // ---- Bit manipulation ----
    case Mn::kClz: {
      const uint64_t v = MaskW(ReadReg(i.rn), w);
      const unsigned bits = w == Width::kX ? 64 : 32;
      unsigned n = 0;
      for (int b = bits - 1; b >= 0 && !((v >> b) & 1); --b) ++n;
      WriteReg(i.rd, n);
      const int srcs[] = {SIdx(i.rn)};
      timing_.Issue(cost, srcs, 1, SIdx(i.rd));
      break;
    }
    case Mn::kRbit: {
      const uint64_t v = MaskW(ReadReg(i.rn), w);
      const unsigned bits = w == Width::kX ? 64 : 32;
      uint64_t r = 0;
      for (unsigned b = 0; b < bits; ++b) {
        if ((v >> b) & 1) r |= uint64_t{1} << (bits - 1 - b);
      }
      WriteReg(i.rd, r);
      const int srcs[] = {SIdx(i.rn)};
      timing_.Issue(cost, srcs, 1, SIdx(i.rd));
      break;
    }
    case Mn::kRev: {
      const uint64_t v = MaskW(ReadReg(i.rn), w);
      const unsigned bytes = w == Width::kX ? 8 : 4;
      uint64_t r = 0;
      for (unsigned b = 0; b < bytes; ++b) {
        r |= ((v >> (8 * b)) & 0xff) << (8 * (bytes - 1 - b));
      }
      WriteReg(i.rd, r);
      const int srcs[] = {SIdx(i.rn)};
      timing_.Issue(cost, srcs, 1, SIdx(i.rd));
      break;
    }
    // ---- PC-relative ----
    case Mn::kAdr:
      WriteReg(i.rd, s.pc + static_cast<uint64_t>(i.imm));
      timing_.Issue(cost, nullptr, 0, SIdx(i.rd));
      break;
    case Mn::kAdrp:
      WriteReg(i.rd, (s.pc & ~uint64_t{0xfff}) + static_cast<uint64_t>(i.imm));
      timing_.Issue(cost, nullptr, 0, SIdx(i.rd));
      break;
    // ---- Loads / stores ----
    case Mn::kLdr: {
      uint64_t wb = 0;
      const uint64_t addr = effaddr(&wb);
      auto v = mem_->Read(addr, i.msize);
      if (!v) return memfault();
      uint64_t r = *v;
      if (i.msigned) {
        const unsigned fbits = 8 * i.msize;
        if ((r >> (fbits - 1)) & 1) r |= ~((uint64_t{1} << fbits) - 1);
        r = MaskW(r, w);
      }
      WriteReg(i.rt, r);
      if (i.mem.HasWriteback()) WriteReg(i.mem.base, wb);
      const int srcs[] = {SIdx(i.mem.base), SIdx(i.mem.index)};
      const uint64_t extra = timing_.MemoryExtra(addr, false);
      const uint64_t done =
          timing_.Issue(cost, srcs, 2, SIdx(i.rt), nullptr, 0, -1, extra);
      if (i.mem.HasWriteback()) {
        timing_.SetReady(SIdx(i.mem.base), done - cost.latency - extra + 1);
      }
      break;
    }
    case Mn::kStr: {
      uint64_t wb = 0;
      const uint64_t addr = effaddr(&wb);
      if (!mem_->Write(addr, MaskW(ReadReg(i.rt), w), i.msize).ok()) {
        return memfault();
      }
      if (i.mem.HasWriteback()) WriteReg(i.mem.base, wb);
      const int srcs[] = {SIdx(i.mem.base), SIdx(i.mem.index), SIdx(i.rt)};
      const uint64_t extra = timing_.MemoryExtra(addr, true);
      const uint64_t done = timing_.Issue(
          cost, srcs, 3, i.mem.HasWriteback() ? SIdx(i.mem.base) : -1,
          nullptr, 0, -1, extra);
      (void)done;
      break;
    }
    case Mn::kLdp: {
      uint64_t wb = 0;
      const uint64_t addr = effaddr(&wb);
      auto v1 = mem_->Read(addr, i.msize);
      if (!v1) return memfault();
      auto v2 = mem_->Read(addr + i.msize, i.msize);
      if (!v2) return memfault();
      WriteReg(i.rt, *v1);
      WriteReg(i.rt2, *v2);
      if (i.mem.HasWriteback()) WriteReg(i.mem.base, wb);
      const int srcs[] = {SIdx(i.mem.base)};
      const uint64_t extra = timing_.MemoryExtra(addr, false);
      const uint64_t done =
          timing_.Issue(cost, srcs, 1, SIdx(i.rt), nullptr, 0, -1, extra);
      timing_.SetReady(SIdx(i.rt2), done);
      if (i.mem.HasWriteback()) {
        timing_.SetReady(SIdx(i.mem.base), done - cost.latency - extra + 1);
      }
      break;
    }
    case Mn::kStp: {
      uint64_t wb = 0;
      const uint64_t addr = effaddr(&wb);
      if (!mem_->Write(addr, MaskW(ReadReg(i.rt), w), i.msize).ok()) {
        return memfault();
      }
      if (!mem_->Write(addr + i.msize, MaskW(ReadReg(i.rt2), w), i.msize)
               .ok()) {
        return memfault();
      }
      if (i.mem.HasWriteback()) WriteReg(i.mem.base, wb);
      const int srcs[] = {SIdx(i.mem.base), SIdx(i.rt), SIdx(i.rt2)};
      const uint64_t extra = timing_.MemoryExtra(addr, true);
      timing_.Issue(cost, srcs, 3,
                    i.mem.HasWriteback() ? SIdx(i.mem.base) : -1, nullptr, 0,
                    -1, extra);
      break;
    }
    case Mn::kLdxr: case Mn::kLdar: {
      const uint64_t addr = ReadReg(i.mem.base);
      if (addr % i.msize != 0) {
        fault_ = {CpuFault::Kind::kMemory, s.pc,
                  {MemFault::Kind::kPermission, Access::kRead, addr},
                  "unaligned exclusive"};
        stop_ = StopReason::kFault;
        return false;
      }
      auto v = mem_->Read(addr, i.msize);
      if (!v) return memfault();
      WriteReg(i.rt, *v);
      if (i.mn == Mn::kLdxr) {
        s.excl_valid = true;
        s.excl_addr = addr;
      }
      const int srcs[] = {SIdx(i.mem.base)};
      const uint64_t extra = timing_.MemoryExtra(addr, false);
      timing_.Issue(cost, srcs, 1, SIdx(i.rt), nullptr, 0, -1, extra + 2);
      break;
    }
    case Mn::kStxr: {
      const uint64_t addr = ReadReg(i.mem.base);
      if (s.excl_valid && s.excl_addr == addr) {
        if (!mem_->Write(addr, MaskW(ReadReg(i.rt), w), i.msize).ok()) {
          return memfault();
        }
        WriteReg(i.rs, 0);
      } else {
        WriteReg(i.rs, 1);
      }
      s.excl_valid = false;
      const int srcs[] = {SIdx(i.mem.base), SIdx(i.rt)};
      const uint64_t extra = timing_.MemoryExtra(addr, true);
      timing_.Issue(cost, srcs, 2, SIdx(i.rs), nullptr, 0, -1, extra + 2);
      break;
    }
    case Mn::kStlr: {
      const uint64_t addr = ReadReg(i.mem.base);
      if (!mem_->Write(addr, MaskW(ReadReg(i.rt), w), i.msize).ok()) {
        return memfault();
      }
      const int srcs[] = {SIdx(i.mem.base), SIdx(i.rt)};
      const uint64_t extra = timing_.MemoryExtra(addr, true);
      timing_.Issue(cost, srcs, 2, -1, nullptr, 0, -1, extra + 2);
      break;
    }
    case Mn::kLdrF: {
      uint64_t wb = 0;
      const uint64_t addr = effaddr(&wb);
      VRegVal val;
      if (i.msize <= 8) {
        auto v = mem_->Read(addr, i.msize);
        if (!v) return memfault();
        val.lo = *v;
      } else {
        auto lo = mem_->Read(addr, 8);
        if (!lo) return memfault();
        auto hi = mem_->Read(addr + 8, 8);
        if (!hi) return memfault();
        val.lo = *lo;
        val.hi = *hi;
      }
      s.vr[i.vt.id()] = val;
      if (i.mem.HasWriteback()) WriteReg(i.mem.base, wb);
      const int srcs[] = {SIdx(i.mem.base), SIdx(i.mem.index)};
      const uint64_t extra = timing_.MemoryExtra(addr, false);
      timing_.Issue(cost, srcs, 2, -1, nullptr, 0, i.vt.id(), extra);
      break;
    }
    case Mn::kStrF: {
      uint64_t wb = 0;
      const uint64_t addr = effaddr(&wb);
      const VRegVal& val = s.vr[i.vt.id()];
      if (i.msize <= 8) {
        if (!mem_->Write(addr, val.lo, i.msize).ok()) return memfault();
      } else {
        if (!mem_->Write(addr, val.lo, 8).ok()) return memfault();
        if (!mem_->Write(addr + 8, val.hi, 8).ok()) return memfault();
      }
      if (i.mem.HasWriteback()) WriteReg(i.mem.base, wb);
      const int srcs[] = {SIdx(i.mem.base), SIdx(i.mem.index)};
      const int vsrcs[] = {i.vt.id()};
      const uint64_t extra = timing_.MemoryExtra(addr, true);
      timing_.Issue(cost, srcs, 2,
                    i.mem.HasWriteback() ? SIdx(i.mem.base) : -1, vsrcs, 1,
                    -1, extra);
      break;
    }
    // ---- Branches ----
    case Mn::kB:
      next_pc = s.pc + static_cast<uint64_t>(i.imm);
      timing_.Issue(cost, nullptr, 0, -1);
      break;
    case Mn::kBl:
      WriteReg(Reg::X(30), s.pc + 4);
      next_pc = s.pc + static_cast<uint64_t>(i.imm);
      timing_.Issue(cost, nullptr, 0, 30);
      break;
    case Mn::kBCond: {
      const bool taken = EvalCond(s, i.cond);
      if (taken) next_pc = s.pc + static_cast<uint64_t>(i.imm);
      const int srcs[] = {Timing::kFlagsIdx};
      const uint64_t done = timing_.Issue(cost, srcs, 1, -1);
      if (!timing_.predictor().PredictConditional(s.pc, taken)) {
        timing_.Mispredict(done);
      }
      break;
    }
    case Mn::kCbz: case Mn::kCbnz: {
      const uint64_t v = MaskW(ReadReg(i.rt), w);
      const bool taken = (i.mn == Mn::kCbz) == (v == 0);
      if (taken) next_pc = s.pc + static_cast<uint64_t>(i.imm);
      const int srcs[] = {SIdx(i.rt)};
      const uint64_t done = timing_.Issue(cost, srcs, 1, -1);
      if (!timing_.predictor().PredictConditional(s.pc, taken)) {
        timing_.Mispredict(done);
      }
      break;
    }
    case Mn::kTbz: case Mn::kTbnz: {
      const bool bit = (ReadReg(i.rt) >> i.bit) & 1;
      const bool taken = (i.mn == Mn::kTbnz) == bit;
      if (taken) next_pc = s.pc + static_cast<uint64_t>(i.imm);
      const int srcs[] = {SIdx(i.rt)};
      const uint64_t done = timing_.Issue(cost, srcs, 1, -1);
      if (!timing_.predictor().PredictConditional(s.pc, taken)) {
        timing_.Mispredict(done);
      }
      break;
    }
    case Mn::kBr: case Mn::kBlr: case Mn::kRet: {
      const uint64_t target = ReadReg(i.rn);
      if (i.mn == Mn::kBlr) WriteReg(Reg::X(30), s.pc + 4);
      next_pc = target;
      const int srcs[] = {SIdx(i.rn)};
      const uint64_t done =
          timing_.Issue(cost, srcs, 1, i.mn == Mn::kBlr ? 30 : -1);
      if (!timing_.predictor().PredictIndirect(s.pc, target)) {
        timing_.Mispredict(done);
      }
      break;
    }
    // ---- Scalar FP ----
    case Mn::kFadd: case Mn::kFsub: case Mn::kFmul: case Mn::kFdiv: {
      const VRegVal& a = s.vr[i.vn.id()];
      const VRegVal& b = s.vr[i.vm.id()];
      uint64_t r;
      if (i.fsize == FpSize::kD) {
        double x = BitsToF64(a.lo), y = BitsToF64(b.lo), z = 0;
        switch (i.mn) {
          case Mn::kFadd: z = x + y; break;
          case Mn::kFsub: z = x - y; break;
          case Mn::kFmul: z = x * y; break;
          default: z = x / y; break;
        }
        r = F64ToBits(z);
      } else {
        float x = BitsToF32(a.lo), y = BitsToF32(b.lo), z = 0;
        switch (i.mn) {
          case Mn::kFadd: z = x + y; break;
          case Mn::kFsub: z = x - y; break;
          case Mn::kFmul: z = x * y; break;
          default: z = x / y; break;
        }
        r = F32ToBits(z);
      }
      s.vr[i.vd.id()] = {r, 0};
      const int vsrcs[] = {i.vn.id(), i.vm.id()};
      timing_.Issue(cost, nullptr, 0, -1, vsrcs, 2, i.vd.id());
      break;
    }
    case Mn::kFsqrt: {
      const VRegVal& a = s.vr[i.vn.id()];
      uint64_t r = i.fsize == FpSize::kD
                       ? F64ToBits(std::sqrt(BitsToF64(a.lo)))
                       : F32ToBits(std::sqrt(BitsToF32(a.lo)));
      s.vr[i.vd.id()] = {r, 0};
      const int vsrcs[] = {i.vn.id()};
      timing_.Issue(cost, nullptr, 0, -1, vsrcs, 1, i.vd.id());
      break;
    }
    case Mn::kFmadd: {
      const VRegVal& a = s.vr[i.vn.id()];
      const VRegVal& b = s.vr[i.vm.id()];
      const VRegVal& c = s.vr[i.va.id()];
      uint64_t r = i.fsize == FpSize::kD
                       ? F64ToBits(std::fma(BitsToF64(a.lo), BitsToF64(b.lo),
                                            BitsToF64(c.lo)))
                       : F32ToBits(std::fma(BitsToF32(a.lo), BitsToF32(b.lo),
                                            BitsToF32(c.lo)));
      s.vr[i.vd.id()] = {r, 0};
      const int vsrcs[] = {i.vn.id(), i.vm.id(), i.va.id()};
      timing_.Issue(cost, nullptr, 0, -1, vsrcs, 3, i.vd.id());
      break;
    }
    case Mn::kFcmp: {
      double x, y;
      if (i.fsize == FpSize::kD) {
        x = BitsToF64(s.vr[i.vn.id()].lo);
        y = BitsToF64(s.vr[i.vm.id()].lo);
      } else {
        x = BitsToF32(s.vr[i.vn.id()].lo);
        y = BitsToF32(s.vr[i.vm.id()].lo);
      }
      if (std::isnan(x) || std::isnan(y)) {
        s.n = false; s.z = false; s.c = true; s.v = true;
      } else if (x == y) {
        s.n = false; s.z = true; s.c = true; s.v = false;
      } else if (x < y) {
        s.n = true; s.z = false; s.c = false; s.v = false;
      } else {
        s.n = false; s.z = false; s.c = true; s.v = false;
      }
      const int vsrcs[] = {i.vn.id(), i.vm.id()};
      const uint64_t done =
          timing_.Issue(cost, nullptr, 0, -1, vsrcs, 2, -1);
      timing_.SetReady(Timing::kFlagsIdx, done);
      break;
    }
    case Mn::kScvtf: {
      const int64_t v = w == Width::kX
                            ? static_cast<int64_t>(ReadReg(i.rn))
                            : static_cast<int32_t>(ReadReg(i.rn));
      uint64_t r = i.fsize == FpSize::kD
                       ? F64ToBits(static_cast<double>(v))
                       : F32ToBits(static_cast<float>(v));
      s.vr[i.vd.id()] = {r, 0};
      const int srcs[] = {SIdx(i.rn)};
      timing_.Issue(cost, srcs, 1, -1, nullptr, 0, i.vd.id());
      break;
    }
    case Mn::kFcvtzs: {
      const double v = i.fsize == FpSize::kD
                           ? BitsToF64(s.vr[i.vn.id()].lo)
                           : BitsToF32(s.vr[i.vn.id()].lo);
      int64_t r;
      if (std::isnan(v)) {
        r = 0;
      } else if (w == Width::kX) {
        r = v >= 9.2233720368547758e18
                ? std::numeric_limits<int64_t>::max()
                : (v <= -9.2233720368547758e18
                       ? std::numeric_limits<int64_t>::min()
                       : static_cast<int64_t>(v));
      } else {
        r = v >= 2147483647.0
                ? 2147483647
                : (v <= -2147483648.0 ? -2147483648
                                      : static_cast<int32_t>(v));
      }
      WriteReg(i.rd, MaskW(static_cast<uint64_t>(r), w));
      const int vsrcs[] = {i.vn.id()};
      timing_.Issue(cost, nullptr, 0, SIdx(i.rd), vsrcs, 1, -1);
      break;
    }
    case Mn::kFmov: {
      if (!i.vd.IsNone() && !i.vn.IsNone()) {
        s.vr[i.vd.id()] = {i.fsize == FpSize::kS
                               ? (s.vr[i.vn.id()].lo & 0xffffffffu)
                               : s.vr[i.vn.id()].lo,
                           0};
        const int vsrcs[] = {i.vn.id()};
        timing_.Issue(cost, nullptr, 0, -1, vsrcs, 1, i.vd.id());
      } else if (!i.rd.IsNone()) {
        const uint64_t v = i.fsize == FpSize::kS
                               ? (s.vr[i.vn.id()].lo & 0xffffffffu)
                               : s.vr[i.vn.id()].lo;
        WriteReg(i.rd, v);
        const int vsrcs[] = {i.vn.id()};
        timing_.Issue(cost, nullptr, 0, SIdx(i.rd), vsrcs, 1, -1);
      } else {
        const uint64_t v = MaskW(ReadReg(i.rn), w);
        s.vr[i.vd.id()] = {v, 0};
        const int srcs[] = {SIdx(i.rn)};
        timing_.Issue(cost, srcs, 1, -1, nullptr, 0, i.vd.id());
      }
      break;
    }
    // ---- Vector ----
    case Mn::kVAdd: case Mn::kVFadd: case Mn::kVFmul: {
      const VRegVal& a = s.vr[i.vn.id()];
      const VRegVal& b = s.vr[i.vm.id()];
      VRegVal r;
      if (i.mn == Mn::kVAdd) {
        if (i.fsize == FpSize::kV4S) {
          for (int lane = 0; lane < 2; ++lane) {
            const uint64_t av = lane ? a.hi : a.lo;
            const uint64_t bv = lane ? b.hi : b.lo;
            const uint64_t lo32 = (av + bv) & 0xffffffffu;
            const uint64_t hi32 =
                (((av >> 32) + (bv >> 32)) & 0xffffffffu) << 32;
            (lane ? r.hi : r.lo) = lo32 | hi32;
          }
        } else {
          r.lo = a.lo + b.lo;
          r.hi = a.hi + b.hi;
        }
      } else if (i.fsize == FpSize::kV4S) {
        for (int lane = 0; lane < 4; ++lane) {
          const uint64_t aw = lane < 2 ? a.lo : a.hi;
          const uint64_t bw = lane < 2 ? b.lo : b.hi;
          const unsigned sh = (lane % 2) * 32;
          const float x = BitsToF32((aw >> sh) & 0xffffffffu);
          const float y = BitsToF32((bw >> sh) & 0xffffffffu);
          const float z = i.mn == Mn::kVFadd ? x + y : x * y;
          uint64_t& out = lane < 2 ? r.lo : r.hi;
          out |= (F32ToBits(z) & 0xffffffffu) << sh;
        }
      } else {
        const double x0 = BitsToF64(a.lo), y0 = BitsToF64(b.lo);
        const double x1 = BitsToF64(a.hi), y1 = BitsToF64(b.hi);
        r.lo = F64ToBits(i.mn == Mn::kVFadd ? x0 + y0 : x0 * y0);
        r.hi = F64ToBits(i.mn == Mn::kVFadd ? x1 + y1 : x1 * y1);
      }
      s.vr[i.vd.id()] = r;
      const int vsrcs[] = {i.vn.id(), i.vm.id()};
      timing_.Issue(cost, nullptr, 0, -1, vsrcs, 2, i.vd.id());
      break;
    }
    // ---- System ----
    case Mn::kNop:
      timing_.Issue(cost, nullptr, 0, -1);
      break;
    case Mn::kBrk:
      fault_ = {CpuFault::Kind::kIllegal, s.pc, {}, "brk"};
      stop_ = StopReason::kBrk;
      return false;
    case Mn::kSvc: case Mn::kMrs: case Mn::kMsr:
      // Sandboxed code must never contain these (the verifier rejects
      // them); executing one is a hard fault.
      fault_ = {CpuFault::Kind::kIllegal, s.pc, {}, arch::MnName(i)};
      stop_ = StopReason::kFault;
      return false;
  }

  s.pc = next_pc;
  return true;
}

}  // namespace lfi::emu
