// ARM64 interpreter with integrated timing.
//
// Executes the encoded instruction subset against an AddressSpace with full
// permission checking, so the LFI isolation argument is *executed*, not
// assumed: a guard really does force the top 32 bits of an address, a
// store to a guard region really does trap. Cycle accounting runs inline
// through the Timing scoreboard.
#ifndef LFI_EMU_MACHINE_H_
#define LFI_EMU_MACHINE_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/cost_model.h"
#include "arch/inst.h"
#include "emu/address_space.h"
#include "emu/timing.h"

namespace lfi::emu {

// 128-bit SIMD&FP register value.
struct VRegVal {
  uint64_t lo = 0, hi = 0;
  bool operator==(const VRegVal&) const = default;
};

// Architectural CPU state.
struct CpuState {
  std::array<uint64_t, 31> x{};  // x0..x30
  uint64_t sp = 0;
  uint64_t pc = 0;
  bool n = false, z = false, c = false, v = false;
  std::array<VRegVal, 32> vr{};
  // Exclusive monitor for ldxr/stxr.
  bool excl_valid = false;
  uint64_t excl_addr = 0;
};

// Why Run() returned.
enum class StopReason : uint8_t {
  kStepLimit,     // executed the requested number of instructions
  kRuntimeEntry,  // PC entered the registered runtime region
  kFault,         // memory/decode/alignment fault; see fault()
  kBrk,           // brk instruction (debug trap)
};

// Description of a fault that stopped execution.
struct CpuFault {
  enum class Kind : uint8_t {
    kMemory,   // data access fault (mem holds details)
    kFetch,    // instruction fetch from unmapped/non-executable page
    kDecode,   // undecodable instruction word
    kIllegal,  // svc/mrs/msr executed by sandboxed code
    kPcAlign,  // branch to a non-4-aligned address
  };
  Kind kind = Kind::kMemory;
  uint64_t pc = 0;
  MemFault mem{};
  std::string detail;
};

// The emulated CPU. One Machine per hardware context; multiple sandboxes
// time-share it through the runtime's scheduler.
class Machine {
 public:
  Machine(AddressSpace* mem, const arch::CoreParams& params);

  CpuState& state() { return state_; }
  const CpuState& state() const { return state_; }
  Timing& timing() { return timing_; }
  AddressSpace& mem() { return *mem_; }

  // Registers [base, base+len) as the runtime-entry region: the moment PC
  // lands inside it, Run() stops with kRuntimeEntry. This models branching
  // to a runtime address loaded from the call table (Section 4.4).
  void SetRuntimeRegion(uint64_t base, uint64_t len) {
    rt_base_ = base;
    rt_len_ = len;
  }

  // Executes up to `max_instructions`.
  StopReason Run(uint64_t max_instructions);

  const CpuFault& fault() const { return fault_; }

  // Drops cached decoded instructions (call after unmapping text pages).
  void FlushDecodeCache() { decode_cache_.clear(); }

  // Reads a general-purpose register by Inst operand conventions
  // (zr reads 0; sp reads the stack pointer). Exposed for the runtime.
  uint64_t ReadReg(arch::Reg r) const;
  void WriteReg(arch::Reg r, uint64_t v);

 private:
  struct DecodedPage {
    std::vector<arch::Inst> insts;   // kPageSize / 4 entries
    std::vector<uint8_t> status;     // 0 = undecoded, 1 = ok, 2 = bad
  };

  // Executes one instruction; returns false if execution must stop (fault
  // or brk), with stop_ set.
  bool Step();

  const arch::Inst* FetchDecode(uint64_t pc);

  AddressSpace* mem_;
  CpuState state_;
  Timing timing_;
  CpuFault fault_;
  StopReason stop_ = StopReason::kStepLimit;
  uint64_t rt_base_ = 0, rt_len_ = 0;
  std::unordered_map<uint64_t, DecodedPage> decode_cache_;
};

}  // namespace lfi::emu

#endif  // LFI_EMU_MACHINE_H_
