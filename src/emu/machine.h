// ARM64 interpreter with integrated timing.
//
// Executes the encoded instruction subset against an AddressSpace with full
// permission checking, so the LFI isolation argument is *executed*, not
// assumed: a guard really does force the top 32 bits of an address, a
// store to a guard region really does trap. Cycle accounting runs inline
// through the Timing scoreboard.
//
// Dispatch and the decode cache. The hot loop decodes straight-line basic
// blocks (up to the next branch, page end, or undecodable word) into flat
// vectors of pre-decoded instructions with their static costs, keyed by
// start PC. Each block entry costs one hash probe, one runtime-region
// check, and one generation compare; each instruction inside the block is
// then executed with zero lookups.
//
// Invalidation contract: the block cache is stamped with
// AddressSpace::mutation_generation(), which Map/Unmap/Protect/ShareRange
// and any write landing on an executable page bump. A stamp mismatch at
// block-entry drops every cached block, so executing stale code after a
// remap is structurally impossible -- no caller cooperation needed.
// FlushDecodeCache() therefore exists only for callers that mutate code
// bytes through a channel AddressSpace cannot observe (there is none in
// this repo; it is kept for API compatibility and tests). The one window
// the generation cannot close is an instruction overwriting *its own*
// basic block mid-flight; real hardware requires an ISB there, and the
// runtime's W^X policy forbids it entirely.
//
// Backends. Run() routes through a small strategy interface (EmuBackend,
// emu/backend.h) selected by set_dispatch(). kBlock and kStep are the
// reference interpreters (the switch in ExecInst); kChained is the
// optimized backend (backend_chained.cc): blocks record their static
// fallthrough/direct-branch successors and hot loops jump block->block
// without re-entering the dispatch loop, the inner loop is
// direct-threaded (computed goto) where the compiler supports it, and
// data accesses go through a small per-Machine page-pointer TLB validated
// against AddressSpace::payload_epoch(). All backends share the op bodies
// in exec_ops.inc, and kChained is required to keep simulated cycles,
// retired counts, ExecCounters, and traces bit-identical to kBlock (see
// docs/DISPATCH.md for the argument and the invalidation contract).
#ifndef LFI_EMU_MACHINE_H_
#define LFI_EMU_MACHINE_H_

// Hot helpers shared by both interpreter backends must actually inline
// into each backend's dispatch loop (GCC leaves the bigger ones, e.g.
// the EffAddr switch, out of line at -O2 without this).
#if defined(__GNUC__) || defined(__clang__)
#define LFI_EMU_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define LFI_EMU_ALWAYS_INLINE inline
#endif

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/cost_model.h"
#include "arch/inst.h"
#include "emu/address_space.h"
#include "emu/timing.h"
#include "trace/trace.h"

namespace lfi::emu {

// 128-bit SIMD&FP register value.
struct VRegVal {
  uint64_t lo = 0, hi = 0;
  bool operator==(const VRegVal&) const = default;
};

// Architectural CPU state.
struct CpuState {
  std::array<uint64_t, 31> x{};  // x0..x30
  uint64_t sp = 0;
  uint64_t pc = 0;
  bool n = false, z = false, c = false, v = false;
  std::array<VRegVal, 32> vr{};
  // Exclusive monitor for ldxr/stxr.
  bool excl_valid = false;
  uint64_t excl_addr = 0;

  bool operator==(const CpuState&) const = default;
};

// Forces the LFI reserved registers of `cpu` back onto their invariants
// for the sandbox at `base`: x21 = base, and x18/x23/x24/x30, sp, and pc
// each base|low32 (exactly what a guard would compute). Every host-built
// or untrusted register frame must pass through this before the machine
// executes it — sigreturn frames, snapshot rebases, and embedded-call
// entry/callback-return states all get the same treatment, so even a
// bit-flipped (but otherwise accepted) frame cannot produce an
// out-of-slot reserved register.
inline void CanonicalizeSandboxRegs(CpuState& cpu, uint64_t base) {
  cpu.x[21] = base;
  for (int r : {18, 23, 24, 30}) cpu.x[r] = base | (cpu.x[r] & 0xffffffffu);
  cpu.sp = base | (cpu.sp & 0xffffffffu);
  cpu.pc = base | (cpu.pc & 0xffffffffu);
}

// Why Run() returned.
enum class StopReason : uint8_t {
  kStepLimit,     // executed the requested number of instructions
  kRuntimeEntry,  // PC entered the registered runtime region
  kFault,         // memory/decode/alignment fault; see fault()
  kBrk,           // brk instruction (debug trap)
  kHookStop,      // the attached ExecHook requested a stop
};

// Per-instruction observation hook, the substrate for invariant checking
// and soundness fuzzing. While attached (set_exec_hook), OnInst is called
// after EVERY executed instruction — including one that faulted
// (`faulted` == true), in which case the instruction did not retire but
// `accesses` still records the memory addresses it *attempted*, and
// `after` is the unmodified pre-fault register state. `pc` is the
// instruction's own address; `after.pc` is where control went next.
// Return false to stop Run() with StopReason::kHookStop.
//
// Cost: one branch per instruction when detached; when attached, data
// accesses are additionally traced through the AddressSpace.
class ExecHook {
 public:
  virtual ~ExecHook() = default;
  virtual bool OnInst(const arch::Inst& inst, uint64_t pc,
                      const CpuState& after,
                      std::span<const AccessRecord> accesses,
                      bool faulted) = 0;
};

// Description of a fault that stopped execution.
struct CpuFault {
  enum class Kind : uint8_t {
    kMemory,   // data access fault (mem holds details)
    kFetch,    // instruction fetch from unmapped/non-executable page
    kDecode,   // undecodable instruction word
    kIllegal,  // svc/mrs/msr executed by sandboxed code
    kPcAlign,  // branch to a non-4-aligned address
  };
  Kind kind = Kind::kMemory;
  uint64_t pc = 0;
  MemFault mem{};
  std::string detail;
};

// How Run() fetches instructions.
enum class Dispatch : uint8_t {
  kChained,  // block chaining + direct-threaded inner loop (default)
  kBlock,    // basic-block cache, one probe per block (reference)
  kStep,     // per-instruction page cache (legacy; baseline for benchmarks)
};

// The emulated CPU. One Machine per hardware context; multiple sandboxes
// time-share it through the runtime's scheduler.
class Machine {
 public:
  Machine(AddressSpace* mem, const arch::CoreParams& params);

  CpuState& state() { return state_; }
  const CpuState& state() const { return state_; }
  Timing& timing() { return timing_; }
  AddressSpace& mem() { return *mem_; }

  // Registers [base, base+len) as the runtime-entry region: the moment PC
  // lands inside it, Run() stops with kRuntimeEntry. This models branching
  // to a runtime address loaded from the call table (Section 4.4).
  void SetRuntimeRegion(uint64_t base, uint64_t len) {
    rt_base_ = base;
    rt_len_ = len;
  }

  // Executes up to `max_instructions`.
  StopReason Run(uint64_t max_instructions);

  const CpuFault& fault() const { return fault_; }

  // Selects the fetch strategy (see Dispatch). kBlock/kStep exist so
  // benchmarks and the differential fuzzer can compare against the
  // reference interpreter; all modes are semantically identical,
  // including cycle accounting.
  void set_dispatch(Dispatch d) { dispatch_ = d; }
  Dispatch dispatch() const { return dispatch_; }

  // Drops all cached decoded instructions immediately. NOT required after
  // Map/Unmap/Protect or code writes -- the mutation generation already
  // invalidates those lazily (see the file comment). Kept for callers
  // that want an explicit, eager flush.
  void FlushDecodeCache() { ClearCaches(); }

  // Reads a general-purpose register by Inst operand conventions
  // (zr reads 0; sp reads the stack pointer). Exposed for the runtime.
  // Defined inline: these run several times per retired instruction in
  // every backend translation unit.
  LFI_EMU_ALWAYS_INLINE uint64_t ReadReg(arch::Reg r) const {
    if (r.IsZr() || r.IsNone()) return 0;
    if (r.IsSp()) return state_.sp;
    return state_.x[r.id()];
  }
  LFI_EMU_ALWAYS_INLINE void WriteReg(arch::Reg r, uint64_t v) {
    if (r.IsZr() || r.IsNone()) return;
    if (r.IsSp()) {
      state_.sp = v;
      return;
    }
    state_.x[r.id()] = v;
  }

  // Attaches (or detaches, with nullptr) the per-instruction hook. The
  // hook must outlive the Machine or be detached first.
  void set_exec_hook(ExecHook* hook) {
    hook_ = hook;
    mem_->set_access_trace(hook == nullptr ? nullptr : &hook_trace_);
  }
  ExecHook* exec_hook() const { return hook_; }

  // Attaches (or detaches, with nullptr) an execution-counter accumulator.
  // While attached, the dispatch loops tally retired instructions by class
  // (loads/stores/guards) plus decode-cache traffic into it; the caller
  // owns attribution (the runtime snapshots it around timeslices). The
  // disabled path costs one pointer test per dispatched *block* — the
  // per-instruction loop is unchanged. Caveat: an ExecHook stop on a
  // retired instruction skews the class tallies (not retired-count) by at
  // most one; hooks and counters are not used together in practice.
  void set_counters(trace::ExecCounters* c) { counters_ = c; }
  trace::ExecCounters* counters() const { return counters_; }

 private:
  // Instruction-class bits, precomputed at decode time so the counting
  // dispatch loop adds without re-classifying.
  static constexpr uint8_t kClassLoad = 1 << 0;
  static constexpr uint8_t kClassStore = 1 << 1;
  static constexpr uint8_t kClassGuard = 1 << 2;
  static uint8_t ClassifyInst(const arch::Inst& i);

  // A pre-decoded instruction plus its static issue cost (CostOf depends
  // only on the instruction and the fixed core params, so hoisting it to
  // decode time takes it off the hot path entirely).
  struct DecodedInst {
    arch::Inst inst;
    arch::InstCost cost;
    uint8_t class_flags;
    // Direct-threading slot: the chained backend caches the computed-goto
    // label for inst.mn here on a block's first execution, so steady-state
    // dispatch is one load + one indirect jump (no table indexing). The
    // reference backends never read it.
    mutable const void* exec_label = nullptr;
  };

  // PC sentinel for "no successor". ~0 is never 4-aligned, so it can
  // never equal a real block-start PC.
  static constexpr uint64_t kNoSucc = ~uint64_t{0};

  // A decoded straight-line run: starts at its cache key's PC and ends at
  // the first branch/system instruction, page end, or undecodable word.
  //
  // Chaining fields: fall_pc/branch_pc are the block's *static* successor
  // PCs, computed at decode time (fallthrough after a conditional branch
  // or a split block; the target of a direct b/bl/b.cond/cbz/tbz).
  // fall_link/branch_link are lazily resolved pointers to the successor
  // blocks, installed by the chained backend so a hot loop transfers
  // block->block with two compares. Links point into block_cache_ nodes
  // and die with them: every ClearCaches() severs all chains, and the
  // chained backend re-checks the mutation generation before following a
  // link, so a stale chain is never executed (see docs/DISPATCH.md).
  struct Block {
    std::vector<DecodedInst> insts;
    uint64_t fall_pc = kNoSucc;
    uint64_t branch_pc = kNoSucc;
    mutable const Block* fall_link = nullptr;
    mutable const Block* branch_link = nullptr;
  };

  // Legacy per-page decode cache (Dispatch::kStep).
  struct DecodedPage {
    std::vector<arch::Inst> insts;   // kPageSize / 4 entries
    std::vector<uint8_t> status;     // 0 = undecoded, 1 = ok, 2 = bad
  };

  StopReason RunBlocks(uint64_t max_instructions);
  StopReason RunSteps(uint64_t max_instructions);

  // Optimized backend (backend_chained.cc). RunChained falls back to
  // RunBlocks while an ExecHook is attached (observation wants the
  // reference loop + access tracing, not speed).
  StopReason RunChained(uint64_t max_instructions);
  template <bool kCounting>
  StopReason RunChainedImpl(uint64_t max_instructions);
  // Executes insts[0, take) of a block with the direct-threaded inner
  // loop (switch fallback off GCC/Clang); returns false on stop.
  template <bool kCounting>
  bool ExecChainedRange(const Block& b, size_t take);

  // Executes one pre-decoded instruction; returns false if execution must
  // stop (fault or brk), with stop_ set.
  bool ExecInst(const arch::Inst& i, const arch::InstCost& cost);

  // Records the pending data fault and stop reason; always returns false
  // so op bodies can `return MemFaultStop()`.
  bool MemFaultStop() {
    fault_ = {CpuFault::Kind::kMemory, state_.pc, mem_->last_fault(), "data"};
    stop_ = StopReason::kFault;
    return false;
  }

  // Effective address of a load/store, plus (for writeback modes) the new
  // base value. Shared by both backends' op bodies.
  LFI_EMU_ALWAYS_INLINE uint64_t EffAddr(const arch::Inst& i,
                                         uint64_t* writeback) const {
    const auto& m = i.mem;
    const uint64_t base = ReadReg(m.base);
    switch (m.mode) {
      case arch::AddrMode::kImm:
        return base + static_cast<uint64_t>(m.imm);
      case arch::AddrMode::kPreIndex:
        *writeback = base + static_cast<uint64_t>(m.imm);
        return *writeback;
      case arch::AddrMode::kPostIndex:
        *writeback = base + static_cast<uint64_t>(m.imm);
        return base;
      case arch::AddrMode::kRegLsl:
        return base + (ReadReg(m.index) << m.shift);
      case arch::AddrMode::kRegUxtw:
        return base + ((ReadReg(m.index) & 0xffffffffu) << m.shift);
      case arch::AddrMode::kRegSxtw:
        return base +
               (static_cast<uint64_t>(static_cast<int64_t>(
                    static_cast<int32_t>(ReadReg(m.index)))) << m.shift);
    }
    return base;
  }

  // ExecInst with the observation hook wrapped around it: clears the
  // access trace, executes, then consults hook_ (which must be non-null).
  bool ExecHooked(const arch::Inst& i, const arch::InstCost& cost);

  // Legacy single-step: align-check + fetch + decode + execute.
  bool Step();

  // Returns the (possibly freshly decoded) block starting at pc, or
  // nullptr with fault_ set. Revalidates the generation stamp first.
  const Block* FetchBlock(uint64_t pc);

  // Drops caches if the address space mutated since they were filled.
  void RevalidateCaches() {
    const uint64_t gen = mem_->mutation_generation();
    if (gen != cache_generation_) {
      // Don't count the very first fill (sentinel stamp) as an
      // invalidation; nothing was dropped.
      if (counters_ != nullptr && cache_generation_ != ~uint64_t{0}) {
        ++counters_->block_invalidations;
      }
      ClearCaches();
      cache_generation_ = gen;
    }
  }

  void ClearCaches();

  const arch::Inst* FetchDecode(uint64_t pc);

  AddressSpace* mem_;
  CpuState state_;
  Timing timing_;
  CpuFault fault_;
  ExecHook* hook_ = nullptr;
  AccessTrace hook_trace_;
  trace::ExecCounters* counters_ = nullptr;
  StopReason stop_ = StopReason::kStepLimit;
  uint64_t rt_base_ = 0, rt_len_ = 0;
  Dispatch dispatch_ = Dispatch::kChained;
  // Generation stamp both caches were filled under; ~0 forces the first
  // RevalidateCaches() to start clean.
  uint64_t cache_generation_ = ~uint64_t{0};
  // Counts ClearCaches() calls. The chained backend snapshots this around
  // a FetchBlock during link resolution: if a clear happened, the
  // predecessor block was destroyed and no link may be installed into it.
  uint64_t cache_clears_ = 0;
  std::unordered_map<uint64_t, Block> block_cache_;
  std::unordered_map<uint64_t, DecodedPage> decode_cache_;
  // Direct-mapped front cache over block_cache_: the common case (a hot
  // loop re-entering the same few blocks) resolves in one compare instead
  // of a hash probe. Entries point into block_cache_ nodes (stable across
  // inserts) and are wiped whenever block_cache_ is cleared.
  struct BlockLutEntry {
    uint64_t pc = ~uint64_t{0};
    const Block* block = nullptr;
  };
  static constexpr size_t kBlockLutBits = 12;
  std::vector<BlockLutEntry> block_lut_;
  static size_t LutIndex(uint64_t pc) {
    return (pc >> 2) & ((size_t{1} << kBlockLutBits) - 1);
  }

  // Memoized address translation for the chained backend's load/store
  // fast path: a direct-mapped TLB of page-payload pointers, so a hit
  // costs one compare + memcpy instead of a hash probe + shared_ptr
  // dereference. Entries are only trusted while dtlb_epoch_ matches
  // AddressSpace::payload_epoch(), which bumps whenever any payload
  // pointer, sharing state, or permission can change (COW, snapshot
  // export, fork, Protect, ...) — checked on every access because a
  // store inside the current block can itself trigger a COW. rw is
  // cached only for writable non-executable pages, so stores that must
  // bump the mutation generation always take the slow path.
  struct DtlbEntry {
    uint64_t pageno = ~uint64_t{0};
    const uint8_t* ro = nullptr;
    uint8_t* rw = nullptr;
  };
  static constexpr size_t kDtlbBits = 6;
  static constexpr size_t kDtlbSize = size_t{1} << kDtlbBits;
  std::array<DtlbEntry, kDtlbSize> dtlb_{};
  uint64_t dtlb_epoch_ = ~uint64_t{0};

  // Result of a chained-backend fast read; mimics Result<uint64_t>'s
  // interface so exec_ops.inc bodies work against either.
  struct FastVal {
    uint64_t val;
    bool ok;
    explicit operator bool() const { return ok; }
    uint64_t operator*() const { return val; }
  };
  LFI_EMU_ALWAYS_INLINE FastVal FastRead(uint64_t addr, unsigned size);
  LFI_EMU_ALWAYS_INLINE bool FastWrite(uint64_t addr, uint64_t value,
                                       unsigned size);
  void SyncDtlbEpoch() {
    const uint64_t e = mem_->payload_epoch();
    if (e != dtlb_epoch_) {
      for (DtlbEntry& d : dtlb_) d = DtlbEntry{};
      dtlb_epoch_ = e;
    }
  }

  friend class StepBackend;
  friend class BlockBackend;
  friend class ChainedBackend;
};

}  // namespace lfi::emu

#endif  // LFI_EMU_MACHINE_H_
