// ARM64 interpreter with integrated timing.
//
// Executes the encoded instruction subset against an AddressSpace with full
// permission checking, so the LFI isolation argument is *executed*, not
// assumed: a guard really does force the top 32 bits of an address, a
// store to a guard region really does trap. Cycle accounting runs inline
// through the Timing scoreboard.
//
// Dispatch and the decode cache. The hot loop decodes straight-line basic
// blocks (up to the next branch, page end, or undecodable word) into flat
// vectors of pre-decoded instructions with their static costs, keyed by
// start PC. Each block entry costs one hash probe, one runtime-region
// check, and one generation compare; each instruction inside the block is
// then executed with zero lookups.
//
// Invalidation contract: the block cache is stamped with
// AddressSpace::mutation_generation(), which Map/Unmap/Protect/ShareRange
// and any write landing on an executable page bump. A stamp mismatch at
// block-entry drops every cached block, so executing stale code after a
// remap is structurally impossible -- no caller cooperation needed.
// FlushDecodeCache() therefore exists only for callers that mutate code
// bytes through a channel AddressSpace cannot observe (there is none in
// this repo; it is kept for API compatibility and tests). The one window
// the generation cannot close is an instruction overwriting *its own*
// basic block mid-flight; real hardware requires an ISB there, and the
// runtime's W^X policy forbids it entirely.
#ifndef LFI_EMU_MACHINE_H_
#define LFI_EMU_MACHINE_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/cost_model.h"
#include "arch/inst.h"
#include "emu/address_space.h"
#include "emu/timing.h"
#include "trace/trace.h"

namespace lfi::emu {

// 128-bit SIMD&FP register value.
struct VRegVal {
  uint64_t lo = 0, hi = 0;
  bool operator==(const VRegVal&) const = default;
};

// Architectural CPU state.
struct CpuState {
  std::array<uint64_t, 31> x{};  // x0..x30
  uint64_t sp = 0;
  uint64_t pc = 0;
  bool n = false, z = false, c = false, v = false;
  std::array<VRegVal, 32> vr{};
  // Exclusive monitor for ldxr/stxr.
  bool excl_valid = false;
  uint64_t excl_addr = 0;

  bool operator==(const CpuState&) const = default;
};

// Why Run() returned.
enum class StopReason : uint8_t {
  kStepLimit,     // executed the requested number of instructions
  kRuntimeEntry,  // PC entered the registered runtime region
  kFault,         // memory/decode/alignment fault; see fault()
  kBrk,           // brk instruction (debug trap)
  kHookStop,      // the attached ExecHook requested a stop
};

// Per-instruction observation hook, the substrate for invariant checking
// and soundness fuzzing. While attached (set_exec_hook), OnInst is called
// after EVERY executed instruction — including one that faulted
// (`faulted` == true), in which case the instruction did not retire but
// `accesses` still records the memory addresses it *attempted*, and
// `after` is the unmodified pre-fault register state. `pc` is the
// instruction's own address; `after.pc` is where control went next.
// Return false to stop Run() with StopReason::kHookStop.
//
// Cost: one branch per instruction when detached; when attached, data
// accesses are additionally traced through the AddressSpace.
class ExecHook {
 public:
  virtual ~ExecHook() = default;
  virtual bool OnInst(const arch::Inst& inst, uint64_t pc,
                      const CpuState& after,
                      std::span<const AccessRecord> accesses,
                      bool faulted) = 0;
};

// Description of a fault that stopped execution.
struct CpuFault {
  enum class Kind : uint8_t {
    kMemory,   // data access fault (mem holds details)
    kFetch,    // instruction fetch from unmapped/non-executable page
    kDecode,   // undecodable instruction word
    kIllegal,  // svc/mrs/msr executed by sandboxed code
    kPcAlign,  // branch to a non-4-aligned address
  };
  Kind kind = Kind::kMemory;
  uint64_t pc = 0;
  MemFault mem{};
  std::string detail;
};

// How Run() fetches instructions.
enum class Dispatch : uint8_t {
  kBlock,  // basic-block cache, one probe per block (default)
  kStep,   // per-instruction page cache (legacy; baseline for benchmarks)
};

// The emulated CPU. One Machine per hardware context; multiple sandboxes
// time-share it through the runtime's scheduler.
class Machine {
 public:
  Machine(AddressSpace* mem, const arch::CoreParams& params);

  CpuState& state() { return state_; }
  const CpuState& state() const { return state_; }
  Timing& timing() { return timing_; }
  AddressSpace& mem() { return *mem_; }

  // Registers [base, base+len) as the runtime-entry region: the moment PC
  // lands inside it, Run() stops with kRuntimeEntry. This models branching
  // to a runtime address loaded from the call table (Section 4.4).
  void SetRuntimeRegion(uint64_t base, uint64_t len) {
    rt_base_ = base;
    rt_len_ = len;
  }

  // Executes up to `max_instructions`.
  StopReason Run(uint64_t max_instructions);

  const CpuFault& fault() const { return fault_; }

  // Selects the fetch strategy (see Dispatch). kStep exists so benchmarks
  // can compare against the pre-block-cache interpreter; both modes are
  // semantically identical, including cycle accounting.
  void set_dispatch(Dispatch d) { dispatch_ = d; }
  Dispatch dispatch() const { return dispatch_; }

  // Drops all cached decoded instructions immediately. NOT required after
  // Map/Unmap/Protect or code writes -- the mutation generation already
  // invalidates those lazily (see the file comment). Kept for callers
  // that want an explicit, eager flush.
  void FlushDecodeCache() { ClearCaches(); }

  // Reads a general-purpose register by Inst operand conventions
  // (zr reads 0; sp reads the stack pointer). Exposed for the runtime.
  uint64_t ReadReg(arch::Reg r) const;
  void WriteReg(arch::Reg r, uint64_t v);

  // Attaches (or detaches, with nullptr) the per-instruction hook. The
  // hook must outlive the Machine or be detached first.
  void set_exec_hook(ExecHook* hook) {
    hook_ = hook;
    mem_->set_access_trace(hook == nullptr ? nullptr : &hook_trace_);
  }
  ExecHook* exec_hook() const { return hook_; }

  // Attaches (or detaches, with nullptr) an execution-counter accumulator.
  // While attached, the dispatch loops tally retired instructions by class
  // (loads/stores/guards) plus decode-cache traffic into it; the caller
  // owns attribution (the runtime snapshots it around timeslices). The
  // disabled path costs one pointer test per dispatched *block* — the
  // per-instruction loop is unchanged. Caveat: an ExecHook stop on a
  // retired instruction skews the class tallies (not retired-count) by at
  // most one; hooks and counters are not used together in practice.
  void set_counters(trace::ExecCounters* c) { counters_ = c; }
  trace::ExecCounters* counters() const { return counters_; }

 private:
  // Instruction-class bits, precomputed at decode time so the counting
  // dispatch loop adds without re-classifying.
  static constexpr uint8_t kClassLoad = 1 << 0;
  static constexpr uint8_t kClassStore = 1 << 1;
  static constexpr uint8_t kClassGuard = 1 << 2;
  static uint8_t ClassifyInst(const arch::Inst& i);

  // A pre-decoded instruction plus its static issue cost (CostOf depends
  // only on the instruction and the fixed core params, so hoisting it to
  // decode time takes it off the hot path entirely).
  struct DecodedInst {
    arch::Inst inst;
    arch::InstCost cost;
    uint8_t class_flags;
  };

  // A decoded straight-line run: starts at its cache key's PC and ends at
  // the first branch/system instruction, page end, or undecodable word.
  struct Block {
    std::vector<DecodedInst> insts;
  };

  // Legacy per-page decode cache (Dispatch::kStep).
  struct DecodedPage {
    std::vector<arch::Inst> insts;   // kPageSize / 4 entries
    std::vector<uint8_t> status;     // 0 = undecoded, 1 = ok, 2 = bad
  };

  StopReason RunBlocks(uint64_t max_instructions);
  StopReason RunSteps(uint64_t max_instructions);

  // Executes one pre-decoded instruction; returns false if execution must
  // stop (fault or brk), with stop_ set.
  bool ExecInst(const arch::Inst& i, const arch::InstCost& cost);

  // ExecInst with the observation hook wrapped around it: clears the
  // access trace, executes, then consults hook_ (which must be non-null).
  bool ExecHooked(const arch::Inst& i, const arch::InstCost& cost);

  // Legacy single-step: align-check + fetch + decode + execute.
  bool Step();

  // Returns the (possibly freshly decoded) block starting at pc, or
  // nullptr with fault_ set. Revalidates the generation stamp first.
  const Block* FetchBlock(uint64_t pc);

  // Drops caches if the address space mutated since they were filled.
  void RevalidateCaches() {
    const uint64_t gen = mem_->mutation_generation();
    if (gen != cache_generation_) {
      // Don't count the very first fill (sentinel stamp) as an
      // invalidation; nothing was dropped.
      if (counters_ != nullptr && cache_generation_ != ~uint64_t{0}) {
        ++counters_->block_invalidations;
      }
      ClearCaches();
      cache_generation_ = gen;
    }
  }

  void ClearCaches();

  const arch::Inst* FetchDecode(uint64_t pc);

  AddressSpace* mem_;
  CpuState state_;
  Timing timing_;
  CpuFault fault_;
  ExecHook* hook_ = nullptr;
  AccessTrace hook_trace_;
  trace::ExecCounters* counters_ = nullptr;
  StopReason stop_ = StopReason::kStepLimit;
  uint64_t rt_base_ = 0, rt_len_ = 0;
  Dispatch dispatch_ = Dispatch::kBlock;
  // Generation stamp both caches were filled under; ~0 forces the first
  // RevalidateCaches() to start clean.
  uint64_t cache_generation_ = ~uint64_t{0};
  std::unordered_map<uint64_t, Block> block_cache_;
  std::unordered_map<uint64_t, DecodedPage> decode_cache_;
  // Direct-mapped front cache over block_cache_: the common case (a hot
  // loop re-entering the same few blocks) resolves in one compare instead
  // of a hash probe. Entries point into block_cache_ nodes (stable across
  // inserts) and are wiped whenever block_cache_ is cleared.
  struct BlockLutEntry {
    uint64_t pc = ~uint64_t{0};
    const Block* block = nullptr;
  };
  static constexpr size_t kBlockLutBits = 12;
  std::vector<BlockLutEntry> block_lut_;
  static size_t LutIndex(uint64_t pc) {
    return (pc >> 2) & ((size_t{1} << kBlockLutBits) - 1);
  }
};

}  // namespace lfi::emu

#endif  // LFI_EMU_MACHINE_H_
