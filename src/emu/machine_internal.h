// Shared internals of the interpreter backends.
//
// The instruction semantics in exec_ops.inc are compiled twice: once into
// the reference switch interpreter (machine.cc) and once into the
// direct-threaded chained backend (backend_chained.cc). Everything both
// translation units need — the small pure helpers the op bodies call and
// the master mnemonic list that builds the computed-goto dispatch table —
// lives here so the two backends cannot drift apart.
#ifndef LFI_EMU_MACHINE_INTERNAL_H_
#define LFI_EMU_MACHINE_INTERNAL_H_

#include <bit>
#include <cstdint>

#include "arch/inst.h"
#include "emu/machine.h"
#include "emu/timing.h"

namespace lfi::emu::internal {

// Scoreboard index for a register operand (-1 = no dependency).
inline int SIdx(arch::Reg r) {
  if (r.IsNone() || r.IsZr()) return -1;
  if (r.IsSp()) return Timing::kSpIdx;
  return r.id();
}

inline uint64_t MaskW(uint64_t v, arch::Width w) {
  return w == arch::Width::kW ? (v & 0xffffffffu) : v;
}

inline uint64_t ShiftVal(uint64_t v, arch::Shift s, unsigned amt,
                         arch::Width w) {
  using arch::Shift;
  const unsigned bits = w == arch::Width::kX ? 64 : 32;
  v = MaskW(v, w);
  if (amt == 0 && s != Shift::kRor) return v;
  switch (s) {
    case Shift::kLsl:
      return MaskW(amt >= bits ? 0 : v << amt, w);
    case Shift::kLsr:
      return amt >= bits ? 0 : v >> amt;
    case Shift::kAsr: {
      const int64_t sv = w == arch::Width::kX
                             ? static_cast<int64_t>(v)
                             : static_cast<int64_t>(static_cast<int32_t>(v));
      return MaskW(static_cast<uint64_t>(sv >> (amt >= bits ? bits - 1 : amt)),
                   w);
    }
    case Shift::kRor:
      amt %= bits;
      if (amt == 0) return v;
      return MaskW((v >> amt) | (v << (bits - amt)), w);
  }
  return v;
}

inline uint64_t ExtendVal(uint64_t v, arch::Extend e, unsigned amt) {
  using arch::Extend;
  switch (e) {
    case Extend::kUxtb: v &= 0xff; break;
    case Extend::kUxth: v &= 0xffff; break;
    case Extend::kUxtw: v &= 0xffffffff; break;
    case Extend::kUxtx: break;
    case Extend::kSxtb:
      v = static_cast<uint64_t>(static_cast<int64_t>(static_cast<int8_t>(v)));
      break;
    case Extend::kSxth:
      v = static_cast<uint64_t>(static_cast<int64_t>(static_cast<int16_t>(v)));
      break;
    case Extend::kSxtw:
      v = static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(v)));
      break;
    case Extend::kSxtx:
      break;
  }
  return v << amt;
}

inline bool EvalCond(const CpuState& s, arch::Cond c) {
  using arch::Cond;
  switch (c) {
    case Cond::kEq: return s.z;
    case Cond::kNe: return !s.z;
    case Cond::kHs: return s.c;
    case Cond::kLo: return !s.c;
    case Cond::kMi: return s.n;
    case Cond::kPl: return !s.n;
    case Cond::kVs: return s.v;
    case Cond::kVc: return !s.v;
    case Cond::kHi: return s.c && !s.z;
    case Cond::kLs: return !s.c || s.z;
    case Cond::kGe: return s.n == s.v;
    case Cond::kLt: return s.n != s.v;
    case Cond::kGt: return !s.z && s.n == s.v;
    case Cond::kLe: return s.z || s.n != s.v;
    case Cond::kAl: return true;
  }
  return true;
}

// a + b + carry with NZCV, in the given width.
inline uint64_t AddWithFlags(uint64_t a, uint64_t b, bool carry, arch::Width w,
                             CpuState* s) {
  if (w == arch::Width::kW) {
    const uint32_t a32 = static_cast<uint32_t>(a);
    const uint32_t b32 = static_cast<uint32_t>(b);
    const uint64_t wide = uint64_t{a32} + b32 + (carry ? 1 : 0);
    const uint32_t r = static_cast<uint32_t>(wide);
    s->n = (r >> 31) & 1;
    s->z = r == 0;
    s->c = (wide >> 32) != 0;
    s->v = (~(a32 ^ b32) & (a32 ^ r)) >> 31;
    return r;
  }
  const uint64_t r = a + b + (carry ? 1 : 0);
  s->n = (r >> 63) & 1;
  s->z = r == 0;
  // Carry-out of a 64-bit add.
  s->c = (r < a) || (carry && r == a);
  s->v = ((~(a ^ b) & (a ^ r)) >> 63) & 1;
  return r;
}

inline double BitsToF64(uint64_t b) { return std::bit_cast<double>(b); }
inline uint64_t F64ToBits(double d) { return std::bit_cast<uint64_t>(d); }
inline float BitsToF32(uint64_t b) {
  return std::bit_cast<float>(static_cast<uint32_t>(b));
}
inline uint64_t F32ToBits(float f) { return std::bit_cast<uint32_t>(f); }

}  // namespace lfi::emu::internal

// Every mnemonic the interpreter implements, i.e. every case label in
// exec_ops.inc. The chained backend expands this list to build its
// computed-goto table; a mnemonic listed here without an op body fails to
// compile (undefined label), so the list cannot silently diverge from the
// semantics.
#define LFI_EMU_MN_LIST(X)                                                  \
  X(kAddImm) X(kAddsImm) X(kSubImm) X(kSubsImm)                             \
  X(kAddReg) X(kAddsReg) X(kSubReg) X(kSubsReg)                             \
  X(kAndReg) X(kAndsReg) X(kOrrReg) X(kEorReg) X(kBicReg)                   \
  X(kAndImm) X(kAndsImm) X(kOrrImm) X(kEorImm)                              \
  X(kAddExt) X(kSubExt)                                                     \
  X(kMovz) X(kMovn) X(kMovk)                                                \
  X(kUbfm) X(kSbfm)                                                         \
  X(kMadd) X(kMsub) X(kSdiv) X(kUdiv) X(kUmulh) X(kSmulh)                   \
  X(kCsel) X(kCsinc) X(kCsinv) X(kCsneg)                                    \
  X(kCcmp) X(kCcmpImm) X(kCcmn) X(kCcmnImm)                                 \
  X(kExtr)                                                                  \
  X(kClz) X(kRbit) X(kRev)                                                  \
  X(kAdr) X(kAdrp)                                                          \
  X(kLdr) X(kStr) X(kLdp) X(kStp)                                           \
  X(kLdxr) X(kStxr) X(kLdar) X(kStlr)                                       \
  X(kLdrF) X(kStrF)                                                         \
  X(kB) X(kBl) X(kBCond) X(kCbz) X(kCbnz) X(kTbz) X(kTbnz)                  \
  X(kBr) X(kBlr) X(kRet)                                                    \
  X(kFadd) X(kFsub) X(kFmul) X(kFdiv) X(kFsqrt) X(kFmadd)                   \
  X(kFcmp) X(kScvtf) X(kFcvtzs) X(kFmov)                                    \
  X(kVAdd) X(kVFadd) X(kVFmul)                                              \
  X(kNop) X(kSvc) X(kBrk) X(kMrs) X(kMsr)

// Applies a one-argument macro to each listed mnemonic of an EXEC_OP head
// (up to the 9-wide logical group).
#define LFI_EMU_MAP_1(M, a) M(a)
#define LFI_EMU_MAP_2(M, a, ...) M(a) LFI_EMU_MAP_1(M, __VA_ARGS__)
#define LFI_EMU_MAP_3(M, a, ...) M(a) LFI_EMU_MAP_2(M, __VA_ARGS__)
#define LFI_EMU_MAP_4(M, a, ...) M(a) LFI_EMU_MAP_3(M, __VA_ARGS__)
#define LFI_EMU_MAP_5(M, a, ...) M(a) LFI_EMU_MAP_4(M, __VA_ARGS__)
#define LFI_EMU_MAP_6(M, a, ...) M(a) LFI_EMU_MAP_5(M, __VA_ARGS__)
#define LFI_EMU_MAP_7(M, a, ...) M(a) LFI_EMU_MAP_6(M, __VA_ARGS__)
#define LFI_EMU_MAP_8(M, a, ...) M(a) LFI_EMU_MAP_7(M, __VA_ARGS__)
#define LFI_EMU_MAP_9(M, a, ...) M(a) LFI_EMU_MAP_8(M, __VA_ARGS__)
#define LFI_EMU_MAP_PICK(a1, a2, a3, a4, a5, a6, a7, a8, a9, NAME, ...) NAME
#define LFI_EMU_MAP(M, ...)                                               \
  LFI_EMU_MAP_PICK(__VA_ARGS__, LFI_EMU_MAP_9, LFI_EMU_MAP_8,             \
                   LFI_EMU_MAP_7, LFI_EMU_MAP_6, LFI_EMU_MAP_5,           \
                   LFI_EMU_MAP_4, LFI_EMU_MAP_3, LFI_EMU_MAP_2,           \
                   LFI_EMU_MAP_1)(M, __VA_ARGS__)

#endif  // LFI_EMU_MACHINE_INTERNAL_H_
