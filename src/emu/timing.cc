#include "emu/timing.h"

#include <algorithm>

namespace lfi::emu {

BranchPredictor::BranchPredictor()
    : counters_(size_t{1} << kTableBits, 2),
      btb_(size_t{1} << kTableBits, 0),
      tags_(size_t{1} << kTableBits, 0),
      btb_tags_(size_t{1} << kTableBits, 0) {}

bool BranchPredictor::PredictConditional(uint64_t pc, bool taken) {
  return PredictConditionalFast(pc, taken);
}

bool BranchPredictor::PredictIndirect(uint64_t pc, uint64_t target) {
  return PredictIndirectFast(pc, target);
}

CacheModel::CacheModel(uint64_t size_bytes, unsigned ways)
    : ways_(ways),
      sets_(std::max<uint64_t>(1, size_bytes / kLineBytes / ways)),
      tags_(sets_ * ways, 0),
      order_(sets_ * ways, 0) {}

TlbModel::TlbModel(unsigned entries) : tags_(entries, ~uint64_t{0}) {}

void TlbModel::Flush() {
  std::fill(tags_.begin(), tags_.end(), ~uint64_t{0});
}

Timing::Timing(const arch::CoreParams& params)
    : params_(params),
      reg_ready_(kIntRegs, 0),
      vreg_ready_(32, 0),
      l1d_(uint64_t{params.l1d_kib} * 1024, 8),
      l2_(uint64_t{params.l1d_kib} * 1024 * 16, 8),
      tlb_(static_cast<unsigned>(params.tlb_entries)) {}

uint64_t Timing::MemoryExtra(uint64_t addr, bool is_store) {
  return MemoryExtraFast(addr, is_store);
}

void Timing::ChargeFlat(uint64_t cycles) {
  flat_ += cycles;
  frontier_ += cycles;
}

uint64_t Timing::Cycles() const {
  const uint64_t bw =
      std::max({slot_acc_ / static_cast<uint64_t>(params_.issue_width),
                mem_acc_ / static_cast<uint64_t>(params_.mem_ports),
                miss_acc_ / static_cast<uint64_t>(params_.mlp)}) +
      flat_;
  return std::max({max_completion_, bw, frontier_});
}

double Timing::Nanoseconds() const {
  return static_cast<double>(Cycles()) / params_.ghz;
}

}  // namespace lfi::emu
