#include "emu/timing.h"

#include <algorithm>

namespace lfi::emu {

namespace {
uint64_t HashPc(uint64_t pc, size_t bits) {
  return (pc >> 2) & ((uint64_t{1} << bits) - 1);
}
}  // namespace

BranchPredictor::BranchPredictor()
    : counters_(size_t{1} << kTableBits, 2),
      btb_(size_t{1} << kTableBits, 0),
      tags_(size_t{1} << kTableBits, 0),
      btb_tags_(size_t{1} << kTableBits, 0) {}

bool BranchPredictor::PredictConditional(uint64_t pc, bool taken) {
  const uint64_t idx = HashPc(pc, kTableBits);
  if (tags_[idx] != ctx_) {
    // Entry belongs to another software context: treat as cold.
    tags_[idx] = ctx_;
    counters_[idx] = 2;
  }
  uint8_t& ctr = counters_[idx];
  const bool predicted = ctr >= 2;
  if (taken && ctr < 3) ++ctr;
  if (!taken && ctr > 0) --ctr;
  return predicted == taken;
}

bool BranchPredictor::PredictIndirect(uint64_t pc, uint64_t target) {
  const uint64_t idx = HashPc(pc, kTableBits);
  if (btb_tags_[idx] != ctx_) {
    btb_tags_[idx] = ctx_;
    btb_[idx] = 0;
  }
  uint64_t& entry = btb_[idx];
  const bool correct = entry == target;
  entry = target;
  return correct;
}

CacheModel::CacheModel(uint64_t size_bytes, unsigned ways)
    : ways_(ways),
      sets_(std::max<uint64_t>(1, size_bytes / kLineBytes / ways)),
      tags_(sets_ * ways, 0),
      order_(sets_ * ways, 0) {}

bool CacheModel::Access(uint64_t addr) {
  const uint64_t line = addr / kLineBytes;
  const uint64_t set = line % sets_;
  const uint64_t tag = line / sets_ + 1;  // +1 so 0 stays "invalid"
  uint64_t* t = &tags_[set * ways_];
  uint32_t* o = &order_[set * ways_];
  unsigned victim = 0;
  for (unsigned w = 0; w < ways_; ++w) {
    if (t[w] == tag) {
      o[w] = stamp_++;
      return true;
    }
    if (o[w] < o[victim]) victim = w;
  }
  t[victim] = tag;
  o[victim] = stamp_++;
  return false;
}

TlbModel::TlbModel(unsigned entries) : tags_(entries, ~uint64_t{0}) {}

bool TlbModel::Access(uint64_t addr) {
  const uint64_t page = addr / 16384;
  uint64_t& slot = tags_[page % tags_.size()];
  if (slot == page) return true;
  slot = page;
  return false;
}

void TlbModel::Flush() {
  std::fill(tags_.begin(), tags_.end(), ~uint64_t{0});
}

Timing::Timing(const arch::CoreParams& params)
    : params_(params),
      reg_ready_(kIntRegs, 0),
      vreg_ready_(32, 0),
      l1d_(uint64_t{params.l1d_kib} * 1024, 8),
      l2_(uint64_t{params.l1d_kib} * 1024 * 16, 8),
      tlb_(static_cast<unsigned>(params.tlb_entries)) {}

uint64_t Timing::MemoryExtra(uint64_t addr, bool is_store) {
  uint64_t extra = 0;
  if (!tlb_.Access(addr)) {
    uint64_t walk = static_cast<uint64_t>(params_.tlb_walk_cycles);
    if (nested_pagetables_) walk *= 2;  // two-dimensional page walk
    extra += walk;
  }
  if (!l1d_.Access(addr)) {
    if (l2_.Access(addr)) {
      extra += static_cast<uint64_t>(params_.l2_latency);
    } else {
      extra += static_cast<uint64_t>(params_.mem_latency);
    }
  }
  // Miss latency can overlap across accesses, but only up to the machine's
  // miss-level parallelism; a stream of misses is throughput-bound on the
  // MSHRs even when no consumer stalls on the data.
  if (extra != 0) {
    miss_acc_ += extra;
    miss_q_ = miss_acc_ / static_cast<uint64_t>(params_.mlp);
  }
  // Stores retire without stalling consumers; charge only their miss
  // bandwidth at a reduced weight.
  if (is_store) extra /= 4;
  return extra;
}

void Timing::Mispredict(uint64_t resolve_cycle) {
  frontier_ = std::max(
      frontier_,
      resolve_cycle + static_cast<uint64_t>(params_.mispredict_penalty));
}

void Timing::ChargeFlat(uint64_t cycles) {
  flat_ += cycles;
  frontier_ += cycles;
}

uint64_t Timing::Cycles() const {
  const uint64_t bw =
      std::max({slot_acc_ / static_cast<uint64_t>(params_.issue_width),
                mem_acc_ / static_cast<uint64_t>(params_.mem_ports),
                miss_acc_ / static_cast<uint64_t>(params_.mlp)}) +
      flat_;
  return std::max({max_completion_, bw, frontier_});
}

double Timing::Nanoseconds() const {
  return static_cast<double>(Cycles()) / params_.ghz;
}

}  // namespace lfi::emu
