// Dynamic timing model: idealized out-of-order scoreboard plus cache, TLB,
// and branch-predictor models.
//
// The model computes, per retired instruction, the earliest cycle its
// result is available, constrained by (a) source-operand readiness (the
// dataflow critical path - this is where the 2-cycle `add ... uxtw` guard
// hurts and the embedded addressing-mode guard doesn't), (b) aggregate issue
// bandwidth, (c) memory-port bandwidth, and (d) front-end stalls from
// branch mispredictions. Total cycles for a run is the max of those
// constraints, which approximates a large-window OoO core well enough to
// reproduce the relative overheads in the paper's Figures 3-5.
#ifndef LFI_EMU_TIMING_H_
#define LFI_EMU_TIMING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "arch/cost_model.h"

namespace lfi::emu {

// Branch predictor: 2-bit saturating counters for conditional branches and
// a last-target BTB for indirect branches.
//
// Entries can be tagged with a *software context number*, modelling Arm's
// FEAT_CSV2_2 / SCXTNUM_EL0 (Section 7.1): when the runtime assigns each
// sandbox its own context, one sandbox's branch history cannot influence
// another's speculation (the cross-sandbox-poisoning mitigation). An entry
// whose tag does not match the current context behaves as if it were
// empty.
class BranchPredictor {
 public:
  BranchPredictor();

  // Selects the current software context (0 = default shared context).
  void SetContext(uint32_t ctx) { ctx_ = ctx; }
  uint32_t context() const { return ctx_; }

  // Returns true if the prediction was correct; updates state.
  bool PredictConditional(uint64_t pc, bool taken);
  bool PredictIndirect(uint64_t pc, uint64_t target);

  // Inline twins of the two predictors, for the optimized backend's
  // translation unit. The out-of-line versions (which the reference
  // interpreter calls, keeping its codegen - and therefore the in-run
  // chained-vs-block speedup gate - honest) delegate to these, so the
  // state transitions cannot diverge.
  bool PredictConditionalFast(uint64_t pc, bool taken) {
    const uint64_t idx = Hash(pc);
    if (tags_[idx] != ctx_) {
      // Entry belongs to another software context: treat as cold.
      tags_[idx] = ctx_;
      counters_[idx] = 2;
    }
    uint8_t& ctr = counters_[idx];
    const bool predicted = ctr >= 2;
    if (taken && ctr < 3) ++ctr;
    if (!taken && ctr > 0) --ctr;
    return predicted == taken;
  }
  bool PredictIndirectFast(uint64_t pc, uint64_t target) {
    const uint64_t idx = Hash(pc);
    if (btb_tags_[idx] != ctx_) {
      btb_tags_[idx] = ctx_;
      btb_[idx] = 0;
    }
    uint64_t& entry = btb_[idx];
    const bool correct = entry == target;
    entry = target;
    return correct;
  }

 private:
  static constexpr size_t kTableBits = 13;
  static uint64_t Hash(uint64_t pc) {
    return (pc >> 2) & ((uint64_t{1} << kTableBits) - 1);
  }
  uint32_t ctx_ = 0;
  std::vector<uint8_t> counters_;
  std::vector<uint64_t> btb_;
  std::vector<uint32_t> tags_;      // context tag per counter entry
  std::vector<uint32_t> btb_tags_;  // context tag per BTB entry
};

// Set-associative tag-array cache model (data presence only).
class CacheModel {
 public:
  // `size_bytes` capacity with 64-byte lines, `ways`-way associative.
  CacheModel(uint64_t size_bytes, unsigned ways);

  // Returns true on hit; inserts the line on miss (LRU within set).
  // Defined inline so Timing::MemoryExtraFast fully inlines.
  bool Access(uint64_t addr) {
    const uint64_t line = addr / kLineBytes;
    const uint64_t set = line % sets_;
    const uint64_t tag = line / sets_ + 1;  // +1 so 0 stays "invalid"
    uint64_t* t = &tags_[set * ways_];
    uint32_t* o = &order_[set * ways_];
    unsigned victim = 0;
    for (unsigned w = 0; w < ways_; ++w) {
      if (t[w] == tag) {
        o[w] = stamp_++;
        return true;
      }
      if (o[w] < o[victim]) victim = w;
    }
    t[victim] = tag;
    o[victim] = stamp_++;
    return false;
  }

 private:
  static constexpr uint64_t kLineBytes = 64;
  unsigned ways_;
  uint64_t sets_;
  std::vector<uint64_t> tags_;   // sets_ x ways_, 0 = invalid
  std::vector<uint32_t> order_;  // LRU stamps
  uint32_t stamp_ = 1;
};

// TLB model with page-granular entries.
class TlbModel {
 public:
  explicit TlbModel(unsigned entries);
  bool Access(uint64_t addr) {
    const uint64_t page = addr / 16384;
    uint64_t& slot = tags_[page % tags_.size()];
    if (slot == page) return true;
    slot = page;
    return false;
  }
  void Flush();

 private:
  std::vector<uint64_t> tags_;
};

// Aggregate scoreboard for one hardware context.
class Timing {
 public:
  explicit Timing(const arch::CoreParams& params);

  // Register scoreboard indices: 0..30 = x regs, 31 = sp, 32 = NZCV.
  static constexpr int kSpIdx = 31;
  static constexpr int kFlagsIdx = 32;
  static constexpr int kIntRegs = 33;

  // Records one retired instruction.
  //  `srcs`/`dst` index the integer scoreboard (-1 = none);
  //  `vsrcs`/`vdst` index the vector scoreboard.
  // Returns the cycle at which the result is ready (used to chain the
  // address-dependent latency of memory operations).
  //
  // Defined inline: this runs once per retired instruction and is the
  // single hottest function in the emulator. The bandwidth floors are
  // maintained as cached quotients (slot_q_, mem_q_, miss_q_) instead of
  // dividing the raw accumulators here; the carry loops below produce
  // exactly the same values as the divisions in Cycles().
  uint64_t Issue(const arch::InstCost& cost, const int* srcs, int nsrcs,
                 int dst, const int* vsrcs = nullptr, int nvsrcs = 0,
                 int vdst = -1, uint64_t extra_latency = 0) {
    ++retired_;
    slot_acc_ += static_cast<uint64_t>(cost.slots);
    slot_rem_ += static_cast<uint64_t>(cost.slots);
    while (slot_rem_ >= static_cast<uint64_t>(params_.issue_width)) {
      slot_rem_ -= static_cast<uint64_t>(params_.issue_width);
      ++slot_q_;
    }
    if (cost.is_mem) {
      ++mem_acc_;
      if (++mem_rem_ == static_cast<uint64_t>(params_.mem_ports)) {
        mem_rem_ = 0;
        ++mem_q_;
      }
    }
    // Earliest start: front-end floor, bandwidth floor, operand readiness.
    uint64_t start = frontier_;
    const uint64_t bw_floor =
        std::max({slot_q_, cost.is_mem ? mem_q_ : uint64_t{0}, miss_q_}) +
        flat_;
    if (bw_floor > start) start = bw_floor;
    for (int k = 0; k < nsrcs; ++k) {
      if (srcs[k] >= 0 && reg_ready_[srcs[k]] > start) {
        start = reg_ready_[srcs[k]];
      }
    }
    for (int k = 0; k < nvsrcs; ++k) {
      if (vsrcs[k] >= 0 && vreg_ready_[vsrcs[k]] > start) {
        start = vreg_ready_[vsrcs[k]];
      }
    }
    const uint64_t done =
        start + static_cast<uint64_t>(cost.latency) + extra_latency;
    if (dst >= 0) reg_ready_[dst] = done;
    if (vdst >= 0) vreg_ready_[vdst] = done;
    if (done > max_completion_) max_completion_ = done;
    return done;
  }

  // Memory access bookkeeping: returns extra latency cycles from cache/TLB
  // behaviour for an access at `addr`. Deliberately out-of-line: the
  // reference interpreter calls this, and its codegen anchors the in-run
  // chained-vs-block speedup gate in bench_emu_dispatch.
  uint64_t MemoryExtra(uint64_t addr, bool is_store);

  // Inline twin of MemoryExtra for the optimized backend's translation
  // unit; MemoryExtra delegates here, so the model state transitions are
  // the same code either way.
  uint64_t MemoryExtraFast(uint64_t addr, bool is_store) {
    uint64_t extra = 0;
    if (!tlb_.Access(addr)) {
      uint64_t walk = static_cast<uint64_t>(params_.tlb_walk_cycles);
      if (nested_pagetables_) walk *= 2;  // two-dimensional page walk
      extra += walk;
    }
    if (!l1d_.Access(addr)) {
      if (l2_.Access(addr)) {
        extra += static_cast<uint64_t>(params_.l2_latency);
      } else {
        extra += static_cast<uint64_t>(params_.mem_latency);
      }
    }
    // Miss latency can overlap across accesses, but only up to the
    // machine's miss-level parallelism; a stream of misses is
    // throughput-bound on the MSHRs even when no consumer stalls on the
    // data.
    if (extra != 0) {
      miss_acc_ += extra;
      miss_q_ = miss_acc_ / static_cast<uint64_t>(params_.mlp);
    }
    // Stores retire without stalling consumers; charge only their miss
    // bandwidth at a reduced weight.
    if (is_store) extra /= 4;
    return extra;
  }

  // Front-end stall after a mispredicted branch resolved at `resolve_cycle`.
  void Mispredict(uint64_t resolve_cycle) {
    frontier_ = std::max(
        frontier_,
        resolve_cycle + static_cast<uint64_t>(params_.mispredict_penalty));
  }

  // Charges a flat number of cycles (used by the runtime for host-side work
  // such as the register save/restore in a context switch).
  void ChargeFlat(uint64_t cycles);

  // Directly marks a scoreboard entry ready at `cycle` (used for secondary
  // destinations such as NZCV flags or the second register of ldp).
  void SetReady(int idx, uint64_t cycle) { reg_ready_[idx] = cycle; }
  void SetVReady(int idx, uint64_t cycle) { vreg_ready_[idx] = cycle; }

  // Total cycles consumed so far.
  uint64_t Cycles() const;
  uint64_t Retired() const { return retired_; }
  double Nanoseconds() const;

  BranchPredictor& predictor() { return predictor_; }
  const arch::CoreParams& params() const { return params_; }

  // When true, TLB walks cost twice as much (nested page tables under
  // hardware virtualization - the Figure 5 comparison).
  void set_nested_pagetables(bool v) { nested_pagetables_ = v; }

 private:
  arch::CoreParams params_;
  std::vector<uint64_t> reg_ready_;   // int scoreboard
  std::vector<uint64_t> vreg_ready_;  // vector scoreboard
  uint64_t slot_acc_ = 0;             // issue slots consumed * 1
  uint64_t mem_acc_ = 0;              // memory ops
  uint64_t miss_acc_ = 0;             // accumulated miss-latency cycles
  // Cached bandwidth-floor quotients (see Issue): slot_q_ == slot_acc_ /
  // issue_width, mem_q_ == mem_acc_ / mem_ports, miss_q_ == miss_acc_ /
  // mlp at all times, maintained without per-instruction division.
  uint64_t slot_q_ = 0, slot_rem_ = 0;
  uint64_t mem_q_ = 0, mem_rem_ = 0;
  uint64_t miss_q_ = 0;
  uint64_t frontier_ = 0;             // front-end stall floor
  uint64_t max_completion_ = 0;
  uint64_t flat_ = 0;
  uint64_t retired_ = 0;
  bool nested_pagetables_ = false;
  BranchPredictor predictor_;
  CacheModel l1d_;
  CacheModel l2_;
  TlbModel tlb_;
};

}  // namespace lfi::emu

#endif  // LFI_EMU_TIMING_H_
