#include "fuzz/exec.h"

#include <cstring>
#include <string>

#include "arch/cost_model.h"
#include "arch/inst.h"
#include "arch/reg.h"
#include "fuzz/rng.h"
#include "runtime/layout.h"

namespace lfi::fuzz {

namespace {

using arch::Inst;
using arch::Reg;

std::string Hex(uint64_t v) {
  char buf[32];
  snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

// True if `i` writes x30 by loading it from memory. The verifier's x30
// protocol makes the *next* instruction re-establish validity (guard or
// blr), so the checker exempts exactly this one retire.
bool LoadsLink(const Inst& i) {
  return arch::IsLoad(i) &&
         (i.rt == arch::kRegLink ||
          (i.mn == arch::Mn::kLdp && i.rt2 == arch::kRegLink));
}

}  // namespace

bool SlotInvariantChecker::Fail(uint64_t pc, const Inst& inst,
                                std::string what) {
  if (violation_.empty()) {
    violation_ = "pc=" + Hex(pc) + " (" + arch::MnName(inst) + "): " +
                 std::move(what);
  }
  return false;
}

bool SlotInvariantChecker::OnInst(const Inst& inst, uint64_t pc,
                                  const emu::CpuState& after,
                                  std::span<const emu::AccessRecord> accesses,
                                  bool faulted) {
  ++checked_;
  // Every *attempted* data access must stay inside slot + guards. This
  // holds for faulted instructions too: the emulator may refuse an access
  // real hardware would satisfy (a neighbor's page), so the attempt is
  // what matters, not whether it retired here.
  for (const auto& a : accesses) {
    if (!InWindow(a.addr, a.size)) {
      return Fail(pc, inst,
                  std::string(a.kind == emu::Access::kWrite ? "store" : "load") +
                      " of " + std::to_string(a.size) + " bytes at " +
                      Hex(a.addr) + " escapes the slot+guard window");
    }
  }
  if (faulted) return true;  // contained trap; registers unchanged

  // Section 3 register invariants, checked after every retire.
  if (after.x[21] != cfg_.base) {
    return Fail(pc, inst, "x21 (sandbox base) changed to " + Hex(after.x[21]));
  }
  for (uint8_t r : {uint8_t{18}, uint8_t{23}, uint8_t{24}}) {
    if (!InSlot(after.x[r])) {
      return Fail(pc, inst,
                  "x" + std::to_string(r) + " left the slot: " +
                      Hex(after.x[r]));
    }
  }
  if ((after.x[22] >> 32) != 0) {
    return Fail(pc, inst, "x22 holds a 64-bit value: " + Hex(after.x[22]));
  }
  if (!(after.sp >= cfg_.base - cfg_.guard_bytes - cfg_.sp_slack &&
        after.sp <
            cfg_.base + (uint64_t{1} << 32) + cfg_.guard_bytes + cfg_.sp_slack)) {
    return Fail(pc, inst, "sp left the slot+slack window: " + Hex(after.sp));
  }
  if (!LoadsLink(inst) && !InSlot(after.x[30]) && !InRuntime(after.x[30])) {
    return Fail(pc, inst, "x30 invalid outside a load window: " +
                              Hex(after.x[30]));
  }
  // Indirect control flow may only land in the slot or the runtime-entry
  // region; anywhere else could be a neighbor's text on real hardware.
  if (arch::IsIndirectBranch(inst) && !InSlot(after.pc) &&
      !InRuntime(after.pc)) {
    return Fail(pc, inst, "indirect branch escaped to " + Hex(after.pc));
  }
  return true;
}

ExecEnv::ExecEnv(std::span<const uint32_t> words, const ExecOptions& opts)
    : base_(runtime::SlotBase(1)),
      machine_(&space_, arch::AppleM1LikeParams()) {
  namespace rt = lfi::runtime;
  const uint64_t base = base_;
  const uint64_t kPage = emu::kPageSize;
  const uint64_t rt_len =
      rt::kRuntimeEntryGranule * uint64_t(rt::Rtcall::kCount);

  auto map = [&](uint64_t addr, uint64_t len, uint8_t perms) {
    (void)space_.Map(addr, len, perms);
    ranges_.emplace_back(addr, len);
  };

  // Call table page at the slot base (read-only), entries pointing into
  // the runtime-entry region like the real runtime's setup.
  map(base, kPage, emu::kPermRead);
  {
    std::vector<uint8_t> table(opts.table_bytes, 0);
    for (uint64_t i = 0; i * 8 + 8 <= opts.table_bytes; ++i) {
      const uint64_t entry =
          rt::kRuntimeEntryBase +
          (i % uint64_t(rt::Rtcall::kCount)) * rt::kRuntimeEntryGranule;
      memcpy(table.data() + i * 8, &entry, 8);
    }
    (void)space_.HostWrite(base, {table.data(), table.size()});
  }

  // Text (read+execute).
  const uint64_t text_base = base + rt::kProgramStart;
  const uint64_t text_len = uint64_t(words.size()) * 4;
  const uint64_t text_map = (text_len + kPage - 1) / kPage * kPage;
  map(text_base, text_map == 0 ? kPage : text_map,
      emu::kPermRead | emu::kPermExec);
  (void)space_.HostWrite(
      text_base, {reinterpret_cast<const uint8_t*>(words.data()), text_len});

  // Data region the address-reserved registers start out pointing at.
  const uint64_t data_base = base + 0x200000;
  map(data_base, 4 * kPage, emu::kPermRead | emu::kPermWrite);

  // Stack at the top of the usable area.
  map(base + rt::kProgramEnd - 8 * kPage, 8 * kPage,
      emu::kPermRead | emu::kPermWrite);

  // Tripwire pages OUTSIDE the slot+guard window. On real hardware these
  // addresses could belong to a neighbor; mapping them RW here means a
  // near-escape access *retires* instead of faulting, and the invariant
  // checker convicts it from the access trace.
  {
    const uint64_t lo_end = (base - opts.guard_bytes) & ~(kPage - 1);
    map(lo_end - 2 * kPage, 2 * kPage, emu::kPermRead | emu::kPermWrite);
    const uint64_t hi_start =
        (base + rt::kSlotSize + opts.guard_bytes + kPage - 1) & ~(kPage - 1);
    map(hi_start, 2 * kPage, emu::kPermRead | emu::kPermWrite);
    // A neighbor slot's data page and two distant pages.
    map(base + rt::kSlotSize + 0x200000, kPage,
        emu::kPermRead | emu::kPermWrite);
    map(base - (uint64_t{1} << 30), kPage, emu::kPermRead | emu::kPermWrite);
    map(base + 2 * rt::kSlotSize + (uint64_t{1} << 30), kPage,
        emu::kPermRead | emu::kPermWrite);
  }

  machine_.SetRuntimeRegion(rt::kRuntimeEntryBase, rt_len);
  machine_.set_dispatch(opts.dispatch);

  // Initial state: reserved registers satisfy their invariants; everything
  // else is attacker-controlled, so give it hostile values.
  Rng rng(opts.seed);
  emu::CpuState& st = machine_.state();
  const uint64_t interesting[] = {
      0,
      ~uint64_t{0},
      base,
      base - 8,
      base - opts.guard_bytes,
      base + rt::kSlotSize,
      base + rt::kSlotSize + opts.guard_bytes - 1,
      rt::kRuntimeEntryBase,
      text_base,
  };
  for (uint8_t r : {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12,
                    13, 14, 15, 16, 17, 19, 20, 25, 26, 27, 28, 29}) {
    switch (rng.Below(4)) {
      case 0: st.x[r] = rng.Next(); break;
      case 1: st.x[r] = data_base + rng.Below(2 * kPage); break;
      case 2: st.x[r] = rng.Next() & 0xffffffff; break;
      default: st.x[r] = interesting[rng.Below(std::size(interesting))]; break;
    }
  }
  st.x[21] = base;
  st.x[18] = st.x[23] = st.x[24] = data_base;
  st.x[22] = rng.Next() & 0xffffffff;
  st.x[30] = text_base;
  st.sp = base + rt::kProgramEnd - 64;
  st.pc = text_base;
  st.n = rng.Chance(50);
  st.z = rng.Chance(50);
  st.c = rng.Chance(50);
  st.v = rng.Chance(50);
  for (int v = 0; v < 8; ++v) {
    st.vr[v].lo = rng.Next();
    st.vr[v].hi = rng.Next();
  }

  ccfg_.base = base;
  ccfg_.guard_bytes = opts.guard_bytes;
  ccfg_.rt_base = rt::kRuntimeEntryBase;
  ccfg_.rt_len = rt_len;
}

ExecEnv::Checkpoint ExecEnv::Capture() const {
  Checkpoint ck;
  ck.cpu = machine_.state();
  for (const auto& [addr, len] : ranges_) {
    for (uint64_t a = addr; a < addr + len; a += emu::kPageSize) {
      uint8_t perms = 0;
      auto data = space_.ExportPage(a, &perms);
      if (data != nullptr) ck.pages.push_back({a, perms, std::move(data)});
    }
  }
  return ck;
}

uint64_t ExecEnv::Restore(const Checkpoint& ck) {
  uint64_t dirty = 0;
  for (const auto& page : ck.pages) {
    uint8_t perms = 0;
    const auto* cur = space_.PagePayload(page.addr, &perms);
    if (cur == page.data.get() && perms == page.perms) continue;
    (void)space_.InstallPage(page.addr, page.data, page.perms);
    ++dirty;
  }
  machine_.state() = ck.cpu;
  return dirty;
}

ExecResult ExecuteWords(std::span<const uint32_t> words,
                        const ExecOptions& opts) {
  namespace rt = lfi::runtime;
  ExecEnv env(words, opts);
  SlotInvariantChecker checker(env.checker_config());
  emu::Machine& machine = env.machine();
  if (opts.attach_checker) machine.set_exec_hook(&checker);

  ExecResult res;
  res.stop = machine.Run(opts.max_insts);
  machine.set_exec_hook(nullptr);
  res.fault = machine.fault();
  res.retired = machine.timing().Retired();
  res.cycles = machine.timing().Cycles();
  res.final_state = machine.state();
  res.violation = checker.violation();

  const uint64_t base = env.base();
  if (res.violation.empty() && res.stop == emu::StopReason::kFault) {
    if (res.fault.kind == emu::CpuFault::Kind::kIllegal) {
      res.violation = "pc=" + Hex(res.fault.pc) +
                      ": system instruction executed inside verified text";
    } else if (res.fault.kind == emu::CpuFault::Kind::kMemory &&
               !(res.fault.mem.addr >= base - opts.guard_bytes &&
                 res.fault.mem.addr <
                     base + rt::kSlotSize + opts.guard_bytes)) {
      // Belt and braces: the access trace should have caught this first.
      res.violation = "pc=" + Hex(res.fault.pc) +
                      ": faulting access outside the window at " +
                      Hex(res.fault.mem.addr);
    }
  }
  return res;
}

}  // namespace lfi::fuzz
