// Sandboxed execution harness + slot-invariant checker.
//
// ExecuteWords places a verified instruction stream into a realistic slot
// (call table at the base, text at kProgramStart, data, stack, unmapped
// guard regions) and runs it under a Machine with the SlotInvariantChecker
// hook attached. The checker is the soundness oracle: it asserts, per
// retired instruction, the Section 3/4 invariants the verifier is supposed
// to guarantee. Any violation is a sandbox escape the verifier let through.
//
// What counts as an escape vs. a contained trap:
//   - any *attempted* load/store outside [base-guard, base+4GiB+guard):
//     escape (on real hardware nothing promises a fault there; the
//     emulator additionally maps RW "tripwire" pages just outside the
//     window so near escapes retire and are caught red-handed);
//   - an indirect branch whose landing pc is outside the slot and outside
//     the runtime-entry region: escape (could be neighbor code);
//   - reserved-register invariant broken after a retire (x21 moved, x22
//     grew past 32 bits, x18/x23/x24 left the slot, sp left its slack
//     window, x30 invalid outside the one-instruction load window): escape;
//   - a system instruction executing inside verified text: escape (the
//     verifier's one job is to make these unreachable);
//   - fetch faults, in-window memory faults, decode faults, brk: contained
//     (the guard regions and W^X mapping trap these on real hardware too;
//     direct branches can only reach +-128MiB, which the kCodeEnd layout
//     rule keeps clear of neighbor text).
#ifndef LFI_FUZZ_EXEC_H_
#define LFI_FUZZ_EXEC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "emu/machine.h"

namespace lfi::fuzz {

// Per-instruction invariant checker (the ExecHook soundness oracle).
class SlotInvariantChecker : public emu::ExecHook {
 public:
  struct Config {
    uint64_t base = 0;          // slot base (4GiB aligned)
    uint64_t guard_bytes = 48 * 1024;
    uint64_t rt_base = 0;       // runtime-entry region
    uint64_t rt_len = 0;
    // Slack around the slot for sp: the verifier admits one small
    // (<1KiB) adjustment or a +-256B writeback between proving accesses,
    // so sp may transiently sit that far outside the window.
    uint64_t sp_slack = 4096;
  };

  explicit SlotInvariantChecker(const Config& cfg) : cfg_(cfg) {}

  bool OnInst(const arch::Inst& inst, uint64_t pc, const emu::CpuState& after,
              std::span<const emu::AccessRecord> accesses,
              bool faulted) override;

  // Empty when no violation has been observed.
  const std::string& violation() const { return violation_; }
  uint64_t checked() const { return checked_; }

 private:
  bool Fail(uint64_t pc, const arch::Inst& inst, std::string what);

  bool InWindow(uint64_t addr, uint64_t len) const {
    return addr >= cfg_.base - cfg_.guard_bytes &&
           addr + len <= cfg_.base + (uint64_t{1} << 32) + cfg_.guard_bytes;
  }
  bool InSlot(uint64_t addr) const {
    return addr >= cfg_.base && addr < cfg_.base + (uint64_t{1} << 32);
  }
  bool InRuntime(uint64_t addr) const {
    return addr >= cfg_.rt_base && addr < cfg_.rt_base + cfg_.rt_len;
  }

  Config cfg_;
  std::string violation_;
  uint64_t checked_ = 0;
};

// How ExecuteWords sets up and bounds the run.
struct ExecOptions {
  uint64_t seed = 1;            // scratch-register entropy (hostile values)
  uint64_t max_insts = 2000;
  uint64_t guard_bytes = 48 * 1024;
  uint64_t table_bytes = 4096;
  emu::Dispatch dispatch = emu::Dispatch::kBlock;
  // When false, ExecuteWords runs without the SlotInvariantChecker hook
  // (ExecResult::violation stays empty except for the fault-based belt-and-
  // braces checks). The chained backend falls back to the reference loop
  // whenever a hook is attached, so the chained-vs-reference differential
  // mode needs hook-free runs to actually exercise the optimized loop.
  bool attach_checker = true;
};

struct ExecResult {
  emu::StopReason stop = emu::StopReason::kStepLimit;
  emu::CpuFault fault;          // valid when the run ended in a fault
  std::string violation;        // non-empty => sandbox escape detected
  uint64_t retired = 0;
  uint64_t cycles = 0;
  emu::CpuState final_state;
};

// Executes `words` (which should already be verifier-accepted; the harness
// does not verify) inside a fresh slot under the invariant checker.
ExecResult ExecuteWords(std::span<const uint32_t> words,
                        const ExecOptions& opts);

// The slot environment ExecuteWords builds, kept alive so callers can run
// in phases with page-level checkpoints in between (the snapshot oracle).
// Construction maps the slot (call table, text, data, stack, tripwires)
// and seeds the registers from opts.seed exactly as ExecuteWords does; the
// caller attaches whatever ExecHook it wants and calls Run.
//
// Capture/Restore exercise the same primitives the runtime snapshot layer
// uses — ExportPage / PagePayload / InstallPage — so divergence after a
// restore convicts the copy-on-write payload-sharing machinery itself.
// (Sandboxed code cannot map or unmap pages here — there is no runtime —
// so the page *set* is fixed at construction and only contents change.)
class ExecEnv {
 public:
  ExecEnv(std::span<const uint32_t> words, const ExecOptions& opts);

  emu::Machine& machine() { return machine_; }
  emu::AddressSpace& space() { return space_; }
  uint64_t base() const { return base_; }
  const SlotInvariantChecker::Config& checker_config() const { return ccfg_; }

  // One captured page; `data` is shared with the live space until the
  // space's next write to that page copies (COW).
  struct CheckpointPage {
    uint64_t addr = 0;
    uint8_t perms = 0;
    std::shared_ptr<emu::AddressSpace::PageData> data;
  };
  struct Checkpoint {
    emu::CpuState cpu;
    std::vector<CheckpointPage> pages;
  };

  Checkpoint Capture() const;
  // Rolls cpu + memory back to `ck`; returns how many pages had actually
  // diverged (payload pointer or perms) and were re-installed.
  uint64_t Restore(const Checkpoint& ck);

 private:
  uint64_t base_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> ranges_;  // mapped [addr, len)
  SlotInvariantChecker::Config ccfg_;
  emu::AddressSpace space_;
  emu::Machine machine_;
};

}  // namespace lfi::fuzz

#endif  // LFI_FUZZ_EXEC_H_
