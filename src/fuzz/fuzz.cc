#include "fuzz/fuzz.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "arch/decode.h"
#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "asmtext/printer.h"
#include "fuzz/gen.h"
#include "rewriter/rewriter.h"
#include "runtime/layout.h"

namespace lfi::fuzz {
namespace {

std::span<const uint8_t> AsBytes(const std::vector<uint32_t>& words) {
  return {reinterpret_cast<const uint8_t*>(words.data()), words.size() * 4};
}

std::string HexWord(uint32_t w) {
  char buf[16];
  snprintf(buf, sizeof buf, "%08x", w);
  return buf;
}

std::string Disasm(uint32_t w) {
  auto d = arch::Decode(w);
  if (!d.ok()) return "<undecodable>";
  std::string s = asmtext::PrintStmt(asmtext::AsmStmt::OfInst(*d));
  if (arch::IsDirectBranch(*d)) {
    // The printer renders a label for branches; decoded instructions have
    // none, so spell out the raw pc-relative offset.
    s += "  ; pc" + std::string(d->imm < 0 ? "-" : "+") +
         std::to_string(d->imm < 0 ? -d->imm : d->imm);
  }
  return s;
}

void AppendWords(const std::vector<uint32_t>& words, const char* tag,
                 std::string* out) {
  *out += std::string(tag) + ":";
  for (uint32_t w : words) *out += " " + HexWord(w);
  *out += "\n";
}

std::string VerdictText(const verifier::VerifyResult& v) {
  if (v.ok) {
    return "accepted (" + std::to_string(v.insts_checked) + " insts)";
  }
  return std::string("rejected: ") + verifier::FailKindName(v.kind) +
         " at +0x" + HexWord(uint32_t(v.fail_offset)) + ": " + v.reason;
}

void RecordCrash(const FuzzOptions& opts, FuzzReport* report,
                 CrashArtifact a) {
  if (!opts.artifact_dir.empty()) {
    a.path = WriteArtifact(a, opts.artifact_dir);
  }
  report->crashes.push_back(std::move(a));
}

// Soundness/differential stream generation shared policy: a mix of raw
// random words, template streams, and near-miss mutants.
std::vector<uint32_t> GenStream(Rng& rng) {
  const uint64_t pct = rng.Below(100);
  if (pct < 20) return GenRandomWords(rng, 4 + rng.Below(60));
  std::vector<uint32_t> words = GenTemplateStream(rng, 2 + rng.Below(24));
  if (pct >= 65) MutateStream(rng, &words);
  return words;
}

// Differential comparison: first discrepancy between two runs, or "".
// `an`/`bn` label the two runs in the message ("block"/"step",
// "chained"/"block").
std::string DescribeDiff(const ExecResult& a, const ExecResult& b,
                         const std::string& an = "block",
                         const std::string& bn = "step") {
  auto hx = [](uint64_t v) {
    char buf[32];
    snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  if (a.stop != b.stop) {
    return "stop reason differs: " + an + "=" + std::to_string(int(a.stop)) +
           " " + bn + "=" + std::to_string(int(b.stop));
  }
  if (a.retired != b.retired) {
    return "retired differs: " + an + "=" + std::to_string(a.retired) + " " +
           bn + "=" + std::to_string(b.retired);
  }
  if (a.cycles != b.cycles) {
    return "cycles differ: " + an + "=" + std::to_string(a.cycles) + " " + bn +
           "=" + std::to_string(b.cycles);
  }
  const emu::CpuState& s = a.final_state;
  const emu::CpuState& t = b.final_state;
  for (int r = 0; r < 31; ++r) {
    if (s.x[r] != t.x[r]) {
      return "x" + std::to_string(r) + " differs: " + an + "=" + hx(s.x[r]) +
             " " + bn + "=" + hx(t.x[r]);
    }
  }
  if (s.sp != t.sp) {
    return "sp differs: " + an + "=" + hx(s.sp) + " " + bn + "=" + hx(t.sp);
  }
  if (s.pc != t.pc) {
    return "pc differs: " + an + "=" + hx(s.pc) + " " + bn + "=" + hx(t.pc);
  }
  if (s.n != t.n || s.z != t.z || s.c != t.c || s.v != t.v) {
    return "flags differ";
  }
  for (size_t v = 0; v < s.vr.size(); ++v) {
    if (!(s.vr[v] == t.vr[v])) return "v" + std::to_string(v) + " differs";
  }
  return "";
}

// Runs one completeness pipeline; returns a failure description or "".
std::string RunPipeline(const std::string& src, Rng& rng,
                        const FuzzOptions& opts, std::string* verdict) {
  auto f = asmtext::Parse(src);
  if (!f.ok()) return "parse failed: " + f.error();
  rewriter::RewriteOptions ro;
  constexpr rewriter::OptLevel levels[] = {rewriter::OptLevel::kO0,
                                           rewriter::OptLevel::kO1,
                                           rewriter::OptLevel::kO2};
  ro.level = levels[rng.Below(3)];
  ro.sandbox_loads = rng.Chance(80);
  ro.save_restore_x30 = rng.Chance(80);
  ro.sp_elision = rng.Chance(80);
  auto rw = rewriter::Rewrite(*f, ro);
  if (!rw.ok()) return "rewrite failed: " + rw.error();
  asmtext::LayoutSpec spec;
  spec.text_offset = runtime::kProgramStart;
  auto img = asmtext::Assemble(*rw, spec);
  if (!img.ok()) return "assemble of rewritten text failed: " + img.error();
  verifier::VerifyOptions vo = opts.verify;
  vo.check_loads = ro.sandbox_loads;
  auto v = verifier::Verify(img->text, vo);
  *verdict = VerdictText(v);
  if (!v.ok) {
    const uint64_t off = v.fail_offset;
    std::string word;
    if (off + 4 <= img->text.size()) {
      uint32_t w = 0;
      memcpy(&w, img->text.data() + off, 4);
      word = " (word " + HexWord(w) + ": " + Disasm(w) + ")";
    }
    return "rewriter emitted unverifiable text: " +
           std::string(verifier::FailKindName(v.kind)) + ": " + v.reason +
           word;
  }
  return "";
}

// Drops source lines one at a time while the pipeline still fails.
std::string MinimizeAsm(
    const std::string& src,
    const std::function<bool(const std::string&)>& still_fails) {
  std::vector<std::string> lines;
  {
    size_t pos = 0;
    while (pos < src.size()) {
      size_t nl = src.find('\n', pos);
      if (nl == std::string::npos) nl = src.size();
      lines.push_back(src.substr(pos, nl - pos));
      pos = nl + 1;
    }
  }
  auto join = [](const std::vector<std::string>& ls) {
    std::string out;
    for (const auto& l : ls) {
      out += l;
      out += '\n';
    }
    return out;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t k = 0; k < lines.size(); ++k) {
      std::vector<std::string> cand = lines;
      cand.erase(cand.begin() + k);
      if (still_fails(join(cand))) {
        lines = std::move(cand);
        changed = true;
        break;
      }
    }
  }
  return join(lines);
}

}  // namespace

std::string FormatArtifact(const CrashArtifact& a) {
  std::string out;
  out += "mode: " + a.mode + "\n";
  out += "iter: " + std::to_string(a.iter) + "\n";
  char seedbuf[32];
  snprintf(seedbuf, sizeof seedbuf, "0x%llx",
           static_cast<unsigned long long>(a.seed));
  out += "seed: " + std::string(seedbuf) + "\n";
  out += "detail: " + a.detail + "\n";
  if (!a.verdict.empty()) out += "verdict: " + a.verdict + "\n";
  if (!a.words.empty()) {
    AppendWords(a.words, "words", &out);
    out += "disasm:\n";
    for (size_t k = 0; k < a.words.size(); ++k) {
      char off[16];
      snprintf(off, sizeof off, "+0x%02zx", k * 4);
      out += "  " + std::string(off) + "  " + HexWord(a.words[k]) + "  " +
             Disasm(a.words[k]) + "\n";
    }
  }
  if (!a.full_words.empty() && a.full_words != a.words) {
    AppendWords(a.full_words, "full-words", &out);
  }
  if (!a.asm_source.empty()) {
    out += "source: |\n";
    size_t pos = 0;
    while (pos < a.asm_source.size()) {
      size_t nl = a.asm_source.find('\n', pos);
      if (nl == std::string::npos) nl = a.asm_source.size();
      out += "  " + a.asm_source.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  return out;
}

std::string WriteArtifact(const CrashArtifact& a, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path =
      dir + "/" + a.mode + "-" + std::to_string(a.iter) + ".txt";
  std::ofstream f(path);
  if (!f) return "";
  f << FormatArtifact(a);
  return f ? path : "";
}

std::vector<uint32_t> MinimizeWords(
    const std::vector<uint32_t>& words,
    const std::function<bool(const std::vector<uint32_t>&)>& still_fails) {
  if (words.empty()) return words;
  auto prefix = [&words](size_t n) {
    return std::vector<uint32_t>(words.begin(), words.begin() + n);
  };
  // Shortest failing prefix (bisection; failure is usually monotone in
  // prefix length, and when it is not we just end up less minimal).
  size_t lo = 1, hi = words.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (still_fails(prefix(mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<uint32_t> cur = prefix(lo);
  if (!still_fails(cur)) cur = words;  // non-monotone; keep the original
  // Nop-out pass: substitution keeps every branch offset stable.
  for (size_t k = 0; k < cur.size(); ++k) {
    if (cur[k] == kNopWord) continue;
    std::vector<uint32_t> cand = cur;
    cand[k] = kNopWord;
    if (still_fails(cand)) cur = std::move(cand);
  }
  return cur;
}

std::string RejectHistogram(const FuzzReport& r) {
  std::string out;
  for (size_t k = 0; k < r.reject_kinds.size(); ++k) {
    if (r.reject_kinds[k] == 0) continue;
    if (!out.empty()) out += " ";
    out += std::string(verifier::FailKindName(verifier::FailKind(k))) + "=" +
           std::to_string(r.reject_kinds[k]);
  }
  return out;
}

FuzzReport RunSoundness(const FuzzOptions& opts) {
  FuzzReport report;
  report.mode = "soundness";
  const auto corpus = SeedCorpusWords();
  for (uint64_t it = 0; it < opts.iters; ++it) {
    const uint64_t iseed = DeriveSeed(opts.seed, it);
    Rng rng(iseed);
    std::vector<uint32_t> words =
        it < corpus.size() ? corpus[it] : GenStream(rng);
    ++report.iters;
    const auto v = verifier::Verify(AsBytes(words), opts.verify);
    if (!v.ok) {
      ++report.rejected;
      ++report.reject_kinds[size_t(v.kind)];
      continue;
    }
    ++report.accepted;
    ExecOptions eo;
    eo.seed = iseed;
    eo.max_insts = opts.max_exec_insts;
    eo.guard_bytes = opts.verify.guard_bytes;
    eo.table_bytes = opts.verify.table_bytes;
    const ExecResult res = ExecuteWords(words, eo);
    ++report.executed;
    if (res.violation.empty()) continue;

    auto fails = [&](const std::vector<uint32_t>& w) {
      if (!verifier::Verify(AsBytes(w), opts.verify).ok) return false;
      return !ExecuteWords(w, eo).violation.empty();
    };
    CrashArtifact a;
    a.mode = "soundness";
    a.iter = it;
    a.seed = iseed;
    a.detail = "SANDBOX ESCAPE: " + res.violation;
    a.verdict = VerdictText(v);
    a.full_words = words;
    a.words = MinimizeWords(words, fails);
    RecordCrash(opts, &report, std::move(a));
    if (report.crashes.size() >= opts.max_crashes) break;
  }
  return report;
}

FuzzReport RunDifferential(const FuzzOptions& opts) {
  FuzzReport report;
  report.mode = "differential";
  const auto corpus = SeedCorpusWords();
  for (uint64_t it = 0; it < opts.iters; ++it) {
    const uint64_t iseed = DeriveSeed(opts.seed, it);
    Rng rng(iseed);
    std::vector<uint32_t> words =
        it < corpus.size() ? corpus[it] : GenStream(rng);
    ++report.iters;
    const auto v = verifier::Verify(AsBytes(words), opts.verify);
    if (!v.ok) {
      ++report.rejected;
      ++report.reject_kinds[size_t(v.kind)];
      continue;
    }
    ++report.accepted;
    ExecOptions eo;
    eo.seed = iseed;
    eo.max_insts = opts.max_exec_insts;
    eo.guard_bytes = opts.verify.guard_bytes;
    eo.table_bytes = opts.verify.table_bytes;
    eo.dispatch = emu::Dispatch::kBlock;
    const ExecResult rb = ExecuteWords(words, eo);
    eo.dispatch = emu::Dispatch::kStep;
    const ExecResult rs = ExecuteWords(words, eo);
    ++report.executed;
    const std::string diff = DescribeDiff(rb, rs);
    const std::string viol =
        !rb.violation.empty() ? rb.violation : rs.violation;
    if (diff.empty() && viol.empty()) continue;

    CrashArtifact a;
    a.mode = "differential";
    a.iter = it;
    a.seed = iseed;
    a.detail = !diff.empty() ? "block/step divergence: " + diff
                             : "SANDBOX ESCAPE (during differential): " + viol;
    a.verdict = VerdictText(v);
    a.full_words = words;
    if (!diff.empty()) {
      auto fails = [&](const std::vector<uint32_t>& w) {
        if (!verifier::Verify(AsBytes(w), opts.verify).ok) return false;
        ExecOptions e2 = eo;
        e2.dispatch = emu::Dispatch::kBlock;
        const ExecResult b2 = ExecuteWords(w, e2);
        e2.dispatch = emu::Dispatch::kStep;
        const ExecResult s2 = ExecuteWords(w, e2);
        return !DescribeDiff(b2, s2).empty();
      };
      a.words = MinimizeWords(words, fails);
    } else {
      a.words = words;
    }
    RecordCrash(opts, &report, std::move(a));
    if (report.crashes.size() >= opts.max_crashes) break;
  }
  return report;
}

FuzzReport RunChainedDifferential(const FuzzOptions& opts) {
  FuzzReport report;
  report.mode = "chained";
  const auto corpus = SeedCorpusWords();
  for (uint64_t it = 0; it < opts.iters; ++it) {
    const uint64_t iseed = DeriveSeed(opts.seed, it);
    Rng rng(iseed);
    std::vector<uint32_t> words =
        it < corpus.size() ? corpus[it] : GenStream(rng);
    ++report.iters;
    const auto v = verifier::Verify(AsBytes(words), opts.verify);
    if (!v.ok) {
      ++report.rejected;
      ++report.reject_kinds[size_t(v.kind)];
      continue;
    }
    ++report.accepted;
    // Both runs are hook-free: with an ExecHook attached the chained
    // backend delegates to the reference loop and the comparison proves
    // nothing. The soundness oracle still covers these streams in the
    // soundness/differential modes.
    ExecOptions eo;
    eo.seed = iseed;
    eo.max_insts = opts.max_exec_insts;
    eo.guard_bytes = opts.verify.guard_bytes;
    eo.table_bytes = opts.verify.table_bytes;
    eo.attach_checker = false;
    eo.dispatch = emu::Dispatch::kChained;
    const ExecResult rc = ExecuteWords(words, eo);
    eo.dispatch = emu::Dispatch::kBlock;
    const ExecResult rb = ExecuteWords(words, eo);
    ++report.executed;
    const std::string diff = DescribeDiff(rc, rb, "chained", "block");
    if (diff.empty()) continue;

    CrashArtifact a;
    a.mode = "chained";
    a.iter = it;
    a.seed = iseed;
    a.detail = "chained/block divergence: " + diff;
    a.verdict = VerdictText(v);
    a.full_words = words;
    auto fails = [&](const std::vector<uint32_t>& w) {
      if (!verifier::Verify(AsBytes(w), opts.verify).ok) return false;
      ExecOptions e2 = eo;
      e2.dispatch = emu::Dispatch::kChained;
      const ExecResult c2 = ExecuteWords(w, e2);
      e2.dispatch = emu::Dispatch::kBlock;
      const ExecResult b2 = ExecuteWords(w, e2);
      return !DescribeDiff(c2, b2, "chained", "block").empty();
    };
    a.words = MinimizeWords(words, fails);
    RecordCrash(opts, &report, std::move(a));
    if (report.crashes.size() >= opts.max_crashes) break;
  }
  return report;
}

namespace {

// Hashes the externally visible execution trace: pc stream, attempted
// accesses, fault flags. Cycle counts are deliberately excluded — timing
// state (caches, predictor warmth) is history-dependent and not part of
// what a snapshot promises to reproduce.
class TraceHashRecorder : public emu::ExecHook {
 public:
  bool OnInst(const arch::Inst&, uint64_t pc, const emu::CpuState&,
              std::span<const emu::AccessRecord> accesses,
              bool faulted) override {
    Mix(pc);
    for (const auto& a : accesses) {
      Mix(a.addr);
      Mix(a.size);
      Mix(uint64_t(a.kind));
    }
    Mix(faulted ? 1 : 0);
    ++insts_;
    return true;
  }
  uint64_t hash() const { return h_; }
  uint64_t insts() const { return insts_; }

 private:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (i * 8)) & 0xff;
      h_ *= 1099511628211ull;
    }
  }
  uint64_t h_ = 14695981039346656037ull;
  uint64_t insts_ = 0;
};

}  // namespace

FuzzReport RunSnapshotOracle(const FuzzOptions& opts) {
  FuzzReport report;
  report.mode = "snapshot";
  const auto corpus = SeedCorpusWords();
  for (uint64_t it = 0; it < opts.iters; ++it) {
    const uint64_t iseed = DeriveSeed(opts.seed, it);
    Rng rng(iseed);
    std::vector<uint32_t> words =
        it < corpus.size() ? corpus[it] : GenStream(rng);
    ++report.iters;
    const auto v = verifier::Verify(AsBytes(words), opts.verify);
    if (!v.ok) {
      ++report.rejected;
      ++report.reject_kinds[size_t(v.kind)];
      continue;
    }
    ++report.accepted;

    ExecOptions eo;
    eo.seed = iseed;
    eo.max_insts = opts.max_exec_insts;
    eo.guard_bytes = opts.verify.guard_bytes;
    eo.table_bytes = opts.verify.table_bytes;

    ExecEnv env(words, eo);
    emu::Machine& m = env.machine();

    // Phase 1: run the first half of the budget, then freeze mid-flight
    // (whatever state the program reached — a mid-loop checkpoint is the
    // interesting case; a program that already stopped just makes the
    // comparison trivially exact).
    const uint64_t n = opts.max_exec_insts / 2;
    (void)m.Run(n);
    const ExecEnv::Checkpoint ck = env.Capture();

    // Phase 2 (reference): run the second half, hashing the trace.
    const uint64_t budget = opts.max_exec_insts - n;
    TraceHashRecorder ref;
    m.set_exec_hook(&ref);
    const emu::StopReason stop_ref = m.Run(budget);
    m.set_exec_hook(nullptr);
    const emu::CpuState end_ref = m.state();

    // Roll back and check the restore converged exactly: registers equal
    // the checkpoint's and every page payload is pointer-identical again.
    (void)env.Restore(ck);
    std::string divergence;
    if (!(m.state() == ck.cpu)) {
      divergence = "registers differ immediately after restore";
    }
    const ExecEnv::Checkpoint ck2 = env.Capture();
    if (divergence.empty() && ck2.pages.size() != ck.pages.size()) {
      divergence = "mapped page set changed across snapshot/restore";
    }
    if (divergence.empty()) {
      for (size_t k = 0; k < ck.pages.size(); ++k) {
        if (ck2.pages[k].data.get() != ck.pages[k].data.get() ||
            ck2.pages[k].perms != ck.pages[k].perms) {
          char buf[64];
          snprintf(buf, sizeof buf,
                   "page 0x%llx not restored to the captured payload",
                   static_cast<unsigned long long>(ck.pages[k].addr));
          divergence = buf;
          break;
        }
      }
    }

    // Phase 3 (replay): re-run the same budget from the restored state.
    TraceHashRecorder rep;
    m.set_exec_hook(&rep);
    const emu::StopReason stop_rep = m.Run(budget);
    m.set_exec_hook(nullptr);
    const emu::CpuState end_rep = m.state();
    ++report.executed;

    if (divergence.empty()) {
      auto u64 = [](uint64_t x) { return std::to_string(x); };
      if (stop_rep != stop_ref) {
        divergence = "stop reason differs: reference " +
                     u64(uint64_t(stop_ref)) + " vs replay " +
                     u64(uint64_t(stop_rep));
      } else if (ref.insts() != rep.insts()) {
        divergence = "retired count differs: reference " + u64(ref.insts()) +
                     " vs replay " + u64(rep.insts());
      } else if (ref.hash() != rep.hash()) {
        divergence = "pc/access trace hash differs across restore";
      } else if (!(end_ref == end_rep)) {
        divergence = "final registers differ across restore";
      }
    }
    if (divergence.empty()) continue;

    CrashArtifact a;
    a.mode = "snapshot";
    a.iter = it;
    a.seed = iseed;
    a.detail = "snapshot/restore divergence: " + divergence;
    a.verdict = VerdictText(v);
    a.words = words;
    a.full_words = words;
    RecordCrash(opts, &report, std::move(a));
    if (report.crashes.size() >= opts.max_crashes) break;
  }
  return report;
}

FuzzReport RunCompleteness(const FuzzOptions& opts) {
  FuzzReport report;
  report.mode = "completeness";
  const auto corpus = SeedCorpusAsm();
  for (uint64_t it = 0; it < opts.iters; ++it) {
    const uint64_t iseed = DeriveSeed(opts.seed, it);
    Rng rng(iseed);
    const std::string src =
        it < corpus.size() ? corpus[it] : GenAsmProgram(rng);
    ++report.iters;
    std::string verdict;
    Rng pipe_rng(iseed);  // pipeline options derive from the same seed
    const std::string err = RunPipeline(src, pipe_rng, opts, &verdict);
    if (err.empty()) {
      ++report.accepted;
      continue;
    }
    auto fails = [&](const std::string& s) {
      if (s.empty()) return false;
      Rng r2(iseed);
      std::string v2;
      return !RunPipeline(s, r2, opts, &v2).empty();
    };
    CrashArtifact a;
    a.mode = "completeness";
    a.iter = it;
    a.seed = iseed;
    a.detail = err;
    a.verdict = verdict;
    a.asm_source = MinimizeAsm(src, fails);
    RecordCrash(opts, &report, std::move(a));
    if (report.crashes.size() >= opts.max_crashes) break;
  }
  return report;
}

}  // namespace lfi::fuzz
