// The fuzzing modes (Section "lfi-fuzz" of docs/FUZZING.md):
//
//   soundness    generated/mutated word streams -> Verify; every ACCEPTED
//                stream executes under the SlotInvariantChecker. A
//                violation is a sandbox escape: the most severe bug class
//                this repo can have.
//   completeness grammar-generated assembly -> parse -> rewrite ->
//                assemble -> Verify; any stage failing on rewriter output
//                is a bug (the rewriter must only emit verifiable text).
//   differential every accepted stream runs under both Dispatch::kBlock
//                and Dispatch::kStep; final state, stop reason, retired
//                count and cycle count must match exactly.
//   chained      every accepted stream runs under Dispatch::kChained (the
//                optimized backend: block chaining + direct threading +
//                memoized translation) and Dispatch::kBlock, both without
//                the invariant-checker hook — a hooked machine delegates
//                chained execution to the reference loop, which would make
//                this comparison vacuous. Same exactness bar as
//                differential.
//   snapshot     every accepted stream runs N instructions, checkpoints
//                (page payloads + registers, the snapshot layer's COW
//                export), runs M more hashing the pc/access trace, rolls
//                back, and re-runs M. Stop reason, retired count, trace
//                hash, and final registers must match exactly; cycle
//                counts are exempt (timing state is history-dependent and
//                deliberately not part of a snapshot).
//
// All modes are deterministic in (seed, iters): crash artifacts record the
// per-iteration derived seed, so any finding replays in isolation.
#ifndef LFI_FUZZ_FUZZ_H_
#define LFI_FUZZ_FUZZ_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/exec.h"
#include "verifier/verifier.h"

namespace lfi::fuzz {

struct FuzzOptions {
  uint64_t seed = 1;
  uint64_t iters = 1000;
  uint64_t max_exec_insts = 2000;
  verifier::VerifyOptions verify;
  // When non-empty, each crash is also dumped as a text artifact here.
  std::string artifact_dir;
  // Stop a run after this many crashes (artifact flood guard).
  uint64_t max_crashes = 25;
};

struct CrashArtifact {
  std::string mode;  // soundness | completeness | differential | chained | ...
  uint64_t iter = 0;
  uint64_t seed = 0;                 // derived seed; replays the iteration
  std::string detail;                // what went wrong
  std::string verdict;               // verifier verdict at crash time
  std::vector<uint32_t> words;       // minimized stream (word modes)
  std::vector<uint32_t> full_words;  // original, pre-minimization
  std::string asm_source;            // completeness mode
  std::string path;                  // artifact file, when written
};

// Renders the artifact as text: header, hex words, disassembly, source.
// The `words:` line is machine-parseable for replay (lfi_fuzz --replay).
std::string FormatArtifact(const CrashArtifact& a);

// Writes the artifact under `dir` (created if needed); returns the path,
// or an empty string if the write failed.
std::string WriteArtifact(const CrashArtifact& a, const std::string& dir);

struct FuzzReport {
  std::string mode;
  uint64_t iters = 0;
  uint64_t accepted = 0;
  uint64_t executed = 0;
  uint64_t rejected = 0;
  // Verifier rejections bucketed by stable FailKind.
  std::array<uint64_t, size_t(verifier::FailKind::kCount)> reject_kinds{};
  std::vector<CrashArtifact> crashes;
  bool ok() const { return crashes.empty(); }
};

FuzzReport RunSoundness(const FuzzOptions& opts);
FuzzReport RunCompleteness(const FuzzOptions& opts);
FuzzReport RunDifferential(const FuzzOptions& opts);
FuzzReport RunChainedDifferential(const FuzzOptions& opts);
FuzzReport RunSnapshotOracle(const FuzzOptions& opts);

// Trivial minimizer: shortest failing prefix by bisection, then a nop-out
// pass (words are replaced, not removed, so branch offsets stay put).
// `still_fails` must be true for `words` itself.
std::vector<uint32_t> MinimizeWords(
    const std::vector<uint32_t>& words,
    const std::function<bool(const std::vector<uint32_t>&)>& still_fails);

// One-line histogram of reject kinds ("undecodable=12 sp-protocol=3 ...").
std::string RejectHistogram(const FuzzReport& r);

}  // namespace lfi::fuzz

#endif  // LFI_FUZZ_FUZZ_H_
