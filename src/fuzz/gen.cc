#include "fuzz/gen.h"

#include <array>
#include <cstddef>

#include "arch/encode.h"
#include "arch/inst.h"
#include "arch/reg.h"

namespace lfi::fuzz {
namespace {

using arch::AddrMode;
using arch::Cond;
using arch::Extend;
using arch::FpSize;
using arch::Inst;
using arch::Mn;
using arch::Reg;
using arch::Shift;
using arch::VReg;
using arch::Width;

// Registers a compiler running under -ffixed-x18/x21/x22/x23/x24 (and with
// x30 managed only through the call protocols) may allocate freely.
constexpr uint8_t kFreeRegIds[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,
                                   10, 11, 12, 13, 14, 15, 16, 17, 19, 20,
                                   25, 26, 27, 28, 29};

Reg FreeReg(Rng& rng) { return Reg::X(rng.Pick(kFreeRegIds)); }

// Address-reserved registers a guard may target.
Reg AddrReg(Rng& rng) {
  constexpr uint8_t ids[] = {18, 23, 24};
  return Reg::X(rng.Pick(ids));
}

// Encodes `i`; encode failures (an out-of-range operand slipped through a
// template) degrade to NOP so the stream stays decodable.
uint32_t Enc(const Inst& i) {
  auto r = arch::Encode(i);
  return r.ok() ? *r : kNopWord;
}

Inst Guard(Reg dst, Reg src) {
  Inst i;
  i.mn = Mn::kAddExt;
  i.width = Width::kX;
  i.rd = dst;
  i.rn = arch::kRegBase;
  i.rm = src;
  i.ext = Extend::kUxtw;
  i.shift_amount = 0;
  return i;
}

Inst SpGuard() {
  Inst i;
  i.mn = Mn::kAddReg;
  i.width = Width::kX;
  i.rd = Reg::Sp();
  i.rn = arch::kRegBase;
  i.rm = arch::kRegScratch;
  i.shift = Shift::kLsl;
  i.shift_amount = 0;
  return i;
}

Inst Access(bool load, Reg rt, Reg base, int64_t imm, unsigned msize) {
  Inst i;
  i.mn = load ? Mn::kLdr : Mn::kStr;
  i.width = msize == 8 ? Width::kX : Width::kW;
  i.msize = static_cast<uint8_t>(msize);
  i.rt = rt;
  i.mem.base = base;
  i.mem.mode = AddrMode::kImm;
  i.mem.imm = imm;
  return i;
}

Inst MovzImm(Reg rd, uint16_t imm, uint8_t hw, Width w) {
  Inst i;
  i.mn = Mn::kMovz;
  i.width = w;
  i.rd = rd;
  i.imm = imm;
  i.shift_amount = static_cast<uint8_t>(hw * 16);
  return i;
}

unsigned RandSize(Rng& rng) {
  constexpr unsigned sizes[] = {1, 2, 4, 8};
  return rng.Pick(sizes);
}

// A guarded-access offset: usually small and scaled, occasionally at the
// 48KiB guard boundary (both sides, so rejection is exercised too), and
// occasionally a negative unscaled offset.
int64_t AccessImm(Rng& rng, unsigned msize) {
  switch (rng.Below(8)) {
    case 0: return 48 * 1024 - 8;       // last in-guard doubleword
    case 1: return 48 * 1024;           // first out-of-guard offset
    case 2: return -int64_t(rng.Below(257));
    default: return int64_t(rng.Below(512)) * msize;
  }
}

// --- Stream templates. Each appends whole legal (or boundary) idioms. ---

void TmplAluReg(Rng& rng, std::vector<uint32_t>* out) {
  constexpr Mn ops[] = {Mn::kAddReg, Mn::kSubReg, Mn::kAddsReg, Mn::kSubsReg,
                        Mn::kAndReg, Mn::kOrrReg, Mn::kEorReg,  Mn::kBicReg};
  Inst i;
  i.mn = rng.Pick(ops);
  i.width = rng.Chance(50) ? Width::kX : Width::kW;
  i.rd = FreeReg(rng);
  i.rn = FreeReg(rng);
  i.rm = FreeReg(rng);
  if (rng.Chance(30)) {
    constexpr Shift shifts[] = {Shift::kLsl, Shift::kLsr, Shift::kAsr};
    i.shift = rng.Pick(shifts);
    i.shift_amount =
        static_cast<uint8_t>(rng.Below(i.width == Width::kX ? 64 : 32));
  }
  out->push_back(Enc(i));
}

void TmplAluImm(Rng& rng, std::vector<uint32_t>* out) {
  Inst i;
  i.mn = rng.Chance(50) ? Mn::kAddImm : Mn::kSubImm;
  i.width = rng.Chance(50) ? Width::kX : Width::kW;
  i.rd = FreeReg(rng);
  i.rn = FreeReg(rng);
  i.imm = int64_t(rng.Below(4096));
  out->push_back(Enc(i));
}

void TmplMovWide(Rng& rng, std::vector<uint32_t>* out) {
  constexpr Mn ops[] = {Mn::kMovz, Mn::kMovn, Mn::kMovk};
  Inst i;
  i.mn = rng.Pick(ops);
  i.width = rng.Chance(70) ? Width::kX : Width::kW;
  i.rd = FreeReg(rng);
  i.imm = int64_t(rng.Below(0x10000));
  i.shift_amount = static_cast<uint8_t>(
      16 * rng.Below(i.width == Width::kX ? 4 : 2));
  out->push_back(Enc(i));
}

void TmplGuardedAccess(Rng& rng, std::vector<uint32_t>* out) {
  const Reg addr = AddrReg(rng);
  out->push_back(Enc(Guard(addr, FreeReg(rng))));
  const size_t n = 1 + rng.Below(3);
  for (size_t k = 0; k < n; ++k) {
    const unsigned msize = RandSize(rng);
    Inst a = Access(rng.Chance(50), FreeReg(rng), addr, AccessImm(rng, msize),
                    msize);
    if (arch::IsLoad(a) && msize < 8 && rng.Chance(30)) {
      a.msigned = true;  // ldrsb/ldrsh/ldrsw
      a.width = rng.Chance(50) ? Width::kX : Width::kW;
      if (msize == 4) a.width = Width::kX;
    }
    out->push_back(Enc(a));
  }
}

void TmplZeroInstAccess(Rng& rng, std::vector<uint32_t>* out) {
  // The zero-instruction form: base x21, 32-bit index zero-extended.
  const unsigned msize = RandSize(rng);
  Inst i = Access(rng.Chance(50), FreeReg(rng), arch::kRegBase, 0, msize);
  i.mem.mode = AddrMode::kRegUxtw;
  i.mem.index = rng.Chance(60) ? arch::kRegScratch : FreeReg(rng);
  i.mem.shift = 0;
  out->push_back(Enc(i));
}

void TmplScratchWrite(Rng& rng, std::vector<uint32_t>* out) {
  // x22 may only ever hold a 32-bit value: all writes use the W view.
  Inst i;
  if (rng.Chance(50)) {
    i.mn = Mn::kAddImm;
    i.width = Width::kW;
    i.rd = arch::kRegScratch;
    i.rn = FreeReg(rng);
    i.imm = int64_t(rng.Below(4096));
  } else {
    i.mn = Mn::kOrrReg;
    i.width = Width::kW;
    i.rd = arch::kRegScratch;
    i.rn = Reg::Zr();
    i.rm = FreeReg(rng);
  }
  out->push_back(Enc(i));
  if (rng.Chance(50)) {
    Inst a = Access(rng.Chance(50), FreeReg(rng), arch::kRegBase, 0, 8);
    a.mem.mode = AddrMode::kRegUxtw;
    a.mem.index = arch::kRegScratch;
    a.mem.shift = 0;
    out->push_back(Enc(a));
  }
}

void TmplSpSequence(Rng& rng, std::vector<uint32_t>* out) {
  switch (rng.Below(4)) {
    case 0: {  // full sp retarget: mov w22, wN ; add sp, x21, x22
      Inst mv;
      mv.mn = Mn::kOrrReg;
      mv.width = Width::kW;
      mv.rd = arch::kRegScratch;
      mv.rn = Reg::Zr();
      mv.rm = FreeReg(rng);
      out->push_back(Enc(mv));
      out->push_back(Enc(SpGuard()));
      out->push_back(Enc(Access(false, FreeReg(rng), Reg::Sp(),
                                int64_t(rng.Below(64)) * 8, 8)));
      break;
    }
    case 1: {  // pre/post-index push/pop pair
      Inst push = Access(false, FreeReg(rng), Reg::Sp(), -16, 8);
      push.mem.mode = AddrMode::kPreIndex;
      out->push_back(Enc(push));
      Inst pop = Access(true, FreeReg(rng), Reg::Sp(), 16, 8);
      pop.mem.mode = AddrMode::kPostIndex;
      out->push_back(Enc(pop));
      break;
    }
    case 2: {  // small adjust + in-block access (the Section 4.2 elision)
      Inst adj;
      adj.mn = rng.Chance(50) ? Mn::kSubImm : Mn::kAddImm;
      adj.width = Width::kX;
      adj.rd = Reg::Sp();
      adj.rn = Reg::Sp();
      adj.imm = int64_t(rng.Below(64)) * 16;
      out->push_back(Enc(adj));
      out->push_back(Enc(Access(rng.Chance(50), FreeReg(rng), Reg::Sp(),
                                int64_t(rng.Below(32)) * 8, 8)));
      break;
    }
    default: {  // plain sp-relative access
      out->push_back(Enc(Access(rng.Chance(50), FreeReg(rng), Reg::Sp(),
                                int64_t(rng.Below(256)) * 8, 8)));
      break;
    }
  }
}

void TmplLinkSequence(Rng& rng, std::vector<uint32_t>* out) {
  // Runtime-call protocol: load x30 from the call table, then either
  // branch through it or re-guard it and return.
  Inst ld = Access(true, arch::kRegLink, arch::kRegBase,
                   int64_t(rng.Below(512)) * 8, 8);
  out->push_back(Enc(ld));
  if (rng.Chance(60)) {
    Inst blr;
    blr.mn = Mn::kBlr;
    blr.rn = arch::kRegLink;
    out->push_back(Enc(blr));
  } else {
    out->push_back(Enc(Guard(arch::kRegLink, arch::kRegLink)));
    Inst ret;
    ret.mn = Mn::kRet;
    ret.rn = arch::kRegLink;
    out->push_back(Enc(ret));
  }
}

void TmplBranch(Rng& rng, std::vector<uint32_t>* out) {
  const int64_t off = (int64_t(rng.Below(16)) - 8) * 4;
  Inst i;
  switch (rng.Below(5)) {
    case 0:
      i.mn = Mn::kB;
      i.imm = off;
      break;
    case 1:
      i.mn = Mn::kBCond;
      i.imm = off;
      i.cond = static_cast<Cond>(rng.Below(14));
      break;
    case 2:
      i.mn = rng.Chance(50) ? Mn::kCbz : Mn::kCbnz;
      i.rt = FreeReg(rng);
      i.width = rng.Chance(50) ? Width::kX : Width::kW;
      i.imm = off;
      break;
    case 3:
      i.mn = rng.Chance(50) ? Mn::kTbz : Mn::kTbnz;
      i.rt = FreeReg(rng);
      i.bit = static_cast<uint8_t>(rng.Below(64));
      i.imm = off;
      break;
    default:
      i.mn = Mn::kBl;
      i.imm = off;
      break;
  }
  out->push_back(Enc(i));
}

void TmplMulDiv(Rng& rng, std::vector<uint32_t>* out) {
  constexpr Mn ops[] = {Mn::kMadd, Mn::kMsub, Mn::kSdiv, Mn::kUdiv};
  Inst i;
  i.mn = rng.Pick(ops);
  i.width = rng.Chance(50) ? Width::kX : Width::kW;
  i.rd = FreeReg(rng);
  i.rn = FreeReg(rng);
  i.rm = FreeReg(rng);
  i.ra = (i.mn == Mn::kMadd || i.mn == Mn::kMsub) ? FreeReg(rng) : Reg::None();
  out->push_back(Enc(i));
}

void TmplCondSelect(Rng& rng, std::vector<uint32_t>* out) {
  constexpr Mn ops[] = {Mn::kCsel, Mn::kCsinc, Mn::kCsinv, Mn::kCsneg};
  Inst i;
  i.mn = rng.Pick(ops);
  i.width = rng.Chance(50) ? Width::kX : Width::kW;
  i.rd = FreeReg(rng);
  i.rn = FreeReg(rng);
  i.rm = FreeReg(rng);
  i.cond = static_cast<Cond>(rng.Below(14));
  out->push_back(Enc(i));
}

void TmplPairAccess(Rng& rng, std::vector<uint32_t>* out) {
  const Reg addr = AddrReg(rng);
  out->push_back(Enc(Guard(addr, FreeReg(rng))));
  Inst i;
  i.mn = rng.Chance(50) ? Mn::kLdp : Mn::kStp;
  i.width = Width::kX;
  i.msize = 8;
  i.rt = FreeReg(rng);
  i.rt2 = FreeReg(rng);
  i.mem.base = addr;
  i.mem.mode = AddrMode::kImm;
  i.mem.imm = (int64_t(rng.Below(64)) - 32) * 8;
  out->push_back(Enc(i));
}

void TmplAtomic(Rng& rng, std::vector<uint32_t>* out) {
  const Reg addr = AddrReg(rng);
  out->push_back(Enc(Guard(addr, FreeReg(rng))));
  Inst i;
  i.width = Width::kX;
  i.msize = 8;
  i.rt = FreeReg(rng);
  i.mem.base = addr;
  i.mem.mode = AddrMode::kImm;
  i.mem.imm = 0;
  switch (rng.Below(4)) {
    case 0: i.mn = Mn::kLdxr; break;
    case 1:
      i.mn = Mn::kStxr;
      i.rs = FreeReg(rng);
      break;
    case 2: i.mn = Mn::kLdar; break;
    default: i.mn = Mn::kStlr; break;
  }
  out->push_back(Enc(i));
}

void TmplQAccess(Rng& rng, std::vector<uint32_t>* out) {
  // 16-byte FP accesses are the only single-access form whose scaled
  // immediate can reach past the 48KiB guard region, so this template is
  // what exercises the guard-range-overflow rule on both sides.
  const Reg addr = AddrReg(rng);
  out->push_back(Enc(Guard(addr, FreeReg(rng))));
  Inst i;
  i.mn = rng.Chance(50) ? Mn::kLdrF : Mn::kStrF;
  i.fsize = FpSize::kQ;
  i.msize = 16;
  i.vt = VReg(static_cast<uint8_t>(rng.Below(32)));
  i.mem.base = addr;
  i.mem.mode = AddrMode::kImm;
  switch (rng.Below(4)) {
    case 0: i.mem.imm = 48 * 1024 - 16; break;  // last in-guard slot
    case 1: i.mem.imm = 48 * 1024; break;       // first out-of-guard slot
    case 2: i.mem.imm = 65520; break;           // max encodable
    default: i.mem.imm = int64_t(rng.Below(4096)) * 16; break;
  }
  out->push_back(Enc(i));
}

void TmplFp(Rng& rng, std::vector<uint32_t>* out) {
  constexpr Mn ops[] = {Mn::kFadd, Mn::kFsub, Mn::kFmul, Mn::kFdiv};
  Inst i;
  i.mn = rng.Pick(ops);
  i.fsize = rng.Chance(50) ? FpSize::kD : FpSize::kS;
  i.vd = VReg(static_cast<uint8_t>(rng.Below(32)));
  i.vn = VReg(static_cast<uint8_t>(rng.Below(32)));
  i.vm = VReg(static_cast<uint8_t>(rng.Below(32)));
  out->push_back(Enc(i));
}

void TmplMisc(Rng& rng, std::vector<uint32_t>* out) {
  if (rng.Chance(70)) {
    out->push_back(kNopWord);
  } else {
    Inst i;
    i.mn = Mn::kAdr;
    i.rd = FreeReg(rng);
    i.imm = int64_t(rng.Below(1024)) - 512;
    out->push_back(Enc(i));
  }
}

using TmplFn = void (*)(Rng&, std::vector<uint32_t>*);
constexpr TmplFn kTemplates[] = {
    TmplAluReg,       TmplAluImm,     TmplMovWide,    TmplGuardedAccess,
    TmplZeroInstAccess, TmplScratchWrite, TmplSpSequence, TmplLinkSequence,
    TmplBranch,       TmplMulDiv,     TmplCondSelect, TmplPairAccess,
    TmplAtomic,       TmplQAccess,    TmplFp,         TmplMisc,
};

}  // namespace

std::vector<uint32_t> GenRandomWords(Rng& rng, size_t count) {
  std::vector<uint32_t> out;
  out.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    out.push_back(static_cast<uint32_t>(rng.Next()));
  }
  return out;
}

std::vector<uint32_t> GenTemplateStream(Rng& rng, size_t count) {
  std::vector<uint32_t> out;
  out.reserve(count * 2);
  for (size_t k = 0; k < count; ++k) {
    rng.Pick(kTemplates)(rng, &out);
  }
  return out;
}

void MutateStream(Rng& rng, std::vector<uint32_t>* words) {
  if (words->empty()) return;
  // Reserved-register encodings (plus 31 = zr/sp) to splice into 5-bit
  // register fields: these are exactly the values that turn a legal idiom
  // into a near-miss the verifier must catch.
  constexpr uint32_t kHotRegs[] = {18, 21, 22, 23, 24, 30, 31};
  const size_t n_mut = 1 + rng.Below(3);
  for (size_t m = 0; m < n_mut; ++m) {
    uint32_t& w = (*words)[rng.Below(words->size())];
    switch (rng.Below(5)) {
      case 0:  // single-bit flip
        w ^= uint32_t{1} << rng.Below(32);
        break;
      case 1: {  // rewrite a register field (Rd/Rn/Rm/Rt positions)
        constexpr uint32_t offs[] = {0, 5, 10, 16};
        const uint32_t off = rng.Pick(offs);
        w = (w & ~(uint32_t{0x1f} << off)) | (rng.Pick(kHotRegs) << off);
        break;
      }
      case 2:  // immediate twiddle (imm12/imm9 field region)
        w ^= uint32_t{1} << (10 + rng.Below(12));
        break;
      case 3: {  // duplicate another word over this one
        w = (*words)[rng.Below(words->size())];
        break;
      }
      default: {  // swap two words (breaks guard/access adjacency)
        const size_t a = rng.Below(words->size());
        const size_t b = rng.Below(words->size());
        std::swap((*words)[a], (*words)[b]);
        break;
      }
    }
  }
}

std::vector<std::vector<uint32_t>> SeedCorpusWords() {
  std::vector<std::vector<uint32_t>> corpus;
  auto add = [&corpus](std::vector<uint32_t> v) {
    corpus.push_back(std::move(v));
  };
  Inst ret;
  ret.mn = Mn::kRet;
  ret.rn = arch::kRegLink;
  Inst brk;
  brk.mn = Mn::kBrk;

  // 1. Minimal legal program.
  add({kNopWord, Enc(ret)});

  // 2. Guard + access at both guard boundaries (accept and reject edge).
  // Only 16-byte accesses encode offsets past 48KiB, so the boundary pair
  // uses Q-register loads.
  {
    auto qldr = [](int64_t imm) {
      Inst i;
      i.mn = Mn::kLdrF;
      i.fsize = FpSize::kQ;
      i.msize = 16;
      i.vt = VReg(0);
      i.mem.base = Reg::X(18);
      i.mem.mode = AddrMode::kImm;
      i.mem.imm = imm;
      return i;
    };
    add({Enc(Guard(Reg::X(18), Reg::X(0))), Enc(qldr(48 * 1024 - 16)),
         Enc(ret)});
    add({Enc(Guard(Reg::X(18), Reg::X(0))), Enc(qldr(48 * 1024)), Enc(ret)});
    add({Enc(Guard(Reg::X(18), Reg::X(0))),
         Enc(Access(false, Reg::X(1), Reg::X(18), 32760, 8)), Enc(ret)});
  }

  // 3. Zero-instruction access.
  {
    Inst a = Access(true, Reg::X(3), arch::kRegBase, 0, 8);
    a.mem.mode = AddrMode::kRegUxtw;
    a.mem.index = Reg::X(4);
    a.mem.shift = 0;
    add({Enc(a), Enc(ret)});
  }

  // 4. Full sp protocol.
  {
    Inst mv;
    mv.mn = Mn::kOrrReg;
    mv.width = Width::kW;
    mv.rd = arch::kRegScratch;
    mv.rn = Reg::Zr();
    mv.rm = Reg::X(5);
    Inst push = Access(false, Reg::X(6), Reg::Sp(), -16, 8);
    push.mem.mode = AddrMode::kPreIndex;
    Inst pop = Access(true, Reg::X(6), Reg::Sp(), 16, 8);
    pop.mem.mode = AddrMode::kPostIndex;
    add({Enc(mv), Enc(SpGuard()), Enc(push), Enc(pop), Enc(ret)});
  }

  // 5. Runtime-call protocol, both continuations.
  {
    Inst ld = Access(true, arch::kRegLink, arch::kRegBase, 16, 8);
    Inst blr;
    blr.mn = Mn::kBlr;
    blr.rn = arch::kRegLink;
    add({Enc(ld), Enc(blr)});
    add({Enc(ld), Enc(Guard(arch::kRegLink, arch::kRegLink)), Enc(ret)});
  }

  // 6. Escape probes: each must be rejected; if the verifier ever starts
  // accepting one, the invariant checker flags the executed escape.
  {
    // Unguarded store through a register the program fully controls.
    add({Enc(MovzImm(Reg::X(25), 0xFFFF, 1, Width::kX)),
         Enc(Access(false, Reg::X(0), Reg::X(25), 0, 8)), Enc(ret)});
    // Unguarded indirect branch.
    Inst br;
    br.mn = Mn::kBr;
    br.rn = Reg::X(9);
    add({Enc(br)});
    // Write to the base register.
    Inst wb;
    wb.mn = Mn::kAddImm;
    wb.width = Width::kX;
    wb.rd = arch::kRegBase;
    wb.rn = arch::kRegBase;
    wb.imm = 1;
    add({Enc(wb), Enc(ret)});
    // 64-bit write to the scratch register.
    Inst ws;
    ws.mn = Mn::kAddImm;
    ws.width = Width::kX;
    ws.rd = arch::kRegScratch;
    ws.rn = Reg::X(0);
    ws.imm = 0;
    add({Enc(ws), Enc(ret)});
    // System instruction and a raw undecodable word.
    add({0xd4000001u /* svc #0 */, Enc(ret)});
    add({0xffffffffu, Enc(ret)});
  }

  // 7. Debug trap.
  add({Enc(brk)});
  return corpus;
}

// --- Assembly grammar (completeness mode). ---

namespace {

const char* const kXRegs[] = {"x0",  "x1",  "x2",  "x3",  "x4",  "x5",  "x6",
                              "x7",  "x8",  "x9",  "x10", "x11", "x12", "x13",
                              "x14", "x15", "x16", "x17", "x19", "x20", "x25",
                              "x26", "x27", "x28", "x29"};
const char* const kWRegs[] = {"w0",  "w1",  "w2",  "w3",  "w4",  "w5",  "w6",
                              "w7",  "w8",  "w9",  "w10", "w11", "w12", "w13",
                              "w14", "w15", "w16", "w17", "w19", "w20", "w25",
                              "w26", "w27", "w28", "w29"};
const char* const kConds[] = {"eq", "ne", "hs", "lo", "mi", "pl", "vs",
                              "vc", "hi", "ls", "ge", "lt", "gt", "le"};

std::string Xr(Rng& rng) { return rng.Pick(kXRegs); }
std::string Wr(Rng& rng) { return rng.Pick(kWRegs); }

std::string Num(uint64_t v) { return std::to_string(v); }

// One random statement of the completeness grammar. `labels` is the pool
// of branch targets (all are eventually defined).
std::string GenStmt(Rng& rng, const std::vector<std::string>& labels) {
  const std::string& lab = labels[rng.Below(labels.size())];
  switch (rng.Below(22)) {
    case 0: return "mov " + Xr(rng) + ", #" + Num(rng.Below(65536));
    case 1:
      return "movk " + Xr(rng) + ", #" + Num(rng.Below(65536)) + ", lsl #16";
    case 2: return "add " + Xr(rng) + ", " + Xr(rng) + ", " + Xr(rng);
    case 3:
      return "sub " + Wr(rng) + ", " + Wr(rng) + ", #" + Num(rng.Below(4096));
    case 4: return "and " + Xr(rng) + ", " + Xr(rng) + ", " + Xr(rng);
    case 5: return "mul " + Xr(rng) + ", " + Xr(rng) + ", " + Xr(rng);
    case 6: return "udiv " + Wr(rng) + ", " + Wr(rng) + ", " + Wr(rng);
    case 7: return "cmp " + Xr(rng) + ", #" + Num(rng.Below(4096));
    case 8:
      return "csel " + Xr(rng) + ", " + Xr(rng) + ", " + Xr(rng) + ", " +
             rng.Pick(kConds);
    case 9: return "cset " + Wr(rng) + ", " + rng.Pick(kConds);
    case 10:
      return "ldr " + Xr(rng) + ", [" + Xr(rng) + ", #" +
             Num(rng.Below(256) * 8) + "]";
    case 11:
      return "str " + Wr(rng) + ", [" + Xr(rng) + ", #" +
             Num(rng.Below(256) * 4) + "]";
    case 12:
      return "ldrb " + Wr(rng) + ", [" + Xr(rng) + ", #" + Num(rng.Below(64)) +
             "]";
    case 13:
      return "ldr " + Xr(rng) + ", [" + Xr(rng) + ", " + Xr(rng) +
             ", lsl #3]";
    case 14: {
      const std::string a = Xr(rng), b = Xr(rng);
      return "ldp " + a + ", " + b + ", [" + Xr(rng) + ", #" +
             Num(rng.Below(16) * 16) + "]";
    }
    case 15: return "str " + Xr(rng) + ", [sp, #" + Num(rng.Below(32) * 8) + "]";
    case 16: return "stp x29, x30, [sp, #-16]!";
    case 17: return "ldp x29, x30, [sp], #16";
    case 18: return "b." + std::string(rng.Pick(kConds)) + " " + lab;
    case 19:
      return (rng.Chance(50) ? "cbz " : "cbnz ") + Xr(rng) + ", " + lab;
    case 20:
      return "tbz " + Xr(rng) + ", #" + Num(rng.Below(64)) + ", " + lab;
    default: return "nop";
  }
}

}  // namespace

std::string GenAsmProgram(Rng& rng) {
  const size_t nlabels = 2 + rng.Below(4);
  std::vector<std::string> labels;
  for (size_t k = 0; k < nlabels; ++k) {
    labels.push_back(".Lfz" + std::to_string(k));
  }
  std::string src = ".text\n.globl _start\n_start:\n";
  std::vector<bool> emitted(nlabels, false);
  const size_t nstmts = 8 + rng.Below(32);
  for (size_t k = 0; k < nstmts; ++k) {
    if (rng.Chance(15)) {
      const size_t li = rng.Below(nlabels);
      if (!emitted[li]) {
        emitted[li] = true;
        src += labels[li] + ":\n";
        continue;
      }
    }
    switch (rng.Below(12)) {
      case 0:  // adrp/:lo12:/load against a data symbol
        src += "adrp x7, fzdat\n";
        src += "add x7, x7, :lo12:fzdat\n";
        src += "ldr " + Xr(rng) + ", [x7]\n";
        break;
      case 1:
        src += "rtcall #" + Num(rng.Below(16)) + "\n";
        break;
      case 2:
        src += "bl " + labels[rng.Below(nlabels)] + "\n";
        break;
      case 3:
        if (rng.Chance(30)) {
          src += (rng.Chance(50) ? "br " : "blr ") + Xr(rng) + "\n";
        } else {
          src += "ret\n";
        }
        break;
      default:
        src += GenStmt(rng, labels) + "\n";
        break;
    }
  }
  // Define any label that was branched to but never placed.
  for (size_t k = 0; k < nlabels; ++k) {
    if (!emitted[k]) src += labels[k] + ":\n";
  }
  src += "ret\n";
  src += ".data\nfzdat:\n.quad 305419896\n.zero 64\n";
  return src;
}

std::vector<std::string> SeedCorpusAsm() {
  return {
      // Every memory shape the rewriter must guard.
      ".text\n_start:\n"
      "ldr x0, [x1, #16]\n"
      "str w2, [x3]\n"
      "ldrb w4, [x5, #1]\n"
      "ldr x6, [x7, x8, lsl #3]\n"
      "ldp x9, x10, [x11, #32]\n"
      "stp x12, x13, [sp, #-16]!\n"
      "ldp x12, x13, [sp], #16\n"
      "ret\n",
      // Control flow: every branch family plus rtcall.
      ".text\n_start:\n"
      "mov x0, #3\n"
      ".Lloop:\n"
      "sub x0, x0, #1\n"
      "cbnz x0, .Lloop\n"
      "tbz x1, #5, .Lout\n"
      "b.ne .Lloop\n"
      ".Lout:\n"
      "bl .Lloop\n"
      "blr x2\n"
      "rtcall #0\n"
      "ret\n",
      // Address generation + data section.
      ".text\n_start:\n"
      "adrp x0, counter\n"
      "add x0, x0, :lo12:counter\n"
      "ldr x1, [x0]\n"
      "add x1, x1, #1\n"
      "str x1, [x0]\n"
      "ret\n"
      ".data\ncounter:\n.quad 0\n",
      // Stack discipline.
      ".text\n_start:\n"
      "sub sp, sp, #32\n"
      "str x0, [sp, #8]\n"
      "ldr x1, [sp, #8]\n"
      "add sp, sp, #32\n"
      "ret\n",
  };
}

}  // namespace lfi::fuzz
