// Input generators for the three fuzzing modes (see docs/FUZZING.md).
//
// Soundness mode feeds the verifier raw instruction words, so its
// generators produce byte streams: pure random words (cheap decoder
// coverage), template streams built from the legal LFI idioms (guards,
// guarded accesses, sp/x30 protocols), and near-miss mutants of those
// streams. The mutants are the interesting population: most get rejected
// (exercising every FailKind), and any mutant the verifier *accepts* must
// still execute without leaving the sandbox.
//
// Completeness mode feeds the full pipeline assembly text, so its
// generator speaks the same grammar a compiler would: only non-reserved
// registers, labels for every branch, data symbols for adrp/:lo12:.
#ifndef LFI_FUZZ_GEN_H_
#define LFI_FUZZ_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/rng.h"

namespace lfi::fuzz {

// The ARM64 NOP word, used by the minimizer and as encode-failure filler.
inline constexpr uint32_t kNopWord = 0xd503201f;

// `count` uniformly random words.
std::vector<uint32_t> GenRandomWords(Rng& rng, size_t count);

// A stream assembled from ~`count` legal LFI instruction templates
// (each template may expand to several words, e.g. guard + access).
std::vector<uint32_t> GenTemplateStream(Rng& rng, size_t count);

// Applies 1-3 near-miss mutations in place: single-bit flips, 5-bit
// register-field rewrites aimed at the reserved registers, immediate
// twiddles, and word swaps/duplications.
void MutateStream(Rng& rng, std::vector<uint32_t>* words);

// Deterministic streams always fuzzed before the random phase: boundary
// cases on both sides of every verifier rule, plus known escape probes.
std::vector<std::vector<uint32_t>> SeedCorpusWords();

// A random assembly program for completeness fuzzing. Uses only syntax
// and registers the rewriter accepts, so a downstream parse/rewrite/
// assemble/verify failure is a pipeline bug, not a generator bug.
std::string GenAsmProgram(Rng& rng);

// Deterministic assembly programs covering each grammar production.
std::vector<std::string> SeedCorpusAsm();

}  // namespace lfi::fuzz

#endif  // LFI_FUZZ_GEN_H_
