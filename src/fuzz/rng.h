// Deterministic PRNG shared by every fuzzing surface in the repo.
//
// This is the exact LCG+xorshift generator the differential tests have
// always used; it lives here so fuzz corpora reproduce bit-for-bit across
// the lfi_fuzz tool, the smoke tests, and the legacy differential suite.
// Do not change the recurrence: seeds recorded in crash artifacts (and in
// CI logs) replay only as long as the sequence is stable.
#ifndef LFI_FUZZ_RNG_H_
#define LFI_FUZZ_RNG_H_

#include <cstddef>
#include <cstdint>

namespace lfi::fuzz {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ ^ (state_ >> 29);
  }

  // Uniform in [0, n); returns 0 for n == 0.
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform in [lo, hi] (inclusive).
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // True with probability `percent`/100.
  bool Chance(uint32_t percent) { return Below(100) < percent; }

  template <typename T, size_t N>
  const T& Pick(const T (&arr)[N]) {
    return arr[Below(N)];
  }

 private:
  uint64_t state_;
};

// Derives an independent per-iteration seed from a base seed. SplitMix64
// finalizer: adjacent iterations must not yield correlated streams, which
// a plain seed+iter would under the LCG above.
inline uint64_t DeriveSeed(uint64_t seed, uint64_t iter) {
  uint64_t z = seed ^ (iter * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace lfi::fuzz

#endif  // LFI_FUZZ_RNG_H_
