#include "rewriter/rewriter.h"

#include <cstdlib>
#include <string>
#include <unordered_map>

#include "arch/encode.h"

namespace lfi::rewriter {

namespace {

using arch::AddrMode;
using arch::Extend;
using arch::Inst;
using arch::Mn;
using arch::Reg;
using arch::Shift;
using arch::Width;
using asmtext::AsmFile;
using asmtext::AsmStmt;

// ---- Instruction builders for the guard sequences ----

// add xDst, x21, wSrc, uxtw - the basic guard (Section 3).
Inst MakeGuard(Reg dst, Reg src) {
  Inst g;
  g.mn = Mn::kAddExt;
  g.width = Width::kX;
  g.rd = dst;
  g.rn = arch::kRegBase;
  g.rm = src;
  g.ext = Extend::kUxtw;
  g.shift_amount = 0;
  return g;
}

// add/sub w22, wN, #imm (imm may be negative).
Inst MakeAddW22Imm(Reg rn, int64_t imm) {
  Inst a;
  a.mn = imm >= 0 ? Mn::kAddImm : Mn::kSubImm;
  a.width = Width::kW;
  a.rd = arch::kRegScratch;
  a.rn = rn;
  a.imm = imm >= 0 ? imm : -imm;
  return a;
}

// add w22, wN, wM, lsl #i
Inst MakeAddW22Shift(Reg rn, Reg rm, uint8_t shift) {
  Inst a;
  a.mn = Mn::kAddReg;
  a.width = Width::kW;
  a.rd = arch::kRegScratch;
  a.rn = rn;
  a.rm = rm;
  a.shift = Shift::kLsl;
  a.shift_amount = shift;
  return a;
}

// add w22, wN, wM, {uxtw|sxtw} #i
Inst MakeAddW22Ext(Reg rn, Reg rm, Extend ext, uint8_t shift) {
  Inst a;
  a.mn = Mn::kAddExt;
  a.width = Width::kW;
  a.rd = arch::kRegScratch;
  a.rn = rn;
  a.rm = rm;
  a.ext = ext;
  a.shift_amount = shift;
  return a;
}

// add xN, xN, #imm (64-bit base update for pre/post-index splitting).
Inst MakeAddBaseImm(Reg rn, int64_t imm) {
  Inst a;
  a.mn = imm >= 0 ? Mn::kAddImm : Mn::kSubImm;
  a.width = Width::kX;
  a.rd = rn;
  a.rn = rn;
  a.imm = imm >= 0 ? imm : -imm;
  return a;
}

// mov w22, wsp (== add w22, wsp, #0): stage the stack pointer's low 32
// bits into the 32-bit-invariant scratch register (Section 4.2).
Inst MakeMovW22Wsp() {
  Inst a;
  a.mn = Mn::kAddImm;
  a.width = Width::kW;
  a.rd = arch::kRegScratch;
  a.rn = Reg::Sp();
  a.imm = 0;
  return a;
}

// mov w22, wN.
Inst MakeMovW22(Reg rn) {
  Inst a;
  a.mn = Mn::kOrrReg;
  a.width = Width::kW;
  a.rd = arch::kRegScratch;
  a.rn = Reg::Zr();
  a.rm = rn;
  return a;
}

// add sp, x21, x22 - the one-cycle stack-pointer guard.
Inst MakeSpGuard() {
  Inst a;
  a.mn = Mn::kAddReg;
  a.width = Width::kX;
  a.rd = Reg::Sp();
  a.rn = arch::kRegBase;
  a.rm = arch::kRegScratch;
  return a;
}

// Registers the rewriter refuses to see in input programs.
bool IsForbiddenInput(Reg r) { return arch::IsReservedGpr(r); }

// True if the instruction accesses memory through a base that needs no
// guard: sp (always valid, Section 4.2).
bool BaseIsSafe(const Inst& i) { return i.mem.base.IsSp(); }

// True for access instructions that support the guarded register-offset
// addressing mode (basic loads/stores only - Section 4.1 notes that
// ldp/stp and atomics must use the basic technique).
bool SupportsGuardedMode(const Inst& i) {
  return i.mn == Mn::kLdr || i.mn == Mn::kStr || i.mn == Mn::kLdrF ||
         i.mn == Mn::kStrF;
}

// True if a w-immediate add can encode `imm` in one instruction.
bool FitsW22AddImm(int64_t imm) {
  return arch::FitsAddSubImm(imm >= 0 ? imm : -imm);
}

// True if an offset may remain on a guarded access: even from the very
// edge of the sandbox it cannot reach past a guard region. 16-byte scaled
// offsets can encode up to 65520, beyond the 48KiB guard, so this check
// is not redundant with encodability.
bool OffsetStaysInGuard(int64_t imm, unsigned footprint) {
  constexpr int64_t kGuard = 48 * 1024;
  return imm >= -kGuard && imm + static_cast<int64_t>(footprint) <= kGuard;
}

class RewriterImpl {
 public:
  RewriterImpl(const RewriteOptions& opts, RewriteStats* stats)
      : opts_(opts), stats_(stats) {}

  Result<AsmFile> Run(const AsmFile& in);

 private:
  struct HoistSlot {
    bool active = false;
    Reg base;
    Reg hreg;
  };

  void Emit(Inst i) {
    out_.stmts.push_back(AsmStmt::OfInst(i));
  }
  void EmitStmt(AsmStmt s) { out_.stmts.push_back(std::move(s)); }
  void EmitGuard(Reg dst, Reg src) {
    Emit(MakeGuard(dst, src));
    if (stats_) ++stats_->guards_inserted;
  }

  std::string FreshLabel() {
    return ".LFI" + std::to_string(label_counter_++);
  }

  Status CheckInputClean(const AsmFile& in) const;

  // Pass 1 workers.
  Status RewriteInst(const AsmFile& in, size_t idx);
  Status RewriteMemAccess(Inst i);
  Status RewriteSpWrite(const AsmFile& in, size_t idx, const Inst& i);
  Status RewriteX30Write(const Inst& i);
  Status ExpandRtcall(int64_t n);
  void ResetBlockState();

  // True if, scanning forward from `idx`+1 within the same basic block,
  // an sp-based memory access occurs before any other sp modification
  // (the "later access within the same basic block" elision, Section 4.2).
  bool SpAccessFollows(const AsmFile& in, size_t idx) const;

  // Redundant guard elimination (Section 4.3).
  bool HoistEligible(const Inst& i) const;
  int CountHoistable(const AsmFile& in, size_t idx, Reg base) const;
  HoistSlot* ActiveSlotFor(Reg base);
  HoistSlot* FreeSlot();
  void InvalidateSlots(const Inst& i);

  // Pass 2: tbz/tbnz range fix.
  void FixShortBranches();

  const RewriteOptions& opts_;
  RewriteStats* stats_;
  AsmFile out_;
  int label_counter_ = 0;
  bool in_text_ = true;
  HoistSlot slots_[2];
};

Status RewriterImpl::CheckInputClean(const AsmFile& in) const {
  for (const auto& s : in.stmts) {
    if (s.kind != AsmStmt::Kind::kInst) continue;
    const Inst& i = s.inst;
    for (Reg r : {i.rd, i.rn, i.rm, i.ra, i.rt, i.rt2, i.rs, i.mem.base,
                  i.mem.index}) {
      if (IsForbiddenInput(r)) {
        return Status::Fail(
            "input uses reserved register " + arch::RegName(r, Width::kX) +
            " at line " + std::to_string(s.line) +
            "; compile with -ffixed-x18/x21/x22/x23/x24");
      }
    }
    if (i.mn == Mn::kSvc || i.mn == Mn::kMrs || i.mn == Mn::kMsr) {
      return Status::Fail("input contains unsafe system instruction at line " +
                          std::to_string(s.line));
    }
  }
  return Status::Ok();
}

void RewriterImpl::ResetBlockState() {
  slots_[0].active = false;
  slots_[1].active = false;
}

bool RewriterImpl::SpAccessFollows(const AsmFile& in, size_t idx) const {
  for (size_t k = idx + 1; k < in.stmts.size(); ++k) {
    const AsmStmt& s = in.stmts[k];
    if (s.kind != AsmStmt::Kind::kInst) return false;  // label/rtcall/dir
    const Inst& i = s.inst;
    if (arch::IsBranch(i)) return false;
    if (arch::IsMemAccess(i) && i.mem.base.IsSp()) return true;
    if (arch::WritesGpr(i, Reg::Sp())) return false;
  }
  return false;
}

bool RewriterImpl::HoistEligible(const Inst& i) const {
  if (!arch::IsMemAccess(i) || BaseIsSafe(i)) return false;
  if (i.mem.mode != AddrMode::kImm) return false;
  if (!opts_.sandbox_loads && arch::IsLoad(i)) return false;
  // Hoisting keeps the offset on the access, so it must stay within the
  // guard region.
  const unsigned footprint =
      (i.mn == Mn::kLdp || i.mn == Mn::kStp) ? 2u * i.msize : i.msize;
  return OffsetStaysInGuard(i.mem.imm, footprint);
}

int RewriterImpl::CountHoistable(const AsmFile& in, size_t idx,
                                 Reg base) const {
  int count = 0;
  for (size_t k = idx; k < in.stmts.size(); ++k) {
    const AsmStmt& s = in.stmts[k];
    if (s.kind != AsmStmt::Kind::kInst) break;
    const Inst& i = s.inst;
    if (HoistEligible(i) && i.mem.base == base) {
      // Only accesses that would otherwise cost an extra instruction
      // count toward the benefit: basic [xN] is already free at O1.
      if (!(SupportsGuardedMode(i) && i.mem.imm == 0)) ++count;
    }
    if (arch::IsBranch(i)) break;
    if (arch::WritesGpr(i, base)) break;
  }
  return count;
}

RewriterImpl::HoistSlot* RewriterImpl::ActiveSlotFor(Reg base) {
  for (auto& s : slots_) {
    if (s.active && s.base == base) return &s;
  }
  return nullptr;
}

RewriterImpl::HoistSlot* RewriterImpl::FreeSlot() {
  for (auto& s : slots_) {
    if (!s.active) return &s;
  }
  return nullptr;
}

void RewriterImpl::InvalidateSlots(const Inst& i) {
  for (auto& s : slots_) {
    if (s.active && arch::WritesGpr(i, s.base)) s.active = false;
  }
}

Status RewriterImpl::RewriteMemAccess(Inst i) {
  const bool is_load_only = arch::IsLoad(i) && !arch::IsStore(i);
  // "No loads" mode: leave pure loads unguarded - except that a load
  // writing x30 still needs the link-register guard, handled by caller.
  if (!opts_.sandbox_loads && is_load_only) {
    Emit(i);
    return Status::Ok();
  }

  const Reg base = i.mem.base;
  const AddrMode mode = i.mem.mode;
  const int64_t imm = i.mem.imm;

  // Offsets that could reach past the guard region (16-byte scaled
  // accesses encode up to 65520 > 48KiB) must be folded into the guarded
  // index; they may never remain on the access itself.
  const unsigned footprint =
      (i.mn == Mn::kLdp || i.mn == Mn::kStp) ? 2u * i.msize : i.msize;
  if (mode == AddrMode::kImm && !OffsetStaysInGuard(imm, footprint)) {
    // Split the offset across two 32-bit adds (imm fits in 24 bits for
    // every encodable load/store offset).
    Emit(MakeAddW22Imm(base, imm & ~int64_t{0xfff}));
    Inst lo = MakeAddW22Imm(arch::kRegScratch, imm & 0xfff);
    Emit(lo);
    if (SupportsGuardedMode(i)) {
      i.mem.base = arch::kRegBase;
      i.mem.mode = AddrMode::kRegUxtw;
      i.mem.index = arch::kRegScratch;
      i.mem.shift = 0;
      i.mem.imm = 0;
      Emit(i);
    } else {
      EmitGuard(arch::kRegAddr, arch::kRegScratch);
      i.mem.base = arch::kRegAddr;
      i.mem.imm = 0;
      Emit(i);
    }
    if (stats_) ++stats_->guards_inserted;
    return Status::Ok();
  }

  if (opts_.level == OptLevel::kO0 || !SupportsGuardedMode(i)) {
    // Basic technique: materialize a guarded base in x18.
    switch (mode) {
      case AddrMode::kImm:
        EmitGuard(arch::kRegAddr, base);
        i.mem.base = arch::kRegAddr;
        Emit(i);
        return Status::Ok();
      case AddrMode::kPreIndex:
        Emit(MakeAddBaseImm(base, imm));
        EmitGuard(arch::kRegAddr, base);
        i.mem.base = arch::kRegAddr;
        i.mem.mode = AddrMode::kImm;
        i.mem.imm = 0;
        Emit(i);
        return Status::Ok();
      case AddrMode::kPostIndex:
        EmitGuard(arch::kRegAddr, base);
        i.mem.base = arch::kRegAddr;
        i.mem.mode = AddrMode::kImm;
        i.mem.imm = 0;
        Emit(i);
        Emit(MakeAddBaseImm(base, imm));
        return Status::Ok();
      case AddrMode::kRegLsl:
        Emit(MakeAddW22Shift(base, i.mem.index, i.mem.shift));
        EmitGuard(arch::kRegAddr, arch::kRegScratch);
        i.mem.base = arch::kRegAddr;
        i.mem.mode = AddrMode::kImm;
        i.mem.imm = 0;
        i.mem.index = Reg::None();
        i.mem.shift = 0;
        Emit(i);
        return Status::Ok();
      case AddrMode::kRegUxtw:
      case AddrMode::kRegSxtw:
        Emit(MakeAddW22Ext(base, i.mem.index,
                           mode == AddrMode::kRegUxtw ? Extend::kUxtw
                                                      : Extend::kSxtw,
                           i.mem.shift));
        EmitGuard(arch::kRegAddr, arch::kRegScratch);
        i.mem.base = arch::kRegAddr;
        i.mem.mode = AddrMode::kImm;
        i.mem.imm = 0;
        i.mem.index = Reg::None();
        i.mem.shift = 0;
        Emit(i);
        return Status::Ok();
    }
    return Status::Fail("unreachable addressing mode");
  }

  // O1/O2 zero-instruction guard: Table 3 transformations.
  auto use_guarded = [&](Reg index) {
    i.mem.base = arch::kRegBase;
    i.mem.mode = AddrMode::kRegUxtw;
    i.mem.index = index;
    i.mem.shift = 0;
    i.mem.imm = 0;
  };
  switch (mode) {
    case AddrMode::kImm:
      if (imm == 0) {
        use_guarded(base);
        Emit(i);
        return Status::Ok();
      }
      if (FitsW22AddImm(imm)) {
        Emit(MakeAddW22Imm(base, imm));
        use_guarded(arch::kRegScratch);
        Emit(i);
        if (stats_) ++stats_->guards_inserted;
        return Status::Ok();
      }
      // Offset not encodable in a single w-add: fall back to the basic
      // guard, which keeps the immediate on the access itself.
      EmitGuard(arch::kRegAddr, base);
      i.mem.base = arch::kRegAddr;
      Emit(i);
      return Status::Ok();
    case AddrMode::kPreIndex:
      Emit(MakeAddBaseImm(base, imm));
      i.mem.mode = AddrMode::kImm;
      i.mem.imm = 0;
      use_guarded(base);
      Emit(i);
      if (stats_) ++stats_->guards_inserted;
      return Status::Ok();
    case AddrMode::kPostIndex:
      i.mem.mode = AddrMode::kImm;
      i.mem.imm = 0;
      use_guarded(base);
      Emit(i);
      Emit(MakeAddBaseImm(base, imm));
      if (stats_) ++stats_->guards_inserted;
      return Status::Ok();
    case AddrMode::kRegLsl:
      Emit(MakeAddW22Shift(base, i.mem.index, i.mem.shift));
      use_guarded(arch::kRegScratch);
      Emit(i);
      if (stats_) ++stats_->guards_inserted;
      return Status::Ok();
    case AddrMode::kRegUxtw:
    case AddrMode::kRegSxtw:
      Emit(MakeAddW22Ext(base, i.mem.index,
                         mode == AddrMode::kRegUxtw ? Extend::kUxtw
                                                    : Extend::kSxtw,
                         i.mem.shift));
      use_guarded(arch::kRegScratch);
      Emit(i);
      if (stats_) ++stats_->guards_inserted;
      return Status::Ok();
  }
  return Status::Fail("unreachable addressing mode");
}

Status RewriterImpl::RewriteSpWrite(const AsmFile& in, size_t idx,
                                    const Inst& i) {
  // Small add/sub sp, sp, #imm followed by an sp access in the same basic
  // block: the access will trap in the guard region if sp drifted out, so
  // the guard can be elided (Section 4.2).
  if ((i.mn == Mn::kAddImm || i.mn == Mn::kSubImm) && i.rn.IsSp()) {
    if (opts_.sp_elision && i.imm < 1024 && SpAccessFollows(in, idx)) {
      Emit(i);
      if (stats_) ++stats_->guards_elided_sp;
      return Status::Ok();
    }
    Emit(i);
    Emit(MakeMovW22Wsp());
    Emit(MakeSpGuard());
    if (stats_) ++stats_->guards_inserted;
    return Status::Ok();
  }
  // mov sp, xN (add sp, xN, #0) and any other arithmetic producing sp:
  // stage through w22 and re-guard.
  if (i.mn == Mn::kAddImm && i.imm == 0 && i.rn.IsGpr()) {
    Emit(MakeMovW22(i.rn));
    Emit(MakeSpGuard());
    if (stats_) ++stats_->guards_inserted;
    return Status::Ok();
  }
  // General case: perform the arithmetic into w22 where possible.
  if (i.mn == Mn::kAddImm || i.mn == Mn::kSubImm) {
    // add sp, xN, #imm -> add w22, wN, #imm; add sp, x21, x22.
    Inst a = i;
    a.rd = arch::kRegScratch;
    a.width = Width::kW;
    if (a.rn.IsSp()) {
      Emit(MakeMovW22Wsp());
      a.rn = arch::kRegScratch;
    }
    Emit(a);
    Emit(MakeSpGuard());
    if (stats_) ++stats_->guards_inserted;
    return Status::Ok();
  }
  return Status::Fail("unsupported write to sp at line " +
                      std::to_string(in.stmts[idx].line));
}

Status RewriterImpl::RewriteX30Write(const Inst& i) {
  // mov x30, xN -> guard directly.
  if (i.mn == Mn::kOrrReg && i.rn.IsZr() && i.shift_amount == 0 &&
      i.width == Width::kX) {
    EmitGuard(arch::kRegLink, i.rm);
    return Status::Ok();
  }
  // Other ALU results: compute into w22, then guard into x30.
  Inst a = i;
  a.rd = arch::kRegScratch;
  a.width = Width::kW;
  Emit(a);
  EmitGuard(arch::kRegLink, arch::kRegScratch);
  return Status::Ok();
}

Status RewriterImpl::ExpandRtcall(int64_t n) {
  if (n < 0 || n >= opts_.rtcall_entries) {
    return Status::Fail("rtcall number out of range: " + std::to_string(n));
  }
  if (opts_.save_restore_x30) {
    Inst save;
    save.mn = Mn::kStr;
    save.width = Width::kX;
    save.msize = 8;
    save.rt = arch::kRegLink;
    save.mem.base = Reg::Sp();
    save.mem.mode = AddrMode::kPreIndex;
    save.mem.imm = -16;
    Emit(save);
  }
  Inst load;
  load.mn = Mn::kLdr;
  load.width = Width::kX;
  load.msize = 8;
  load.rt = arch::kRegLink;
  load.mem.base = arch::kRegBase;
  load.mem.mode = AddrMode::kImm;
  load.mem.imm = 8 * n;
  Emit(load);
  Inst blr;
  blr.mn = Mn::kBlr;
  blr.rn = arch::kRegLink;
  Emit(blr);
  if (opts_.save_restore_x30) {
    Inst restore;
    restore.mn = Mn::kLdr;
    restore.width = Width::kX;
    restore.msize = 8;
    restore.rt = arch::kRegLink;
    restore.mem.base = Reg::Sp();
    restore.mem.mode = AddrMode::kPostIndex;
    restore.mem.imm = 16;
    Emit(restore);
    EmitGuard(arch::kRegLink, arch::kRegLink);
  }
  return Status::Ok();
}

Status RewriterImpl::RewriteInst(const AsmFile& in, size_t idx) {
  const AsmStmt& stmt = in.stmts[idx];
  Inst i = stmt.inst;

  // Indirect branches (Table 2): force the target into the sandbox.
  if (arch::IsIndirectBranch(i)) {
    if (i.mn == Mn::kRet && i.rn == arch::kRegLink) {
      Emit(i);  // x30 invariant makes plain ret safe
      return Status::Ok();
    }
    EmitGuard(arch::kRegAddr, i.rn);
    i.rn = arch::kRegAddr;
    Emit(i);
    return Status::Ok();
  }

  // Writes to sp.
  if (arch::WritesGpr(i, Reg::Sp()) && !arch::IsMemAccess(i)) {
    return RewriteSpWrite(in, idx, i);
  }

  // ALU writes to x30 (bl/blr handled as branches; loads below).
  if (!arch::IsMemAccess(i) && !arch::IsBranch(i) &&
      arch::WritesGpr(i, arch::kRegLink)) {
    return RewriteX30Write(i);
  }

  // Memory accesses.
  if (arch::IsMemAccess(i)) {
    const bool loads_x30 =
        arch::IsLoad(i) &&
        (i.rt == arch::kRegLink ||
         (i.mn == Mn::kLdp && i.rt2 == arch::kRegLink));
    Status st;
    if (BaseIsSafe(i)) {
      // sp-based: immediate modes (incl. pre/post-index writeback) are
      // safe as-is (Section 4.2); register-offset modes are staged
      // through w22.
      if (i.mem.IsRegOffset()) {
        Emit(MakeMovW22Wsp());
        if (i.mem.mode == AddrMode::kRegLsl) {
          Emit(MakeAddW22Shift(arch::kRegScratch, i.mem.index, i.mem.shift));
        } else {
          Emit(MakeAddW22Ext(arch::kRegScratch, i.mem.index,
                             i.mem.mode == AddrMode::kRegUxtw
                                 ? Extend::kUxtw
                                 : Extend::kSxtw,
                             i.mem.shift));
        }
        if (SupportsGuardedMode(i)) {
          i.mem.base = arch::kRegBase;
          i.mem.mode = AddrMode::kRegUxtw;
          i.mem.index = arch::kRegScratch;
          i.mem.shift = 0;
          Emit(i);
        } else {
          EmitGuard(arch::kRegAddr, arch::kRegScratch);
          i.mem.base = arch::kRegAddr;
          i.mem.mode = AddrMode::kImm;
          i.mem.imm = 0;
          i.mem.index = Reg::None();
          Emit(i);
        }
        if (stats_) ++stats_->guards_inserted;
        st = Status::Ok();
      } else {
        Emit(i);
        st = Status::Ok();
      }
    } else {
      // Redundant guard elimination: reuse or establish a hoisted base.
      // Only accesses that would otherwise need an extra instruction are
      // routed through the hoisting register: a basic [xN] access is
      // already free under the zero-instruction guard, and forcing it
      // through the hoisted base would put the two-cycle guard into its
      // address chain for no benefit.
      const bool hoist_worthwhile =
          !(SupportsGuardedMode(i) && i.mem.mode == AddrMode::kImm &&
            i.mem.imm == 0);
      if (opts_.level == OptLevel::kO2 && HoistEligible(i) &&
          hoist_worthwhile) {
        if (HoistSlot* slot = ActiveSlotFor(i.mem.base)) {
          Inst h = i;
          h.mem.base = slot->hreg;
          Emit(h);
          if (stats_) ++stats_->guards_hoisted;
          if (loads_x30) EmitGuard(arch::kRegLink, arch::kRegLink);
          InvalidateSlots(i);
          return Status::Ok();
        }
        if (CountHoistable(in, idx, i.mem.base) >= 2) {
          if (HoistSlot* slot = FreeSlot()) {
            slot->active = true;
            slot->base = i.mem.base;
            slot->hreg = slot == &slots_[0] ? arch::kRegHoist0
                                            : arch::kRegHoist1;
            EmitGuard(slot->hreg, i.mem.base);
            Inst h = i;
            h.mem.base = slot->hreg;
            Emit(h);
            if (stats_) ++stats_->guards_hoisted;
            if (loads_x30) EmitGuard(arch::kRegLink, arch::kRegLink);
            InvalidateSlots(i);
            return Status::Ok();
          }
        }
      }
      st = RewriteMemAccess(i);
    }
    if (!st.ok()) return st;
    if (loads_x30) {
      EmitGuard(arch::kRegLink, arch::kRegLink);
    }
    InvalidateSlots(i);
    return Status::Ok();
  }

  // Everything else passes through.
  Emit(i);
  InvalidateSlots(i);
  return Status::Ok();
}

void RewriterImpl::FixShortBranches() {
  // tbz/tbnz reach only +-32KiB; inserted guards may push a target out of
  // range (Section 5.1). Estimate addresses conservatively (every
  // instruction 4 bytes, ignoring section gaps within .text) and rewrite
  // over-distance test-branches into an inverted-skip + unconditional
  // branch pair. Iterate to a fixpoint since rewriting grows code.
  constexpr int64_t kLimit = 30000;  // margin below the 32764-byte reach
  bool changed = true;
  while (changed) {
    changed = false;
    // Label -> estimated address.
    std::unordered_map<std::string, int64_t> labels;
    int64_t addr = 0;
    for (const auto& s : out_.stmts) {
      if (s.kind == AsmStmt::Kind::kLabel) {
        labels[s.label] = addr;
      } else if (s.kind == AsmStmt::Kind::kInst) {
        addr += 4;
      } else if (s.kind == AsmStmt::Kind::kDirective) {
        addr += 64;  // generous slop for alignment/data in text
      }
    }
    AsmFile next;
    next.stmts.reserve(out_.stmts.size());
    addr = 0;
    for (auto& s : out_.stmts) {
      if (s.kind == AsmStmt::Kind::kInst &&
          (s.inst.mn == Mn::kTbz || s.inst.mn == Mn::kTbnz) &&
          !s.target.empty()) {
        auto it = labels.find(s.target);
        const int64_t dist =
            it == labels.end() ? 0 : it->second - addr;
        if (dist > kLimit || dist < -kLimit) {
          // tbz rt,#b,far  =>  tbnz rt,#b,skip ; b far ; skip:
          AsmStmt inv = s;
          inv.inst.mn = s.inst.mn == Mn::kTbz ? Mn::kTbnz : Mn::kTbz;
          const std::string skip = FreshLabel();
          inv.target = skip;
          next.stmts.push_back(inv);
          Inst b;
          b.mn = Mn::kB;
          next.stmts.push_back(AsmStmt::Branch(b, s.target));
          next.stmts.push_back(AsmStmt::Label(skip));
          addr += 8;
          changed = true;
          if (stats_) ++stats_->tbz_rewritten;
          continue;
        }
      }
      if (s.kind == AsmStmt::Kind::kInst) {
        addr += 4;
      } else if (s.kind == AsmStmt::Kind::kDirective) {
        addr += 64;
      }
      next.stmts.push_back(std::move(s));
    }
    out_ = std::move(next);
  }
}

Result<AsmFile> RewriterImpl::Run(const AsmFile& in) {
  // Native-mode input (no guards) may legitimately read the reserved
  // registers (e.g. the Wasm models read x21 to learn the load base), so
  // the cleanliness check only applies when guards are inserted.
  if (opts_.insert_guards) {
    if (auto st = CheckInputClean(in); !st.ok()) return Error{st.error()};
  }
  out_.stmts.reserve(in.stmts.size() * 2);
  in_text_ = true;
  for (size_t idx = 0; idx < in.stmts.size(); ++idx) {
    const AsmStmt& s = in.stmts[idx];
    switch (s.kind) {
      case AsmStmt::Kind::kLabel:
        ResetBlockState();
        EmitStmt(s);
        break;
      case AsmStmt::Kind::kDirective:
        if (s.dir.kind == asmtext::Directive::Kind::kSection) {
          in_text_ = s.dir.section == asmtext::Section::kText;
          ResetBlockState();
        }
        EmitStmt(s);
        break;
      case AsmStmt::Kind::kRtcall: {
        ResetBlockState();
        auto st = ExpandRtcall(s.inst.imm);
        if (!st.ok()) {
          return Error{st.error() + " at line " + std::to_string(s.line)};
        }
        break;
      }
      case AsmStmt::Kind::kHostcall: {
        ResetBlockState();
        if (s.inst.imm < 0 || s.inst.imm > 0xffff) {
          return Error{"hostcall index out of range: " +
                       std::to_string(s.inst.imm) + " at line " +
                       std::to_string(s.line)};
        }
        // movz x9, #i: the kHostcall rtcall reads the callback slot index
        // from x9 (see runtime/layout.h).
        Inst mv;
        mv.mn = Mn::kMovz;
        mv.width = Width::kX;
        mv.rd = Reg::X(9);
        mv.imm = s.inst.imm;
        Emit(mv);
        auto st = ExpandRtcall(kHostcallRtcall);
        if (!st.ok()) {
          return Error{st.error() + " at line " + std::to_string(s.line)};
        }
        break;
      }
      case AsmStmt::Kind::kInst: {
        if (!in_text_) {
          return Error{"instruction outside .text at line " +
                       std::to_string(s.line)};
        }
        if (stats_) ++stats_->input_insts;
        if (!opts_.insert_guards) {
          EmitStmt(s);
          break;
        }
        if (arch::IsBranch(s.inst)) {
          // Branch targets (labels) travel with the statement.
          if (arch::IsIndirectBranch(s.inst)) {
            auto st = RewriteInst(in, idx);
            if (!st.ok()) return Error{st.error()};
          } else {
            EmitStmt(s);
          }
          ResetBlockState();
        } else if (s.reloc != asmtext::Reloc::kNone) {
          // adr/adrp and :lo12: adds carry a label; they never need
          // guarding themselves (the registers they write are guarded at
          // the eventual memory access), so preserve them verbatim.
          EmitStmt(s);
          InvalidateSlots(s.inst);
        } else {
          auto st = RewriteInst(in, idx);
          if (!st.ok()) return Error{st.error()};
        }
        break;
      }
    }
  }
  FixShortBranches();
  if (stats_) {
    for (const auto& s : out_.stmts) {
      if (s.kind == AsmStmt::Kind::kInst) ++stats_->output_insts;
    }
  }
  return std::move(out_);
}

}  // namespace

Result<asmtext::AsmFile> Rewrite(const asmtext::AsmFile& in,
                                 const RewriteOptions& opts,
                                 RewriteStats* stats) {
  RewriterImpl impl(opts, stats);
  return impl.Run(in);
}

}  // namespace lfi::rewriter
