// The LFI assembly rewriter.
//
// Consumes compiler-emitted assembly (as an AsmFile) and inserts the SFI
// guards described in Sections 3-4 of the paper, at one of three
// optimization levels:
//
//  - O0: every unsafe memory access and indirect branch is guarded through
//    a reserved register using the basic two-cycle guard
//    `add x18, x21, wN, uxtw`. Stack-pointer optimizations stay on (the
//    paper's O0 is defined the same way).
//  - O1: adds the zero-instruction guard: accesses are rewritten to the
//    `[x21, wN, uxtw]` addressing mode per Table 3, reducing guard cost to
//    one cycle or zero.
//  - O2: adds redundant guard elimination: runs of accesses off one base
//    register share a single guard through the reserved hoisting registers
//    x23/x24 (Section 4.3, Figure 2).
//
// Additional passes at every level: stack-pointer modification guards with
// the Section 4.2 elisions (pre/post-index writeback; small add/sub
// followed by an access in the same basic block), link-register guards
// after loads of x30, runtime-call expansion (Section 4.4), and the
// tbz/tbnz range fix (Section 5.1).
#ifndef LFI_REWRITER_REWRITER_H_
#define LFI_REWRITER_REWRITER_H_

#include "asmtext/ast.h"
#include "support/result.h"

namespace lfi::rewriter {

// Optimization level, matching the paper's evaluation configurations.
enum class OptLevel { kO0, kO1, kO2 };

struct RewriteOptions {
  OptLevel level = OptLevel::kO2;
  // When false, no guards are inserted at all - only rtcall expansion and
  // the tbz range fix run. This produces the "native" baseline that the
  // paper runs inside the LFI runtime (so it benefits from the same
  // accelerated system calls; Section 6.1). Such programs do not verify.
  bool insert_guards = true;
  // When false, loads are left unguarded ("O2, no loads" in Figure 3):
  // pure fault isolation that protects integrity but not confidentiality.
  bool sandbox_loads = true;
  // Conservatively save/restore x30 around runtime calls (footnote 3).
  bool save_restore_x30 = true;
  // The Section 4.2 elision of sp guards after small adjustments followed
  // by an in-block access. Disabled only by the ablation benchmark.
  bool sp_elision = true;
  // Number of 8-byte entries in the runtime-call table; rtcall numbers
  // must be below this.
  int64_t rtcall_entries = 512;
};

// Runtime-call number the `hostcall #i` pseudo dispatches through
// (runtime/layout.h Rtcall::kHostcall). The rewriter cannot depend on the
// runtime, so the number is pinned here; layout_test checks they agree.
inline constexpr int64_t kHostcallRtcall = 18;

// Statistics from a rewrite, used by the code-size evaluation (§6.3).
struct RewriteStats {
  size_t input_insts = 0;
  size_t output_insts = 0;
  size_t guards_inserted = 0;       // add-guard instructions added
  size_t guards_elided_sp = 0;      // SP guards skipped via §4.2 reasoning
  size_t guards_hoisted = 0;        // accesses served by a hoisted guard
  size_t tbz_rewritten = 0;
};

// Rewrites `in`, returning the guarded file. Fails if the input already
// uses the reserved registers (compilers must be invoked with -ffixed-*,
// Section 5.1) or contains instructions that cannot be made safe.
Result<asmtext::AsmFile> Rewrite(const asmtext::AsmFile& in,
                                 const RewriteOptions& opts,
                                 RewriteStats* stats = nullptr);

}  // namespace lfi::rewriter

#endif  // LFI_REWRITER_REWRITER_H_
