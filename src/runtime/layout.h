// Sandbox address-space layout (Figure 1).
//
// Each sandbox occupies a 4GiB-aligned 4GiB slot. Within a slot:
//
//   +0                : one 16KiB read-only page holding the runtime-call
//                       table (Section 4.4; readable by the neighbor, so
//                       it must hold no sandbox-specific secrets)
//   +16KiB .. +64KiB  : 48KiB guard region (unmapped)
//   +64KiB ..         : program text, rodata, data, bss, heap
//   ..  4GiB-48KiB    : stack grows down from the top of this area
//   4GiB-48KiB .. 4GiB: 48KiB guard region (unmapped)
//
// Code must additionally stay out of the last 128MiB of the slot so that
// direct branches (reach: +-128MiB) cannot land in a neighbor's text.
#ifndef LFI_RUNTIME_LAYOUT_H_
#define LFI_RUNTIME_LAYOUT_H_

#include <cstdint>

namespace lfi::runtime {

inline constexpr uint64_t kSlotSize = uint64_t{1} << 32;  // 4GiB
inline constexpr uint64_t kPage = 16384;
inline constexpr uint64_t kGuardSize = 48 * 1024;
// Program content begins after the table page and leading guard region.
inline constexpr uint64_t kProgramStart = kPage + kGuardSize;  // 64KiB
// Last usable byte (exclusive): the trailing guard region.
inline constexpr uint64_t kProgramEnd = kSlotSize - kGuardSize;
// Executable code must end below this offset (128MiB direct-branch reach).
inline constexpr uint64_t kCodeEnd = kSlotSize - (uint64_t{128} << 20);
// Default stack size.
inline constexpr uint64_t kStackSize = uint64_t{1} << 20;  // 1MiB

// Sandboxes live in slots 1..kMaxSlots within the 48-bit address space;
// slot 0 is reserved for the runtime itself ("one sandbox region may need
// to be dedicated to the runtime").
inline constexpr uint64_t kMaxSlots = (uint64_t{1} << 16) - 1;  // 65535

// Base address of sandbox slot `idx` (1-based).
constexpr uint64_t SlotBase(uint64_t idx) { return idx * kSlotSize; }

// The runtime-entry region: addresses the call table points at. Lives in
// slot 0 (the runtime's own region) and is never mapped - the emulator
// traps the PC landing here and hands control to the runtime, modelling
// the hardware branching into runtime code. Placed *below* kProgramStart
// so that no sandbox-relative code offset, misinterpreted as an absolute
// address by unsandboxed baseline runs, can alias it.
inline constexpr uint64_t kRuntimeEntryBase = 0x8000;
inline constexpr uint64_t kRuntimeEntryGranule = 16;

// Runtime call numbers (indices into the call table).
enum class Rtcall : int {
  kExit = 0,
  kWrite = 1,
  kRead = 2,
  kOpen = 3,
  kClose = 4,
  kBrk = 5,
  kMmap = 6,
  kMunmap = 7,
  kFork = 8,
  kWait = 9,
  kPipe = 10,
  kYield = 11,
  kGetpid = 12,
  kClock = 13,
  kYieldTo = 14,  // fast direct yield: microkernel-style IPC (Section 5.3)
  kLseek = 15,
  kSigaction = 16,  // register a fault-signal handler (supervisor.h)
  kSigreturn = 17,  // return from a delivered fault signal
  // Embedding transitions (src/embed/, docs/EMBEDDING.md). These numbers
  // are only meaningful while the host is driving an embedded call
  // (Runtime::RunEmbedded); a scheduled sandbox issuing one is killed.
  kHostcall = 18,    // guest -> host callback; x9 = callback index
  kCallRet = 19,     // guest function returned to the host; x9 = cookie
  kEmbedReady = 20,  // guest init done; x0 = export-table pointer
  kCount = 21,
};

// Display name for a runtime-call number ("write", "yield-to", ...);
// nullptr for numbers outside the table. Shape matches
// trace::SyscallNameFn so exporters can take it directly.
constexpr const char* RtcallName(int call) {
  switch (static_cast<Rtcall>(call)) {
    case Rtcall::kExit: return "exit";
    case Rtcall::kWrite: return "write";
    case Rtcall::kRead: return "read";
    case Rtcall::kOpen: return "open";
    case Rtcall::kClose: return "close";
    case Rtcall::kBrk: return "brk";
    case Rtcall::kMmap: return "mmap";
    case Rtcall::kMunmap: return "munmap";
    case Rtcall::kFork: return "fork";
    case Rtcall::kWait: return "wait";
    case Rtcall::kPipe: return "pipe";
    case Rtcall::kYield: return "yield";
    case Rtcall::kGetpid: return "getpid";
    case Rtcall::kClock: return "clock";
    case Rtcall::kYieldTo: return "yield-to";
    case Rtcall::kLseek: return "lseek";
    case Rtcall::kSigaction: return "sigaction";
    case Rtcall::kSigreturn: return "sigreturn";
    case Rtcall::kHostcall: return "hostcall";
    case Rtcall::kCallRet: return "call-ret";
    case Rtcall::kEmbedReady: return "embed-ready";
    case Rtcall::kCount: break;
  }
  return nullptr;
}

}  // namespace lfi::runtime

#endif  // LFI_RUNTIME_LAYOUT_H_
