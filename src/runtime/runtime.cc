#include "runtime/runtime.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "chaos/chaos.h"

namespace lfi::runtime {

namespace {

using emu::kPermExec;
using emu::kPermRead;
using emu::kPermWrite;

constexpr uint64_t kMaxIoBytes = 1 << 20;

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) / a * a; }
uint64_t AlignDown(uint64_t v, uint64_t a) { return v / a * a; }

// errno-style results.
constexpr uint64_t kEnoent = static_cast<uint64_t>(-2);
constexpr uint64_t kEsrch = static_cast<uint64_t>(-3);
constexpr uint64_t kEbadf = static_cast<uint64_t>(-9);
constexpr uint64_t kEchild = static_cast<uint64_t>(-10);
constexpr uint64_t kEagain = static_cast<uint64_t>(-11);
constexpr uint64_t kEnomem = static_cast<uint64_t>(-12);
constexpr uint64_t kEfault = static_cast<uint64_t>(-14);
constexpr uint64_t kEinval = static_cast<uint64_t>(-22);
constexpr uint64_t kEmfile = static_cast<uint64_t>(-24);

// Runtime calls the chaos engine may replace with an error return. Exit,
// wait, and the signal calls are excluded: injecting there changes
// process lifetime rather than exercising error paths.
bool ChaosInjectableCall(int call) {
  switch (static_cast<Rtcall>(call)) {
    case Rtcall::kWrite: case Rtcall::kRead: case Rtcall::kOpen:
    case Rtcall::kClose: case Rtcall::kBrk: case Rtcall::kMmap:
    case Rtcall::kMunmap: case Rtcall::kFork: case Rtcall::kPipe:
    case Rtcall::kLseek:
      return true;
    default:
      return false;
  }
}

// Snapshot fd records mirror FileDesc kinds numerically; capture and
// restore cast between them.
static_assert(static_cast<int>(snapshot::FdRec::Kind::kFree) ==
              static_cast<int>(FileDesc::Kind::kFree));
static_assert(static_cast<int>(snapshot::FdRec::Kind::kFile) ==
              static_cast<int>(FileDesc::Kind::kFile));
static_assert(static_cast<int>(snapshot::FdRec::Kind::kPipeWrite) ==
              static_cast<int>(FileDesc::Kind::kPipeWrite));

}  // namespace

Runtime::Runtime(RuntimeConfig cfg)
    : cfg_(std::move(cfg)), machine_(&space_, cfg_.core) {
  machine_.set_dispatch(cfg_.dispatch);
  machine_.SetRuntimeRegion(
      kRuntimeEntryBase,
      kRuntimeEntryGranule * static_cast<uint64_t>(Rtcall::kCount));
}

Proc* Runtime::proc(int pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

const Proc* Runtime::proc(int pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

size_t Runtime::live_procs() const {
  size_t n = 0;
  for (const auto& [pid, p] : procs_) {
    if (p->state != ProcState::kZombie && p->state != ProcState::kDead) ++n;
  }
  return n;
}

Result<uint64_t> Runtime::AllocSlot() {
  if (!free_slots_.empty()) {
    const uint64_t s = free_slots_.back();
    free_slots_.pop_back();
    ++used_slots_;
    return s;
  }
  if (next_slot_ > kMaxSlots) return Error{"out of sandbox slots"};
  ++used_slots_;
  return next_slot_++;
}

Result<uint64_t> Runtime::ReserveSlot() { return AllocSlot(); }

void Runtime::set_chaos(chaos::ChaosEngine* chaos) {
  chaos_ = chaos;
  machine_.set_exec_hook(
      chaos != nullptr && chaos->WantsExecHook() ? chaos : nullptr);
}

void Runtime::FreeSlot(Proc* p) {
  for (const auto& [off, range] : p->mappings) {
    (void)space_.Unmap(p->base + off, range.first);
  }
  p->mappings.clear();
  // No decode-cache flush needed: Unmap bumped the address space's
  // mutation generation, which invalidates the machine's cached blocks at
  // its next block entry (see emu/machine.h).
  free_slots_.push_back(p->slot);
  --used_slots_;
}

Status Runtime::MapSlotCommon(Proc* p) {
  // Call table page at the very base, written then locked read-only.
  if (auto st = space_.Map(p->base, kPage, kPermRead | kPermWrite); !st.ok()) {
    return st;
  }
  for (uint64_t n = 0; n < kPage / 8; ++n) {
    uint64_t entry = 0x4000;  // unused entries point at an unmapped page
    if (n < static_cast<uint64_t>(Rtcall::kCount)) {
      entry = kRuntimeEntryBase + n * kRuntimeEntryGranule;
    }
    uint8_t bytes[8];
    std::memcpy(bytes, &entry, 8);
    if (auto st = space_.HostWrite(p->base + n * 8, bytes); !st.ok()) {
      return st;
    }
  }
  if (auto st = space_.Protect(p->base, kPage, kPermRead); !st.ok()) {
    return st;
  }
  p->mappings[0] = {kPage, kPermRead};

  // Stack at the top of the usable area.
  const uint64_t stack_base = kProgramEnd - kStackSize;
  if (auto st = space_.Map(p->base + stack_base, kStackSize,
                           kPermRead | kPermWrite);
      !st.ok()) {
    return st;
  }
  p->mappings[stack_base] = {kStackSize, kPermRead | kPermWrite};
  return Status::Ok();
}

void Runtime::InitFds(Proc* p) {
  p->fds.resize(16);
  p->fds[0].kind = FileDesc::Kind::kStdin;
  p->fds[1].kind = FileDesc::Kind::kStdout;
  p->fds[2].kind = FileDesc::Kind::kStderr;
}

Result<int> Runtime::Load(std::span<const uint8_t> elf_bytes) {
  auto image = elf::Read(elf_bytes);
  if (!image) return Error{image.error()};
  return LoadImage(*image);
}

Result<int> Runtime::LoadImage(const elf::ElfImage& image) {
  // Verify every executable segment before anything is mapped.
  if (cfg_.enforce_verification) {
    for (const auto& seg : image.segments) {
      if (!seg.exec) continue;
      auto res = verifier::Verify({seg.data.data(), seg.data.size()},
                                  cfg_.verify, &verify_stats_);
      if (!res.ok) {
        std::string err = "verification failed (" +
                          std::string(verifier::FailKindName(res.kind)) +
                          ") at text offset " +
                          std::to_string(res.fail_offset) + ": " + res.reason;
        last_verify_ = std::move(res);
        return Error{std::move(err)};
      }
    }
  }

  auto slot = AllocSlot();
  if (!slot) return Error{slot.error()};

  auto p = std::make_unique<Proc>();
  p->pid = AllocPid();
  p->slot = *slot;
  p->base = SlotBase(*slot);
  p->policy = cfg_.default_policy;

  if (auto st = MapSlotCommon(p.get()); !st.ok()) return Error{st.error()};
  if (auto st = MapImage(p.get(), image); !st.ok()) return Error{st.error()};
  // Keep a copy of the (verified) image so the legacy reload-restart path
  // stays benchmarkable without re-reading or re-verifying.
  p->image = std::make_shared<const elf::ElfImage>(image);
  InitFds(p.get());

  uint64_t pages = 0;
  for (const auto& [off, range] : p->mappings) pages += range.first / kPage;
  last_instantiation_ = {InstantiationStats::Method::kElfLoad,
                         cfg_.elf_load_base_cycles +
                             cfg_.elf_load_page_cycles * pages,
                         pages, 0, 0};

  // Post-load checkpoint: what the restart policy rolls back to, and what
  // spawn pools clone. Capture is O(pages) shared_ptr copies, no memory.
  auto snap = std::make_shared<snapshot::Snapshot>();
  if (CaptureInto(p.get(), snap.get()).ok()) p->snapshot = std::move(snap);

  const int pid = p->pid;
  procs_[pid] = std::move(p);
  Enqueue(pid);
  return pid;
}

Status Runtime::MapImage(Proc* p, const elf::ElfImage& image) {
  uint64_t max_data_end = kProgramStart;
  for (const auto& seg : image.segments) {
    const uint64_t start = seg.vaddr;
    const uint64_t end = seg.vaddr + std::max<uint64_t>(seg.memsz,
                                                        seg.data.size());
    if (start < kProgramStart || end > kProgramEnd - kStackSize) {
      return Status::Fail("segment outside the loadable sandbox area");
    }
    if (seg.exec && end > kCodeEnd) {
      return Status::Fail("executable segment within 128MiB of the slot end");
    }
    if (seg.exec && seg.write) {
      return Status::Fail("W^X violation: segment is writable and executable");
    }
    const uint64_t page_start = AlignDown(start, kPage);
    const uint64_t page_end = AlignUp(end, kPage);
    for (const auto& [off, range] : p->mappings) {
      if (page_start < off + range.first && off < page_end) {
        return Status::Fail("segments share a page");
      }
    }
    uint8_t perms = 0;
    if (seg.read) perms |= kPermRead;
    if (seg.write) perms |= kPermWrite;
    if (seg.exec) perms |= kPermExec;
    // Map writable first to install contents, then drop to final perms.
    if (auto st = space_.Map(p->base + page_start, page_end - page_start,
                             kPermRead | kPermWrite);
        !st.ok()) {
      return st;
    }
    if (!seg.data.empty()) {
      if (auto st = space_.HostWrite(p->base + start,
                                     {seg.data.data(), seg.data.size()});
          !st.ok()) {
        return st;
      }
    }
    if (auto st = space_.Protect(p->base + page_start,
                                 page_end - page_start, perms);
        !st.ok()) {
      return st;
    }
    p->mappings[page_start] = {page_end - page_start, perms};
    max_data_end = std::max(max_data_end, page_end);
  }

  p->brk_start = max_data_end;
  p->brk = max_data_end;
  p->brk_mapped = max_data_end;
  p->mmap_cursor = kProgramEnd - kStackSize - (uint64_t{64} << 20);

  // Initial CPU state: all reserved registers satisfy their invariants.
  p->cpu = emu::CpuState{};
  p->cpu.pc = p->base + image.entry;
  p->cpu.sp = p->base + kProgramEnd - 64;
  p->cpu.x[21] = p->base;
  p->cpu.x[18] = p->base;
  p->cpu.x[23] = p->base;
  p->cpu.x[24] = p->base;
  p->cpu.x[30] = p->base + image.entry;
  return Status::Ok();
}

// ---- Snapshots (docs/SNAPSHOTS.md) ----

emu::CpuState Runtime::RelativizeCpu(const emu::CpuState& cpu) {
  emu::CpuState rel = cpu;
  rel.x[21] = 0;
  for (int reg : {18, 23, 24, 30}) rel.x[reg] = cpu.x[reg] & 0xffffffffu;
  rel.sp = cpu.sp & 0xffffffffu;
  rel.pc = cpu.pc & 0xffffffffu;
  // An invalid monitor's address is architecturally dead (stxr checks
  // excl_valid first); normalize it so restored state is bit-identical to
  // a fresh load's.
  rel.excl_addr = cpu.excl_valid ? cpu.excl_addr & 0xffffffffu : 0;
  return rel;
}

emu::CpuState Runtime::RebaseCpu(const emu::CpuState& rel, uint64_t base) {
  emu::CpuState cpu = rel;
  emu::CanonicalizeSandboxRegs(cpu, base);
  cpu.excl_addr = rel.excl_valid ? base | (rel.excl_addr & 0xffffffffu) : 0;
  return cpu;
}

Status Runtime::CaptureInto(const Proc* p, snapshot::Snapshot* out) const {
  out->cpu = RelativizeCpu(p->cpu);
  out->brk_start = p->brk_start;
  out->brk = p->brk;
  out->brk_mapped = p->brk_mapped;
  out->mmap_cursor = p->mmap_cursor;
  out->mmap_bytes = p->mmap_bytes;
  for (size_t s = 0; s < out->sig_handlers.size(); ++s) {
    const uint64_t h = p->sig.handlers[s];
    out->sig_handlers[s] = h == 0 ? 0 : h & 0xffffffffu;
  }
  out->sig_in_handler = p->sig.in_handler;
  out->sig_cookie = p->sig.cookie;
  out->sig_frame_addr = p->sig.frame_addr & 0xffffffffu;
  out->sig_delivered = p->sig.delivered;
  out->mappings = p->mappings;

  out->pages.clear();
  for (const auto& [off, range] : p->mappings) {
    for (uint64_t po = off; po < off + range.first; po += kPage) {
      uint8_t perms = 0;
      auto data = space_.ExportPage(p->base + po, &perms);
      if (data == nullptr) {
        return Status::Fail("capture: mapping has an unmapped page");
      }
      out->pages.push_back({po, perms, std::move(data)});
    }
  }

  out->fds.clear();
  std::map<const Pipe*, uint64_t> pipe_ids;
  for (const auto& d : p->fds) {
    snapshot::FdRec rec;
    rec.kind = static_cast<snapshot::FdRec::Kind>(d.kind);
    rec.flags = d.flags;
    rec.offset = d.offset;
    if (d.kind == FileDesc::Kind::kFile) rec.path = d.path;
    if (d.pipe != nullptr) {
      auto [it, fresh] =
          pipe_ids.try_emplace(d.pipe.get(), pipe_ids.size() + 1);
      rec.pipe_id = it->second;
      // The buffered bytes ride on the first endpoint seen for each pipe;
      // RestoreFds seeds the rebuilt pipe from that record.
      if (fresh) rec.pipe_buf.assign(d.pipe->buf.begin(), d.pipe->buf.end());
    }
    out->fds.push_back(std::move(rec));
  }
  return Status::Ok();
}

Result<snapshot::Snapshot> Runtime::CaptureSnapshot(int pid) const {
  const Proc* p = proc(pid);
  if (p == nullptr) return Error{"capture: no such pid"};
  if (p->state == ProcState::kZombie || p->state == ProcState::kDead) {
    return Error{"capture: process has exited"};
  }
  snapshot::Snapshot snap;
  if (auto st = CaptureInto(p, &snap); !st.ok()) return Error{st.error()};
  return snap;
}

std::vector<FileDesc> Runtime::RestoreFds(
    const std::vector<snapshot::FdRec>& recs) {
  std::vector<FileDesc> fds(std::max<size_t>(recs.size(), 16));
  std::map<uint64_t, std::shared_ptr<Pipe>> pipes;
  for (size_t k = 0; k < recs.size(); ++k) {
    const snapshot::FdRec& rec = recs[k];
    FileDesc& d = fds[k];
    switch (rec.kind) {
      case snapshot::FdRec::Kind::kFree:
        break;
      case snapshot::FdRec::Kind::kStdin:
      case snapshot::FdRec::Kind::kStdout:
      case snapshot::FdRec::Kind::kStderr:
        d.kind = static_cast<FileDesc::Kind>(rec.kind);
        break;
      case snapshot::FdRec::Kind::kFile: {
        // Reopen by VFS path, stripping create/trunc so rehydration never
        // clobbers the file. A missing file degrades to a closed fd (the
        // sandbox sees EBADF, same as if the fd had been closed).
        int err = 0;
        auto node = vfs_.Open(
            rec.path, rec.flags & ~(kOpenCreate | kOpenTrunc), &err);
        if (node == nullptr) break;
        d.kind = FileDesc::Kind::kFile;
        d.node = std::move(node);
        d.offset = rec.offset;
        d.flags = rec.flags;
        d.path = rec.path;
        break;
      }
      case snapshot::FdRec::Kind::kPipeRead:
      case snapshot::FdRec::Kind::kPipeWrite: {
        // Pipes rehydrate privately: endpoints within this snapshot are
        // reconnected (with the bytes buffered at capture), endpoints that
        // lived in another sandbox are not — a restored half-pipe sees
        // EOF/EPIPE, exactly as if the peer had exited.
        auto& pipe = pipes[rec.pipe_id];
        if (pipe == nullptr) {
          pipe = std::make_shared<Pipe>();
          pipe->buf.assign(rec.pipe_buf.begin(), rec.pipe_buf.end());
        }
        d.kind = static_cast<FileDesc::Kind>(rec.kind);
        d.pipe = pipe;
        d.flags = rec.flags;
        d.offset = rec.offset;
        if (rec.kind == snapshot::FdRec::Kind::kPipeRead) {
          ++pipe->readers;
        } else {
          ++pipe->writers;
        }
        break;
      }
    }
  }
  return fds;
}

Result<int> Runtime::SpawnFromSnapshot(
    std::shared_ptr<const snapshot::Snapshot> snap, bool start) {
  if (snap == nullptr) return Error{"spawn: null snapshot"};
  auto slot = AllocSlot();
  if (!slot) return Error{slot.error()};

  auto p = std::make_unique<Proc>();
  p->pid = AllocPid();
  p->slot = *slot;
  p->base = SlotBase(*slot);
  p->policy = cfg_.default_policy;
  p->parked = !start;

  for (const auto& rec : snap->pages) {
    if (auto st = space_.InstallPage(p->base + rec.offset, rec.data,
                                     rec.perms);
        !st.ok()) {
      return Error{st.error()};
    }
  }
  p->mappings = snap->mappings;
  p->brk_start = snap->brk_start;
  p->brk = snap->brk;
  p->brk_mapped = snap->brk_mapped;
  p->mmap_cursor = snap->mmap_cursor;
  p->mmap_bytes = snap->mmap_bytes;
  p->cpu = RebaseCpu(snap->cpu, p->base);
  for (size_t s = 0; s < snap->sig_handlers.size(); ++s) {
    const uint64_t h = snap->sig_handlers[s];
    p->sig.handlers[s] = h == 0 ? 0 : p->base | h;
  }
  p->sig.in_handler = snap->sig_in_handler;
  p->sig.cookie = snap->sig_cookie;
  p->sig.frame_addr =
      snap->sig_frame_addr == 0 ? 0 : p->base | snap->sig_frame_addr;
  p->sig.delivered = snap->sig_delivered;
  p->fds = RestoreFds(snap->fds);
  p->snapshot = std::move(snap);

  const uint64_t pages = p->snapshot->pages.size();
  last_instantiation_ = {InstantiationStats::Method::kSnapshotSpawn,
                         cfg_.snapshot_spawn_base_cycles +
                             cfg_.snapshot_spawn_page_cycles * pages,
                         pages, 0, 0};
  const int pid = p->pid;
  procs_[pid] = std::move(p);
  // Counter only, no ring event: spawn must not perturb the trace stream
  // (a spawned sandbox replays byte-identically against a loaded one).
  if (sink_ != nullptr) {
    sink_->metrics(pid).Add(trace::Counter::kSnapshotSpawns);
  }
  if (start) Enqueue(pid);
  return pid;
}

Status Runtime::Activate(int pid) {
  Proc* p = proc(pid);
  if (p == nullptr) return Status::Fail("activate: no such pid");
  if (!p->parked) return Status::Fail("activate: proc is not parked");
  // A parked proc can be killed while waiting (Kill, chaos): it keeps
  // parked == true but leaves kReady, and must not be handed out as if it
  // were a live warm sandbox.
  if (p->state != ProcState::kReady) {
    return Status::Fail("activate: parked proc was killed");
  }
  p->parked = false;
  Enqueue(pid);
  return Status::Ok();
}

Status Runtime::Kill(int pid, const std::string& why) {
  Proc* p = proc(pid);
  if (p == nullptr) return Status::Fail("kill: no such pid");
  if (p->state == ProcState::kDead) return Status::Fail("kill: already dead");
  if (p->state == ProcState::kZombie) {
    // Already exited. A parentless zombie only exists because
    // retain_on_exit kept its slot; release it now. One with a live
    // parent stays reapable through wait().
    if (proc(p->ppid) != nullptr) {
      return Status::Fail("kill: zombie awaiting reap");
    }
    FreeSlot(p);
    p->state = ProcState::kDead;
    return Status::Ok();
  }
  p->retain_on_exit = false;  // forced kills always tear down the slot
  KillProc(p, why);
  return Status::Ok();
}

Status Runtime::Recycle(int pid) {
  Proc* p = proc(pid);
  if (p == nullptr) return Status::Fail("recycle: no such pid");
  if (p->snapshot == nullptr) return Status::Fail("recycle: no snapshot");
  // Only quiescent procs can be recycled: parked (never ran) or
  // exited-but-retained zombies. A proc still in the run queue cannot be
  // reset out from under the scheduler.
  const bool quiescent =
      p->parked || (p->state == ProcState::kZombie && p->retain_on_exit);
  if (!quiescent) return Status::Fail("recycle: proc is not quiescent");
  // Zombie slots survive DoExit only via retain_on_exit, so the mappings
  // RestoreFromSnapshot diffs against are still live. Temporarily leave
  // kDead out of the picture: restore refuses dead procs already.
  p->state = ProcState::kReady;
  if (auto st = RestoreFromSnapshot(pid, *p->snapshot); !st.ok()) {
    p->state = ProcState::kZombie;
    return st;
  }
  p->parked = true;
  p->exit_kind = ExitKind::kRunning;
  p->exit_status = 0;
  p->fault_detail.clear();
  p->term_signal = 0;
  p->disposition = Disposition::kNone;
  p->fault_injected = false;
  p->restarts = 0;
  p->cpu_cycles = 0;
  p->insts_retired = 0;
  p->children.clear();
  p->out.clear();
  if (sink_ != nullptr) {
    sink_->metrics(pid).Add(trace::Counter::kRecycles);
  }
  return Status::Ok();
}

Status Runtime::RestoreFromSnapshot(int pid, const snapshot::Snapshot& snap) {
  Proc* p = proc(pid);
  if (p == nullptr) return Status::Fail("restore: no such pid");
  if (p->state == ProcState::kDead) {
    return Status::Fail("restore: process slot was freed");
  }

  InstantiationStats stats;
  stats.method = InstantiationStats::Method::kSnapshotRestore;
  stats.pages = snap.pages.size();

  // Descriptors first: pipe endpoint counts must drop so peers in other
  // sandboxes observe EOF/EPIPE before the rebuilt table appears.
  for (uint64_t fd = 0; fd < p->fds.size(); ++fd) {
    if (p->fds[fd].kind != FileDesc::Kind::kFree) SysClose(p, fd);
  }

  // Unmap pages the snapshot does not contain (post-capture brk growth,
  // mmaps); install only pages whose payload or perms diverged. A clean
  // page is pointer-identical to its captured payload — nothing to do,
  // and if nothing at all diverged the mutation generation never bumps,
  // so the decode cache survives the restore intact.
  std::unordered_set<uint64_t> keep;
  keep.reserve(snap.pages.size());
  for (const auto& rec : snap.pages) keep.insert(rec.offset);
  for (const auto& [off, range] : p->mappings) {
    for (uint64_t po = off; po < off + range.first; po += kPage) {
      if (keep.count(po) == 0) {
        (void)space_.Unmap(p->base + po, kPage);
        ++stats.unmapped_pages;
      }
    }
  }
  for (const auto& rec : snap.pages) {
    uint8_t cur_perms = 0;
    const auto* cur = space_.PagePayload(p->base + rec.offset, &cur_perms);
    if (cur == rec.data.get() && cur_perms == rec.perms) continue;
    if (auto st = space_.InstallPage(p->base + rec.offset, rec.data,
                                     rec.perms);
        !st.ok()) {
      return st;
    }
    ++stats.dirty_pages;
  }

  p->mappings = snap.mappings;
  p->brk_start = snap.brk_start;
  p->brk = snap.brk;
  p->brk_mapped = snap.brk_mapped;
  p->mmap_cursor = snap.mmap_cursor;
  p->mmap_bytes = snap.mmap_bytes;
  p->cpu = RebaseCpu(snap.cpu, p->base);
  for (size_t s = 0; s < snap.sig_handlers.size(); ++s) {
    const uint64_t h = snap.sig_handlers[s];
    p->sig.handlers[s] = h == 0 ? 0 : p->base | h;
  }
  p->sig.in_handler = snap.sig_in_handler;
  p->sig.cookie = snap.sig_cookie;
  p->sig.frame_addr =
      snap.sig_frame_addr == 0 ? 0 : p->base | snap.sig_frame_addr;
  p->sig.delivered = snap.sig_delivered;
  p->fds = RestoreFds(snap.fds);

  stats.cycles = cfg_.snapshot_restore_base_cycles +
                 cfg_.snapshot_restore_page_cycles *
                     (stats.dirty_pages + stats.unmapped_pages);
  last_instantiation_ = stats;
  if (sink_ != nullptr) {
    trace::Metrics& m = sink_->metrics(p->pid);
    m.Add(trace::Counter::kSnapshotRestores);
    m.Add(trace::Counter::kSnapshotDirtyPages, stats.dirty_pages);
    sink_->EmitInstant(trace::EventKind::kSnapshotRestore, p->pid, Cycles(),
                       stats.dirty_pages, stats.pages);
  }
  return Status::Ok();
}

// ---- Scheduler ----

bool Runtime::TryUnblock(Proc* p) {
  switch (p->state) {
    case ProcState::kBlockedRead: {
      FileDesc& fd = p->fds[p->block_fd];
      if (fd.kind == FileDesc::Kind::kPipeRead &&
          (fd.pipe->buf.empty() && fd.pipe->writers > 0)) {
        return false;
      }
      p->cpu.x[0] = SysRead(p, p->block_fd, p->block_buf, p->block_len);
      p->state = ProcState::kReady;
      return true;
    }
    case ProcState::kBlockedWrite: {
      FileDesc& fd = p->fds[p->block_fd];
      if (fd.kind == FileDesc::Kind::kPipeWrite &&
          fd.pipe->buf.size() >= Pipe::kCapacity && fd.pipe->readers > 0) {
        return false;
      }
      p->cpu.x[0] = SysWrite(p, p->block_fd, p->block_buf, p->block_len);
      p->state = ProcState::kReady;
      return true;
    }
    case ProcState::kBlockedWait: {
      for (int child_pid : p->children) {
        Proc* c = proc(child_pid);
        if (c != nullptr && c->state == ProcState::kZombie) {
          if (p->block_buf != 0) {
            uint8_t bytes[4];
            // Wait-status word: exited children report their low status
            // byte; killed children report 0x100 | signal (so a parent
            // can distinguish "exit(4)" from "died of SIGILL").
            const uint32_t status =
                c->exit_kind == ExitKind::kKilled
                    ? 0x100u | static_cast<uint32_t>(c->term_signal)
                    : static_cast<uint32_t>(c->exit_status) & 0xffu;
            std::memcpy(bytes, &status, 4);
            (void)space_.HostWrite(Canon(p, p->block_buf), bytes);
          }
          p->cpu.x[0] = static_cast<uint64_t>(child_pid);
          ReapChild(p, c);
          p->state = ProcState::kReady;
          return true;
        }
      }
      // No children at all -> fail the wait.
      bool any = false;
      for (int child_pid : p->children) {
        if (proc(child_pid) != nullptr &&
            proc(child_pid)->state != ProcState::kDead) {
          any = true;
        }
      }
      if (!any) {
        p->cpu.x[0] = kEchild;
        p->state = ProcState::kReady;
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

Proc* Runtime::PickNext() {
  // Poll blocked processes (the runtime is single-threaded and
  // deterministic, so completion conditions are re-checked here).
  for (auto& [pid, p] : procs_) {
    if (p->state == ProcState::kBlockedRead ||
        p->state == ProcState::kBlockedWrite ||
        p->state == ProcState::kBlockedWait) {
      if (TryUnblock(p.get())) Enqueue(pid);
    }
  }
  while (!ready_.empty()) {
    const int pid = ready_.front();
    ready_.pop_front();
    Proc* p = proc(pid);
    if (p != nullptr && p->state == ProcState::kReady) return p;
  }
  return nullptr;
}

void Runtime::SwitchTo(Proc* p, bool fast) {
  if (current_pid_ != p->pid && current_pid_ != 0) {
    machine_.timing().ChargeFlat(fast ? cfg_.fast_yield_cycles
                                      : cfg_.context_switch_cycles);
    if (sink_ != nullptr) {
      sink_->metrics(p->pid).Add(fast ? trace::Counter::kFastYields
                                      : trace::Counter::kContextSwitches);
      sink_->EmitInstant(trace::EventKind::kSchedSwitch, p->pid, Cycles(),
                         static_cast<uint64_t>(current_pid_), fast ? 1 : 0);
    }
  }
  if (cfg_.spectre_ctx_isolation &&
      machine_.timing().predictor().context() !=
          static_cast<uint32_t>(p->pid)) {
    // SCXTNUM_EL0 write on the domain crossing (Section 7.1).
    machine_.timing().predictor().SetContext(
        static_cast<uint32_t>(p->pid));
    machine_.timing().ChargeFlat(cfg_.scxtnum_write_cycles);
  }
  machine_.state() = p->cpu;
  current_pid_ = p->pid;
}

int Runtime::RunUntilIdle(uint64_t max_total_insts) {
  const uint64_t start = machine_.timing().Retired();
  bool fast_switch = false;
  while (machine_.timing().Retired() - start < max_total_insts) {
    // Chaos scheduler perturbation: occasionally rotate the ready queue
    // so a different runnable proc wins this pick.
    if (chaos_ != nullptr && ready_.size() > 1 && chaos_->PerturbSchedule()) {
      ready_.push_back(ready_.front());
      ready_.pop_front();
    }
    Proc* p = PickNext();
    if (p == nullptr) break;
    SwitchTo(p, fast_switch);
    fast_switch = false;
    trace::ExecCounters ctr_before;
    uint64_t slice_start = 0;
    if (sink_ != nullptr) {
      ctr_before = exec_counters_;
      slice_start = Cycles();
    }
    uint64_t slice_insts = cfg_.timeslice_insts;
    if (chaos_ != nullptr) {
      chaos_->BeginSlice(p->pid);
      slice_insts = chaos_->PerturbTimeslice(slice_insts);
    }
    const uint64_t cyc0 = Cycles();
    const uint64_t ret0 = machine_.timing().Retired();
    const auto stop = machine_.Run(slice_insts);
    p->cpu = machine_.state();
    // Per-proc execution accounting (always on; basis for the cpu-quota
    // watchdog and the containment tests). Runtime-call service time is
    // charged to the shared clock, not the sandbox.
    p->cpu_cycles += Cycles() - cyc0;
    p->insts_retired += machine_.timing().Retired() - ret0;
    if (sink_ != nullptr) AttributeSlice(p, ctr_before, slice_start, stop);
    switch (stop) {
      case emu::StopReason::kRuntimeEntry: {
        const uint64_t entry = p->cpu.pc;
        HandleRuntimeEntry(p);
        // A fast yield moved another process to the queue front; make the
        // next switch cheap.
        const int call = static_cast<int>(
            (entry - kRuntimeEntryBase) / kRuntimeEntryGranule);
        if (call == static_cast<int>(Rtcall::kYieldTo) &&
            p->state == ProcState::kReady) {
          fast_switch = true;
        }
        break;
      }
      case emu::StopReason::kStepLimit:
        // Preemption alarm fired: rotate.
        Enqueue(p->pid);
        break;
      case emu::StopReason::kFault:
        supervisor_.HandleFault(p, machine_.fault(), /*injected=*/false);
        break;
      case emu::StopReason::kBrk:
        supervisor_.HandleFault(p, machine_.fault(), /*injected=*/false);
        break;
      case emu::StopReason::kHookStop: {
        emu::CpuFault injected;
        if (chaos_ != nullptr && chaos_->TakePendingFault(&injected)) {
          if (sink_ != nullptr) {
            sink_->metrics(p->pid).Add(trace::Counter::kChaosInjections);
            sink_->EmitInstant(trace::EventKind::kChaosInject, p->pid,
                               Cycles(),
                               static_cast<uint64_t>(injected.kind), 0);
          }
          supervisor_.HandleFault(p, injected, /*injected=*/true);
        } else {
          // Some other hook (e.g. a debugger) stopped the machine; just
          // end this timeslice.
          Enqueue(p->pid);
        }
        break;
      }
    }
    // Cpu-quota watchdog: checked once per timeslice, so overshoot is
    // bounded by one quantum.
    if (p->state != ProcState::kZombie && p->state != ProcState::kDead) {
      supervisor_.EnforceCpuQuota(p);
    }
  }
  return static_cast<int>(live_procs());
}

void Runtime::AttributeSlice(Proc* p, const trace::ExecCounters& before,
                             uint64_t slice_start_cycles,
                             emu::StopReason stop) {
  using trace::Counter;
  trace::Metrics& m = sink_->metrics(p->pid);
  const trace::ExecCounters& a = exec_counters_;
  m.Add(Counter::kInstRetired, a.retired - before.retired);
  m.Add(Counter::kGuardsExecuted, a.guards - before.guards);
  m.Add(Counter::kLoads, a.loads - before.loads);
  m.Add(Counter::kStores, a.stores - before.stores);
  m.Add(Counter::kBlockCacheHits, a.block_hits - before.block_hits);
  m.Add(Counter::kBlockCacheMisses, a.block_misses - before.block_misses);
  const uint64_t inval = a.block_invalidations - before.block_invalidations;
  if (inval > 0) {
    m.Add(Counter::kBlockCacheInvalidations, inval);
    // arg0 is the sandbox's cumulative invalidation count, not the raw
    // mutation generation: the generation depends on how the sandbox was
    // instantiated (ELF load vs. snapshot spawn bump it differently), and
    // equivalent runs must produce byte-identical traces
    // (docs/SNAPSHOTS.md determinism contract).
    sink_->EmitInstant(trace::EventKind::kBlockInvalidate, p->pid, Cycles(),
                       m.Get(Counter::kBlockCacheInvalidations));
  }
  sink_->Emit(trace::EventKind::kSchedSlice, p->pid, slice_start_cycles,
              Cycles(), static_cast<uint64_t>(stop));
}

// ---- Embedding primitives (src/embed/, docs/EMBEDDING.md) ----

void Runtime::DequeuePid(int pid) {
  for (auto it = ready_.begin(); it != ready_.end();) {
    if (*it == pid) {
      it = ready_.erase(it);
    } else {
      ++it;
    }
  }
}

Status Runtime::BeginEmbed(int pid) {
  Proc* p = proc(pid);
  if (p == nullptr) return Status::Fail("embed: no such pid");
  if (p->state != ProcState::kReady) {
    return Status::Fail("embed: proc is not runnable");
  }
  DequeuePid(pid);
  // Parked procs are never enqueued by Activate-less paths, and every
  // Enqueue a runtime call performs inside DriveEmbedded is immediately
  // undone there — the scheduler never sees an embedded sandbox.
  p->parked = true;
  // Faults and exits must keep the slot mapped so the embed layer can
  // Recycle() back to its baseline snapshot instead of losing the slot.
  p->retain_on_exit = true;
  return Status::Ok();
}

void Runtime::KillEmbedded(int pid, const std::string& why) {
  Proc* p = proc(pid);
  if (p == nullptr || p->state == ProcState::kZombie ||
      p->state == ProcState::kDead) {
    return;
  }
  // Unlike Kill(), retain_on_exit survives: embedded sandboxes always
  // keep their slot so the host can restart them from the snapshot.
  KillProc(p, why, kSigSys);
}

Result<uint64_t> Runtime::GuestAlloc(int pid, uint64_t len) {
  Proc* p = proc(pid);
  if (p == nullptr) return Error{"guest-alloc: no such pid"};
  if (p->state == ProcState::kZombie || p->state == ProcState::kDead) {
    return Error{"guest-alloc: sandbox has exited"};
  }
  const uint64_t r = SysMmap(p, len);
  if (static_cast<int64_t>(r) < 0) {
    return Error{"guest-alloc: mmap failed (" +
                 std::to_string(static_cast<int64_t>(r)) + ")"};
  }
  return r;
}

Runtime::EmbedStop Runtime::RunEmbedded(int pid, const emu::CpuState& enter,
                                        uint64_t expected_cookie,
                                        uint64_t fuel, EmbedEnter how) {
  EmbedStop out;
  Proc* p = proc(pid);
  if (p == nullptr || p->state != ProcState::kReady) {
    out.kind = EmbedStop::Kind::kProtocol;
    out.detail = "embedded call on a dead or missing sandbox";
    return out;
  }
  p->cpu = enter;
  // Host-built and callback-resumed frames get the same reserved-register
  // treatment as sigreturn frames: nothing the embed layer (or a hostile
  // callback return value) writes can place a reserved register, sp, or
  // pc outside the slot.
  emu::CanonicalizeSandboxRegs(p->cpu, p->base);
  p->cpu.excl_valid = false;
  p->cpu.excl_addr = 0;
  switch (how) {
    case EmbedEnter::kInit:
      break;  // uncharged, like instantiation (equivalent runs must
              // trace identically whether init happened before or after
              // an unrelated sandbox's work)
    case EmbedEnter::kCall:
      machine_.timing().ChargeFlat(cfg_.embed_call_cycles);
      break;
    case EmbedEnter::kResume:
      machine_.timing().ChargeFlat(cfg_.embed_hostcall_ret_cycles);
      break;
  }
  return DriveEmbedded(p, expected_cookie, fuel,
                       how == EmbedEnter::kInit);
}

Runtime::EmbedStop Runtime::DriveEmbedded(Proc* p, uint64_t expected_cookie,
                                          uint64_t fuel, bool init) {
  EmbedStop out;
  const uint64_t start_retired = machine_.timing().Retired();
  machine_.state() = p->cpu;
  current_pid_ = p->pid;
  // Tallies the embed-transition rtcall like a syscall (counter + per-
  // number split) but emits no kSyscall ring event: the embed layer's
  // kEmbedCall/kEmbedCallback events are the trace record of these
  // transitions.
  auto tally = [&](Rtcall call) {
    if (sink_ != nullptr) {
      trace::Metrics& m = sink_->metrics(p->pid);
      m.Add(trace::Counter::kSyscalls);
      m.AddSyscall(static_cast<int>(call));
    }
  };
  while (true) {
    const uint64_t used = machine_.timing().Retired() - start_retired;
    if (used >= fuel) {
      KillProc(p, "embedded call exhausted its fuel (" +
                   std::to_string(fuel) + " insts)", kSigXcpu);
      out.kind = EmbedStop::Kind::kFuel;
      out.detail = p->fault_detail;
      return out;
    }
    uint64_t slice = std::min(cfg_.timeslice_insts, fuel - used);
    if (chaos_ != nullptr) {
      chaos_->BeginSlice(p->pid);
      slice = chaos_->PerturbTimeslice(slice);
    }
    trace::ExecCounters ctr_before;
    uint64_t slice_start = 0;
    if (sink_ != nullptr) {
      ctr_before = exec_counters_;
      slice_start = Cycles();
    }
    const uint64_t cyc0 = Cycles();
    const uint64_t ret0 = machine_.timing().Retired();
    const auto stop = machine_.Run(slice);
    p->cpu = machine_.state();
    p->cpu_cycles += Cycles() - cyc0;
    p->insts_retired += machine_.timing().Retired() - ret0;
    if (sink_ != nullptr) AttributeSlice(p, ctr_before, slice_start, stop);
    switch (stop) {
      case emu::StopReason::kStepLimit:
        // No preemption here: the embedded call owns the machine until it
        // completes or burns its fuel.
        continue;
      case emu::StopReason::kRuntimeEntry: {
        const int call = static_cast<int>(
            (p->cpu.pc - kRuntimeEntryBase) / kRuntimeEntryGranule);
        if (call == static_cast<int>(Rtcall::kHostcall)) {
          tally(Rtcall::kHostcall);
          machine_.timing().ChargeFlat(cfg_.embed_hostcall_cycles);
          if (init) {
            KillProc(p, "hostcall before embed-ready", kSigSys);
            out.kind = EmbedStop::Kind::kProtocol;
            out.detail = p->fault_detail;
            return out;
          }
          out.kind = EmbedStop::Kind::kHostcall;
          out.hostcall_index = static_cast<int>(p->cpu.x[9]);
          // Resume point: the instruction after the expanded blr (the
          // rewriter's x30 restore), exactly like a normal rtcall return.
          p->cpu.pc = Canon(p, p->cpu.x[30]);
          out.saved = p->cpu;
          return out;
        }
        if (call == static_cast<int>(Rtcall::kCallRet)) {
          tally(Rtcall::kCallRet);
          machine_.timing().ChargeFlat(cfg_.embed_ret_cycles);
          if (init) {
            KillProc(p, "embedded-call return before embed-ready", kSigSys);
            out.kind = EmbedStop::Kind::kProtocol;
            out.detail = p->fault_detail;
            return out;
          }
          if (p->cpu.x[9] != expected_cookie) {
            // A real return arrives through the ret stub, which moves the
            // x19 cookie the host planted at entry into x9. Anything else
            // is a forged or replayed return frame.
            KillProc(p, "forged embedded-call return (bad cookie)", kSigSys);
            out.kind = EmbedStop::Kind::kForged;
            out.detail = p->fault_detail;
            return out;
          }
          out.kind = EmbedStop::Kind::kReturned;
          out.x0 = p->cpu.x[0];
          out.v0 = p->cpu.vr[0].lo;
          return out;
        }
        if (call == static_cast<int>(Rtcall::kEmbedReady)) {
          tally(Rtcall::kEmbedReady);
          if (!init) {
            KillProc(p, "embed-ready during an embedded call", kSigSys);
            out.kind = EmbedStop::Kind::kProtocol;
            out.detail = p->fault_detail;
            return out;
          }
          out.kind = EmbedStop::Kind::kReady;
          out.x0 = p->cpu.x[0];
          // Leave the proc resumable past the rtcall, mirroring the
          // normal return path (the embed layer snapshots this state).
          p->cpu.pc = Canon(p, p->cpu.x[30]);
          return out;
        }
        // Ordinary runtime call (write to a pipe, brk, clock, ...): let
        // the normal dispatcher service it, then undo its Enqueue — the
        // scheduler must never see an embedded sandbox.
        HandleRuntimeEntry(p);
        DequeuePid(p->pid);
        if (p->state == ProcState::kReady) {
          machine_.state() = p->cpu;
          continue;
        }
        if (p->state == ProcState::kZombie || p->state == ProcState::kDead) {
          if (p->exit_kind == ExitKind::kExited) {
            out.kind = EmbedStop::Kind::kExited;
            out.detail =
                "guest exited with status " + std::to_string(p->exit_status);
          } else {
            out.kind = EmbedStop::Kind::kFault;
            out.detail = p->fault_detail;
          }
          return out;
        }
        // Blocked on I/O: no scheduler runs during an embedded call, so
        // nothing can ever complete it. Fail closed.
        KillProc(p, "guest blocked during an embedded call", kSigSys);
        out.kind = EmbedStop::Kind::kBlocked;
        out.detail = p->fault_detail;
        return out;
      }
      case emu::StopReason::kFault:
      case emu::StopReason::kBrk: {
        // No signal delivery and no restart policy mid-call: the host is
        // suspended inside Call(), so the only sound resolution is to
        // unwind to it. The slot survives (retain_on_exit) for Recycle.
        const emu::CpuFault& f = machine_.fault();
        KillProc(p, f.detail + " pc=" + std::to_string(f.pc) +
                     " (during embedded call)", FaultSignal(f.kind));
        out.kind = EmbedStop::Kind::kFault;
        out.detail = p->fault_detail;
        return out;
      }
      case emu::StopReason::kHookStop: {
        emu::CpuFault injected;
        if (chaos_ != nullptr && chaos_->TakePendingFault(&injected)) {
          if (sink_ != nullptr) {
            sink_->metrics(p->pid).Add(trace::Counter::kChaosInjections);
            sink_->EmitInstant(trace::EventKind::kChaosInject, p->pid,
                               Cycles(),
                               static_cast<uint64_t>(injected.kind), 0);
          }
          p->fault_injected = true;
          KillProc(p, injected.detail + " pc=" +
                       std::to_string(injected.pc) +
                       " [chaos] (during embedded call)",
                   FaultSignal(injected.kind));
          p->fault_injected = true;
          out.kind = EmbedStop::Kind::kFault;
          out.detail = p->fault_detail;
          return out;
        }
        // Some other hook (invariant checker, debugger) stopped the
        // machine; treat it as a fatal condition for this call.
        KillProc(p, "exec hook stopped the embedded call", kSigKill);
        out.kind = EmbedStop::Kind::kFault;
        out.detail = p->fault_detail;
        return out;
      }
    }
  }
}

// ---- Runtime calls ----

void Runtime::HandleRuntimeEntry(Proc* p) {
  const uint64_t off = p->cpu.pc - kRuntimeEntryBase;
  const int call = static_cast<int>(off / kRuntimeEntryGranule);
  const uint64_t sys_enter = sink_ != nullptr ? Cycles() : 0;
  if (sink_ != nullptr) {
    trace::Metrics& m = sink_->metrics(p->pid);
    m.Add(trace::Counter::kSyscalls);
    m.AddSyscall(call);
  }
  // The fast direct yield skips the general runtime-call prologue: the
  // program loaded its entry point statically from the call table, so the
  // runtime needs no dispatch work (Section 4.4's "fast direct yield").
  machine_.timing().ChargeFlat(call == static_cast<int>(Rtcall::kYieldTo)
                                   ? cfg_.rtcall_base_cycles / 4
                                   : cfg_.rtcall_base_cycles);
  const uint64_t ret = p->cpu.x[30];
  // Return address must be a sandbox address (blr wrote pc+4); paranoia
  // check since the runtime is trusted but the value flows from the
  // sandbox.
  p->cpu.pc = Canon(p, ret);

  uint64_t r = 0;
  bool chaos_injected = false;
  if (chaos_ != nullptr && ChaosInjectableCall(call)) {
    uint64_t err = 0;
    if (chaos_->InjectSyscallError(p->pid, call, &err)) {
      // The call is not executed; the sandbox sees a transient errno.
      r = err;
      chaos_injected = true;
      if (sink_ != nullptr) {
        sink_->metrics(p->pid).Add(trace::Counter::kChaosInjections);
        sink_->EmitInstant(trace::EventKind::kChaosInject, p->pid, Cycles(),
                           static_cast<uint64_t>(call), err);
      }
    }
  }
  if (chaos_injected) {
    // Fall through to the common return path below.
  } else switch (static_cast<Rtcall>(call)) {
    case Rtcall::kExit:
      if (sink_ != nullptr) {
        sink_->Emit(trace::EventKind::kSyscall, p->pid, sys_enter, Cycles(),
                    static_cast<uint64_t>(call), 0);
      }
      DoExit(p, static_cast<int>(p->cpu.x[0]));
      return;
    case Rtcall::kWrite:
      r = SysWrite(p, p->cpu.x[0], p->cpu.x[1], p->cpu.x[2]);
      break;
    case Rtcall::kRead: {
      uint64_t len = p->cpu.x[2];
      if (chaos_ != nullptr) len = chaos_->ClampIoLen(p->pid, len);
      r = SysRead(p, p->cpu.x[0], p->cpu.x[1], len);
      break;
    }
    case Rtcall::kOpen:
      r = SysOpen(p, p->cpu.x[0], p->cpu.x[1]);
      break;
    case Rtcall::kClose:
      r = SysClose(p, p->cpu.x[0]);
      break;
    case Rtcall::kBrk:
      r = SysBrk(p, p->cpu.x[0]);
      break;
    case Rtcall::kMmap:
      r = SysMmap(p, p->cpu.x[1]);
      break;
    case Rtcall::kMunmap:
      r = SysMunmap(p, p->cpu.x[0], p->cpu.x[1]);
      break;
    case Rtcall::kFork:
      r = SysFork(p);
      if (sink_ != nullptr && static_cast<int64_t>(r) > 0) {
        sink_->metrics(p->pid).Add(trace::Counter::kForks);
        sink_->EmitInstant(trace::EventKind::kFork, p->pid, Cycles(), r);
      }
      break;
    case Rtcall::kWait:
      // wait(status_ptr): block until a child exits.
      p->block_buf = p->cpu.x[0];
      p->state = ProcState::kBlockedWait;
      if (TryUnblock(p)) Enqueue(p->pid);
      if (sink_ != nullptr) {
        if (p->state == ProcState::kReady) {
          sink_->Emit(trace::EventKind::kSyscall, p->pid, sys_enter, Cycles(),
                      static_cast<uint64_t>(call), p->cpu.x[0]);
        } else {
          sink_->EmitInstant(trace::EventKind::kSyscallBlock, p->pid, Cycles(),
                             static_cast<uint64_t>(call));
        }
      }
      return;
    case Rtcall::kPipe:
      r = SysPipe(p, p->cpu.x[0]);
      break;
    case Rtcall::kYield:
      r = 0;
      break;
    case Rtcall::kGetpid:
      r = static_cast<uint64_t>(p->pid);
      break;
    case Rtcall::kClock:
      r = static_cast<uint64_t>(machine_.timing().Nanoseconds());
      break;
    case Rtcall::kYieldTo: {
      const int target = static_cast<int>(p->cpu.x[0]);
      Proc* t = proc(target);
      if (t == nullptr || (t->state != ProcState::kReady)) {
        r = kEsrch;
        break;
      }
      // Move the target to the front so it runs next; the switch itself
      // only saves/restores callee-saved registers (~50 cycles total).
      for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (*it == target) {
          ready_.erase(it);
          break;
        }
      }
      ready_.push_front(target);
      if (sink_ != nullptr) {
        sink_->EmitInstant(trace::EventKind::kYieldTo, p->pid, Cycles(),
                           static_cast<uint64_t>(target));
      }
      r = 0;
      break;
    }
    case Rtcall::kLseek:
      r = SysLseek(p, p->cpu.x[0], p->cpu.x[1], p->cpu.x[2]);
      break;
    case Rtcall::kSigaction:
      r = supervisor_.SysSigaction(p, p->cpu.x[0], p->cpu.x[1]);
      break;
    case Rtcall::kSigreturn:
      // Restores the interrupted context in full (including x0 and pc);
      // the common return path below would clobber that, so return here.
      supervisor_.SysSigreturn(p, p->cpu.x[0]);
      if (p->state == ProcState::kReady &&
          p->exit_kind == ExitKind::kRunning) {
        Enqueue(p->pid);
        if (sink_ != nullptr) {
          sink_->Emit(trace::EventKind::kSyscall, p->pid, sys_enter, Cycles(),
                      static_cast<uint64_t>(call), 0);
        }
      }
      return;
    case Rtcall::kHostcall:
      // The embed transition rtcalls only mean something while the host
      // is driving an embedded call (DriveEmbedded intercepts them before
      // this dispatcher runs); a *scheduled* sandbox issuing one is
      // confused or hostile. Each dies with its own distinct message.
      KillProc(p, "hostcall outside an embedded call", kSigSys);
      return;
    case Rtcall::kCallRet:
      KillProc(p, "embedded-call return outside an embedded call", kSigSys);
      return;
    case Rtcall::kEmbedReady:
      KillProc(p, "embed-ready without an embedding host", kSigSys);
      return;
    default:
      KillProc(p, "bad runtime call " + std::to_string(call), kSigSys);
      return;
  }
  if (p->state == ProcState::kReady) {
    p->cpu.x[0] = r;
    Enqueue(p->pid);
    if (sink_ != nullptr) {
      sink_->Emit(trace::EventKind::kSyscall, p->pid, sys_enter, Cycles(),
                  static_cast<uint64_t>(call), r);
    }
  } else if (p->state == ProcState::kBlockedRead ||
             p->state == ProcState::kBlockedWrite) {
    // Blocked: x0 will be set on completion.
    if (sink_ != nullptr) {
      sink_->EmitInstant(trace::EventKind::kSyscallBlock, p->pid, Cycles(),
                         static_cast<uint64_t>(call));
    }
  }
}

void Runtime::ReapChild(Proc* parent, Proc* child) {
  FreeSlot(child);
  child->state = ProcState::kDead;
  (void)parent;
}

void Runtime::DoExit(Proc* p, int status) {
  p->exit_kind = ExitKind::kExited;
  p->exit_status = status;
  if (sink_ != nullptr) {
    sink_->EmitInstant(trace::EventKind::kProcExit, p->pid, Cycles(),
                       static_cast<uint64_t>(static_cast<uint32_t>(status)));
  }
  // Close descriptors (updates pipe endpoint counts).
  for (uint64_t fd = 0; fd < p->fds.size(); ++fd) {
    if (p->fds[fd].kind != FileDesc::Kind::kFree) SysClose(p, fd);
  }
  // Orphan our children onto nobody; auto-reap zombies among them.
  for (int child_pid : p->children) {
    Proc* c = proc(child_pid);
    if (c != nullptr && c->state == ProcState::kZombie) ReapChild(p, c);
    if (c != nullptr && c->state != ProcState::kDead) c->ppid = 0;
  }
  Proc* parent = proc(p->ppid);
  if (parent == nullptr && !p->retain_on_exit) {
    FreeSlot(p);
    p->state = ProcState::kDead;
  } else {
    // Zombie: reapable by the parent, or (retain_on_exit) held with its
    // slot mapped so the serving layer can Recycle() it.
    p->state = ProcState::kZombie;
  }
  if (current_pid_ == p->pid) current_pid_ = 0;
}

void Runtime::KillProc(Proc* p, const std::string& why, int signo) {
  p->fault_detail = why;
  p->term_signal = signo;
  p->disposition = Disposition::kKilled;
  if (sink_ != nullptr) {
    sink_->metrics(p->pid).Add(trace::Counter::kFaults);
    sink_->EmitInstant(trace::EventKind::kFault, p->pid, Cycles());
  }
  p->exit_kind = ExitKind::kKilled;
  p->exit_status = -1;
  DoExit(p, -1);
  p->exit_kind = ExitKind::kKilled;
}

void Runtime::NoteLimit(Proc* p, LimitKind kind, uint64_t observed) {
  if (sink_ != nullptr) {
    sink_->metrics(p->pid).Add(trace::Counter::kLimitRejections);
    sink_->EmitInstant(trace::EventKind::kLimitHit, p->pid, Cycles(),
                       static_cast<uint64_t>(kind), observed);
  }
}

bool Runtime::FdCapReached(Proc* p, uint64_t fd) const {
  const uint64_t cap = p->policy.limits.max_fds;
  return cap != 0 && fd >= cap;
}

// ---- Individual calls ----

uint64_t Runtime::SysWrite(Proc* p, uint64_t fd, uint64_t buf,
                           uint64_t len) {
  if (fd >= p->fds.size()) return kEbadf;
  FileDesc& d = p->fds[fd];
  len = std::min<uint64_t>(len, kMaxIoBytes);
  std::vector<uint8_t> tmp(len);
  if (len > 0 && !space_.HostRead(Canon(p, buf), tmp).ok()) return kEfault;
  machine_.timing().ChargeFlat(len / 64);
  switch (d.kind) {
    case FileDesc::Kind::kStdout:
    case FileDesc::Kind::kStderr:
      p->out.append(tmp.begin(), tmp.end());
      return len;
    case FileDesc::Kind::kFile: {
      if (d.flags == kOpenRead) return kEbadf;
      auto& data = d.node->data;
      if (d.flags & kOpenAppend) d.offset = data.size();
      if (d.offset + len > data.size()) data.resize(d.offset + len);
      std::copy(tmp.begin(), tmp.end(),
                data.begin() + static_cast<ptrdiff_t>(d.offset));
      d.offset += len;
      return len;
    }
    case FileDesc::Kind::kPipeWrite: {
      if (d.pipe->readers == 0) return kEinval;  // EPIPE-ish
      uint64_t capacity = Pipe::kCapacity;
      const uint64_t pipe_cap = p->policy.limits.max_pipe_buffer_bytes;
      if (pipe_cap != 0) capacity = std::min<uint64_t>(capacity, pipe_cap);
      const uint64_t space_left =
          capacity > d.pipe->buf.size() ? capacity - d.pipe->buf.size() : 0;
      if (space_left == 0) {
        if (pipe_cap != 0) {
          // A capped pipe degrades to non-blocking: EAGAIN instead of
          // parking the writer until a reader drains it.
          NoteLimit(p, LimitKind::kPipeBuf, d.pipe->buf.size());
          return kEagain;
        }
        p->state = ProcState::kBlockedWrite;
        p->block_fd = static_cast<int>(fd);
        p->block_buf = buf;
        p->block_len = len;
        return 0;  // completed later
      }
      const uint64_t n = std::min(space_left, len);
      d.pipe->buf.insert(d.pipe->buf.end(), tmp.begin(),
                         tmp.begin() + static_cast<ptrdiff_t>(n));
      if (sink_ != nullptr) {
        sink_->metrics(p->pid).Add(trace::Counter::kPipeBytesWritten, n);
        sink_->EmitInstant(trace::EventKind::kPipeWrite, p->pid, Cycles(),
                           fd, n);
      }
      return n;
    }
    default:
      return kEbadf;
  }
}

uint64_t Runtime::SysRead(Proc* p, uint64_t fd, uint64_t buf, uint64_t len) {
  if (fd >= p->fds.size()) return kEbadf;
  FileDesc& d = p->fds[fd];
  len = std::min<uint64_t>(len, kMaxIoBytes);
  switch (d.kind) {
    case FileDesc::Kind::kStdin:
      return 0;  // always EOF
    case FileDesc::Kind::kFile: {
      const auto& data = d.node->data;
      if (d.offset >= data.size()) return 0;
      const uint64_t n = std::min<uint64_t>(len, data.size() - d.offset);
      if (!space_
               .HostWrite(Canon(p, buf),
                          {data.data() + d.offset, n})
               .ok()) {
        return kEfault;
      }
      d.offset += n;
      machine_.timing().ChargeFlat(n / 64);
      return n;
    }
    case FileDesc::Kind::kPipeRead: {
      if (d.pipe->buf.empty()) {
        if (d.pipe->writers == 0) return 0;  // EOF
        p->state = ProcState::kBlockedRead;
        p->block_fd = static_cast<int>(fd);
        p->block_buf = buf;
        p->block_len = len;
        return 0;  // completed later
      }
      const uint64_t n = std::min<uint64_t>(len, d.pipe->buf.size());
      std::vector<uint8_t> tmp(d.pipe->buf.begin(),
                               d.pipe->buf.begin() + static_cast<ptrdiff_t>(n));
      if (!space_.HostWrite(Canon(p, buf), tmp).ok()) return kEfault;
      d.pipe->buf.erase(d.pipe->buf.begin(),
                        d.pipe->buf.begin() + static_cast<ptrdiff_t>(n));
      machine_.timing().ChargeFlat(n / 64);
      if (sink_ != nullptr) {
        sink_->metrics(p->pid).Add(trace::Counter::kPipeBytesRead, n);
        sink_->EmitInstant(trace::EventKind::kPipeRead, p->pid, Cycles(),
                           fd, n);
      }
      return n;
    }
    default:
      return kEbadf;
  }
}

uint64_t Runtime::SysOpen(Proc* p, uint64_t path, uint64_t flags) {
  // Read the NUL-terminated path (bounded).
  std::string s;
  uint64_t addr = Canon(p, path);
  for (int k = 0; k < 4096; ++k) {
    uint8_t c;
    if (!space_.HostRead(addr + k, {&c, 1}).ok()) return kEfault;
    if (c == 0) break;
    s.push_back(static_cast<char>(c));
  }
  int err = 0;
  auto node = vfs_.Open(s, static_cast<int>(flags), &err);
  if (node == nullptr) return static_cast<uint64_t>(err);
  for (uint64_t fd = 3; fd < p->fds.size(); ++fd) {
    if (p->fds[fd].kind == FileDesc::Kind::kFree) {
      if (FdCapReached(p, fd)) break;  // only slots above the cap are free
      p->fds[fd].kind = FileDesc::Kind::kFile;
      p->fds[fd].node = std::move(node);
      p->fds[fd].offset = 0;
      p->fds[fd].flags = static_cast<int>(flags);
      p->fds[fd].path = s;
      return fd;
    }
  }
  if (FdCapReached(p, p->fds.size())) {
    NoteLimit(p, LimitKind::kFds, p->fds.size());
    return kEmfile;
  }
  p->fds.push_back({FileDesc::Kind::kFile, std::move(node), nullptr, 0,
                    static_cast<int>(flags), s});
  return p->fds.size() - 1;
}

uint64_t Runtime::SysClose(Proc* p, uint64_t fd) {
  if (fd >= p->fds.size() || p->fds[fd].kind == FileDesc::Kind::kFree) {
    return kEbadf;
  }
  FileDesc& d = p->fds[fd];
  if (d.kind == FileDesc::Kind::kPipeRead) --d.pipe->readers;
  if (d.kind == FileDesc::Kind::kPipeWrite) --d.pipe->writers;
  d = FileDesc{};
  return 0;
}

uint64_t Runtime::SysBrk(Proc* p, uint64_t addr) {
  if (addr == 0) return p->base + p->brk;
  const uint64_t want = addr & 0xffffffffu;
  if (want < p->brk_start || want > p->mmap_cursor) {
    return p->base + p->brk;
  }
  const uint64_t heap_cap = p->policy.limits.max_heap_bytes;
  if (heap_cap != 0 && want > p->brk_start + heap_cap) {
    NoteLimit(p, LimitKind::kHeap, want - p->brk_start);
    return kEnomem;
  }
  if (want < p->brk) {
    // Shrink: the pages stay mapped (high-water mark below), but the
    // freed range must read back as zeros if the heap later regrows over
    // it — otherwise stale bytes leak across a shrink/regrow cycle.
    static constexpr uint64_t kChunk = 4096;
    uint8_t zeros[kChunk] = {};
    for (uint64_t off = want; off < p->brk; off += kChunk) {
      const uint64_t n = std::min<uint64_t>(kChunk, p->brk - off);
      (void)space_.HostWrite(p->base + off, {zeros, n});
    }
  }
  // Grow only past the high-water mark: after a shrink the old pages stay
  // mapped, and Map refuses to clobber live pages.
  const uint64_t old_end = std::max(AlignUp(p->brk, kPage), p->brk_mapped);
  const uint64_t new_end = AlignUp(want, kPage);
  if (new_end > old_end) {
    if (!space_.Map(p->base + old_end, new_end - old_end,
                    kPermRead | kPermWrite)
             .ok()) {
      return p->base + p->brk;
    }
    p->mappings[old_end] = {new_end - old_end, kPermRead | kPermWrite};
    p->brk_mapped = new_end;
  }
  p->brk = want;
  return p->base + p->brk;
}

uint64_t Runtime::SysMmap(Proc* p, uint64_t len) {
  if (len == 0) return kEinval;
  len = AlignUp(len, kPage);
  const uint64_t mmap_cap = p->policy.limits.max_mmap_bytes;
  if (mmap_cap != 0 && p->mmap_bytes + len > mmap_cap) {
    NoteLimit(p, LimitKind::kMmap, p->mmap_bytes + len);
    return kEnomem;
  }
  if (len > p->mmap_cursor - AlignUp(p->brk, kPage)) return kEnomem;
  p->mmap_cursor -= len;
  if (!space_.Map(p->base + p->mmap_cursor, len, kPermRead | kPermWrite)
           .ok()) {
    return kEnomem;
  }
  p->mappings[p->mmap_cursor] = {len, kPermRead | kPermWrite};
  p->mmap_bytes += len;
  machine_.timing().ChargeFlat(120 + len / kPage * 20);
  return p->base + p->mmap_cursor;
}

uint64_t Runtime::SysMunmap(Proc* p, uint64_t addr, uint64_t len) {
  const uint64_t off = addr & 0xffffffffu;
  len = AlignUp(len, kPage);
  auto it = p->mappings.find(off);
  if (it == p->mappings.end() || it->second.first != len) return kEinval;
  (void)space_.Unmap(p->base + off, len);
  p->mappings.erase(it);
  p->mmap_bytes -= std::min(p->mmap_bytes, len);
  machine_.timing().ChargeFlat(100);
  return 0;
}

uint64_t Runtime::SysFork(Proc* p) {
  // Fork is capture + spawn fused: freeze the parent (with the child's
  // return value patched in) and instantiate the image in the child's
  // slot. Installing the captured shared payloads is the same
  // copy-on-write duplication the ShareRange path performed (the memfd
  // trick from Section 5.3), and stashing the snapshot makes forked
  // children restartable — the legacy image path never could (children
  // have no ELF image).
  auto snap = std::make_shared<snapshot::Snapshot>();
  if (!CaptureInto(p, snap.get()).ok()) return kEnomem;
  snap->cpu.x[0] = 0;  // fork returns 0 in the child

  auto slot = AllocSlot();
  if (!slot) return kEnomem;
  auto child = std::make_unique<Proc>();
  child->pid = AllocPid();
  child->ppid = p->pid;
  child->slot = *slot;
  child->base = SlotBase(*slot);
  child->state = ProcState::kReady;
  child->policy = p->policy;  // fault policy and limits are inherited
  child->brk_start = snap->brk_start;
  child->brk = snap->brk;
  child->brk_mapped = snap->brk_mapped;
  child->mmap_cursor = snap->mmap_cursor;
  child->mmap_bytes = snap->mmap_bytes;
  child->mappings = snap->mappings;

  // Descriptors duplicate LIVE from the parent, not from the fd records:
  // the child must share the parent's pipe objects (a rehydrated pipe is
  // a private copy and would sever parent<->child pipelines).
  child->fds = p->fds;
  for (auto& d : child->fds) {
    if (d.kind == FileDesc::Kind::kPipeRead) ++d.pipe->readers;
    if (d.kind == FileDesc::Kind::kPipeWrite) ++d.pipe->writers;
  }

  for (const auto& rec : snap->pages) {
    if (!space_.InstallPage(child->base + rec.offset, rec.data, rec.perms)
             .ok()) {
      return kEnomem;
    }
  }

  // Register state: identical, except every pointer-holding reserved
  // register is rebased by replacing its top 32 bits - exactly what the
  // guards do on each access, which is why fork in a single address space
  // works (Section 5.3).
  child->cpu = RebaseCpu(snap->cpu, child->base);

  // Handlers (and any live frame) are inherited rebased, consistent with
  // the stashed checkpoint a restart rolls the child back to.
  for (size_t s = 0; s < snap->sig_handlers.size(); ++s) {
    const uint64_t h = snap->sig_handlers[s];
    child->sig.handlers[s] = h == 0 ? 0 : child->base | h;
  }
  child->sig.in_handler = snap->sig_in_handler;
  child->sig.cookie = snap->sig_cookie;
  child->sig.frame_addr =
      snap->sig_frame_addr == 0 ? 0 : child->base | snap->sig_frame_addr;
  child->sig.delivered = snap->sig_delivered;
  child->snapshot = std::move(snap);

  machine_.timing().ChargeFlat(400 + 30 * p->mappings.size());

  const int child_pid = child->pid;
  p->children.push_back(child_pid);
  procs_[child_pid] = std::move(child);
  Enqueue(child_pid);
  return static_cast<uint64_t>(child_pid);
}

uint64_t Runtime::SysPipe(Proc* p, uint64_t fdsptr) {
  int rfd = -1, wfd = -1;
  for (uint64_t fd = 3; fd < p->fds.size() && (rfd < 0 || wfd < 0); ++fd) {
    if (p->fds[fd].kind == FileDesc::Kind::kFree && !FdCapReached(p, fd)) {
      if (rfd < 0) {
        rfd = static_cast<int>(fd);
      } else {
        wfd = static_cast<int>(fd);
      }
    }
  }
  // Both endpoints must fit under the fd cap before anything is allocated.
  uint64_t next = p->fds.size();
  const uint64_t rslot = rfd >= 0 ? static_cast<uint64_t>(rfd) : next++;
  const uint64_t wslot = wfd >= 0 ? static_cast<uint64_t>(wfd) : next++;
  if (FdCapReached(p, rslot) || FdCapReached(p, wslot)) {
    NoteLimit(p, LimitKind::kFds, std::max(rslot, wslot));
    return kEmfile;
  }
  while (p->fds.size() <= std::max(rslot, wslot)) p->fds.emplace_back();
  auto pipe = std::make_shared<Pipe>();
  pipe->readers = 1;
  pipe->writers = 1;
  p->fds[rslot] = {FileDesc::Kind::kPipeRead, nullptr, pipe, 0, 0, {}};
  p->fds[wslot] = {FileDesc::Kind::kPipeWrite, nullptr, pipe, 0, 0, {}};
  uint8_t bytes[8];
  const uint32_t r32 = static_cast<uint32_t>(rslot);
  const uint32_t w32 = static_cast<uint32_t>(wslot);
  std::memcpy(bytes, &r32, 4);
  std::memcpy(bytes + 4, &w32, 4);
  if (!space_.HostWrite(Canon(p, fdsptr), bytes).ok()) return kEfault;
  return 0;
}

uint64_t Runtime::SysLseek(Proc* p, uint64_t fd, uint64_t off,
                           uint64_t whence) {
  if (fd >= p->fds.size() || p->fds[fd].kind != FileDesc::Kind::kFile) {
    return kEbadf;
  }
  FileDesc& d = p->fds[fd];
  const int64_t soff = static_cast<int64_t>(off);
  int64_t base;
  switch (whence) {
    case 0: base = 0; break;
    case 1: base = static_cast<int64_t>(d.offset); break;
    case 2: base = static_cast<int64_t>(d.node->data.size()); break;
    default: return kEinval;
  }
  if (base + soff < 0) return kEinval;
  d.offset = static_cast<uint64_t>(base + soff);
  return d.offset;
}

}  // namespace lfi::runtime
