// The LFI runtime (Section 5.3).
//
// A single "process" that manages sandboxes: it loads verified ELF
// executables into 4GiB slots of one shared address space, exposes a small
// Unix-like system-call surface through the per-sandbox runtime-call table
// (open/read/write/brk/mmap/fork/wait/pipe/yield/...), schedules sandboxes
// preemptively (modelling the paper's setitimer alarm), and implements the
// fast direct yield used for microkernel-style IPC. Process-management
// calls are handled entirely internally - no mode switch, no page-table
// switch - which is where LFI's context-switch advantage (Table 5) comes
// from.
#ifndef LFI_RUNTIME_RUNTIME_H_
#define LFI_RUNTIME_RUNTIME_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "elf/elf.h"
#include "emu/machine.h"
#include "runtime/layout.h"
#include "runtime/supervisor.h"
#include "runtime/vfs.h"
#include "snapshot/snapshot.h"
#include "trace/trace.h"
#include "verifier/verifier.h"

namespace lfi::chaos {
class ChaosEngine;
}  // namespace lfi::chaos

namespace lfi::runtime {

// A pipe endpoint's shared buffer.
struct Pipe {
  std::deque<uint8_t> buf;
  int readers = 0, writers = 0;
  static constexpr size_t kCapacity = 65536;
};

// One file descriptor slot.
struct FileDesc {
  enum class Kind : uint8_t {
    kFree, kStdin, kStdout, kStderr, kFile, kPipeRead, kPipeWrite
  };
  Kind kind = Kind::kFree;
  std::shared_ptr<VfsNode> node;
  std::shared_ptr<Pipe> pipe;
  uint64_t offset = 0;
  int flags = 0;
  std::string path;  // VFS path for kFile, so snapshots can reopen it
};

enum class ProcState : uint8_t {
  kReady, kBlockedRead, kBlockedWrite, kBlockedWait, kZombie, kDead
};

// Why a process stopped running for good.
enum class ExitKind : uint8_t { kRunning, kExited, kKilled };

// One sandboxed process.
struct Proc {
  int pid = 0;
  int ppid = 0;
  uint64_t slot = 0;   // slot index; base = SlotBase(slot)
  uint64_t base = 0;
  emu::CpuState cpu;
  ProcState state = ProcState::kReady;
  bool parked = false;  // spawned warm (SpawnFromSnapshot start=false) and
                        // not yet Activate()d; never scheduled while set
  bool retain_on_exit = false;  // keep the slot mapped after exit (zombie
                                // even without a parent) so the sandbox can
                                // be Recycle()d instead of torn down
  ExitKind exit_kind = ExitKind::kRunning;
  int exit_status = 0;
  std::string fault_detail;  // populated when killed by a fault
  int term_signal = 0;       // signal number recorded at kill
  Disposition disposition = Disposition::kNone;  // last fault resolution
  bool fault_injected = false;  // last fault came from the chaos engine
                                // (serving tells injected storms apart
                                // from organic handler faults)

  // Fault policy, limits, and signal-delivery state (supervisor.h).
  SupervisorPolicy policy;
  SignalState sig;
  uint32_t restarts = 0;          // restarts in the current crash window
                                  // (decays after a healthy run; see
                                  // SupervisorPolicy::restart_reset_after_cycles)
  uint32_t total_restarts = 0;    // lifetime restarts, never reset
  uint64_t cpu_cycles = 0;        // cycles spent executing in the sandbox
  uint64_t insts_retired = 0;     // instructions retired by the sandbox
  uint64_t mmap_bytes = 0;        // live bytes from SysMmap (limit basis)
  // Legacy restart image: retained so the ELF-reload restart path can be
  // benchmarked against snapshot restore (set_restart_snapshot(pid,
  // nullptr) forces it). Null for forked children.
  std::shared_ptr<const elf::ElfImage> image;
  // Post-instantiation checkpoint: captured at Load, at fork (so forked
  // children are restartable, unlike the image path), and at
  // SpawnFromSnapshot. The restart policy restores from this, touching
  // only dirtied pages.
  std::shared_ptr<const snapshot::Snapshot> snapshot;

  uint64_t brk_start = 0, brk = 0;   // heap bounds
  uint64_t brk_mapped = 0;  // high-water mark of pages mapped for the heap
                            // (brk can shrink without unmapping; regrowth
                            // below this mark must not re-Map live pages)
  uint64_t mmap_cursor = 0;          // grows down toward the heap
  std::vector<FileDesc> fds;
  std::vector<int> children;
  std::string out;  // captured stdout+stderr

  // Block bookkeeping (pointers are sandbox-canonical addresses).
  int block_fd = -1;
  uint64_t block_buf = 0, block_len = 0;

  // Mapped ranges within the slot: offset -> (len, perms).
  std::map<uint64_t, std::pair<uint64_t, uint8_t>> mappings;
};

struct RuntimeConfig {
  arch::CoreParams core;
  verifier::VerifyOptions verify;
  bool enforce_verification = true;
  // Interpreter backend for the shared machine (docs/DISPATCH.md). All
  // backends produce identical simulated results; kChained is simply the
  // fastest. kBlock/kStep remain selectable as the reference for
  // differential testing.
  emu::Dispatch dispatch = emu::Dispatch::kChained;
  uint64_t timeslice_insts = 100000;  // preemption quantum (alarm period)
  // Host-side cycle charges, calibrated to the paper's microbenchmarks
  // (Table 5: syscall ~22ns, pipe ~46ns, yield ~17ns on the M1).
  uint64_t rtcall_base_cycles = 58;       // runtime entry + exit
  uint64_t context_switch_cycles = 48;    // save/restore + scheduler pick
  uint64_t fast_yield_cycles = 36;        // callee-saved regs only (§5.3)
  // Section 7.1 Spectre hardening: assign each sandbox its own software
  // context number (modelling FEAT_CSV2_2 / SCXTNUM_EL0), so sandboxes
  // cannot train each other's branch predictions (cross-sandbox
  // poisoning). Writing the context register on every domain crossing
  // costs `scxtnum_write_cycles`.
  bool spectre_ctx_isolation = false;
  uint64_t scxtnum_write_cycles = 12;
  // Fault policy applied to every loaded sandbox (overridable per pid via
  // Runtime::set_policy) and the cycle charges of the recovery paths.
  SupervisorPolicy default_policy;
  uint64_t signal_deliver_cycles = 180;  // frame push + redirect
  uint64_t sigreturn_cycles = 140;       // frame validate + restore
  // Instantiation cost model (docs/SNAPSHOTS.md). An ELF load pays
  // parse/verify/zero/copy work per page; a snapshot spawn pays only
  // refcount + page-table work per page (COW, nothing copied); a snapshot
  // restore pays per page actually touched (dirtied or stray). Load and
  // spawn costs are recorded in last_instantiation() but NOT charged to
  // the shared simulated clock (instantiation happens before the run, and
  // equivalent runs must trace identically); in-run restarts charge
  // theirs via the supervisor.
  uint64_t elf_load_base_cycles = 6000;
  uint64_t elf_load_page_cycles = 140;
  uint64_t snapshot_spawn_base_cycles = 400;
  uint64_t snapshot_spawn_page_cycles = 12;
  uint64_t snapshot_restore_base_cycles = 120;
  uint64_t snapshot_restore_page_cycles = 25;
  // Embedded-call transition costs (src/embed/, docs/EMBEDDING.md). A
  // typed host->guest call is cheaper than a general runtime call: no
  // dispatch table walk, no fd work, no scheduler — the host writes the
  // argument registers directly and enters, and the return restores only
  // callee-saved state, like the fast direct yield ("Isolation Without
  // Taxation"'s springboard argument). One full call round-trip
  // (entry + return) therefore costs about one fast_yield_cycles.
  uint64_t embed_call_cycles = 22;          // host -> guest entry
  uint64_t embed_ret_cycles = 14;           // guest return to the host
  uint64_t embed_hostcall_cycles = 22;      // guest -> host callback entry
  uint64_t embed_hostcall_ret_cycles = 14;  // callback resume into guest
  // Marshalled-buffer copy bandwidth (BufIn/BufOut scratch and Shm host
  // views): modeled as a streaming memcpy. Charged per copy direction so
  // per-call marshalling visibly costs more than an amortized shared
  // mapping (bench_transitions measures the gap).
  uint64_t embed_copy_bytes_per_cycle = 16;
};

// What the most recent instantiation (Load / SpawnFromSnapshot /
// RestoreFromSnapshot) did and what it cost under the model above.
struct InstantiationStats {
  enum class Method : uint8_t {
    kNone, kElfLoad, kSnapshotSpawn, kSnapshotRestore
  };
  Method method = Method::kNone;
  uint64_t cycles = 0;          // modeled cost
  uint64_t pages = 0;           // pages in the image
  uint64_t dirty_pages = 0;     // restore: pages re-installed
  uint64_t unmapped_pages = 0;  // restore: stray pages removed
};

// The runtime. One instance per emulated machine.
class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg);

  // Loads an ELF executable into a fresh sandbox slot. Verifies every
  // executable segment first (unless disabled for experiments). Returns
  // the new pid.
  Result<int> Load(std::span<const uint8_t> elf_bytes);

  // Convenience: load an already-parsed image.
  Result<int> LoadImage(const elf::ElfImage& image);

  // ---- Snapshots (src/snapshot/, docs/SNAPSHOTS.md) ----

  // Freezes pid's current state into a slot-relative image. Capture copies
  // no memory: page payloads are shared copy-on-write with the live
  // sandbox. Fails for exited procs.
  Result<snapshot::Snapshot> CaptureSnapshot(int pid) const;

  // Instantiates a fresh sandbox from a snapshot: allocates a pid and
  // slot, installs every page COW (all spawns share payloads until one
  // writes), rebases the register file, and rehydrates the fd table.
  // Costs no simulated cycles (see RuntimeConfig's cost-model comment);
  // the modeled cost lands in last_instantiation(). With start == false
  // the proc is created parked (not enqueued) — the spawn pool's warm
  // state — and runs once Activate() is called.
  Result<int> SpawnFromSnapshot(std::shared_ptr<const snapshot::Snapshot> snap,
                                bool start = true);

  // Enqueues a parked proc created by SpawnFromSnapshot(..., false).
  // Fails if the proc was killed while parked (the spawn pool purges such
  // entries rather than handing out a dead sandbox).
  Status Activate(int pid);

  // Marks (or unmarks) pid so that on exit its slot stays mapped and the
  // proc becomes a zombie even without a waiting parent, making it
  // eligible for Recycle(). The serving dispatcher sets this on every
  // sandbox it hands a request to.
  void set_retain_on_exit(int pid, bool retain) {
    if (Proc* p = proc(pid)) p->retain_on_exit = retain;
  }

  // Rolls an exited-but-retained (or still-live) proc back to its stashed
  // checkpoint and re-parks it: same pid and slot, only diverged pages
  // touched, exit/fault/accounting state cleared, captured output reset.
  // The proc behaves exactly like a fresh SpawnFromSnapshot(..., false)
  // afterwards (Activate() to run it again). Fails for dead/unknown pids
  // or procs without a snapshot.
  Status Recycle(int pid);

  // Forcibly terminates pid from outside the sandbox (parked, zombie, or
  // live). Frees the slot of parentless procs; zombies with a parent stay
  // reapable. No-op error for unknown or already-dead pids.
  Status Kill(int pid, const std::string& why);

  // Rolls pid back to `snap` in place (same pid, slot, ppid, children,
  // captured output): installs only pages whose payload or perms diverged,
  // unmaps stray pages, restores registers/cursors/fds/signal state. The
  // block cache stays valid when nothing was dirtied (no generation bump).
  // Does not charge the clock or reset restart accounting — that is the
  // caller's policy (see Supervisor::Restart).
  Status RestoreFromSnapshot(int pid, const snapshot::Snapshot& snap);

  // What the last Load/SpawnFromSnapshot/RestoreFromSnapshot cost under
  // the deterministic instantiation model.
  const InstantiationStats& last_instantiation() const {
    return last_instantiation_;
  }

  // Replaces (or clears) the checkpoint the restart policy restores from.
  // Clearing forces the legacy ELF-reload restart path, which only works
  // for procs with a retained image.
  void set_restart_snapshot(int pid,
                            std::shared_ptr<const snapshot::Snapshot> snap) {
    if (Proc* p = proc(pid)) p->snapshot = std::move(snap);
  }

  // Runs the scheduler until every process has exited/blocked forever or
  // the instruction budget is exhausted. Returns the number of live
  // (non-zombie, non-dead) processes remaining.
  int RunUntilIdle(uint64_t max_total_insts = ~uint64_t{0});

  // ---- Embedding primitives (src/embed/, docs/EMBEDDING.md) ----
  //
  // The typed lfi::embed::Sandbox API sits on top of these untyped
  // hooks: the runtime owns driving the machine and the fail-closed
  // transition protocol (cookies, stray-rtcall kills, slot-preserving
  // teardown); all marshalling and callback typing lives in src/embed/.

  // Why RunEmbedded handed control back to the host.
  struct EmbedStop {
    enum class Kind : uint8_t {
      kReturned,  // rtcall #19 with the expected cookie; x0/v0 = return
      kHostcall,  // rtcall #18; hostcall_index set, guest suspended in
                  // `saved` (resume with RunEmbedded(kResume))
      kReady,     // rtcall #20 during init; x0 = export-table pointer
      kFault,     // cpu fault / chaos injection / bad rtcall: proc killed
      kExited,    // guest called exit mid-call (zombie, slot retained)
      kBlocked,   // guest blocked on I/O mid-call: killed (fail closed —
                  // nothing can ever unblock it; no scheduler runs here)
      kFuel,      // instruction budget exhausted: killed (fail closed)
      kForged,    // rtcall #19 with a wrong cookie: killed
      kProtocol,  // embed rtcall out of place (ready mid-call, hostcall
                  // during init, call on a dead sandbox): killed
    };
    Kind kind = Kind::kProtocol;
    uint64_t x0 = 0;           // integer return / export-table pointer
    uint64_t v0 = 0;           // vr[0] low lane at return (float returns)
    int hostcall_index = -1;   // kHostcall: x9 at the trap
    emu::CpuState saved;       // kHostcall: full guest state, resumable
    std::string detail;        // failure kinds: human-readable cause
  };

  // How the host is entering the guest (selects the transition charge).
  enum class EmbedEnter : uint8_t {
    kInit,    // initial run to the embed-ready rtcall (uncharged, like
              // instantiation)
    kCall,    // fresh host->guest call (embed_call_cycles)
    kResume,  // resuming after a hostcall (embed_hostcall_ret_cycles)
  };

  // Detaches pid from the scheduler for embedded use: dequeues it, parks
  // it (RunUntilIdle never picks it again), and sets retain_on_exit so
  // faults and exits keep the slot mapped for Recycle().
  Status BeginEmbed(int pid);

  // Installs `enter` (reserved registers re-canonicalized first — the
  // same treatment sigreturn frames get) and drives pid until it returns,
  // traps into a hostcall, faults, or burns `fuel` instructions. All
  // failure kinds kill the proc fail-closed but keep the slot, so the
  // embed layer can Recycle() back to its baseline snapshot.
  EmbedStop RunEmbedded(int pid, const emu::CpuState& enter,
                        uint64_t expected_cookie, uint64_t fuel,
                        EmbedEnter how);

  // Fail-closed kill from the embed layer (bad callback index, marshal
  // failure after entry): kills pid but — unlike Kill() — preserves
  // retain_on_exit, so the slot survives for Recycle().
  void KillEmbedded(int pid, const std::string& why);

  // Carves a fresh read-write guest region out of pid's mmap arena (the
  // shared-memory mapping primitive). Returns the canonical base address.
  Result<uint64_t> GuestAlloc(int pid, uint64_t len);

  // Charges the simulated clock for one host<->guest bulk copy of `bytes`
  // (marshalled buffer scratch, Shm view traffic) at the modeled memcpy
  // bandwidth.
  void ChargeEmbedCopy(uint64_t bytes) {
    if (bytes == 0) return;
    const uint64_t bpc = cfg_.embed_copy_bytes_per_cycle;
    machine_.timing().ChargeFlat(bpc == 0 ? 0 : (bytes + bpc - 1) / bpc);
  }

  Proc* proc(int pid);
  const Proc* proc(int pid) const;
  Vfs& vfs() { return vfs_; }
  emu::Machine& machine() { return machine_; }
  emu::AddressSpace& space() { return space_; }
  uint64_t Cycles() { return machine_.timing().Cycles(); }

  size_t live_procs() const;
  uint64_t slots_in_use() const { return used_slots_; }
  // Allocates a slot without loading (for scalability accounting tests).
  Result<uint64_t> ReserveSlot();

  // Attaches (or detaches, with nullptr) a trace sink: per-pid counters
  // and cycle-stamped events for every timeslice, switch, runtime call,
  // pipe transfer, fork, fault, and exit from here on. Also attaches the
  // machine-level execution counters, whose deltas are attributed to the
  // running pid around each timeslice. The sink must outlive the Runtime
  // or be detached first.
  void set_trace_sink(trace::TraceSink* sink) {
    sink_ = sink;
    machine_.set_counters(sink == nullptr ? nullptr : &exec_counters_);
  }
  trace::TraceSink* trace_sink() const { return sink_; }

  // Replaces pid's fault policy and resource limits (takes effect at the
  // next fault / limit check). No-op for unknown pids.
  void set_policy(int pid, const SupervisorPolicy& policy) {
    if (Proc* p = proc(pid)) p->policy = policy;
  }

  // Attaches (or detaches, with nullptr) the chaos fault-injection
  // engine: cpu faults via the machine's ExecHook, syscall errors and
  // short reads in the dispatcher, scheduler perturbations in
  // RunUntilIdle. The engine must outlive the Runtime or be detached.
  void set_chaos(chaos::ChaosEngine* chaos);

  // Verifier statistics accumulated across every Load (always on; the
  // cost is two clock reads per loaded segment).
  const verifier::VerifyStats& verify_stats() const { return verify_stats_; }

  // Result of the most recent verification rejection (ok == true if no
  // Load has ever been rejected), so callers can report the FailKind.
  const verifier::VerifyResult& last_verify_result() const {
    return last_verify_;
  }

 private:
  int AllocPid() { return next_pid_++; }
  Result<uint64_t> AllocSlot();
  void FreeSlot(Proc* p);

  Status MapSlotCommon(Proc* p);  // call table + stack
  // Maps an image's segments into p's slot and resets heap/mmap bounds
  // and initial CPU state (shared by LoadImage and the restart policy).
  Status MapImage(Proc* p, const elf::ElfImage& image);
  void InitFds(Proc* p);

  // Snapshot plumbing. CaptureInto freezes p into *out (slot-relative).
  // RebaseCpu/RelativizeCpu convert the reserved pointer registers
  // between slot-relative and canonical forms (base | low32 — the guard
  // arithmetic). RestoreFds rebuilds a live fd table from fd records
  // (files reopen by VFS path, pipes rehydrate privately with their
  // buffered bytes).
  Status CaptureInto(const Proc* p, snapshot::Snapshot* out) const;
  static emu::CpuState RebaseCpu(const emu::CpuState& rel, uint64_t base);
  static emu::CpuState RelativizeCpu(const emu::CpuState& cpu);
  std::vector<FileDesc> RestoreFds(const std::vector<snapshot::FdRec>& recs);

  // Scheduler.
  Proc* PickNext();
  void SwitchTo(Proc* p, bool fast);
  void Enqueue(int pid) { ready_.push_back(pid); }
  void DequeuePid(int pid);
  bool TryUnblock(Proc* p);

  // Embedded-call drive loop (RunEmbedded's body after state install).
  EmbedStop DriveEmbedded(Proc* p, uint64_t expected_cookie, uint64_t fuel,
                          bool init);

  // Adds the machine-counter deltas of the timeslice that just ran to
  // p's metrics and emits its sched-slice event. Only called with sink_
  // attached.
  void AttributeSlice(Proc* p, const trace::ExecCounters& before,
                      uint64_t slice_start_cycles, emu::StopReason stop);

  // Runtime-call dispatch.
  void HandleRuntimeEntry(Proc* p);
  void DoExit(Proc* p, int status);
  void KillProc(Proc* p, const std::string& why, int signo = kSigKill);
  void ReapChild(Proc* parent, Proc* child);
  // Records a graceful limit rejection (counter + event).
  void NoteLimit(Proc* p, LimitKind kind, uint64_t observed);
  // True when `fd` may not be allocated under p's fd-table cap.
  bool FdCapReached(Proc* p, uint64_t fd) const;

  // Individual calls; operate on p->cpu registers.
  uint64_t SysWrite(Proc* p, uint64_t fd, uint64_t buf, uint64_t len);
  uint64_t SysRead(Proc* p, uint64_t fd, uint64_t buf, uint64_t len);
  uint64_t SysOpen(Proc* p, uint64_t path, uint64_t flags);
  uint64_t SysClose(Proc* p, uint64_t fd);
  uint64_t SysBrk(Proc* p, uint64_t addr);
  uint64_t SysMmap(Proc* p, uint64_t len);
  uint64_t SysMunmap(Proc* p, uint64_t addr, uint64_t len);
  uint64_t SysFork(Proc* p);
  uint64_t SysPipe(Proc* p, uint64_t fdsptr);
  uint64_t SysLseek(Proc* p, uint64_t fd, uint64_t off, uint64_t whence);

  // Canonicalizes a sandbox pointer: base | low-32-bits (what the guards
  // do in hardware; Section 5.3's fork argument).
  uint64_t Canon(const Proc* p, uint64_t ptr) const {
    return p->base | (ptr & 0xffffffffu);
  }

  friend class Supervisor;

  RuntimeConfig cfg_;
  emu::AddressSpace space_;
  emu::Machine machine_;
  Vfs vfs_;
  Supervisor supervisor_{this};
  chaos::ChaosEngine* chaos_ = nullptr;
  trace::TraceSink* sink_ = nullptr;
  trace::ExecCounters exec_counters_;
  verifier::VerifyStats verify_stats_;
  verifier::VerifyResult last_verify_ = verifier::VerifyResult::Ok(0);
  InstantiationStats last_instantiation_;
  std::map<int, std::unique_ptr<Proc>> procs_;
  std::deque<int> ready_;
  int current_pid_ = 0;  // proc whose state is loaded into machine_
  int next_pid_ = 1;
  uint64_t next_slot_ = 1;
  uint64_t used_slots_ = 0;
  std::vector<uint64_t> free_slots_;
};

}  // namespace lfi::runtime

#endif  // LFI_RUNTIME_RUNTIME_H_
