#include "runtime/spawn_pool.h"

#include <algorithm>

namespace lfi::runtime {

bool SpawnPool::ParkedAlive(int pid) const {
  const Proc* p = rt_->proc(pid);
  return p != nullptr && p->parked && p->state == ProcState::kReady;
}

void SpawnPool::PurgeDead() {
  const size_t before = warm_.size();
  warm_.erase(std::remove_if(warm_.begin(), warm_.end(),
                             [this](int pid) { return !ParkedAlive(pid); }),
              warm_.end());
  dead_parked_ += before - warm_.size();
}

int SpawnPool::Prewarm(int target) {
  PurgeDead();
  int added = 0;
  while (static_cast<int>(warm_.size()) < target) {
    auto pid = rt_->SpawnFromSnapshot(snap_, /*start=*/false);
    if (!pid) break;  // out of slots; the pool simply stays smaller
    warm_.push_back(*pid);
    ++added;
  }
  return added;
}

Result<int> SpawnPool::Take() {
  while (!warm_.empty()) {
    const int pid = warm_.front();
    warm_.pop_front();
    // A parked sandbox can have been killed behind the pool's back;
    // purge the stale entry and keep looking.
    if (rt_->Activate(pid).ok()) {
      ++warm_hits_;
      return pid;
    }
    ++dead_parked_;
  }
  auto pid = rt_->SpawnFromSnapshot(snap_, /*start=*/true);
  if (pid) ++cold_spawns_;
  return pid;
}

bool SpawnPool::Recycle(int pid) {
  if (!rt_->Recycle(pid).ok()) return false;
  warm_.push_back(pid);
  ++recycles_;
  return true;
}

int SpawnPool::Reconcile(int target) {
  PurgeDead();
  const int warm_now = static_cast<int>(warm_.size());
  if (warm_now < target) return Prewarm(target);
  if (warm_now > target) return -Evict(1);
  return 0;
}

int SpawnPool::Evict(int n) {
  int evicted = 0;
  while (evicted < n && !warm_.empty()) {
    const int pid = warm_.back();
    warm_.pop_back();
    if (!ParkedAlive(pid)) {
      ++dead_parked_;
      continue;
    }
    rt_->Kill(pid, "pool eviction");
    ++evicted;
  }
  evictions_ += evicted;
  return evicted;
}

}  // namespace lfi::runtime
