#include "runtime/spawn_pool.h"

namespace lfi::runtime {

int SpawnPool::Prewarm(int target) {
  int added = 0;
  while (static_cast<int>(warm_.size()) < target) {
    auto pid = rt_->SpawnFromSnapshot(snap_, /*start=*/false);
    if (!pid) break;  // out of slots; the pool simply stays smaller
    warm_.push_back(*pid);
    ++added;
  }
  return added;
}

Result<int> SpawnPool::Take() {
  while (!warm_.empty()) {
    const int pid = warm_.front();
    warm_.pop_front();
    // A parked sandbox can have been killed behind the pool's back;
    // activation failing just means this entry is stale.
    if (rt_->Activate(pid).ok()) {
      ++warm_hits_;
      return pid;
    }
  }
  auto pid = rt_->SpawnFromSnapshot(snap_, /*start=*/true);
  if (pid) ++cold_spawns_;
  return pid;
}

}  // namespace lfi::runtime
