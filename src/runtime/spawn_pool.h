// Warm spawn pool: pre-instantiated sandboxes waiting to run.
//
// SpawnFromSnapshot already makes instantiation cheap (COW page install,
// no copies); the pool moves even that cost off the request path. Prewarm
// creates parked sandboxes (SpawnFromSnapshot with start == false — they
// hold a pid and a slot but are never scheduled); Take activates one and
// hands it out, falling back to a cold spawn when the pool is empty. The
// caller refills at its leisure (e.g. between requests).
//
// The pool owns nothing but pids: the Runtime keeps full ownership of the
// procs, so a taken sandbox is indistinguishable from any other running
// one, and killing a parked sandbox out from under the pool is safe (Take
// just cold-spawns when activation fails).
#ifndef LFI_RUNTIME_SPAWN_POOL_H_
#define LFI_RUNTIME_SPAWN_POOL_H_

#include <deque>
#include <memory>

#include "runtime/runtime.h"
#include "snapshot/snapshot.h"

namespace lfi::runtime {

class SpawnPool {
 public:
  SpawnPool(Runtime* rt, std::shared_ptr<const snapshot::Snapshot> snap)
      : rt_(rt), snap_(std::move(snap)) {}

  // Tops the pool up to `target` parked sandboxes. Returns the number
  // actually added (slot exhaustion stops early).
  int Prewarm(int target);

  // Activates a warm sandbox, or cold-spawns one when the pool is empty.
  // The returned pid is enqueued and runs at the next scheduling point.
  Result<int> Take();

  size_t warm() const { return warm_.size(); }
  uint64_t warm_hits() const { return warm_hits_; }
  uint64_t cold_spawns() const { return cold_spawns_; }

 private:
  Runtime* rt_;
  std::shared_ptr<const snapshot::Snapshot> snap_;
  std::deque<int> warm_;
  uint64_t warm_hits_ = 0;
  uint64_t cold_spawns_ = 0;
};

}  // namespace lfi::runtime

#endif  // LFI_RUNTIME_SPAWN_POOL_H_
