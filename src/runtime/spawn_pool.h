// Warm spawn pool: pre-instantiated sandboxes waiting to run.
//
// SpawnFromSnapshot already makes instantiation cheap (COW page install,
// no copies); the pool moves even that cost off the request path. Prewarm
// creates parked sandboxes (SpawnFromSnapshot with start == false — they
// hold a pid and a slot but are never scheduled); Take activates one and
// hands it out, falling back to a cold spawn when the pool is empty. The
// caller refills at its leisure (e.g. between requests).
//
// The pool owns nothing but pids: the Runtime keeps full ownership of the
// procs, so a taken sandbox is indistinguishable from any other running
// one, and killing a parked sandbox out from under the pool is safe: Take
// and Prewarm purge dead entries (counted in dead_parked()) so warm()
// never over-reports live capacity, and Take cold-spawns only when no
// live parked sandbox remains.
//
// The serving control plane (src/serve/, docs/SERVING.md) adds two more
// lifecycle moves: Recycle re-parks a finished sandbox after rolling it
// back to the pool image's checkpoint (same pid, same slot, only dirtied
// pages touched), and Evict kills parked sandboxes when the sizing policy
// wants the pool smaller.
#ifndef LFI_RUNTIME_SPAWN_POOL_H_
#define LFI_RUNTIME_SPAWN_POOL_H_

#include <deque>
#include <memory>

#include "runtime/runtime.h"
#include "snapshot/snapshot.h"

namespace lfi::runtime {

class SpawnPool {
 public:
  SpawnPool(Runtime* rt, std::shared_ptr<const snapshot::Snapshot> snap)
      : rt_(rt), snap_(std::move(snap)) {}

  // Tops the pool up to `target` live parked sandboxes (dead entries are
  // purged first, so the target counts real capacity). Returns the number
  // actually added (slot exhaustion stops early).
  int Prewarm(int target);

  // Activates a warm sandbox, or cold-spawns one when the pool is empty.
  // The returned pid is enqueued and runs at the next scheduling point.
  Result<int> Take();

  // Returns a finished (exited-but-retained, see
  // Runtime::set_retain_on_exit) sandbox to the pool: rolls it back to
  // its stashed checkpoint and re-parks it under the same pid and slot.
  // Returns false when the sandbox cannot be recycled — the caller should
  // retire it (Runtime::Kill) and Prewarm a replacement instead.
  bool Recycle(int pid);

  // Kills up to `n` parked sandboxes (pool shrink). Returns the number
  // actually evicted.
  int Evict(int n);

  // One sizing-policy step: purge dead entries, then move warm capacity
  // toward `target` — top up fully when below (warmth must get ahead of
  // demand) but evict at most one per call when above (gradual drain, so
  // an oscillating load does not thrash spawn/kill cycles). Returns the
  // net change in warm capacity. The serving sizer calls this once per
  // control-plane step with whatever target its policy computed.
  int Reconcile(int target);

  // Drops entries whose parked sandbox was killed behind the pool's back
  // (counted in dead_parked()). Called by Prewarm and Take; public so
  // sizing policies can reconcile warm() on demand.
  void PurgeDead();

  size_t warm() const { return warm_.size(); }
  const std::deque<int>& warm_pids() const { return warm_; }
  uint64_t warm_hits() const { return warm_hits_; }
  uint64_t cold_spawns() const { return cold_spawns_; }
  uint64_t dead_parked() const { return dead_parked_; }
  uint64_t recycles() const { return recycles_; }
  uint64_t evictions() const { return evictions_; }

 private:
  // True if pid is a live parked sandbox the pool may hand out.
  bool ParkedAlive(int pid) const;

  Runtime* rt_;
  std::shared_ptr<const snapshot::Snapshot> snap_;
  std::deque<int> warm_;
  uint64_t warm_hits_ = 0;
  uint64_t cold_spawns_ = 0;
  uint64_t dead_parked_ = 0;
  uint64_t recycles_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace lfi::runtime

#endif  // LFI_RUNTIME_SPAWN_POOL_H_
