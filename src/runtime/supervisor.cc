#include "runtime/supervisor.h"

#include <algorithm>
#include <cstring>

#include "runtime/runtime.h"

namespace lfi::runtime {

namespace {

// Little-endian field accessors for the signal frame buffer.
void PutU64(uint8_t* buf, uint64_t off, uint64_t v) {
  std::memcpy(buf + off, &v, 8);
}
uint64_t GetU64(const uint8_t* buf, uint64_t off) {
  uint64_t v;
  std::memcpy(&v, buf + off, 8);
  return v;
}

}  // namespace

const char* FaultActionName(FaultAction a) {
  switch (a) {
    case FaultAction::kKill: return "kill";
    case FaultAction::kSignal: return "signal";
    case FaultAction::kRestart: return "restart";
  }
  return "?";
}

const char* DispositionName(Disposition d) {
  switch (d) {
    case Disposition::kNone: return "none";
    case Disposition::kKilled: return "killed";
    case Disposition::kSignaled: return "signaled";
    case Disposition::kRestarted: return "restarted";
  }
  return "?";
}

int FaultSignal(emu::CpuFault::Kind kind) {
  switch (kind) {
    case emu::CpuFault::Kind::kMemory:
    case emu::CpuFault::Kind::kFetch:
      return kSigSegv;
    case emu::CpuFault::Kind::kDecode:
    case emu::CpuFault::Kind::kIllegal:
      return kSigIll;
    case emu::CpuFault::Kind::kPcAlign:
      return kSigBus;
  }
  return kSigKill;
}

uint64_t Supervisor::NextCookie() {
  // SplitMix64 step: deterministic per-delivery nonces, never exposed
  // before the matching frame is written.
  uint64_t z = (cookie_state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Disposition Supervisor::HandleFault(Proc* p, const emu::CpuFault& f,
                                    bool injected) {
  const int signo = FaultSignal(f.kind);
  std::string detail = f.detail + " pc=" + std::to_string(f.pc);
  if (injected) detail += " [chaos]";
  p->fault_injected = injected;
  switch (p->policy.on_fault) {
    case FaultAction::kSignal: {
      std::string why_not;
      if (DeliverSignal(p, f, signo, &why_not)) {
        p->disposition = Disposition::kSignaled;
        return Disposition::kSignaled;
      }
      detail += " (" + why_not + ")";
      break;
    }
    case FaultAction::kRestart:
      if (Restart(p)) return Disposition::kRestarted;
      detail += " (restart budget exhausted)";
      break;
    case FaultAction::kKill:
      break;
  }
  rt_->KillProc(p, detail, signo);
  return Disposition::kKilled;
}

bool Supervisor::DeliverSignal(Proc* p, const emu::CpuFault& f, int signo,
                               std::string* why_not) {
  if (p->sig.in_handler) {
    *why_not = "double fault in signal handler";
    return false;
  }
  const uint64_t handler = p->sig.handlers[signo];
  if (handler == 0) {
    *why_not = "no handler for signal " + std::to_string(signo);
    return false;
  }
  // Frame goes below the interrupted sp, 16-byte aligned. Canon keeps the
  // slot arithmetic honest even if sp was left un-canonical.
  const uint64_t sp = rt_->Canon(p, p->cpu.sp);
  const uint64_t frame = rt_->Canon(p, (sp - kSigFrameBytes) & ~uint64_t{15});
  // Requiring a mapped read+write range means a blown stack cannot recurse
  // into delivery: it degrades to a kill (the Unix SIGSEGV-on-the-
  // alternate-stackless analogue).
  if (!rt_->space_.Check(frame, kSigFrameBytes,
                         emu::kPermRead | emu::kPermWrite)) {
    *why_not = "no writable stack for signal frame";
    return false;
  }

  uint8_t buf[kSigFrameBytes] = {};
  const uint64_t cookie = NextCookie();
  PutU64(buf, kSigOffMagic, kSigFrameMagic);
  PutU64(buf, kSigOffCookie, cookie);
  PutU64(buf, kSigOffSigno, static_cast<uint64_t>(signo));
  PutU64(buf, kSigOffFaultAddr,
         f.kind == emu::CpuFault::Kind::kMemory ? f.mem.addr : 0);
  PutU64(buf, kSigOffPc, p->cpu.pc);
  PutU64(buf, kSigOffSp, p->cpu.sp);
  const uint64_t nzcv = (uint64_t{p->cpu.n} << 31) | (uint64_t{p->cpu.z} << 30) |
                        (uint64_t{p->cpu.c} << 29) | (uint64_t{p->cpu.v} << 28);
  PutU64(buf, kSigOffNzcv, nzcv);
  for (int r = 0; r < 31; ++r) {
    PutU64(buf, kSigOffRegs + 8 * static_cast<uint64_t>(r), p->cpu.x[r]);
  }
  if (!rt_->space_.HostWrite(frame, buf).ok()) {
    *why_not = "signal frame write failed";
    return false;
  }

  p->sig.in_handler = true;
  p->sig.cookie = cookie;
  p->sig.frame_addr = frame;
  ++p->sig.delivered;
  p->cpu.x[0] = static_cast<uint64_t>(signo);
  p->cpu.x[1] = frame;
  p->cpu.sp = frame;
  p->cpu.pc = handler;
  rt_->machine_.timing().ChargeFlat(rt_->cfg_.signal_deliver_cycles);
  rt_->Enqueue(p->pid);
  if (rt_->sink_ != nullptr) {
    rt_->sink_->metrics(p->pid).Add(trace::Counter::kSignalsDelivered);
    rt_->sink_->EmitInstant(trace::EventKind::kSignalDeliver, p->pid,
                            rt_->Cycles(), static_cast<uint64_t>(signo),
                            frame);
  }
  return true;
}

bool Supervisor::Restart(Proc* p) {
  if (p->snapshot == nullptr && p->image == nullptr) return false;
  // A healthy run past the reset window clears the crash-loop record:
  // the budget and the exponential backoff both start over, so a
  // long-lived tenant that faults rarely is not treated like a sandbox
  // that crashes on arrival. cpu_cycles counts only the current
  // incarnation (restarts zero it below), so it measures exactly how
  // long the sandbox ran since the last restart.
  const uint64_t window = p->policy.restart_reset_after_cycles;
  if (p->restarts > 0 && window != 0 && p->cpu_cycles >= window) {
    p->restarts = 0;
  }
  if (p->restarts >= p->policy.restart_budget) return false;
  ++p->restarts;
  ++p->total_restarts;

  // Capped exponential backoff, charged to the shared clock: a crash-
  // looping sandbox pays, siblings merely observe later timestamps.
  const uint32_t shift = std::min<uint32_t>(p->restarts - 1, 63);
  const uint64_t base = p->policy.restart_backoff_base_cycles;
  // If base << shift overflows (round trip loses bits), the true value
  // exceeds any cap; otherwise take the shifted value, capped.
  uint64_t backoff = p->policy.restart_backoff_cap_cycles;
  if ((base << shift) >> shift == base) {
    backoff = std::min(base << shift, p->policy.restart_backoff_cap_cycles);
  }
  rt_->machine_.timing().ChargeFlat(backoff);

  if (p->snapshot != nullptr) {
    // Preferred path: roll back to the post-instantiation checkpoint.
    // Only pages the crashed incarnation dirtied are re-installed, and
    // the modeled restore cost scales with that count, not the image
    // size. Works for forked children too (they stash a checkpoint at
    // fork; the image path below cannot restart them).
    if (!rt_->RestoreFromSnapshot(p->pid, *p->snapshot).ok()) return false;
    rt_->machine_.timing().ChargeFlat(rt_->last_instantiation_.cycles);
  } else {
    // Legacy path (set_restart_snapshot(pid, nullptr) forces it): tear
    // down the old incarnation — descriptors first (pipe endpoint counts
    // must drop so peers see EOF/EPIPE), then every mapping in the slot —
    // and remap the retained ELF image. The slot and pid are kept, which
    // is the point of restart vs. reload.
    for (uint64_t fd = 0; fd < p->fds.size(); ++fd) {
      if (p->fds[fd].kind != FileDesc::Kind::kFree) rt_->SysClose(p, fd);
    }
    for (const auto& [off, range] : p->mappings) {
      (void)rt_->space_.Unmap(p->base + off, range.first);
    }
    p->mappings.clear();
    if (!rt_->MapSlotCommon(p).ok() || !rt_->MapImage(p, *p->image).ok()) {
      // The image mapped before, so this is unreachable short of host
      // exhaustion; degrade to kill.
      return false;
    }
    rt_->InitFds(p);
    // Remap service time, mirroring the mmap cost model: the restart is
    // not free even with zero backoff.
    uint64_t pages = 0;
    for (const auto& [off, range] : p->mappings) pages += range.first / kPage;
    rt_->machine_.timing().ChargeFlat(400 + 20 * pages);
    // The reloaded image starts with no handlers and no live mmaps; the
    // snapshot path restores both to their checkpoint values instead.
    p->sig = SignalState{};
    p->mmap_bytes = 0;
  }
  p->cpu_cycles = 0;
  p->insts_retired = 0;
  p->state = ProcState::kReady;
  p->exit_kind = ExitKind::kRunning;
  p->exit_status = 0;
  p->disposition = Disposition::kRestarted;
  rt_->Enqueue(p->pid);
  if (rt_->sink_ != nullptr) {
    rt_->sink_->metrics(p->pid).Add(trace::Counter::kRestarts);
    rt_->sink_->EmitInstant(trace::EventKind::kProcRestart, p->pid,
                            rt_->Cycles(), p->restarts, backoff);
  }
  return true;
}

bool Supervisor::EnforceCpuQuota(Proc* p) {
  const uint64_t quota = p->policy.limits.max_cpu_cycles;
  if (quota == 0 || p->cpu_cycles <= quota) return false;
  if (rt_->sink_ != nullptr) {
    rt_->sink_->metrics(p->pid).Add(trace::Counter::kLimitRejections);
    rt_->sink_->EmitInstant(trace::EventKind::kLimitHit, p->pid,
                            rt_->Cycles(),
                            static_cast<uint64_t>(LimitKind::kCpu),
                            p->cpu_cycles);
  }
  // The quota is a watchdog, not a degradable limit: policies other than
  // kill do not apply (a restarting runaway would just run away again
  // with a fresh budget — the caller asked for a hard stop).
  rt_->KillProc(p,
                "cpu quota exceeded (" + std::to_string(p->cpu_cycles) +
                    " > " + std::to_string(quota) + " cycles)",
                kSigXcpu);
  return true;
}

uint64_t Supervisor::SysSigaction(Proc* p, uint64_t signo, uint64_t handler) {
  if (signo == 0 || signo >= kNumSignals) {
    return static_cast<uint64_t>(-22);  // EINVAL
  }
  if (handler != 0 && (handler & 3) != 0) {
    return static_cast<uint64_t>(-22);  // handlers must be 4-aligned
  }
  p->sig.handlers[signo] = handler == 0 ? 0 : rt_->Canon(p, handler);
  return 0;
}

void Supervisor::SysSigreturn(Proc* p, uint64_t frame_ptr) {
  const uint64_t frame = rt_->Canon(p, frame_ptr);
  if (!p->sig.in_handler || frame != p->sig.frame_addr) {
    rt_->KillProc(p, "sigreturn with no matching signal frame", kSigSegv);
    return;
  }
  uint8_t buf[kSigFrameBytes];
  if (!rt_->space_.HostRead(frame, buf).ok()) {
    rt_->KillProc(p, "sigreturn frame unreadable", kSigSegv);
    return;
  }
  if (GetU64(buf, kSigOffMagic) != kSigFrameMagic ||
      GetU64(buf, kSigOffCookie) != p->sig.cookie) {
    rt_->KillProc(p, "forged sigreturn frame", kSigSegv);
    return;
  }
  for (int r = 0; r < 31; ++r) {
    p->cpu.x[r] = GetU64(buf, kSigOffRegs + 8 * static_cast<uint64_t>(r));
  }
  const uint64_t nzcv = GetU64(buf, kSigOffNzcv);
  p->cpu.n = (nzcv >> 31) & 1;
  p->cpu.z = (nzcv >> 30) & 1;
  p->cpu.c = (nzcv >> 29) & 1;
  p->cpu.v = (nzcv >> 28) & 1;
  // Re-canonicalize everything a guard or the runtime relies on: even a
  // bit-flipped (but cookie-valid) frame must not produce an out-of-slot
  // reserved register. Shared with snapshot rebase and embedded-call
  // entry/callback-return — every host-installed frame gets this.
  p->cpu.sp = GetU64(buf, kSigOffSp);
  p->cpu.pc = GetU64(buf, kSigOffPc);
  emu::CanonicalizeSandboxRegs(p->cpu, p->base);
  p->sig.in_handler = false;
  p->sig.cookie = 0;
  p->sig.frame_addr = 0;
  rt_->machine_.timing().ChargeFlat(rt_->cfg_.sigreturn_cycles);
  if (rt_->sink_ != nullptr) {
    rt_->sink_->metrics(p->pid).Add(trace::Counter::kSigreturns);
    rt_->sink_->EmitInstant(trace::EventKind::kSigreturn, p->pid,
                            rt_->Cycles(), p->cpu.pc);
  }
}

}  // namespace lfi::runtime
