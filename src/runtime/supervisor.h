// Fault containment and recovery policies (the robustness layer on top of
// Section 5.3's runtime).
//
// Today a CpuFault flows straight into KillProc. The supervisor makes that
// path policy-driven, per sandbox:
//
//   kill     terminate the sandbox (previous behavior; always the fallback)
//   signal   deliver a Unix-style signal (SIGSEGV/SIGILL/SIGBUS) to a
//            handler the sandbox registered via the sigaction runtime call;
//            a fault while the handler runs (double fault) kills
//   restart  reap the proc, keep its pid and 4GiB slot, re-load the image
//            from scratch with capped exponential backoff, up to a budget
//
// The signal ABI: on delivery the supervisor pushes a 320-byte frame onto
// the sandbox stack (16-byte aligned, below sp), then enters the handler
// with x0 = signo, x1 = frame address, sp = frame address. The frame is
//
//   +0    magic   "LFISIGFR" (0x4C46495349474652)
//   +8    cookie  per-delivery nonce; checked by sigreturn so a sandbox
//                 cannot forge or replay a frame
//   +16   signo
//   +24   fault address (data faults) or 0
//   +32   interrupted pc   (writable: handlers may redirect the resume)
//   +40   interrupted sp
//   +48   nzcv (bits 31..28)
//   +56   x0..x30 (31 * 8 bytes)
//
// The handler must leave via the sigreturn runtime call with x0 = frame
// address; the supervisor validates magic + cookie + address, restores the
// frame's register state (re-canonicalizing every reserved register, so a
// tampered frame still cannot escape the slot), and resumes. Any
// validation failure kills the sandbox. Vector registers are not saved:
// handlers that use them clobber the interrupted context's.
//
// Resource limits (graceful degradation, not kills — except the cpu
// quota, which is a watchdog): see ResourceLimits.
#ifndef LFI_RUNTIME_SUPERVISOR_H_
#define LFI_RUNTIME_SUPERVISOR_H_

#include <array>
#include <cstdint>
#include <string>

#include "emu/machine.h"

namespace lfi::runtime {

class Runtime;
struct Proc;

// What to do when a sandbox faults.
enum class FaultAction : uint8_t { kKill, kSignal, kRestart };

// How a fault was ultimately resolved (recorded on the Proc; surfaced by
// lfi-run on nonzero exit).
enum class Disposition : uint8_t { kNone, kKilled, kSignaled, kRestarted };

const char* FaultActionName(FaultAction a);
const char* DispositionName(Disposition d);

// Unix-style signal numbers used by the delivery ABI.
inline constexpr int kSigIll = 4;    // kDecode, kIllegal
inline constexpr int kSigTrap = 5;   // brk debug trap
inline constexpr int kSigBus = 7;    // kPcAlign
inline constexpr int kSigKill = 9;   // generic runtime kill
inline constexpr int kSigSegv = 11;  // kMemory, kFetch
inline constexpr int kSigXcpu = 24;  // cpu-quota watchdog
inline constexpr int kSigSys = 31;   // bad runtime call
inline constexpr int kNumSignals = 32;

// Maps a fault kind to the signal it raises.
int FaultSignal(emu::CpuFault::Kind kind);

// Per-sandbox resource ceilings. 0 = unlimited. Every limit except the
// cpu quota degrades gracefully: the offending call returns an errno and
// the sandbox keeps running; no host-side allocation happens first.
struct ResourceLimits {
  uint64_t max_cpu_cycles = 0;    // watchdog: kill past this (SIGXCPU);
                                  // overshoot is at most one timeslice
  uint64_t max_heap_bytes = 0;    // brk above brk_start+N -> ENOMEM
  uint64_t max_mmap_bytes = 0;    // total live mmap bytes -> ENOMEM
  uint64_t max_fds = 0;           // fd-table size cap -> EMFILE
  uint64_t max_pipe_buffer_bytes = 0;  // per-pipe cap; full -> EAGAIN
                                       // instead of blocking
};

// Which limit fired (arg0 of the kLimitHit trace event).
enum class LimitKind : uint8_t { kCpu = 0, kHeap, kMmap, kFds, kPipeBuf };

// The per-sandbox policy. Applied at Load from RuntimeConfig's default,
// inherited across fork, overridable via Runtime::set_policy.
struct SupervisorPolicy {
  FaultAction on_fault = FaultAction::kKill;
  uint32_t restart_budget = 3;  // restarts before the policy degrades to kill
  uint64_t restart_backoff_base_cycles = 20000;     // doubles per restart
  uint64_t restart_backoff_cap_cycles = 10000000;   // backoff ceiling
  // Crash-loop decay: if the sandbox ran at least this many cycles since
  // its last restart, the restart count (and with it the backoff
  // exponent and the budget) resets before the next fault is judged. A
  // tenant that faults once a day is then indistinguishable from one
  // that never faulted, while a crash loop (short incarnations) still
  // burns through the budget. 0 disables the decay (legacy behavior:
  // budget and backoff only ever grow).
  uint64_t restart_reset_after_cycles = 1000000;
  ResourceLimits limits;
};

// Signal-delivery state carried by each Proc.
struct SignalState {
  std::array<uint64_t, kNumSignals> handlers{};  // canonical addr; 0 = none
  bool in_handler = false;
  uint64_t cookie = 0;      // expected by the next sigreturn
  uint64_t frame_addr = 0;  // canonical address of the live frame
  uint32_t delivered = 0;   // total deliveries (reporting)
};

// Signal-frame layout constants (documented in the file comment and
// docs/FAULTS.md; tests build frames from these).
inline constexpr uint64_t kSigFrameMagic = 0x4C46495349474652ull;
inline constexpr uint64_t kSigFrameBytes = 320;
inline constexpr uint64_t kSigOffMagic = 0;
inline constexpr uint64_t kSigOffCookie = 8;
inline constexpr uint64_t kSigOffSigno = 16;
inline constexpr uint64_t kSigOffFaultAddr = 24;
inline constexpr uint64_t kSigOffPc = 32;
inline constexpr uint64_t kSigOffSp = 40;
inline constexpr uint64_t kSigOffNzcv = 48;
inline constexpr uint64_t kSigOffRegs = 56;  // x0..x30

// The fault router. Owned by the Runtime; every CpuFault and limit check
// flows through here so policy application lives in one place.
class Supervisor {
 public:
  explicit Supervisor(Runtime* rt) : rt_(rt) {}

  // Applies p's policy to a fault. `injected` marks chaos-engine faults
  // (annotated in the kill detail). Returns what was done; on kKilled the
  // proc is a zombie afterwards.
  Disposition HandleFault(Proc* p, const emu::CpuFault& f, bool injected);

  // Watchdog: kills p (SIGXCPU) if its cycle quota is exhausted. Returns
  // true if it killed. Called by the scheduler after every timeslice, so
  // a runaway loop dies within one quantum of the quota.
  bool EnforceCpuQuota(Proc* p);

  // Runtime-call backends (dispatched from HandleRuntimeEntry).
  // sigaction(signo, handler): registers/clears a handler; returns 0 or
  // -EINVAL. handler must be 4-aligned; 0 clears.
  uint64_t SysSigaction(Proc* p, uint64_t signo, uint64_t handler);
  // sigreturn(frame): validates and restores the frame, or kills. The
  // proc's full register state (including pc and x0) is overwritten, so
  // the dispatcher must not write a return value afterwards.
  void SysSigreturn(Proc* p, uint64_t frame);

 private:
  bool DeliverSignal(Proc* p, const emu::CpuFault& f, int signo,
                     std::string* why_not);
  bool Restart(Proc* p);
  uint64_t NextCookie();

  Runtime* rt_;
  uint64_t cookie_state_ = 0x5eedc0de5eedc0deull;
};

}  // namespace lfi::runtime

#endif  // LFI_RUNTIME_SUPERVISOR_H_
