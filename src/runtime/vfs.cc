#include "runtime/vfs.h"

namespace lfi::runtime {

Vfs::Vfs() {
  policy_ = [](const std::string& path, int) {
    return path.rfind("/host", 0) != 0;  // deny the /host subtree
  };
}

void Vfs::Install(const std::string& path, std::vector<uint8_t> contents) {
  auto node = std::make_shared<VfsNode>();
  node->data = std::move(contents);
  files_[path] = std::move(node);
}

void Vfs::Install(const std::string& path, const std::string& contents) {
  Install(path, std::vector<uint8_t>(contents.begin(), contents.end()));
}

std::shared_ptr<VfsNode> Vfs::Open(const std::string& path, int flags,
                                   int* err) {
  *err = 0;
  if (policy_ && !policy_(path, flags)) {
    *err = -13;  // EACCES
    return nullptr;
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!(flags & kOpenCreate)) {
      *err = -2;  // ENOENT
      return nullptr;
    }
    auto node = std::make_shared<VfsNode>();
    files_[path] = node;
    return node;
  }
  if (flags & kOpenTrunc) it->second->data.clear();
  return it->second;
}

const VfsNode* Vfs::Lookup(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second.get();
}

}  // namespace lfi::runtime
