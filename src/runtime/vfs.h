// In-memory virtual filesystem with a path policy.
//
// The LFI runtime mediates all file access on behalf of sandboxes: "the
// runtime first checks the arguments for correctness. For example, the
// runtime can disallow all access to certain directories" (Section 5.3).
// This VFS is the mediated backing store - a small Unix-like namespace
// held in memory.
#ifndef LFI_RUNTIME_VFS_H_
#define LFI_RUNTIME_VFS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lfi::runtime {

// open() flags (subset of POSIX).
inline constexpr int kOpenRead = 0;
inline constexpr int kOpenWrite = 1;
inline constexpr int kOpenRdWr = 2;
inline constexpr int kOpenCreate = 0100;
inline constexpr int kOpenTrunc = 01000;
inline constexpr int kOpenAppend = 02000;

// A regular file's contents, shared between the VFS tree and open fds.
struct VfsNode {
  std::vector<uint8_t> data;
};

// Policy callback: may the sandbox open `path` with `flags`?
using PathPolicy = std::function<bool(const std::string& path, int flags)>;

// The filesystem: a flat map of absolute paths to file nodes.
class Vfs {
 public:
  Vfs();

  // Installs a policy; default allows everything except paths under
  // "/host".
  void set_policy(PathPolicy policy) { policy_ = std::move(policy); }

  // Creates or replaces a file (host-side setup, not policy checked).
  void Install(const std::string& path, std::vector<uint8_t> contents);
  void Install(const std::string& path, const std::string& contents);

  // Opens a file per the policy. Returns the node or null with errno-style
  // negative error in *err (-EACCES = -13, -ENOENT = -2).
  std::shared_ptr<VfsNode> Open(const std::string& path, int flags,
                                int* err);

  // Host-side read of a file's contents; null if absent.
  const VfsNode* Lookup(const std::string& path) const;

 private:
  std::map<std::string, std::shared_ptr<VfsNode>> files_;
  PathPolicy policy_;
};

}  // namespace lfi::runtime

#endif  // LFI_RUNTIME_VFS_H_
