#include "serve/serve.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "chaos/chaos.h"

namespace lfi::serve {

namespace {

constexpr uint64_t kNever = ~uint64_t{0};
// Clock advance used when nothing is runnable but work is pending, so
// deadlines (and with them deadline shedding) always make progress.
constexpr uint64_t kIdleStepCycles = 1000;
// Domain separator for the retry-jitter stream: independent of the
// traffic arrival stream so adding retries never perturbs arrival times.
constexpr uint64_t kRetrySeedDomain = 0x52455452;  // "RETR"

}  // namespace

const char* TrafficKindName(TrafficKind k) {
  switch (k) {
    case TrafficKind::kPoisson: return "poisson";
    case TrafficKind::kBursty: return "bursty";
    case TrafficKind::kClosed: return "closed";
  }
  return "?";
}

bool TrafficKindByName(const std::string& name, TrafficKind* out) {
  if (name == "poisson") { *out = TrafficKind::kPoisson; return true; }
  if (name == "bursty") { *out = TrafficKind::kBursty; return true; }
  if (name == "closed") { *out = TrafficKind::kClosed; return true; }
  return false;
}

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

// ---- TrafficGen ----

TrafficGen::TrafficGen(const TrafficConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  for (uint32_t w : cfg_.tenant_weights) weight_total_ += w;
  switch (cfg_.kind) {
    case TrafficKind::kPoisson:
      next_arrival_ = ExpGap(1000000 / std::max<uint64_t>(
                                           1, cfg_.rate_per_mcycle));
      break;
    case TrafficKind::kBursty:
      next_arrival_ = cfg_.burst_period_cycles;
      burst_left_ = cfg_.burst_size;
      break;
    case TrafficKind::kClosed:
      client_next_.resize(std::max<uint32_t>(1, cfg_.closed_clients));
      // Staggered starts: all clients issuing at cycle 0 would be a
      // burst, not a steady closed loop.
      for (auto& t : client_next_) t = rng_.Below(cfg_.think_cycles + 1);
      break;
  }
}

uint64_t TrafficGen::ExpGap(uint64_t mean_cycles) {
  // Inverse-CDF exponential sampling. The 53-bit mantissa draw is biased
  // away from zero so log() never sees it.
  const double u =
      static_cast<double>((rng_.Next() >> 11) + 1) / 9007199254740992.0;
  const double gap = -static_cast<double>(mean_cycles) * std::log(u);
  if (gap < 1.0) return 1;
  return static_cast<uint64_t>(gap);
}

uint32_t TrafficGen::PickTenant() {
  const uint32_t tenants = std::max<uint32_t>(1, cfg_.tenants);
  if (weight_total_ == 0 || cfg_.tenant_weights.size() != tenants) {
    return static_cast<uint32_t>(rng_.Below(tenants));
  }
  uint64_t draw = rng_.Below(weight_total_);
  for (uint32_t t = 0; t < tenants; ++t) {
    const uint64_t w = cfg_.tenant_weights[t];
    if (draw < w) return t;
    draw -= w;
  }
  return tenants - 1;  // unreachable: draw < weight_total_
}

void TrafficGen::ScheduleNextOpenLoop() {
  switch (cfg_.kind) {
    case TrafficKind::kPoisson:
      next_arrival_ += ExpGap(1000000 / std::max<uint64_t>(
                                            1, cfg_.rate_per_mcycle));
      break;
    case TrafficKind::kBursty:
      if (burst_left_ == 0) {
        next_arrival_ += cfg_.burst_period_cycles;
        burst_left_ = cfg_.burst_size;
      }
      break;
    case TrafficKind::kClosed:
      break;
  }
}

uint64_t TrafficGen::NextArrival() const {
  if (Drained()) return kNever;
  if (cfg_.kind == TrafficKind::kClosed) {
    uint64_t soonest = kNever;
    for (uint64_t t : client_next_) soonest = std::min(soonest, t);
    return soonest;
  }
  return next_arrival_;
}

bool TrafficGen::Pop(uint64_t now, Request* out) {
  if (Drained()) return false;
  if (cfg_.kind == TrafficKind::kClosed) {
    uint32_t best = 0;
    uint64_t best_t = kNever;
    for (uint32_t c = 0; c < client_next_.size(); ++c) {
      if (client_next_[c] < best_t) { best_t = client_next_[c]; best = c; }
    }
    if (best_t == kNever || best_t > now) return false;
    client_next_[best] = kNever;  // in flight until OnComplete
    out->id = issued_++;
    out->client = best;
    out->tenant = best % std::max<uint32_t>(1, cfg_.tenants);
    out->arrive_cycles = best_t;
    return true;
  }
  if (next_arrival_ > now) return false;
  out->id = issued_++;
  out->client = 0;
  out->tenant = PickTenant();
  out->arrive_cycles = next_arrival_;
  if (cfg_.kind == TrafficKind::kBursty && burst_left_ > 0) --burst_left_;
  ScheduleNextOpenLoop();
  return true;
}

void TrafficGen::OnComplete(const Request& r, uint64_t now) {
  if (cfg_.kind != TrafficKind::kClosed || Drained()) return;
  if (r.client < client_next_.size() && client_next_[r.client] == kNever) {
    client_next_[r.client] = now + cfg_.think_cycles;
  }
}

// ---- ValidateServeConfig ----

bool ValidateServeConfig(const ServeConfig& cfg, std::string* err) {
  auto fail = [err](const std::string& m) {
    if (err != nullptr) *err = m;
    return false;
  };
  const TrafficConfig& t = cfg.traffic;
  if (t.requests == 0) return fail("traffic.requests must be > 0");
  if (t.tenants == 0) return fail("traffic.tenants must be > 0");
  if (t.kind == TrafficKind::kPoisson && t.rate_per_mcycle == 0) {
    return fail("poisson arrivals need traffic.rate_per_mcycle > 0");
  }
  if (t.kind == TrafficKind::kBursty &&
      (t.burst_size == 0 || t.burst_period_cycles == 0)) {
    return fail("bursty arrivals need burst_size and burst_period_cycles > 0");
  }
  if (t.kind == TrafficKind::kClosed && t.closed_clients == 0) {
    return fail("closed-loop arrivals need traffic.closed_clients > 0");
  }
  if (!t.tenant_weights.empty()) {
    if (t.tenant_weights.size() != t.tenants) {
      return fail("traffic.tenant_weights must have one entry per tenant");
    }
    uint64_t total = 0;
    for (uint32_t w : t.tenant_weights) total += w;
    if (total == 0) return fail("traffic.tenant_weights must not be all zero");
  }
  if (cfg.admission.max_queue_depth == 0) {
    return fail("admission.max_queue_depth must be > 0");
  }
  if (cfg.max_concurrency == 0) return fail("max_concurrency must be > 0");
  if (cfg.pool_min > cfg.pool_max) return fail("pool_min must be <= pool_max");
  if (cfg.slice_insts == 0) return fail("slice_insts must be > 0");
  if (cfg.max_steps == 0) return fail("max_steps must be > 0");
  for (const QosTier& tier : cfg.tiers) {
    if (tier.slo_cycles == 0) {
      return fail("tier '" + tier.name +
                  "' slo_cycles must be > 0 (deadlines drive shedding and "
                  "retry give-up)");
    }
  }
  auto check_quota = [&](const TenantQuota& q, const std::string& who,
                         std::string* msg) {
    if (q.weight == 0) { *msg = who + " weight must be > 0"; return false; }
    if (q.max_queued > cfg.admission.max_queue_depth) {
      *msg = who + " max_queued exceeds admission.max_queue_depth";
      return false;
    }
    if (q.max_inflight > cfg.max_concurrency) {
      *msg = who + " max_inflight exceeds max_concurrency";
      return false;
    }
    return true;
  };
  std::string msg;
  if (!check_quota(cfg.default_quota, "default_quota", &msg)) return fail(msg);
  for (const auto& [tenant, q] : cfg.quotas) {
    if (!check_quota(q, "quota for tenant " + std::to_string(tenant), &msg)) {
      return fail(msg);
    }
  }
  if (cfg.retry.budget > 0) {
    if (cfg.retry.backoff_cap_cycles == 0) {
      return fail("retry.backoff_cap_cycles must be > 0");
    }
    if (cfg.retry.backoff_base_cycles > cfg.retry.backoff_cap_cycles) {
      return fail("retry.backoff_base_cycles exceeds backoff_cap_cycles");
    }
    if (cfg.retry.jitter_percent >= 100) {
      return fail("retry.jitter_percent must be < 100");
    }
  }
  if (cfg.breaker.failure_threshold > 0) {
    if (cfg.breaker.open_cycles == 0) {
      return fail("breaker.open_cycles must be > 0");
    }
    if (cfg.breaker.close_successes == 0) {
      return fail("breaker.close_successes must be > 0");
    }
  }
  if (cfg.degrade.enabled) {
    if (cfg.degrade.ewma_shift == 0 || cfg.degrade.ewma_shift > 16) {
      return fail("degrade.ewma_shift must be in [1,16]");
    }
    if (cfg.degrade.shed_tier_depth == 0 ||
        cfg.degrade.shed_tier_depth >= cfg.degrade.no_retry_depth ||
        cfg.degrade.no_retry_depth >= cfg.degrade.fast_fail_depth) {
      return fail("degrade ladder thresholds must be strictly increasing "
                  "(0 < shed_tier_depth < no_retry_depth < fast_fail_depth)");
    }
    if (cfg.degrade.recover_percent == 0 || cfg.degrade.recover_percent > 100) {
      return fail("degrade.recover_percent must be in [1,100]");
    }
  }
  return true;
}

// ---- ServeReport ----

double ServeReport::ThroughputPerMcycle() const {
  const uint64_t span = makespan();
  if (span == 0) return 0.0;
  return static_cast<double>(completed) * 1e6 / static_cast<double>(span);
}

uint64_t PercentileOf(const std::vector<uint64_t>& sample, double p) {
  if (sample.empty()) return 0;
  std::vector<uint64_t> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

uint64_t ServeReport::LatencyPercentile(double p) const {
  return PercentileOf(latencies, p);
}

std::string ServeReport::Format() const {
  char line[512];
  std::string out;
  snprintf(line, sizeof(line),
           "serve: offered=%llu completed=%llu failed=%llu shed_queue=%llu "
           "shed_deadline=%llu dispatch_failures=%llu slo_violations=%llu\n",
           (unsigned long long)offered, (unsigned long long)completed,
           (unsigned long long)failed, (unsigned long long)shed_queue,
           (unsigned long long)shed_deadline,
           (unsigned long long)dispatch_failures,
           (unsigned long long)slo_violations);
  out += line;
  snprintf(line, sizeof(line),
           "resilience: shed_quota=%llu shed_breaker=%llu shed_degrade=%llu "
           "retried=%llu breaker_trips=%llu breaker_recoveries=%llu "
           "degrade_transitions=%llu max_degrade_level=%u\n",
           (unsigned long long)shed_quota, (unsigned long long)shed_breaker,
           (unsigned long long)shed_degrade, (unsigned long long)retried,
           (unsigned long long)breaker_trips,
           (unsigned long long)breaker_recoveries,
           (unsigned long long)degrade_transitions, max_degrade_level);
  out += line;
  snprintf(line, sizeof(line),
           "cycles: start=%llu end=%llu makespan=%llu steps=%llu aborted=%d\n",
           (unsigned long long)start_cycles, (unsigned long long)end_cycles,
           (unsigned long long)makespan(), (unsigned long long)steps,
           aborted ? 1 : 0);
  out += line;
  uint64_t mean = 0;
  for (uint64_t l : latencies) mean += l;
  if (!latencies.empty()) mean /= latencies.size();
  snprintf(line, sizeof(line),
           "latency: p50=%llu p99=%llu p999=%llu mean=%llu n=%llu\n",
           (unsigned long long)LatencyPercentile(50),
           (unsigned long long)LatencyPercentile(99),
           (unsigned long long)LatencyPercentile(99.9),
           (unsigned long long)mean, (unsigned long long)latencies.size());
  out += line;
  snprintf(line, sizeof(line),
           "pool: warm_hits=%llu cold_spawns=%llu dead_parked=%llu "
           "recycles=%llu evictions=%llu\n",
           (unsigned long long)warm_hits, (unsigned long long)cold_spawns,
           (unsigned long long)dead_parked, (unsigned long long)recycles,
           (unsigned long long)evictions);
  out += line;
  for (const auto& [tenant, s] : tenants) {
    snprintf(line, sizeof(line),
             "tenant %u: offered=%llu completed=%llu failed=%llu shed=%llu "
             "shed_quota=%llu shed_breaker=%llu retried=%llu "
             "breaker_trips=%llu faults=%llu injected=%llu "
             "slo_violations=%llu breaker=%s p50=%llu p99=%llu\n",
             tenant, (unsigned long long)s.offered,
             (unsigned long long)s.completed, (unsigned long long)s.failed,
             (unsigned long long)s.shed, (unsigned long long)s.shed_quota,
             (unsigned long long)s.shed_breaker,
             (unsigned long long)s.retried,
             (unsigned long long)s.breaker_trips,
             (unsigned long long)s.faults,
             (unsigned long long)s.injected_faults,
             (unsigned long long)s.slo_violations,
             BreakerStateName(s.breaker_state),
             (unsigned long long)PercentileOf(s.latencies, 50),
             (unsigned long long)PercentileOf(s.latencies, 99));
    out += line;
  }
  snprintf(line, sizeof(line), "outcome_hash=%016llx\n",
           (unsigned long long)outcome_hash);
  out += line;
  return out;
}

// ---- Server ----

Server::Server(runtime::Runtime* rt, ServeConfig cfg,
               runtime::SpawnPool* pool)
    : rt_(rt), cfg_(std::move(cfg)), pool_(pool), tiers_(cfg_.tiers),
      traffic_(cfg_.traffic),
      retry_rng_(fuzz::DeriveSeed(cfg_.traffic.seed, kRetrySeedDomain)) {
  if (tiers_.empty()) tiers_.push_back(QosTier{});
  if (cfg_.chaos != nullptr && !cfg_.chaos_tenants.empty()) {
    cfg_.chaos->PinVictims();
  }
}

Server::Server(runtime::Runtime* rt, ServeConfig cfg,
               const elf::ElfImage* cold_image)
    : rt_(rt), cfg_(std::move(cfg)), cold_image_(cold_image),
      tiers_(cfg_.tiers), traffic_(cfg_.traffic),
      retry_rng_(fuzz::DeriveSeed(cfg_.traffic.seed, kRetrySeedDomain)) {
  if (tiers_.empty()) tiers_.push_back(QosTier{});
  if (cfg_.chaos != nullptr && !cfg_.chaos_tenants.empty()) {
    cfg_.chaos->PinVictims();
  }
}

bool Server::Done() const {
  return traffic_.Drained() && queued_total_ == 0 && inflight_.empty();
}

const TenantQuota& Server::QuotaOf(uint32_t tenant) const {
  auto it = cfg_.quotas.find(tenant);
  return it != cfg_.quotas.end() ? it->second : cfg_.default_quota;
}

bool Server::IsChaosTenant(uint32_t tenant) const {
  for (uint32_t t : cfg_.chaos_tenants) {
    if (t == tenant) return true;
  }
  return false;
}

BreakerState Server::breaker_state(uint32_t tenant) const {
  auto it = tenant_qs_.find(tenant);
  return it != tenant_qs_.end() ? it->second.breaker : BreakerState::kClosed;
}

uint32_t Server::InflightCapOf(uint32_t tenant, const TenantState& ts) const {
  uint32_t cap = QuotaOf(tenant).max_inflight;
  if (ts.breaker == BreakerState::kHalfOpen) {
    // Half-open: one probe at a time, regardless of quota.
    cap = cap == 0 ? 1 : std::min<uint32_t>(cap, 1);
  }
  return cap;
}

int Server::FirstDispatchable(const TenantState& ts, uint64_t now) const {
  for (size_t i = 0; i < ts.q.size(); ++i) {
    if (ts.q[i].eligible_cycles <= now) return static_cast<int>(i);
  }
  return -1;
}

void Server::HashOutcome(uint64_t id, uint64_t tenant, uint64_t pid,
                         uint64_t latency, uint64_t result) {
  const uint64_t vals[] = {id, tenant, pid, latency, result};
  for (uint64_t v : vals) {
    for (int b = 0; b < 8; ++b) {
      report_.outcome_hash ^= (v >> (b * 8)) & 0xff;
      report_.outcome_hash *= 1099511628211ull;
    }
  }
}

void Server::NoteBreaker(uint32_t tenant, TenantState& ts, BreakerState next,
                         uint64_t now) {
  if (ts.breaker == next) return;
  const BreakerState prev = ts.breaker;
  ts.breaker = next;
  switch (next) {
    case BreakerState::kOpen:
      ts.open_until = now + cfg_.breaker.open_cycles;
      ts.half_open_ok = 0;
      ++report_.breaker_trips;
      ++report_.tenants[tenant].breaker_trips;
      break;
    case BreakerState::kHalfOpen:
      ts.half_open_ok = 0;
      break;
    case BreakerState::kClosed:
      ts.consec_failures = 0;
      ts.half_open_ok = 0;
      if (prev == BreakerState::kHalfOpen) ++report_.breaker_recoveries;
      break;
  }
  if (auto* sink = rt_->trace_sink()) {
    sink->EmitInstant(trace::EventKind::kServeBreaker, 0, now, tenant,
                      static_cast<uint64_t>(next));
  }
}

void Server::Shed(const Request& r, ShedKind kind, uint64_t now) {
  TenantStats& ts = report_.tenants[r.tenant];
  ++ts.shed;
  uint64_t result = 0;
  uint64_t trace_arg = 0;
  bool emit = true;
  switch (kind) {
    case ShedKind::kQueue:
      ++report_.shed_queue; result = 2; trace_arg = 0; break;
    case ShedKind::kDeadline:
      ++report_.shed_deadline; result = 3; trace_arg = 1; break;
    case ShedKind::kDispatch:
      // Slot exhaustion, not an admission decision: counted separately
      // and (as before the resilience layer) not trace-evented.
      ++report_.dispatch_failures; result = 4; emit = false; break;
    case ShedKind::kQuota:
      ++report_.shed_quota; ++ts.shed_quota; result = 5; trace_arg = 2; break;
    case ShedKind::kBreaker:
      ++report_.shed_breaker; ++ts.shed_breaker; result = 6; trace_arg = 3;
      break;
    case ShedKind::kDegrade:
      ++report_.shed_degrade; result = 7; trace_arg = 4; break;
  }
  HashOutcome(r.id, r.tenant, 0, 0, result);
  if (emit) {
    if (auto* sink = rt_->trace_sink()) {
      sink->EmitInstant(trace::EventKind::kServeShed, 0, now, r.id, trace_arg);
    }
  }
  traffic_.OnComplete(r, now);
}

void Server::AdmitArrivals(uint64_t now) {
  Request r;
  while (traffic_.Pop(now, &r)) {
    r.tier = TierOf(r.tenant);
    r.eligible_cycles = r.arrive_cycles;
    ++report_.offered;
    ++report_.tenants[r.tenant].offered;
    TenantState& ts = tenant_qs_[r.tenant];
    // A cooled-down open breaker flips to half-open on the next arrival:
    // that arrival is admitted and becomes the probe.
    if (ts.breaker == BreakerState::kOpen && now >= ts.open_until) {
      NoteBreaker(r.tenant, ts, BreakerState::kHalfOpen, now);
    }
    if (degrade_level_ >= 3) {
      Shed(r, ShedKind::kDegrade, now);
      continue;
    }
    if (ts.breaker == BreakerState::kOpen) {
      Shed(r, ShedKind::kBreaker, now);
      continue;
    }
    if (degrade_level_ >= 1 && tiers_.size() > 1 &&
        r.tier == static_cast<uint32_t>(tiers_.size()) - 1) {
      Shed(r, ShedKind::kDegrade, now);
      continue;
    }
    const TenantQuota& quota = QuotaOf(r.tenant);
    if (quota.max_queued > 0 && ts.q.size() >= quota.max_queued) {
      Shed(r, ShedKind::kQuota, now);
      continue;
    }
    if (queued_total_ >= cfg_.admission.max_queue_depth) {
      Shed(r, ShedKind::kQueue, now);
      continue;
    }
    ts.q.push_back(r);
    ++queued_total_;
  }
}

void Server::UpdateDegradation(uint64_t now) {
  // Fixed-point (8.8) EWMA of queue depth: integer arithmetic only, so
  // the signal — and everything keyed off it — replays byte-identically.
  const int64_t depth_x256 = static_cast<int64_t>(queued_total_) << 8;
  const int64_t delta = depth_x256 - static_cast<int64_t>(ewma_x256_);
  ewma_x256_ = static_cast<uint64_t>(
      static_cast<int64_t>(ewma_x256_) +
      delta / (int64_t{1} << cfg_.degrade.ewma_shift));
  if (!cfg_.degrade.enabled) return;
  auto threshold_x256 = [&](uint32_t level) -> uint64_t {
    switch (level) {
      case 1: return cfg_.degrade.shed_tier_depth << 8;
      case 2: return cfg_.degrade.no_retry_depth << 8;
      default: return cfg_.degrade.fast_fail_depth << 8;
    }
  };
  uint32_t level = degrade_level_;
  while (level < 3 && ewma_x256_ >= threshold_x256(level + 1)) ++level;
  // Step back down only once the EWMA has fallen well below the level's
  // entry threshold (hysteresis, so an oscillating backlog cannot flap).
  while (level > 0 && ewma_x256_ < threshold_x256(level) *
                                       cfg_.degrade.recover_percent / 100) {
    --level;
  }
  if (level != degrade_level_) {
    degrade_level_ = level;
    ++report_.degrade_transitions;
    report_.max_degrade_level = std::max(report_.max_degrade_level, level);
    if (auto* sink = rt_->trace_sink()) {
      sink->EmitInstant(trace::EventKind::kServeDegrade, 0, now, level,
                        ewma_x256_ >> 8);
    }
  }
}

void Server::ShedExpired(uint64_t now) {
  if (!cfg_.admission.shed_on_deadline) return;
  for (auto& [tenant, ts] : tenant_qs_) {
    std::deque<Request> keep;
    for (const Request& r : ts.q) {
      if (DeadlineExpired(now, DeadlineOf(r))) {
        Shed(r, ShedKind::kDeadline, now);
        --queued_total_;
      } else {
        keep.push_back(r);
      }
    }
    ts.q.swap(keep);
  }
}

bool Server::DispatchOne(const Request& r, TenantState& ts, uint64_t now) {
  int pid = 0;
  bool warm = false;
  if (pool_ != nullptr) {
    const uint64_t cold_before = pool_->cold_spawns();
    auto res = pool_->Take();
    if (!res) {
      Shed(r, ShedKind::kDispatch, now);
      return false;
    }
    pid = *res;
    warm = pool_->cold_spawns() == cold_before;
    // The pool ran dry: this instantiation happened on the request
    // path, so its modeled cost is real latency.
    if (!warm) {
      rt_->machine().timing().ChargeFlat(rt_->last_instantiation().cycles);
    }
  } else {
    auto res = rt_->LoadImage(*cold_image_);
    if (!res) {
      Shed(r, ShedKind::kDispatch, now);
      return false;
    }
    pid = *res;
    // Cold serving pays the full ELF-load cost per request.
    rt_->machine().timing().ChargeFlat(rt_->last_instantiation().cycles);
  }
  rt_->set_policy(pid, tiers_[r.tier].policy);
  // Warm sandboxes are retained at exit so they can be recycled; cold
  // or retire-after-one-request sandboxes tear down (their slot frees
  // as soon as they exit).
  rt_->set_retain_on_exit(pid, pool_ != nullptr && cfg_.recycle_sandboxes);
  // Chaos victimhood tracks the tenant binding, not the pid: marked here,
  // unmarked at completion, so a recycled sandbox serving a healthy
  // tenant next is no longer a target.
  if (cfg_.chaos != nullptr && IsChaosTenant(r.tenant)) {
    cfg_.chaos->MarkVictim(pid);
  }
  if (cfg_.on_dispatch) cfg_.on_dispatch(pid, r);
  if (auto* sink = rt_->trace_sink()) {
    sink->EmitInstant(trace::EventKind::kServeDispatch, pid, now, r.id,
                      warm ? 1 : 0);
  }
  inflight_[pid] = Inflight{r, now, ts.breaker == BreakerState::kHalfOpen};
  ++ts.inflight;
  return true;
}

void Server::Dispatch(uint64_t now) {
  // Deficit round robin across tenant queues: each pass grants every
  // tenant with dispatchable work `weight` credits; a credit dispatches
  // one request. A flooding tenant exhausts its credits and waits for the
  // next pass while lighter tenants drain — weighted fair share without
  // starving anyone.
  bool progress = true;
  while (progress && inflight_.size() < cfg_.max_concurrency &&
         queued_total_ > 0) {
    progress = false;
    for (auto& [tenant, ts] : tenant_qs_) {
      if (inflight_.size() >= cfg_.max_concurrency) break;
      const uint32_t weight = QuotaOf(tenant).weight;
      const uint32_t cap = InflightCapOf(tenant, ts);
      if (FirstDispatchable(ts, now) < 0 ||
          (cap != 0 && ts.inflight >= cap)) {
        // Nothing dispatchable this pass: credits do not accumulate
        // while a tenant has no runnable work.
        ts.deficit = 0;
        continue;
      }
      ts.deficit += weight;
      while (ts.deficit > 0 && inflight_.size() < cfg_.max_concurrency) {
        const uint32_t cap_now = InflightCapOf(tenant, ts);
        if (cap_now != 0 && ts.inflight >= cap_now) break;
        const int idx = FirstDispatchable(ts, now);
        if (idx < 0) break;
        Request r = ts.q[idx];
        ts.q.erase(ts.q.begin() + idx);
        --queued_total_;
        --ts.deficit;
        progress = true;  // a request was consumed, even on dispatch failure
        DispatchOne(r, ts, now);
      }
      if (ts.deficit > weight) ts.deficit = weight;
    }
  }
}

void Server::Advance() {
  const uint64_t before = rt_->Cycles();
  if (!inflight_.empty()) {
    rt_->RunUntilIdle(cfg_.slice_insts);
    if (rt_->Cycles() == before) {
      // In-flight work exists but nothing ran (e.g. every in-flight
      // sandbox is blocked forever). Let time pass so deadline shedding
      // and the Run() backstop can resolve it.
      rt_->machine().timing().ChargeFlat(kIdleStepCycles);
    }
    return;
  }
  // Idle: fast-forward to the next wake-up — the next arrival or the
  // earliest retry-backoff expiry — instead of spinning.
  uint64_t wake = traffic_.NextArrival();
  for (const auto& [tenant, ts] : tenant_qs_) {
    for (const Request& r : ts.q) wake = std::min(wake, r.eligible_cycles);
  }
  if (wake != kNever && wake > before) {
    rt_->machine().timing().ChargeFlat(wake - before);
  } else if (queued_total_ > 0) {
    rt_->machine().timing().ChargeFlat(kIdleStepCycles);
  }
}

uint64_t Server::BackoffFor(uint32_t attempt) {
  const RetryConfig& rc = cfg_.retry;
  uint64_t backoff = rc.backoff_base_cycles;
  for (uint32_t i = 0; i < attempt && backoff < rc.backoff_cap_cycles; ++i) {
    backoff <<= 1;
  }
  backoff = std::min(backoff, rc.backoff_cap_cycles);
  if (rc.jitter_percent > 0) {
    // +/- jitter_percent, drawn from the dedicated retry stream.
    const uint64_t factor =
        100 - rc.jitter_percent + retry_rng_.Below(2 * rc.jitter_percent + 1);
    backoff = backoff * factor / 100;
  }
  return std::max<uint64_t>(backoff, 1);
}

void Server::FinishRequest(const Inflight& inf, int pid) {
  const uint64_t now = rt_->Cycles();
  const runtime::Proc* p = rt_->proc(pid);
  const Request& r = inf.req;
  const bool ok = p != nullptr &&
                  p->exit_kind == runtime::ExitKind::kExited &&
                  p->exit_status == 0;
  const bool killed = p != nullptr &&
                      p->exit_kind == runtime::ExitKind::kKilled;
  const uint64_t latency = now - r.arrive_cycles;
  TenantStats& stats = report_.tenants[r.tenant];
  TenantState& ts = tenant_qs_[r.tenant];
  if (ts.inflight > 0) --ts.inflight;
  // The tenant binding ends here: a recycled sandbox must not carry
  // victimhood into its next request.
  if (cfg_.chaos != nullptr && IsChaosTenant(r.tenant)) {
    cfg_.chaos->UnmarkVictim(pid);
  }
  bool final_outcome = true;
  if (ok) {
    if (ts.breaker == BreakerState::kHalfOpen &&
        ++ts.half_open_ok >= cfg_.breaker.close_successes) {
      NoteBreaker(r.tenant, ts, BreakerState::kClosed, now);
    }
    ts.consec_failures = 0;
    ++report_.completed;
    ++stats.completed;
    report_.latencies.push_back(latency);
    stats.latencies.push_back(latency);
    if (SloViolated(latency, tiers_[r.tier].slo_cycles)) {
      ++report_.slo_violations;
      ++stats.slo_violations;
    }
    HashOutcome(r.id, r.tenant, static_cast<uint64_t>(pid), latency, 0);
  } else {
    if (killed) {
      ++stats.faults;
      if (p->fault_injected) ++stats.injected_faults;
    }
    if (cfg_.breaker.failure_threshold > 0) {
      if (ts.breaker == BreakerState::kHalfOpen) {
        // Probe failed: straight back to open for another cool-down.
        NoteBreaker(r.tenant, ts, BreakerState::kOpen, now);
      } else if (ts.breaker == BreakerState::kClosed &&
                 ++ts.consec_failures >= cfg_.breaker.failure_threshold) {
        NoteBreaker(r.tenant, ts, BreakerState::kOpen, now);
      }
    } else {
      ++ts.consec_failures;
    }
    // Deadline-aware retry: re-enqueue with capped, jittered exponential
    // backoff — unless the budget is spent, the ladder says no, the
    // breaker is not closed, or the backed-off attempt could not finish
    // in time anyway.
    const bool may_retry = cfg_.retry.budget > 0 &&
                           r.attempt < cfg_.retry.budget &&
                           degrade_level_ < 2 &&
                           ts.breaker == BreakerState::kClosed;
    if (may_retry) {
      const uint64_t backoff = BackoffFor(r.attempt);
      if (!DeadlineExpired(now + backoff, DeadlineOf(r))) {
        Request nr = r;
        ++nr.attempt;
        nr.eligible_cycles = now + backoff;
        ts.q.push_back(nr);
        ++queued_total_;
        ++report_.retried;
        ++stats.retried;
        HashOutcome(r.id, r.tenant, static_cast<uint64_t>(pid), nr.attempt, 8);
        if (auto* sink = rt_->trace_sink()) {
          sink->EmitInstant(trace::EventKind::kServeRetry, 0, now, r.id,
                            backoff);
        }
        // Not a final outcome: no failure accounting, and the closed
        // loop keeps the client waiting on this request.
        final_outcome = false;
      }
    }
    if (final_outcome) {
      ++report_.failed;
      ++stats.failed;
      HashOutcome(r.id, r.tenant, static_cast<uint64_t>(pid), latency, 1);
    }
  }
  if (final_outcome) {
    if (auto* sink = rt_->trace_sink()) {
      sink->EmitInstant(trace::EventKind::kServeComplete, pid, now, r.id,
                        latency);
    }
    traffic_.OnComplete(r, now);
  }
  // Healthy exits recycle (same pid and slot, dirtied pages only); kills,
  // restore failures, and retire-after-one-request mode tear the sandbox
  // down — the sizer prewarms a replacement. Cold-mode sandboxes already
  // tore themselves down at exit (no retain, no parent).
  const bool recycled = pool_ != nullptr && cfg_.recycle_sandboxes && ok &&
                        pool_->Recycle(pid);
  if (!recycled && p != nullptr &&
      p->state == runtime::ProcState::kZombie) {
    (void)rt_->Kill(pid, "serve: retire");
  }
}

void Server::Reap() {
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    const runtime::Proc* p = rt_->proc(it->first);
    const bool finished =
        p == nullptr || p->state == runtime::ProcState::kZombie ||
        p->state == runtime::ProcState::kDead;
    if (finished) {
      FinishRequest(it->second, it->first);
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::ResizePool() {
  if (pool_ == nullptr) return;
  // Size toward the queue-depth EWMA (same signal as the degradation
  // ladder): predictive warmth that does not chase every transient spike
  // the way raw backlog-following did. Reconcile tops up fully below
  // target and drains one eviction per step above it.
  const uint64_t ewma_depth = (ewma_x256_ + 128) >> 8;
  const uint64_t target = std::min<uint64_t>(
      cfg_.pool_max,
      std::max<uint64_t>(cfg_.pool_min, cfg_.pool_min + ewma_depth));
  pool_->Reconcile(static_cast<int>(target));
}

void Server::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Fold the per-tenant breakdown into the outcome hash: replay
  // byte-equality then covers every counter the report prints.
  for (auto& [tenant, stats] : report_.tenants) {
    auto it = tenant_qs_.find(tenant);
    if (it != tenant_qs_.end()) stats.breaker_state = it->second.breaker;
    HashOutcome(tenant, stats.offered, stats.completed, stats.failed,
                stats.shed);
    HashOutcome(stats.retried, stats.shed_quota, stats.shed_breaker,
                stats.slo_violations,
                static_cast<uint64_t>(stats.breaker_state));
    HashOutcome(PercentileOf(stats.latencies, 50),
                PercentileOf(stats.latencies, 99), stats.faults,
                stats.injected_faults, stats.breaker_trips);
  }
}

bool Server::Step() {
  if (!started_) {
    started_ = true;
    report_.start_cycles = rt_->Cycles();
  }
  const uint64_t now = rt_->Cycles();
  AdmitArrivals(now);
  UpdateDegradation(now);
  ShedExpired(now);
  Dispatch(now);
  Advance();
  Reap();
  ResizePool();
  ++report_.steps;
  if (Done()) {
    report_.end_cycles = rt_->Cycles();
    if (pool_ != nullptr) {
      report_.warm_hits = pool_->warm_hits();
      report_.cold_spawns = pool_->cold_spawns();
      report_.dead_parked = pool_->dead_parked();
      report_.recycles = pool_->recycles();
      report_.evictions = pool_->evictions();
    }
    Finalize();
    return false;
  }
  return true;
}

const ServeReport& Server::Run() {
  while (Step()) {
    if (report_.steps >= cfg_.max_steps) {
      report_.aborted = true;
      report_.end_cycles = rt_->Cycles();
      if (pool_ != nullptr) {
        report_.warm_hits = pool_->warm_hits();
        report_.cold_spawns = pool_->cold_spawns();
        report_.dead_parked = pool_->dead_parked();
        report_.recycles = pool_->recycles();
        report_.evictions = pool_->evictions();
      }
      Finalize();
      break;
    }
  }
  return report_;
}

}  // namespace lfi::serve
