#include "serve/serve.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lfi::serve {

namespace {

constexpr uint64_t kNever = ~uint64_t{0};
// Clock advance used when nothing is runnable but work is pending, so
// deadlines (and with them deadline shedding) always make progress.
constexpr uint64_t kIdleStepCycles = 1000;

}  // namespace

const char* TrafficKindName(TrafficKind k) {
  switch (k) {
    case TrafficKind::kPoisson: return "poisson";
    case TrafficKind::kBursty: return "bursty";
    case TrafficKind::kClosed: return "closed";
  }
  return "?";
}

bool TrafficKindByName(const std::string& name, TrafficKind* out) {
  if (name == "poisson") { *out = TrafficKind::kPoisson; return true; }
  if (name == "bursty") { *out = TrafficKind::kBursty; return true; }
  if (name == "closed") { *out = TrafficKind::kClosed; return true; }
  return false;
}

// ---- TrafficGen ----

TrafficGen::TrafficGen(const TrafficConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  switch (cfg_.kind) {
    case TrafficKind::kPoisson:
      next_arrival_ = ExpGap(1000000 / std::max<uint64_t>(
                                           1, cfg_.rate_per_mcycle));
      break;
    case TrafficKind::kBursty:
      next_arrival_ = cfg_.burst_period_cycles;
      burst_left_ = cfg_.burst_size;
      break;
    case TrafficKind::kClosed:
      client_next_.resize(std::max<uint32_t>(1, cfg_.closed_clients));
      // Staggered starts: all clients issuing at cycle 0 would be a
      // burst, not a steady closed loop.
      for (auto& t : client_next_) t = rng_.Below(cfg_.think_cycles + 1);
      break;
  }
}

uint64_t TrafficGen::ExpGap(uint64_t mean_cycles) {
  // Inverse-CDF exponential sampling. The 53-bit mantissa draw is biased
  // away from zero so log() never sees it.
  const double u =
      static_cast<double>((rng_.Next() >> 11) + 1) / 9007199254740992.0;
  const double gap = -static_cast<double>(mean_cycles) * std::log(u);
  if (gap < 1.0) return 1;
  return static_cast<uint64_t>(gap);
}

void TrafficGen::ScheduleNextOpenLoop() {
  switch (cfg_.kind) {
    case TrafficKind::kPoisson:
      next_arrival_ += ExpGap(1000000 / std::max<uint64_t>(
                                            1, cfg_.rate_per_mcycle));
      break;
    case TrafficKind::kBursty:
      if (burst_left_ == 0) {
        next_arrival_ += cfg_.burst_period_cycles;
        burst_left_ = cfg_.burst_size;
      }
      break;
    case TrafficKind::kClosed:
      break;
  }
}

uint64_t TrafficGen::NextArrival() const {
  if (Drained()) return kNever;
  if (cfg_.kind == TrafficKind::kClosed) {
    uint64_t soonest = kNever;
    for (uint64_t t : client_next_) soonest = std::min(soonest, t);
    return soonest;
  }
  return next_arrival_;
}

bool TrafficGen::Pop(uint64_t now, Request* out) {
  if (Drained()) return false;
  if (cfg_.kind == TrafficKind::kClosed) {
    uint32_t best = 0;
    uint64_t best_t = kNever;
    for (uint32_t c = 0; c < client_next_.size(); ++c) {
      if (client_next_[c] < best_t) { best_t = client_next_[c]; best = c; }
    }
    if (best_t == kNever || best_t > now) return false;
    client_next_[best] = kNever;  // in flight until OnComplete
    out->id = issued_++;
    out->client = best;
    out->tenant = best % std::max<uint32_t>(1, cfg_.tenants);
    out->arrive_cycles = best_t;
    return true;
  }
  if (next_arrival_ > now) return false;
  out->id = issued_++;
  out->client = 0;
  out->tenant = static_cast<uint32_t>(
      rng_.Below(std::max<uint32_t>(1, cfg_.tenants)));
  out->arrive_cycles = next_arrival_;
  if (cfg_.kind == TrafficKind::kBursty && burst_left_ > 0) --burst_left_;
  ScheduleNextOpenLoop();
  return true;
}

void TrafficGen::OnComplete(const Request& r, uint64_t now) {
  if (cfg_.kind != TrafficKind::kClosed || Drained()) return;
  if (r.client < client_next_.size() && client_next_[r.client] == kNever) {
    client_next_[r.client] = now + cfg_.think_cycles;
  }
}

// ---- ServeReport ----

double ServeReport::ThroughputPerMcycle() const {
  const uint64_t span = makespan();
  if (span == 0) return 0.0;
  return static_cast<double>(completed) * 1e6 / static_cast<double>(span);
}

uint64_t ServeReport::LatencyPercentile(double p) const {
  if (latencies.empty()) return 0;
  std::vector<uint64_t> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

std::string ServeReport::Format() const {
  char line[256];
  std::string out;
  snprintf(line, sizeof(line),
           "serve: offered=%llu completed=%llu failed=%llu shed_queue=%llu "
           "shed_deadline=%llu dispatch_failures=%llu slo_violations=%llu\n",
           (unsigned long long)offered, (unsigned long long)completed,
           (unsigned long long)failed, (unsigned long long)shed_queue,
           (unsigned long long)shed_deadline,
           (unsigned long long)dispatch_failures,
           (unsigned long long)slo_violations);
  out += line;
  snprintf(line, sizeof(line),
           "cycles: start=%llu end=%llu makespan=%llu steps=%llu aborted=%d\n",
           (unsigned long long)start_cycles, (unsigned long long)end_cycles,
           (unsigned long long)makespan(), (unsigned long long)steps,
           aborted ? 1 : 0);
  out += line;
  uint64_t mean = 0;
  for (uint64_t l : latencies) mean += l;
  if (!latencies.empty()) mean /= latencies.size();
  snprintf(line, sizeof(line),
           "latency: p50=%llu p99=%llu p999=%llu mean=%llu n=%llu\n",
           (unsigned long long)LatencyPercentile(50),
           (unsigned long long)LatencyPercentile(99),
           (unsigned long long)LatencyPercentile(99.9),
           (unsigned long long)mean, (unsigned long long)latencies.size());
  out += line;
  snprintf(line, sizeof(line),
           "pool: warm_hits=%llu cold_spawns=%llu dead_parked=%llu "
           "recycles=%llu evictions=%llu\n",
           (unsigned long long)warm_hits, (unsigned long long)cold_spawns,
           (unsigned long long)dead_parked, (unsigned long long)recycles,
           (unsigned long long)evictions);
  out += line;
  for (const auto& [tenant, s] : tenants) {
    snprintf(line, sizeof(line),
             "tenant %u: offered=%llu completed=%llu failed=%llu shed=%llu "
             "slo_violations=%llu\n",
             tenant, (unsigned long long)s.offered,
             (unsigned long long)s.completed, (unsigned long long)s.failed,
             (unsigned long long)s.shed,
             (unsigned long long)s.slo_violations);
    out += line;
  }
  snprintf(line, sizeof(line), "outcome_hash=%016llx\n",
           (unsigned long long)outcome_hash);
  out += line;
  return out;
}

// ---- Server ----

Server::Server(runtime::Runtime* rt, ServeConfig cfg,
               runtime::SpawnPool* pool)
    : rt_(rt), cfg_(std::move(cfg)), pool_(pool), tiers_(cfg_.tiers),
      traffic_(cfg_.traffic) {
  if (tiers_.empty()) tiers_.push_back(QosTier{});
}

Server::Server(runtime::Runtime* rt, ServeConfig cfg,
               const elf::ElfImage* cold_image)
    : rt_(rt), cfg_(std::move(cfg)), cold_image_(cold_image),
      tiers_(cfg_.tiers), traffic_(cfg_.traffic) {
  if (tiers_.empty()) tiers_.push_back(QosTier{});
}

bool Server::Done() const {
  return traffic_.Drained() && queue_.empty() && inflight_.empty();
}

void Server::HashOutcome(uint64_t id, uint64_t tenant, uint64_t pid,
                         uint64_t latency, uint64_t result) {
  const uint64_t vals[] = {id, tenant, pid, latency, result};
  for (uint64_t v : vals) {
    for (int b = 0; b < 8; ++b) {
      report_.outcome_hash ^= (v >> (b * 8)) & 0xff;
      report_.outcome_hash *= 1099511628211ull;
    }
  }
}

void Server::Shed(const Request& r, bool deadline, uint64_t now) {
  if (deadline) {
    ++report_.shed_deadline;
  } else {
    ++report_.shed_queue;
  }
  ++report_.tenants[r.tenant].shed;
  HashOutcome(r.id, r.tenant, 0, 0, deadline ? 3 : 2);
  if (auto* sink = rt_->trace_sink()) {
    sink->EmitInstant(trace::EventKind::kServeShed, 0, now, r.id,
                      deadline ? 1 : 0);
  }
  traffic_.OnComplete(r, now);
}

void Server::AdmitArrivals(uint64_t now) {
  Request r;
  while (traffic_.Pop(now, &r)) {
    r.tier = TierOf(r.tenant);
    ++report_.offered;
    ++report_.tenants[r.tenant].offered;
    if (queue_.size() >= cfg_.admission.max_queue_depth) {
      Shed(r, /*deadline=*/false, now);
    } else {
      queue_.push_back(r);
    }
  }
}

void Server::ShedExpired(uint64_t now) {
  if (!cfg_.admission.shed_on_deadline) return;
  std::deque<Request> keep;
  for (const Request& r : queue_) {
    const uint64_t deadline = r.arrive_cycles + tiers_[r.tier].slo_cycles;
    if (now > deadline) {
      Shed(r, /*deadline=*/true, now);
    } else {
      keep.push_back(r);
    }
  }
  queue_.swap(keep);
}

void Server::Dispatch(uint64_t now) {
  while (inflight_.size() < cfg_.max_concurrency && !queue_.empty()) {
    Request r = queue_.front();
    queue_.pop_front();
    int pid = 0;
    bool warm = false;
    if (pool_ != nullptr) {
      const uint64_t cold_before = pool_->cold_spawns();
      auto res = pool_->Take();
      if (!res) {
        ++report_.dispatch_failures;
        ++report_.tenants[r.tenant].shed;
        HashOutcome(r.id, r.tenant, 0, 0, 4);
        traffic_.OnComplete(r, now);
        continue;
      }
      pid = *res;
      warm = pool_->cold_spawns() == cold_before;
      // The pool ran dry: this instantiation happened on the request
      // path, so its modeled cost is real latency.
      if (!warm) {
        rt_->machine().timing().ChargeFlat(rt_->last_instantiation().cycles);
      }
    } else {
      auto res = rt_->LoadImage(*cold_image_);
      if (!res) {
        ++report_.dispatch_failures;
        ++report_.tenants[r.tenant].shed;
        HashOutcome(r.id, r.tenant, 0, 0, 4);
        traffic_.OnComplete(r, now);
        continue;
      }
      pid = *res;
      // Cold serving pays the full ELF-load cost per request.
      rt_->machine().timing().ChargeFlat(rt_->last_instantiation().cycles);
    }
    rt_->set_policy(pid, tiers_[r.tier].policy);
    // Warm sandboxes are retained at exit so they can be recycled; cold
    // or retire-after-one-request sandboxes tear down (their slot frees
    // as soon as they exit).
    rt_->set_retain_on_exit(pid, pool_ != nullptr && cfg_.recycle_sandboxes);
    if (cfg_.on_dispatch) cfg_.on_dispatch(pid, r);
    if (auto* sink = rt_->trace_sink()) {
      sink->EmitInstant(trace::EventKind::kServeDispatch, pid, now, r.id,
                        warm ? 1 : 0);
    }
    inflight_[pid] = Inflight{r, now};
  }
}

void Server::Advance() {
  const uint64_t before = rt_->Cycles();
  if (!inflight_.empty()) {
    rt_->RunUntilIdle(cfg_.slice_insts);
    if (rt_->Cycles() == before) {
      // In-flight work exists but nothing ran (e.g. every in-flight
      // sandbox is blocked forever). Let time pass so deadline shedding
      // and the Run() backstop can resolve it.
      rt_->machine().timing().ChargeFlat(kIdleStepCycles);
    }
    return;
  }
  // Idle: fast-forward to the next arrival instead of spinning.
  const uint64_t next = traffic_.NextArrival();
  if (next != kNever && next > before) {
    rt_->machine().timing().ChargeFlat(next - before);
  } else if (next == kNever && !queue_.empty()) {
    rt_->machine().timing().ChargeFlat(kIdleStepCycles);
  }
}

void Server::FinishRequest(const Inflight& inf, int pid) {
  const uint64_t now = rt_->Cycles();
  const runtime::Proc* p = rt_->proc(pid);
  const Request& r = inf.req;
  const bool ok = p != nullptr &&
                  p->exit_kind == runtime::ExitKind::kExited &&
                  p->exit_status == 0;
  const uint64_t latency = now - r.arrive_cycles;
  TenantStats& ts = report_.tenants[r.tenant];
  if (ok) {
    ++report_.completed;
    ++ts.completed;
    report_.latencies.push_back(latency);
    if (latency > tiers_[r.tier].slo_cycles) {
      ++report_.slo_violations;
      ++ts.slo_violations;
    }
  } else {
    ++report_.failed;
    ++ts.failed;
  }
  HashOutcome(r.id, r.tenant, static_cast<uint64_t>(pid), latency,
              ok ? 0 : 1);
  if (auto* sink = rt_->trace_sink()) {
    sink->EmitInstant(trace::EventKind::kServeComplete, pid, now, r.id,
                      latency);
  }
  traffic_.OnComplete(r, now);
  // Healthy exits recycle (same pid and slot, dirtied pages only); kills,
  // restore failures, and retire-after-one-request mode tear the sandbox
  // down — the sizer prewarms a replacement. Cold-mode sandboxes already
  // tore themselves down at exit (no retain, no parent).
  const bool recycled = pool_ != nullptr && cfg_.recycle_sandboxes && ok &&
                        pool_->Recycle(pid);
  if (!recycled && p != nullptr &&
      p->state == runtime::ProcState::kZombie) {
    (void)rt_->Kill(pid, "serve: retire");
  }
}

void Server::Reap() {
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    const runtime::Proc* p = rt_->proc(it->first);
    const bool finished =
        p == nullptr || p->state == runtime::ProcState::kZombie ||
        p->state == runtime::ProcState::kDead;
    if (finished) {
      FinishRequest(it->second, it->first);
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::ResizePool() {
  if (pool_ == nullptr) return;
  pool_->PurgeDead();
  const uint64_t target = std::min<uint64_t>(
      cfg_.pool_max,
      std::max<uint64_t>(cfg_.pool_min, cfg_.pool_min + queue_.size()));
  if (pool_->warm() < target) {
    pool_->Prewarm(static_cast<int>(target));
  } else if (pool_->warm() > target) {
    // Shrink gradually: one eviction per step avoids thrashing when
    // demand oscillates (bursty arrivals).
    pool_->Evict(1);
  }
}

bool Server::Step() {
  if (!started_) {
    started_ = true;
    report_.start_cycles = rt_->Cycles();
  }
  const uint64_t now = rt_->Cycles();
  AdmitArrivals(now);
  ShedExpired(now);
  Dispatch(now);
  Advance();
  Reap();
  ResizePool();
  ++report_.steps;
  if (Done()) {
    report_.end_cycles = rt_->Cycles();
    if (pool_ != nullptr) {
      report_.warm_hits = pool_->warm_hits();
      report_.cold_spawns = pool_->cold_spawns();
      report_.dead_parked = pool_->dead_parked();
      report_.recycles = pool_->recycles();
      report_.evictions = pool_->evictions();
    }
    return false;
  }
  return true;
}

const ServeReport& Server::Run() {
  while (Step()) {
    if (report_.steps >= cfg_.max_steps) {
      report_.aborted = true;
      report_.end_cycles = rt_->Cycles();
      break;
    }
  }
  return report_;
}

}  // namespace lfi::serve
