// FaaS-style request serving over the warm SpawnPool (docs/SERVING.md).
//
// The paper's scalability argument (Section 6.4: thousands of sandboxes
// in one process) is only interesting if something serves traffic through
// them. This layer closes that loop on the simulated clock:
//
//   traffic    seeded synthetic arrival processes — open-loop Poisson,
//              open-loop bursty (synchronized arrival batches, the
//              adversarial case for a warm pool), and closed-loop clients
//              with think time — all deterministic per seed, like chaos
//   admission  bounded queue with queue-depth shedding at arrival and
//              deadline shedding at dispatch: a request that already
//              missed its tier's SLO is dropped, not executed
//   dispatch   takes a warm sandbox from the SpawnPool (or cold-loads an
//              ELF per request, the baseline bench_serving compares
//              against), applies the tenant tier's SupervisorPolicy, and
//              runs it; one request = one sandbox incarnation
//   recycle    finished sandboxes are rolled back to the pool checkpoint
//              (Runtime::Recycle — same pid and slot, only dirtied pages
//              touched) and re-parked; kills retire the slot instead
//   sizing     the pool is topped up ahead of the backlog each step and
//              drained one sandbox per step when demand falls
//
// Clock charging: request-path instantiation (a cold ELF load, or the
// pool's cold-spawn fallback when it runs dry) charges the modeled
// instantiation cost to the shared clock — that latency is exactly what
// a warm pool exists to hide. Prewarm and Recycle are background work
// between requests and charge nothing, matching the snapshot subsystem's
// rule that pre-run instantiation never perturbs traces.
//
// Everything is driven by Step(): admit, shed, dispatch, execute a
// bounded slice, reap, resize. Identical seeds and configs replay
// byte-identically (ServeReport::Format is the canonical transcript).
#ifndef LFI_SERVE_SERVE_H_
#define LFI_SERVE_SERVE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "elf/elf.h"
#include "fuzz/rng.h"
#include "runtime/runtime.h"
#include "runtime/spawn_pool.h"

namespace lfi::serve {

// Arrival process shapes.
enum class TrafficKind : uint8_t {
  kPoisson,  // open-loop: exponential gaps at `rate_per_mcycle`
  kBursty,   // open-loop: `burst_size` simultaneous arrivals every
             // `burst_period_cycles` (synchronized batches)
  kClosed,   // closed-loop: `closed_clients` clients, one outstanding
             // request each, re-issuing `think_cycles` after completion
};

const char* TrafficKindName(TrafficKind k);
// Parses "poisson" / "bursty" / "closed"; false on unknown.
bool TrafficKindByName(const std::string& name, TrafficKind* out);

struct TrafficConfig {
  TrafficKind kind = TrafficKind::kPoisson;
  uint64_t seed = 1;
  uint64_t requests = 1000;       // total requests to generate
  uint32_t tenants = 4;           // tenant ids assigned uniformly at random
  // Open-loop knobs.
  uint64_t rate_per_mcycle = 50;  // mean arrivals per 1M cycles (Poisson)
  uint64_t burst_period_cycles = 200000;
  uint32_t burst_size = 32;
  // Closed-loop knobs.
  uint32_t closed_clients = 8;
  uint64_t think_cycles = 20000;
};

// One request flowing through the control plane.
struct Request {
  uint64_t id = 0;
  uint32_t tenant = 0;
  uint32_t tier = 0;             // index into ServeConfig::tiers
  uint64_t arrive_cycles = 0;
  uint32_t client = 0;           // closed-loop issuer (0 for open-loop)
};

// Deterministic synthetic traffic. Arrival times are fixed by (kind,
// seed, config) alone for open-loop shapes; closed-loop arrivals react
// to completions (OnComplete schedules the client's next issue).
class TrafficGen {
 public:
  explicit TrafficGen(const TrafficConfig& cfg);

  // Cycle of the soonest pending arrival, or ~0ull when none is
  // currently scheduled (drained, or closed-loop with every client
  // waiting on an in-flight request).
  uint64_t NextArrival() const;
  // True once every request has been generated.
  bool Drained() const { return issued_ >= cfg_.requests; }
  // Pops the next arrival if it is due at `now`.
  bool Pop(uint64_t now, Request* out);
  // Completion/shed feedback (closed-loop re-arms the client; open-loop
  // ignores it).
  void OnComplete(const Request& r, uint64_t now);

 private:
  uint64_t ExpGap(uint64_t mean_cycles);
  void ScheduleNextOpenLoop();

  TrafficConfig cfg_;
  fuzz::Rng rng_;
  uint64_t issued_ = 0;
  // Open-loop state.
  uint64_t next_arrival_ = 0;
  uint32_t burst_left_ = 0;       // arrivals remaining in the current batch
  // Closed-loop state: per-client next issue time (~0 = in flight).
  std::vector<uint64_t> client_next_;
};

// A QoS tier: the fault/limit policy applied to sandboxes serving the
// tier's tenants, plus the latency SLO requests are judged against.
struct QosTier {
  std::string name = "default";
  runtime::SupervisorPolicy policy;
  uint64_t slo_cycles = 500000;  // arrival-to-completion target
};

struct AdmissionConfig {
  uint32_t max_queue_depth = 64;  // arrivals beyond this are shed
  bool shed_on_deadline = true;   // drop queued requests already past SLO
};

struct ServeConfig {
  TrafficConfig traffic;
  AdmissionConfig admission;
  std::vector<QosTier> tiers;     // tenant t maps to tiers[t % size]
  uint32_t max_concurrency = 8;   // in-flight request cap
  uint32_t pool_min = 4;          // warm floor the sizer maintains
  uint32_t pool_max = 64;         // warm ceiling (Evict above this)
  uint64_t slice_insts = 20000;   // execution budget per Step
  uint64_t max_steps = 10000000;  // livelock backstop for Run()
  // Recycle healthy sandboxes back into the pool (default). When false,
  // every sandbox serves exactly one request and is then retired, so a
  // pid never carries state — chaos victimhood, tier history — across
  // tenants (per-request isolation; the storm benches use this).
  bool recycle_sandboxes = true;
  // Called right after a sandbox is bound to a request (bench/test hook:
  // e.g. chaos MarkVictim by tenant). Must be deterministic.
  std::function<void(int pid, const Request&)> on_dispatch;
};

// Per-tenant outcome counts (bystander-SLO assertions key off these).
struct TenantStats {
  uint64_t offered = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;            // killed / nonzero exit
  uint64_t slo_violations = 0;    // completed but later than the tier SLO
};

struct ServeReport {
  uint64_t offered = 0;
  uint64_t shed_queue = 0;        // dropped at arrival (queue full)
  uint64_t shed_deadline = 0;     // dropped at dispatch (SLO already blown)
  uint64_t dispatch_failures = 0; // no sandbox available (slot exhaustion)
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t slo_violations = 0;
  uint64_t start_cycles = 0;
  uint64_t end_cycles = 0;
  uint64_t steps = 0;
  bool aborted = false;           // Run() hit max_steps
  std::vector<uint64_t> latencies;   // completed requests, arrival order
  std::map<uint32_t, TenantStats> tenants;
  // Pool counters at the end of the run (all zero for cold serving).
  uint64_t warm_hits = 0, cold_spawns = 0, dead_parked = 0;
  uint64_t recycles = 0, evictions = 0;
  // FNV-1a over every per-request outcome (id, tenant, pid, latency,
  // result); two runs with identical behavior have identical hashes.
  uint64_t outcome_hash = 14695981039346656037ull;

  uint64_t makespan() const { return end_cycles - start_cycles; }
  // Completed requests per 1M simulated cycles.
  double ThroughputPerMcycle() const;
  // p in [0,100]; nearest-rank percentile of completed latencies.
  uint64_t LatencyPercentile(double p) const;
  // Canonical deterministic transcript (byte-comparable across runs).
  std::string Format() const;
};

// The control plane. Warm mode serves from a SpawnPool; cold mode
// instantiates `cold_image` per request (the baseline the pool is
// benchmarked against). Exactly one of pool/cold_image is used.
class Server {
 public:
  Server(runtime::Runtime* rt, ServeConfig cfg, runtime::SpawnPool* pool);
  Server(runtime::Runtime* rt, ServeConfig cfg,
         const elf::ElfImage* cold_image);

  // One control-plane iteration: admit due arrivals, shed, dispatch up
  // to the concurrency cap, execute a bounded slice, reap completions,
  // resize the pool. Returns false once the run is complete.
  bool Step();
  // Steps until done (or max_steps). Returns the final report.
  const ServeReport& Run();

  bool Done() const;
  const ServeReport& report() const { return report_; }
  uint64_t queue_depth() const { return queue_.size(); }
  uint64_t inflight() const { return inflight_.size(); }

 private:
  struct Inflight {
    Request req;
    uint64_t dispatch_cycles = 0;
  };

  void AdmitArrivals(uint64_t now);
  void ShedExpired(uint64_t now);
  void Dispatch(uint64_t now);
  void Advance();
  void Reap();
  void ResizePool();
  void Shed(const Request& r, bool deadline, uint64_t now);
  void FinishRequest(const Inflight& inf, int pid);
  void HashOutcome(uint64_t id, uint64_t tenant, uint64_t pid,
                   uint64_t latency, uint64_t result);
  uint32_t TierOf(uint32_t tenant) const {
    return tiers_.empty() ? 0 : tenant % tiers_.size();
  }

  runtime::Runtime* rt_;
  ServeConfig cfg_;
  runtime::SpawnPool* pool_ = nullptr;          // warm mode
  const elf::ElfImage* cold_image_ = nullptr;   // cold mode
  std::vector<QosTier> tiers_;
  TrafficGen traffic_;
  std::deque<Request> queue_;
  std::map<int, Inflight> inflight_;            // pid -> request
  ServeReport report_;
  bool started_ = false;
};

}  // namespace lfi::serve

#endif  // LFI_SERVE_SERVE_H_
