// FaaS-style request serving over the warm SpawnPool (docs/SERVING.md).
//
// The paper's scalability argument (Section 6.4: thousands of sandboxes
// in one process) is only interesting if something serves traffic through
// them. This layer closes that loop on the simulated clock:
//
//   traffic    seeded synthetic arrival processes — open-loop Poisson,
//              open-loop bursty (synchronized arrival batches, the
//              adversarial case for a warm pool), and closed-loop clients
//              with think time — all deterministic per seed, like chaos
//   admission  per-tenant quotas (max_queued / max_inflight) in front of a
//              bounded shared queue, plus the overload ladder and circuit
//              breakers below; deadline shedding drops queued requests
//              that already missed their tier's SLO
//   dispatch   deficit-round-robin across tenant queues (weighted fair
//              share — one flooding tenant cannot starve the others),
//              takes a warm sandbox from the SpawnPool (or cold-loads an
//              ELF per request), applies the tenant tier's
//              SupervisorPolicy, and runs it
//   retry      a failed attempt (fault, kill, nonzero exit) re-enqueues
//              with capped exponential backoff and seeded jitter, up to a
//              budget and never past the request's deadline
//   breakers   per-tenant consecutive-failure tracking: at the threshold
//              the tenant's circuit opens (arrivals fast-fail without
//              burning a sandbox), half-open probes test recovery
//   overload   an EWMA of queue depth drives a degradation ladder: shed
//              the lowest QoS tier first, then disable retries, then
//              fast-fail everything; each transition is a trace event
//   recycle    finished sandboxes are rolled back to the pool checkpoint
//              (Runtime::Recycle — same pid and slot) and re-parked;
//              kills retire the slot instead
//   sizing     SpawnPool::Reconcile toward pool_min + the queue-depth
//              EWMA each step (predictive warmth, gradual drain)
//
// Clock charging: request-path instantiation (a cold ELF load, or the
// pool's cold-spawn fallback when it runs dry) charges the modeled
// instantiation cost to the shared clock — that latency is exactly what
// a warm pool exists to hide. Prewarm and Recycle are background work
// between requests and charge nothing, matching the snapshot subsystem's
// rule that pre-run instantiation never perturbs traces.
//
// Everything is driven by Step(): admit, shed, dispatch, execute a
// bounded slice, reap, resize. Identical seeds and configs replay
// byte-identically (ServeReport::Format is the canonical transcript) —
// retry jitter and the breaker clocks all run off the simulated-cycle
// clock and the traffic seed.
#ifndef LFI_SERVE_SERVE_H_
#define LFI_SERVE_SERVE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "elf/elf.h"
#include "fuzz/rng.h"
#include "runtime/runtime.h"
#include "runtime/spawn_pool.h"

namespace lfi::chaos {
class ChaosEngine;
}  // namespace lfi::chaos

namespace lfi::serve {

// Arrival process shapes.
enum class TrafficKind : uint8_t {
  kPoisson,  // open-loop: exponential gaps at `rate_per_mcycle`
  kBursty,   // open-loop: `burst_size` simultaneous arrivals every
             // `burst_period_cycles` (synchronized batches)
  kClosed,   // closed-loop: `closed_clients` clients, one outstanding
             // request each, re-issuing `think_cycles` after completion
};

const char* TrafficKindName(TrafficKind k);
// Parses "poisson" / "bursty" / "closed"; false on unknown.
bool TrafficKindByName(const std::string& name, TrafficKind* out);

struct TrafficConfig {
  TrafficKind kind = TrafficKind::kPoisson;
  uint64_t seed = 1;
  uint64_t requests = 1000;       // total requests to generate
  uint32_t tenants = 4;           // tenant ids assigned at random
  // Per-tenant arrival shares for open-loop shapes. Empty = uniform;
  // otherwise must have exactly `tenants` entries (a flooding tenant is a
  // large weight — the fairness tests drive one at 10x its peers).
  std::vector<uint32_t> tenant_weights;
  // Open-loop knobs.
  uint64_t rate_per_mcycle = 50;  // mean arrivals per 1M cycles (Poisson)
  uint64_t burst_period_cycles = 200000;
  uint32_t burst_size = 32;
  // Closed-loop knobs.
  uint32_t closed_clients = 8;
  uint64_t think_cycles = 20000;
};

// One request flowing through the control plane.
struct Request {
  uint64_t id = 0;
  uint32_t tenant = 0;
  uint32_t tier = 0;             // index into ServeConfig::tiers
  uint64_t arrive_cycles = 0;
  uint32_t client = 0;           // closed-loop issuer (0 for open-loop)
  uint32_t attempt = 0;          // 0 = first try; bumped per retry
  uint64_t eligible_cycles = 0;  // retry backoff: not dispatched earlier
};

// Deterministic synthetic traffic. Arrival times are fixed by (kind,
// seed, config) alone for open-loop shapes; closed-loop arrivals react
// to completions (OnComplete schedules the client's next issue).
class TrafficGen {
 public:
  explicit TrafficGen(const TrafficConfig& cfg);

  // Cycle of the soonest pending arrival, or ~0ull when none is
  // currently scheduled (drained, or closed-loop with every client
  // waiting on an in-flight request).
  uint64_t NextArrival() const;
  // True once every request has been generated.
  bool Drained() const { return issued_ >= cfg_.requests; }
  // Pops the next arrival if it is due at `now`.
  bool Pop(uint64_t now, Request* out);
  // Completion/shed feedback (closed-loop re-arms the client; open-loop
  // ignores it).
  void OnComplete(const Request& r, uint64_t now);

 private:
  uint64_t ExpGap(uint64_t mean_cycles);
  void ScheduleNextOpenLoop();
  uint32_t PickTenant();

  TrafficConfig cfg_;
  fuzz::Rng rng_;
  uint64_t issued_ = 0;
  uint64_t weight_total_ = 0;     // sum of tenant_weights (0 = uniform)
  // Open-loop state.
  uint64_t next_arrival_ = 0;
  uint32_t burst_left_ = 0;       // arrivals remaining in the current batch
  // Closed-loop state: per-client next issue time (~0 = in flight).
  std::vector<uint64_t> client_next_;
};

// A QoS tier: the fault/limit policy applied to sandboxes serving the
// tier's tenants, plus the latency SLO requests are judged against.
// Lower tier index = higher priority; the degradation ladder sheds the
// highest-index tier first.
struct QosTier {
  std::string name = "default";
  runtime::SupervisorPolicy policy;
  uint64_t slo_cycles = 500000;  // arrival-to-completion target
};

// Deadline/SLO boundary rules, shared by shedding and accounting so the
// two can never disagree about a request that lands exactly on the edge:
// a request is late the moment `now` reaches its deadline, and a
// completion at exactly the SLO is a violation. (Historically shedding
// used `now > deadline` while accounting used `latency > slo`, so a
// request dispatched exactly at its deadline was counted served-in-SLO.)
inline bool DeadlineExpired(uint64_t now, uint64_t deadline) {
  return now >= deadline;
}
inline bool SloViolated(uint64_t latency, uint64_t slo_cycles) {
  return latency >= slo_cycles;
}

struct AdmissionConfig {
  uint32_t max_queue_depth = 64;  // arrivals beyond this are shed
  bool shed_on_deadline = true;   // drop queued requests already past SLO
};

// Per-tenant admission quota and fair-share weight. A tenant with no
// explicit entry in ServeConfig::quotas uses ServeConfig::default_quota.
struct TenantQuota {
  uint32_t max_queued = 0;    // arrivals beyond this many queued are shed
                              // with the quota outcome (0 = no cap)
  uint32_t max_inflight = 0;  // concurrent dispatches for this tenant
                              // (0 = no cap beyond max_concurrency)
  uint32_t weight = 1;        // deficit-round-robin share per round
};

// Deadline-aware retry. A failed attempt re-enqueues with capped
// exponential backoff (base << attempt, capped) jittered by the seeded
// stream; the request is given up instead when the backed-off dispatch
// could not finish before its deadline, the budget is spent, the tenant's
// breaker is not closed, or the ladder has reached the no-retry level.
struct RetryConfig {
  uint32_t budget = 0;                   // retries per request (0 = off)
  uint64_t backoff_base_cycles = 20000;  // doubles per attempt
  uint64_t backoff_cap_cycles = 1000000;
  uint32_t jitter_percent = 20;          // +/- applied from the seed stream
};

// Per-tenant circuit breaker: `failure_threshold` consecutive failures
// flip the tenant to open (arrivals fast-fail with the breaker outcome —
// no sandbox burned); after `open_cycles` the next arrival is admitted as
// a half-open probe (tenant capped to one in flight); `close_successes`
// consecutive probe successes close the circuit, any probe failure
// re-opens it.
struct BreakerConfig {
  uint32_t failure_threshold = 0;  // consecutive failures to open (0 = off)
  uint64_t open_cycles = 2000000;  // cool-down before the half-open probe
  uint32_t close_successes = 2;    // probe successes needed to close
};

// Breaker state, surfaced per tenant in the report.
enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
const char* BreakerStateName(BreakerState s);

// Graceful-degradation ladder, driven by a fixed-point EWMA of queue
// depth (updated once per Step; alpha = 2^-ewma_shift). Levels:
//   0  normal
//   1  shed arrivals of the lowest-QoS tier (highest tier index); no-op
//      when only one tier is configured
//   2  additionally disable retries
//   3  fast-fail: shed every arrival
// A level is entered when the EWMA reaches its threshold and left when
// the EWMA falls below `recover_percent`% of it (hysteresis, so an
// oscillating backlog does not flap the ladder). Transitions emit
// kServeDegrade trace events and are counted in the report.
struct DegradeConfig {
  bool enabled = false;
  uint32_t ewma_shift = 4;          // alpha = 1/16 per control-plane step
  uint64_t shed_tier_depth = 48;    // level-1 threshold (EWMA, requests)
  uint64_t no_retry_depth = 96;     // level-2 threshold
  uint64_t fast_fail_depth = 144;   // level-3 threshold
  uint32_t recover_percent = 50;    // hysteresis for stepping back down
};

struct ServeConfig {
  TrafficConfig traffic;
  AdmissionConfig admission;
  std::vector<QosTier> tiers;     // tenant t maps to tiers[t % size]
  // Per-tenant admission quotas and fair-share weights (tenants without
  // an entry use default_quota).
  std::map<uint32_t, TenantQuota> quotas;
  TenantQuota default_quota;
  RetryConfig retry;
  BreakerConfig breaker;
  DegradeConfig degrade;
  uint32_t max_concurrency = 8;   // in-flight request cap
  uint32_t pool_min = 4;          // warm floor the sizer maintains
  uint32_t pool_max = 64;         // warm ceiling (Evict above this)
  uint64_t slice_insts = 20000;   // execution budget per Step
  uint64_t max_steps = 10000000;  // livelock backstop for Run()
  // Recycle healthy sandboxes back into the pool (default). When false,
  // every sandbox serves exactly one request and is then retired, so a
  // pid never carries state — chaos victimhood, tier history — across
  // tenants (per-request isolation; the storm benches use this).
  bool recycle_sandboxes = true;
  // Tenant-scoped chaos (docs/FAULTS.md): when `chaos` is set and
  // `chaos_tenants` is non-empty, the server pins the engine's victim set
  // and marks each sandbox a victim only while it is bound to a listed
  // tenant's request (unmarked at completion, so recycling cannot leak
  // victimhood to a healthy tenant). The engine must be attached to the
  // runtime separately (Runtime::set_chaos) and outlive the server.
  chaos::ChaosEngine* chaos = nullptr;
  std::vector<uint32_t> chaos_tenants;
  // Called right after a sandbox is bound to a request (bench/test hook:
  // e.g. chaos MarkVictim by tenant). Must be deterministic.
  std::function<void(int pid, const Request&)> on_dispatch;
};

// Validates a serving config, rejecting zero/contradictory settings
// (empty queue, zero concurrency, zero SLO, quota wider than the queue,
// non-increasing ladder thresholds, ...). Returns false and sets *err to
// a one-line message on the first violation. The CLI reports the message
// and exits 2; the Server itself stays permissive so tests can construct
// degenerate configs deliberately.
bool ValidateServeConfig(const ServeConfig& cfg, std::string* err);

// Per-tenant outcome counts (bystander-SLO assertions key off these).
struct TenantStats {
  uint64_t offered = 0;
  uint64_t shed = 0;              // all shed outcomes (queue, deadline,
                                  // quota, breaker, degrade, dispatch)
  uint64_t shed_quota = 0;        // over max_queued
  uint64_t shed_breaker = 0;      // fast-failed while the circuit was open
  uint64_t completed = 0;
  uint64_t failed = 0;            // killed / nonzero exit, budget spent
  uint64_t retried = 0;           // attempts re-enqueued by the retry policy
  uint64_t faults = 0;            // failures that were sandbox kills
  uint64_t injected_faults = 0;   // kills whose fault was chaos-injected
  uint64_t breaker_trips = 0;     // closed/half-open -> open transitions
  uint64_t slo_violations = 0;    // completed but at/after the tier SLO
  BreakerState breaker_state = BreakerState::kClosed;  // at end of run
  std::vector<uint64_t> latencies;  // completed requests, arrival order
};

struct ServeReport {
  uint64_t offered = 0;
  uint64_t shed_queue = 0;        // dropped at arrival (queue full)
  uint64_t shed_deadline = 0;     // dropped at dispatch (SLO already blown)
  uint64_t shed_quota = 0;        // dropped at arrival (tenant over quota)
  uint64_t shed_breaker = 0;      // fast-failed (tenant circuit open)
  uint64_t shed_degrade = 0;      // dropped by the degradation ladder
  uint64_t dispatch_failures = 0; // no sandbox available (slot exhaustion)
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t retried = 0;           // re-enqueued attempts (not new requests)
  uint64_t breaker_trips = 0;     // total open transitions across tenants
  uint64_t breaker_recoveries = 0;  // half-open -> closed transitions
  uint64_t degrade_transitions = 0; // ladder level changes
  uint32_t max_degrade_level = 0;   // highest level reached
  uint64_t slo_violations = 0;
  uint64_t start_cycles = 0;
  uint64_t end_cycles = 0;
  uint64_t steps = 0;
  bool aborted = false;           // Run() hit max_steps
  std::vector<uint64_t> latencies;   // completed requests, arrival order
  std::map<uint32_t, TenantStats> tenants;
  // Pool counters at the end of the run (all zero for cold serving).
  uint64_t warm_hits = 0, cold_spawns = 0, dead_parked = 0;
  uint64_t recycles = 0, evictions = 0;
  // FNV-1a over every per-request outcome (id, tenant, pid, latency,
  // result) plus, at end of run, every tenant's counter block — so replay
  // byte-equality covers the per-tenant breakdown too.
  uint64_t outcome_hash = 14695981039346656037ull;

  uint64_t makespan() const { return end_cycles - start_cycles; }
  // Completed requests per 1M simulated cycles.
  double ThroughputPerMcycle() const;
  // p in [0,100]; nearest-rank percentile of completed latencies.
  uint64_t LatencyPercentile(double p) const;
  // Canonical deterministic transcript (byte-comparable across runs).
  std::string Format() const;
};

// Nearest-rank percentile over an unsorted sample (used for the report's
// global and per-tenant latency lines).
uint64_t PercentileOf(const std::vector<uint64_t>& sample, double p);

// The control plane. Warm mode serves from a SpawnPool; cold mode
// instantiates `cold_image` per request (the baseline the pool is
// benchmarked against). Exactly one of pool/cold_image is used.
class Server {
 public:
  Server(runtime::Runtime* rt, ServeConfig cfg, runtime::SpawnPool* pool);
  Server(runtime::Runtime* rt, ServeConfig cfg,
         const elf::ElfImage* cold_image);

  // One control-plane iteration: admit due arrivals, update the overload
  // ladder, shed, dispatch up to the concurrency cap under the per-tenant
  // quotas and the deficit-round-robin order, execute a bounded slice,
  // reap completions (applying retry/breaker policy), resize the pool.
  // Returns false once the run is complete.
  bool Step();
  // Steps until done (or max_steps). Returns the final report.
  const ServeReport& Run();

  bool Done() const;
  const ServeReport& report() const { return report_; }
  uint64_t queue_depth() const { return queued_total_; }
  uint64_t inflight() const { return inflight_.size(); }
  uint32_t degrade_level() const { return degrade_level_; }
  // Breaker state for a tenant (kClosed when never seen).
  BreakerState breaker_state(uint32_t tenant) const;

 private:
  struct Inflight {
    Request req;
    uint64_t dispatch_cycles = 0;
    bool probe = false;  // half-open breaker probe
  };

  // Per-tenant control state: FIFO queue, DRR deficit, inflight count,
  // and the circuit breaker.
  struct TenantState {
    std::deque<Request> q;
    uint32_t inflight = 0;
    uint64_t deficit = 0;
    BreakerState breaker = BreakerState::kClosed;
    uint32_t consec_failures = 0;
    uint32_t half_open_ok = 0;
    uint64_t open_until = 0;
  };

  // Shed outcome kinds. HashOutcome result codes: queue 2, deadline 3,
  // dispatch 4, quota 5, breaker 6, degrade 7 (retry events hash as 8);
  // kServeShed arg1: queue 0, deadline 1, quota 2, breaker 3, degrade 4.
  enum class ShedKind : uint8_t {
    kQueue, kDeadline, kDispatch, kQuota, kBreaker, kDegrade
  };

  void AdmitArrivals(uint64_t now);
  void UpdateDegradation(uint64_t now);
  void ShedExpired(uint64_t now);
  void Dispatch(uint64_t now);
  bool DispatchOne(const Request& r, TenantState& ts, uint64_t now);
  void Advance();
  void Reap();
  void ResizePool();
  void Shed(const Request& r, ShedKind kind, uint64_t now);
  void FinishRequest(const Inflight& inf, int pid);
  // Backoff for the given (0-based) attempt: base << attempt, capped,
  // jittered from the dedicated retry stream. Always >= 1.
  uint64_t BackoffFor(uint32_t attempt);
  void NoteBreaker(uint32_t tenant, TenantState& ts, BreakerState next,
                   uint64_t now);
  void Finalize();
  void HashOutcome(uint64_t id, uint64_t tenant, uint64_t pid,
                   uint64_t latency, uint64_t result);
  uint32_t TierOf(uint32_t tenant) const {
    return tiers_.empty() ? 0 : tenant % tiers_.size();
  }
  const TenantQuota& QuotaOf(uint32_t tenant) const;
  uint64_t DeadlineOf(const Request& r) const {
    return r.arrive_cycles + tiers_[r.tier].slo_cycles;
  }
  bool IsChaosTenant(uint32_t tenant) const;
  // Effective in-flight cap for the tenant right now (half-open probes
  // squeeze it to one). 0 = unlimited.
  uint32_t InflightCapOf(uint32_t tenant, const TenantState& ts) const;
  // Index of the first request in ts.q dispatchable at `now` (eligible
  // and, when deadline shedding is on, not already expired), or -1.
  int FirstDispatchable(const TenantState& ts, uint64_t now) const;

  runtime::Runtime* rt_;
  ServeConfig cfg_;
  runtime::SpawnPool* pool_ = nullptr;          // warm mode
  const elf::ElfImage* cold_image_ = nullptr;   // cold mode
  std::vector<QosTier> tiers_;
  TrafficGen traffic_;
  fuzz::Rng retry_rng_;
  std::map<uint32_t, TenantState> tenant_qs_;   // ordered: deterministic
  uint64_t queued_total_ = 0;
  uint64_t ewma_x256_ = 0;        // queue-depth EWMA, 8.8 fixed point
  uint32_t degrade_level_ = 0;
  std::map<int, Inflight> inflight_;            // pid -> request
  ServeReport report_;
  bool started_ = false;
  bool finalized_ = false;
};

}  // namespace lfi::serve

#endif  // LFI_SERVE_SERVE_H_
