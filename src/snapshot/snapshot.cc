#include "snapshot/snapshot.h"

#include <algorithm>
#include <cstring>
#include <fstream>

namespace lfi::snapshot {

namespace {

constexpr char kMagic[8] = {'L', 'F', 'I', 'S', 'N', 'A', 'P', '\0'};

uint64_t Fnv1a(std::span<const uint8_t> bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Little-endian byte-stream writer.
class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I32(int32_t v) { Raw(&v, 4); }
  void Bytes(std::span<const uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void Sized(std::span<const uint8_t> b) {
    U32(static_cast<uint32_t>(b.size()));
    Bytes(b);
  }
  std::vector<uint8_t> Take() && { return std::move(out_); }

 private:
  void Raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  std::vector<uint8_t> out_;
};

// Bounds-checked reader; every accessor fails soft on truncation.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> b) : b_(b) {}

  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) { return Raw(v, 4); }
  bool U64(uint64_t* v) { return Raw(v, 8); }
  bool I32(int32_t* v) { return Raw(v, 4); }
  bool Bytes(void* out, size_t n) { return Raw(out, n); }
  bool Sized(std::vector<uint8_t>* out) {
    uint32_t n = 0;
    if (!U32(&n) || n > Remaining()) return false;
    out->assign(b_.begin() + static_cast<ptrdiff_t>(pos_),
                b_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  size_t Remaining() const { return b_.size() - pos_; }
  size_t pos() const { return pos_; }

 private:
  bool Raw(void* out, size_t n) {
    if (Remaining() < n) return false;
    std::memcpy(out, b_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const uint8_t> b_;
  size_t pos_ = 0;
};

void PutCpu(Writer* w, const emu::CpuState& c) {
  for (uint64_t x : c.x) w->U64(x);
  w->U64(c.sp);
  w->U64(c.pc);
  const uint32_t nzcv = (uint32_t{c.n} << 3) | (uint32_t{c.z} << 2) |
                        (uint32_t{c.c} << 1) | uint32_t{c.v};
  w->U32(nzcv);
  for (const auto& v : c.vr) {
    w->U64(v.lo);
    w->U64(v.hi);
  }
  w->U8(c.excl_valid ? 1 : 0);
  w->U64(c.excl_addr);
}

bool GetCpu(Reader* r, emu::CpuState* c) {
  for (auto& x : c->x) {
    if (!r->U64(&x)) return false;
  }
  uint32_t nzcv = 0;
  if (!r->U64(&c->sp) || !r->U64(&c->pc) || !r->U32(&nzcv)) return false;
  c->n = (nzcv >> 3) & 1;
  c->z = (nzcv >> 2) & 1;
  c->c = (nzcv >> 1) & 1;
  c->v = nzcv & 1;
  for (auto& v : c->vr) {
    if (!r->U64(&v.lo) || !r->U64(&v.hi)) return false;
  }
  uint8_t excl = 0;
  if (!r->U8(&excl) || !r->U64(&c->excl_addr)) return false;
  c->excl_valid = excl != 0;
  return true;
}

bool IsZeroPage(const emu::AddressSpace::PageData& d) {
  return std::all_of(d.begin(), d.end(), [](uint8_t b) { return b == 0; });
}

}  // namespace

std::vector<uint8_t> Serialize(const Snapshot& snap) {
  Writer w;
  w.Bytes({reinterpret_cast<const uint8_t*>(kMagic), 8});
  w.U32(kFormatVersion);
  w.U64(emu::kPageSize);
  PutCpu(&w, snap.cpu);
  w.U64(snap.brk_start);
  w.U64(snap.brk);
  w.U64(snap.brk_mapped);
  w.U64(snap.mmap_cursor);
  w.U64(snap.mmap_bytes);
  for (uint64_t h : snap.sig_handlers) w.U64(h);
  w.U8(snap.sig_in_handler ? 1 : 0);
  w.U64(snap.sig_cookie);
  w.U64(snap.sig_frame_addr);
  w.U32(snap.sig_delivered);
  w.U32(static_cast<uint32_t>(snap.mappings.size()));
  for (const auto& [off, range] : snap.mappings) {
    w.U64(off);
    w.U64(range.first);
    w.U8(range.second);
  }
  w.U32(static_cast<uint32_t>(snap.pages.size()));
  for (const auto& p : snap.pages) {
    w.U64(p.offset);
    w.U8(p.perms);
    // kind 0 = all-zero page (payload elided), 1 = raw payload follows.
    const bool zero = p.data == nullptr || IsZeroPage(*p.data);
    w.U8(zero ? 0 : 1);
    if (!zero) w.Bytes({p.data->data(), p.data->size()});
  }
  w.U32(static_cast<uint32_t>(snap.fds.size()));
  for (const auto& f : snap.fds) {
    w.U8(static_cast<uint8_t>(f.kind));
    w.I32(f.flags);
    w.U64(f.offset);
    w.Sized({reinterpret_cast<const uint8_t*>(f.path.data()), f.path.size()});
    w.U64(f.pipe_id);
    w.Sized({f.pipe_buf.data(), f.pipe_buf.size()});
  }
  std::vector<uint8_t> out = std::move(w).Take();
  const uint64_t sum = Fnv1a(out);
  Writer tail;
  tail.U64(sum);
  const std::vector<uint8_t> t = std::move(tail).Take();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

Result<Snapshot> Deserialize(std::span<const uint8_t> bytes) {
  static constexpr const char* kTrunc =
      "snapshot: truncated (file shorter than its contents claim)";
  if (bytes.size() < 8 + 4 + 8 + 8) return Error{kTrunc};
  if (std::memcmp(bytes.data(), kMagic, 8) != 0) {
    return Error{"snapshot: bad magic (not an LFI snapshot file)"};
  }
  // The checksum trailer covers everything before it; verify first so
  // every later parse error means truncation, not corruption.
  uint64_t claimed = 0;
  std::memcpy(&claimed, bytes.data() + bytes.size() - 8, 8);
  if (Fnv1a(bytes.subspan(0, bytes.size() - 8)) != claimed) {
    return Error{"snapshot: checksum mismatch (file corrupted)"};
  }
  Reader r(bytes.subspan(0, bytes.size() - 8));
  uint8_t magic[8];
  (void)r.Bytes(magic, 8);
  uint32_t version = 0;
  if (!r.U32(&version)) return Error{kTrunc};
  if (version != kFormatVersion) {
    return Error{"snapshot: unsupported version " + std::to_string(version) +
                 " (expected " + std::to_string(kFormatVersion) + ")"};
  }
  uint64_t page_size = 0;
  if (!r.U64(&page_size)) return Error{kTrunc};
  if (page_size != emu::kPageSize) {
    return Error{"snapshot: page size " + std::to_string(page_size) +
                 " does not match this build's " +
                 std::to_string(emu::kPageSize)};
  }

  Snapshot snap;
  if (!GetCpu(&r, &snap.cpu)) return Error{kTrunc};
  if (!r.U64(&snap.brk_start) || !r.U64(&snap.brk) ||
      !r.U64(&snap.brk_mapped) || !r.U64(&snap.mmap_cursor) ||
      !r.U64(&snap.mmap_bytes)) {
    return Error{kTrunc};
  }
  for (auto& h : snap.sig_handlers) {
    if (!r.U64(&h)) return Error{kTrunc};
  }
  uint8_t in_handler = 0;
  if (!r.U8(&in_handler) || !r.U64(&snap.sig_cookie) ||
      !r.U64(&snap.sig_frame_addr) || !r.U32(&snap.sig_delivered)) {
    return Error{kTrunc};
  }
  snap.sig_in_handler = in_handler != 0;

  uint32_t n_mappings = 0;
  if (!r.U32(&n_mappings)) return Error{kTrunc};
  for (uint32_t k = 0; k < n_mappings; ++k) {
    uint64_t off = 0, len = 0;
    uint8_t perms = 0;
    if (!r.U64(&off) || !r.U64(&len) || !r.U8(&perms)) return Error{kTrunc};
    snap.mappings[off] = {len, perms};
  }

  uint32_t n_pages = 0;
  if (!r.U32(&n_pages)) return Error{kTrunc};
  snap.pages.reserve(n_pages);
  for (uint32_t k = 0; k < n_pages; ++k) {
    PageRec rec;
    uint8_t kind = 0;
    if (!r.U64(&rec.offset) || !r.U8(&rec.perms) || !r.U8(&kind)) {
      return Error{kTrunc};
    }
    rec.data = std::make_shared<emu::AddressSpace::PageData>();
    if (kind == 0) {
      rec.data->fill(0);
    } else if (kind == 1) {
      if (!r.Bytes(rec.data->data(), rec.data->size())) return Error{kTrunc};
    } else {
      return Error{"snapshot: unknown page record kind " +
                   std::to_string(kind)};
    }
    snap.pages.push_back(std::move(rec));
  }

  uint32_t n_fds = 0;
  if (!r.U32(&n_fds)) return Error{kTrunc};
  for (uint32_t k = 0; k < n_fds; ++k) {
    FdRec f;
    uint8_t kind = 0;
    std::vector<uint8_t> path;
    if (!r.U8(&kind) || !r.I32(&f.flags) || !r.U64(&f.offset) ||
        !r.Sized(&path) || !r.U64(&f.pipe_id) || !r.Sized(&f.pipe_buf)) {
      return Error{kTrunc};
    }
    if (kind > static_cast<uint8_t>(FdRec::Kind::kPipeWrite)) {
      return Error{"snapshot: unknown fd kind " + std::to_string(kind)};
    }
    f.kind = static_cast<FdRec::Kind>(kind);
    f.path.assign(path.begin(), path.end());
    snap.fds.push_back(std::move(f));
  }
  if (r.Remaining() != 0) {
    return Error{"snapshot: trailing bytes after the fd table"};
  }
  return snap;
}

Status WriteFile(const Snapshot& snap, const std::string& path) {
  const std::vector<uint8_t> bytes = Serialize(snap);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::Fail("snapshot: cannot open " + path + " for write");
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) return Status::Fail("snapshot: short write to " + path);
  return Status::Ok();
}

Result<Snapshot> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Error{"snapshot: cannot open " + path};
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                             std::istreambuf_iterator<char>());
  return Deserialize({bytes.data(), bytes.size()});
}

}  // namespace lfi::snapshot
