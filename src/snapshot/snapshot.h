// Sandbox snapshots: checkpoint/restore images for fast instantiation.
//
// A Snapshot freezes one sandbox at a point in time — register file,
// page table (slot-relative offsets, perms, payloads), heap/mmap cursors,
// fd-table metadata, and signal state — without copying any memory: page
// payloads are held by shared_ptr, so the copy-on-write machinery in
// AddressSpace (WritablePage's use_count test) guarantees the snapshot
// stays immutable while the live sandbox keeps running. Restoring into a
// slot installs only the pages whose payload pointer or perms diverged
// from the captured ones, which is what makes snapshot-based restart and
// the warm spawn pool cheap (docs/SNAPSHOTS.md).
//
// Everything in the image is slot-relative: page offsets are offsets from
// the sandbox base, and the reserved pointer registers (pc, sp, x18, x21,
// x23, x24, x30) are rebased `new_base | low32` at restore — the same
// arithmetic the guards perform, which is why one image can instantiate
// any number of sandboxes in distinct slots (the paper's Section 5.3 fork
// argument, applied to spawning).
//
// The on-disk format (Serialize/Deserialize) is versioned and
// checksummed; all-zero pages are elided. Layout (little-endian):
//
//   magic    "LFISNAP\0" (8 bytes)
//   version  u32 (kFormatVersion)
//   page_sz  u64 (must equal emu::kPageSize)
//   cpu      x0..x30, sp, pc, nzcv word, vr[32] lo/hi, excl state
//   scalars  brk_start, brk, brk_mapped, mmap_cursor, mmap_bytes
//   sig      handlers[32], in_handler, cookie, frame_addr, delivered
//   mappings u32 count, then {offset u64, len u64, perms u8}
//   pages    u32 count, then {offset u64, perms u8, kind u8,
//                             payload (kPageSize bytes iff kind == 1)}
//   fds      u32 count, then {kind u8, flags i32, offset u64,
//                             path u32+bytes, pipe_id u64,
//                             pipe_buf u32+bytes}
//   checksum u64 FNV-1a over everything above
//
// Deserialize distinguishes bad magic, unsupported version, truncation,
// and checksum mismatch with distinct error messages so operators can
// tell a wrong file from a damaged one.
#ifndef LFI_SNAPSHOT_SNAPSHOT_H_
#define LFI_SNAPSHOT_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "emu/machine.h"
#include "support/result.h"

namespace lfi::snapshot {

inline constexpr uint32_t kFormatVersion = 1;

// One captured page: slot-relative offset, perms, shared payload.
struct PageRec {
  uint64_t offset = 0;
  uint8_t perms = 0;
  std::shared_ptr<emu::AddressSpace::PageData> data;
};

// One captured file descriptor. kFile records the VFS path so a restore
// can reopen it (create/trunc flags are stripped at reopen); pipe
// endpoints are grouped by pipe_id and rehydrated as private pipes
// preserving the bytes buffered at capture time.
struct FdRec {
  // Mirrors runtime::FileDesc::Kind numerically (asserted in runtime.cc).
  enum class Kind : uint8_t {
    kFree, kStdin, kStdout, kStderr, kFile, kPipeRead, kPipeWrite
  };
  Kind kind = Kind::kFree;
  int32_t flags = 0;
  uint64_t offset = 0;
  std::string path;               // kFile only
  uint64_t pipe_id = 0;           // groups endpoints of one pipe
  std::vector<uint8_t> pipe_buf;  // recorded once per pipe_id
};

// The frozen sandbox image.
struct Snapshot {
  // Register file as captured; the reserved pointer registers are rebased
  // at restore (see the file comment), the rest are copied verbatim.
  emu::CpuState cpu;

  uint64_t brk_start = 0, brk = 0, brk_mapped = 0;
  uint64_t mmap_cursor = 0, mmap_bytes = 0;

  // Signal-delivery state: handler table (slot-relative addresses) plus
  // the live-frame fields, so a snapshot taken mid-handler restores
  // mid-handler.
  std::array<uint64_t, 32> sig_handlers{};
  bool sig_in_handler = false;
  uint64_t sig_cookie = 0;
  uint64_t sig_frame_addr = 0;  // slot-relative
  uint32_t sig_delivered = 0;

  // Mapped ranges: slot offset -> (len, perms). Mirrors Proc::mappings.
  std::map<uint64_t, std::pair<uint64_t, uint8_t>> mappings;

  // Every mapped page, sorted by offset.
  std::vector<PageRec> pages;

  std::vector<FdRec> fds;

  uint64_t page_count() const { return pages.size(); }
};

// On-disk format.
std::vector<uint8_t> Serialize(const Snapshot& snap);
Result<Snapshot> Deserialize(std::span<const uint8_t> bytes);

// File convenience wrappers around Serialize/Deserialize.
Status WriteFile(const Snapshot& snap, const std::string& path);
Result<Snapshot> ReadFile(const std::string& path);

}  // namespace lfi::snapshot

#endif  // LFI_SNAPSHOT_SNAPSHOT_H_
