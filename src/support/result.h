// Minimal expected-style result type used across the library.
//
// C++20 has no std::expected; this is the small subset we need. Functions on
// untrusted-input paths (parser, decoder, verifier, loader) return
// Result<T> or Status instead of throwing, per the project's error-handling
// convention.
#ifndef LFI_SUPPORT_RESULT_H_
#define LFI_SUPPORT_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace lfi {

// Error carrying a human-readable message.
struct Error {
  std::string message;
};

// A value or an error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Error error) : error_(std::move(error)) {}    // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { assert(ok()); return *value_; }
  T& value() & { assert(ok()); return *value_; }
  T&& value() && { assert(ok()); return *std::move(value_); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const std::string& error() const {
    assert(!ok());
    return error_->message;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

// A success/failure status with message on failure.
class Status {
 public:
  static Status Ok() { return Status(); }
  static Status Fail(std::string message) {
    Status s;
    s.error_ = Error{std::move(message)};
    return s;
  }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const std::string& error() const {
    assert(!ok());
    return error_->message;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace lfi

#endif  // LFI_SUPPORT_RESULT_H_
