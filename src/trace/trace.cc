#include "trace/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace lfi::trace {

namespace {

constexpr const char* kCounterNames[] = {
    "inst-retired",
    "guards-executed",
    "loads",
    "stores",
    "syscalls",
    "context-switches",
    "fast-yields",
    "block-cache-hits",
    "block-cache-misses",
    "block-cache-invalidations",
    "pipe-bytes-read",
    "pipe-bytes-written",
    "faults",
    "forks",
    "signals-delivered",
    "sigreturns",
    "restarts",
    "limit-rejections",
    "chaos-injections",
    "snapshot-restores",
    "snapshot-dirty-pages",
    "snapshot-spawns",
    "recycles",
    "embed-calls",
    "embed-callbacks",
};
static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) ==
              static_cast<size_t>(Counter::kCount));

constexpr const char* kEventKindNames[] = {
    "sched-slice",   "sched-switch", "syscall", "syscall-block",
    "yield-to",      "fork",         "pipe-read", "pipe-write",
    "block-invalidate", "fault",     "proc-exit",
    "signal-deliver", "sigreturn", "proc-restart", "limit-hit",
    "chaos-inject",  "snapshot-restore", "snapshot-spawn",
    "serve-dispatch", "serve-complete", "serve-shed",
    "serve-retry",   "serve-breaker", "serve-degrade",
    "embed-call",    "embed-callback",
};
static_assert(sizeof(kEventKindNames) / sizeof(kEventKindNames[0]) ==
              static_cast<size_t>(EventKind::kCount));

// Formats a syscall number through the caller's name table, with a
// stable fallback so exports never depend on the runtime being linked.
void FormatSyscallName(char* buf, size_t n, int number,
                       SyscallNameFn syscall_name) {
  const char* name = syscall_name != nullptr ? syscall_name(number) : nullptr;
  if (name != nullptr) {
    snprintf(buf, n, "%s", name);
  } else {
    snprintf(buf, n, "rtcall#%d", number);
  }
}

// Cycles -> trace_event microsecond timestamp at `ghz`, printed with a
// fixed format so identical simulations serialize identically.
void WriteTimestampUs(std::ostream& os, uint64_t cycles, double ghz) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.3f",
           static_cast<double>(cycles) / (ghz * 1000.0));
  os << buf;
}

}  // namespace

const char* CounterName(Counter c) {
  auto i = static_cast<size_t>(c);
  return i < static_cast<size_t>(Counter::kCount) ? kCounterNames[i] : "?";
}

const char* EventKindName(EventKind k) {
  auto i = static_cast<size_t>(k);
  return i < static_cast<size_t>(EventKind::kCount) ? kEventKindNames[i] : "?";
}

void TraceSink::WriteStats(std::ostream& os,
                           SyscallNameFn syscall_name) const {
  os << "=== per-sandbox metrics ===\n";
  for (const auto& [pid, m] : metrics_) {
    char line[128];
    snprintf(line, sizeof(line), "sandbox pid %d\n", pid);
    os << line;
    for (size_t i = 0; i < static_cast<size_t>(Counter::kCount); ++i) {
      if (m.c[i] == 0) continue;
      snprintf(line, sizeof(line), "  %-26s %12" PRIu64 "\n",
               kCounterNames[i], m.c[i]);
      os << line;
    }
    for (int n = 0; n < kMaxSyscalls; ++n) {
      if (m.syscalls[n] == 0) continue;
      char name[32];
      FormatSyscallName(name, sizeof(name), n, syscall_name);
      snprintf(line, sizeof(line), "    syscall %-18s %12" PRIu64 "\n", name,
               m.syscalls[n]);
      os << line;
    }
  }
  char line[128];
  snprintf(line, sizeof(line),
           "events retained %zu / capacity %zu (dropped %" PRIu64 ")\n",
           ring_.size(), ring_.capacity(), ring_.dropped());
  os << line;
}

void TraceSink::WriteChromeTrace(std::ostream& os, double ghz,
                                 SyscallNameFn syscall_name) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  // Process/thread metadata so viewers label each sandbox's track.
  bool first = true;
  for (const auto& [pid, m] : metrics_) {
    (void)m;
    if (!first) os << ",\n";
    first = false;
    char line[160];
    snprintf(line, sizeof(line),
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
             "\"args\":{\"name\":\"sandbox %d\"}}",
             pid, pid, pid);
    os << line;
  }
  for (size_t k = 0; k < ring_.size(); ++k) {
    const Event& e = ring_.at(k);
    if (!first) os << ",\n";
    first = false;
    char name[48];
    switch (e.kind) {
      case EventKind::kSyscall:
      case EventKind::kSyscallBlock:
        FormatSyscallName(name, sizeof(name), static_cast<int>(e.arg0),
                          syscall_name);
        break;
      default:
        snprintf(name, sizeof(name), "%s", EventKindName(e.kind));
        break;
    }
    char head[96];
    snprintf(head, sizeof(head), "{\"name\":\"%s\",\"pid\":%d,\"tid\":%d,",
             name, e.pid, e.pid);
    os << head;
    if (e.end > e.start) {
      os << "\"ph\":\"X\",\"ts\":";
      WriteTimestampUs(os, e.start, ghz);
      os << ",\"dur\":";
      WriteTimestampUs(os, e.end - e.start, ghz);
    } else {
      os << "\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      WriteTimestampUs(os, e.start, ghz);
    }
    char args[160];
    snprintf(args, sizeof(args),
             ",\"args\":{\"kind\":\"%s\",\"cycle\":%" PRIu64
             ",\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64 "}}",
             EventKindName(e.kind), e.start, e.arg0, e.arg1);
    os << args;
  }
  os << "\n]}\n";
}

}  // namespace lfi::trace
