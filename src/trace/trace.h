// Per-sandbox tracing & metrics (observability for the runtime story).
//
// The paper's performance claims (Table 5 syscall/pipe/yield costs, the
// Section 5.3 scheduler, Section 4.4 runtime calls) are asserted by
// end-to-end benchmarks; this subsystem lets them be *decomposed*: every
// sandbox gets a Metrics block of monotonic counters, and the runtime
// emits cycle-stamped events into a fixed-capacity ring buffer that can be
// exported as a human table (`lfi-run --stats`) or Chrome trace_event
// JSON (`lfi-run --trace out.json`, viewable in Perfetto or
// chrome://tracing).
//
// Determinism: timestamps come from the emulator's simulated-cycle clock
// (Timing::Cycles()), never from host time, so two runs of the same
// program produce byte-identical trace files. Host-time measurements
// (e.g. verifier pass timing) are confined to the --stats table.
//
// Cost: everything here is pull-based and branch-gated. The Machine's
// hot loop is compiled with the counting path behind a single
// pointer-null test per *block* (not per instruction); with no counters
// attached the dispatch loop is byte-for-byte the pre-trace code path.
#ifndef LFI_TRACE_TRACE_H_
#define LFI_TRACE_TRACE_H_

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

namespace lfi::trace {

// Per-sandbox counter identifiers. All counters are monotonic and count
// *retired* work: an instruction that faults (and therefore does not
// retire) shows up in kFaults, not in kLoads/kStores.
enum class Counter : uint8_t {
  kInstRetired = 0,      // instructions retired while this sandbox ran
  kGuardsExecuted,       // LFI guard instructions retired (add xR,x21,wN,uxtw
                         // family + the sp guard)
  kLoads,                // load instructions retired (ldp counts once)
  kStores,               // store instructions retired (stp counts once)
  kSyscalls,             // runtime calls entered (all numbers; see
                         // Metrics::syscalls for the per-number split)
  kContextSwitches,      // full context switches into this sandbox
  kFastYields,           // fast direct-yield switches into this sandbox
  kBlockCacheHits,       // decode-cache block entries served from cache
  kBlockCacheMisses,     // block entries that had to decode
  kBlockCacheInvalidations,  // whole-cache drops (mutation generation)
  kPipeBytesRead,        // bytes moved out of pipes by this sandbox
  kPipeBytesWritten,     // bytes moved into pipes by this sandbox
  kFaults,               // faults that killed this sandbox
  kForks,                // successful forks performed by this sandbox
  kSignalsDelivered,     // fault signals delivered to a sandbox handler
  kSigreturns,           // successful sigreturn completions
  kRestarts,             // restart-policy image reloads
  kLimitRejections,      // syscalls rejected by a resource limit
  kChaosInjections,      // faults/errors injected by the chaos engine
  kSnapshotRestores,     // restore-from-snapshot operations on this sandbox
  kSnapshotDirtyPages,   // pages a restore actually had to re-install
  kSnapshotSpawns,       // sandboxes instantiated from a snapshot
  kRecycles,             // exited sandboxes rolled back and re-parked
  kEmbedCalls,           // typed host->guest calls driven into this sandbox
  kEmbedCallbacks,       // guest->host callback round-trips
  kCount,
};

// Stable kebab-case name ("inst-retired", ...), for the stats table.
const char* CounterName(Counter c);

// Highest runtime-call number tracked with its own slot; calls >= this
// are tallied in the last slot. (The runtime currently defines 16.)
inline constexpr int kMaxSyscalls = 32;

// One sandbox's counters.
struct Metrics {
  std::array<uint64_t, static_cast<size_t>(Counter::kCount)> c{};
  std::array<uint64_t, kMaxSyscalls> syscalls{};  // by runtime-call number

  void Add(Counter id, uint64_t n = 1) {
    c[static_cast<size_t>(id)] += n;
  }
  uint64_t Get(Counter id) const { return c[static_cast<size_t>(id)]; }
  void AddSyscall(int number) {
    ++syscalls[number >= 0 && number < kMaxSyscalls ? number
                                                    : kMaxSyscalls - 1];
  }
};

// Aggregate counters maintained by the Machine's dispatch loop while
// tracing is attached. The Machine has no notion of sandboxes; the
// runtime snapshots this accumulator around each timeslice and attributes
// the delta to the sandbox that ran (see Runtime::RunUntilIdle).
struct ExecCounters {
  uint64_t retired = 0;
  uint64_t guards = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t block_hits = 0;
  uint64_t block_misses = 0;
  uint64_t block_invalidations = 0;
};

// Event kinds recorded in the ring. Interval events (kSchedSlice,
// kSyscall) have end >= start; the rest are instants (end == start).
enum class EventKind : uint8_t {
  kSchedSlice = 0,  // sandbox occupied the machine; arg0 = stop reason
  kSchedSwitch,     // scheduler picked this pid; arg0 = previous pid,
                    // arg1 = 1 for a fast direct yield
  kSyscall,         // runtime call; arg0 = call number, arg1 = x0 result
  kSyscallBlock,    // runtime call blocked; arg0 = call number
  kYieldTo,         // fast direct yield; arg0 = target pid
  kFork,            // arg0 = child pid
  kPipeRead,        // arg0 = fd, arg1 = bytes
  kPipeWrite,       // arg0 = fd, arg1 = bytes
  kBlockInvalidate, // decode cache dropped; arg0 = the sandbox's running
                    // invalidation count (instantiation-path independent)
  kFault,           // sandbox killed; arg0 = 0
  kProcExit,        // arg0 = exit status (as u64)
  kSignalDeliver,   // fault signal delivered; arg0 = signo, arg1 = frame
  kSigreturn,       // handler returned; arg0 = resumed pc
  kProcRestart,     // restart policy reloaded the image; arg0 = restart
                    // count, arg1 = backoff cycles charged
  kLimitHit,        // resource limit rejection; arg0 = LimitKind, arg1 =
                    // observed value
  kChaosInject,     // chaos engine injection; arg0 = fault kind or call
                    // number, arg1 = 0 for cpu faults / errno for syscalls
  kSnapshotRestore, // restore-from-snapshot; arg0 = dirty pages installed,
                    // arg1 = total snapshot pages
  kSnapshotSpawn,   // sandbox instantiated from a snapshot; arg0 = pages
  kServeDispatch,   // serving layer handed a request to this sandbox;
                    // arg0 = request id, arg1 = 1 if the sandbox came
                    // from the warm pool, 0 if cold-instantiated
  kServeComplete,   // request finished; arg0 = request id, arg1 = latency
                    // in cycles
  kServeShed,       // request shed by admission control (pid 0); arg0 =
                    // request id, arg1 = 0 queue-full / 1 deadline /
                    // 2 tenant-quota / 3 breaker-open / 4 degraded
  kServeRetry,      // failed request re-enqueued (pid 0); arg0 = request
                    // id, arg1 = backoff cycles until it is eligible
  kServeBreaker,    // tenant circuit-breaker transition (pid 0); arg0 =
                    // tenant, arg1 = new state (0 closed / 1 open /
                    // 2 half-open)
  kServeDegrade,    // overload-ladder transition (pid 0); arg0 = new
                    // level (0 normal / 1 shed-low-tier / 2 no-retry /
                    // 3 fast-fail), arg1 = queue-depth EWMA
  kEmbedCall,       // one host->guest embedded call (interval); arg0 =
                    // entry offset (low 32 bits), arg1 = embed::Err code
                    // of the outcome (0 = ok)
  kEmbedCallback,   // guest->host callback dispatched; arg0 = callback
                    // index, arg1 = nesting depth at dispatch
  kCount,
};

const char* EventKindName(EventKind k);

// One trace event, cycle-stamped from the simulated clock.
struct Event {
  uint64_t start = 0;  // simulated cycle of the event (or interval start)
  uint64_t end = 0;    // interval end; == start for instant events
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  int32_t pid = 0;
  EventKind kind = EventKind::kSchedSlice;
};

// Fixed-capacity flight recorder: keeps the most recent `capacity` events
// and counts how many were dropped. Iteration yields events oldest-first.
class EventRing {
 public:
  explicit EventRing(size_t capacity) : buf_(capacity) {}

  void Push(const Event& e) {
    if (buf_.empty()) {
      ++dropped_;
      return;
    }
    buf_[head_] = e;
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  size_t size() const { return size_; }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return buf_.size(); }

  // k-th oldest retained event, k in [0, size()).
  const Event& at(size_t k) const {
    return buf_[(head_ + buf_.size() - size_ + k) % buf_.size()];
  }

 private:
  std::vector<Event> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

// Maps a runtime-call number to a display name; nullptr return falls back
// to "rtcall#N". Kept as a function pointer so this library stays below
// the runtime in the dependency order.
using SyscallNameFn = const char* (*)(int);

// The per-run sink: one Metrics block per sandbox plus the event ring.
// Attach to a Runtime with Runtime::set_trace_sink(); the bench harness
// attaches one the same way to decompose its cycle totals.
class TraceSink {
 public:
  explicit TraceSink(size_t ring_capacity = size_t{1} << 16)
      : ring_(ring_capacity) {}

  Metrics& metrics(int pid) { return metrics_[pid]; }
  const std::map<int, Metrics>& all_metrics() const { return metrics_; }
  const EventRing& ring() const { return ring_; }

  void Emit(EventKind kind, int pid, uint64_t start, uint64_t end,
            uint64_t arg0 = 0, uint64_t arg1 = 0) {
    ring_.Push({start, end, arg0, arg1, pid, kind});
  }
  void EmitInstant(EventKind kind, int pid, uint64_t cycles,
                   uint64_t arg0 = 0, uint64_t arg1 = 0) {
    Emit(kind, pid, cycles, cycles, arg0, arg1);
  }

  // Human-readable per-sandbox counter table (the `--stats` view).
  void WriteStats(std::ostream& os, SyscallNameFn syscall_name) const;

  // Chrome trace_event JSON (the `--trace` view): sched slices and
  // syscalls become complete ("X") events, the rest instants ("i").
  // Timestamps are simulated cycles scaled to microseconds at `ghz`;
  // output is byte-deterministic for a deterministic simulation.
  void WriteChromeTrace(std::ostream& os, double ghz,
                        SyscallNameFn syscall_name) const;

 private:
  std::map<int, Metrics> metrics_;  // ordered: deterministic export
  EventRing ring_;
};

}  // namespace lfi::trace

#endif  // LFI_TRACE_TRACE_H_
