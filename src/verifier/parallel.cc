// Sharded verification drivers (the throughput leg of the verifier).
//
// The Section 5.2 pass is a single linear scan whose per-instruction
// checks depend only on the decoded array (the x30 rule looks one
// instruction ahead, the sp rule scans forward to the next branch), so
// it shards embarrassingly: decode disjoint word ranges in parallel,
// then check disjoint instruction ranges in parallel with every worker
// reading the full decoded array for lookahead. Determinism is the
// design constraint, not an afterthought: both passes reduce per-shard
// first-failures to the global minimum offset, so the verdict — ok,
// fail_offset, kind, reason, insts_checked — is bit-identical to the
// serial pass for every input and every shard count.
#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "arch/decode.h"
#include "verifier/verifier.h"

namespace lfi::verifier {

namespace {

using arch::Inst;

// Below this many instructions the thread spawn/join overhead dominates
// and the serial pass is both faster and trivially identical.
constexpr size_t kMinShardInsts = 1024;

unsigned ResolveThreads(unsigned nthreads) {
  if (nthreads == 0) nthreads = std::thread::hardware_concurrency();
  return nthreads == 0 ? 1 : nthreads;
}

// Evenly split [0, n) into `shards` contiguous ranges; shard s gets
// [Bound(s), Bound(s+1)). The split depends only on (n, shards), never
// on scheduling, so shard boundaries are reproducible.
size_t Bound(size_t n, unsigned shards, unsigned s) {
  return static_cast<size_t>(static_cast<uint64_t>(n) * s / shards);
}

}  // namespace

VerifyResult VerifyParallel(std::span<const uint8_t> text,
                            const VerifyOptions& opts, unsigned nthreads,
                            VerifyStats* stats) {
  nthreads = ResolveThreads(nthreads);
  const size_t nwords = text.size() / 4;
  if (nthreads <= 1 || nwords < 2 * kMinShardInsts) {
    return Verify(text, opts, stats);
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 =
      stats != nullptr ? Clock::now() : Clock::time_point{};
  bool decoded = false;
  Clock::time_point decode_done = t0;
  auto finish = [&](VerifyResult r) {
    if (stats != nullptr) {
      const Clock::time_point t1 = Clock::now();
      ++stats->calls;
      ++stats->fail_counts[static_cast<size_t>(r.kind)];
      stats->insts_checked += r.insts_checked;
      const Clock::time_point split = decoded ? decode_done : t1;
      stats->decode_seconds +=
          std::chrono::duration<double>(split - t0).count();
      stats->check_seconds +=
          std::chrono::duration<double>(t1 - split).count();
    }
    return r;
  };

  if (text.size() % 4 != 0) {
    return finish(VerifyResult::Fail(text.size() & ~uint64_t{3},
                                     FailKind::kTextSize,
                                     "text size not a multiple of 4"));
  }

  const unsigned shards = static_cast<unsigned>(std::min<size_t>(
      nthreads, std::max<size_t>(1, nwords / kMinShardInsts)));

  // Pass 1: decode disjoint word ranges into a pre-sized array. A shard
  // stops at its own first undecodable word; the earliest such offset
  // across shards is exactly the offset the serial pass would report
  // (everything before it decodes, so no earlier failure exists).
  std::vector<Inst> insts(nwords);
  std::vector<size_t> decode_fail(shards, SIZE_MAX);
  {
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
      workers.emplace_back([&, s] {
        const size_t lo = Bound(nwords, shards, s);
        const size_t hi = Bound(nwords, shards, s + 1);
        for (size_t w = lo; w < hi; ++w) {
          auto inst = arch::Decode(arch::ReadWordLE(text, w * 4));
          if (!inst) {
            decode_fail[s] = w;
            break;
          }
          insts[w] = *inst;
        }
      });
    }
    for (auto& t : workers) t.join();
  }
  const size_t bad_word =
      *std::min_element(decode_fail.begin(), decode_fail.end());
  if (bad_word != SIZE_MAX) {
    // Re-decode the one word to regenerate the serial pass's message.
    auto inst = arch::Decode(arch::ReadWordLE(text, bad_word * 4));
    return finish(
        VerifyResult::Fail(bad_word * 4, FailKind::kUndecodable,
                           "undecodable instruction: " + inst.error()));
  }
  decoded = true;
  if (stats != nullptr) decode_done = Clock::now();

  // Pass 2: check disjoint instruction ranges. Workers read the whole
  // array, so the x30 one-ahead rule and the unbounded sp forward scan
  // cross shard boundaries with no special casing. Reasons are skipped
  // in the hot loop and regenerated once for the winning offset.
  std::vector<size_t> check_fail(shards, SIZE_MAX);
  {
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
      workers.emplace_back([&, s] {
        const size_t lo = Bound(nwords, shards, s);
        const size_t hi = Bound(nwords, shards, s + 1);
        for (size_t k = lo; k < hi; ++k) {
          if (CheckInst(insts, k, opts) != FailKind::kNone) {
            check_fail[s] = k;
            break;
          }
        }
      });
    }
    for (auto& t : workers) t.join();
  }
  const size_t bad_inst =
      *std::min_element(check_fail.begin(), check_fail.end());
  if (bad_inst != SIZE_MAX) {
    std::string reason;
    const FailKind kind = CheckInst(insts, bad_inst, opts, &reason);
    return finish(VerifyResult::Fail(bad_inst * 4, kind, std::move(reason)));
  }
  return finish(VerifyResult::Ok(insts.size()));
}

std::vector<VerifyResult> VerifyBatch(
    std::span<const std::span<const uint8_t>> texts,
    const VerifyOptions& opts, unsigned nthreads, VerifyStats* stats) {
  nthreads = ResolveThreads(nthreads);
  const size_t n = texts.size();
  std::vector<VerifyResult> results(n);
  // Per-module stats buckets, merged in module order below: summing
  // doubles in a fixed order makes even the wall-clock fields
  // scheduling-independent for a given set of measurements.
  std::vector<VerifyStats> mod_stats(stats != nullptr ? n : 0);
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      results[i] =
          Verify(texts[i], opts, stats != nullptr ? &mod_stats[i] : nullptr);
    }
  };
  const unsigned workers =
      static_cast<unsigned>(std::min<size_t>(nthreads, n == 0 ? 1 : n));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (stats != nullptr) {
    for (const VerifyStats& m : mod_stats) {
      stats->calls += m.calls;
      stats->insts_checked += m.insts_checked;
      stats->decode_seconds += m.decode_seconds;
      stats->check_seconds += m.check_seconds;
      for (size_t k = 0; k < m.fail_counts.size(); ++k) {
        stats->fail_counts[k] += m.fail_counts[k];
      }
    }
  }
  return results;
}

}  // namespace lfi::verifier
