#include "verifier/verifier.h"

#include <chrono>
#include <vector>

#include "arch/decode.h"
#include "arch/inst.h"

namespace lfi::verifier {

namespace {

using arch::AddrMode;
using arch::Inst;
using arch::Mn;
using arch::Reg;
using arch::Width;

// A classified rule violation; kind == kNone means the check passed.
struct Violation {
  FailKind kind = FailKind::kNone;
  std::string reason;

  Violation() = default;
  Violation(FailKind k, std::string r) : kind(k), reason(std::move(r)) {}
  bool ok() const { return kind == FailKind::kNone; }
};

// True if `r` is a register that is architecturally guaranteed (by the
// invariants this verifier enforces) to hold a valid sandbox address:
// x18, x21, x23, x24.
bool IsAddressReg(Reg r) { return arch::IsAddressReserved(r); }

// Checks the addressing of one memory access. `i` must be a memory access.
Violation CheckAccess(const Inst& i, const VerifyOptions& opts) {
  const auto& m = i.mem;
  // Total footprint of the access (pair accesses touch 2*msize).
  const uint64_t footprint =
      (i.mn == Mn::kLdp || i.mn == Mn::kStp) ? 2u * i.msize : i.msize;

  if (m.IsRegOffset()) {
    // Only the guarded mode is safe: base x21, 32-bit zero-extended index,
    // no shift (a shifted index could scale past the 4GiB slot).
    if (m.mode != AddrMode::kRegUxtw) {
      return {FailKind::kBadAddressingMode,
              "register-offset access without uxtw"};
    }
    if (m.base != arch::kRegBase) {
      return {FailKind::kBadAddressingMode,
              "guarded addressing mode requires base x21"};
    }
    if (m.shift != 0) {
      return {FailKind::kBadAddressingMode,
              "guarded addressing mode must use shift #0"};
    }
    return {};
  }

  // Immediate modes: base must be a reserved address register or sp.
  if (!IsAddressReg(m.base) && !m.base.IsSp()) {
    return {FailKind::kBadAddressingMode,
            "memory access through unguarded base register"};
  }
  // Writeback modifies the base: only sp may be updated this way (the
  // +-256-byte index stays well inside the guard region, Section 4.2).
  if (m.HasWriteback() && !m.base.IsSp()) {
    return {FailKind::kReservedWriteback,
            "writeback addressing on a reserved register"};
  }
  // The offset must not be able to escape past a guard region even when
  // the base sits at the very edge of the sandbox.
  const int64_t lo = m.imm;
  const int64_t hi = m.imm + static_cast<int64_t>(footprint);
  if (lo < -static_cast<int64_t>(opts.guard_bytes) ||
      hi > static_cast<int64_t>(opts.guard_bytes)) {
    return {FailKind::kGuardRangeOverflow,
            "immediate offset reaches past the guard region"};
  }
  return {};
}

// True if this instruction is `blr x30`.
bool IsBlrX30(const Inst& i) {
  return i.mn == Mn::kBlr && i.rn == arch::kRegLink;
}

// True if `i` is a valid runtime-call-table load: ldr x30, [x21, #n]
// with n inside the table.
bool IsTableLoad(const Inst& i, const VerifyOptions& opts) {
  return i.mn == Mn::kLdr && !i.msigned && i.msize == 8 &&
         i.rt == arch::kRegLink && i.mem.base == arch::kRegBase &&
         i.mem.mode == AddrMode::kImm && i.mem.imm >= 0 &&
         static_cast<uint64_t>(i.mem.imm) + 8 <= opts.table_bytes;
}

// Checks writes to reserved registers in instruction `insts[k]`.
Violation CheckReservedWrites(std::span<const Inst> insts, size_t k,
                              const VerifyOptions& opts) {
  const Inst& i = insts[k];

  // x21 (sandbox base): never written, through any channel.
  if (arch::WritesGpr(i, arch::kRegBase)) {
    return {FailKind::kBaseRegWrite, "write to x21"};
  }

  // x18/x23/x24: only the guard.
  for (Reg r : {arch::kRegAddr, arch::kRegHoist0, arch::kRegHoist1}) {
    if (arch::WritesGpr(i, r) && !arch::IsGuardFor(i, r)) {
      return {FailKind::kAddressRegWrite,
              "unguarded write to " + arch::RegName(r, Width::kX)};
    }
  }

  // x22: any write must zero the top 32 bits.
  if (arch::WritesGpr(i, arch::kRegScratch) &&
      !arch::WriteZeroExtends(i, arch::kRegScratch)) {
    return {FailKind::kScratchRegWrite,
            "64-bit write to x22 breaks its 32-bit invariant"};
  }

  // x30: guard, bl/blr, or a table load followed immediately by blr x30.
  if (arch::WritesGpr(i, arch::kRegLink)) {
    const bool by_branch = i.mn == Mn::kBl || i.mn == Mn::kBlr;
    const bool by_guard = arch::IsGuardFor(i, arch::kRegLink);
    if (!by_branch && !by_guard) {
      if (IsTableLoad(i, opts)) {
        if (k + 1 >= insts.size() || !IsBlrX30(insts[k + 1])) {
          return {FailKind::kLinkRegProtocol,
                  "call-table load of x30 not followed by blr x30"};
        }
      } else if (arch::IsLoad(i)) {
        // A reload of x30 from memory (e.g. an epilogue ldp) must be
        // followed by the x30 guard before any branch could use it.
        if (k + 1 >= insts.size() ||
            !arch::IsGuardFor(insts[k + 1], arch::kRegLink)) {
          return {FailKind::kLinkRegProtocol,
                  "load of x30 not followed by its guard"};
        }
      } else {
        return {FailKind::kLinkRegProtocol, "unguarded write to x30"};
      }
    }
  }

  // sp: guard, small add/sub with an in-block sp access following, or
  // pre/post-index writeback (already restricted to sp in CheckAccess).
  if (arch::WritesGpr(i, Reg::Sp())) {
    if (arch::IsMemAccess(i)) {
      // sp writeback: the imm9 encoding bounds the step to +-256 bytes.
      return {};
    }
    if (arch::IsSpGuard(i)) return {};
    const bool small_adjust =
        (i.mn == Mn::kAddImm || i.mn == Mn::kSubImm) && i.rn.IsSp() &&
        i.rd.IsSp() && i.width == Width::kX && i.imm < 1024;
    if (!small_adjust) {
      return {FailKind::kSpProtocol, "unguarded write to sp"};
    }
    // Scan forward: an sp-based access must occur before any branch and
    // before any further sp write (other than sp-based writeback, which
    // itself proves sp is in-bounds).
    for (size_t j = k + 1; j < insts.size(); ++j) {
      const Inst& n = insts[j];
      if (arch::IsBranch(n)) {
        return {FailKind::kSpProtocol,
                "sp adjusted without a following in-block access"};
      }
      if (arch::IsMemAccess(n) && n.mem.base.IsSp()) return {};
      if (arch::IsSpGuard(n)) return {};  // re-canonicalized: safe
      if (arch::WritesGpr(n, Reg::Sp())) {
        return {FailKind::kSpProtocol,
                "sp adjusted twice without an access"};
      }
    }
    return {FailKind::kSpProtocol,
            "sp adjusted without a following in-block access"};
  }
  return {};
}

// The full per-instruction check: allowlist/system, ll/sc, memory
// addressing, indirect branches, then reserved-register writes — in the
// exact precedence order the linear pass applies, since precedence is
// observable through FailKind when one instruction violates several
// rules at once.
Violation CheckInstImpl(std::span<const Inst> insts, size_t k,
                        const VerifyOptions& opts) {
  const Inst& i = insts[k];

  // Property 3: instruction allowlist. The decoder already rejects
  // everything outside the supported ARMv8.0 subset; system instructions
  // that do decode are forbidden here.
  if (i.mn == Mn::kSvc || i.mn == Mn::kMrs || i.mn == Mn::kMsr) {
    return {FailKind::kSystemInstruction, "system instruction"};
  }
  if (!opts.allow_llsc && (i.mn == Mn::kLdxr || i.mn == Mn::kStxr)) {
    return {FailKind::kLlscDisallowed,
            "ll/sc disallowed (timerless side-channel mitigation)"};
  }

  // Property 1a: memory accesses.
  if (arch::IsMemAccess(i)) {
    const bool pure_load = arch::IsLoad(i) && !arch::IsStore(i);
    if (opts.check_loads || !pure_load) {
      if (auto v = CheckAccess(i, opts); !v.ok()) return v;
    } else if (i.mem.HasWriteback() && !i.mem.base.IsSp() &&
               arch::IsReservedGpr(i.mem.base)) {
      return {FailKind::kReservedWriteback,
              "writeback on reserved register"};
    }
  }

  // Property 1b: indirect branches.
  if (arch::IsIndirectBranch(i)) {
    if (!IsAddressReg(i.rn) && i.rn != arch::kRegLink) {
      return {FailKind::kUnguardedIndirectBranch,
              "indirect branch through unguarded register"};
    }
  }

  // Property 2: reserved-register integrity.
  return CheckReservedWrites(insts, k, opts);
}

}  // namespace

FailKind CheckInst(std::span<const arch::Inst> insts, size_t k,
                   const VerifyOptions& opts, std::string* reason) {
  Violation v = CheckInstImpl(insts, k, opts);
  if (!v.ok() && reason != nullptr) *reason = std::move(v.reason);
  return v.kind;
}

const char* FailKindName(FailKind k) {
  switch (k) {
    case FailKind::kNone: return "none";
    case FailKind::kTextSize: return "text-size";
    case FailKind::kUndecodable: return "undecodable";
    case FailKind::kSystemInstruction: return "system-instruction";
    case FailKind::kLlscDisallowed: return "llsc-disallowed";
    case FailKind::kBadAddressingMode: return "bad-addressing-mode";
    case FailKind::kGuardRangeOverflow: return "guard-range-overflow";
    case FailKind::kReservedWriteback: return "reserved-writeback";
    case FailKind::kUnguardedIndirectBranch:
      return "unguarded-indirect-branch";
    case FailKind::kBaseRegWrite: return "base-reg-write";
    case FailKind::kAddressRegWrite: return "address-reg-write";
    case FailKind::kScratchRegWrite: return "scratch-reg-write";
    case FailKind::kLinkRegProtocol: return "link-reg-protocol";
    case FailKind::kSpProtocol: return "sp-protocol";
    case FailKind::kCount: break;
  }
  return "?";
}

VerifyResult Verify(std::span<const uint8_t> text,
                    const VerifyOptions& opts, VerifyStats* stats) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 =
      stats != nullptr ? Clock::now() : Clock::time_point{};
  bool decoded = false;
  Clock::time_point decode_done = t0;
  // Every return funnels through this so the stats accumulator sees the
  // verdict and the per-pass split regardless of which pass rejected.
  auto finish = [&](VerifyResult r) {
    if (stats != nullptr) {
      const Clock::time_point t1 = Clock::now();
      ++stats->calls;
      ++stats->fail_counts[static_cast<size_t>(r.kind)];
      stats->insts_checked += r.insts_checked;
      const Clock::time_point split = decoded ? decode_done : t1;
      stats->decode_seconds +=
          std::chrono::duration<double>(split - t0).count();
      stats->check_seconds +=
          std::chrono::duration<double>(t1 - split).count();
    }
    return r;
  };

  if (text.size() % 4 != 0) {
    return finish(VerifyResult::Fail(text.size() & ~uint64_t{3},
                                     FailKind::kTextSize,
                                     "text size not a multiple of 4"));
  }
  // Decode everything up front (still one linear pass; the lookahead rules
  // for x30 and sp need the decoded successors).
  std::vector<Inst> insts;
  insts.reserve(text.size() / 4);
  for (uint64_t off = 0; off < text.size(); off += 4) {
    auto inst = arch::Decode(arch::ReadWordLE(text, off));
    if (!inst) {
      return finish(
          VerifyResult::Fail(off, FailKind::kUndecodable,
                             "undecodable instruction: " + inst.error()));
    }
    insts.push_back(*inst);
  }
  decoded = true;
  if (stats != nullptr) decode_done = Clock::now();

  for (size_t k = 0; k < insts.size(); ++k) {
    if (auto v = CheckInstImpl(insts, k, opts); !v.ok()) {
      return finish(VerifyResult::Fail(k * 4, v.kind, std::move(v.reason)));
    }
  }
  return finish(VerifyResult::Ok(insts.size()));
}

}  // namespace lfi::verifier
