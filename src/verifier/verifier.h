// The LFI static verifier (Section 5.2).
//
// A small, single-linear-pass checker over the *machine code* of a
// program's text segment. It is the security-critical component: the
// compiler and rewriter are untrusted, and any program whose text passes
// this verifier is safe to run in a sandbox slot regardless of how it was
// produced. The properties enforced are exactly the paper's:
//
//  1. Loads, stores, and indirect branches only target reserved registers
//     (which always hold valid sandbox addresses) or use safe addressing
//     modes ([x21, wN, uxtw] with no shift; immediate offsets that cannot
//     reach past the guard regions).
//  2. Reserved registers are only modified in invariant-preserving ways:
//     x21 never; x18/x23/x24 only via `add xR, x21, wN, uxtw`; x22 only by
//     writes that zero the top 32 bits; x30 only by bl/blr, the guard, or
//     a call-table load immediately followed by `blr x30`; sp only via the
//     `add sp, x21, x22` guard, small add/sub followed in-block by an
//     sp-based access, or pre/post-index writeback.
//  3. Only instructions from the supported ARMv8.0 allowlist appear
//     (undecodable words and system instructions are rejected).
#ifndef LFI_VERIFIER_VERIFIER_H_
#define LFI_VERIFIER_VERIFIER_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "arch/inst.h"

namespace lfi::verifier {

struct VerifyOptions {
  // When false, loads are not checked (the "no loads" fault-isolation-only
  // configuration in Figure 3).
  bool check_loads = true;
  // Size of each guard region surrounding the sandbox. Immediate offsets
  // must not be able to reach past it.
  uint64_t guard_bytes = 48 * 1024;
  // Bytes of the runtime-call table at the sandbox base that x30 may be
  // loaded from.
  uint64_t table_bytes = 4096;
  // Allow load-linked/store-conditional (ldxr/stxr). Section 7.1: LL/SC
  // enables a timerless cache side channel on Apple M1 (S2C, USENIX Sec
  // '23); with software protection the fix is one verifier switch - the
  // kind of mitigation agility hardware protection cannot offer.
  bool allow_llsc = true;
};

// Stable classification of why a text was rejected. Tools that triage
// verdicts mechanically (the fuzzer, tests, CI) switch on this instead of
// string-matching the free-form `reason`, which stays human-oriented and
// may be reworded freely.
enum class FailKind : uint8_t {
  kNone = 0,                  // ok == true
  kTextSize,                  // text length not a multiple of 4
  kUndecodable,               // word outside the ARMv8.0 allowlist
  kSystemInstruction,         // svc/mrs/msr
  kLlscDisallowed,            // ldxr/stxr with allow_llsc == false
  kBadAddressingMode,         // unguarded base / non-uxtw register offset
  kGuardRangeOverflow,        // immediate offset reaches past a guard region
  kReservedWriteback,         // writeback addressing on a reserved register
  kUnguardedIndirectBranch,   // br/blr/ret through a non-reserved register
  kBaseRegWrite,              // any write to x21
  kAddressRegWrite,           // unguarded write to x18/x23/x24
  kScratchRegWrite,           // 64-bit write to x22
  kLinkRegProtocol,           // x30 written outside the bl/guard/table rules
  kSpProtocol,                // sp written outside the Section 4.2 rules
  kCount,                     // number of kinds (for histogram arrays)
};

// Short stable name for a kind ("sp-protocol", ...), for logs/artifacts.
const char* FailKindName(FailKind k);

struct VerifyResult {
  bool ok = false;
  uint64_t fail_offset = 0;  // byte offset of the offending instruction
  FailKind kind = FailKind::kNone;
  std::string reason;
  uint64_t insts_checked = 0;

  static VerifyResult Ok(uint64_t n) {
    VerifyResult r;
    r.ok = true;
    r.insts_checked = n;
    return r;
  }
  static VerifyResult Fail(uint64_t offset, FailKind kind,
                           std::string reason) {
    VerifyResult r;
    r.fail_offset = offset;
    r.kind = kind;
    r.reason = std::move(reason);
    return r;
  }
};

// Accumulated verification statistics, for observability (`lfi-run
// --stats`). Host wall-clock times, split by the verifier's two passes
// (decode-all, then the property checks); being host times they are NOT
// deterministic and must never feed the simulated-cycle trace.
struct VerifyStats {
  uint64_t calls = 0;             // Verify() invocations
  uint64_t insts_checked = 0;     // instructions in accepted texts
  double decode_seconds = 0;
  double check_seconds = 0;
  // Verdict histogram; index FailKind::kNone counts accepted texts.
  std::array<uint64_t, static_cast<size_t>(FailKind::kCount)> fail_counts{};
};

// Verifies a text segment (little-endian instruction words). When `stats`
// is non-null, per-pass timing and the verdict are accumulated into it.
VerifyResult Verify(std::span<const uint8_t> text,
                    const VerifyOptions& opts = {},
                    VerifyStats* stats = nullptr);

// Per-instruction classification hook: checks instruction `k` of an
// already-decoded text against every Section 5.2 property (system
// allowlist, ll/sc, memory addressing, indirect branches, reserved-
// register writes), with lookahead into `insts` for the x30 and sp
// context rules. Returns kNone when the instruction passes. This is the
// exact per-instruction body of Verify()'s check pass, exposed so the
// sharded driver and the verify_model enumerator classify single
// instructions without re-running the whole pipeline. `reason` (optional)
// receives the human-oriented explanation only on failure.
FailKind CheckInst(std::span<const arch::Inst> insts, size_t k,
                   const VerifyOptions& opts = {},
                   std::string* reason = nullptr);

// Sharded verification of one text: decodes and checks the instruction
// stream across up to `nthreads` worker threads (0 = hardware
// concurrency). The verdict is bit-identical to Verify() — same ok flag,
// fail_offset (first offending instruction, stable regardless of shard
// count), kind, reason, and insts_checked — because both passes reduce
// per-shard failures to the minimum offset. Deterministic VerifyStats
// fields (calls, fail_counts, insts_checked) also match serial exactly;
// the *_seconds fields remain host wall-clock and are not comparable.
// The check pass shards over instructions but every worker sees the full
// decoded array, so the unbounded sp lookahead crosses shard boundaries
// without special cases.
VerifyResult VerifyParallel(std::span<const uint8_t> text,
                            const VerifyOptions& opts = {},
                            unsigned nthreads = 0,
                            VerifyStats* stats = nullptr);

// Batch ingest: verifies `texts` as independent modules over a worker
// pool (0 = hardware concurrency). results[i] is bit-identical to
// Verify(texts[i], opts). When `stats` is non-null, per-module stats are
// accumulated and then merged in module order, so every deterministic
// field — and even the floating-point time sums — is independent of
// thread count and scheduling.
std::vector<VerifyResult> VerifyBatch(
    std::span<const std::span<const uint8_t>> texts,
    const VerifyOptions& opts = {}, unsigned nthreads = 0,
    VerifyStats* stats = nullptr);

}  // namespace lfi::verifier

#endif  // LFI_VERIFIER_VERIFIER_H_
