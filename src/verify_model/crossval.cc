#include "verify_model/crossval.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/cost_model.h"
#include "emu/address_space.h"
#include "emu/machine.h"

namespace lfi::verify_model {

namespace {

using emu::AddressSpace;
using emu::CpuState;
using emu::Machine;
using emu::StopReason;

// Crossval memory layout, 16KiB-page-aligned (emu::kPageSize):
//   data1 [base+0x00000, base+0x10000)  RW, patterned
//   text  [base+0x10000, base+0x14000)  R+X, zeros + the sample word
//   gap   [base+0x14000, base+0x20000)  unmapped
//   data2 [base+0x20000, base+0x30000)  RW, patterned
// Reserved-register pre-state is chosen so that every verifier-accepted
// immediate offset from x18/x21/x23/x24 stays inside data1 (or falls off
// the mapped space entirely, which PredictEffect models as a fault), and
// every uxtw-guarded access lands in data1.
constexpr uint64_t kBase = uint64_t{1} << 32;
constexpr uint64_t kText = kBase + 0x10000;
constexpr uint64_t kData2 = kBase + 0x20000;
constexpr uint64_t kSpInit = kData2 + 0x8000;

struct Runner {
  AddressSpace space;
  Machine machine;
  MemLayout layout;

  Runner() : machine(&space, arch::AppleM1LikeParams()) {
    (void)space.Map(kBase, 0x10000, emu::kPermRead | emu::kPermWrite);
    (void)space.Map(kText, 0x4000, emu::kPermRead | emu::kPermExec);
    (void)space.Map(kData2, 0x10000, emu::kPermRead | emu::kPermWrite);
    layout.ranges = {
        {kBase, kBase + 0x10000, true, true},
        {kText, kText + 0x4000, true, false},
        {kData2, kData2 + 0x10000, true, true},
    };
  }

  void Pattern(uint64_t addr, uint64_t len) {
    std::vector<uint8_t> buf(len);
    for (uint64_t i = 0; i < len; ++i) {
      buf[i] = MemLayout::PatternByte(addr + i);
    }
    (void)space.HostWrite(addr, buf);
  }

  PreState Reset(uint32_t word) {
    // Re-pattern the data regions (a previous sample may have stored into
    // them) and install the sample word at the start of an otherwise-zero
    // text page. The text write lands on an exec page, so the mutation
    // generation bumps and the decode caches invalidate automatically.
    Pattern(kBase, 0x10000);
    Pattern(kData2, 0x10000);
    uint8_t text[8] = {};
    std::memcpy(text, &word, 4);
    (void)space.HostWrite(kText, text);

    CpuState& st = machine.state();
    st = CpuState{};
    for (int i = 0; i < 31; ++i) st.x[i] = 0x40u * static_cast<unsigned>(i);
    st.x[21] = kBase;
    st.x[18] = kBase + 0x1000;
    st.x[23] = kBase + 0x2000;
    st.x[24] = kBase + 0x4000;
    st.x[22] = 0x3F00;
    st.x[30] = kBase + 0x8000;
    st.sp = kSpInit;
    st.pc = kText;

    PreState pre;
    for (int i = 0; i < 31; ++i) pre.x[i] = st.x[i];
    pre.sp = st.sp;
    pre.pc = st.pc;
    return pre;
  }
};

uint64_t RegOf(const CpuState& st, int reg) {
  return reg == 32 ? st.sp : st.x[reg];
}

std::string Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string RegName(int reg) {
  return reg == 32 ? "sp" : "x" + std::to_string(reg);
}

const char* StopName(StopReason r) {
  switch (r) {
    case StopReason::kStepLimit: return "step-limit";
    case StopReason::kRuntimeEntry: return "runtime-entry";
    case StopReason::kFault: return "fault";
    case StopReason::kBrk: return "brk";
    case StopReason::kHookStop: return "hook-stop";
  }
  return "?";
}

}  // namespace

CrossvalResult CrossValidateWords(std::string_view class_name,
                                  std::span<const uint32_t> words,
                                  const CrossvalOptions& opts) {
  CrossvalResult res;
  Runner runner;
  auto fail = [&](uint32_t w, std::string detail) {
    res.failures.push_back(
        {std::string(class_name), w, std::move(detail)});
  };

  size_t n = 0;
  for (uint32_t w : words) {
    if (n++ >= opts.max_samples_per_class) break;
    const MFacts facts = ExtractFacts(w);
    if (!facts.decodable) {
      fail(w, "sampled word is not decodable by the model");
      continue;
    }
    const PreState pre = runner.Reset(w);
    const EffectPrediction pred = PredictEffect(facts, pre, runner.layout);
    const StopReason stop = runner.machine.Run(1);
    const CpuState& post = runner.machine.state();
    ++res.executed;

    // Stop-reason and next-pc agreement.
    if (facts.brk) {
      if (stop != StopReason::kBrk) {
        fail(w, std::string("expected brk stop, got ") + StopName(stop));
        continue;
      }
    } else if (pred.mem_fault) {
      ++res.faulted;
      if (stop != StopReason::kFault) {
        fail(w, std::string("model predicts a memory fault, emulator "
                            "stopped with ") +
                    StopName(stop));
        continue;
      }
    } else if (facts.IsBranchInst()) {
      // The branch itself retires; the emulator may or may not attempt
      // the next fetch (which can fault on a non-executable target)
      // before honoring the step limit, so accept either stop.
      ++res.branches;
      if (stop != StopReason::kStepLimit && stop != StopReason::kFault) {
        fail(w, std::string("branch sample stopped with ") + StopName(stop));
        continue;
      }
      if (post.pc != pred.next_pc) {
        fail(w, "branch target: model " + Hex(pred.next_pc) +
                    " vs emulator " + Hex(post.pc));
        continue;
      }
    } else {
      if (stop != StopReason::kStepLimit) {
        fail(w, std::string("expected clean retirement, emulator stopped "
                            "with ") +
                    StopName(stop));
        continue;
      }
      if (post.pc != pred.next_pc) {
        fail(w, "next pc: model " + Hex(pred.next_pc) + " vs emulator " +
                    Hex(post.pc));
        continue;
      }
    }

    // Reserved-register effects. On a predicted fault (or brk) nothing
    // may change; otherwise each register follows its predicted effect.
    const bool frozen = facts.brk || pred.mem_fault;
    for (size_t i = 0; i < 7; ++i) {
      const int reg = kReservedList[i];
      const uint64_t before = reg == 32 ? pre.sp : pre.x[reg];
      const uint64_t after = RegOf(post, reg);
      const RegEffect eff =
          frozen ? RegEffect{EffKind::kPreserved, 0} : pred.reserved[i];
      switch (eff.kind) {
        case EffKind::kPreserved:
          if (after != before) {
            fail(w, RegName(reg) + ": model preserves " + Hex(before) +
                        ", emulator wrote " + Hex(after));
          }
          break;
        case EffKind::kExact:
          if (after != eff.value) {
            fail(w, RegName(reg) + ": model predicts " + Hex(eff.value) +
                        ", emulator has " + Hex(after));
          }
          break;
        case EffKind::kZext32:
          if ((after >> 32) != 0) {
            fail(w, RegName(reg) +
                        ": model predicts a zero-extended write, emulator "
                        "has " +
                        Hex(after));
          }
          break;
      }
    }
  }
  return res;
}

CrossvalResult CrossValidate(std::span<const SweepResult> sweeps,
                             const CrossvalOptions& opts) {
  CrossvalResult total;
  for (const SweepResult& s : sweeps) {
    CrossvalResult r = CrossValidateWords(s.class_name, s.accepted_sample,
                                          opts);
    total.executed += r.executed;
    total.faulted += r.faulted;
    total.branches += r.branches;
    for (auto& f : r.failures) total.failures.push_back(std::move(f));
  }
  return total;
}

}  // namespace lfi::verify_model
