// Emulator cross-validation: executes a stratified sample of verifier-
// accepted encodings from each class on the real emulator and asserts
// that the concrete effect on the reserved state (x18, x21-x24, x30, sp)
// matches the symbolic model's prediction (model.h PredictEffect). This
// closes the model <-> verifier <-> emulator triangle: the sweep proves
// the verifier agrees with the model about which words are safe, and
// this proves the model's notion of "safe effect" agrees with what the
// machine actually does.
#ifndef LFI_VERIFY_MODEL_CROSSVAL_H_
#define LFI_VERIFY_MODEL_CROSSVAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "verify_model/sweep.h"

namespace lfi::verify_model {

struct CrossvalOptions {
  // Cap on samples executed per class (the sweep's sample is already
  // about this size; this is a second guard for hand-fed word lists).
  size_t max_samples_per_class = 64;
};

struct CrossvalFailure {
  std::string class_name;
  uint32_t word = 0;
  std::string detail;
};

struct CrossvalResult {
  uint64_t executed = 0;       // samples run on the emulator
  uint64_t faulted = 0;        // samples that (correctly) faulted
  uint64_t branches = 0;       // branch samples (next-pc checked)
  std::vector<CrossvalFailure> failures;
  bool ok() const { return failures.empty(); }
};

// Cross-validates one class's accepted words. One Machine and
// AddressSpace serve all of a call's samples; each sample runs from a
// freshly reset CpuState against re-patterned memory.
CrossvalResult CrossValidateWords(std::string_view class_name,
                                  std::span<const uint32_t> words,
                                  const CrossvalOptions& opts = {});

// Cross-validates the accepted_sample of every sweep result.
CrossvalResult CrossValidate(std::span<const SweepResult> sweeps,
                             const CrossvalOptions& opts = {});

}  // namespace lfi::verify_model

#endif  // LFI_VERIFY_MODEL_CROSSVAL_H_
