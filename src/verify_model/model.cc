#include "verify_model/model.h"

#include <bit>
#include <cassert>
#include <string>

namespace lfi::verify_model {

namespace {

using verifier::FailKind;

uint32_t Bits(uint32_t w, unsigned hi, unsigned lo) {
  return (w >> lo) & ((1u << (hi - lo + 1)) - 1);
}

int64_t Sign(uint32_t v, unsigned bits) {
  const int64_t shifted = static_cast<int64_t>(uint64_t{v} << (64 - bits));
  return shifted >> (64 - bits);
}

// Zr-convention operand: encoding 31 is the zero register (no write).
int Zr(uint32_t enc) { return enc == 31 ? -1 : static_cast<int>(enc); }
// Sp-convention destination: encoding 31 is the stack pointer.
int SpDest(uint32_t enc) { return enc == 31 ? 32 : static_cast<int>(enc); }

bool IsAddrReserved(int r) {
  return r == 18 || r == 21 || r == 23 || r == 24;
}
bool IsReservedGprNum(int r) {
  return r == 18 || r == 21 || r == 22 || r == 23 || r == 24;
}

// Independent reimplementation of the DecodeBitmaskImm validity rules
// (ARM "DecodeBitMasks" plus the repo's canonical-immr restriction).
bool BitmaskValid(uint32_t n, uint32_t immr, uint32_t imms, bool is64) {
  const unsigned composite = (n << 6) | ((~imms) & 0x3Fu);
  if (composite == 0) return false;
  const unsigned len = 31 - static_cast<unsigned>(std::countl_zero(composite));
  if (len < 1) return false;
  const unsigned esize = 1u << len;
  if (esize > (is64 ? 64u : 32u)) return false;
  const unsigned levels = esize - 1;
  if ((imms & levels) == levels) return false;
  if ((immr & ~levels & 0x3Fu) != 0) return false;
  return true;
}

// Integer load/store size/opc product (ldr/str/ldur/stur family).
// Returns false for unallocated combinations (prfm, bad sign-extends).
bool IntLsKind(MFacts* f, uint32_t size, uint32_t opc) {
  f->msize = 1u << size;
  switch (opc) {
    case 0b00:
      f->store = true;
      f->wide_w = size != 3;
      return true;
    case 0b01:
      f->load = true;
      f->plain_int_ldr = true;
      f->wide_w = size != 3;
      return true;
    case 0b10:  // sign-extend to 64 bits (prfm when size == 3)
      if (size == 3) return false;
      f->load = true;
      f->plain_int_ldr = true;
      f->msigned = true;
      f->wide_w = false;
      return true;
    case 0b11:  // sign-extend to 32 bits
      if (size >= 2) return false;
      f->load = true;
      f->plain_int_ldr = true;
      f->msigned = true;
      f->wide_w = true;
      return true;
  }
  return false;
}

bool FpLsKind(MFacts* f, uint32_t size, uint32_t opc) {
  if (size == 0b10 && opc <= 0b01) f->msize = 4;
  else if (size == 0b11 && opc <= 0b01) f->msize = 8;
  else if (size == 0b00 && opc >= 0b10) f->msize = 16;
  else return false;
  f->fp_transfer = true;
  if (opc & 1) f->load = true;
  else f->store = true;
  return true;
}

// Write-channel assembly, in arch::WriteZeroExtends' priority order
// (writeback, link, load transfer, stxr status, ALU dest): the first
// channel hitting a register decides its zero-extension.
void FinishWrites(MFacts* f) {
  if (f->mem && (f->mode == MMode::kPre || f->mode == MMode::kPost)) {
    f->writes.push_back({f->base == 31 ? 32 : f->base, false});
  }
  if (f->br == MBranch::kBl || f->br == MBranch::kBlr) {
    f->writes.push_back({30, false});
  }
  if (f->load && !f->fp_transfer) {
    const bool z =
        f->wide_w || (f->plain_int_ldr && f->msize < 8 && !f->msigned);
    if (f->rt >= 0) f->writes.push_back({f->rt, z});
    if (f->rt2 >= 0) f->writes.push_back({f->rt2, z});
  }
  if (f->rs >= 0) f->writes.push_back({f->rs, true});
  if (f->dest >= 0) f->writes.push_back({f->dest, f->dest_zext});
}

enum class Ck : uint8_t {
  kNop, kSvc, kBrk, kMrs, kMsr, kBrReg, kB, kBCond, kCbz, kTbz, kAdr,
  kLogicalImm, kAddsubImm, kMovwide, kBitfield, kAddsubShift, kAddsubExt,
  kLogicalShift, kMuladd, kMulhigh, kCondcmp, kExtr, kDiv, kDataproc1,
  kCondsel, kExclusive, kPair, kLsUimm, kLsRegoff, kLsImm9, kFmadd,
  kFpdata, kVector,
};

Ck KindOf(std::string_view name) {
  struct Entry { std::string_view name; Ck ck; };
  static constexpr Entry kTable[] = {
      {"nop", Ck::kNop}, {"svc", Ck::kSvc}, {"brk", Ck::kBrk},
      {"mrs", Ck::kMrs}, {"msr", Ck::kMsr}, {"br-reg", Ck::kBrReg},
      {"b", Ck::kB}, {"b-cond", Ck::kBCond}, {"cbz", Ck::kCbz},
      {"tbz", Ck::kTbz}, {"adr", Ck::kAdr},
      {"logical-imm", Ck::kLogicalImm}, {"addsub-imm", Ck::kAddsubImm},
      {"movwide", Ck::kMovwide}, {"bitfield", Ck::kBitfield},
      {"addsub-shift", Ck::kAddsubShift}, {"addsub-ext", Ck::kAddsubExt},
      {"logical-shift", Ck::kLogicalShift}, {"muladd", Ck::kMuladd},
      {"mulhigh", Ck::kMulhigh}, {"condcmp", Ck::kCondcmp},
      {"extr", Ck::kExtr}, {"div", Ck::kDiv},
      {"dataproc1", Ck::kDataproc1}, {"condsel", Ck::kCondsel},
      {"exclusive", Ck::kExclusive}, {"pair", Ck::kPair},
      {"ls-uimm", Ck::kLsUimm}, {"ls-regoff", Ck::kLsRegoff},
      {"ls-imm9", Ck::kLsImm9}, {"fmadd", Ck::kFmadd},
      {"fpdata", Ck::kFpdata}, {"vector", Ck::kVector},
  };
  for (const auto& e : kTable) {
    if (e.name == name) return e.ck;
  }
  assert(false && "unknown encoding class");
  return Ck::kNop;
}

// Per-class fact extraction. Each branch reimplements the encoding
// straight from the field layout; any disagreement with arch::Decode is
// exactly what the sweep exists to surface.
void Extract(Ck ck, uint32_t w, MFacts* f) {
  f->sf = Bits(w, 31, 31) != 0;
  switch (ck) {
    case Ck::kNop:
      f->decodable = true;
      return;
    case Ck::kSvc:
      f->decodable = true;
      f->system = true;
      return;
    case Ck::kBrk:
      f->decodable = true;
      f->brk = true;
      return;
    case Ck::kMrs:
    case Ck::kMsr:
      // The repo models mrs/msr as pure system markers (no GPR channel),
      // and the verifier rejects them before any write predicate runs.
      f->decodable = true;
      f->system = true;
      return;

    case Ck::kBrReg: {
      const uint32_t op2 = Bits(w, 22, 21);
      if (Bits(w, 20, 16) != 0x1F || Bits(w, 15, 10) != 0 ||
          Bits(w, 4, 0) != 0 || op2 > 2) {
        return;  // outside the three exact br/blr/ret patterns
      }
      f->decodable = true;
      f->br = op2 == 0 ? MBranch::kBr : op2 == 1 ? MBranch::kBlr
                                                 : MBranch::kRet;
      f->ibr_rn = Zr(Bits(w, 9, 5));
      break;
    }
    case Ck::kB:
      f->decodable = true;
      f->br = Bits(w, 31, 31) ? MBranch::kBl : MBranch::kB;
      f->br_imm = Sign(Bits(w, 25, 0), 26) * 4;
      break;
    case Ck::kBCond: {
      const uint32_t cond = Bits(w, 3, 0);
      if (cond >= 14) return;  // b.al / b.nv unsupported
      f->decodable = true;
      f->br = MBranch::kBCond;
      f->cond = static_cast<uint8_t>(cond);
      f->br_imm = Sign(Bits(w, 23, 5), 19) * 4;
      break;
    }
    case Ck::kCbz:
      f->decodable = true;
      f->br = Bits(w, 24, 24) ? MBranch::kCbnz : MBranch::kCbz;
      f->test_rt = Zr(Bits(w, 4, 0));
      f->test_w = !f->sf;
      f->br_imm = Sign(Bits(w, 23, 5), 19) * 4;
      break;
    case Ck::kTbz:
      f->decodable = true;
      f->br = Bits(w, 24, 24) ? MBranch::kTbnz : MBranch::kTbz;
      f->tbit = static_cast<uint8_t>((Bits(w, 31, 31) << 5) |
                                     Bits(w, 23, 19));
      f->test_rt = Zr(Bits(w, 4, 0));
      f->br_imm = Sign(Bits(w, 18, 5), 14) * 4;
      break;

    case Ck::kAdr:
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = false;  // 64-bit address material in both forms
      break;

    case Ck::kLogicalImm: {
      const uint32_t opc = Bits(w, 30, 29);
      const uint32_t n = Bits(w, 22, 22);
      if (!f->sf && n) return;
      if (!BitmaskValid(n, Bits(w, 21, 16), Bits(w, 15, 10), f->sf)) return;
      f->decodable = true;
      const uint32_t rd = Bits(w, 4, 0);
      f->dest = opc == 3 ? Zr(rd) : SpDest(rd);
      f->dest_zext = !f->sf;
      break;
    }
    case Ck::kAddsubImm: {
      const uint32_t sh = Bits(w, 23, 22);
      if (sh >= 2) return;  // sh=1x unallocated
      f->decodable = true;
      const bool sub = Bits(w, 30, 30) != 0;
      const bool s = Bits(w, 29, 29) != 0;
      const int64_t imm = int64_t{Bits(w, 21, 10)} << (sh ? 12 : 0);
      const uint32_t rd = Bits(w, 4, 0);
      const uint32_t rn = Bits(w, 9, 5);
      f->dest = s ? Zr(rd) : SpDest(rd);
      f->dest_zext = !f->sf;
      f->sp_small_adjust =
          !s && rn == 31 && f->dest == 32 && f->sf && imm < 1024;
      f->adjust = sub ? -imm : imm;
      break;
    }
    case Ck::kMovwide: {
      const uint32_t opc = Bits(w, 30, 29);
      const uint32_t hw = Bits(w, 22, 21);
      if (opc == 1) return;
      if (!f->sf && hw > 1) return;
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = !f->sf;
      f->mov_exact = true;
      f->mov_op = static_cast<uint8_t>(opc);
      f->mov_hw = static_cast<uint8_t>(hw);
      f->mov_imm = uint64_t{Bits(w, 20, 5)} << (hw * 16);
      break;
    }
    case Ck::kBitfield: {
      const uint32_t opc = Bits(w, 30, 29);
      if (opc != 0 && opc != 2) return;
      if (Bits(w, 22, 22) != Bits(w, 31, 31)) return;
      const uint32_t max = f->sf ? 64 : 32;
      if (Bits(w, 21, 16) >= max || Bits(w, 15, 10) >= max) return;
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = !f->sf;
      break;
    }

    case Ck::kAddsubShift: {
      if (Bits(w, 23, 22) == 3) return;  // ror
      if (!f->sf && Bits(w, 15, 10) >= 32) return;
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = !f->sf;
      break;
    }
    case Ck::kAddsubExt: {
      if (Bits(w, 29, 29)) return;  // adds/subs ext unsupported
      const uint32_t imm3 = Bits(w, 12, 10);
      if (imm3 > 4) return;
      f->decodable = true;
      const bool sub = Bits(w, 30, 30) != 0;
      const uint32_t option = Bits(w, 15, 13);
      const uint32_t rm = Bits(w, 20, 16);
      const uint32_t rn = Bits(w, 9, 5);
      const uint32_t rd = Bits(w, 4, 0);
      f->dest = SpDest(rd);
      f->dest_zext = !f->sf;
      if (!sub && f->sf && imm3 == 0 && rn == 21) {
        // add xD, x21, wM, uxtw #0 (the address guard) and
        // add sp, x21, x22, uxtx #0 (the sp guard).
        if (option == 2 && rm != 31 && f->dest != 32) {
          f->guard_for = f->dest;
          f->guard_rm = static_cast<int>(rm);
        }
        if (option == 3 && rm == 22 && f->dest == 32) f->sp_guard = true;
      }
      break;
    }
    case Ck::kLogicalShift: {
      const uint32_t opc = Bits(w, 30, 29);
      const uint32_t n = Bits(w, 21, 21);
      if (n == 1 && opc != 0) return;  // orn/eon/bics unsupported
      if (!f->sf && Bits(w, 15, 10) >= 32) return;
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = !f->sf;
      break;
    }
    case Ck::kMuladd:
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = !f->sf;
      break;
    case Ck::kMulhigh:
      if (!f->sf || Bits(w, 14, 10) != 0x1F || Bits(w, 15, 15) != 0) return;
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = false;
      break;
    case Ck::kCondcmp:
      f->decodable = true;  // flags only; no register writes
      break;
    case Ck::kExtr:
      if (Bits(w, 22, 22) != Bits(w, 31, 31)) return;
      if (!f->sf && Bits(w, 15, 10) >= 32) return;
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = !f->sf;
      break;
    case Ck::kDiv:
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = !f->sf;
      break;
    case Ck::kDataproc1: {
      const uint32_t op = Bits(w, 15, 10);
      const bool ok = op == 0 || op == 4 || (op == 2 && !f->sf) ||
                      (op == 3 && f->sf);
      if (!ok) return;
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = !f->sf;
      break;
    }
    case Ck::kCondsel:
      f->decodable = true;
      f->dest = Zr(Bits(w, 4, 0));
      f->dest_zext = !f->sf;
      break;

    case Ck::kExclusive: {
      const uint32_t o2 = Bits(w, 23, 23), l = Bits(w, 22, 22);
      const uint32_t o1 = Bits(w, 21, 21), o0 = Bits(w, 15, 15);
      if (o1 != 0 || Bits(w, 14, 10) != 0x1F) return;
      enum { kLdxr, kStxr, kLdar, kStlr } v;
      if (o2 == 0 && l == 1 && o0 == 0) v = kLdxr;
      else if (o2 == 0 && l == 0 && o0 == 0) v = kStxr;
      else if (o2 == 1 && l == 1 && o0 == 1) v = kLdar;
      else if (o2 == 1 && l == 0 && o0 == 1) v = kStlr;
      else return;
      const uint32_t rs = Bits(w, 20, 16);
      if (v != kStxr && rs != 0x1F) return;
      f->decodable = true;
      f->mem = true;
      f->mode = MMode::kImm;
      f->imm = 0;
      const uint32_t size = Bits(w, 31, 30);
      f->msize = 1u << size;
      f->footprint = f->msize;
      f->wide_w = size != 3;
      f->base = static_cast<int>(Bits(w, 9, 5));
      if (v == kLdxr || v == kLdar) {
        f->load = true;
        f->rt = Zr(Bits(w, 4, 0));
        f->align_check = true;
      } else {
        f->store = true;
      }
      if (v == kLdxr || v == kStxr) f->llsc = true;
      if (v == kStxr) {
        f->stxr = true;
        f->rs = Zr(rs);
      }
      break;
    }
    case Ck::kPair: {
      const uint32_t opc = Bits(w, 31, 30);
      if (opc != 0 && opc != 2) return;
      const uint32_t m3 = Bits(w, 25, 23);
      if (m3 < 1 || m3 > 3) return;
      f->decodable = true;
      f->mem = true;
      f->wide_w = opc == 0;
      f->msize = f->wide_w ? 4 : 8;
      f->footprint = 2 * f->msize;
      f->imm = Sign(Bits(w, 21, 15), 7) * int64_t{f->msize};
      f->mode = m3 == 1 ? MMode::kPost : m3 == 2 ? MMode::kImm : MMode::kPre;
      f->base = static_cast<int>(Bits(w, 9, 5));
      if (Bits(w, 22, 22)) {
        f->load = true;
        f->rt = Zr(Bits(w, 4, 0));
        f->rt2 = Zr(Bits(w, 14, 10));
      } else {
        f->store = true;
      }
      break;
    }
    case Ck::kLsUimm: {
      const bool v = Bits(w, 26, 26) != 0;
      const uint32_t size = Bits(w, 31, 30), opc = Bits(w, 23, 22);
      if (!(v ? FpLsKind(f, size, opc) : IntLsKind(f, size, opc))) return;
      f->decodable = true;
      f->mem = true;
      f->footprint = f->msize;
      f->mode = MMode::kImm;
      f->imm = int64_t{Bits(w, 21, 10)} * f->msize;
      f->base = static_cast<int>(Bits(w, 9, 5));
      if (!v) f->rt = Zr(Bits(w, 4, 0));
      break;
    }
    case Ck::kLsRegoff: {
      const bool v = Bits(w, 26, 26) != 0;
      const uint32_t size = Bits(w, 31, 30), opc = Bits(w, 23, 22);
      if (!(v ? FpLsKind(f, size, opc) : IntLsKind(f, size, opc))) return;
      if (Bits(w, 11, 10) != 0b10) return;
      const uint32_t option = Bits(w, 15, 13);
      MMode mode;
      if (option == 0b010) mode = MMode::kUxtw;
      else if (option == 0b011 || option == 0b111) mode = MMode::kLsl;
      else if (option == 0b110) mode = MMode::kSxtw;
      else return;
      f->decodable = true;
      f->mem = true;
      f->footprint = f->msize;
      f->mode = mode;
      f->index = Zr(Bits(w, 20, 16));
      f->shift = Bits(w, 12, 12)
                     ? static_cast<uint8_t>(std::countr_zero(f->msize))
                     : 0;
      f->base = static_cast<int>(Bits(w, 9, 5));
      if (!v) f->rt = Zr(Bits(w, 4, 0));
      break;
    }
    case Ck::kLsImm9: {
      const bool v = Bits(w, 26, 26) != 0;
      const uint32_t size = Bits(w, 31, 30), opc = Bits(w, 23, 22);
      if (!(v ? FpLsKind(f, size, opc) : IntLsKind(f, size, opc))) return;
      const uint32_t m2 = Bits(w, 11, 10);
      if (m2 == 0b10) return;  // unprivileged forms unsupported
      f->decodable = true;
      f->mem = true;
      f->footprint = f->msize;
      f->mode = m2 == 0 ? MMode::kImm : m2 == 1 ? MMode::kPost : MMode::kPre;
      f->imm = Sign(Bits(w, 20, 12), 9);
      f->base = static_cast<int>(Bits(w, 9, 5));
      if (!v) f->rt = Zr(Bits(w, 4, 0));
      break;
    }

    case Ck::kFmadd:
      if (Bits(w, 21, 21) != 0 || Bits(w, 15, 15) != 0) return;
      if (Bits(w, 23, 22) > 1) return;
      f->decodable = true;  // pure FP dataflow
      break;
    case Ck::kFpdata: {
      if (Bits(w, 23, 22) > 1) return;
      const uint32_t b29 = Bits(w, 29, 29);
      const uint32_t hi = Bits(w, 20, 16), mid = Bits(w, 15, 10);
      const uint32_t rd = Bits(w, 4, 0);
      if (mid == 0 && b29 == 0) {
        // Int <-> FP conversions.
        const uint32_t rmode = hi >> 3, opcode = hi & 7;
        if (rmode == 0 && opcode == 2) {          // scvtf (reads rn)
          f->decodable = true;
        } else if (rmode == 3 && opcode == 0) {   // fcvtzs (writes rd)
          f->decodable = true;
          f->dest = Zr(rd);
          f->dest_zext = !f->sf;
        } else if (rmode == 0 && opcode == 6) {   // fmov gpr <- fp
          f->decodable = true;
          f->dest = Zr(rd);
          f->dest_zext = !f->sf;
        } else if (rmode == 0 && opcode == 7) {   // fmov fp <- gpr
          f->decodable = true;
        }
        return;
      }
      if (f->sf || b29) return;  // fails the 00011110 pattern test
      if (mid == 0b001000 && rd == 0) {           // fcmp
        f->decodable = true;
      } else if ((mid & 0x1F) == 0x10) {          // 1-source
        const uint32_t op6 = (hi << 1) | (mid >> 5);
        if (op6 == 0 || op6 == 3) f->decodable = true;
      } else if ((mid & 3) == 2) {                // 2-source
        if ((mid >> 2) <= 3) f->decodable = true;
      }
      return;
    }
    case Ck::kVector: {
      if (Bits(w, 30, 30) != 1) return;
      const uint32_t u = Bits(w, 29, 29), size = Bits(w, 23, 22);
      const uint32_t op = Bits(w, 15, 11);
      const bool ok = (u == 0 && op == 0b10000 && size >= 2) ||
                      (u == 0 && op == 0b11010 && size <= 1) ||
                      (u == 1 && op == 0b11011 && size <= 1);
      if (ok) f->decodable = true;
      return;
    }
  }
}

bool IsBlrX30(const MFacts& f) {
  return f.br == MBranch::kBlr && f.ibr_rn == 30;
}

bool IsTableLoad(const MFacts& f, const verifier::VerifyOptions& opts) {
  return f.plain_int_ldr && !f.msigned && f.msize == 8 && f.rt == 30 &&
         f.base == 21 && f.mode == MMode::kImm && f.imm >= 0 &&
         static_cast<uint64_t>(f.imm) + 8 <= opts.table_bytes;
}

// ARM condition evaluation from NZCV.
bool CondHolds(uint8_t cond, const PreState& s) {
  bool r;
  switch (cond >> 1) {
    case 0: r = s.z; break;                    // eq/ne
    case 1: r = s.c; break;                    // hs/lo
    case 2: r = s.n; break;                    // mi/pl
    case 3: r = s.v; break;                    // vs/vc
    case 4: r = s.c && !s.z; break;            // hi/ls
    case 5: r = s.n == s.v; break;             // ge/lt
    case 6: r = !s.z && s.n == s.v; break;     // gt/le
    default: return true;                      // al
  }
  return (cond & 1) ? !r : r;
}

}  // namespace

bool MFacts::WriteZeroExtends(int reg) const {
  for (const auto& w : writes) {
    if (w.reg == reg) return w.zext;  // channels stored in priority order
  }
  return false;
}

MFacts ExtractFacts(const arch::EncClassInfo* cls, uint32_t word) {
  MFacts f;
  f.word = word;
  f.cls = cls;
  if (cls != nullptr) {
    Extract(KindOf(cls->name), word, &f);
    if (f.decodable) FinishWrites(&f);
  }
  return f;
}

MFacts ExtractFacts(uint32_t word) {
  return ExtractFacts(arch::ClassifyWord(word), word);
}

verifier::FailKind CheckFacts(std::span<const MFacts> facts, size_t k,
                              const verifier::VerifyOptions& opts) {
  const MFacts& f = facts[k];

  if (f.system) return FailKind::kSystemInstruction;
  if (!opts.allow_llsc && f.llsc) return FailKind::kLlscDisallowed;

  if (f.mem) {
    const bool pure_load = f.load && !f.store;
    const bool wb = f.mode == MMode::kPre || f.mode == MMode::kPost;
    if (opts.check_loads || !pure_load) {
      if (f.mode == MMode::kUxtw || f.mode == MMode::kLsl ||
          f.mode == MMode::kSxtw) {
        if (f.mode != MMode::kUxtw || f.base != 21 || f.shift != 0) {
          return FailKind::kBadAddressingMode;
        }
      } else {
        if (!IsAddrReserved(f.base) && f.base != 31) {
          return FailKind::kBadAddressingMode;
        }
        if (wb && f.base != 31) return FailKind::kReservedWriteback;
        const int64_t lo = f.imm;
        const int64_t hi = f.imm + static_cast<int64_t>(f.footprint);
        if (lo < -static_cast<int64_t>(opts.guard_bytes) ||
            hi > static_cast<int64_t>(opts.guard_bytes)) {
          return FailKind::kGuardRangeOverflow;
        }
      }
    } else if (wb && f.base != 31 && IsReservedGprNum(f.base)) {
      return FailKind::kReservedWriteback;
    }
  }

  if (f.br == MBranch::kBr || f.br == MBranch::kBlr ||
      f.br == MBranch::kRet) {
    if (!IsAddrReserved(f.ibr_rn) && f.ibr_rn != 30) {
      return FailKind::kUnguardedIndirectBranch;
    }
  }

  if (f.WritesReg(21)) return FailKind::kBaseRegWrite;
  for (int r : {18, 23, 24}) {
    if (f.WritesReg(r) && f.guard_for != r) {
      return FailKind::kAddressRegWrite;
    }
  }
  if (f.WritesReg(22) && !f.WriteZeroExtends(22)) {
    return FailKind::kScratchRegWrite;
  }
  if (f.WritesReg(30)) {
    const bool by_branch = f.br == MBranch::kBl || f.br == MBranch::kBlr;
    const bool by_guard = f.guard_for == 30;
    if (!by_branch && !by_guard) {
      if (IsTableLoad(f, opts)) {
        if (k + 1 >= facts.size() || !IsBlrX30(facts[k + 1])) {
          return FailKind::kLinkRegProtocol;
        }
      } else if (f.load) {
        if (k + 1 >= facts.size() || facts[k + 1].guard_for != 30) {
          return FailKind::kLinkRegProtocol;
        }
      } else {
        return FailKind::kLinkRegProtocol;
      }
    }
  }
  if (f.WritesReg(32)) {
    if (f.mem) return FailKind::kNone;  // writeback, restricted above
    if (f.sp_guard) return FailKind::kNone;
    if (!f.sp_small_adjust) return FailKind::kSpProtocol;
    for (size_t j = k + 1; j < facts.size(); ++j) {
      const MFacts& n = facts[j];
      if (n.IsBranchInst()) return FailKind::kSpProtocol;
      if (n.mem && n.base == 31) return FailKind::kNone;
      if (n.sp_guard) return FailKind::kNone;
      if (n.WritesReg(32)) return FailKind::kSpProtocol;
    }
    return FailKind::kSpProtocol;
  }
  return FailKind::kNone;
}

Verdict PredictVerdict(std::span<const MFacts> facts,
                       const verifier::VerifyOptions& opts) {
  Verdict v;
  for (size_t k = 0; k < facts.size(); ++k) {
    if (!facts[k].decodable) {
      v.kind = FailKind::kUndecodable;
      v.fail_index = k;
      return v;
    }
  }
  for (size_t k = 0; k < facts.size(); ++k) {
    const FailKind kind = CheckFacts(facts, k, opts);
    if (kind != FailKind::kNone) {
      v.kind = kind;
      v.fail_index = k;
      return v;
    }
  }
  v.ok = true;
  return v;
}

Verdict PredictVerdict(std::span<const uint32_t> words,
                       const verifier::VerifyOptions& opts) {
  std::vector<MFacts> facts;
  facts.reserve(words.size());
  for (uint32_t w : words) facts.push_back(ExtractFacts(w));
  return PredictVerdict(facts, opts);
}

std::vector<uint32_t> DischargeSuffix(const MFacts& f,
                                      const verifier::VerifyOptions& opts) {
  const bool x30_needs_context =
      f.WritesReg(30) && f.br != MBranch::kBl && f.br != MBranch::kBlr &&
      f.guard_for != 30 && f.load;
  if (x30_needs_context) {
    if (IsTableLoad(f, opts)) return {0xD63F03C0u};  // blr x30
    // add x30, x21, w1, uxtw #0 (the x30 guard).
    return {0x8B200000u | (1u << 16) | (2u << 13) | (21u << 5) | 30u};
  }
  if (f.sp_small_adjust) return {0xF90003FFu};  // str xzr, [sp]
  return {};
}

// ---- Effect prediction ----

uint8_t MemLayout::PatternByte(uint64_t addr) {
  // Cheap deterministic mixing; both the predictor and the crossval
  // runner derive memory contents from this.
  uint64_t v = addr * 0x9E3779B97F4A7C15ull;
  return static_cast<uint8_t>(v >> 56);
}

uint64_t MemLayout::PatternValue(uint64_t addr, uint32_t size) const {
  uint64_t v = 0;
  for (uint32_t i = 0; i < size; ++i) {
    v |= uint64_t{PatternByte(addr + i)} << (8 * i);
  }
  return v;
}

bool MemLayout::Covered(uint64_t addr, uint32_t len, bool for_write) const {
  uint64_t at = addr;
  const uint64_t end = addr + len;
  while (at < end) {
    bool advanced = false;
    for (const auto& r : ranges) {
      if (at >= r.lo && at < r.hi && (for_write ? r.write : r.read)) {
        at = r.hi < end ? r.hi : end;
        advanced = true;
        break;
      }
    }
    if (!advanced) return false;
  }
  return true;
}

EffectPrediction PredictEffect(const MFacts& f, const PreState& pre,
                               const MemLayout& layout) {
  EffectPrediction p;
  p.next_pc = pre.pc + 4;

  auto set = [&](int reg, EffKind kind, uint64_t value) {
    for (size_t i = 0; i < 7; ++i) {
      if (kReservedList[i] == reg) {
        p.reserved[i] = {kind, value};
        return;
      }
    }
  };
  auto regval = [&](int r) -> uint64_t {
    if (r == 32) return pre.sp;
    if (r < 0 || r == 31) return 0;
    return pre.x[r];
  };

  // Branch targets (and the x30 link write).
  switch (f.br) {
    case MBranch::kNone: break;
    case MBranch::kB: p.next_pc = pre.pc + f.br_imm; break;
    case MBranch::kBl:
      p.next_pc = pre.pc + f.br_imm;
      set(30, EffKind::kExact, pre.pc + 4);
      break;
    case MBranch::kBCond:
      p.next_pc = CondHolds(f.cond, pre) ? pre.pc + f.br_imm : pre.pc + 4;
      break;
    case MBranch::kCbz:
    case MBranch::kCbnz: {
      uint64_t v = f.test_rt < 0 ? 0 : pre.x[f.test_rt];
      if (f.test_w) v = static_cast<uint32_t>(v);
      const bool taken = (v == 0) == (f.br == MBranch::kCbz);
      p.next_pc = taken ? pre.pc + f.br_imm : pre.pc + 4;
      break;
    }
    case MBranch::kTbz:
    case MBranch::kTbnz: {
      const uint64_t v = f.test_rt < 0 ? 0 : pre.x[f.test_rt];
      const bool bit = ((v >> f.tbit) & 1) != 0;
      const bool taken = bit == (f.br == MBranch::kTbnz);
      p.next_pc = taken ? pre.pc + f.br_imm : pre.pc + 4;
      break;
    }
    case MBranch::kBr:
    case MBranch::kBlr:
    case MBranch::kRet:
      p.next_pc = f.ibr_rn < 0 ? 0 : pre.x[f.ibr_rn];
      if (f.br == MBranch::kBlr) set(30, EffKind::kExact, pre.pc + 4);
      break;
  }

  // Memory access: effective address, fault prediction, load/writeback
  // effects. A failed stxr (the crossval pre-state never holds the
  // monitor) performs no access at all and just sets its status register.
  if (f.mem && !f.stxr) {
    const uint64_t base_val = f.base == 31 ? pre.sp : pre.x[f.base];
    uint64_t addr;
    if (f.mode == MMode::kUxtw) {
      addr = base_val +
             ((f.index < 0 ? 0
                           : static_cast<uint32_t>(pre.x[f.index]))
              << f.shift);
    } else if (f.mode == MMode::kPost) {
      addr = base_val;
    } else {
      addr = base_val + static_cast<uint64_t>(f.imm);
    }
    p.mem_fault = !layout.Covered(addr, f.footprint, f.store) ||
                  (f.align_check && addr % f.msize != 0);
    if (p.mem_fault) return p;  // no register commits on a fault

    if (f.load && !f.fp_transfer) {
      auto load_val = [&](uint64_t a) -> uint64_t {
        uint64_t raw = layout.PatternValue(a, f.msize);
        if (f.msigned) {
          const int64_t s = Sign(static_cast<uint32_t>(raw), 8 * f.msize);
          return f.wide_w ? static_cast<uint32_t>(s)
                          : static_cast<uint64_t>(s);
        }
        return raw;  // unsigned loads zero-extend
      };
      // Commit order rt then rt2: on a shared destination rt2 wins.
      if (f.rt >= 0) set(f.rt, EffKind::kExact, load_val(addr));
      if (f.rt2 >= 0) set(f.rt2, EffKind::kExact, load_val(addr + f.msize));
    }
    if (f.mode == MMode::kPre || f.mode == MMode::kPost) {
      set(f.base == 31 ? 32 : f.base, EffKind::kExact,
          base_val + static_cast<uint64_t>(f.imm));
    }
  }
  if (f.stxr && f.rs >= 0) set(f.rs, EffKind::kExact, 1);  // monitor miss

  // ALU destination channels.
  if (f.guard_for >= 0 && f.guard_rm >= 0) {
    set(f.guard_for, EffKind::kExact,
        pre.x[21] + static_cast<uint32_t>(pre.x[f.guard_rm]));
  } else if (f.sp_guard) {
    set(32, EffKind::kExact, pre.x[21] + pre.x[22]);
  } else if (f.dest == 32 && f.sp_small_adjust) {
    set(32, EffKind::kExact, pre.sp + static_cast<uint64_t>(f.adjust));
  } else if (f.dest >= 0 && f.dest != 32) {
    uint64_t exact = 0;
    bool have_exact = false;
    if (f.mov_exact) {
      const uint64_t wmask =
          f.sf ? ~uint64_t{0} : uint64_t{0xFFFFFFFF};
      switch (f.mov_op) {
        case 0: exact = ~f.mov_imm & wmask; have_exact = true; break;
        case 2: exact = f.mov_imm; have_exact = true; break;
        case 3:
          exact = ((regval(f.dest) & ~(uint64_t{0xFFFF} << (f.mov_hw * 16))) &
                   wmask) |
                  f.mov_imm;
          have_exact = true;
          break;
      }
    }
    if (have_exact) {
      set(f.dest, EffKind::kExact, exact);
    } else {
      set(f.dest, f.dest_zext ? EffKind::kZext32 : EffKind::kPreserved, 0);
      // A 64-bit ALU write to a reserved register is never accepted, so
      // a kPreserved here can only apply to non-reserved destinations
      // (where set() drops it anyway).
    }
  }
  return p;
}

}  // namespace lfi::verify_model
