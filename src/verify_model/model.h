// A symbolic effect model of the ARMv8.0 allowlist (the tentpole of the
// exhaustive verifier validation, after Sotoudeh & Yedidia's "Automated
// Formal Verification of a Software Fault Isolation System").
//
// For every encoding class in arch::AllEncClasses() the model extracts,
// straight from the raw instruction word, the facts that the Section 5.2
// invariants depend on: decodability, system-ness, memory addressing
// shape, reserved-register write channels and whether each write
// zero-extends, guard forms, and branchiness. From those facts it
// predicts the verifier's exact verdict (accept, or the precise
// FailKind) and, for accepted encodings, the concrete effect on the
// reserved state (x18, x21-x24, x30, sp) in a given machine state.
//
// Deliberately non-circular: nothing here calls arch::Decode or the
// verifier. Field extraction is reimplemented bit-by-bit from the
// architecture manual's encodings, so a shared misreading of the ISA
// cannot hide — the enumerator (sweep.h) compares this model against the
// real verifier for every swept encoding, and crossval.h compares its
// effect predictions against the real emulator.
#ifndef LFI_VERIFY_MODEL_MODEL_H_
#define LFI_VERIFY_MODEL_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "arch/fields.h"
#include "verifier/verifier.h"

namespace lfi::verify_model {

// Memory addressing shape of an access, mirroring the encodings (not
// arch::AddrMode, which is a decoder product).
enum class MMode : uint8_t { kNone, kImm, kPost, kPre, kUxtw, kLsl, kSxtw };

// Branch shape, for next-pc prediction.
enum class MBranch : uint8_t {
  kNone, kB, kBl, kBCond, kCbz, kCbnz, kTbz, kTbnz, kBr, kBlr, kRet,
};

// One write channel to an integer register.
struct MWrite {
  int reg = -1;      // 0..30; 32 = sp (never 31)
  bool zext = false; // architecturally zeroes bits 63:32
};

// Everything the verifier's predicates (and the emulator cross-check)
// can observe about one instruction word.
struct MFacts {
  uint32_t word = 0;
  const arch::EncClassInfo* cls = nullptr;  // null: outside every class

  bool decodable = false;
  bool system = false;  // svc / mrs / msr
  bool brk = false;
  bool llsc = false;    // ldxr / stxr

  // Memory access.
  bool mem = false;
  bool load = false, store = false;
  bool fp_transfer = false;  // transfer register is a vreg
  MMode mode = MMode::kNone;
  int base = -1;        // 0..30 gpr; 31 = sp
  int index = -1;       // register-offset index; -1 = zr
  uint8_t shift = 0;    // register-offset shift amount
  int64_t imm = 0;      // scaled byte offset (imm modes)
  uint32_t msize = 0;   // bytes per transfer register
  uint32_t footprint = 0;  // total bytes (2*msize for pairs)
  bool msigned = false;
  bool plain_int_ldr = false;  // integer ldr/ldur family (table-load rule)
  bool wide_w = false;  // transfer width is W
  bool align_check = false;    // ldxr/ldar fault on unaligned addresses
  bool stxr = false;           // store-exclusive (status write, monitor)
  int rt = -1, rt2 = -1, rs = -1;  // -1 = zr/none

  // Branches.
  MBranch br = MBranch::kNone;
  int ibr_rn = -1;      // br/blr/ret operand; -1 = zr
  int64_t br_imm = 0;   // direct-branch displacement (bytes)
  uint8_t cond = 0;     // b.cond condition
  int test_rt = -1;     // cbz/tbz tested register; -1 = zr
  bool test_w = false;  // cbz tests the W view
  uint8_t tbit = 0;     // tbz bit number

  // ALU destination (rd-channel), including computable exact values.
  int dest = -1;        // 0..30; 32 = sp; -1 = none/zr
  bool dest_zext = false;
  bool mov_exact = false;   // movz/movn/movk: value predictable
  uint8_t mov_op = 0;       // 0 movn, 2 movz, 3 movk
  uint64_t mov_imm = 0;     // imm16 << hw*16
  uint8_t mov_hw = 0;
  bool sf = false;          // 64-bit form

  // Guard shapes.
  int guard_for = -1;   // add xD, x21, wM, uxtw #0  ->  D
  int guard_rm = -1;
  bool sp_guard = false;        // add sp, x21, x22 (uxtx #0)
  bool sp_small_adjust = false; // add/sub sp, sp, #imm<1024 (64-bit)
  int64_t adjust = 0;           // signed sp delta

  // Write channels, stored in arch::WriteZeroExtends' priority order
  // (wb / link / rt / rt2 / rs / dest), so the first channel hitting a
  // register decides its zero-extension.
  std::vector<MWrite> writes;

  bool WritesReg(int reg) const {
    for (const auto& w : writes) {
      if (w.reg == reg) return true;
    }
    return false;
  }
  // Replicates arch::WriteZeroExtends' channel priority: writeback and
  // link writes are 64-bit regardless of any other channel to the same
  // register, otherwise the transfer/dest channel decides.
  bool WriteZeroExtends(int reg) const;
  bool IsBranchInst() const { return br != MBranch::kNone; }
};

// Extracts facts for a word already attributed to `cls` (the sweep's hot
// path; the caller asserts arch::ClassifyWord(word) == cls separately).
MFacts ExtractFacts(const arch::EncClassInfo* cls, uint32_t word);

// Convenience: classify + extract. Words outside every class come back
// with decodable == false and cls == nullptr.
MFacts ExtractFacts(uint32_t word);

// The model's predicted verdict for a whole text (sequence of words).
struct Verdict {
  bool ok = false;
  verifier::FailKind kind = verifier::FailKind::kNone;
  size_t fail_index = 0;  // word index, not byte offset
};

// Predicts Verify()'s verdict: decode-all precedence first (the earliest
// undecodable word wins over any later property failure), then the
// per-instruction checks in the verifier's order, with the x30 lookahead
// and sp forward scan evaluated over the same sequence.
Verdict PredictVerdict(std::span<const MFacts> facts,
                       const verifier::VerifyOptions& opts);
Verdict PredictVerdict(std::span<const uint32_t> words,
                       const verifier::VerifyOptions& opts);

// Per-instruction check against already-extracted facts (index k), the
// model twin of verifier::CheckInst.
verifier::FailKind CheckFacts(std::span<const MFacts> facts, size_t k,
                              const verifier::VerifyOptions& opts);

// The discharge suffix for a context-dependent instruction: the words
// that must follow `f` for it to be accepted (blr x30 after a call-table
// load, the x30 guard after any other x30 load, an sp-based store after
// a small sp adjust). Empty when the instruction needs no context. The
// suffix instructions are standalone-legal, so a rejection of
// word+suffix still anchors at index 0.
std::vector<uint32_t> DischargeSuffix(const MFacts& f,
                                      const verifier::VerifyOptions& opts);

// ---- Effect prediction (emulator cross-validation) ----

// The reserved registers, in the fixed order used by RegEffects.
inline constexpr int kReservedList[7] = {18, 21, 22, 23, 24, 30, 32};

enum class EffKind : uint8_t {
  kPreserved,  // bit-identical to the pre-state
  kExact,      // equals `value`
  kZext32,     // bits 63:32 zero; low 32 bits not predicted
};

struct RegEffect {
  EffKind kind = EffKind::kPreserved;
  uint64_t value = 0;
};

// Pre-state view + memory layout the predictor evaluates against.
struct PreState {
  uint64_t x[31] = {};
  uint64_t sp = 0;
  uint64_t pc = 0;
  bool n = false, z = false, c = false, v = false;
};

struct MemRange {
  uint64_t lo = 0, hi = 0;  // [lo, hi)
  bool read = false, write = false;
};

struct MemLayout {
  std::vector<MemRange> ranges;
  // Deterministic contents of every readable byte; both the predictor
  // and the crossval runner derive memory values from this.
  static uint8_t PatternByte(uint64_t addr);
  uint64_t PatternValue(uint64_t addr, uint32_t size) const;
  bool Covered(uint64_t addr, uint32_t len, bool for_write) const;
};

struct EffectPrediction {
  RegEffect reserved[7];  // indexed like kReservedList
  uint64_t next_pc = 0;   // pc after retiring the instruction
  bool mem_fault = false; // the access itself faults (unmapped/unaligned)
};

// Predicts the architectural effect of one ACCEPTED instruction on the
// reserved state, given the prepared pre-state and layout. On a
// predicted fault no register changes (the emulator commits loads,
// writeback and status strictly after a successful access).
EffectPrediction PredictEffect(const MFacts& f, const PreState& pre,
                               const MemLayout& layout);

}  // namespace lfi::verify_model

#endif  // LFI_VERIFY_MODEL_MODEL_H_
