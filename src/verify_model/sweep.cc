#include "verify_model/sweep.h"

#include <chrono>
#include <cstring>

#include "arch/decode.h"

namespace lfi::verify_model {

namespace {

using verifier::FailKind;

// The real verifier's verdict for a single bare word.
Verdict ActualBare(uint32_t w, const verifier::VerifyOptions& opts) {
  Verdict v;
  auto dec = arch::Decode(w);
  if (!dec) {
    v.kind = FailKind::kUndecodable;
    return v;
  }
  const arch::Inst inst = *dec;
  const FailKind kind = verifier::CheckInst({&inst, 1}, 0, opts);
  if (kind == FailKind::kNone) v.ok = true;
  else v.kind = kind;
  return v;
}

// The real verifier's verdict for word + suffix, through the full
// Verify() entry point (byte-level, so offset conventions match).
Verdict ActualSeq(std::span<const uint32_t> words,
                  const verifier::VerifyOptions& opts) {
  std::vector<uint8_t> bytes(words.size() * 4);
  std::memcpy(bytes.data(), words.data(), bytes.size());
  const verifier::VerifyResult r = verifier::Verify(bytes, opts);
  Verdict v;
  if (r.ok) {
    v.ok = true;
  } else {
    v.kind = r.kind;
    v.fail_index = r.fail_offset / 4;
  }
  return v;
}

bool Agree(const Verdict& m, const Verdict& a) {
  if (m.ok != a.ok) return false;
  if (m.ok) return true;
  return m.kind == a.kind && m.fail_index == a.fail_index;
}

void Record(SweepResult* res, const SweepOptions& opts, uint32_t w,
            bool with_suffix, const Verdict& m, const Verdict& a,
            std::string detail) {
  ++res->mismatches;
  if (res->recorded.size() < opts.max_recorded) {
    res->recorded.push_back({w, with_suffix, m, a, std::move(detail)});
  }
}

std::string VerdictStr(const Verdict& v) {
  if (v.ok) return "accept";
  std::string s = "reject(";
  s += verifier::FailKindName(v.kind);
  s += " @";
  s += std::to_string(v.fail_index);
  s += ")";
  return s;
}

// Deterministic stratified sampling: keep every keep_mod-th accepted
// word; when the buffer overflows the target, thin it by 2 and double
// the modulus. The surviving sample is spread across the whole
// enumeration order (i.e. across the class's operand-field space).
struct Sampler {
  size_t target;
  uint64_t keep_mod = 1;
  uint64_t accepted = 0;
  std::vector<uint32_t>* out;

  void Offer(uint32_t w) {
    if (target == 0) return;
    if (accepted++ % keep_mod == 0) {
      out->push_back(w);
      if (out->size() > target) {
        std::vector<uint32_t> kept;
        kept.reserve(out->size() / 2 + 1);
        for (size_t i = 0; i < out->size(); i += 2) kept.push_back((*out)[i]);
        *out = std::move(kept);
        keep_mod *= 2;
      }
    }
  }
};

}  // namespace

SweepResult SweepClass(const arch::EncClassInfo& cls,
                       const SweepOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  SweepResult res;
  res.class_name = cls.name;
  res.enumerated = cls.EncodingCount();

  Sampler sampler{opts.sample_per_class, 1, 0, &res.accepted_sample};
  const uint64_t step =
      (opts.shard_count > 0 ? opts.shard_count : 1) *
      (opts.stride > 0 ? opts.stride : 1);
  const uint64_t first = opts.shard_index % (opts.shard_count > 0
                                                 ? opts.shard_count
                                                 : 1);

  const std::span<const arch::EncClassInfo> all = arch::AllEncClasses();
  const size_t cls_index = static_cast<size_t>(&cls - all.data());

  std::vector<MFacts> seq;  // reused suffix-sequence buffer
  for (uint64_t i = first; i < res.enumerated; i += step) {
    const uint32_t w = cls.WordAt(i);
    ++res.checked;

    // Self-check: the word must land back in this class. A word claimed
    // by an EARLIER class is shadowed (class spaces may overlap; decode
    // order wins, e.g. pair-space words whose opc/mode bits spell a
    // logical-shift) and is swept by that class's own enumeration. A
    // word claimed by a LATER class (or none) means the table's order
    // diverges from the decoder's dispatch — a metadata bug.
    if (const arch::EncClassInfo* owner = arch::ClassifyWord(w);
        owner != &cls) {
      const size_t owner_index =
          owner == nullptr ? all.size()
                           : static_cast<size_t>(owner - all.data());
      if (owner_index < cls_index) {
        ++res.shadowed;
      } else {
        Record(&res, opts, w, false, {}, {},
               "ClassifyWord attributes this word to a later class");
      }
      continue;
    }

    const MFacts facts = ExtractFacts(&cls, w);

    // Bare word: both sides must agree on accept/reject and FailKind.
    Verdict model;
    if (!facts.decodable) {
      model.kind = FailKind::kUndecodable;
    } else {
      const FailKind k = CheckFacts({&facts, 1}, 0, opts.verify);
      if (k == FailKind::kNone) model.ok = true;
      else model.kind = k;
    }
    if (opts.model_override) opts.model_override(facts, &model);
    const Verdict actual = ActualBare(w, opts.verify);
    if (!Agree(model, actual)) {
      Record(&res, opts, w, false, model, actual,
             "bare: model " + VerdictStr(model) + " vs verifier " +
                 VerdictStr(actual));
    }
    if (actual.ok) {
      ++res.accepted;
      sampler.Offer(w);
    }

    // Context-dependent word: sweep again with the discharge suffix.
    if (facts.decodable) {
      const std::vector<uint32_t> suffix = DischargeSuffix(facts, opts.verify);
      if (!suffix.empty()) {
        ++res.suffixed;
        std::vector<uint32_t> words;
        words.reserve(1 + suffix.size());
        words.push_back(w);
        words.insert(words.end(), suffix.begin(), suffix.end());
        seq.clear();
        for (uint32_t sw : words) seq.push_back(ExtractFacts(sw));
        Verdict smodel = PredictVerdict(seq, opts.verify);
        if (opts.model_override) opts.model_override(facts, &smodel);
        const Verdict sactual = ActualSeq(words, opts.verify);
        if (!Agree(smodel, sactual)) {
          Record(&res, opts, w, true, smodel, sactual,
                 "with suffix: model " + VerdictStr(smodel) +
                     " vs verifier " + VerdictStr(sactual));
        }
        if (sactual.ok) {
          ++res.accepted;
          sampler.Offer(w);
        }
      }
    }
  }

  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

std::vector<SweepResult> SweepAll(const SweepOptions& opts) {
  std::vector<SweepResult> out;
  for (const arch::EncClassInfo& cls : arch::AllEncClasses()) {
    out.push_back(SweepClass(cls, opts));
  }
  return out;
}

}  // namespace lfi::verify_model
