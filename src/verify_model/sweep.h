// Exhaustive per-class encoding enumeration: for every swept encoding of
// every allowlisted class, compare the symbolic model's predicted verdict
// (model.h) against the real verifier's decision. Field collapsing —
// which operand fields are swept in full and which only at boundary
// values — lives in arch/fields.cc next to the class definitions; the
// exhaustiveness argument for each collapse is in docs/VERIFIER.md.
//
// Context-dependent encodings (x30 loads, sp adjusts) are swept twice:
// bare, where both sides must agree on the rejection, and with their
// discharge suffix (model.h DischargeSuffix), where both sides must
// agree on the acceptance.
#ifndef LFI_VERIFY_MODEL_SWEEP_H_
#define LFI_VERIFY_MODEL_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/fields.h"
#include "verify_model/model.h"
#include "verifier/verifier.h"

namespace lfi::verify_model {

struct SweepOptions {
  verifier::VerifyOptions verify;
  // Index-stride sharding over each class's encoding space: a word at
  // enumeration index i is checked by shard i % shard_count. Every shard
  // touches every operand-field region, so a sharded CI run loses no
  // field coverage, only density.
  uint64_t shard_index = 0;
  uint64_t shard_count = 1;
  // Within a shard, check every stride-th encoding (sanitizer builds
  // dial this up; release sweeps use 1 = every encoding).
  uint64_t stride = 1;
  // How many mismatches to record verbatim per class (counting always
  // continues past this).
  size_t max_recorded = 16;
  // Target size of the stratified accepted-encoding sample per class
  // (fed to emu cross-validation).
  size_t sample_per_class = 48;
  // Meta-test hook: mutates the model's verdict before comparison, to
  // prove the sweep detects a wrong model (seeded-bug test).
  std::function<void(const MFacts&, Verdict*)> model_override;
};

struct Mismatch {
  uint32_t word = 0;
  bool with_suffix = false;
  Verdict model;
  Verdict actual;
  std::string detail;
};

struct SweepResult {
  std::string class_name;
  uint64_t enumerated = 0;  // encodings in the class's swept space
  uint64_t checked = 0;     // actually compared (this shard / stride)
  uint64_t accepted = 0;    // verifier-accepted (bare or with suffix)
  uint64_t suffixed = 0;    // words that carried a discharge suffix
  uint64_t shadowed = 0;    // words claimed by an earlier class's space
  uint64_t mismatches = 0;
  std::vector<Mismatch> recorded;
  // Deterministic stratified sample of accepted words (bare-accepted or
  // suffix-accepted), for emu cross-validation.
  std::vector<uint32_t> accepted_sample;
  double seconds = 0;
};

SweepResult SweepClass(const arch::EncClassInfo& cls,
                       const SweepOptions& opts);

// Sweeps every class in arch::AllEncClasses() order.
std::vector<SweepResult> SweepAll(const SweepOptions& opts);

}  // namespace lfi::verify_model

#endif  // LFI_VERIFY_MODEL_SWEEP_H_
