#include "wasm/wasm.h"

namespace lfi::wasm {

namespace {

using arch::AddrMode;
using arch::Extend;
using arch::Inst;
using arch::Mn;
using arch::Reg;
using arch::Shift;
using arch::Width;
using asmtext::AsmFile;
using asmtext::AsmStmt;

// Registers reserved by the Wasm engine model (disjoint from both the
// workload generators' register set and LFI's reserved registers, so the
// same programs can run under either sandbox).
constexpr Reg kCtx = Reg(25);    // context-struct pointer
constexpr Reg kBase = Reg(26);   // heap base (pinned or reloaded)
constexpr Reg kIdx = Reg(27);    // 32-bit index scratch

Inst MakeLoadBase() {
  Inst l;
  l.mn = Mn::kLdr;
  l.width = Width::kX;
  l.msize = 8;
  l.rt = kBase;
  l.mem.base = kCtx;
  l.mem.mode = AddrMode::kImm;
  l.mem.imm = 0;
  return l;
}

Inst MakeAddIdxImm(Reg rn, int64_t imm) {
  Inst a;
  a.mn = imm >= 0 ? Mn::kAddImm : Mn::kSubImm;
  a.width = Width::kW;
  a.rd = kIdx;
  a.rn = rn;
  a.imm = imm >= 0 ? imm : -imm;
  return a;
}

Inst MakeAddIdxShift(Reg rn, Reg rm, uint8_t shift) {
  Inst a;
  a.mn = Mn::kAddReg;
  a.width = Width::kW;
  a.rd = kIdx;
  a.rn = rn;
  a.rm = rm;
  a.shift = Shift::kLsl;
  a.shift_amount = shift;
  return a;
}

Inst MakeAddIdxExt(Reg rn, Reg rm, Extend ext, uint8_t shift) {
  Inst a;
  a.mn = Mn::kAddExt;
  a.width = Width::kW;
  a.rd = kIdx;
  a.rn = rn;
  a.rm = rm;
  a.ext = ext;
  a.shift_amount = shift;
  return a;
}

Inst MakeAddBaseImm(Reg rn, int64_t imm) {
  Inst a;
  a.mn = imm >= 0 ? Mn::kAddImm : Mn::kSubImm;
  a.width = Width::kX;
  a.rd = rn;
  a.rn = rn;
  a.imm = imm >= 0 ? imm : -imm;
  return a;
}

// A dependency-extending register move, modelling weaker codegen.
Inst MakeSelfMov(Reg r) {
  Inst m;
  m.mn = Mn::kOrrReg;
  m.width = Width::kX;
  m.rd = r;
  m.rn = Reg::Zr();
  m.rm = r;
  return m;
}

class Instrumenter {
 public:
  Instrumenter(const EngineProfile& profile) : profile_(profile) {}

  Result<AsmFile> Run(const AsmFile& in);

 private:
  void Emit(Inst i) { out_.stmts.push_back(AsmStmt::OfInst(i)); }
  void EmitStmt(AsmStmt s) { out_.stmts.push_back(std::move(s)); }

  // Ensures the heap base is in kBase; returns without emitting when the
  // engine hoists and the base is still valid in this block.
  void MaterializeBase() {
    if (profile_.pinned_base) return;
    if (profile_.hoist_base && base_valid_) return;
    Emit(MakeLoadBase());
    base_valid_ = true;
  }

  // Wasm-style access: index computed into a 32-bit register, then a
  // base+u32 access relying on guard pages for bounds.
  void RewriteAccess(Inst i);
  void EmitIndirectCallChecks();
  void MaybeCodegenPenalty(const Inst& original);

  EngineProfile profile_;
  AsmFile out_;
  bool base_valid_ = false;
  int mov_counter_ = 0;
  int addr_counter_ = 0;
  int spill_counter_ = 0;
};

void Instrumenter::MaybeCodegenPenalty(const Inst& original) {
  if (profile_.extra_mov_every <= 0) return;
  if (++mov_counter_ < profile_.extra_mov_every) return;
  mov_counter_ = 0;
  Reg dep = kIdx;
  if (auto d = arch::DestGpr(original); d && d->IsGpr()) dep = *d;
  Emit(MakeSelfMov(dep));
}

void Instrumenter::RewriteAccess(Inst i) {
  const bool pair = i.mn == Mn::kLdp || i.mn == Mn::kStp;
  MaterializeBase();
  // Missed addressing-mode fold: route the index through one extra move,
  // extending the address chain (see EngineProfile::addr_mov_every).
  if (profile_.addr_mov_every > 0 &&
      ++addr_counter_ >= profile_.addr_mov_every) {
    addr_counter_ = 0;
    // Extend whichever register carries the effective address.
    const Reg chain_reg =
        i.mem.IsRegOffset() && i.mem.index.IsGpr() ? i.mem.index
                                                   : i.mem.base;
    if (chain_reg.IsGpr()) Emit(MakeSelfMov(chain_reg));
  }
  // Register-pressure spill across the access.
  if (profile_.spill_every > 0 &&
      ++spill_counter_ >= profile_.spill_every) {
    spill_counter_ = 0;
    Inst spill;
    spill.mn = Mn::kStr;
    spill.width = Width::kX;
    spill.msize = 8;
    spill.rt = kIdx;
    spill.mem.base = Reg::Sp();
    spill.mem.mode = AddrMode::kPreIndex;
    spill.mem.imm = -16;
    Emit(spill);
    Inst reload = spill;
    reload.mn = Mn::kLdr;
    reload.mem.mode = AddrMode::kPostIndex;
    reload.mem.imm = 16;
    Emit(reload);
  }
  const Reg base = i.mem.base;
  const AddrMode mode = i.mem.mode;
  const int64_t imm = i.mem.imm;

  auto use_wasm_mode = [&](Inst* a, Reg index) {
    a->mem.base = kBase;
    a->mem.mode = AddrMode::kRegUxtw;
    a->mem.index = index;
    a->mem.shift = 0;
    a->mem.imm = 0;
  };

  if (pair) {
    // Wasm has no pair accesses: split into two scalar accesses.
    Inst first = i;
    first.mn = i.mn == Mn::kLdp ? Mn::kLdr : Mn::kStr;
    first.rt2 = Reg::None();
    Inst second = first;
    second.rt = i.rt2;
    int64_t off = imm;
    if (mode == AddrMode::kPostIndex) off = 0;
    Emit(MakeAddIdxImm(base, off));
    use_wasm_mode(&first, kIdx);
    Emit(first);
    Emit(MakeAddIdxImm(base, off + i.msize));
    use_wasm_mode(&second, kIdx);
    Emit(second);
    if (i.mem.HasWriteback()) Emit(MakeAddBaseImm(base, imm));
    return;
  }

  if (i.mn == Mn::kLdxr || i.mn == Mn::kStxr || i.mn == Mn::kLdar ||
      i.mn == Mn::kStlr) {
    // Atomics: compute the full address explicitly.
    Inst addr;
    addr.mn = Mn::kAddExt;
    addr.width = Width::kX;
    addr.rd = kIdx;
    addr.rn = kBase;
    addr.rm = base;
    addr.ext = Extend::kUxtw;
    Emit(addr);
    i.mem.base = kIdx;
    Emit(i);
    return;
  }

  switch (mode) {
    case AddrMode::kImm:
      if (imm == 0) {
        use_wasm_mode(&i, base);
        Emit(i);
      } else {
        Emit(MakeAddIdxImm(base, imm));
        use_wasm_mode(&i, kIdx);
        Emit(i);
      }
      return;
    case AddrMode::kPreIndex:
      Emit(MakeAddBaseImm(base, imm));
      use_wasm_mode(&i, base);
      i.mem.imm = 0;
      Emit(i);
      return;
    case AddrMode::kPostIndex: {
      Inst access = i;
      use_wasm_mode(&access, base);
      access.mem.imm = 0;
      Emit(access);
      Emit(MakeAddBaseImm(base, imm));
      return;
    }
    case AddrMode::kRegLsl:
      Emit(MakeAddIdxShift(base, i.mem.index, i.mem.shift));
      use_wasm_mode(&i, kIdx);
      Emit(i);
      return;
    case AddrMode::kRegUxtw:
    case AddrMode::kRegSxtw:
      Emit(MakeAddIdxExt(base, i.mem.index,
                         mode == AddrMode::kRegUxtw ? Extend::kUxtw
                                                    : Extend::kSxtw,
                         i.mem.shift));
      use_wasm_mode(&i, kIdx);
      Emit(i);
      return;
  }
}

void Instrumenter::EmitIndirectCallChecks() {
  // Table-bounds and type-signature validation: two context loads, a
  // compare, and a (never-taken, correctly-predicted) trap branch. This is
  // the per-indirect-call cost Section 6.2 attributes to Wasm.
  Inst sig;
  sig.mn = Mn::kLdr;
  sig.width = Width::kW;
  sig.msize = 4;
  sig.rt = kIdx;
  sig.mem.base = kCtx;
  sig.mem.mode = AddrMode::kImm;
  sig.mem.imm = 8;
  Emit(sig);
  Inst expect = sig;
  expect.mem.imm = 12;
  // Load the expected signature into the same scratch after comparing -
  // model as: load, cmp, b.ne.
  Inst cmp;
  cmp.mn = Mn::kSubsReg;
  cmp.width = Width::kW;
  cmp.rd = Reg::Zr();
  cmp.rn = kIdx;
  cmp.rm = kIdx;  // always equal: the trap is never taken
  Emit(cmp);
  Inst b;
  b.mn = Mn::kBCond;
  b.cond = arch::Cond::kNe;
  EmitStmt(AsmStmt::Branch(b, "__wasm_trap"));
  Emit(expect);
}

Result<AsmFile> Instrumenter::Run(const AsmFile& in) {
  bool prologue_emitted = false;
  bool in_text = true;
  for (const auto& s : in.stmts) {
    switch (s.kind) {
      case AsmStmt::Kind::kLabel:
        base_valid_ = false;  // joins invalidate the hoisted base
        EmitStmt(s);
        if (!prologue_emitted && s.label == "_start") {
          // Store the linear-memory base (== sandbox base, from x21 set up
          // by the loader) into the context struct, and pin it if the
          // engine does.
          Inst adrp;
          adrp.mn = Mn::kAdrp;
          adrp.rd = kCtx;
          EmitStmt(AsmStmt::Branch(adrp, "__wasm_ctx"));
          Inst lo;
          lo.mn = Mn::kAddImm;
          lo.width = Width::kX;
          lo.rd = kCtx;
          lo.rn = kCtx;
          AsmStmt lo_s = AsmStmt::OfInst(lo);
          lo_s.reloc = asmtext::Reloc::kLo12;
          lo_s.target = "__wasm_ctx";
          EmitStmt(lo_s);
          Inst st;
          st.mn = Mn::kStr;
          st.width = Width::kX;
          st.msize = 8;
          st.rt = arch::kRegBase;  // x21: the loader's sandbox base
          st.mem.base = kCtx;
          st.mem.mode = AddrMode::kImm;
          Emit(st);
          if (profile_.pinned_base) {
            Inst mv;
            mv.mn = Mn::kOrrReg;
            mv.width = Width::kX;
            mv.rd = kBase;
            mv.rn = Reg::Zr();
            mv.rm = arch::kRegBase;
            Emit(mv);
          }
          prologue_emitted = true;
        }
        break;
      case AsmStmt::Kind::kDirective:
        if (s.dir.kind == asmtext::Directive::Kind::kSection) {
          in_text = s.dir.section == asmtext::Section::kText;
          base_valid_ = false;
        }
        EmitStmt(s);
        break;
      case AsmStmt::Kind::kRtcall:
      case AsmStmt::Kind::kHostcall:
        base_valid_ = false;
        EmitStmt(s);
        break;
      case AsmStmt::Kind::kInst: {
        if (!in_text) {
          EmitStmt(s);
          break;
        }
        const Inst& i = s.inst;
        for (Reg r : {i.rd, i.rn, i.rm, i.ra, i.rt, i.rt2, i.rs,
                      i.mem.base, i.mem.index}) {
          if (r == kCtx || r == kBase || r == kIdx) {
            return Error{"wasm: input uses model-reserved register x" +
                         std::to_string(r.id())};
          }
        }
        if (arch::IsMemAccess(i) && !i.mem.base.IsSp()) {
          RewriteAccess(i);
          MaybeCodegenPenalty(i);
          break;
        }
        if (i.mn == Mn::kBlr || i.mn == Mn::kBr) {
          if (profile_.icall_check_insns > 0) EmitIndirectCallChecks();
          EmitStmt(s);
          base_valid_ = false;
          break;
        }
        if (arch::IsBranch(i)) {
          EmitStmt(s);
          base_valid_ = false;
          break;
        }
        EmitStmt(s);
        MaybeCodegenPenalty(i);
        break;
      }
    }
  }
  // Trap target and context struct.
  out_.stmts.push_back(AsmStmt::Label("__wasm_trap"));
  Inst trap;
  trap.mn = Mn::kBrk;
  trap.imm = 0x77;
  Emit(trap);
  asmtext::Directive data;
  data.kind = asmtext::Directive::Kind::kSection;
  data.section = asmtext::Section::kData;
  AsmStmt data_s;
  data_s.kind = AsmStmt::Kind::kDirective;
  data_s.dir = data;
  out_.stmts.push_back(data_s);
  out_.stmts.push_back(AsmStmt::Label("__wasm_ctx"));
  asmtext::Directive quads;
  quads.kind = asmtext::Directive::Kind::kQuad;
  quads.values = {0, 0, 0};
  quads.syms = {"", "", ""};
  AsmStmt quads_s;
  quads_s.kind = AsmStmt::Kind::kDirective;
  quads_s.dir = quads;
  out_.stmts.push_back(quads_s);
  return std::move(out_);
}

}  // namespace

const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kWasmtime: return "wasmtime";
    case Engine::kWasm2c: return "wasm2c";
    case Engine::kWasm2cNoBarrier: return "wasm2c-nobarrier";
    case Engine::kWasm2cPinnedReg: return "wasm2c-pinned";
    case Engine::kWamr: return "wamr";
  }
  return "?";
}

EngineProfile ProfileFor(Engine e) {
  EngineProfile p;
  switch (e) {
    case Engine::kWasmtime:
      p.base_in_memory = true;
      p.hoist_base = true;
      p.extra_mov_every = 2;   // Cranelift: weakest codegen
      p.addr_mov_every = 1;    // rarely folds addressing arithmetic
      p.spill_every = 6;       // heavy register pressure
      p.icall_check_insns = 6;
      break;
    case Engine::kWasm2c:
      p.base_in_memory = true;
      p.hoist_base = false;  // the spec-conformance barrier
      // The barrier does more than force base reloads: it pins every
      // access in place, blocking LLVM's load/store elimination, access
      // folding and scheduling around it.
      p.extra_mov_every = 4;
      p.addr_mov_every = 1;
      break;
    case Engine::kWasm2cNoBarrier:
      p.base_in_memory = true;
      p.hoist_base = true;
      p.extra_mov_every = 9;
      p.addr_mov_every = 2;
      break;
    case Engine::kWasm2cPinnedReg:
      p.base_in_memory = false;
      p.pinned_base = true;
      p.extra_mov_every = 9;
      p.addr_mov_every = 3;
      break;
    case Engine::kWamr:
      p.base_in_memory = true;
      p.hoist_base = true;
      p.extra_mov_every = 7;
      p.addr_mov_every = 2;
      break;
  }
  return p;
}

Result<asmtext::AsmFile> Instrument(const asmtext::AsmFile& in, Engine e) {
  Instrumenter inst(ProfileFor(e));
  return inst.Run(in);
}

}  // namespace lfi::wasm
