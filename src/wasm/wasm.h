// WebAssembly-engine baseline models (Section 6.2).
//
// The paper compares LFI against the most performant Wasm engines by
// measuring identical programs under each engine's sandboxing strategy.
// The engines' overhead sources, as identified in Section 6.2, are:
//
//  - Wasm2c (default): the module's heap base lives in a context struct; a
//    compiler barrier (required for trap-faithful semantics) forces the
//    base to be re-loaded around every access, so each access carries a
//    dependent load in its address chain.
//  - Wasm2c (no barrier): the barrier removed; the base load can be
//    hoisted to once per basic block (what LLVM achieves).
//  - Wasm2c (pinned register): the heap base lives permanently in a
//    reserved register; accesses become base+index forms like LFI's.
//  - WAMR: LLVM AOT, no barrier, base hoisted per block, plus slightly
//    weaker address-mode selection.
//  - Wasmtime: Cranelift codegen - markedly weaker instruction selection
//    than LLVM (the paper's motivation for SFI over language sandboxes).
//
// Strategies shared by all engines: 32-bit linear-memory indices (explicit
// index arithmetic replaces native addressing modes), indirect-call table
// bounds + type-signature checks, and a general codegen-quality factor
// (extra register-move instructions) reflecting the extra compilation
// steps through the Wasm IR. This module applies those transformations to
// the same workload assembly that LFI rewrites, so both sandboxes are
// measured on identical programs in the same simulator.
#ifndef LFI_WASM_WASM_H_
#define LFI_WASM_WASM_H_

#include "asmtext/ast.h"
#include "support/result.h"

namespace lfi::wasm {

enum class Engine {
  kWasmtime,
  kWasm2c,
  kWasm2cNoBarrier,
  kWasm2cPinnedReg,
  kWamr,
};

const char* EngineName(Engine e);

// Instrumentation parameters for one engine.
struct EngineProfile {
  bool base_in_memory = true;   // heap base loaded from the ctx struct
  bool hoist_base = false;      // base load hoistable to once per block
  bool pinned_base = false;     // heap base pinned in a register
  // One extra dependent register move inserted per this many
  // instructions, modelling codegen quality loss through the Wasm
  // pipeline (0 = none).
  int extra_mov_every = 0;
  // For every Nth memory access, the index value passes through one extra
  // register move before the access (0 = never). This models missed
  // addressing-mode folds: Wasm codegen frequently materializes the
  // 32-bit effective index instead of folding arithmetic into the
  // access, putting an extra cycle into the address chain.
  int addr_mov_every = 0;
  // For every Nth memory access, a caller-saved value is spilled and
  // reloaded across it (0 = never) - Cranelift-style register pressure.
  int spill_every = 0;
  // Instructions of table-bounds + signature checking per indirect call.
  int icall_check_insns = 5;
};

EngineProfile ProfileFor(Engine e);

// Instruments `in` (un-rewritten workload assembly) per the engine's
// sandboxing strategy. The result runs in the LFI runtime with
// verification disabled (Wasm engines trust their compiler; there is no
// machine-code verifier - Section 5.2).
Result<asmtext::AsmFile> Instrument(const asmtext::AsmFile& in, Engine e);

}  // namespace lfi::wasm

#endif  // LFI_WASM_WASM_H_
